/**
 * @file
 * Two-tier (local DDR4 vs CXL.mem) placement suite.
 *
 *  - SD_CXL grammar parsing and far-channel topology construction.
 *  - HeatClassifier: threshold behaviour and epoch decay.
 *  - Tiered ShardDispatcher policy: cold flows home on the far tier,
 *    hot flows on the local tier, tier mismatches migrate (with
 *    counters), a saturated/degraded tier sheds to the other one, and
 *    topologies without far slots keep the legacy policy verbatim.
 *  - Bit-exactness: TLS-4K and deflate produce identical bytes on a
 *    CXL-tier slot and a local-DIMM slot (single op and the PR 8
 *    striping pattern) — the far link changes timing, never data.
 *  - Far links register "cxl.chN" stats; local topologies don't.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <sstream>
#include <vector>

#include "common/random.h"
#include "compress/deflate.h"
#include "topo/dispatcher.h"
#include "topo/heat.h"
#include "topo/topology.h"
#include "trace/trace.h"

namespace {

using namespace sd;
using topo::HeatClassifier;
using topo::HeatConfig;
using topo::ShardDispatcher;
using topo::Topology;
using topo::TopologySpec;

// ---------------------------------------------------------------------------
// SD_CXL grammar
// ---------------------------------------------------------------------------

TEST(CxlSpec, ParsesCountLatencyAndRate)
{
    const TopologySpec base;
    const auto bare = TopologySpec::parseCxl("2", base);
    ASSERT_TRUE(bare.has_value());
    EXPECT_EQ(bare->cxl_channels, 2u);

    const auto with_ns = TopologySpec::parseCxl("1@300", base);
    ASSERT_TRUE(with_ns.has_value());
    EXPECT_EQ(with_ns->cxl_channels, 1u);
    EXPECT_DOUBLE_EQ(with_ns->cxl_link.round_trip_ns, 300.0);

    const auto full = TopologySpec::parseCxl("1@600@32", base);
    ASSERT_TRUE(full.has_value());
    EXPECT_DOUBLE_EQ(full->cxl_link.round_trip_ns, 600.0);
    EXPECT_DOUBLE_EQ(full->cxl_link.gbps, 32.0);
    EXPECT_EQ(full->totalChannels(), base.channels + 1);
}

TEST(CxlSpec, RejectsMalformedSpecs)
{
    const TopologySpec base;
    for (const char *bad : {"", "x", "@600", "1@", "1@0", "1@600@",
                            "1@600@0", "1@-3", "1 @600", "1@600@32@9"})
        EXPECT_FALSE(TopologySpec::parseCxl(bad, base).has_value())
            << bad;
}

// ---------------------------------------------------------------------------
// Mixed topology construction
// ---------------------------------------------------------------------------

TEST(MixedTopology, AppendsFarChannelsAfterLocalOnes)
{
    TopologySpec spec;
    spec.channels = 1;
    spec.cxl_channels = 1;
    Topology topo(spec);

    ASSERT_EQ(topo.slotCount(), 2u);
    EXPECT_EQ(topo.localChannels(), 1u);
    EXPECT_FALSE(topo.isFarSlot(0));
    EXPECT_TRUE(topo.isFarSlot(1));
    EXPECT_EQ(topo.cxlLink(0), nullptr)
        << "local channels must not pay the link";
    EXPECT_NE(topo.cxlLink(1), nullptr);
}

TEST(MixedTopology, FarChannelTrafficCrossesTheLink)
{
    TopologySpec spec;
    spec.channels = 1;
    spec.cxl_channels = 1;
    Topology topo(spec);

    Rng rng(3);
    std::vector<std::uint8_t> data(4096);
    rng.fill(data.data(), data.size());

    const Addr local = topo.slot(0u).driver.alloc(data.size());
    topo.memory().writeSync(local, data.data(), data.size());
    topo.memory().flushSync(local, data.size());
    EXPECT_EQ(topo.cxlLink(1)->stats().transfers, 0u)
        << "local traffic must not touch the far link";

    const Addr far = topo.slot(1u).driver.alloc(data.size());
    topo.memory().writeSync(far, data.data(), data.size());
    topo.memory().flushSync(far, data.size());
    EXPECT_GE(topo.cxlLink(1)->stats().transfers,
              data.size() / kCacheLineSize)
        << "every flushed far line crosses the link";
}

TEST(MixedTopology, FarLinkRegistersCxlStats)
{
    TopologySpec spec;
    spec.channels = 1;
    spec.cxl_channels = 1;
    Topology topo(spec);
    trace::StatsRegistry registry;
    topo.registerStats(registry);
    std::ostringstream os;
    registry.dumpJson(os);
    EXPECT_NE(os.str().find("\"cxl.ch1\""), std::string::npos);

    Topology local{TopologySpec{}};
    trace::StatsRegistry local_registry;
    local.registerStats(local_registry);
    std::ostringstream local_os;
    local_registry.dumpJson(local_os);
    EXPECT_EQ(local_os.str().find("\"cxl."), std::string::npos)
        << "a local-only topology must not register link stats";
}

// ---------------------------------------------------------------------------
// HeatClassifier
// ---------------------------------------------------------------------------

TEST(HeatClassifier, ColdUntilThresholdTouches)
{
    HeatConfig config;
    config.hot_threshold = 3;
    HeatClassifier heat(config);

    EXPECT_FALSE(heat.touch(7));
    EXPECT_FALSE(heat.touch(7));
    EXPECT_TRUE(heat.touch(7));
    EXPECT_TRUE(heat.hot(7));
    EXPECT_FALSE(heat.hot(8)) << "untouched keys are cold";
}

TEST(HeatClassifier, EpochDecayCoolsIdleKeys)
{
    HeatConfig config;
    config.hot_threshold = 3;
    config.epoch_touches = 4;
    HeatClassifier heat(config);

    heat.touch(1);
    heat.touch(1);
    heat.touch(1); // hot at 3
    EXPECT_TRUE(heat.hot(1));

    // One more touch closes the epoch: every count halves (3 -> 1),
    // so the idle key cools below the threshold.
    heat.touch(2);
    EXPECT_FALSE(heat.hot(1));
    EXPECT_EQ(heat.tracked(), 2u);
}

// ---------------------------------------------------------------------------
// Tiered dispatch
// ---------------------------------------------------------------------------

TopologySpec
mixedSpec()
{
    TopologySpec spec;
    spec.channels = 1;
    spec.cxl_channels = 1;
    return spec;
}

TEST(TieredDispatch, ColdFlowsHomeOnTheFarTier)
{
    Topology topo(mixedSpec());
    ShardDispatcher dispatcher(topo);

    const unsigned placed = dispatcher.place(/*flow=*/5);
    EXPECT_TRUE(topo.isFarSlot(placed))
        << "a first-touch (cold) flow belongs on the far tier";
    EXPECT_EQ(dispatcher.stats().tier_cxl_placements, 1u);
    EXPECT_EQ(dispatcher.stats().tier_local_placements, 0u);
}

TEST(TieredDispatch, HotFlowsMigrateToTheLocalTier)
{
    Topology topo(mixedSpec());
    topo::DispatcherConfig config;
    config.heat.hot_threshold = 3;
    ShardDispatcher dispatcher(topo, config);

    const std::uint64_t flow = 5;
    const unsigned cold = dispatcher.place(flow);
    EXPECT_TRUE(topo.isFarSlot(cold));
    EXPECT_EQ(dispatcher.place(flow), cold) << "still cold: pinned";

    // Third touch crosses the threshold: the pin migrates tiers.
    const unsigned hot = dispatcher.place(flow);
    EXPECT_FALSE(topo.isFarSlot(hot));
    EXPECT_EQ(dispatcher.stats().migrations_to_local, 1u);
    EXPECT_EQ(dispatcher.place(flow), hot) << "hot and pinned: stable";
    EXPECT_EQ(dispatcher.stats().migrations_to_local, 1u);
}

TEST(TieredDispatch, CooledFlowsMigrateBackToTheFarTier)
{
    Topology topo(mixedSpec());
    topo::DispatcherConfig config;
    config.heat.hot_threshold = 3;
    config.heat.epoch_touches = 6;
    ShardDispatcher dispatcher(topo, config);

    const std::uint64_t flow = 5;
    dispatcher.place(flow);
    dispatcher.place(flow);
    const unsigned hot = dispatcher.place(flow); // count 3: hot, local
    EXPECT_FALSE(topo.isFarSlot(hot));

    // Three other-flow touches close the 6-touch epoch and halve the
    // counts (3 -> 1); the cooled flow's next placement migrates back.
    dispatcher.place(100);
    dispatcher.place(101);
    dispatcher.place(102);
    const unsigned cooled = dispatcher.place(flow);
    EXPECT_TRUE(topo.isFarSlot(cooled));
    EXPECT_EQ(dispatcher.stats().migrations_to_cxl, 1u);
}

TEST(TieredDispatch, DegradedFarTierShedsToLocal)
{
    Topology topo(mixedSpec());
    ShardDispatcher dispatcher(topo);
    dispatcher.setDegraded(1, true); // the only far slot

    const unsigned placed = dispatcher.place(/*flow=*/5);
    EXPECT_FALSE(topo.isFarSlot(placed))
        << "a cold flow must shed across tiers before the CPU path";
    EXPECT_EQ(dispatcher.stats().tier_local_placements, 1u);

    // With both tiers down, the CPU path remains the backstop.
    dispatcher.setDegraded(0, true);
    EXPECT_EQ(dispatcher.place(/*flow=*/6), ShardDispatcher::kCpuPath);
    EXPECT_GE(dispatcher.stats().shed_to_cpu, 1u);
}

TEST(TieredDispatch, LocalOnlyTopologyKeepsLegacyCounters)
{
    TopologySpec spec;
    spec.channels = 2;
    Topology topo(spec);
    ShardDispatcher dispatcher(topo);

    for (std::uint64_t flow = 0; flow < 8; ++flow)
        dispatcher.place(flow);
    EXPECT_EQ(dispatcher.stats().tier_local_placements, 0u);
    EXPECT_EQ(dispatcher.stats().tier_cxl_placements, 0u);
    EXPECT_EQ(dispatcher.stats().migrations_to_local, 0u);
    EXPECT_EQ(dispatcher.stats().migrations_to_cxl, 0u);
}

// ---------------------------------------------------------------------------
// Bit-exactness across tiers (the far link changes timing, not data)
// ---------------------------------------------------------------------------

/** One record on @p slot; @return output bytes. */
std::vector<std::uint8_t>
runOnSlot(Topology &topo, Topology::Slot &slot,
          const compcpy::CompCpyParams &base,
          const std::vector<std::uint8_t> &payload)
{
    compcpy::CompCpyParams params = base;
    params.sbuf = slot.driver.alloc(payload.size());
    const std::size_t dbytes =
        compcpy::CompCpyEngine::destPages(params) * kPageSize;
    params.dbuf = slot.driver.alloc(dbytes);
    topo.memory().writeSync(params.sbuf, payload.data(),
                            payload.size());
    slot.engine.run(params);
    slot.engine.useSync(params.dbuf, dbytes);
    return slot.engine.readResult(params.dbuf, dbytes);
}

TEST(TierBitExactness, TlsRecordMatchesLocalDimm)
{
    Rng rng(61);
    std::vector<std::uint8_t> plain(4096);
    rng.fill(plain.data(), plain.size());

    compcpy::CompCpyParams base;
    base.size = plain.size();
    base.ulp = smartdimm::UlpKind::kTlsEncrypt;
    base.message_id = 1;
    rng.fill(base.key, sizeof(base.key));
    rng.fill(base.iv.data(), base.iv.size());

    Topology topo(mixedSpec());
    const auto on_local = runOnSlot(topo, topo.slot(0u), base, plain);
    const auto on_cxl = runOnSlot(topo, topo.slot(1u), base, plain);
    EXPECT_EQ(on_cxl, on_local)
        << "the CXL tier must be bit-exact with a local DIMM";
}

TEST(TierBitExactness, DeflatePageMatchesLocalDimmAndDecodes)
{
    std::vector<std::uint8_t> staged(kPageSize, 0);
    for (std::size_t i = 0; i < 4000; ++i)
        staged[i] = static_cast<std::uint8_t>("far tier!"[i % 9]);

    compcpy::CompCpyParams base;
    base.size = 4000;
    base.ordered = true;
    base.ulp = smartdimm::UlpKind::kDeflate;
    base.message_id = 2;

    Topology topo(mixedSpec());
    const auto on_local = runOnSlot(topo, topo.slot(0u), base, staged);
    const auto on_cxl = runOnSlot(topo, topo.slot(1u), base, staged);
    EXPECT_EQ(on_cxl, on_local);

    // The far-tier stream still decodes to the original payload.
    const std::size_t stream_len = on_cxl[0] | (on_cxl[1] << 8);
    const auto decoded =
        compress::deflateDecompress(on_cxl.data() + 2, stream_len);
    EXPECT_EQ(decoded,
              std::vector<std::uint8_t>(staged.begin(),
                                        staged.begin() + 4000));
}

/** Stage + run one striped message, all chunks forced onto @p slot. */
std::vector<std::uint8_t>
runForcedStripe(Topology &topo, ShardDispatcher &dispatcher,
                const compcpy::CompCpyParams &base,
                const std::vector<std::uint8_t> &payload, int force_slot)
{
    auto plan = dispatcher.planStripe(base, /*flow=*/5, force_slot);
    std::size_t off = 0;
    for (const auto &chunk : plan.chunks) {
        const std::size_t padded =
            divCeil(chunk.params.size, kCacheLineSize) * kCacheLineSize;
        std::vector<std::uint8_t> chunk_bytes(padded, 0);
        std::memcpy(chunk_bytes.data(), payload.data() + off,
                    chunk.params.size);
        topo.memory().writeSync(chunk.params.sbuf, chunk_bytes.data(),
                                padded);
        topo.memory().flushSync(chunk.params.sbuf, padded);
        off += chunk.params.size;
    }
    compcpy::CompletionStatus status =
        compcpy::CompletionStatus::kBailout;
    dispatcher.submitStripe(
        plan, [&](compcpy::CompletionStatus s) { status = s; });
    topo.events().run();
    EXPECT_EQ(status, compcpy::CompletionStatus::kSuccess);
    auto bytes = dispatcher.readStripeResult(plan);
    dispatcher.releaseStripe(plan);
    return bytes;
}

TEST(TierBitExactness, StripedTlsMatchesAcrossTiers)
{
    // The PR 8 striping pattern, with the two homes on different
    // tiers: identical chunking forced onto the CXL slot must emit
    // the same bytes as onto the local slot.
    const std::size_t total = 32 * 1024;
    Rng rng(67);
    std::vector<std::uint8_t> payload(total);
    rng.fill(payload.data(), payload.size());

    compcpy::CompCpyParams base;
    base.size = total;
    base.ulp = smartdimm::UlpKind::kTlsEncrypt;
    base.message_id = 300;
    rng.fill(base.key, sizeof(base.key));
    rng.fill(base.iv.data(), base.iv.size());

    Topology local_topo(mixedSpec());
    ShardDispatcher local(local_topo);
    const auto on_local =
        runForcedStripe(local_topo, local, base, payload, 0);

    Topology far_topo(mixedSpec());
    ShardDispatcher far(far_topo);
    const auto on_cxl =
        runForcedStripe(far_topo, far, base, payload, 1);
    EXPECT_EQ(on_cxl, on_local);
}

TEST(TierBitExactness, StripedDeflateMatchesAcrossTiers)
{
    const std::size_t total = 12000;
    std::vector<std::uint8_t> payload(total);
    for (std::size_t i = 0; i < total; ++i)
        payload[i] = static_cast<std::uint8_t>("cxl strip"[i % 9]);

    compcpy::CompCpyParams base;
    base.size = total;
    base.ordered = true;
    base.ulp = smartdimm::UlpKind::kDeflate;
    base.message_id = 400;

    Topology local_topo(mixedSpec());
    ShardDispatcher local(local_topo);
    const auto on_local =
        runForcedStripe(local_topo, local, base, payload, 0);

    Topology far_topo(mixedSpec());
    ShardDispatcher far(far_topo);
    const auto on_cxl =
        runForcedStripe(far_topo, far, base, payload, 1);
    EXPECT_EQ(on_cxl, on_local);
}

} // namespace
