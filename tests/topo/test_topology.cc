/**
 * @file
 * Topology + ShardDispatcher suite.
 *
 *  - TopologySpec parsing (the SD_TOPOLOGY knob grammar).
 *  - 1x1 equivalence: the Topology factory must be byte-identical to
 *    the legacy hand-wired single-DIMM rig — same golden trace, same
 *    output bytes — so every existing baseline survives the refactor.
 *  - 2x2 equivalence: every slot of a scaled-out topology produces
 *    the same record bytes as the 1x1 device for the same op.
 *  - Shard placement: hash-home affinity, flow pinning (the ordered-
 *    fence guarantee), shedding to siblings under saturation or
 *    degradation, CPU fallback when everything is saturated, and the
 *    auto-degrade tracker.
 *  - Striping: a striped message is bit-exact with the same chunks on
 *    a single DIMM for every ULP, and ordered deflate chunks crossing
 *    DIMMs still decode (the cross-DIMM fence test).
 *  - Per-device stat naming and scoped fault-plan addressing.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "cache/memory_system.h"
#include "common/random.h"
#include "compcpy/compcpy.h"
#include "compcpy/driver.h"
#include "compress/deflate.h"
#include "fault/fault.h"
#include "sim/event_queue.h"
#include "smartdimm/buffer_device.h"
#include "smartdimm/deflate_dsa.h"
#include "topo/dispatcher.h"
#include "topo/topology.h"
#include "trace/trace.h"

#ifndef SD_GOLDEN_DIR
#define SD_GOLDEN_DIR "."
#endif

namespace {

using namespace sd;
using topo::ShardDispatcher;
using topo::Topology;
using topo::TopologySpec;

// ---------------------------------------------------------------------------
// TopologySpec parsing
// ---------------------------------------------------------------------------

TEST(TopologySpec, ParsesChannelsByDimms)
{
    const auto spec = TopologySpec::parse("2x2");
    ASSERT_TRUE(spec.has_value());
    EXPECT_EQ(spec->channels, 2u);
    EXPECT_EQ(spec->dimms_per_channel, 2u);

    const auto tall = TopologySpec::parse("4X2");
    ASSERT_TRUE(tall.has_value());
    EXPECT_EQ(tall->channels, 4u);
    EXPECT_EQ(tall->dimms_per_channel, 2u);
}

TEST(TopologySpec, BareCountMeansOneDimmPerChannel)
{
    const auto spec = TopologySpec::parse("4");
    ASSERT_TRUE(spec.has_value());
    EXPECT_EQ(spec->channels, 4u);
    EXPECT_EQ(spec->dimms_per_channel, 1u);
}

TEST(TopologySpec, RejectsMalformedShapes)
{
    for (const char *bad :
         {"", "x", "0x2", "2x0", "axb", "2x2x2", "2x", "-1x2", "2 x2"})
        EXPECT_FALSE(TopologySpec::parse(bad).has_value()) << bad;
}

// ---------------------------------------------------------------------------
// 1x1 equivalence with the legacy hand-wired rig
// ---------------------------------------------------------------------------

/** The golden workload of test_golden_trace, driven through an
 *  arbitrary engine (one 4 KB TLS CompCpy + USE, DDR mirror on). */
std::string
traceGoldenWorkload(cache::MemorySystem &memory, compcpy::Driver &driver,
                    compcpy::CompCpyEngine &engine)
{
    auto &tr = trace::tracer();
    tr.clear();
    tr.enable(/*capture_ddr=*/true);

    Rng rng(7);
    std::vector<std::uint8_t> plaintext(4096);
    rng.fill(plaintext.data(), plaintext.size());

    const Addr sbuf = driver.alloc(4096);
    const Addr dbuf = driver.alloc(8192);
    memory.writeSync(sbuf, plaintext.data(), plaintext.size());

    compcpy::CompCpyParams params;
    params.sbuf = sbuf;
    params.dbuf = dbuf;
    params.size = plaintext.size();
    params.ulp = smartdimm::UlpKind::kTlsEncrypt;
    params.message_id = 1;
    rng.fill(params.key, sizeof(params.key));
    rng.fill(params.iv.data(), params.iv.size());
    engine.run(params);
    engine.useSync(dbuf, 8192);

    std::ostringstream csv;
    tr.dumpCsv(csv);
    tr.disable();
    tr.clear();
    return csv.str();
}

TEST(TopologyEquivalence, OneByOneReproducesLegacyRigTrace)
{
    // Legacy hand-wired rig, exactly as the golden-trace test builds
    // it (tests may construct devices directly; production code goes
    // through the factory).
    std::string legacy;
    {
        EventQueue events;
        mem::BackingStore dram;
        mem::DramGeometry geometry;
        geometry.channels = 1;
        mem::AddressMap map(geometry, mem::ChannelInterleave::kNone);
        smartdimm::BufferDevice dimm(events, map, dram);
        cache::CacheConfig llc;
        llc.size_bytes = 4ull << 20;
        cache::MemorySystem memory(events, geometry,
                                   mem::ChannelInterleave::kNone, llc,
                                   {&dimm});
        compcpy::Driver driver(1ULL << 20, 64ULL << 20);
        compcpy::CompCpyEngine::SharedState shared;
        compcpy::CompCpyEngine engine(memory, driver, shared);
        legacy = traceGoldenWorkload(memory, driver, engine);
    }

    std::string factory;
    {
        TopologySpec spec;
        spec.llc.size_bytes = 4ull << 20;
        Topology topo(spec);
        factory = traceGoldenWorkload(topo.memory(),
                                      topo.slot(0u).driver,
                                      topo.slot(0u).engine);
    }
    EXPECT_EQ(factory, legacy)
        << "a 1x1 Topology must be byte-identical to direct wiring";
}

TEST(TopologyEquivalence, OneByOneMatchesCheckedInGoldenTrace)
{
    TopologySpec spec;
    spec.llc.size_bytes = 4ull << 20;
    Topology topo(spec);
    const std::string got = traceGoldenWorkload(
        topo.memory(), topo.slot(0u).driver, topo.slot(0u).engine);

    const std::string path =
        std::string(SD_GOLDEN_DIR) + "/compcpy_tls_4k.golden";
    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in) << "missing golden file " << path;
    std::stringstream want;
    want << in.rdbuf();

    std::istringstream got_s(got), want_s(want.str());
    std::string got_line, want_line;
    std::size_t line = 0;
    while (std::getline(want_s, want_line)) {
        ++line;
        ASSERT_TRUE(std::getline(got_s, got_line))
            << "trace truncated at golden line " << line;
        ASSERT_EQ(got_line, want_line)
            << "first divergence at line " << line;
    }
    EXPECT_FALSE(std::getline(got_s, got_line))
        << "trace has extra rows past golden line " << line;
}

// ---------------------------------------------------------------------------
// 2x2 equivalence
// ---------------------------------------------------------------------------

/** One 4 KB TLS record on @p slot; @return ciphertext || tag. */
std::vector<std::uint8_t>
runTlsOnSlot(Topology &topo, Topology::Slot &slot,
             const std::uint8_t key[16], const crypto::GcmIv &iv,
             const std::vector<std::uint8_t> &plain)
{
    const Addr sbuf = slot.driver.alloc(plain.size());
    const Addr dbuf = slot.driver.alloc(2 * kPageSize);
    topo.memory().writeSync(sbuf, plain.data(), plain.size());

    compcpy::CompCpyParams params;
    params.sbuf = sbuf;
    params.dbuf = dbuf;
    params.size = plain.size();
    params.ulp = smartdimm::UlpKind::kTlsEncrypt;
    params.message_id = 1;
    std::memcpy(params.key, key, 16);
    params.iv = iv;
    slot.engine.run(params);
    slot.engine.useSync(dbuf, 2 * kPageSize);
    return slot.engine.readResult(dbuf, plain.size() + 16);
}

TEST(TopologyEquivalence, EverySlotOfTwoByTwoMatchesOneByOne)
{
    Rng rng(31);
    std::vector<std::uint8_t> plain(4096);
    rng.fill(plain.data(), plain.size());
    std::uint8_t key[16];
    rng.fill(key, sizeof(key));
    crypto::GcmIv iv{};
    rng.fill(iv.data(), iv.size());

    std::vector<std::uint8_t> reference;
    {
        Topology topo{TopologySpec{}};
        reference =
            runTlsOnSlot(topo, topo.slot(0u), key, iv, plain);
    }
    ASSERT_EQ(reference.size(), plain.size() + 16);

    TopologySpec spec;
    spec.channels = 2;
    spec.dimms_per_channel = 2;
    Topology topo(spec);
    ASSERT_EQ(topo.slotCount(), 4u);
    for (unsigned s = 0; s < topo.slotCount(); ++s)
        EXPECT_EQ(runTlsOnSlot(topo, topo.slot(s), key, iv, plain),
                  reference)
            << "slot " << s;
}

TEST(Topology, SlotsOwnDisjointMmioWindows)
{
    TopologySpec spec;
    spec.channels = 2;
    spec.dimms_per_channel = 2;
    Topology topo(spec);
    std::vector<Addr> bases;
    for (unsigned s = 0; s < topo.slotCount(); ++s) {
        Topology::Slot &slot = topo.slot(s);
        const Addr base = slot.device.config().mmio_base;
        EXPECT_EQ(base, slot.base + spec.device.mmio_base);
        for (const Addr other : bases)
            EXPECT_NE(base, other);
        bases.push_back(base);
    }
}

// ---------------------------------------------------------------------------
// Shard placement
// ---------------------------------------------------------------------------

TEST(ShardDispatcher, HomeSlotIsStableAndInRange)
{
    TopologySpec spec;
    spec.channels = 2;
    spec.dimms_per_channel = 2;
    Topology topo(spec);
    ShardDispatcher dispatcher(topo);
    for (std::uint64_t flow = 0; flow < 256; ++flow) {
        const unsigned home = dispatcher.homeSlot(flow);
        EXPECT_LT(home, topo.slotCount());
        EXPECT_EQ(home, dispatcher.homeSlot(flow));
    }
}

TEST(ShardDispatcher, FlowsSpreadAcrossSlots)
{
    TopologySpec spec;
    spec.channels = 2;
    spec.dimms_per_channel = 2;
    Topology topo(spec);
    ShardDispatcher dispatcher(topo);
    std::vector<unsigned> homes(topo.slotCount(), 0);
    for (std::uint64_t flow = 0; flow < 64; ++flow)
        ++homes[dispatcher.homeSlot(flow)];
    for (unsigned s = 0; s < topo.slotCount(); ++s)
        EXPECT_GT(homes[s], 0u) << "no flow hashed home to slot " << s;
}

TEST(ShardDispatcher, PlacePinsAndReleaseUnpins)
{
    TopologySpec spec;
    spec.channels = 2;
    Topology topo(spec);
    ShardDispatcher dispatcher(topo);

    const std::uint64_t flow = 42;
    const unsigned slot = dispatcher.place(flow);
    EXPECT_LT(slot, topo.slotCount());
    ASSERT_TRUE(dispatcher.pinnedSlot(flow).has_value());
    EXPECT_EQ(*dispatcher.pinnedSlot(flow), slot);
    EXPECT_EQ(dispatcher.place(flow), slot); // pinned: same answer
    EXPECT_EQ(dispatcher.stats().placements, 1u);

    dispatcher.releaseFlow(flow);
    EXPECT_FALSE(dispatcher.pinnedSlot(flow).has_value());
}

TEST(ShardDispatcher, DegradedHomeShedsToSibling)
{
    TopologySpec spec;
    spec.channels = 2;
    Topology topo(spec);
    ShardDispatcher dispatcher(topo);

    const std::uint64_t flow = 7;
    const unsigned home = dispatcher.homeSlot(flow);
    dispatcher.setDegraded(home, true);
    const unsigned placed = dispatcher.place(flow);
    EXPECT_NE(placed, home);
    EXPECT_LT(placed, topo.slotCount());
    EXPECT_GE(dispatcher.stats().shed_to_sibling, 1u);

    // A pinned shed flow stays put even after the home recovers — the
    // ordered-fence contract forbids migrating mid-flow.
    dispatcher.setDegraded(home, false);
    EXPECT_EQ(dispatcher.place(flow), placed);
}

TEST(ShardDispatcher, SaturatedHomeShedsFreshFlows)
{
    TopologySpec spec;
    spec.channels = 2;
    Topology topo(spec);
    topo::DispatcherConfig config;
    config.queue.depth = 2;
    config.shed_occupancy = 0.5; // shed at occupancy >= 1
    ShardDispatcher dispatcher(topo, config);

    // Two distinct flows with the same home slot.
    const std::uint64_t first = 0;
    const unsigned home = dispatcher.homeSlot(first);
    std::uint64_t second = 1;
    while (dispatcher.homeSlot(second) != home)
        ++second;

    ASSERT_EQ(dispatcher.place(first), home);
    // Park one descriptor in the home queue (events never run, so it
    // stays unrecorded and occupancy stays 1).
    compcpy::CompCpyParams params;
    params.sbuf = topo.slot(home).driver.alloc(kPageSize);
    params.dbuf = topo.slot(home).driver.alloc(kPageSize);
    params.size = 64;
    params.ulp = smartdimm::UlpKind::kDeflate;
    ASSERT_TRUE(dispatcher
                    .submit(home, compcpy::Descriptor::single(params))
                    .has_value());
    EXPECT_EQ(dispatcher.queue(home).occupancy(), 1u);

    const unsigned placed = dispatcher.place(second);
    EXPECT_NE(placed, home);
    EXPECT_GE(dispatcher.stats().shed_to_sibling, 1u);
}

TEST(ShardDispatcher, EverySlotDegradedFallsBackToCpu)
{
    Topology topo{TopologySpec{}};
    ShardDispatcher dispatcher(topo);
    dispatcher.setDegraded(0, true);

    const std::uint64_t flow = 3;
    EXPECT_EQ(dispatcher.place(flow), ShardDispatcher::kCpuPath);
    EXPECT_FALSE(dispatcher.pinnedSlot(flow).has_value())
        << "the CPU path must not pin: the flow retries DIMMs next op";
    EXPECT_GE(dispatcher.stats().shed_to_cpu, 1u);

    // Once the device recovers the same flow lands on a DIMM again.
    dispatcher.setDegraded(0, false);
    EXPECT_EQ(dispatcher.place(flow), 0u);
}

TEST(ShardDispatcher, ConsecutiveFailuresAutoDegrade)
{
    TopologySpec spec;
    spec.channels = 2;
    Topology topo(spec);
    ShardDispatcher dispatcher(topo);
    const unsigned after = dispatcher.config().degrade_after;

    for (unsigned i = 0; i + 1 < after; ++i)
        dispatcher.noteCompletion(0, compcpy::CompletionStatus::kBailout);
    EXPECT_FALSE(dispatcher.degraded(0));
    dispatcher.noteCompletion(0, compcpy::CompletionStatus::kBailout);
    EXPECT_TRUE(dispatcher.degraded(0));
    EXPECT_EQ(dispatcher.stats().auto_degraded, 1u);

    // One success clears both the streak and the degraded mark.
    dispatcher.noteCompletion(0, compcpy::CompletionStatus::kSuccess);
    EXPECT_FALSE(dispatcher.degraded(0));
}

TEST(ShardDispatcher, PinnedFlowCompletesInSubmissionOrder)
{
    // The reason pinning exists: all of a flow's ops funnel through
    // one FIFO queue, so completions arrive in submission order even
    // with the whole topology available.
    TopologySpec spec;
    spec.channels = 2;
    spec.dimms_per_channel = 2;
    Topology topo(spec);
    ShardDispatcher dispatcher(topo);

    const std::uint64_t flow = 11;
    const unsigned slot = dispatcher.place(flow);
    ASSERT_NE(slot, ShardDispatcher::kCpuPath);
    Topology::Slot &dev = topo.slot(slot);

    Rng rng(5);
    std::vector<std::uint8_t> payload(kPageSize);
    std::vector<unsigned> completions;
    for (unsigned i = 0; i < 6; ++i) {
        rng.fill(payload.data(), payload.size());
        compcpy::CompCpyParams params;
        params.sbuf = dev.driver.alloc(kPageSize);
        params.dbuf = dev.driver.alloc(kPageSize);
        params.size = 4000;
        params.ordered = true;
        params.ulp = smartdimm::UlpKind::kDeflate;
        topo.memory().writeSync(params.sbuf, payload.data(),
                                payload.size());
        ASSERT_TRUE(
            dispatcher
                .submit(slot, compcpy::Descriptor::single(params), 0,
                        [&completions, i](
                            const compcpy::CompletionRecord &record) {
                            EXPECT_EQ(
                                record.status,
                                compcpy::CompletionStatus::kSuccess);
                            completions.push_back(i);
                        })
                .has_value());
    }
    topo.events().run();
    EXPECT_EQ(completions,
              (std::vector<unsigned>{0, 1, 2, 3, 4, 5}));
}

// ---------------------------------------------------------------------------
// Striping
// ---------------------------------------------------------------------------

/** Stage @p payload into the chunk sbufs of @p plan. */
void
stageStripe(Topology &topo, const ShardDispatcher::StripePlan &plan,
            const std::vector<std::uint8_t> &payload)
{
    std::size_t off = 0;
    for (const auto &chunk : plan.chunks) {
        // Sync ops are line-granular; chunk sbufs are page-rounded by
        // the driver, so padding the tail of the last line is safe.
        const std::size_t padded =
            divCeil(chunk.params.size, kCacheLineSize) * kCacheLineSize;
        std::vector<std::uint8_t> staged(padded, 0);
        std::memcpy(staged.data(), payload.data() + off,
                    chunk.params.size);
        topo.memory().writeSync(chunk.params.sbuf, staged.data(),
                                padded);
        topo.memory().flushSync(chunk.params.sbuf, padded);
        off += chunk.params.size;
    }
    ASSERT_EQ(off, payload.size());
}

/** Plan + submit + run + read one striped message. */
std::vector<std::uint8_t>
runStripe(Topology &topo, ShardDispatcher &dispatcher,
          const compcpy::CompCpyParams &base,
          const std::vector<std::uint8_t> &payload, int force_slot)
{
    auto plan = dispatcher.planStripe(base, /*flow=*/5, force_slot);
    stageStripe(topo, plan, payload);
    compcpy::CompletionStatus status =
        compcpy::CompletionStatus::kBailout;
    unsigned calls = 0;
    dispatcher.submitStripe(plan,
                            [&](compcpy::CompletionStatus s) {
                                status = s;
                                ++calls;
                            });
    topo.events().run();
    EXPECT_EQ(calls, 1u) << "fan-in must fire exactly once";
    EXPECT_EQ(status, compcpy::CompletionStatus::kSuccess);
    auto bytes = dispatcher.readStripeResult(plan);
    dispatcher.releaseStripe(plan);
    return bytes;
}

TEST(Striping, TlsStripeIsBitExactWithSingleDimm)
{
    const std::size_t total = 64 * 1024; // 4 chunks of 16 KB
    Rng rng(17);
    std::vector<std::uint8_t> payload(total);
    rng.fill(payload.data(), payload.size());

    compcpy::CompCpyParams base;
    base.size = total;
    base.ulp = smartdimm::UlpKind::kTlsEncrypt;
    base.message_id = 100;
    rng.fill(base.key, sizeof(base.key));
    rng.fill(base.iv.data(), base.iv.size());

    TopologySpec spec;
    spec.channels = 2;
    spec.dimms_per_channel = 2;

    Topology striped_topo(spec);
    ShardDispatcher striped(striped_topo);
    const auto across =
        runStripe(striped_topo, striped, base, payload, -1);
    EXPECT_GE(striped.stats().stripe_chunks, 4u);

    Topology single_topo(spec);
    ShardDispatcher single(single_topo);
    const auto on_one =
        runStripe(single_topo, single, base, payload, /*force_slot=*/0);

    EXPECT_EQ(across, on_one)
        << "striping must not change a single output bit";
}

TEST(Striping, DeflateStripeIsBitExactWithSingleDimmAndDecodes)
{
    // Compressible payload so the deflate streams are non-trivial.
    const std::size_t total = 12000;
    std::vector<std::uint8_t> payload(total);
    for (std::size_t i = 0; i < total; ++i)
        payload[i] = static_cast<std::uint8_t>("stripe me!"[i % 10]);

    compcpy::CompCpyParams base;
    base.size = total;
    base.ordered = true; // the cross-DIMM fence case
    base.ulp = smartdimm::UlpKind::kDeflate;
    base.message_id = 200;

    TopologySpec spec;
    spec.channels = 2;
    spec.dimms_per_channel = 2;

    Topology striped_topo(spec);
    ShardDispatcher striped(striped_topo);
    auto plan = striped.planStripe(base, /*flow=*/5, -1);
    // Deflate chunks clamp to the single-page payload limit.
    for (const auto &chunk : plan.chunks)
        EXPECT_LE(chunk.params.size, smartdimm::kDeflateMaxPayload);
    striped.releaseStripe(plan);

    const auto across =
        runStripe(striped_topo, striped, base, payload, -1);
    Topology single_topo(spec);
    ShardDispatcher single(single_topo);
    const auto on_one =
        runStripe(single_topo, single, base, payload, /*force_slot=*/0);
    EXPECT_EQ(across, on_one);

    // Cross-DIMM fence semantics hold: every ordered chunk stream
    // decodes, and the concatenation reproduces the original message.
    Topology decode_topo(spec);
    ShardDispatcher decoder(decode_topo);
    auto decode_plan = decoder.planStripe(base, /*flow=*/5, -1);
    stageStripe(decode_topo, decode_plan, payload);
    bool fanned_in = false;
    decoder.submitStripe(decode_plan,
                         [&](compcpy::CompletionStatus s) {
                             fanned_in = true;
                             EXPECT_EQ(
                                 s,
                                 compcpy::CompletionStatus::kSuccess);
                         });
    decode_topo.events().run();
    ASSERT_TRUE(fanned_in);
    const auto framed = decoder.readStripeResult(decode_plan);

    std::vector<std::uint8_t> decoded;
    std::size_t region = 0;
    for (const auto &chunk : decode_plan.chunks) {
        const std::size_t dbytes =
            compcpy::CompCpyEngine::destPages(chunk.params) * kPageSize;
        ASSERT_LE(region + dbytes, framed.size());
        const std::uint8_t *frame = framed.data() + region;
        const std::size_t stream_len = frame[0] | (frame[1] << 8);
        const auto part =
            compress::deflateDecompress(frame + 2, stream_len);
        decoded.insert(decoded.end(), part.begin(), part.end());
        region += dbytes;
    }
    decoder.releaseStripe(decode_plan);
    EXPECT_EQ(decoded, payload);
}

// ---------------------------------------------------------------------------
// Per-device stats and scoped faults
// ---------------------------------------------------------------------------

TEST(TopologyStats, MultiDimmComponentsCarryCoordinates)
{
    TopologySpec spec;
    spec.channels = 2;
    spec.dimms_per_channel = 2;
    Topology topo(spec);
    ShardDispatcher dispatcher(topo);

    trace::StatsRegistry registry;
    topo.registerStats(registry);
    dispatcher.registerStats(registry);
    std::ostringstream os;
    registry.dumpJson(os);
    const std::string json = os.str();

    for (const char *component :
         {"smartdimm.ch0.d0", "smartdimm.ch1.d1", "compcpy.ch0.d1",
          "compcpy.ch1.d0", "queue.ch0.d0", "queue.ch1.d1", "mc.ch0",
          "mc.ch1", "dispatch"})
        EXPECT_NE(json.find("\"" + std::string(component) + "\""),
                  std::string::npos)
            << "missing component " << component;
}

TEST(TopologyStats, SingleDimmKeepsLegacyComponentNames)
{
    Topology topo{TopologySpec{}};
    trace::StatsRegistry registry;
    topo.registerStats(registry);
    std::ostringstream os;
    registry.dumpJson(os);
    const std::string json = os.str();

    EXPECT_NE(json.find("\"smartdimm\""), std::string::npos);
    EXPECT_NE(json.find("\"compcpy\""), std::string::npos);
    EXPECT_EQ(json.find(".ch0.d0"), std::string::npos)
        << "a 1x1 topology must keep the legacy flat names";
}

TEST(ScopedFaults, DeviceScopedRuleOnlyFiresOnThatDevice)
{
    Rng rng(23);
    std::vector<std::uint8_t> plain(4096);
    rng.fill(plain.data(), plain.size());
    std::uint8_t key[16];
    rng.fill(key, sizeof(key));
    crypto::GcmIv iv{};
    rng.fill(iv.data(), iv.size());

    TopologySpec spec;
    spec.channels = 2;
    spec.dimms_per_channel = 2;
    Topology topo(spec);

    auto plan =
        fault::FaultPlan::fromSpec("smartdimm[1][0]/free_pages_lie", 1);
    ASSERT_TRUE(plan.has_value());
    topo.setFaultPlan(&*plan);

    // An op on a different device must not trip the scoped rule...
    runTlsOnSlot(topo, topo.slot(0u, 0u), key, iv, plain);
    EXPECT_EQ(plan->injected(fault::Site::kFreePagesLie), 0u);
    EXPECT_EQ(topo.slot(0u, 0u).device.stats().freepages_lies, 0u);

    // ...and an op on the addressed device must.
    runTlsOnSlot(topo, topo.slot(1u, 0u), key, iv, plain);
    EXPECT_GE(plan->injected(fault::Site::kFreePagesLie), 1u);
    EXPECT_GE(topo.slot(1u, 0u).device.stats().freepages_lies, 1u);
    EXPECT_EQ(topo.slot(1u, 1u).device.stats().freepages_lies, 0u);
}

TEST(ScopedFaults, ChannelScopedMemRuleParsesAndScopes)
{
    const auto plan =
        fault::FaultPlan::fromSpec("mem[1]/alert_storm:count=2", 3);
    ASSERT_TRUE(plan.has_value());

    // Malformed scopes must be rejected, not silently unscoped.
    for (const char *bad :
         {"mem[x]/alert_storm", "smartdimm[/free_pages_lie",
          "bogus[0]/alert_storm", "smartdimm[0][1][2]/free_pages_lie"})
        EXPECT_FALSE(fault::FaultPlan::fromSpec(bad, 3).has_value())
            << bad;
}

} // namespace
