/**
 * @file
 * Placement cost models: structural properties the evaluation relies
 * on — SmartNIC cannot carry Deflate, QAT pays fixed per-offload
 * taxes, SmartDIMM traffic is contention-independent, CPU costs
 * scale with the leak fraction, and the design-space scores follow.
 */

#include <gtest/gtest.h>

#include "offload/design_space.h"
#include "offload/placement.h"

namespace {

using namespace sd::offload;

LoadContext
ctxAt(double leak)
{
    LoadContext ctx;
    ctx.leak_fraction = leak;
    return ctx;
}

TEST(Placement, SmartNicRejectsDeflate)
{
    const auto nic = makePlacement(PlacementKind::kSmartNic);
    const auto cost = nic->messageCost(Ulp::kDeflate, 4096, ctxAt(0.5));
    EXPECT_FALSE(cost.supported);
    EXPECT_TRUE(nic->messageCost(Ulp::kTlsEncrypt, 4096, ctxAt(0.5))
                    .supported);
}

// ---------------------------------------------------------------------------
// Invariants every placement must satisfy (parameterized over the
// full kind list, so adding a placement automatically extends the
// suite).
// ---------------------------------------------------------------------------

class EveryPlacement : public ::testing::TestWithParam<PlacementKind>
{
};

INSTANTIATE_TEST_SUITE_P(
    AllKinds, EveryPlacement, ::testing::ValuesIn(kAllPlacementKinds),
    [](const ::testing::TestParamInfo<PlacementKind> &info) {
        switch (info.param) {
          case PlacementKind::kCpu: return "Cpu";
          case PlacementKind::kSmartNic: return "SmartNic";
          case PlacementKind::kQuickAssist: return "QuickAssist";
          case PlacementKind::kSmartDimm: return "SmartDimm";
          case PlacementKind::kCxlMem: return "CxlMem";
        }
        return "Unknown";
    });

TEST_P(EveryPlacement, FreeForPlainHttp)
{
    const auto p = makePlacement(GetParam());
    const auto cost = p->messageCost(Ulp::kNone, 4096, ctxAt(0.5));
    EXPECT_EQ(cost.cpu_cycles, 0.0) << p->name();
    EXPECT_EQ(cost.dram_bytes, 0.0) << p->name();
}

TEST_P(EveryPlacement, SupportedCostsAreFiniteAndPositive)
{
    const auto p = makePlacement(GetParam());
    for (auto ulp : {Ulp::kTlsEncrypt, Ulp::kDeflate}) {
        const auto cost = p->messageCost(ulp, 4096, ctxAt(0.5));
        if (!cost.supported)
            continue;
        EXPECT_GT(cost.cpu_cycles, 0.0) << p->name();
        EXPECT_GT(cost.dram_bytes, 0.0) << p->name();
        EXPECT_GT(cost.latency_us, 0.0) << p->name();
    }
}

TEST_P(EveryPlacement, CyclesMonotoneInMessageSize)
{
    const auto p = makePlacement(GetParam());
    const auto small = p->messageCost(Ulp::kTlsEncrypt, 1024,
                                      ctxAt(0.5));
    const auto big = p->messageCost(Ulp::kTlsEncrypt, 65536,
                                    ctxAt(0.5));
    if (small.supported && big.supported)
        EXPECT_GT(big.cpu_cycles, small.cpu_cycles) << p->name();
}

TEST_P(EveryPlacement, FarMemoryNeverMakesAnythingCheaper)
{
    const auto p = makePlacement(GetParam());
    LoadContext near = ctxAt(0.5);
    LoadContext far = ctxAt(0.5);
    far.far_mem_extra_ns = 1500.0;
    const auto near_cost = p->messageCost(Ulp::kTlsEncrypt, 16384, near);
    const auto far_cost = p->messageCost(Ulp::kTlsEncrypt, 16384, far);
    if (near_cost.supported)
        EXPECT_GE(far_cost.cpu_cycles, near_cost.cpu_cycles)
            << p->name();
}

TEST(Placement, CpuCostGrowsWithContention)
{
    const auto cpu = makePlacement(PlacementKind::kCpu);
    const auto quiet =
        cpu->messageCost(Ulp::kTlsEncrypt, 16384, ctxAt(0.0));
    const auto thrashed =
        cpu->messageCost(Ulp::kTlsEncrypt, 16384, ctxAt(1.0));
    EXPECT_GT(thrashed.cpu_cycles, quiet.cpu_cycles * 1.3);
    EXPECT_GT(thrashed.dram_bytes, quiet.dram_bytes);
}

TEST(Placement, SmartDimmTrafficIsContentionIndependent)
{
    const auto dimm = makePlacement(PlacementKind::kSmartDimm);
    const auto quiet =
        dimm->messageCost(Ulp::kTlsEncrypt, 16384, ctxAt(0.0));
    const auto thrashed =
        dimm->messageCost(Ulp::kTlsEncrypt, 16384, ctxAt(1.0));
    // Inline offload: one pass in + one out, no re-read terms.
    EXPECT_DOUBLE_EQ(quiet.dram_bytes, thrashed.dram_bytes);
    EXPECT_DOUBLE_EQ(quiet.dram_bytes, 2.0 * 16384);
}

TEST(Placement, SmartDimmBeatsCpuUnderContention)
{
    const auto cpu = makePlacement(PlacementKind::kCpu);
    const auto dimm = makePlacement(PlacementKind::kSmartDimm);
    const auto ctx = ctxAt(0.8);
    EXPECT_LT(dimm->messageCost(Ulp::kTlsEncrypt, 4096, ctx).cpu_cycles,
              cpu->messageCost(Ulp::kTlsEncrypt, 4096, ctx).cpu_cycles);
    EXPECT_LT(dimm->messageCost(Ulp::kDeflate, 4000, ctx).cpu_cycles,
              cpu->messageCost(Ulp::kDeflate, 4000, ctx).cpu_cycles);
}

TEST(Placement, CpuWinsWhenQuiet)
{
    // With no contention the copy/flush overhead makes offload a net
    // loss for small TLS records — the adaptive policy's raison
    // d'etre (Sec. V-C).
    const auto cpu = makePlacement(PlacementKind::kCpu);
    const auto dimm = makePlacement(PlacementKind::kSmartDimm);
    const auto ctx = ctxAt(0.0);
    EXPECT_LT(cpu->messageCost(Ulp::kTlsEncrypt, 4096, ctx).cpu_cycles,
              dimm->messageCost(Ulp::kTlsEncrypt, 4096, ctx).cpu_cycles);
}

TEST(Placement, QatPaysFixedTaxPerOffload)
{
    const auto qat = makePlacement(PlacementKind::kQuickAssist);
    const auto small =
        qat->messageCost(Ulp::kTlsEncrypt, 1024, ctxAt(0.2));
    const auto big =
        qat->messageCost(Ulp::kTlsEncrypt, 16384, ctxAt(0.2));
    // Cost per byte must be far worse for the small offload.
    EXPECT_GT(small.cpu_cycles / 1024.0,
              2.0 * big.cpu_cycles / 16384.0);
    EXPECT_GT(small.latency_us, 10.0); // blocking round trip
}

TEST(Placement, SmartNicDegradesWithLossEvents)
{
    const auto nic = makePlacement(PlacementKind::kSmartNic);
    LoadContext lossless = ctxAt(0.5);
    LoadContext lossy = ctxAt(0.5);
    lossy.loss_events_per_message = 0.1;
    EXPECT_GT(
        nic->messageCost(Ulp::kTlsEncrypt, 16384, lossy).cpu_cycles,
        nic->messageCost(Ulp::kTlsEncrypt, 16384, lossless).cpu_cycles *
            1.2);
}

TEST(Placement, DeflateOutputRatioShrinksSmartDimmTraffic)
{
    const auto dimm = makePlacement(PlacementKind::kSmartDimm);
    LoadContext ctx = ctxAt(0.5);
    ctx.output_ratio = 0.38;
    const auto cost = dimm->messageCost(Ulp::kDeflate, 4000, ctx);
    EXPECT_NEAR(cost.dram_bytes, 4000 * 1.38, 1.0);
}

TEST(CxlMem, BeatsCpuOnFarHomedData)
{
    // The acceptance story of the far tier: once the data is homed
    // behind the link, the CPU pays the round trip on every demand
    // miss while the near-data transform pays it only on its control
    // path — so at >= 600 ns the tier must win, and the advantage
    // must grow with link latency.
    double last_ratio = 0.0;
    for (double ns : {600.0, 1500.0}) {
        CostModel model;
        model.cxl.round_trip_ns = ns;
        LoadContext ctx;
        ctx.leak_fraction = 1.0;
        ctx.far_mem_extra_ns = ns;
        const auto cpu = makePlacement(PlacementKind::kCpu, model);
        const auto cxl = makePlacement(PlacementKind::kCxlMem, model);
        const double cpu_cycles =
            cpu->messageCost(Ulp::kTlsEncrypt, 4096, ctx).cpu_cycles;
        const double cxl_cycles =
            cxl->messageCost(Ulp::kTlsEncrypt, 4096, ctx).cpu_cycles;
        EXPECT_LT(cxl_cycles, cpu_cycles) << ns << " ns";
        EXPECT_GT(cpu_cycles / cxl_cycles, last_ratio) << ns << " ns";
        last_ratio = cpu_cycles / cxl_cycles;
    }
}

TEST(CxlMem, ControlPathScalesWithLinkLatency)
{
    CostModel near_model;
    near_model.cxl.round_trip_ns = 300.0;
    CostModel far_model;
    far_model.cxl.round_trip_ns = 1500.0;
    LoadContext ctx;
    const auto near_p =
        makePlacement(PlacementKind::kCxlMem, near_model);
    const auto far_p = makePlacement(PlacementKind::kCxlMem, far_model);
    const auto near_cost =
        near_p->messageCost(Ulp::kTlsEncrypt, 4096, ctx);
    const auto far_cost =
        far_p->messageCost(Ulp::kTlsEncrypt, 4096, ctx);
    // A slower link costs cycles and latency, but the tier stays
    // near-data: the host-visible traffic does not change.
    EXPECT_GT(far_cost.cpu_cycles, near_cost.cpu_cycles);
    EXPECT_GT(far_cost.latency_us, near_cost.latency_us);
    EXPECT_DOUBLE_EQ(far_cost.dram_bytes, near_cost.dram_bytes);
}

TEST(CxlMem, TrafficIsContentionIndependentLikeSmartDimm)
{
    const auto cxl = makePlacement(PlacementKind::kCxlMem);
    const auto quiet =
        cxl->messageCost(Ulp::kTlsEncrypt, 16384, ctxAt(0.0));
    const auto thrashed =
        cxl->messageCost(Ulp::kTlsEncrypt, 16384, ctxAt(1.0));
    EXPECT_DOUBLE_EQ(quiet.dram_bytes, thrashed.dram_bytes);
}

TEST(DesignSpace, ScoresMatchThePaperNarrative)
{
    const auto points = designSpace();
    ASSERT_EQ(points.size(), 5u);

    const auto score = [&](std::size_t option, Criterion c) {
        return points[option].scores[static_cast<std::size_t>(c)];
    };
    // Options: 0=CPU, 1=SmartNIC, 2=PCIe, 3=SmartDIMM, 4=CXL.mem.
    // CPU leads at low contention, SmartDIMM at high contention.
    EXPECT_GE(score(0, Criterion::kLowContentionPerf),
              score(3, Criterion::kLowContentionPerf) - 1.0);
    EXPECT_GT(score(3, Criterion::kHighContentionPerf),
              score(0, Criterion::kHighContentionPerf));
    // SmartNIC is the only option limited in ULP diversity.
    EXPECT_LT(score(1, Criterion::kUlpDiversity),
              score(0, Criterion::kUlpDiversity));
    EXPECT_LT(score(1, Criterion::kUlpDiversity),
              score(3, Criterion::kUlpDiversity));
    // Loss resilience: SmartNIC strictly below CPU and SmartDIMM.
    EXPECT_LT(score(1, Criterion::kLossResilience),
              score(0, Criterion::kLossResilience));
    EXPECT_LT(score(1, Criterion::kLossResilience),
              score(3, Criterion::kLossResilience));
    // PCIe pays the fine-grain offload tax on raw performance.
    EXPECT_LT(score(2, Criterion::kLowContentionPerf),
              score(0, Criterion::kLowContentionPerf));
    // The CXL.mem tier keeps the SmartDIMM's protocol structure (the
    // far link changes timing, not protocol) and stays near the local
    // SmartDIMM under contention despite the link round trips.
    EXPECT_EQ(points[4].option, "CXL.mem SmartDIMM");
    EXPECT_EQ(score(4, Criterion::kTransportCompat),
              score(3, Criterion::kTransportCompat));
    EXPECT_EQ(score(4, Criterion::kUlpDiversity),
              score(3, Criterion::kUlpDiversity));
    EXPECT_GT(score(4, Criterion::kHighContentionPerf),
              score(0, Criterion::kHighContentionPerf));
}

} // namespace
