/**
 * @file
 * Placement cost models: structural properties the evaluation relies
 * on — SmartNIC cannot carry Deflate, QAT pays fixed per-offload
 * taxes, SmartDIMM traffic is contention-independent, CPU costs
 * scale with the leak fraction, and the design-space scores follow.
 */

#include <gtest/gtest.h>

#include "offload/design_space.h"
#include "offload/placement.h"

namespace {

using namespace sd::offload;

LoadContext
ctxAt(double leak)
{
    LoadContext ctx;
    ctx.leak_fraction = leak;
    return ctx;
}

TEST(Placement, SmartNicRejectsDeflate)
{
    const auto nic = makePlacement(PlacementKind::kSmartNic);
    const auto cost = nic->messageCost(Ulp::kDeflate, 4096, ctxAt(0.5));
    EXPECT_FALSE(cost.supported);
    EXPECT_TRUE(nic->messageCost(Ulp::kTlsEncrypt, 4096, ctxAt(0.5))
                    .supported);
}

TEST(Placement, EveryPlacementFreeForPlainHttp)
{
    for (auto kind :
         {PlacementKind::kCpu, PlacementKind::kSmartNic,
          PlacementKind::kQuickAssist, PlacementKind::kSmartDimm}) {
        const auto p = makePlacement(kind);
        const auto cost = p->messageCost(Ulp::kNone, 4096, ctxAt(0.5));
        EXPECT_EQ(cost.cpu_cycles, 0.0) << p->name();
        EXPECT_EQ(cost.dram_bytes, 0.0) << p->name();
    }
}

TEST(Placement, CpuCostGrowsWithContention)
{
    const auto cpu = makePlacement(PlacementKind::kCpu);
    const auto quiet =
        cpu->messageCost(Ulp::kTlsEncrypt, 16384, ctxAt(0.0));
    const auto thrashed =
        cpu->messageCost(Ulp::kTlsEncrypt, 16384, ctxAt(1.0));
    EXPECT_GT(thrashed.cpu_cycles, quiet.cpu_cycles * 1.3);
    EXPECT_GT(thrashed.dram_bytes, quiet.dram_bytes);
}

TEST(Placement, SmartDimmTrafficIsContentionIndependent)
{
    const auto dimm = makePlacement(PlacementKind::kSmartDimm);
    const auto quiet =
        dimm->messageCost(Ulp::kTlsEncrypt, 16384, ctxAt(0.0));
    const auto thrashed =
        dimm->messageCost(Ulp::kTlsEncrypt, 16384, ctxAt(1.0));
    // Inline offload: one pass in + one out, no re-read terms.
    EXPECT_DOUBLE_EQ(quiet.dram_bytes, thrashed.dram_bytes);
    EXPECT_DOUBLE_EQ(quiet.dram_bytes, 2.0 * 16384);
}

TEST(Placement, SmartDimmBeatsCpuUnderContention)
{
    const auto cpu = makePlacement(PlacementKind::kCpu);
    const auto dimm = makePlacement(PlacementKind::kSmartDimm);
    const auto ctx = ctxAt(0.8);
    EXPECT_LT(dimm->messageCost(Ulp::kTlsEncrypt, 4096, ctx).cpu_cycles,
              cpu->messageCost(Ulp::kTlsEncrypt, 4096, ctx).cpu_cycles);
    EXPECT_LT(dimm->messageCost(Ulp::kDeflate, 4000, ctx).cpu_cycles,
              cpu->messageCost(Ulp::kDeflate, 4000, ctx).cpu_cycles);
}

TEST(Placement, CpuWinsWhenQuiet)
{
    // With no contention the copy/flush overhead makes offload a net
    // loss for small TLS records — the adaptive policy's raison
    // d'etre (Sec. V-C).
    const auto cpu = makePlacement(PlacementKind::kCpu);
    const auto dimm = makePlacement(PlacementKind::kSmartDimm);
    const auto ctx = ctxAt(0.0);
    EXPECT_LT(cpu->messageCost(Ulp::kTlsEncrypt, 4096, ctx).cpu_cycles,
              dimm->messageCost(Ulp::kTlsEncrypt, 4096, ctx).cpu_cycles);
}

TEST(Placement, QatPaysFixedTaxPerOffload)
{
    const auto qat = makePlacement(PlacementKind::kQuickAssist);
    const auto small =
        qat->messageCost(Ulp::kTlsEncrypt, 1024, ctxAt(0.2));
    const auto big =
        qat->messageCost(Ulp::kTlsEncrypt, 16384, ctxAt(0.2));
    // Cost per byte must be far worse for the small offload.
    EXPECT_GT(small.cpu_cycles / 1024.0,
              2.0 * big.cpu_cycles / 16384.0);
    EXPECT_GT(small.latency_us, 10.0); // blocking round trip
}

TEST(Placement, SmartNicDegradesWithLossEvents)
{
    const auto nic = makePlacement(PlacementKind::kSmartNic);
    LoadContext lossless = ctxAt(0.5);
    LoadContext lossy = ctxAt(0.5);
    lossy.loss_events_per_message = 0.1;
    EXPECT_GT(
        nic->messageCost(Ulp::kTlsEncrypt, 16384, lossy).cpu_cycles,
        nic->messageCost(Ulp::kTlsEncrypt, 16384, lossless).cpu_cycles *
            1.2);
}

TEST(Placement, DeflateOutputRatioShrinksSmartDimmTraffic)
{
    const auto dimm = makePlacement(PlacementKind::kSmartDimm);
    LoadContext ctx = ctxAt(0.5);
    ctx.output_ratio = 0.38;
    const auto cost = dimm->messageCost(Ulp::kDeflate, 4000, ctx);
    EXPECT_NEAR(cost.dram_bytes, 4000 * 1.38, 1.0);
}

TEST(DesignSpace, ScoresMatchThePaperNarrative)
{
    const auto points = designSpace();
    ASSERT_EQ(points.size(), 4u);

    const auto score = [&](std::size_t option, Criterion c) {
        return points[option].scores[static_cast<std::size_t>(c)];
    };
    // Options: 0=CPU, 1=SmartNIC, 2=PCIe, 3=SmartDIMM.
    // CPU leads at low contention, SmartDIMM at high contention.
    EXPECT_GE(score(0, Criterion::kLowContentionPerf),
              score(3, Criterion::kLowContentionPerf) - 1.0);
    EXPECT_GT(score(3, Criterion::kHighContentionPerf),
              score(0, Criterion::kHighContentionPerf));
    // SmartNIC is the only option limited in ULP diversity.
    EXPECT_LT(score(1, Criterion::kUlpDiversity),
              score(0, Criterion::kUlpDiversity));
    EXPECT_LT(score(1, Criterion::kUlpDiversity),
              score(3, Criterion::kUlpDiversity));
    // Loss resilience: SmartNIC strictly below CPU and SmartDIMM.
    EXPECT_LT(score(1, Criterion::kLossResilience),
              score(0, Criterion::kLossResilience));
    EXPECT_LT(score(1, Criterion::kLossResilience),
              score(3, Criterion::kLossResilience));
    // PCIe pays the fine-grain offload tax on raw performance.
    EXPECT_LT(score(2, Criterion::kLowContentionPerf),
              score(0, Criterion::kLowContentionPerf));
}

} // namespace
