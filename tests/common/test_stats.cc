/**
 * @file
 * Statistics primitives.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/stats.h"

namespace {

using sd::Average;
using sd::Counter;
using sd::Histogram;
using sd::StatsRegistry;

TEST(Stats, CounterBasics)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    c.inc();
    c.inc(5);
    EXPECT_EQ(c.value(), 6u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Stats, AverageTracksMoments)
{
    Average a;
    EXPECT_EQ(a.mean(), 0.0);
    a.sample(2);
    a.sample(4);
    a.sample(6);
    EXPECT_DOUBLE_EQ(a.mean(), 4.0);
    EXPECT_DOUBLE_EQ(a.min(), 2.0);
    EXPECT_DOUBLE_EQ(a.max(), 6.0);
    EXPECT_EQ(a.count(), 3u);
    a.reset();
    EXPECT_EQ(a.count(), 0u);
}

TEST(Stats, HistogramBuckets)
{
    Histogram h(0, 10, 10);
    for (int i = 0; i < 10; ++i)
        h.sample(i + 0.5);
    for (std::size_t i = 0; i < 10; ++i)
        EXPECT_EQ(h.buckets()[i], 1u);
    EXPECT_EQ(h.count(), 10u);
    EXPECT_NEAR(h.mean(), 5.0, 0.01);
}

TEST(Stats, HistogramClampsOutOfRange)
{
    Histogram h(0, 10, 10);
    h.sample(-5);
    h.sample(100);
    EXPECT_EQ(h.buckets().front(), 1u);
    EXPECT_EQ(h.buckets().back(), 1u);
}

TEST(Stats, HistogramPercentiles)
{
    Histogram h(0, 100, 100);
    for (int i = 0; i < 100; ++i)
        h.sample(i + 0.5);
    EXPECT_NEAR(h.percentile(0.5), 50.0, 2.0);
    EXPECT_NEAR(h.percentile(0.99), 99.0, 2.0);
}

TEST(Stats, RegistryRoundTrip)
{
    StatsRegistry reg;
    reg.set("rps", 123456);
    reg.set("cpu_util", 0.5);
    EXPECT_DOUBLE_EQ(reg.get("rps"), 123456);
    EXPECT_DOUBLE_EQ(reg.get("missing", -1), -1);

    std::ostringstream os;
    reg.dump(os);
    EXPECT_NE(os.str().find("rps 123456"), std::string::npos);
    EXPECT_NE(os.str().find("cpu_util 0.5"), std::string::npos);
}

} // namespace
