/**
 * @file
 * Bit-field helpers used by the address mapper.
 */

#include <gtest/gtest.h>

#include "common/bitops.h"

namespace {

using namespace sd;

TEST(Bitops, ExtractBits)
{
    EXPECT_EQ(bits(0xff00, 8, 8), 0xffu);
    EXPECT_EQ(bits(0b101100, 2, 3), 0b011u);
    EXPECT_EQ(bits(~0ULL, 0, 64), ~0ULL);
    EXPECT_EQ(bits(0x1234, 0, 0), 0u);
}

TEST(Bitops, InsertBits)
{
    EXPECT_EQ(insertBits(0, 8, 8, 0xab), 0xab00u);
    EXPECT_EQ(insertBits(0xffff, 4, 4, 0), 0xff0fu);
    // Field wider than value is masked.
    EXPECT_EQ(insertBits(0, 0, 4, 0x1f), 0xfu);
}

TEST(Bitops, InsertThenExtractRoundTrip)
{
    std::uint64_t v = 0;
    v = insertBits(v, 6, 3, 0b101);
    v = insertBits(v, 20, 14, 0x1abc);
    EXPECT_EQ(bits(v, 6, 3), 0b101u);
    EXPECT_EQ(bits(v, 20, 14), 0x1abcu);
}

TEST(Bitops, FloorLog2)
{
    EXPECT_EQ(floorLog2(1), 0u);
    EXPECT_EQ(floorLog2(2), 1u);
    EXPECT_EQ(floorLog2(3), 1u);
    EXPECT_EQ(floorLog2(4096), 12u);
}

TEST(Bitops, PowerOfTwo)
{
    EXPECT_TRUE(isPowerOf2(1));
    EXPECT_TRUE(isPowerOf2(64));
    EXPECT_FALSE(isPowerOf2(0));
    EXPECT_FALSE(isPowerOf2(48));
}

} // namespace
