/**
 * @file
 * Address-geometry helpers.
 */

#include <gtest/gtest.h>

#include "common/types.h"

namespace {

using namespace sd;

TEST(Types, LineAlignment)
{
    EXPECT_EQ(lineAlign(0), 0u);
    EXPECT_EQ(lineAlign(63), 0u);
    EXPECT_EQ(lineAlign(64), 64u);
    EXPECT_EQ(lineAlign(0x1234), 0x1200u);
}

TEST(Types, PageAlignment)
{
    EXPECT_EQ(pageAlign(0), 0u);
    EXPECT_EQ(pageAlign(4095), 0u);
    EXPECT_EQ(pageAlign(4096), 4096u);
    EXPECT_TRUE(isPageAligned(0));
    EXPECT_TRUE(isPageAligned(8192));
    EXPECT_FALSE(isPageAligned(4160));
}

TEST(Types, LineAlignedPredicate)
{
    EXPECT_TRUE(isLineAligned(0));
    EXPECT_TRUE(isLineAligned(128));
    EXPECT_FALSE(isLineAligned(65));
}

TEST(Types, DivCeil)
{
    EXPECT_EQ(divCeil(0, 4), 0u);
    EXPECT_EQ(divCeil(1, 4), 1u);
    EXPECT_EQ(divCeil(4, 4), 1u);
    EXPECT_EQ(divCeil(5, 4), 2u);
}

TEST(Types, GeometryConstants)
{
    EXPECT_EQ(kLinesPerPage, 64u);
    EXPECT_EQ(kPageSize, kCacheLineSize * kLinesPerPage);
}

} // namespace
