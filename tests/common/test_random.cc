/**
 * @file
 * Deterministic PRNG behaviour and distribution sanity.
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/random.h"

namespace {

using sd::Rng;

TEST(Random, DeterministicFromSeed)
{
    Rng a(123);
    Rng b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Random, DifferentSeedsDiverge)
{
    Rng a(1);
    Rng b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 3);
}

TEST(Random, BelowStaysInBounds)
{
    Rng rng(3);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.below(17), 17u);
}

TEST(Random, RangeInclusive)
{
    Rng rng(4);
    bool saw_lo = false;
    bool saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        const auto v = rng.range(5, 8);
        EXPECT_GE(v, 5u);
        EXPECT_LE(v, 8u);
        saw_lo |= v == 5;
        saw_hi |= v == 8;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Random, UniformInUnitInterval)
{
    Rng rng(5);
    double sum = 0;
    constexpr int kN = 10000;
    for (int i = 0; i < kN; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / kN, 0.5, 0.02);
}

TEST(Random, ChanceExtremes)
{
    Rng rng(6);
    for (int i = 0; i < 50; ++i) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
    }
}

TEST(Random, ChanceFrequency)
{
    Rng rng(7);
    int hits = 0;
    constexpr int kN = 20000;
    for (int i = 0; i < kN; ++i)
        hits += rng.chance(0.25);
    EXPECT_NEAR(static_cast<double>(hits) / kN, 0.25, 0.02);
}

TEST(Random, ExponentialMean)
{
    Rng rng(8);
    double sum = 0;
    constexpr int kN = 20000;
    for (int i = 0; i < kN; ++i)
        sum += rng.exponential(10.0);
    EXPECT_NEAR(sum / kN, 10.0, 0.5);
}

TEST(Random, ZipfSkewsTowardHead)
{
    Rng rng(9);
    std::vector<int> counts(10, 0);
    for (int i = 0; i < 5000; ++i)
        ++counts[rng.zipf(10, 1.0)];
    EXPECT_GT(counts[0], counts[9] * 3);
}

TEST(Random, FillCoversBuffer)
{
    Rng rng(10);
    std::vector<std::uint8_t> buf(1031, 0);
    rng.fill(buf.data(), buf.size());
    int zeros = 0;
    for (auto b : buf)
        zeros += b == 0;
    EXPECT_LT(zeros, 40); // ~1/256 expected
}

} // namespace
