/**
 * @file
 * Event-queue ordering, priorities, re-entrancy, the runUntil()/
 * reset() time contract, and the zero-copy callback guarantee of the
 * pool-backed heap.
 */

#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "sim/event_queue.h"

namespace {

using sd::EventQueue;
using sd::Tick;

TEST(EventQueue, ExecutesInTimeOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(30, [&] { order.push_back(3); });
    q.schedule(10, [&] { order.push_back(1); });
    q.schedule(20, [&] { order.push_back(2); });
    q.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(q.now(), 30u);
}

TEST(EventQueue, FifoWithinSameTick)
{
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 5; ++i)
        q.schedule(7, [&order, i] { order.push_back(i); });
    q.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, PriorityBreaksTies)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(5, [&] { order.push_back(2); }, 200);
    q.schedule(5, [&] { order.push_back(1); }, 50);
    q.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(EventQueue, EventsMayScheduleEvents)
{
    EventQueue q;
    std::vector<Tick> fired;
    q.schedule(1, [&] {
        fired.push_back(q.now());
        q.scheduleIn(9, [&] { fired.push_back(q.now()); });
    });
    q.run();
    EXPECT_EQ(fired, (std::vector<Tick>{1, 10}));
}

TEST(EventQueue, RunUntilStopsAtLimit)
{
    EventQueue q;
    int count = 0;
    for (Tick t = 10; t <= 100; t += 10)
        q.schedule(t, [&] { ++count; });
    q.runUntil(50);
    EXPECT_EQ(count, 5);
    EXPECT_EQ(q.now(), 50u);
    q.run();
    EXPECT_EQ(count, 10);
}

TEST(EventQueue, RunUntilAdvancesTimeWhenIdle)
{
    EventQueue q;
    q.runUntil(1000);
    EXPECT_EQ(q.now(), 1000u);
    EXPECT_TRUE(q.empty());
}

TEST(EventQueue, ExecutedCounter)
{
    EventQueue q;
    for (int i = 0; i < 3; ++i)
        q.schedule(i + 1, [] {});
    q.run();
    EXPECT_EQ(q.executed(), 3u);
}

TEST(EventQueue, ResetDropsPending)
{
    EventQueue q;
    int count = 0;
    q.schedule(5, [&] { ++count; });
    q.reset();
    q.run();
    EXPECT_EQ(count, 0);
    EXPECT_EQ(q.now(), 0u);
}

TEST(EventQueue, TieBreakIsTickThenPriorityThenSeq)
{
    EventQueue q;
    std::vector<int> order;
    // Same tick: priority wins over insertion order; equal priority
    // falls back to FIFO. An earlier tick beats both.
    q.schedule(5, [&] { order.push_back(3); }, 200);
    q.schedule(5, [&] { order.push_back(1); }, 50);
    q.schedule(5, [&] { order.push_back(2); }, 50);
    q.schedule(4, [&] { order.push_back(0); }, 900);
    q.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(EventQueue, RunUntilExecutesEventsScheduledDuringTheCall)
{
    EventQueue q;
    std::vector<Tick> fired;
    // The event at 10 schedules one at exactly the limit and one past
    // it; runUntil(50) must run the former and keep the latter.
    q.schedule(10, [&] {
        fired.push_back(q.now());
        q.schedule(50, [&] { fired.push_back(q.now()); });
        q.schedule(51, [&] { fired.push_back(q.now()); });
    });
    q.runUntil(50);
    EXPECT_EQ(fired, (std::vector<Tick>{10, 50}));
    EXPECT_EQ(q.pending(), 1u);
    q.run();
    EXPECT_EQ(fired, (std::vector<Tick>{10, 50, 51}));
}

TEST(EventQueue, RunUntilBoundaryAllowsSameTickScheduling)
{
    EventQueue q;
    q.runUntil(100);
    EXPECT_EQ(q.now(), 100u);
    // Scheduling at the boundary tick just reached is legal (earlier
    // is not): time never moves backwards across runUntil().
    bool ran = false;
    q.schedule(100, [&] { ran = true; });
    q.run();
    EXPECT_TRUE(ran);
    EXPECT_EQ(q.now(), 100u);
}

TEST(EventQueue, ResetBehavesLikeFreshQueue)
{
    EventQueue q;
    int count = 0;
    q.schedule(5, [&] { ++count; });
    q.run();
    q.schedule(9, [&] { ++count; });
    q.reset();
    EXPECT_EQ(q.now(), 0u);
    EXPECT_EQ(q.executed(), 0u);
    EXPECT_TRUE(q.empty());
    // Ticks earlier than the pre-reset now() are legal again.
    q.schedule(1, [&] { ++count; });
    q.run();
    EXPECT_EQ(count, 2);
    EXPECT_EQ(q.executed(), 1u);
}

TEST(EventQueue, ResetReleasesOwnershipForThreadHandoff)
{
    EventQueue q;
    q.schedule(3, [] {});
    q.run();
    q.reset();
    // reset() is the single-owner handoff point: a different thread
    // may drive the queue afterwards without tripping the checker.
    int ran = 0;
    std::thread next_owner([&] {
        q.schedule(7, [&] { ++ran; });
        q.run();
    });
    next_owner.join();
    EXPECT_EQ(ran, 1);
}

#if !defined(__SANITIZE_THREAD__)
TEST(EventQueueDeath, SchedulingIntoThePastPanics)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    EXPECT_DEATH(
        {
            EventQueue q;
            q.schedule(100, [] {});
            q.run();
            q.schedule(50, [] {});
        },
        "scheduling into the past");
}
#endif

/** Counts copies/moves to prove the pool never copies callables. */
struct CopyCounter
{
    int *copies;
    int *moves;
    bool *invoked;

    CopyCounter(int *c, int *m, bool *i) : copies(c), moves(m), invoked(i)
    {
    }
    CopyCounter(const CopyCounter &other)
        : copies(other.copies), moves(other.moves), invoked(other.invoked)
    {
        ++*copies;
    }
    CopyCounter(CopyCounter &&other) noexcept
        : copies(other.copies), moves(other.moves), invoked(other.invoked)
    {
        ++*moves;
    }
    void operator()() { *invoked = true; }
};

TEST(EventQueue, CallbacksAreMovedNeverCopied)
{
    // The seed implementation copied the std::function out of
    // priority_queue::top() on every executed event; the pool-backed
    // heap moves callables end to end. Guard against regression.
    int copies = 0;
    int moves = 0;
    bool invoked = false;
    EventQueue q;
    q.schedule(1, CopyCounter(&copies, &moves, &invoked));
    q.run();
    EXPECT_TRUE(invoked);
    EXPECT_EQ(copies, 0);
    EXPECT_GT(moves, 0);
}

TEST(EventQueue, CallbacksMayOwnMoveOnlyState)
{
    // Move-only captures need no shared_ptr shim: the callback owns
    // its state directly.
    EventQueue q;
    auto payload = std::make_unique<int>(42);
    int seen = 0;
    q.schedule(1, [p = std::move(payload), &seen] { seen = *p; });
    q.run();
    EXPECT_EQ(seen, 42);
}

TEST(EventQueue, SlotPoolRecyclesUnderChurn)
{
    // A self-rescheduling chain should reuse one hot slot, not grow
    // the pool linearly with executed events.
    EventQueue q;
    int ticks = 0;
    std::function<void()> beat = [&] {
        if (++ticks < 1000)
            q.scheduleIn(10, beat);
    };
    q.schedule(10, beat);
    q.run();
    EXPECT_EQ(ticks, 1000);
    EXPECT_EQ(q.executed(), 1000u);
    EXPECT_TRUE(q.empty());
}

TEST(EventQueue, PeriodicSelfRescheduling)
{
    EventQueue q;
    int ticks = 0;
    std::function<void()> beat = [&] {
        if (++ticks < 10)
            q.scheduleIn(100, beat);
    };
    q.schedule(100, beat);
    q.run();
    EXPECT_EQ(ticks, 10);
    EXPECT_EQ(q.now(), 1000u);
}

} // namespace
