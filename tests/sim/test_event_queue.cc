/**
 * @file
 * Event-queue ordering, priorities and re-entrancy.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.h"

namespace {

using sd::EventQueue;
using sd::Tick;

TEST(EventQueue, ExecutesInTimeOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(30, [&] { order.push_back(3); });
    q.schedule(10, [&] { order.push_back(1); });
    q.schedule(20, [&] { order.push_back(2); });
    q.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(q.now(), 30u);
}

TEST(EventQueue, FifoWithinSameTick)
{
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 5; ++i)
        q.schedule(7, [&order, i] { order.push_back(i); });
    q.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, PriorityBreaksTies)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(5, [&] { order.push_back(2); }, 200);
    q.schedule(5, [&] { order.push_back(1); }, 50);
    q.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(EventQueue, EventsMayScheduleEvents)
{
    EventQueue q;
    std::vector<Tick> fired;
    q.schedule(1, [&] {
        fired.push_back(q.now());
        q.scheduleIn(9, [&] { fired.push_back(q.now()); });
    });
    q.run();
    EXPECT_EQ(fired, (std::vector<Tick>{1, 10}));
}

TEST(EventQueue, RunUntilStopsAtLimit)
{
    EventQueue q;
    int count = 0;
    for (Tick t = 10; t <= 100; t += 10)
        q.schedule(t, [&] { ++count; });
    q.runUntil(50);
    EXPECT_EQ(count, 5);
    EXPECT_EQ(q.now(), 50u);
    q.run();
    EXPECT_EQ(count, 10);
}

TEST(EventQueue, RunUntilAdvancesTimeWhenIdle)
{
    EventQueue q;
    q.runUntil(1000);
    EXPECT_EQ(q.now(), 1000u);
    EXPECT_TRUE(q.empty());
}

TEST(EventQueue, ExecutedCounter)
{
    EventQueue q;
    for (int i = 0; i < 3; ++i)
        q.schedule(i + 1, [] {});
    q.run();
    EXPECT_EQ(q.executed(), 3u);
}

TEST(EventQueue, ResetDropsPending)
{
    EventQueue q;
    int count = 0;
    q.schedule(5, [&] { ++count; });
    q.reset();
    q.run();
    EXPECT_EQ(count, 0);
    EXPECT_EQ(q.now(), 0u);
}

TEST(EventQueue, PeriodicSelfRescheduling)
{
    EventQueue q;
    int ticks = 0;
    std::function<void()> beat = [&] {
        if (++ticks < 10)
            q.scheduleIn(100, beat);
    };
    q.schedule(100, beat);
    q.run();
    EXPECT_EQ(ticks, 10);
    EXPECT_EQ(q.now(), 1000u);
}

} // namespace
