/**
 * @file
 * Clock-domain conversions, including the 1:4 buffer-device ratio.
 */

#include <gtest/gtest.h>

#include "sim/clock.h"

namespace {

using sd::ClockDomain;
using sd::SystemClocks;

TEST(Clock, PeriodAndCycles)
{
    ClockDomain clk(625); // 1600 MHz
    EXPECT_EQ(clk.period(), 625u);
    EXPECT_EQ(clk.cyclesAt(0), 0u);
    EXPECT_EQ(clk.cyclesAt(624), 0u);
    EXPECT_EQ(clk.cyclesAt(625), 1u);
    EXPECT_EQ(clk.tickOf(10), 6250u);
}

TEST(Clock, NextEdge)
{
    ClockDomain clk(100);
    EXPECT_EQ(clk.nextEdge(0), 0u);
    EXPECT_EQ(clk.nextEdge(1), 100u);
    EXPECT_EQ(clk.nextEdge(100), 100u);
    EXPECT_EQ(clk.nextEdge(101), 200u);
}

TEST(Clock, FromMHz)
{
    const auto clk = ClockDomain::fromMHz(1600.0);
    EXPECT_EQ(clk.period(), 625u);
    const auto slow = ClockDomain::fromMHz(400.0);
    EXPECT_EQ(slow.period(), 2500u);
}

TEST(Clock, BufferDeviceRunsAtQuarterRate)
{
    SystemClocks clocks;
    EXPECT_EQ(clocks.bufferClock.period(),
              4 * clocks.dramClock.period());
    // Four DRAM command slots fit in one buffer-device cycle.
    const auto buf_period = clocks.bufferClock.period();
    EXPECT_EQ(clocks.dramClock.cyclesAt(buf_period), 4u);
}

} // namespace
