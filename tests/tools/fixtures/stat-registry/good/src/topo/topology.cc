// Fixture: stat-registry/good — coordinate-tagged registration with a
// 1x1 legacy fallback (empty suffix), plus a plain component.
#include "trace/trace.h"

namespace sd::topo {

void
Topology::registerStats(trace::StatsRegistry &registry) const
{
    const bool tagged = channels_ > 1 || dimms_ > 1;
    for (const Slot &slot : slots_) {
        const std::string suffix =
            tagged ? ".ch" + std::to_string(slot.channel) + ".d" +
                         std::to_string(slot.dimm)
                   : std::string();
        registry.add("smartdimm" + suffix,
                     [&slot](trace::StatsBlock &block) {
                         block.scalar("hits", slot.hits);
                     });
    }
    registry.add("dispatch", [this](trace::StatsBlock &block) {
        block.scalar("pinned", pinned_);
    });
}

} // namespace sd::topo
