#include "trace/trace.h"

TEST(Stats, CoordinateNamesResolve)
{
    EXPECT_TRUE(json.contains("smartdimm.ch0.d0"));
    EXPECT_TRUE(json.contains("smartdimm.ch1.d1"));
    EXPECT_TRUE(json.contains("dispatch"));
}
