// Fixture: stat-registry/bad — a chC.dD coordinate registration with
// no 1x1 legacy fallback: at 1x1 the name silently becomes
// "queue.ch0.d0" and legacy goldens stop resolving.
#include "trace/trace.h"

namespace sd::topo {

void
Topology::registerStats(trace::StatsRegistry &registry) const
{
    for (const Slot &slot : slots_) {
        registry.add("queue.ch" + std::to_string(slot.channel) + ".d" +
                         std::to_string(slot.dimm),
                     [&slot](trace::StatsBlock &block) {
                         block.scalar("depth", slot.depth);
                     });
    }
}

} // namespace sd::topo
