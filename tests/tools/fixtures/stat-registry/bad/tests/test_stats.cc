#include "trace/trace.h"

TEST(Stats, TypoedName)
{
    // "qeue.ch0.d0" is a typo for "queue.ch0.d0" — no registration
    // declares base "qeue".
    EXPECT_TRUE(json.contains("qeue.ch0.d0"));
}
