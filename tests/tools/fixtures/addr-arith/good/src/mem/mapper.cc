// Fixture: addr-arith/good — unit conversions via named constants,
// narrowing via the checked helpers.
#include "common/bitops.h"
#include "common/types.h"

namespace sd::mem {

unsigned
channelOf(Addr addr, std::uint64_t channels)
{
    const std::uint64_t line = addr >> kLineBits;
    return narrowIdx(line % channels, channels);
}

Addr
rebase(Addr addr, std::uint64_t channels, unsigned channel)
{
    const std::uint64_t in_page = bits(addr, 0, kPageLineBits);
    const std::uint64_t page = addr >> kPageLineBits;
    return (((page / channels) + channel) << kPageLineBits) | in_page;
}

} // namespace sd::mem
