// Fixture: addr-arith/bad — magic unit constants and an unchecked
// narrowing cast of a div/mod result.
#include "common/types.h"

namespace sd::mem {

unsigned
channelOf(Addr addr, std::uint64_t channels)
{
    const std::uint64_t line = addr >> 6;
    return static_cast<unsigned>(line % channels);
}

Addr
pageOf(Addr addr)
{
    return (addr / 4096) * 64;
}

} // namespace sd::mem
