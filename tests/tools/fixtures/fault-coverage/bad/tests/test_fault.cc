#include "fault/fault.h"

TEST(Fault, AlertStormRecovers)
{
    plan.arm(sd::fault::Site::kAlertStorm);
    // kGhostSite is never mentioned by any test.
}
