#include "fault/fault.h"

namespace sd::fault {

const char *const kSiteNames[] = {
    "alert_strm", // typo: should be alert_storm
    "ghost_site",
};

} // namespace sd::fault
