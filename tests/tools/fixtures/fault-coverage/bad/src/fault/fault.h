// Fixture: fault-coverage/bad — kGhostSite has no injection call site,
// no kSiteNames stats entry, and no test reference; kAlertStorm's
// stats name is positionally wrong.
#ifndef FIX_FAULT_H
#define FIX_FAULT_H

namespace sd::fault {

enum class Site {
    kAlertStorm,
    kGhostSite,
    kCount,
};

} // namespace sd::fault

#endif
