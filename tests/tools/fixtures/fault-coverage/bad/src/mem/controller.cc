#include "fault/fault.h"

namespace sd::mem {

void
maybeStorm(fault::FaultPlan *plan)
{
    if (plan && plan->shouldInject(fault::Site::kAlertStorm))
        raiseAlert();
    // kGhostSite is never injected anywhere.
}

} // namespace sd::mem
