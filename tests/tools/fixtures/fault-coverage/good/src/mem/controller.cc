#include "fault/fault.h"

namespace sd::mem {

void
maybeStorm(fault::FaultPlan *plan)
{
    if (plan && plan->shouldInject(fault::Site::kAlertStorm))
        raiseAlert();
    if (plan && plan->shouldInject(fault::Site::kQueueFull))
        rejectSubmission();
    if (plan && plan->shouldInject(fault::Site::kCxlTimeout))
        dropWithheldResponse();
}

} // namespace sd::mem
