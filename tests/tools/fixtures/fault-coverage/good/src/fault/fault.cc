#include "fault/fault.h"

namespace sd::fault {

const char *const kSiteNames[] = {
    "alert_storm",
    "queue_full",
    "cxl_timeout",
};

} // namespace sd::fault
