// Fixture: fault-coverage/good — every Site member has an injection
// call site, a positional kSiteNames entry, and a test reference.
#ifndef FIX_FAULT_H
#define FIX_FAULT_H

namespace sd::fault {

enum class Site {
    kAlertStorm,
    kQueueFull,
    kCxlTimeout,
    kCount,
};

} // namespace sd::fault

#endif
