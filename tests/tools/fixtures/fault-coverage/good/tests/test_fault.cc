#include "fault/fault.h"

TEST(Fault, AlertStormRecovers)
{
    plan.arm(sd::fault::Site::kAlertStorm);
    plan.arm(sd::fault::Site::kQueueFull);
    plan.arm(sd::fault::Site::kCxlTimeout);
}
