// Fixture: span-flow/bad — spans leak through early returns, loop
// continues, and fall-off-the-end paths.
#include "trace/trace.h"

namespace sd {

int
earlyReturnLeaks(bool fail)
{
    auto span = SD_SPAN_BEGIN("work", 0, 0, 0, 1);
    if (fail)
        return -1; // leaks the open span
    SD_SPAN_END(span, trace::Status::kOk);
    return 0;
}

void
ifWithoutElseLeaks(bool ok)
{
    auto span = SD_SPAN_BEGIN("work", 0, 0, 0, 1);
    if (ok) {
        SD_SPAN_END(span, trace::Status::kOk);
    }
    // falls off the end with the span open on the !ok path
}

void
continueSkipsEnd(int n)
{
    for (int i = 0; i < n; ++i) {
        auto span = SD_SPAN_BEGIN("iter", 0, 0, 0, 1);
        if (i == 3)
            continue; // leaks this iteration's span
        SD_SPAN_END(span, trace::Status::kOk);
    }
}

} // namespace sd
