// Fixture: span-flow/good — every SD_SPAN_BEGIN reaches an END on all
// paths, including the branch-balanced if/else form the old linear
// sdlint rule used to mis-flag.
#include "trace/trace.h"

namespace sd {

void
linearBalanced(int x)
{
    auto span = SD_SPAN_BEGIN("work", 0, 0, 0, 1);
    doWork(x);
    SD_SPAN_END(span, trace::Status::kOk);
}

int
earlyReturnClosesFirst(bool fail)
{
    auto span = SD_SPAN_BEGIN("work", 0, 0, 0, 1);
    if (fail) {
        SD_SPAN_END(span, trace::Status::kError);
        return -1;
    }
    SD_SPAN_END(span, trace::Status::kOk);
    return 0;
}

void
branchBalancedBothArms(bool degraded)
{
    auto span = SD_SPAN_BEGIN("work", 0, 0, 0, 1);
    if (degraded) {
        SD_SPAN_END(span, trace::Status::kDegraded);
    } else {
        SD_SPAN_END(span, trace::Status::kOk);
    }
}

void
loopScopedSpans(int n)
{
    for (int i = 0; i < n; ++i) {
        auto span = SD_SPAN_BEGIN("iter", 0, 0, 0, 1);
        doWork(i);
        SD_SPAN_END(span, trace::Status::kOk);
    }
}

} // namespace sd
