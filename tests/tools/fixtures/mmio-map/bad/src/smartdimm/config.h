// Fixture: mmio-map/bad — kRegister overlaps kFreePages' 64-byte
// burst, kBroken is not 8-byte aligned, and kOutside does not fit the
// window.
#ifndef FIX_CONFIG_H
#define FIX_CONFIG_H

namespace sd::smartdimm {

enum class MmioReg : unsigned {
    kFreePages = 0x000,
    kRegister = 0x020,
    kBroken = 0x041,
    kOutside = 0x100000,
};

struct Config {
    Addr mmio_base = 0xF000'0000ULL;
    Addr mmio_bytes = 1ULL << 20;
};

} // namespace sd::smartdimm

#endif
