// Raw mmio_base arithmetic and a numeric MmioReg cast outside the
// window helpers: per-DIMM rebasing is silently bypassed.
#include "smartdimm/config.h"

namespace sd::compcpy {

void
poke(const smartdimm::Config &config, Memory &memory)
{
    memory.write64(config.mmio_base + 0x40, 1);
    const Addr reg =
        static_cast<Addr>(smartdimm::MmioReg::kFreePages);
    memory.write64(config.mmio_base + reg, 2);
}

} // namespace sd::compcpy
