// Window helper: the one blessed place that adds mmio_base to a
// register offset (file is on the mmio-map allowlist).
#ifndef FIX_DRIVER_H
#define FIX_DRIVER_H

#include "smartdimm/config.h"

namespace sd::compcpy {

class Driver {
  public:
    Addr mmio(smartdimm::MmioReg reg) const
    {
        return config_.mmio_base + static_cast<Addr>(reg);
    }
};

} // namespace sd::compcpy

#endif
