// A register access outside the allowlist must flow through the
// window helper — and does.
#include "compcpy/driver.h"

namespace sd::compcpy {

void
poke(Driver &driver, Memory &memory)
{
    memory.write64(driver.mmio(smartdimm::MmioReg::kRegister), 1);
}

} // namespace sd::compcpy
