// Fixture: mmio-map/good — unique, 8-byte-aligned, 64-byte-spaced
// register offsets that fit the per-DIMM window.
#ifndef FIX_CONFIG_H
#define FIX_CONFIG_H

namespace sd::smartdimm {

enum class MmioReg : unsigned {
    kFreePages = 0x000,
    kRegister = 0x040,
    kFaultStatus = 0x080,
};

struct Config {
    Addr mmio_base = 0xF000'0000ULL;
    Addr mmio_bytes = 1ULL << 20;
};

} // namespace sd::smartdimm

#endif
