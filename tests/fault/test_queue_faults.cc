/**
 * @file
 * Fault paths of the work-queue front end: injected kQueueFull
 * backpressure (a stuck not-ready signal — every injection is exactly
 * one rejected submit, and the sync facade's bounded retry rides it
 * out), and kLostCompletion (the host-visible record drops after the
 * device ack; poll-timeout recovery diffs kQueueStatus and synthesises
 * the record, flagged `recovered`).
 */

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <vector>

#include "cache/memory_system.h"
#include "common/random.h"
#include "compcpy/compcpy.h"
#include "compcpy/driver.h"
#include "compcpy/queue.h"
#include "crypto/aes_gcm.h"
#include "fault/fault.h"
#include "sim/event_queue.h"
#include "smartdimm/buffer_device.h"

namespace {

using namespace sd;
using compcpy::CompletionStatus;
using compcpy::Descriptor;
using compcpy::WorkQueue;
using compcpy::WorkQueueConfig;
using fault::FaultPlan;
using fault::Site;

/** One-channel SmartDIMM rig with an attachable fault plan. */
struct System
{
    EventQueue events;
    mem::BackingStore store;
    mem::DramGeometry geometry;
    mem::AddressMap map;
    smartdimm::BufferDevice dimm;
    std::unique_ptr<cache::MemorySystem> memory;
    compcpy::Driver driver;
    compcpy::CompCpyEngine::SharedState shared;
    compcpy::CompCpyEngine engine;

    System()
        : geometry(makeGeometry()),
          map(geometry, mem::ChannelInterleave::kNone),
          dimm(events, map, store),
          driver(/*base=*/1ULL << 20, /*bytes=*/512ULL << 20),
          engine(makeMemory(), driver, shared)
    {
    }

    static mem::DramGeometry
    makeGeometry()
    {
        mem::DramGeometry g;
        g.channels = 1;
        return g;
    }

    cache::MemorySystem &
    makeMemory()
    {
        cache::CacheConfig cc;
        cc.size_bytes = 4ull << 20;
        memory = std::make_unique<cache::MemorySystem>(
            events, geometry, mem::ChannelInterleave::kNone, cc,
            std::vector<mem::DimmDevice *>{&dimm});
        return *memory;
    }

    void
    attach(FaultPlan *plan)
    {
        dimm.setFaultPlan(plan);
        memory->setFaultPlan(plan);
        engine.setFaultPlan(plan);
    }
};

/** A staged 4 KB TLS op plus its software-reference ciphertext. */
struct TlsOp
{
    compcpy::CompCpyParams params;
    std::vector<std::uint8_t> expect; ///< ciphertext || tag
    std::size_t dst_bytes = 0;
};

TlsOp
makeTlsOp(System &sys, Rng &rng, std::uint64_t msg_id)
{
    const std::size_t len = 4096;
    TlsOp op;
    std::vector<std::uint8_t> plain(len);
    rng.fill(plain.data(), len);
    std::uint8_t key[16];
    rng.fill(key, 16);
    crypto::GcmIv iv{};
    rng.fill(iv.data(), iv.size());

    op.dst_bytes = divCeil(len + 16, kPageSize) * kPageSize;
    const Addr sbuf = sys.driver.alloc(len);
    const Addr dbuf = sys.driver.alloc(op.dst_bytes);
    sys.memory->writeSync(sbuf, plain.data(), len);

    op.params.sbuf = sbuf;
    op.params.dbuf = dbuf;
    op.params.size = len;
    op.params.ulp = smartdimm::UlpKind::kTlsEncrypt;
    op.params.message_id = msg_id;
    std::memcpy(op.params.key, key, 16);
    op.params.iv = iv;

    crypto::GcmContext ctx(key, crypto::Aes::KeySize::k128);
    op.expect.resize(len + 16);
    const crypto::GcmTag tag =
        ctx.encrypt(iv, plain.data(), len, op.expect.data());
    std::memcpy(op.expect.data() + len, tag.data(), 16);
    return op;
}

void
verify(System &sys, const TlsOp &op)
{
    sys.engine.useSync(op.params.dbuf, op.dst_bytes);
    const auto result =
        sys.engine.readResult(op.params.dbuf, op.expect.size());
    EXPECT_EQ(result, op.expect) << "output must stay bit-exact";
}

TEST(QueueFaults, InjectedQueueFullRejectsExactlyPerInjection)
{
    System sys;
    FaultPlan plan(51);
    plan.add(Site::kQueueFull, 0, /*count=*/2);
    sys.attach(&plan);

    WorkQueueConfig cfg;
    cfg.depth = 8; // room to spare: rejections are purely injected
    WorkQueue queue(sys.engine, cfg);

    Rng rng(52);
    TlsOp op = makeTlsOp(sys, rng, 1);

    // The plan is consulted only when the ring has room, so each
    // injection maps to exactly one rejected submit — conservation.
    EXPECT_FALSE(queue.submit(Descriptor::single(op.params)).has_value());
    EXPECT_FALSE(queue.submit(Descriptor::single(op.params)).has_value());
    const auto id = queue.submit(Descriptor::single(op.params));
    ASSERT_TRUE(id.has_value());

    EXPECT_EQ(plan.injected(Site::kQueueFull), 2u);
    EXPECT_EQ(queue.stats().rejected_full, 2u);
    EXPECT_EQ(queue.stats().submitted, 1u);

    const auto rec = queue.wait(*id);
    EXPECT_EQ(rec.status, CompletionStatus::kSuccess);
    EXPECT_FALSE(rec.recovered);
    verify(sys, op);
}

TEST(QueueFaults, SyncFacadeRetriesThroughInjectedFull)
{
    System sys;
    FaultPlan plan(53);
    plan.add(Site::kQueueFull, 0, /*count=*/3);
    sys.attach(&plan);

    Rng rng(54);
    TlsOp op = makeTlsOp(sys, rng, 2);
    sys.engine.run(op.params); // must not wedge: bounded retry

    const auto &qs = sys.engine.syncQueue().stats();
    EXPECT_EQ(plan.injected(Site::kQueueFull), 3u);
    EXPECT_EQ(qs.rejected_full, 3u);
    EXPECT_EQ(qs.submitted, 1u);
    EXPECT_EQ(qs.completions, 1u);
    EXPECT_EQ(qs.bailouts, 0u);
    verify(sys, op);
}

TEST(QueueFaults, LostCompletionRecoveredByWait)
{
    System sys;
    FaultPlan plan(55);
    plan.add(Site::kLostCompletion, 0, /*count=*/1);
    sys.attach(&plan);

    Rng rng(56);
    TlsOp op = makeTlsOp(sys, rng, 3);
    sys.engine.run(op.params); // wait() inside recovers the record

    const auto &qs = sys.engine.syncQueue().stats();
    EXPECT_EQ(plan.injected(Site::kLostCompletion), 1u);
    EXPECT_EQ(qs.lost_records, 1u);
    EXPECT_EQ(qs.recovered_records, 1u);
    EXPECT_EQ(qs.completions, 1u);
    EXPECT_GE(qs.recovery_polls, 1u);
    EXPECT_EQ(qs.bailouts, 0u)
        << "a recoverable drop must not escalate to bailout";
    // Recovery re-derived the loss from the device's kQueueStatus
    // counts, so the device saw both the doorbell and the ack.
    EXPECT_EQ(sys.dimm.stats().doorbell_rings, 1u);
    EXPECT_EQ(sys.dimm.stats().completion_acks, 1u);
    verify(sys, op);
}

TEST(QueueFaults, LostCompletionRecoveredByPollTimeout)
{
    System sys;
    FaultPlan plan(57);
    plan.add(Site::kLostCompletion, 0, /*count=*/1);
    sys.attach(&plan);

    WorkQueueConfig cfg;
    cfg.poll_timeout = 0; // any executed-but-unrecorded entry is late
    WorkQueue queue(sys.engine, cfg);

    Rng rng(58);
    TlsOp op = makeTlsOp(sys, rng, 4);
    const auto id = queue.submit(Descriptor::single(op.params));
    ASSERT_TRUE(id.has_value());

    // Run the op to completion: the device acked, the record dropped.
    sys.events.run();
    EXPECT_EQ(queue.stats().lost_records, 1u);
    EXPECT_EQ(queue.occupancy(), 1u) << "descriptor still unrecorded";

    // First poll finds nothing but arms recovery (kQueueStatus read)…
    EXPECT_TRUE(queue.poll().empty());
    sys.events.run();

    // …and the next poll reaps the synthesised record.
    const auto records = queue.poll();
    ASSERT_EQ(records.size(), 1u);
    EXPECT_EQ(records[0].id, *id);
    EXPECT_TRUE(records[0].recovered);
    EXPECT_EQ(records[0].status, CompletionStatus::kSuccess);
    EXPECT_EQ(queue.stats().recovered_records, 1u);
    EXPECT_GE(queue.stats().recovery_polls, 1u);
    EXPECT_EQ(queue.occupancy(), 0u);
    verify(sys, op);
}

TEST(QueueFaults, RepeatedLossesAllRecoverInOneBatch)
{
    // Three descriptors, every record dropped: one recovery poll can
    // account for all of them (deficit == 3) in submission order.
    System sys;
    FaultPlan plan(59);
    plan.add(Site::kLostCompletion, 0, /*count=*/3);
    sys.attach(&plan);

    WorkQueueConfig cfg;
    cfg.poll_timeout = 0;
    WorkQueue queue(sys.engine, cfg);

    Rng rng(60);
    std::vector<TlsOp> ops;
    for (int i = 0; i < 3; ++i) {
        ops.push_back(makeTlsOp(sys, rng, 10 + i));
        ASSERT_TRUE(
            queue.submit(Descriptor::single(ops.back().params))
                .has_value());
    }
    sys.events.run();
    EXPECT_EQ(queue.stats().lost_records, 3u);

    EXPECT_TRUE(queue.poll().empty()); // arms recovery
    sys.events.run();
    const auto records = queue.poll();
    ASSERT_EQ(records.size(), 3u);
    for (std::size_t i = 0; i < records.size(); ++i) {
        EXPECT_TRUE(records[i].recovered);
        EXPECT_EQ(records[i].id, i + 1)
            << "recovery reaps oldest-first";
    }
    EXPECT_EQ(queue.stats().recovered_records, 3u);
    EXPECT_EQ(queue.stats().bailouts, 0u);
    for (const auto &op : ops)
        verify(sys, op);
}

} // namespace
