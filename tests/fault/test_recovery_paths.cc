/**
 * @file
 * Recovery paths above the controller: rejected registrations (the
 * pages degrade to plain DRAM and the host learns via kFaultStatus),
 * cuckoo-table insert faults, freePages lies driving Force-Recycle and
 * its bail-out bound, write-drain delays, and scripted network faults.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <vector>

#include "cache/memory_system.h"
#include "common/random.h"
#include "compcpy/compcpy.h"
#include "compcpy/driver.h"
#include "crypto/aes_gcm.h"
#include "fault/fault.h"
#include "net/loss_model.h"
#include "net/tcp_stream.h"
#include "sim/event_queue.h"
#include "smartdimm/buffer_device.h"
#include "smartdimm/cuckoo_table.h"

namespace {

using namespace sd;

/** One-channel SmartDIMM rig with an attachable fault plan. */
struct System
{
    EventQueue events;
    mem::BackingStore store;
    mem::DramGeometry geometry;
    mem::AddressMap map;
    smartdimm::BufferDevice dimm;
    std::unique_ptr<cache::MemorySystem> memory;
    compcpy::Driver driver;
    compcpy::CompCpyEngine::SharedState shared;
    compcpy::CompCpyEngine engine;

    System()
        : geometry(makeGeometry()),
          map(geometry, mem::ChannelInterleave::kNone),
          dimm(events, map, store),
          driver(/*base=*/1ULL << 20, /*bytes=*/512ULL << 20),
          engine(makeMemory(), driver, shared)
    {
    }

    static mem::DramGeometry
    makeGeometry()
    {
        mem::DramGeometry g;
        g.channels = 1;
        return g;
    }

    cache::MemorySystem &
    makeMemory()
    {
        cache::CacheConfig cc;
        cc.size_bytes = 4ull << 20;
        memory = std::make_unique<cache::MemorySystem>(
            events, geometry, mem::ChannelInterleave::kNone, cc,
            std::vector<mem::DimmDevice *>{&dimm});
        return *memory;
    }

    void
    attach(fault::FaultPlan *plan)
    {
        dimm.setFaultPlan(plan);
        memory->setFaultPlan(plan);
        engine.setFaultPlan(plan);
    }
};

/** Run one 4 KB TLS CompCpy and return what readResult sees. */
std::vector<std::uint8_t>
runTls(System &sys, const std::vector<std::uint8_t> &plain,
       const std::uint8_t key[16], const crypto::GcmIv &iv,
       std::uint64_t message_id)
{
    const std::size_t len = plain.size();
    const Addr sbuf = sys.driver.alloc(len);
    const Addr dbuf = sys.driver.alloc(len + kPageSize);
    sys.memory->writeSync(sbuf, plain.data(), len);

    compcpy::CompCpyParams params;
    params.sbuf = sbuf;
    params.dbuf = dbuf;
    params.size = len;
    params.ulp = smartdimm::UlpKind::kTlsEncrypt;
    params.message_id = message_id;
    std::memcpy(params.key, key, 16);
    params.iv = iv;

    sys.engine.run(params);
    sys.engine.useSync(dbuf, divCeil(len + 16, kPageSize) * kPageSize);
    return sys.engine.readResult(dbuf, len + 16);
}

std::vector<std::uint8_t>
softwareCiphertext(const std::vector<std::uint8_t> &plain,
                   const std::uint8_t key[16], const crypto::GcmIv &iv)
{
    crypto::GcmContext ctx(key, crypto::Aes::KeySize::k128);
    std::vector<std::uint8_t> expect(plain.size() + 16);
    const crypto::GcmTag tag =
        ctx.encrypt(iv, plain.data(), plain.size(), expect.data());
    std::memcpy(expect.data() + plain.size(), tag.data(), 16);
    return expect;
}

TEST(RecoveryPaths, ScratchpadExhaustRejectsAndDegradesGracefully)
{
    System sys;
    fault::FaultPlan plan(1);
    plan.add(fault::Site::kScratchpadExhaust, 0, /*count=*/1);
    sys.attach(&plan);

    Rng rng(11);
    std::vector<std::uint8_t> plain(4096);
    rng.fill(plain.data(), plain.size());
    std::uint8_t key[16];
    rng.fill(key, 16);
    crypto::GcmIv iv{};
    rng.fill(iv.data(), iv.size());

    const auto result = runTls(sys, plain, key, iv, 1);

    // The data page's registration was rejected, so its lines behaved
    // as plain DRAM: the copy went through unencrypted and the call is
    // flagged degraded instead of aborting.
    EXPECT_EQ(sys.dimm.stats().rejected_registrations, 1u);
    EXPECT_EQ(sys.engine.stats().rejected_registrations, 1u);
    EXPECT_EQ(sys.engine.stats().degraded_calls, 1u);
    EXPECT_TRUE(sys.engine.lastCallDegraded());
    ASSERT_EQ(result.size(), plain.size() + 16);
    EXPECT_EQ(0, std::memcmp(result.data(), plain.data(), plain.size()))
        << "rejected pages must behave as plain DRAM";
    // No scratchpad page leaked by the rollback.
    EXPECT_LE(sys.dimm.scratchpad().livePages(), 1u);
}

TEST(RecoveryPaths, ConfigMemoryExhaustRejectsRegistration)
{
    System sys;
    fault::FaultPlan plan(2);
    plan.add(fault::Site::kConfigMemExhaust, 0, /*count=*/1);
    sys.attach(&plan);

    Rng rng(12);
    std::vector<std::uint8_t> plain(4096);
    rng.fill(plain.data(), plain.size());
    std::uint8_t key[16];
    rng.fill(key, 16);
    crypto::GcmIv iv{};
    rng.fill(iv.data(), iv.size());

    runTls(sys, plain, key, iv, 2);

    EXPECT_EQ(sys.dimm.stats().rejected_registrations, 1u);
    EXPECT_TRUE(sys.engine.lastCallDegraded());
    EXPECT_EQ(plan.injected(fault::Site::kConfigMemExhaust), 1u);
}

TEST(RecoveryPaths, CuckooInsertFailureSurfacesAsRejection)
{
    System sys;
    fault::FaultPlan plan(3);
    plan.add(fault::Site::kCuckooInsertFail, 0, /*count=*/1);
    sys.attach(&plan);

    Rng rng(13);
    std::vector<std::uint8_t> plain(4096);
    rng.fill(plain.data(), plain.size());
    std::uint8_t key[16];
    rng.fill(key, 16);
    crypto::GcmIv iv{};
    rng.fill(iv.data(), iv.size());

    runTls(sys, plain, key, iv, 3);

    EXPECT_EQ(sys.dimm.translationTable().stats().failures, 1u);
    EXPECT_EQ(sys.dimm.stats().rejected_registrations, 1u);
    EXPECT_TRUE(sys.engine.lastCallDegraded());
}

TEST(RecoveryPaths, ForcedCuckooConflictsStillResolve)
{
    // Unit-level: forced displacement chains must still produce a
    // correct table (CAM staging + direct placement into an empty
    // bucket), never a lost or corrupt mapping.
    smartdimm::CuckooTable table(/*buckets=*/64, /*cam_entries=*/8);
    fault::FaultPlan plan(4);
    plan.add(fault::Site::kCuckooConflict, 0, /*count=*/5);
    table.setFaultPlan(&plan);

    for (std::uint64_t page = 100; page < 110; ++page) {
        smartdimm::Translation t;
        t.kind = smartdimm::MappingKind::kScratchpad;
        t.offset = static_cast<std::uint32_t>(page);
        ASSERT_TRUE(table.insert(page, t)) << "page " << page;
    }
    EXPECT_EQ(plan.injected(fault::Site::kCuckooConflict), 5u);
    EXPECT_GE(table.stats().displaced_inserts, 5u);

    for (std::uint64_t page = 100; page < 110; ++page) {
        const auto t = table.lookup(page);
        ASSERT_TRUE(t.has_value()) << "page " << page;
        EXPECT_EQ(t->offset, page);
    }
    EXPECT_EQ(table.size(), 10u);
}

TEST(RecoveryPaths, FreePagesLieDrivesForceRecycleThenRecovers)
{
    System sys;
    fault::FaultPlan plan(5);
    plan.add(fault::Site::kFreePagesLie, 0, /*count=*/1);
    sys.attach(&plan);

    Rng rng(14);
    std::vector<std::uint8_t> plain(4096);
    rng.fill(plain.data(), plain.size());
    std::uint8_t key[16];
    rng.fill(key, 16);
    crypto::GcmIv iv{};
    rng.fill(iv.data(), iv.size());

    const auto result = runTls(sys, plain, key, iv, 4);

    // One lie: the engine took Alg. 1, re-read the truth and finished
    // bit-exactly — no degradation.
    EXPECT_EQ(sys.dimm.stats().freepages_lies, 1u);
    EXPECT_GE(sys.engine.stats().force_recycles, 1u);
    EXPECT_EQ(sys.engine.stats().recycle_bailouts, 0u);
    EXPECT_FALSE(sys.engine.lastCallDegraded());
    EXPECT_EQ(result, softwareCiphertext(plain, key, iv));
}

TEST(RecoveryPaths, PersistentFreePagesLiesBailOutBounded)
{
    System sys;
    fault::FaultPlan plan(6);
    plan.add(fault::Site::kFreePagesLie); // every read lies, forever
    sys.attach(&plan);

    Rng rng(15);
    std::vector<std::uint8_t> plain(4096);
    rng.fill(plain.data(), plain.size());
    std::uint8_t key[16];
    rng.fill(key, 16);
    crypto::GcmIv iv{};
    rng.fill(iv.data(), iv.size());

    const auto result = runTls(sys, plain, key, iv, 5);

    // The Force-Recycle loop is bounded: past the attempt budget the
    // engine proceeds optimistically, and since the scratchpad really
    // had room the offload still completes bit-exactly.
    EXPECT_EQ(sys.engine.stats().recycle_bailouts, 1u);
    EXPECT_GE(sys.engine.stats().force_recycles, 1u);
    EXPECT_GE(sys.dimm.stats().freepages_lies, 1u);
    EXPECT_EQ(result, softwareCiphertext(plain, key, iv));
}

TEST(RecoveryPaths, WriteDrainDelayLosesNoWrites)
{
    EventQueue events;
    mem::BackingStore store;
    mem::DramGeometry g;
    g.channels = 1;
    mem::AddressMap map(g, mem::ChannelInterleave::kNone);
    smartdimm::BufferDevice dimm(events, map, store);
    mem::MemoryController mc(events, map, mem::DramTiming{},
                             mem::ControllerConfig{}, 0, dimm);
    fault::FaultPlan plan(7);
    plan.add(fault::Site::kWriteDrainDelay, 0, /*count=*/2);
    mc.setFaultPlan(&plan);

    std::uint8_t line[64] = {0xAB};
    int writes_done = 0;
    for (int i = 0; i < 56; ++i)
        mc.enqueueWrite(0x80000 + i * 64ull, line,
                        [&](Tick, mem::MemStatus) { ++writes_done; });
    std::uint8_t buf[64];
    int reads_done = 0;
    for (int i = 0; i < 8; ++i)
        mc.enqueueRead(0x200000 + i * 64ull, buf,
                       [&](Tick, mem::MemStatus) { ++reads_done; });
    events.run();

    EXPECT_EQ(writes_done, 56);
    EXPECT_EQ(reads_done, 8);
    EXPECT_EQ(plan.injected(fault::Site::kWriteDrainDelay), 2u);
    // Delayed or not, every queued write eventually hit the DIMM.
    std::uint8_t back[64];
    store.read(0x80000, back, 64);
    EXPECT_EQ(back[0], 0xAB);
}

TEST(RecoveryPaths, ScriptedLossAndReorderAreExact)
{
    net::LossConfig config; // no Bernoulli noise
    net::LossInjector injector(config, /*seed=*/1);
    fault::FaultPlan plan(8);
    plan.add(fault::Site::kNetLoss, /*skip=*/2, /*count=*/2);
    plan.add(fault::Site::kNetReorder, 0, /*count=*/3);
    injector.setFaultPlan(&plan);

    int drops = 0;
    int reorders = 0;
    for (int i = 0; i < 50; ++i) {
        drops += injector.shouldDrop();
        reorders += injector.shouldReorder();
    }
    EXPECT_EQ(drops, 2);
    EXPECT_EQ(reorders, 3);
    EXPECT_EQ(injector.scriptedDrops(), 2u);
    EXPECT_EQ(injector.scriptedReorders(), 3u);
    EXPECT_EQ(injector.drops(), 2u);
    EXPECT_EQ(injector.reorders(), 3u);
}

TEST(RecoveryPaths, ScriptedBurstLossForcesTcpRecovery)
{
    net::TcpConfig tcp;
    net::LossConfig loss;
    loss.burst_len = 4;

    const auto clean = net::tcpTransfer(1 << 20, tcp, loss, /*seed=*/3);
    EXPECT_EQ(clean.retransmits, 0u);

    auto run = [&]() {
        auto plan = fault::FaultPlan(9);
        plan.add(fault::Site::kNetLoss, /*skip=*/40, /*count=*/1);
        plan.add(fault::Site::kNetReorder, /*skip=*/100, /*count=*/1);
        return net::tcpTransfer(1 << 20, tcp, loss, /*seed=*/3, &plan);
    };
    const auto faulty = run();
    EXPECT_EQ(faulty.retransmits, 4u) << "one scripted burst of 4";
    EXPECT_EQ(faulty.reorder_events, 1u);
    EXPECT_GT(faulty.seconds, clean.seconds)
        << "loss recovery must cost time";
    EXPECT_GT(faulty.resyncEvents(), clean.resyncEvents());

    // Determinism: an identical plan replays the identical transfer.
    const auto again = run();
    EXPECT_EQ(again.seconds, faulty.seconds);
    EXPECT_EQ(again.segments_sent, faulty.segments_sent);
    EXPECT_EQ(again.retransmits, faulty.retransmits);
}

} // namespace
