/**
 * @file
 * ALERT_N recovery path at the memory controller: a spurious-alert
 * storm (injected via kAlertStorm) or a persistently-unready device
 * must never abort the simulation. The controller retries in a fast
 * window, backs off exponentially, and past the retry budget completes
 * the read with MemStatus::kDegraded so the host can fall back.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "cache/memory_system.h"
#include "fault/fault.h"
#include "mem/backing_store.h"
#include "mem/memory_controller.h"
#include "sim/event_queue.h"

namespace {

using namespace sd;
using mem::AddressMap;
using mem::ChannelInterleave;
using mem::ControllerConfig;
using mem::DdrCommand;
using mem::DramGeometry;
using mem::DramTiming;
using mem::MemoryController;
using mem::MemStatus;

/** Device that answers ALERT_N a configurable number of times. */
class AlertingDimm : public mem::DimmDevice
{
  public:
    explicit AlertingDimm(mem::BackingStore &store) : store_(store) {}

    void onCommand(const DdrCommand &) override {}

    mem::ReadResponse
    onRead(const DdrCommand &cmd, std::uint8_t *data) override
    {
        if (alerts_remaining_ > 0) {
            --alerts_remaining_;
            ++alerts_issued_;
            return mem::ReadResponse::kAlertN;
        }
        store_.read(cmd.addr, data, kCacheLineSize);
        return mem::ReadResponse::kOk;
    }

    void
    onWrite(const DdrCommand &cmd, const std::uint8_t *data) override
    {
        store_.write(cmd.addr, data, kCacheLineSize);
    }

    long alerts_remaining_ = 0;
    std::uint64_t alerts_issued_ = 0;

  private:
    mem::BackingStore &store_;
};

struct Rig
{
    EventQueue events;
    mem::BackingStore store;
    DramGeometry geometry;
    AddressMap map;
    AlertingDimm dimm;
    MemoryController mc;

    Rig()
        : geometry(makeGeometry()),
          map(geometry, ChannelInterleave::kNone), dimm(store),
          mc(events, map, DramTiming{}, ControllerConfig{}, 0, dimm)
    {
    }

    static DramGeometry
    makeGeometry()
    {
        DramGeometry g;
        g.channels = 1;
        return g;
    }

    MemStatus
    readSync(Addr addr, std::uint8_t *data)
    {
        bool done = false;
        MemStatus status = MemStatus::kOk;
        mc.enqueueRead(addr, data, [&](Tick, MemStatus s) {
            status = s;
            done = true;
        });
        while (!done)
            events.run();
        return status;
    }

    void
    writeSync(Addr addr, const std::uint8_t *data)
    {
        bool done = false;
        mc.enqueueWrite(addr, data,
                        [&](Tick, MemStatus) { done = true; });
        while (!done)
            events.run();
    }
};

TEST(AlertRecovery, SpuriousStormRecoversWithCorrectData)
{
    Rig rig;
    fault::FaultPlan plan(1);
    plan.add(fault::Site::kAlertStorm, 0, /*count=*/3);
    rig.mc.setFaultPlan(&plan);

    std::uint8_t line[64];
    for (int i = 0; i < 64; ++i)
        line[i] = static_cast<std::uint8_t>(i * 3);
    rig.writeSync(0x8000, line);

    std::uint8_t back[64] = {};
    EXPECT_EQ(rig.readSync(0x8000, back), MemStatus::kOk);
    EXPECT_EQ(0, std::memcmp(line, back, 64));

    const auto &stats = rig.mc.stats();
    EXPECT_EQ(stats.spurious_alerts, 3u);
    EXPECT_EQ(stats.alert_retries, 3u);
    EXPECT_EQ(stats.degraded_reads, 0u);
    EXPECT_EQ(plan.injected(fault::Site::kAlertStorm), 3u);
}

TEST(AlertRecovery, RetryBudgetExhaustionCompletesDegraded)
{
    Rig rig;
    std::uint8_t line[64] = {0x77};
    rig.writeSync(0x9000, line);

    // Device never becomes ready within the budget.
    rig.dimm.alerts_remaining_ = 1'000'000;
    std::uint8_t back[64] = {};
    EXPECT_EQ(rig.readSync(0x9000, back), MemStatus::kDegraded);

    const ControllerConfig config;
    const auto &stats = rig.mc.stats();
    EXPECT_EQ(stats.degraded_reads, 1u);
    EXPECT_EQ(stats.alert_retries, config.alert_max_retries);
    // Attempts past the fast window back off; the final attempt
    // degrades instead of backing off.
    EXPECT_EQ(stats.alert_backoffs,
              config.alert_max_retries - config.alert_fast_retries - 1);
    // The degraded read still counts as a completed read.
    EXPECT_EQ(stats.reads, 1u);
}

TEST(AlertRecovery, BackoffDelaysRetriesBeyondFastWindow)
{
    // Same storm twice: one rig with default backoff, one with a huge
    // backoff base. The degraded completion must land later on the
    // latter — evidence the exponential backoff actually waits.
    auto run = [](Cycles base) {
        EventQueue events;
        mem::BackingStore store;
        DramGeometry g;
        g.channels = 1;
        AddressMap map(g, ChannelInterleave::kNone);
        AlertingDimm dimm(store);
        ControllerConfig config;
        config.alert_backoff_base = base;
        MemoryController mc(events, map, DramTiming{}, config, 0, dimm);
        dimm.alerts_remaining_ = 1'000'000;
        std::uint8_t buf[64];
        bool done = false;
        mc.enqueueRead(0x4000, buf,
                       [&](Tick, MemStatus) { done = true; });
        while (!done)
            events.run();
        return events.now();
    };
    EXPECT_GT(run(512), run(4));
}

TEST(AlertRecovery, ConservationAcrossGenuineAndSpuriousAlerts)
{
    Rig rig;
    fault::FaultPlan plan(2);
    plan.add(fault::Site::kAlertStorm, 0, /*count=*/2);
    rig.mc.setFaultPlan(&plan);

    std::uint8_t line[64] = {1};
    rig.writeSync(0xA000, line);
    rig.dimm.alerts_remaining_ = 3; // genuine alerts first

    std::uint8_t back[64] = {};
    EXPECT_EQ(rig.readSync(0xA000, back), MemStatus::kOk);

    // Every retry is attributable: device-issued ALERT_N plus injected
    // spurious alerts, nothing else.
    const auto &stats = rig.mc.stats();
    EXPECT_EQ(stats.spurious_alerts, 2u);
    EXPECT_EQ(stats.alert_retries,
              rig.dimm.alerts_issued_ + stats.spurious_alerts);
    EXPECT_EQ(stats.degraded_reads, 0u);
}

TEST(AlertRecovery, DegradedStatusSurfacesThroughMemorySystem)
{
    EventQueue events;
    mem::BackingStore store;
    DramGeometry g;
    g.channels = 1;
    AlertingDimm dimm(store);
    cache::CacheConfig llc;
    llc.size_bytes = 1 << 20;
    cache::MemorySystem memory(events, g, ChannelInterleave::kNone, llc,
                               {&dimm});

    dimm.alerts_remaining_ = 1'000'000;
    std::uint8_t buf[64] = {};
    memory.readSync(0x10000, buf, sizeof(buf));

    EXPECT_GE(memory.degradedReads(), 1u);
    EXPECT_EQ(memory.degradedReads(),
              memory.controller(0).stats().degraded_reads);
}

} // namespace
