/**
 * @file
 * Property-based chaos harness: N seeds, each deriving a randomized
 * FaultPlan, drive the full CompCpy pipeline (two TLS records + one
 * ordered Deflate page) and a TCP transfer. Invariants per seed:
 *
 *  (a) zero panics — every run completes;
 *  (b) when no degradation signal fired, every output byte matches the
 *      fault-free reference run (recovered faults are invisible);
 *  (c) stat conservation — every injected fault is accounted for by an
 *      observed retry, rejection, lie or violation counter, exactly.
 *
 * Env knobs: SD_FAULT_SOAK_SEEDS (seed count, default 4),
 * SD_FAULT_SEED (base seed, default 1), SD_FAULT_PLAN (explicit plan
 * spec for a one-off run, see FaultPlan::fromSpec).
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "cache/memory_system.h"
#include "common/random.h"
#include "compcpy/compcpy.h"
#include "compcpy/driver.h"
#include "compcpy/queue.h"
#include "fault/fault.h"
#include "net/tcp_stream.h"
#include "sim/event_queue.h"
#include "smartdimm/buffer_device.h"
#include "topo/topology.h"

namespace {

using namespace sd;
using fault::FaultPlan;
using fault::Site;

std::uint64_t
envU64(const char *name, std::uint64_t dflt)
{
    const char *value = std::getenv(name);
    return value ? std::strtoull(value, nullptr, 0) : dflt;
}

/** One-channel SmartDIMM rig with an attachable fault plan. */
struct System
{
    EventQueue events;
    mem::BackingStore store;
    mem::DramGeometry geometry;
    mem::AddressMap map;
    smartdimm::BufferDevice dimm;
    std::unique_ptr<cache::MemorySystem> memory;
    compcpy::Driver driver;
    compcpy::CompCpyEngine::SharedState shared;
    compcpy::CompCpyEngine engine;

    System()
        : geometry(makeGeometry()),
          map(geometry, mem::ChannelInterleave::kNone),
          dimm(events, map, store),
          driver(/*base=*/1ULL << 20, /*bytes=*/512ULL << 20),
          engine(makeMemory(), driver, shared)
    {
    }

    static mem::DramGeometry
    makeGeometry()
    {
        mem::DramGeometry g;
        g.channels = 1;
        return g;
    }

    cache::MemorySystem &
    makeMemory()
    {
        cache::CacheConfig cc;
        cc.size_bytes = 4ull << 20;
        memory = std::make_unique<cache::MemorySystem>(
            events, geometry, mem::ChannelInterleave::kNone, cc,
            std::vector<mem::DimmDevice *>{&dimm});
        return *memory;
    }

    void
    attach(FaultPlan *plan)
    {
        dimm.setFaultPlan(plan);
        memory->setFaultPlan(plan);
        engine.setFaultPlan(plan);
    }
};

/** Everything a soak run produces. */
struct SoakResult
{
    std::vector<std::uint8_t> tls_small;
    std::vector<std::uint8_t> tls_large;
    std::vector<std::uint8_t> deflate_raw; ///< raw dbuf page, unparsed

    // Stat snapshot for the conservation checks.
    mem::ControllerStats ctrl;
    smartdimm::ArbiterStats arbiter;
    smartdimm::DsaStats dsa;
    smartdimm::CuckooStats cuckoo;
    compcpy::CompCpyStats engine;
    compcpy::WorkQueueStats queue; ///< the sync facade's queue
    std::uint64_t degraded_reads = 0;

    bool
    degraded() const
    {
        return degraded_reads > 0 || arbiter.rejected_registrations > 0 ||
               engine.fence_violations > 0 || dsa.deflate_order_faults > 0;
    }
};

/** The fixed three-call workload, with or without a fault plan. */
SoakResult
runWorkload(FaultPlan *plan)
{
    System sys;
    if (plan)
        sys.attach(plan);

    Rng rng(99); // workload data is fixed across all soaks
    std::uint8_t key[16];
    rng.fill(key, 16);
    crypto::GcmIv iv{};
    rng.fill(iv.data(), iv.size());

    SoakResult result;

    auto tls = [&](std::size_t len, std::uint64_t message_id) {
        std::vector<std::uint8_t> plain(len);
        rng.fill(plain.data(), len);
        const Addr sbuf = sys.driver.alloc(len);
        const Addr dbuf = sys.driver.alloc(len + kPageSize);
        sys.memory->writeSync(sbuf, plain.data(), len);

        compcpy::CompCpyParams params;
        params.sbuf = sbuf;
        params.dbuf = dbuf;
        params.size = len;
        params.ulp = smartdimm::UlpKind::kTlsEncrypt;
        params.message_id = message_id;
        std::memcpy(params.key, key, 16);
        params.iv = iv;
        params.iv[0] ^= static_cast<std::uint8_t>(message_id);

        sys.engine.run(params);
        sys.engine.useSync(dbuf, divCeil(len + 16, kPageSize) * kPageSize);
        return sys.engine.readResult(dbuf, len + 16);
    };
    result.tls_small = tls(4096, 1);
    result.tls_large = tls(8192, 2);

    // Ordered Deflate page (the only consumer of kOrderedFence).
    {
        std::vector<std::uint8_t> staged(kPageSize, 0);
        for (std::size_t i = 0; i < 4000; ++i)
            staged[i] = static_cast<std::uint8_t>("soak data!"[i % 10]);
        const Addr sbuf = sys.driver.alloc(kPageSize);
        const Addr dbuf = sys.driver.alloc(kPageSize);
        sys.memory->writeSync(sbuf, staged.data(), staged.size());

        compcpy::CompCpyParams params;
        params.sbuf = sbuf;
        params.dbuf = dbuf;
        params.size = 4000;
        params.ordered = true;
        params.ulp = smartdimm::UlpKind::kDeflate;
        sys.engine.run(params);
        sys.engine.useSync(dbuf, kPageSize);
        result.deflate_raw = sys.engine.readResult(dbuf, kPageSize);
    }

    result.ctrl = sys.memory->controller(0).stats();
    result.arbiter = sys.dimm.stats();
    result.dsa = sys.dimm.dsaStats();
    result.cuckoo = sys.dimm.translationTable().stats();
    result.engine = sys.engine.stats();
    result.queue = sys.engine.syncQueue().stats();
    result.degraded_reads = sys.memory->degradedReads();
    return result;
}

/** Randomized bounded plan for one seed. */
FaultPlan
makeChaosPlan(std::uint64_t seed)
{
    // Separate stream for plan *construction* so it never aliases the
    // plan's own decision RNG.
    Rng rng(seed * 7919 + 17);
    FaultPlan plan(seed);
    const Site sites[] = {
        Site::kAlertStorm,      Site::kWriteDrainDelay,
        Site::kFreePagesLie,    Site::kScratchpadExhaust,
        Site::kConfigMemExhaust, Site::kCuckooConflict,
        Site::kCuckooInsertFail, Site::kOrderedFence,
        Site::kQueueFull,        Site::kLostCompletion,
    };
    for (const Site site : sites) {
        if (!rng.chance(0.5))
            continue;
        const std::uint64_t skip = rng.below(4);
        const std::uint64_t count = 1 + rng.below(4);
        const double p = rng.chance(0.5) ? 1.0 : 0.6;
        plan.add(site, skip, count, p);
    }
    return plan;
}

/** Invariants (b) and (c) for one completed soak. */
void
checkSoak(std::uint64_t seed, const FaultPlan &plan,
          const SoakResult &run, const SoakResult &reference)
{
    SCOPED_TRACE("seed " + std::to_string(seed));

    // (c) conservation: injected == observed, site by site.
    EXPECT_EQ(run.ctrl.spurious_alerts, plan.injected(Site::kAlertStorm));
    EXPECT_EQ(run.ctrl.alert_retries,
              run.arbiter.alert_n + run.ctrl.spurious_alerts)
        << "every retry must trace to a genuine or injected ALERT_N";
    EXPECT_EQ(run.arbiter.freepages_lies,
              plan.injected(Site::kFreePagesLie));
    EXPECT_EQ(run.arbiter.rejected_registrations,
              plan.injected(Site::kScratchpadExhaust) +
                  plan.injected(Site::kConfigMemExhaust) +
                  run.cuckoo.failures)
        << "every rejection needs exactly one cause";
    EXPECT_EQ(run.engine.rejected_registrations,
              run.arbiter.rejected_registrations)
        << "kFaultStatus polling must observe every rejection";
    EXPECT_EQ(run.engine.fence_violations,
              plan.injected(Site::kOrderedFence));
    EXPECT_EQ(run.degraded_reads, run.ctrl.degraded_reads);
    // Work-queue conservation: the sync facade's queue never fills
    // genuinely in this serial workload, so every rejected submit is
    // an injection; every dropped record is recovered, never bailed.
    EXPECT_EQ(run.queue.rejected_full, plan.injected(Site::kQueueFull));
    EXPECT_EQ(run.queue.lost_records,
              plan.injected(Site::kLostCompletion));
    EXPECT_EQ(run.queue.recovered_records, run.queue.lost_records);
    EXPECT_EQ(run.queue.completions, run.queue.submitted);
    EXPECT_EQ(run.queue.reaped, run.queue.completions)
        << "every completion record must be reaped";
    EXPECT_EQ(run.queue.bailouts, 0u)
        << "recovery must account for every lost record";
    EXPECT_EQ(run.queue.submitted_ops, run.engine.calls);
    EXPECT_EQ(run.engine.degraded_calls > 0,
              run.engine.rejected_registrations > 0)
        << "in-call degradation == rejections in this workload";

    // (b) recovered faults are invisible: without a degradation
    // signal, outputs are bit-exact against the fault-free reference.
    if (!run.degraded()) {
        EXPECT_EQ(run.tls_small, reference.tls_small);
        EXPECT_EQ(run.tls_large, reference.tls_large);
        EXPECT_EQ(run.deflate_raw, reference.deflate_raw);
    } else {
        // Degradation must never be silent: at least one engine- or
        // memory-visible signal accompanies any possible divergence.
        EXPECT_TRUE(run.engine.degraded_calls > 0 ||
                    run.degraded_reads > 0 ||
                    run.engine.fence_violations > 0);
    }
}

TEST(ChaosSoak, RandomizedFaultPlansHoldInvariants)
{
    const std::uint64_t seeds = envU64("SD_FAULT_SOAK_SEEDS", 4);
    const std::uint64_t base = envU64("SD_FAULT_SEED", 1);
    const SoakResult reference = runWorkload(nullptr);
    ASSERT_FALSE(reference.degraded())
        << "fault-free reference must be clean";

    for (std::uint64_t seed = base; seed < base + seeds; ++seed) {
        FaultPlan plan = makeChaosPlan(seed);
        const SoakResult run = runWorkload(&plan);
        checkSoak(seed, plan, run, reference);
    }
}

TEST(ChaosSoak, SameSeedReplaysBitIdentically)
{
    const std::uint64_t seed = envU64("SD_FAULT_SEED", 1);
    FaultPlan plan_a = makeChaosPlan(seed);
    FaultPlan plan_b = makeChaosPlan(seed);
    const SoakResult a = runWorkload(&plan_a);
    const SoakResult b = runWorkload(&plan_b);

    EXPECT_EQ(a.tls_small, b.tls_small);
    EXPECT_EQ(a.tls_large, b.tls_large);
    EXPECT_EQ(a.deflate_raw, b.deflate_raw);
    EXPECT_EQ(a.ctrl.alert_retries, b.ctrl.alert_retries);
    EXPECT_EQ(a.ctrl.degraded_reads, b.ctrl.degraded_reads);
    EXPECT_EQ(a.arbiter.rejected_registrations,
              b.arbiter.rejected_registrations);
    EXPECT_EQ(a.engine.fence_violations, b.engine.fence_violations);
    for (std::size_t s = 0; s < static_cast<std::size_t>(Site::kCount);
         ++s) {
        const Site site = static_cast<Site>(s);
        EXPECT_EQ(plan_a.injected(site), plan_b.injected(site))
            << fault::siteName(site);
    }
}

TEST(ChaosSoak, ScriptedNetworkFaultsConserve)
{
    const std::uint64_t seeds = envU64("SD_FAULT_SOAK_SEEDS", 4);
    const std::uint64_t base = envU64("SD_FAULT_SEED", 1);
    net::TcpConfig tcp;
    net::LossConfig loss; // no background noise: exact accounting

    for (std::uint64_t seed = base; seed < base + seeds; ++seed) {
        SCOPED_TRACE("seed " + std::to_string(seed));
        Rng rng(seed * 6151 + 3);
        FaultPlan plan(seed);
        plan.add(Site::kNetLoss, rng.below(100), 1 + rng.below(3));
        plan.add(Site::kNetReorder, rng.below(100), 1 + rng.below(3));

        const auto result =
            net::tcpTransfer(1 << 20, tcp, loss, seed, &plan);
        // burst_len == 1: each scripted drop loses exactly one
        // segment, and each lost segment is retransmitted once.
        EXPECT_EQ(result.retransmits, plan.injected(Site::kNetLoss));
        EXPECT_GE(plan.injected(Site::kNetLoss), 1u);
        if (plan.injected(Site::kNetReorder) > 0)
            EXPECT_GE(result.reorder_events, 1u);
        EXPECT_GT(result.goodput_gbps, 0.0);
    }
}

/** One 4 KB TLS record on every slot of @p topo; @return the records. */
std::vector<std::vector<std::uint8_t>>
runOnEverySlot(topo::Topology &topo)
{
    Rng rng(99);
    std::uint8_t key[16];
    rng.fill(key, 16);
    crypto::GcmIv iv{};
    rng.fill(iv.data(), iv.size());
    std::vector<std::uint8_t> plain(4096);
    rng.fill(plain.data(), plain.size());

    std::vector<std::vector<std::uint8_t>> records;
    for (unsigned s = 0; s < topo.slotCount(); ++s) {
        topo::Topology::Slot &slot = topo.slot(s);
        const Addr sbuf = slot.driver.alloc(plain.size());
        const Addr dbuf = slot.driver.alloc(2 * kPageSize);
        topo.memory().writeSync(sbuf, plain.data(), plain.size());

        compcpy::CompCpyParams params;
        params.sbuf = sbuf;
        params.dbuf = dbuf;
        params.size = plain.size();
        params.ulp = smartdimm::UlpKind::kTlsEncrypt;
        params.message_id = 1;
        std::memcpy(params.key, key, 16);
        params.iv = iv;
        slot.engine.run(params);
        slot.engine.useSync(dbuf, 2 * kPageSize);
        records.push_back(slot.engine.readResult(dbuf, plain.size() + 16));
    }
    return records;
}

TEST(ChaosSoak, ScopedPlansTargetSingleDevicesOnTwoByTwo)
{
    // Per-device fault addressing end to end: a rule scoped to one
    // DIMM (or one channel's controller) of a 2x2 topology fires only
    // there, the footprint is visible only in that device's counters,
    // and every recoverable fault stays invisible in the outputs.
    const std::uint64_t seeds = envU64("SD_FAULT_SOAK_SEEDS", 4);
    const std::uint64_t base = envU64("SD_FAULT_SEED", 1);

    topo::TopologySpec spec;
    spec.channels = 2;
    spec.dimms_per_channel = 2;

    topo::Topology clean(spec);
    const auto reference = runOnEverySlot(clean);

    for (std::uint64_t seed = base; seed < base + seeds; ++seed) {
        SCOPED_TRACE("seed " + std::to_string(seed));
        Rng rng(seed * 4253 + 5);
        const unsigned victim_ch = rng.below(2);
        const unsigned victim_dimm = rng.below(2);
        const unsigned victim_mc = rng.below(2);

        // Scoped rules via the same spec grammar SD_FAULT_PLAN uses.
        const std::string text =
            "smartdimm[" + std::to_string(victim_ch) + "][" +
            std::to_string(victim_dimm) + "]/free_pages_lie:count=1," +
            "mem[" + std::to_string(victim_mc) +
            "]/alert_storm:count=2";
        auto plan = FaultPlan::fromSpec(text, seed);
        ASSERT_TRUE(plan.has_value()) << text;

        topo::Topology topo(spec);
        topo.setFaultPlan(&*plan);
        const auto records = runOnEverySlot(topo);

        // The scoped rules fired (every slot saw work), and only on
        // their addressed device.
        EXPECT_EQ(plan->injected(Site::kFreePagesLie), 1u);
        EXPECT_EQ(plan->injected(Site::kAlertStorm), 2u);
        for (unsigned ch = 0; ch < 2; ++ch) {
            for (unsigned d = 0; d < 2; ++d) {
                const auto &stats = topo.slot(ch, d).device.stats();
                const bool victim =
                    ch == victim_ch && d == victim_dimm;
                EXPECT_EQ(stats.freepages_lies, victim ? 1u : 0u)
                    << "smartdimm[" << ch << "][" << d << "]";
            }
            const auto &ctrl = topo.memory().controller(ch).stats();
            EXPECT_EQ(ctrl.spurious_alerts, ch == victim_mc ? 2u : 0u)
                << "mem[" << ch << "]";
        }

        // Both faults are recoverable: every slot's output must still
        // match the fault-free reference bit for bit.
        EXPECT_EQ(records, reference);
    }
}

TEST(ChaosSoak, EnvSpecifiedPlanRunsClean)
{
    const char *spec = std::getenv("SD_FAULT_PLAN");
    if (!spec)
        GTEST_SKIP() << "set SD_FAULT_PLAN to run an explicit plan";
    const std::uint64_t seed = envU64("SD_FAULT_SEED", 1);
    auto plan = FaultPlan::fromSpec(spec, seed);
    ASSERT_TRUE(plan.has_value()) << "malformed SD_FAULT_PLAN: " << spec;

    const SoakResult reference = runWorkload(nullptr);
    const SoakResult run = runWorkload(&*plan);
    checkSoak(seed, *plan, run, reference);
}

} // namespace
