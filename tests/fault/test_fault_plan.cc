/**
 * @file
 * FaultPlan semantics: rule windows (skip/count), probabilistic rules,
 * the determinism contract (same seed => same decisions; inert rules
 * never perturb other rules' streams), and the SD_FAULT_PLAN spec
 * parser.
 */

#include <gtest/gtest.h>

#include <vector>

#include "fault/fault.h"

namespace {

using namespace sd;
using fault::FaultPlan;
using fault::Site;

TEST(FaultPlan, EmptyPlanInjectsNothing)
{
    FaultPlan plan(1);
    for (std::size_t s = 0; s < static_cast<std::size_t>(Site::kCount);
         ++s) {
        const Site site = static_cast<Site>(s);
        EXPECT_FALSE(plan.armed(site));
        EXPECT_FALSE(plan.shouldInject(site));
    }
    EXPECT_EQ(plan.totalInjected(), 0u);
}

TEST(FaultPlan, SkipAndCountWindow)
{
    FaultPlan plan(1);
    plan.add(Site::kAlertStorm, /*skip=*/2, /*count=*/3);

    std::vector<bool> decisions;
    for (int i = 0; i < 8; ++i)
        decisions.push_back(plan.shouldInject(Site::kAlertStorm));

    const std::vector<bool> expect = {false, false, true, true,
                                      true,  false, false, false};
    EXPECT_EQ(decisions, expect);
    EXPECT_EQ(plan.triggers(Site::kAlertStorm), 8u);
    EXPECT_EQ(plan.injected(Site::kAlertStorm), 3u);
}

TEST(FaultPlan, RulesAtSameSiteEvaluateInAddOrder)
{
    // Two windows back to back: [skip 1, fire 1] then [skip 3, fire 1].
    FaultPlan plan(1);
    plan.add(Site::kNetLoss, 1, 1);
    plan.add(Site::kNetLoss, 3, 1);

    std::vector<bool> decisions;
    for (int i = 0; i < 6; ++i)
        decisions.push_back(plan.shouldInject(Site::kNetLoss));
    const std::vector<bool> expect = {false, true, false, true,
                                      false, false};
    EXPECT_EQ(decisions, expect);
    EXPECT_EQ(plan.injected(Site::kNetLoss), 2u);
}

TEST(FaultPlan, SameSeedSameDecisions)
{
    auto run = [](std::uint64_t seed) {
        FaultPlan plan(seed);
        plan.add(Site::kFreePagesLie, 0, ~0ULL, 0.4);
        std::vector<bool> decisions;
        for (int i = 0; i < 200; ++i)
            decisions.push_back(plan.shouldInject(Site::kFreePagesLie));
        return decisions;
    };
    EXPECT_EQ(run(7), run(7));
    EXPECT_NE(run(7), run(8)) << "seed must matter for p < 1 rules";
}

TEST(FaultPlan, InertRuleDoesNotPerturbOtherStreams)
{
    // The RNG is consumed only by armed probabilistic triggers, so a
    // deterministic (p = 1) rule at another site must not shift the
    // probabilistic site's decisions.
    auto run = [](bool with_extra_rule) {
        FaultPlan plan(42);
        plan.add(Site::kFreePagesLie, 0, ~0ULL, 0.5);
        if (with_extra_rule)
            plan.add(Site::kAlertStorm); // p = 1: never rolls the RNG
        std::vector<bool> decisions;
        for (int i = 0; i < 100; ++i) {
            plan.shouldInject(Site::kAlertStorm);
            decisions.push_back(plan.shouldInject(Site::kFreePagesLie));
        }
        return decisions;
    };
    EXPECT_EQ(run(false), run(true));
}

TEST(FaultPlan, ProbabilisticRuleRespectsCountBudget)
{
    FaultPlan plan(3);
    plan.add(Site::kNetReorder, 0, /*count=*/5, 0.3);
    for (int i = 0; i < 1000; ++i)
        plan.shouldInject(Site::kNetReorder);
    EXPECT_EQ(plan.injected(Site::kNetReorder), 5u);
    EXPECT_EQ(plan.triggers(Site::kNetReorder), 1000u);
}

TEST(FaultPlan, SiteNamesRoundTrip)
{
    for (std::size_t s = 0; s < static_cast<std::size_t>(Site::kCount);
         ++s) {
        const Site site = static_cast<Site>(s);
        const auto back = fault::siteFromName(fault::siteName(site));
        ASSERT_TRUE(back.has_value()) << fault::siteName(site);
        EXPECT_EQ(*back, site);
    }
    EXPECT_FALSE(fault::siteFromName("no_such_site").has_value());
}

TEST(FaultPlan, SpecParserAcceptsFullGrammar)
{
    auto plan = FaultPlan::fromSpec(
        "alert_storm:skip=2:count=3,free_pages_lie:count=1:p=0.5", 9);
    ASSERT_TRUE(plan.has_value());
    EXPECT_TRUE(plan->armed(Site::kAlertStorm));
    EXPECT_TRUE(plan->armed(Site::kFreePagesLie));
    EXPECT_FALSE(plan->armed(Site::kNetLoss));

    // The alert_storm rule behaves as {skip 2, count 3}.
    int fired = 0;
    for (int i = 0; i < 10; ++i)
        fired += plan->shouldInject(Site::kAlertStorm);
    EXPECT_EQ(fired, 3);
}

TEST(FaultPlan, SpecParserRejectsMalformedInput)
{
    const char *bad[] = {
        "bogus_site",         "alert_storm:skip=x",
        "alert_storm:p=1.x",  "alert_storm:count=",
        "alert_storm:zap=1",  "alert_storm:p=1.5",
    };
    for (const char *spec : bad)
        EXPECT_FALSE(FaultPlan::fromSpec(spec, 1).has_value())
            << "accepted: " << spec;
}

TEST(FaultPlan, EmptySpecIsValidNoOpPlan)
{
    auto plan = FaultPlan::fromSpec("", 1);
    ASSERT_TRUE(plan.has_value());
    EXPECT_EQ(plan->totalInjected(), 0u);
}

} // namespace
