/**
 * @file
 * CXL completion-contract soak (the tests/fault conservation harness
 * extended to the far tier's two sites). N seeds, each deriving a
 * randomized plan over kCxlLinkStall and kCxlTimeout, drive a batch
 * of TLS offloads through a mixed local+CXL topology's far slot.
 * Invariants per seed:
 *
 *  (a) exactly-once: every submitted descriptor's completion callback
 *      fires exactly once, timeout or not;
 *  (b) conservation: withheld_timeouts == injected(kCxlTimeout), the
 *      link's injected_stalls == injected(kCxlLinkStall), every
 *      timeout is recovered (never bailed), and every non-timeout
 *      completion arrived via the withheld read;
 *  (c) data integrity: a stall delays but never corrupts — every
 *      non-degraded record's output matches the fault-free reference.
 *
 * Seed count scales via SD_FAULT_SOAK_SEEDS (CI runs 16).
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "common/random.h"
#include "compcpy/queue.h"
#include "fault/fault.h"
#include "topo/dispatcher.h"
#include "topo/topology.h"

namespace {

using namespace sd;
using compcpy::CompletionRecord;
using compcpy::CompletionStatus;
using compcpy::Descriptor;
using fault::FaultPlan;
using fault::Site;

std::uint64_t
envU64(const char *name, std::uint64_t dflt)
{
    const char *value = std::getenv(name);
    return value ? std::strtoull(value, nullptr, 0) : dflt;
}

constexpr std::size_t kOffloads = 24;

/** Everything one soak run produces. */
struct SoakResult
{
    std::map<std::uint64_t, unsigned> callbacks; ///< per-id fire count
    std::map<std::uint64_t, CompletionStatus> statuses;
    std::vector<std::vector<std::uint8_t>> outputs; ///< per offload
    compcpy::WorkQueueStats queue;
    mem::CxlLink::Stats link;
};

/** kOffloads TLS-4K records through the far slot's withheld queue. */
SoakResult
runWorkload(FaultPlan *plan)
{
    topo::TopologySpec spec;
    spec.channels = 1;
    spec.cxl_channels = 1;
    topo::Topology topo(spec);
    topo::ShardDispatcher dispatcher(topo);
    if (plan)
        topo.setFaultPlan(plan);

    const unsigned far_slot = 1;
    topo::Topology::Slot &dev = topo.slot(far_slot);

    Rng rng(99); // workload data fixed across all soaks
    std::uint8_t key[16];
    rng.fill(key, sizeof(key));
    crypto::GcmIv iv{};
    rng.fill(iv.data(), iv.size());
    std::vector<std::uint8_t> plain(4096);
    rng.fill(plain.data(), plain.size());

    SoakResult result;
    result.outputs.resize(kOffloads);
    std::vector<Addr> dbufs(kOffloads);

    for (std::size_t i = 0; i < kOffloads; ++i) {
        compcpy::CompCpyParams params;
        params.size = plain.size();
        params.ulp = smartdimm::UlpKind::kTlsEncrypt;
        params.message_id = 1 + i;
        std::memcpy(params.key, key, sizeof(key));
        params.iv = iv;
        params.iv[0] ^= static_cast<std::uint8_t>(i);
        params.sbuf = dev.driver.alloc(plain.size());
        params.dbuf = dev.driver.alloc(2 * kPageSize);
        dbufs[i] = params.dbuf;
        topo.memory().writeSync(params.sbuf, plain.data(),
                                plain.size());

        const auto id = dispatcher.submit(
            far_slot, Descriptor::single(params), 0,
            [&result](const CompletionRecord &record) {
                ++result.callbacks[record.id];
                result.statuses[record.id] = record.status;
            });
        EXPECT_TRUE(id.has_value()) << "offload " << i;
        // Serialize: keeps occupancy below depth regardless of the
        // injected stalls, and drain() runs timeout recovery per op.
        dispatcher.queue(far_slot).drain();
        dev.engine.useSync(dbufs[i], 2 * kPageSize);
        result.outputs[i] =
            dev.engine.readResult(dbufs[i], plain.size() + 16);
    }

    result.queue = dispatcher.queue(far_slot).stats();
    result.link = topo.cxlLink(1)->stats();
    return result;
}

/** Randomized bounded plan over the two far-tier sites. */
FaultPlan
makeCxlPlan(std::uint64_t seed)
{
    Rng rng(seed * 7919 + 29);
    FaultPlan plan(seed);
    // The stall site triggers on every link flit (thousands per run),
    // so bound it by count; the timeout site triggers once per
    // descriptor, so a handful of drops exercises recovery repeatedly.
    plan.add(Site::kCxlLinkStall, rng.below(64), 1 + rng.below(4),
             rng.chance(0.5) ? 1.0 : 0.6);
    plan.add(Site::kCxlTimeout, rng.below(8), 1 + rng.below(3),
             rng.chance(0.5) ? 1.0 : 0.6);
    return plan;
}

void
checkSoak(std::uint64_t seed, const FaultPlan &plan,
          const SoakResult &run, const SoakResult &reference)
{
    SCOPED_TRACE("seed " + std::to_string(seed));

    // (a) exactly-once completion, timeout or not.
    ASSERT_EQ(run.callbacks.size(), kOffloads);
    for (const auto &[id, count] : run.callbacks)
        EXPECT_EQ(count, 1u) << "descriptor " << id;
    EXPECT_EQ(run.queue.submitted, kOffloads);
    EXPECT_EQ(run.queue.completions, kOffloads);
    EXPECT_EQ(run.queue.bailouts, 0u)
        << "recovery must account for every withheld timeout";

    // (b) conservation, site by site.
    EXPECT_EQ(run.queue.withheld_timeouts,
              plan.injected(Site::kCxlTimeout));
    EXPECT_EQ(run.link.injected_stalls,
              plan.injected(Site::kCxlLinkStall));
    EXPECT_EQ(run.queue.recovered_records, run.queue.withheld_timeouts)
        << "every dropped response is recovered exactly once";
    EXPECT_EQ(run.queue.withheld_completions,
              run.queue.completions - run.queue.withheld_timeouts);
    EXPECT_EQ(run.queue.withheld_reads, run.queue.submitted);
    EXPECT_EQ(run.queue.lost_records, 0u)
        << "the withheld mode never takes the lossy record path";

    // A timeout surfaces as a degraded record (the host cannot trust
    // a completion it never saw); nothing else degrades in this plan.
    std::uint64_t degraded = 0;
    for (const auto &[id, status] : run.statuses)
        degraded += status == CompletionStatus::kDegraded;
    EXPECT_EQ(degraded, run.queue.withheld_timeouts);

    // (c) stalls and timeouts never corrupt data: the offloads DID
    // run, so every output matches the fault-free reference.
    EXPECT_EQ(run.outputs, reference.outputs);
}

TEST(CxlContract, SoakedSeedsHoldCompletionInvariants)
{
    const std::uint64_t seeds = envU64("SD_FAULT_SOAK_SEEDS", 4);
    const std::uint64_t base = envU64("SD_FAULT_SEED", 1);
    const SoakResult reference = runWorkload(nullptr);
    EXPECT_EQ(reference.queue.withheld_completions, kOffloads);
    EXPECT_GT(reference.queue.polls_saved, kOffloads)
        << "each far offload must save at least one poll round trip";
    EXPECT_EQ(reference.queue.poll_bytes_saved,
              reference.queue.polls_saved * kCacheLineSize);

    for (std::uint64_t seed = base; seed < base + seeds; ++seed) {
        FaultPlan plan = makeCxlPlan(seed);
        const SoakResult run = runWorkload(&plan);
        checkSoak(seed, plan, run, reference);
        EXPECT_GE(plan.injected(Site::kCxlLinkStall), 1u)
            << "seed " << seed
            << ": the stall rule must fire on this flit count";
    }
}

TEST(CxlContract, SameSeedReplaysBitIdentically)
{
    const std::uint64_t seed = envU64("SD_FAULT_SEED", 1);
    FaultPlan plan_a = makeCxlPlan(seed);
    FaultPlan plan_b = makeCxlPlan(seed);
    const SoakResult a = runWorkload(&plan_a);
    const SoakResult b = runWorkload(&plan_b);

    EXPECT_EQ(a.outputs, b.outputs);
    EXPECT_EQ(a.queue.withheld_timeouts, b.queue.withheld_timeouts);
    EXPECT_EQ(a.link.injected_stalls, b.link.injected_stalls);
    EXPECT_EQ(a.link.queue_ticks, b.link.queue_ticks);
    EXPECT_EQ(plan_a.injected(Site::kCxlLinkStall),
              plan_b.injected(Site::kCxlLinkStall));
    EXPECT_EQ(plan_a.injected(Site::kCxlTimeout),
              plan_b.injected(Site::kCxlTimeout));
}

} // namespace
