/**
 * @file
 * TLS record layer: framing, nonce derivation, protect/unprotect
 * round trips and tamper rejection.
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/random.h"
#include "crypto/tls_record.h"

namespace {

using sd::Rng;
using sd::crypto::GcmIv;
using sd::crypto::kTlsHeaderSize;
using sd::crypto::kTlsMaxFragment;
using sd::crypto::kTlsTagSize;
using sd::crypto::TlsRecord;
using sd::crypto::TlsSession;

struct Pair
{
    TlsSession tx;
    TlsSession rx;

    explicit Pair(std::uint64_t seed)
        : tx(makeKey(seed).data(), makeIv(seed)),
          rx(makeKey(seed).data(), makeIv(seed))
    {
    }

    static std::array<std::uint8_t, 16>
    makeKey(std::uint64_t seed)
    {
        Rng rng(seed);
        std::array<std::uint8_t, 16> key{};
        rng.fill(key.data(), key.size());
        return key;
    }

    static GcmIv
    makeIv(std::uint64_t seed)
    {
        Rng rng(seed + 17);
        GcmIv iv{};
        rng.fill(iv.data(), iv.size());
        return iv;
    }
};

TEST(TlsRecord, WireFormatFraming)
{
    Pair p(1);
    std::vector<std::uint8_t> msg(1000, 0x5a);
    const TlsRecord rec = p.tx.protect(msg.data(), msg.size());

    ASSERT_EQ(rec.wire.size(), kTlsHeaderSize + 1000 + kTlsTagSize);
    EXPECT_EQ(rec.wire[0], 23); // application data
    EXPECT_EQ(rec.wire[1], 0x03);
    EXPECT_EQ(rec.wire[2], 0x03);
    const std::size_t body = (rec.wire[3] << 8) | rec.wire[4];
    EXPECT_EQ(body, 1000u + kTlsTagSize);
    EXPECT_EQ(rec.payloadLen(), 1000u);
}

TEST(TlsRecord, ProtectUnprotectRoundTrip)
{
    Pair p(2);
    Rng rng(22);
    for (std::size_t len : {1u, 100u, 4096u, 16384u}) {
        std::vector<std::uint8_t> msg(len);
        rng.fill(msg.data(), len);
        const TlsRecord rec = p.tx.protect(msg.data(), len);
        const auto back = p.rx.unprotect(rec);
        EXPECT_EQ(back, msg) << "len " << len;
    }
}

TEST(TlsRecord, SequenceNumbersAdvance)
{
    Pair p(3);
    std::vector<std::uint8_t> msg(64, 1);
    EXPECT_EQ(p.tx.txSeq(), 0u);
    p.tx.protect(msg.data(), msg.size());
    EXPECT_EQ(p.tx.txSeq(), 1u);
    p.tx.protect(msg.data(), msg.size());
    EXPECT_EQ(p.tx.txSeq(), 2u);
}

TEST(TlsRecord, NonceDerivationXorsSequence)
{
    Pair p(4);
    const GcmIv n0 = p.tx.nonceFor(0);
    const GcmIv n1 = p.tx.nonceFor(1);
    // Only the last byte differs for seq 0 vs 1.
    for (int i = 0; i < 11; ++i)
        EXPECT_EQ(n0[i], n1[i]);
    EXPECT_EQ(n0[11] ^ n1[11], 1);
}

TEST(TlsRecord, SameplaintextDifferentRecords)
{
    Pair p(5);
    std::vector<std::uint8_t> msg(128, 0x33);
    const TlsRecord a = p.tx.protect(msg.data(), msg.size());
    const TlsRecord b = p.tx.protect(msg.data(), msg.size());
    EXPECT_NE(a.wire, b.wire); // nonce advanced with the sequence
}

TEST(TlsRecord, OutOfOrderDeliveryFailsAuth)
{
    Pair p(6);
    std::vector<std::uint8_t> msg(64, 9);
    const TlsRecord first = p.tx.protect(msg.data(), msg.size());
    const TlsRecord second = p.tx.protect(msg.data(), msg.size());

    // Receiver expects record 0; feeding record 1 must fail.
    EXPECT_TRUE(p.rx.unprotect(second).empty());
    // Record 0 still verifies afterwards (rx seq not consumed).
    EXPECT_EQ(p.rx.unprotect(first).size(), msg.size());
}

TEST(TlsRecord, TamperedBodyRejected)
{
    Pair p(7);
    std::vector<std::uint8_t> msg(512, 0x77);
    TlsRecord rec = p.tx.protect(msg.data(), msg.size());
    rec.wire[kTlsHeaderSize + 5] ^= 0x01;
    EXPECT_TRUE(p.rx.unprotect(rec).empty());
}

TEST(TlsRecord, TruncatedRecordRejected)
{
    Pair p(8);
    std::vector<std::uint8_t> msg(64, 0x10);
    TlsRecord rec = p.tx.protect(msg.data(), msg.size());
    rec.wire.resize(kTlsHeaderSize + kTlsTagSize - 1);
    EXPECT_TRUE(p.rx.unprotect(rec).empty());
}

TEST(TlsRecord, MaxFragmentAccepted)
{
    Pair p(9);
    std::vector<std::uint8_t> msg(kTlsMaxFragment, 0x42);
    const TlsRecord rec = p.tx.protect(msg.data(), msg.size());
    EXPECT_EQ(p.rx.unprotect(rec).size(), kTlsMaxFragment);
}

} // namespace
