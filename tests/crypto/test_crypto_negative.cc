/**
 * @file
 * Negative-path crypto: corrupted tags, ciphertext, AAD, nonces and
 * truncated records must surface as authentication failures — never as
 * a crash, an assert, or silently-accepted plaintext. A failed attempt
 * must also leave the session usable (rx state advances only on
 * success).
 */

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "common/random.h"
#include "common/types.h"
#include "crypto/aes_gcm.h"
#include "crypto/tls_record.h"

namespace {

using namespace sd;
using crypto::GcmContext;
using crypto::GcmIv;
using crypto::GcmTag;
using crypto::TlsRecord;
using crypto::TlsSession;

struct Fixture
{
    std::uint8_t key[16];
    GcmIv iv{};
    std::vector<std::uint8_t> plain;
    std::vector<std::uint8_t> aad;

    explicit Fixture(std::size_t len = 300)
    {
        Rng rng(31);
        rng.fill(key, sizeof(key));
        rng.fill(iv.data(), iv.size());
        plain.resize(len);
        rng.fill(plain.data(), len);
        aad = {0x17, 0x03, 0x03, 0x01, 0x2c};
    }
};

TEST(CryptoNegative, EveryTagByteIsAuthenticated)
{
    Fixture fx;
    GcmContext ctx(fx.key, crypto::Aes::KeySize::k128);
    std::vector<std::uint8_t> cipher(fx.plain.size());
    GcmTag tag = ctx.encrypt(fx.iv, fx.plain.data(), fx.plain.size(),
                             cipher.data(), fx.aad.data(), fx.aad.size());

    std::vector<std::uint8_t> out(fx.plain.size());
    ASSERT_TRUE(ctx.decrypt(fx.iv, cipher.data(), cipher.size(), tag,
                            out.data(), fx.aad.data(), fx.aad.size()));

    for (std::size_t i = 0; i < tag.size(); ++i) {
        GcmTag bad = tag;
        bad[i] ^= 0x01;
        EXPECT_FALSE(ctx.decrypt(fx.iv, cipher.data(), cipher.size(), bad,
                                 out.data(), fx.aad.data(),
                                 fx.aad.size()))
            << "tag byte " << i;
    }
}

TEST(CryptoNegative, CiphertextBitFlipsFailAuthentication)
{
    Fixture fx;
    GcmContext ctx(fx.key, crypto::Aes::KeySize::k128);
    std::vector<std::uint8_t> cipher(fx.plain.size());
    const GcmTag tag =
        ctx.encrypt(fx.iv, fx.plain.data(), fx.plain.size(),
                    cipher.data());

    std::vector<std::uint8_t> out(fx.plain.size());
    // First, middle, last byte and a few random positions.
    Rng rng(32);
    std::vector<std::size_t> positions = {0, fx.plain.size() / 2,
                                          fx.plain.size() - 1};
    for (int i = 0; i < 8; ++i)
        positions.push_back(rng.below(fx.plain.size()));
    for (const std::size_t pos : positions) {
        auto bad = cipher;
        bad[pos] ^= static_cast<std::uint8_t>(1u << (pos % 8));
        EXPECT_FALSE(ctx.decrypt(fx.iv, bad.data(), bad.size(), tag,
                                 out.data()))
            << "flip at " << pos;
    }
    EXPECT_TRUE(
        ctx.decrypt(fx.iv, cipher.data(), cipher.size(), tag, out.data()));
    EXPECT_EQ(out, fx.plain);
}

TEST(CryptoNegative, AadIsAuthenticated)
{
    Fixture fx;
    GcmContext ctx(fx.key, crypto::Aes::KeySize::k128);
    std::vector<std::uint8_t> cipher(fx.plain.size());
    const GcmTag tag =
        ctx.encrypt(fx.iv, fx.plain.data(), fx.plain.size(),
                    cipher.data(), fx.aad.data(), fx.aad.size());

    std::vector<std::uint8_t> out(fx.plain.size());
    auto bad_aad = fx.aad;
    bad_aad[0] ^= 0x80;
    EXPECT_FALSE(ctx.decrypt(fx.iv, cipher.data(), cipher.size(), tag,
                             out.data(), bad_aad.data(), bad_aad.size()));
    // Dropping the AAD entirely must also fail.
    EXPECT_FALSE(ctx.decrypt(fx.iv, cipher.data(), cipher.size(), tag,
                             out.data()));
    // Truncated AAD must fail.
    EXPECT_FALSE(ctx.decrypt(fx.iv, cipher.data(), cipher.size(), tag,
                             out.data(), fx.aad.data(),
                             fx.aad.size() - 1));
}

TEST(CryptoNegative, WrongNonceFailsAuthentication)
{
    Fixture fx;
    GcmContext ctx(fx.key, crypto::Aes::KeySize::k128);
    std::vector<std::uint8_t> cipher(fx.plain.size());
    const GcmTag tag = ctx.encrypt(fx.iv, fx.plain.data(),
                                   fx.plain.size(), cipher.data());

    GcmIv wrong = fx.iv;
    wrong[11] ^= 0x01;
    std::vector<std::uint8_t> out(fx.plain.size());
    EXPECT_FALSE(ctx.decrypt(wrong, cipher.data(), cipher.size(), tag,
                             out.data()));
}

TEST(CryptoNegative, TamperedTlsRecordsRejectWithoutDesync)
{
    Fixture fx(1000);
    TlsSession tx(fx.key, fx.iv);
    TlsSession rx(fx.key, fx.iv);

    const TlsRecord record = tx.protect(fx.plain.data(), fx.plain.size());

    // One representative corruption per wire region: header (AAD),
    // ciphertext body, trailing tag.
    const std::size_t body = crypto::kTlsHeaderSize + 10;
    const std::size_t tag_byte = record.wire.size() - 1;
    for (const std::size_t pos : {std::size_t{0}, body, tag_byte}) {
        TlsRecord bad = record;
        bad.wire[pos] ^= 0x40;
        EXPECT_TRUE(rx.unprotect(bad).empty()) << "byte " << pos;
    }

    // Failed attempts must not advance the receive sequence: the
    // untampered record still decrypts on the same session.
    EXPECT_EQ(rx.unprotect(record), fx.plain);
    // ... and exactly once (sequence moved forward afterwards).
    EXPECT_TRUE(rx.unprotect(record).empty());
}

TEST(CryptoNegative, TruncatedTlsRecordsRejectGracefully)
{
    Fixture fx(64);
    TlsSession tx(fx.key, fx.iv);
    TlsSession rx(fx.key, fx.iv);
    const TlsRecord record = tx.protect(fx.plain.data(), fx.plain.size());

    for (const std::size_t keep :
         {std::size_t{0}, std::size_t{1}, crypto::kTlsHeaderSize,
          crypto::kTlsHeaderSize + crypto::kTlsTagSize - 1,
          crypto::kTlsHeaderSize + crypto::kTlsTagSize,
          record.wire.size() - 1}) {
        TlsRecord bad = record;
        bad.wire.resize(keep);
        EXPECT_TRUE(rx.unprotect(bad).empty()) << "kept " << keep;
    }
    EXPECT_EQ(rx.unprotect(record), fx.plain);
}

TEST(CryptoNegative, CorruptedLineYieldsWrongIncrementalTag)
{
    // The DSA path: one corrupted sbuf line must surface as a tag
    // mismatch at the verifier, not as an accepted message.
    Fixture fx(4096);
    GcmContext ctx(fx.key, crypto::Aes::KeySize::k128);

    auto run = [&](bool corrupt) {
        crypto::IncrementalGcm inc(ctx, fx.iv, fx.plain.size());
        std::vector<std::uint8_t> input = fx.plain;
        if (corrupt)
            input[70] ^= 0x01; // inside line 1
        std::vector<std::uint8_t> out(input.size());
        // Reverse order: exercises the out-of-order accumulation too.
        for (std::size_t line = inc.lineCount(); line-- > 0;) {
            const std::size_t off = line * kCacheLineSize;
            inc.processLine(line, input.data() + off, out.data() + off);
        }
        EXPECT_TRUE(inc.complete());
        return inc.finalTag();
    };

    const GcmTag good = run(false);
    const GcmTag bad = run(true);
    EXPECT_NE(good, bad);

    // The reference verifier rejects the corrupted stream.
    std::vector<std::uint8_t> cipher(fx.plain.size());
    const GcmTag reference = ctx.encrypt(fx.iv, fx.plain.data(),
                                         fx.plain.size(), cipher.data());
    EXPECT_EQ(reference, good);
    std::vector<std::uint8_t> out(fx.plain.size());
    EXPECT_FALSE(ctx.decrypt(fx.iv, cipher.data(), cipher.size(), bad,
                             out.data()));
}

} // namespace
