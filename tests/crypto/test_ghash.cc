/**
 * @file
 * GF(2^128) arithmetic and GHASH properties: field axioms, streaming
 * vs positional equivalence, power-table consistency.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "common/random.h"
#include "crypto/ghash.h"

namespace {

using sd::Rng;
using sd::crypto::Gf128;
using sd::crypto::gfMul;
using sd::crypto::Ghash;

Gf128
randomElem(Rng &rng)
{
    return Gf128{rng.next(), rng.next()};
}

TEST(Gf128, LoadStoreRoundTrip)
{
    Rng rng(1);
    for (int i = 0; i < 64; ++i) {
        std::uint8_t bytes[16];
        rng.fill(bytes, 16);
        std::uint8_t back[16];
        Gf128::load(bytes).store(back);
        EXPECT_EQ(0, std::memcmp(bytes, back, 16));
    }
}

TEST(Gf128, MultiplicationIsCommutative)
{
    Rng rng(2);
    for (int i = 0; i < 32; ++i) {
        const Gf128 a = randomElem(rng);
        const Gf128 b = randomElem(rng);
        EXPECT_EQ(gfMul(a, b), gfMul(b, a));
    }
}

TEST(Gf128, MultiplicationIsAssociative)
{
    Rng rng(3);
    for (int i = 0; i < 16; ++i) {
        const Gf128 a = randomElem(rng);
        const Gf128 b = randomElem(rng);
        const Gf128 c = randomElem(rng);
        EXPECT_EQ(gfMul(gfMul(a, b), c), gfMul(a, gfMul(b, c)));
    }
}

TEST(Gf128, DistributesOverXor)
{
    Rng rng(4);
    for (int i = 0; i < 16; ++i) {
        const Gf128 a = randomElem(rng);
        const Gf128 b = randomElem(rng);
        const Gf128 c = randomElem(rng);
        EXPECT_EQ(gfMul(a ^ b, c), gfMul(a, c) ^ gfMul(b, c));
    }
}

TEST(Gf128, ZeroAnnihilates)
{
    Rng rng(5);
    const Gf128 a = randomElem(rng);
    EXPECT_EQ(gfMul(a, Gf128{}), (Gf128{}));
}

TEST(Gf128, IdentityElement)
{
    // The GCM multiplicative identity is the element whose first bit
    // (MSB of byte 0) is 1: 0x80000...0.
    const Gf128 one{0x8000000000000000ULL, 0};
    Rng rng(6);
    for (int i = 0; i < 16; ++i) {
        const Gf128 a = randomElem(rng);
        EXPECT_EQ(gfMul(a, one), a);
    }
}

TEST(Ghash, PowerTableMatchesRepeatedMultiplication)
{
    Rng rng(7);
    const Gf128 h = randomElem(rng);
    Ghash ghash(h);
    Gf128 expect = h;
    for (std::size_t k = 1; k <= 40; ++k) {
        EXPECT_EQ(ghash.power(k), expect) << "power " << k;
        expect = gfMul(expect, h);
    }
}

TEST(Ghash, StreamingEqualsPositionalAnyOrder)
{
    Rng rng(8);
    const Gf128 h = randomElem(rng);

    constexpr std::size_t kBlocks = 17;
    std::uint8_t data[kBlocks][16];
    for (auto &block : data)
        rng.fill(block, 16);

    Ghash streaming(h);
    for (const auto &block : data)
        streaming.update(block);

    // Fold positionally in a shuffled order.
    std::size_t order[kBlocks];
    for (std::size_t i = 0; i < kBlocks; ++i)
        order[i] = i;
    for (std::size_t i = kBlocks; i > 1; --i)
        std::swap(order[i - 1], order[rng.below(i)]);

    Ghash positional(h);
    Gf128 acc{};
    for (std::size_t i : order)
        acc = acc ^ positional.positional(data[i], i, kBlocks);

    EXPECT_EQ(acc, streaming.digest());
}

TEST(Ghash, ResetClearsDigest)
{
    Rng rng(9);
    const Gf128 h = randomElem(rng);
    Ghash ghash(h);
    std::uint8_t block[16];
    rng.fill(block, 16);
    ghash.update(block);
    EXPECT_NE(ghash.digest(), (Gf128{}));
    ghash.reset();
    EXPECT_EQ(ghash.digest(), (Gf128{}));
}

} // namespace
