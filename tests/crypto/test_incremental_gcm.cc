/**
 * @file
 * Out-of-order incremental GCM (the TLS DSA core property, Sec. V-A):
 * processing 64-byte cachelines in arbitrary order must reproduce the
 * one-shot ciphertext and tag exactly.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "common/random.h"
#include "common/types.h"
#include "crypto/aes_gcm.h"

namespace {

using sd::Rng;
using sd::crypto::Aes;
using sd::crypto::GcmContext;
using sd::crypto::GcmIv;
using sd::crypto::GcmTag;
using sd::crypto::IncrementalGcm;

struct GcmFixture
{
    GcmContext ctx;
    GcmIv iv{};
    std::vector<std::uint8_t> plain;

    explicit GcmFixture(std::size_t len, std::uint64_t seed) : ctx(makeCtx(seed))
    {
        Rng rng(seed + 1);
        plain.resize(len);
        rng.fill(plain.data(), len);
        rng.fill(iv.data(), iv.size());
    }

    static GcmContext
    makeCtx(std::uint64_t seed)
    {
        Rng rng(seed);
        std::uint8_t key[16];
        rng.fill(key, 16);
        return GcmContext(key, Aes::KeySize::k128);
    }
};

/** Run the incremental engine over lines in the given order. */
void
runOrder(const GcmFixture &s, const std::vector<std::size_t> &order,
         std::vector<std::uint8_t> &cipher, GcmTag &tag)
{
    IncrementalGcm inc(s.ctx, s.iv, s.plain.size());
    cipher.assign(s.plain.size(), 0);
    for (std::size_t line : order) {
        const std::size_t off = line * sd::kCacheLineSize;
        inc.processLine(line, s.plain.data() + off, cipher.data() + off);
    }
    ASSERT_TRUE(inc.complete());
    tag = inc.finalTag();
}

class IncrementalGcmSizes : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(IncrementalGcmSizes, InOrderMatchesOneShot)
{
    GcmFixture s(GetParam(), 100 + GetParam());
    std::vector<std::uint8_t> expect(s.plain.size());
    const GcmTag expect_tag = s.ctx.encrypt(
        s.iv, s.plain.data(), s.plain.size(), expect.data());

    IncrementalGcm inc(s.ctx, s.iv, s.plain.size());
    std::vector<std::size_t> order(inc.lineCount());
    std::iota(order.begin(), order.end(), 0);

    std::vector<std::uint8_t> cipher;
    GcmTag tag;
    runOrder(s, order, cipher, tag);
    EXPECT_EQ(cipher, expect);
    EXPECT_EQ(tag, expect_tag);
}

TEST_P(IncrementalGcmSizes, ReverseOrderMatchesOneShot)
{
    GcmFixture s(GetParam(), 200 + GetParam());
    std::vector<std::uint8_t> expect(s.plain.size());
    const GcmTag expect_tag = s.ctx.encrypt(
        s.iv, s.plain.data(), s.plain.size(), expect.data());

    IncrementalGcm probe(s.ctx, s.iv, s.plain.size());
    std::vector<std::size_t> order(probe.lineCount());
    std::iota(order.rbegin(), order.rend(), 0);

    std::vector<std::uint8_t> cipher;
    GcmTag tag;
    runOrder(s, order, cipher, tag);
    EXPECT_EQ(cipher, expect);
    EXPECT_EQ(tag, expect_tag);
}

TEST_P(IncrementalGcmSizes, RandomPermutationsMatchOneShot)
{
    const std::size_t len = GetParam();
    GcmFixture s(len, 300 + len);
    std::vector<std::uint8_t> expect(len);
    const GcmTag expect_tag =
        s.ctx.encrypt(s.iv, s.plain.data(), len, expect.data());

    Rng rng(900 + len);
    IncrementalGcm probe(s.ctx, s.iv, len);
    for (int trial = 0; trial < 4; ++trial) {
        std::vector<std::size_t> order(probe.lineCount());
        std::iota(order.begin(), order.end(), 0);
        for (std::size_t i = order.size(); i > 1; --i)
            std::swap(order[i - 1], order[rng.below(i)]);

        std::vector<std::uint8_t> cipher;
        GcmTag tag;
        runOrder(s, order, cipher, tag);
        EXPECT_EQ(cipher, expect) << "trial " << trial;
        EXPECT_EQ(tag, expect_tag) << "trial " << trial;
    }
}

INSTANTIATE_TEST_SUITE_P(
    MessageSizes, IncrementalGcmSizes,
    ::testing::Values(64, 128, 100, 640, 4096, 4000, 16384, 16300));

TEST(IncrementalGcm, LineCountMatchesGeometry)
{
    GcmFixture s(4096, 7);
    IncrementalGcm inc(s.ctx, s.iv, 4096);
    EXPECT_EQ(inc.lineCount(), 64u);

    IncrementalGcm inc2(s.ctx, s.iv, 65);
    EXPECT_EQ(inc2.lineCount(), 2u);
}

TEST(IncrementalGcm, IncompleteUntilAllLines)
{
    GcmFixture s(256, 8);
    IncrementalGcm inc(s.ctx, s.iv, 256);
    std::vector<std::uint8_t> out(256);
    for (std::size_t line = 0; line + 1 < inc.lineCount(); ++line) {
        inc.processLine(line, s.plain.data() + line * 64,
                        out.data() + line * 64);
        EXPECT_FALSE(inc.complete());
    }
    inc.processLine(inc.lineCount() - 1,
                    s.plain.data() + (inc.lineCount() - 1) * 64,
                    out.data() + (inc.lineCount() - 1) * 64);
    EXPECT_TRUE(inc.complete());
}

TEST(IncrementalGcm, DecryptsWithOneShotDecrypt)
{
    // Ciphertext built incrementally must round-trip through the
    // normal software decryptor — this is the path a TLS client
    // takes when the server offloaded encryption to SmartDIMM.
    GcmFixture s(4096 + 40, 9);
    IncrementalGcm inc(s.ctx, s.iv, s.plain.size());
    std::vector<std::uint8_t> cipher(s.plain.size());
    for (std::size_t line = 0; line < inc.lineCount(); ++line) {
        const std::size_t off = line * 64;
        inc.processLine(line, s.plain.data() + off, cipher.data() + off);
    }
    const GcmTag tag = inc.finalTag();

    std::vector<std::uint8_t> back(s.plain.size());
    ASSERT_TRUE(s.ctx.decrypt(s.iv, cipher.data(), cipher.size(), tag,
                              back.data()));
    EXPECT_EQ(back, s.plain);
}

} // namespace
