/**
 * @file
 * Property-based AES-GCM testing: for randomized message sizes and
 * arbitrary chunkings/orderings of the incremental engine, the
 * (ciphertext, tag) pair must equal the one-shot context's output;
 * and flipping any single bit of ciphertext, tag, IV or AAD must make
 * tag verification fail.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/types.h"
#include "crypto/aes_gcm.h"

namespace {

using sd::Rng;
using sd::crypto::Aes;
using sd::crypto::GcmContext;
using sd::crypto::GcmIv;
using sd::crypto::GcmTag;
using sd::crypto::IncrementalGcm;

struct Message
{
    GcmContext ctx;
    GcmIv iv{};
    std::vector<std::uint8_t> plain;

    Message(std::size_t len, Rng &rng) : ctx(makeCtx(rng)), plain(len)
    {
        rng.fill(plain.data(), len);
        rng.fill(iv.data(), iv.size());
    }

    static GcmContext
    makeCtx(Rng &rng)
    {
        std::uint8_t key[16];
        rng.fill(key, sizeof(key));
        return GcmContext(key, Aes::KeySize::k128);
    }

    /** One-shot reference encryption. */
    GcmTag
    oneShot(std::vector<std::uint8_t> &cipher) const
    {
        cipher.assign(plain.size(), 0);
        return ctx.encrypt(iv, plain.data(), plain.size(),
                           cipher.data());
    }
};

TEST(GcmProperties, AnyLineOrderMatchesOneShot)
{
    Rng rng(101);
    for (int round = 0; round < 30; ++round) {
        const std::size_t len = 1 + rng.below(8 * sd::kCacheLineSize);
        Message msg(len, rng);
        SCOPED_TRACE("round " + std::to_string(round) + " len " +
                     std::to_string(len));

        std::vector<std::uint8_t> expected;
        const GcmTag want = msg.oneShot(expected);

        IncrementalGcm inc(msg.ctx, msg.iv, len);
        std::vector<std::size_t> order(inc.lineCount());
        std::iota(order.begin(), order.end(), 0);
        // Fisher-Yates with the test's own Rng keeps runs seeded.
        for (std::size_t i = order.size(); i > 1; --i)
            std::swap(order[i - 1], order[rng.below(i)]);

        std::vector<std::uint8_t> cipher(len, 0);
        for (std::size_t line : order) {
            const std::size_t off = line * sd::kCacheLineSize;
            inc.processLine(line, msg.plain.data() + off,
                            cipher.data() + off);
        }
        ASSERT_TRUE(inc.complete());
        EXPECT_EQ(cipher, expected);
        EXPECT_EQ(inc.finalTag(), want);
    }
}

TEST(GcmProperties, EncryptDecryptRoundTripsAtRandomSizes)
{
    Rng rng(202);
    for (int round = 0; round < 30; ++round) {
        const std::size_t len = 1 + rng.below(4096);
        Message msg(len, rng);
        SCOPED_TRACE("round " + std::to_string(round) + " len " +
                     std::to_string(len));

        std::vector<std::uint8_t> cipher;
        const GcmTag tag = msg.oneShot(cipher);

        std::vector<std::uint8_t> decrypted(len, 0);
        EXPECT_TRUE(msg.ctx.decrypt(msg.iv, cipher.data(), len, tag,
                                    decrypted.data()));
        EXPECT_EQ(decrypted, msg.plain);
    }
}

TEST(GcmProperties, AnySingleBitFlipBreaksTheTag)
{
    Rng rng(303);
    const std::size_t len = 200;
    Message msg(len, rng);

    std::vector<std::uint8_t> cipher;
    const GcmTag tag = msg.oneShot(cipher);
    std::vector<std::uint8_t> scratch(len, 0);

    // Flip a random bit of every ciphertext byte.
    for (std::size_t i = 0; i < len; ++i) {
        auto bad = cipher;
        bad[i] ^= static_cast<std::uint8_t>(1u << rng.below(8));
        EXPECT_FALSE(msg.ctx.decrypt(msg.iv, bad.data(), len, tag,
                                     scratch.data()))
            << "corrupt ciphertext byte " << i << " verified";
    }

    // Flip every bit of the tag.
    for (std::size_t i = 0; i < tag.size() * 8; ++i) {
        GcmTag bad = tag;
        bad[i / 8] ^= static_cast<std::uint8_t>(1u << (i % 8));
        EXPECT_FALSE(msg.ctx.decrypt(msg.iv, cipher.data(), len, bad,
                                     scratch.data()))
            << "corrupt tag bit " << i << " verified";
    }

    // Flip a bit of the IV.
    GcmIv bad_iv = msg.iv;
    bad_iv[rng.below(bad_iv.size())] ^=
        static_cast<std::uint8_t>(1u << rng.below(8));
    EXPECT_FALSE(msg.ctx.decrypt(bad_iv, cipher.data(), len, tag,
                                 scratch.data()));
}

TEST(GcmProperties, AadIsAuthenticated)
{
    Rng rng(404);
    const std::size_t len = 333;
    Message msg(len, rng);
    std::vector<std::uint8_t> aad(48);
    rng.fill(aad.data(), aad.size());

    std::vector<std::uint8_t> cipher(len, 0);
    const GcmTag tag =
        msg.ctx.encrypt(msg.iv, msg.plain.data(), len, cipher.data(),
                        aad.data(), aad.size());

    std::vector<std::uint8_t> scratch(len, 0);
    EXPECT_TRUE(msg.ctx.decrypt(msg.iv, cipher.data(), len, tag,
                                scratch.data(), aad.data(), aad.size()));
    EXPECT_EQ(scratch, msg.plain);

    auto bad = aad;
    bad[rng.below(bad.size())] ^=
        static_cast<std::uint8_t>(1u << rng.below(8));
    EXPECT_FALSE(msg.ctx.decrypt(msg.iv, cipher.data(), len, tag,
                                 scratch.data(), bad.data(), bad.size()));
    // Dropping the AAD entirely must also fail.
    EXPECT_FALSE(msg.ctx.decrypt(msg.iv, cipher.data(), len, tag,
                                 scratch.data()));
}

TEST(GcmProperties, DistinctIvsGiveDistinctStreams)
{
    Rng rng(505);
    Message msg(512, rng);
    std::vector<std::uint8_t> c1;
    msg.oneShot(c1);

    GcmIv other = msg.iv;
    other[0] ^= 1;
    std::vector<std::uint8_t> c2(msg.plain.size(), 0);
    msg.ctx.encrypt(other, msg.plain.data(), msg.plain.size(),
                    c2.data());
    EXPECT_NE(c1, c2);
}

} // namespace
