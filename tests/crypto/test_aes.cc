/**
 * @file
 * AES block cipher against FIPS-197 appendix vectors.
 */

#include <gtest/gtest.h>

#include <array>
#include <cstring>

#include "crypto/aes.h"

namespace {

using sd::crypto::Aes;

std::array<std::uint8_t, 16>
hexBlock(const char *hex)
{
    std::array<std::uint8_t, 16> out{};
    for (int i = 0; i < 16; ++i) {
        unsigned v;
        std::sscanf(hex + 2 * i, "%2x", &v);
        out[i] = static_cast<std::uint8_t>(v);
    }
    return out;
}

TEST(Aes, Fips197Aes128Vector)
{
    // FIPS-197 Appendix C.1.
    const auto key = hexBlock("000102030405060708090a0b0c0d0e0f");
    const auto plain = hexBlock("00112233445566778899aabbccddeeff");
    const auto expect = hexBlock("69c4e0d86a7b0430d8cdb78070b4c55a");

    Aes aes(key.data(), Aes::KeySize::k128);
    std::uint8_t out[16];
    aes.encryptBlock(plain.data(), out);
    EXPECT_EQ(0, std::memcmp(out, expect.data(), 16));
}

TEST(Aes, Fips197Aes256Vector)
{
    // FIPS-197 Appendix C.3.
    std::uint8_t key[32];
    for (int i = 0; i < 32; ++i)
        key[i] = static_cast<std::uint8_t>(i);
    const auto plain = hexBlock("00112233445566778899aabbccddeeff");
    const auto expect = hexBlock("8ea2b7ca516745bfeafc49904b496089");

    Aes aes(key, Aes::KeySize::k256);
    std::uint8_t out[16];
    aes.encryptBlock(plain.data(), out);
    EXPECT_EQ(0, std::memcmp(out, expect.data(), 16));
}

TEST(Aes, RoundCounts)
{
    const auto key128 = hexBlock("000102030405060708090a0b0c0d0e0f");
    Aes a128(key128.data(), Aes::KeySize::k128);
    EXPECT_EQ(a128.rounds(), 10);

    std::uint8_t key256[32] = {};
    Aes a256(key256, Aes::KeySize::k256);
    EXPECT_EQ(a256.rounds(), 14);
}

TEST(Aes, EncryptionIsDeterministic)
{
    const auto key = hexBlock("2b7e151628aed2a6abf7158809cf4f3c");
    Aes aes(key.data(), Aes::KeySize::k128);
    const auto plain = hexBlock("6bc1bee22e409f96e93d7e117393172a");
    std::uint8_t out1[16];
    std::uint8_t out2[16];
    aes.encryptBlock(plain.data(), out1);
    aes.encryptBlock(plain.data(), out2);
    EXPECT_EQ(0, std::memcmp(out1, out2, 16));
}

TEST(Aes, Sp800_38aEcbVector)
{
    // SP 800-38A F.1.1 ECB-AES128 block #1.
    const auto key = hexBlock("2b7e151628aed2a6abf7158809cf4f3c");
    const auto plain = hexBlock("6bc1bee22e409f96e93d7e117393172a");
    const auto expect = hexBlock("3ad77bb40d7a3660a89ecaf32466ef97");

    Aes aes(key.data(), Aes::KeySize::k128);
    std::uint8_t out[16];
    aes.encryptBlock(plain.data(), out);
    EXPECT_EQ(0, std::memcmp(out, expect.data(), 16));
}

TEST(Aes, InPlaceEncryption)
{
    const auto key = hexBlock("000102030405060708090a0b0c0d0e0f");
    Aes aes(key.data(), Aes::KeySize::k128);
    auto buf = hexBlock("00112233445566778899aabbccddeeff");
    const auto expect = hexBlock("69c4e0d86a7b0430d8cdb78070b4c55a");
    aes.encryptBlock(buf.data(), buf.data());
    EXPECT_EQ(buf, expect);
}

} // namespace
