/**
 * @file
 * AES-GCM one-shot encryption against NIST SP 800-38D example vectors
 * plus round-trip and tamper-detection properties.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "common/random.h"
#include "crypto/aes_gcm.h"

namespace {

using sd::Rng;
using sd::crypto::Aes;
using sd::crypto::GcmContext;
using sd::crypto::GcmIv;
using sd::crypto::GcmTag;

std::vector<std::uint8_t>
hexBytes(const char *hex)
{
    std::vector<std::uint8_t> out;
    for (std::size_t i = 0; hex[i] && hex[i + 1]; i += 2) {
        unsigned v;
        std::sscanf(hex + i, "%2x", &v);
        out.push_back(static_cast<std::uint8_t>(v));
    }
    return out;
}

GcmIv
ivFrom(const std::vector<std::uint8_t> &bytes)
{
    GcmIv iv{};
    std::memcpy(iv.data(), bytes.data(), 12);
    return iv;
}

// NIST GCM test case 1: empty plaintext, zero key/IV.
TEST(AesGcm, NistCase1EmptyMessageTag)
{
    const auto key = hexBytes("00000000000000000000000000000000");
    const auto iv = ivFrom(hexBytes("000000000000000000000000"));
    GcmContext ctx(key.data(), Aes::KeySize::k128);

    const GcmTag tag = ctx.encrypt(iv, nullptr, 0, nullptr);
    const auto expect = hexBytes("58e2fccefa7e3061367f1d57a4e7455a");
    EXPECT_EQ(0, std::memcmp(tag.data(), expect.data(), 16));
}

// NIST GCM test case 2: one zero block.
TEST(AesGcm, NistCase2SingleBlock)
{
    const auto key = hexBytes("00000000000000000000000000000000");
    const auto iv = ivFrom(hexBytes("000000000000000000000000"));
    GcmContext ctx(key.data(), Aes::KeySize::k128);

    std::uint8_t plain[16] = {};
    std::uint8_t cipher[16];
    const GcmTag tag = ctx.encrypt(iv, plain, 16, cipher);

    const auto expect_c = hexBytes("0388dace60b6a392f328c2b971b2fe78");
    const auto expect_t = hexBytes("ab6e47d42cec13bdf53a67b21257bddf");
    EXPECT_EQ(0, std::memcmp(cipher, expect_c.data(), 16));
    EXPECT_EQ(0, std::memcmp(tag.data(), expect_t.data(), 16));
}

// NIST GCM test case 3: 4 blocks, non-trivial key/IV.
TEST(AesGcm, NistCase3FourBlocks)
{
    const auto key = hexBytes("feffe9928665731c6d6a8f9467308308");
    const auto iv = ivFrom(hexBytes("cafebabefacedbaddecaf888"));
    const auto plain = hexBytes(
        "d9313225f88406e5a55909c5aff5269a"
        "86a7a9531534f7da2e4c303d8a318a72"
        "1c3c0c95956809532fcf0e2449a6b525"
        "b16aedf5aa0de657ba637b391aafd255");
    const auto expect_c = hexBytes(
        "42831ec2217774244b7221b784d0d49c"
        "e3aa212f2c02a4e035c17e2329aca12e"
        "21d514b25466931c7d8f6a5aac84aa05"
        "1ba30b396a0aac973d58e091473f5985");
    const auto expect_t = hexBytes("4d5c2af327cd64a62cf35abd2ba6fab4");

    GcmContext ctx(key.data(), Aes::KeySize::k128);
    std::vector<std::uint8_t> cipher(plain.size());
    const GcmTag tag =
        ctx.encrypt(iv, plain.data(), plain.size(), cipher.data());
    EXPECT_EQ(cipher, expect_c);
    EXPECT_EQ(0, std::memcmp(tag.data(), expect_t.data(), 16));
}

// NIST GCM test case 4: partial final block + AAD.
TEST(AesGcm, NistCase4AadPartialBlock)
{
    const auto key = hexBytes("feffe9928665731c6d6a8f9467308308");
    const auto iv = ivFrom(hexBytes("cafebabefacedbaddecaf888"));
    const auto plain = hexBytes(
        "d9313225f88406e5a55909c5aff5269a"
        "86a7a9531534f7da2e4c303d8a318a72"
        "1c3c0c95956809532fcf0e2449a6b525"
        "b16aedf5aa0de657ba637b39");
    const auto aad = hexBytes(
        "feedfacedeadbeeffeedfacedeadbeefabaddad2");
    const auto expect_t = hexBytes("5bc94fbc3221a5db94fae95ae7121a47");

    GcmContext ctx(key.data(), Aes::KeySize::k128);
    std::vector<std::uint8_t> cipher(plain.size());
    const GcmTag tag = ctx.encrypt(iv, plain.data(), plain.size(),
                                   cipher.data(), aad.data(), aad.size());
    EXPECT_EQ(0, std::memcmp(tag.data(), expect_t.data(), 16));
}

TEST(AesGcm, RoundTripRandomSizes)
{
    Rng rng(42);
    std::uint8_t key[16];
    rng.fill(key, 16);
    GcmContext ctx(key, Aes::KeySize::k128);

    for (std::size_t len : {1u, 15u, 16u, 17u, 63u, 64u, 65u, 1000u,
                            4096u, 5000u}) {
        std::vector<std::uint8_t> plain(len);
        rng.fill(plain.data(), len);
        GcmIv iv{};
        rng.fill(iv.data(), iv.size());

        std::vector<std::uint8_t> cipher(len);
        const GcmTag tag =
            ctx.encrypt(iv, plain.data(), len, cipher.data());

        std::vector<std::uint8_t> back(len);
        ASSERT_TRUE(
            ctx.decrypt(iv, cipher.data(), len, tag, back.data()))
            << "len " << len;
        EXPECT_EQ(back, plain) << "len " << len;
    }
}

TEST(AesGcm, TamperedCiphertextFailsAuth)
{
    Rng rng(43);
    std::uint8_t key[16];
    rng.fill(key, 16);
    GcmContext ctx(key, Aes::KeySize::k128);

    std::vector<std::uint8_t> plain(256);
    rng.fill(plain.data(), plain.size());
    GcmIv iv{};
    std::vector<std::uint8_t> cipher(plain.size());
    const GcmTag tag =
        ctx.encrypt(iv, plain.data(), plain.size(), cipher.data());

    cipher[100] ^= 1;
    std::vector<std::uint8_t> back(plain.size());
    EXPECT_FALSE(
        ctx.decrypt(iv, cipher.data(), cipher.size(), tag, back.data()));
}

TEST(AesGcm, TamperedTagFailsAuth)
{
    Rng rng(44);
    std::uint8_t key[16];
    rng.fill(key, 16);
    GcmContext ctx(key, Aes::KeySize::k128);

    std::vector<std::uint8_t> plain(64);
    rng.fill(plain.data(), plain.size());
    GcmIv iv{};
    std::vector<std::uint8_t> cipher(plain.size());
    GcmTag tag = ctx.encrypt(iv, plain.data(), plain.size(), cipher.data());
    tag[0] ^= 0x80;
    std::vector<std::uint8_t> back(plain.size());
    EXPECT_FALSE(
        ctx.decrypt(iv, cipher.data(), cipher.size(), tag, back.data()));
}

TEST(AesGcm, DistinctIvsProduceDistinctCiphertext)
{
    Rng rng(45);
    std::uint8_t key[16];
    rng.fill(key, 16);
    GcmContext ctx(key, Aes::KeySize::k128);

    std::vector<std::uint8_t> plain(128, 0xaa);
    GcmIv iv1{};
    GcmIv iv2{};
    iv2[11] = 1;
    std::vector<std::uint8_t> c1(plain.size());
    std::vector<std::uint8_t> c2(plain.size());
    ctx.encrypt(iv1, plain.data(), plain.size(), c1.data());
    ctx.encrypt(iv2, plain.data(), plain.size(), c2.data());
    EXPECT_NE(c1, c2);
}

} // namespace
