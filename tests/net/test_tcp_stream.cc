/**
 * @file
 * TCP transfer model: lossless throughput near line rate, graceful
 * degradation under loss, recovery-event accounting (the SmartNIC
 * resync trigger), and loss-injector statistics.
 */

#include <gtest/gtest.h>

#include "net/loss_model.h"
#include "net/tcp_stream.h"

namespace {

using namespace sd;
using net::LossConfig;
using net::LossInjector;
using net::TcpConfig;
using net::tcpTransfer;

TEST(LossInjector, ZeroProbabilityNeverDrops)
{
    LossInjector injector({}, 1);
    for (int i = 0; i < 1000; ++i)
        EXPECT_FALSE(injector.shouldDrop());
    EXPECT_EQ(injector.drops(), 0u);
}

TEST(LossInjector, DropFrequencyMatchesProbability)
{
    LossConfig cfg;
    cfg.drop_prob = 0.05;
    LossInjector injector(cfg, 2);
    int drops = 0;
    constexpr int kN = 20000;
    for (int i = 0; i < kN; ++i)
        drops += injector.shouldDrop();
    EXPECT_NEAR(static_cast<double>(drops) / kN, 0.05, 0.01);
}

TEST(LossInjector, BurstsDropConsecutively)
{
    LossConfig cfg;
    cfg.drop_prob = 0.01;
    cfg.burst_len = 4;
    LossInjector injector(cfg, 3);
    // Once a drop starts, the next three must drop too.
    for (int i = 0; i < 100000; ++i) {
        if (injector.shouldDrop()) {
            EXPECT_TRUE(injector.shouldDrop());
            EXPECT_TRUE(injector.shouldDrop());
            EXPECT_TRUE(injector.shouldDrop());
            break;
        }
    }
}

TEST(TcpTransfer, LosslessApproachesLineRate)
{
    TcpConfig cfg;
    const auto result = tcpTransfer(256ull << 20, cfg, {});
    EXPECT_GT(result.goodput_gbps, cfg.link_gbps * 0.5);
    EXPECT_EQ(result.retransmits, 0u);
    EXPECT_EQ(result.resyncEvents(), 0u);
}

TEST(TcpTransfer, ThroughputDecreasesWithLoss)
{
    TcpConfig cfg;
    double prev = 1e9;
    for (double p : {0.0, 0.001, 0.005, 0.02}) {
        LossConfig loss;
        loss.drop_prob = p;
        const auto result = tcpTransfer(64ull << 20, cfg, loss, 7);
        EXPECT_LT(result.goodput_gbps, prev * 1.05)
            << "throughput must not grow with loss (p=" << p << ")";
        prev = result.goodput_gbps;
    }
}

TEST(TcpTransfer, LossTriggersRecoveries)
{
    TcpConfig cfg;
    LossConfig loss;
    loss.drop_prob = 0.01;
    const auto result = tcpTransfer(32ull << 20, cfg, loss, 8);
    EXPECT_GT(result.retransmits, 0u);
    EXPECT_GT(result.resyncEvents(), 0u);
}

TEST(TcpTransfer, ReorderingCountsAsResyncTrigger)
{
    TcpConfig cfg;
    LossConfig loss;
    loss.reorder_prob = 0.01;
    const auto result = tcpTransfer(8ull << 20, cfg, loss, 9);
    EXPECT_GT(result.reorder_events, 0u);
    EXPECT_GT(result.resyncEvents(), 0u);
}

TEST(TcpTransfer, SmallTransferCompletes)
{
    const auto result = tcpTransfer(1000, {}, {});
    EXPECT_GT(result.seconds, 0.0);
    EXPECT_EQ(result.segments_sent, 1u);
}

TEST(TcpTransfer, DeterministicGivenSeed)
{
    LossConfig loss;
    loss.drop_prob = 0.005;
    const auto a = tcpTransfer(16ull << 20, {}, loss, 42);
    const auto b = tcpTransfer(16ull << 20, {}, loss, 42);
    EXPECT_EQ(a.seconds, b.seconds);
    EXPECT_EQ(a.retransmits, b.retransmits);
}

} // namespace
