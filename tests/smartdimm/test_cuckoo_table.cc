/**
 * @file
 * 3-ary cuckoo Translation Table (Sec. IV-C): the paper's occupancy
 * claims — below ~33% load, inserts land first-try or with a single
 * displacement and failures are effectively zero.
 */

#include <gtest/gtest.h>

#include <unordered_map>

#include "common/random.h"
#include "smartdimm/cuckoo_table.h"

namespace {

using sd::Rng;
using sd::smartdimm::CuckooTable;
using sd::smartdimm::MappingKind;
using sd::smartdimm::Translation;

Translation
mapTo(std::uint32_t offset, MappingKind kind = MappingKind::kScratchpad)
{
    Translation t;
    t.kind = kind;
    t.offset = offset;
    return t;
}

TEST(CuckooTable, InsertLookupEraseRoundTrip)
{
    CuckooTable table(12288, 8);
    EXPECT_FALSE(table.lookup(100).has_value());
    EXPECT_TRUE(table.insert(100, mapTo(7)));
    const auto hit = table.lookup(100);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->offset, 7u);
    EXPECT_EQ(hit->kind, MappingKind::kScratchpad);
    EXPECT_TRUE(table.erase(100));
    EXPECT_FALSE(table.lookup(100).has_value());
    EXPECT_FALSE(table.erase(100));
}

TEST(CuckooTable, UpdateInPlace)
{
    CuckooTable table(12288, 8);
    table.insert(5, mapTo(1));
    table.insert(5, mapTo(2, MappingKind::kConfigMemory));
    const auto hit = table.lookup(5);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->offset, 2u);
    EXPECT_EQ(hit->kind, MappingKind::kConfigMemory);
    EXPECT_EQ(table.size(), 1u);
}

TEST(CuckooTable, HoldsPaperScaleWorkingSet)
{
    // 4096 live mappings in 12288 buckets = 33% load (paper sizing).
    CuckooTable table(12288, 8);
    Rng rng(1);
    std::unordered_map<std::uint64_t, std::uint32_t> reference;
    while (reference.size() < 4096) {
        const std::uint64_t page = rng.next() >> 20;
        if (reference.count(page))
            continue;
        const auto offset =
            static_cast<std::uint32_t>(reference.size());
        ASSERT_TRUE(table.insert(page, mapTo(offset)));
        reference[page] = offset;
    }
    EXPECT_EQ(table.stats().failures, 0u);
    for (const auto &[page, offset] : reference) {
        const auto hit = table.lookup(page);
        ASSERT_TRUE(hit.has_value());
        EXPECT_EQ(hit->offset, offset);
    }
}

TEST(CuckooTable, LowOccupancyInsertsNeedAtMostOneDisplacement)
{
    // The paper's claim: below 33% occupancy inserts succeed on the
    // first attempt or with a single displacement.
    Rng rng(2);
    for (int trial = 0; trial < 5; ++trial) {
        CuckooTable table(12288, 8);
        for (int i = 0; i < 4096; ++i)
            table.insert(rng.next() >> 16, mapTo(i));
        const auto &stats = table.stats();
        EXPECT_EQ(stats.failures, 0u);
        // Overwhelmingly first-try.
        EXPECT_GT(static_cast<double>(stats.first_try_inserts) /
                      static_cast<double>(stats.inserts),
                  0.95);
        // Average displacements per displaced insert stays tiny.
        if (stats.displaced_inserts > 0)
            EXPECT_LT(static_cast<double>(stats.displacements) /
                          static_cast<double>(stats.inserts),
                      0.1);
    }
}

TEST(CuckooTable, OccupancyTracksLiveEntries)
{
    CuckooTable table(1024, 8);
    for (int i = 0; i < 256; ++i)
        table.insert(1000 + i, mapTo(i));
    EXPECT_NEAR(table.occupancy(), 256.0 / 1024.0, 0.02);
}

TEST(CuckooTable, SequentialPagesNoPathologies)
{
    // SmartDIMM registers runs of consecutive page numbers — the hash
    // mix must spread them.
    CuckooTable table(12288, 8);
    for (std::uint64_t page = 0; page < 4000; ++page)
        ASSERT_TRUE(table.insert(page, mapTo(
            static_cast<std::uint32_t>(page))));
    EXPECT_EQ(table.stats().failures, 0u);
    for (std::uint64_t page = 0; page < 4000; ++page)
        EXPECT_TRUE(table.lookup(page).has_value());
}

TEST(CuckooTable, LookupMissesCostNothing)
{
    CuckooTable table(12288, 8);
    table.insert(1, mapTo(0));
    for (std::uint64_t page = 100; page < 1100; ++page)
        EXPECT_FALSE(table.lookup(page).has_value());
    EXPECT_EQ(table.stats().lookups, 1000u);
    EXPECT_EQ(table.stats().hits, 0u);
}

class CuckooOccupancySweep : public ::testing::TestWithParam<int>
{
};

TEST_P(CuckooOccupancySweep, FailureFreeBelowHalfLoad)
{
    const int load_pct = GetParam();
    CuckooTable table(12288, 8);
    Rng rng(42 + load_pct);
    const int inserts = 12288 * load_pct / 100;
    int ok = 0;
    for (int i = 0; i < inserts; ++i)
        ok += table.insert(rng.next() >> 13, mapTo(i));
    EXPECT_EQ(ok, inserts);
    EXPECT_EQ(table.stats().failures, 0u);
}

INSTANTIATE_TEST_SUITE_P(Loads, CuckooOccupancySweep,
                         ::testing::Values(10, 20, 33, 45));

} // namespace
