/**
 * @file
 * Scratchpad (Sec. IV-B): allocation, per-line staging, self-recycle
 * drains, force-recycle, and occupancy accounting.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "common/random.h"
#include "smartdimm/scratchpad.h"

namespace {

using namespace sd;
using smartdimm::Scratchpad;

TEST(Scratchpad, AllocateUntilFull)
{
    Scratchpad sp(4);
    EXPECT_EQ(sp.freePages(), 4u);
    for (int i = 0; i < 4; ++i)
        EXPECT_TRUE(sp.allocate().has_value());
    EXPECT_EQ(sp.freePages(), 0u);
    EXPECT_FALSE(sp.allocate().has_value());
    EXPECT_EQ(sp.livePages(), 4u);
}

TEST(Scratchpad, WriteReadLine)
{
    Scratchpad sp(2);
    const auto page = sp.allocate();
    ASSERT_TRUE(page.has_value());

    std::uint8_t data[kCacheLineSize];
    Rng rng(1);
    rng.fill(data, sizeof(data));
    sp.writeLine(*page, 13, data);
    EXPECT_TRUE(sp.lineComputed(*page, 13));
    EXPECT_FALSE(sp.lineComputed(*page, 14));

    std::uint8_t back[kCacheLineSize];
    sp.readLine(*page, 13, back);
    EXPECT_EQ(0, std::memcmp(data, back, sizeof(data)));
}

TEST(Scratchpad, SelfRecycleFreesPageAfterAllLinesDrain)
{
    Scratchpad sp(1);
    const auto page = sp.allocate();
    ASSERT_TRUE(page.has_value());
    std::uint8_t data[kCacheLineSize] = {0x11};
    for (unsigned l = 0; l < kLinesPerPage; ++l)
        sp.writeLine(*page, l, data);

    std::uint8_t drained[kCacheLineSize];
    for (unsigned l = 0; l < kLinesPerPage; ++l) {
        const bool freed = sp.drainLine(*page, l, drained);
        EXPECT_EQ(freed, l == kLinesPerPage - 1);
        EXPECT_EQ(drained[0], 0x11);
    }
    EXPECT_EQ(sp.freePages(), 1u);
    EXPECT_EQ(sp.stats().self_recycles, kLinesPerPage);
}

TEST(Scratchpad, LinePendingClearsOnDrain)
{
    Scratchpad sp(1);
    const auto page = sp.allocate();
    std::uint8_t data[kCacheLineSize] = {};
    sp.writeLine(*page, 0, data);
    EXPECT_TRUE(sp.linePending(*page, 0));
    std::uint8_t drained[kCacheLineSize];
    sp.drainLine(*page, 0, drained);
    EXPECT_FALSE(sp.linePending(*page, 0));
}

TEST(Scratchpad, ForceDrainFreesWholePage)
{
    Scratchpad sp(2);
    const auto page = sp.allocate();
    std::uint8_t data[kCacheLineSize] = {0x22};
    sp.writeLine(*page, 5, data);

    std::uint8_t page_data[kPageSize];
    sp.forceDrainPage(*page, page_data);
    EXPECT_EQ(page_data[5 * kCacheLineSize], 0x22);
    EXPECT_EQ(sp.freePages(), 2u);
    EXPECT_EQ(sp.stats().force_recycles, 1u);
}

TEST(Scratchpad, PendingListTracksAllocatedPages)
{
    Scratchpad sp(8);
    auto a = sp.allocate();
    auto b = sp.allocate();
    const auto pending = sp.pendingPages();
    EXPECT_EQ(pending.size(), 2u);

    std::uint8_t drained[kCacheLineSize];
    std::uint8_t data[kCacheLineSize] = {};
    for (unsigned l = 0; l < kLinesPerPage; ++l) {
        sp.writeLine(*a, l, data);
        sp.drainLine(*a, l, drained);
    }
    EXPECT_EQ(sp.pendingPages().size(), 1u);
    EXPECT_EQ(sp.pendingPages()[0], *b);
}

TEST(Scratchpad, RecycledPagesAreReusable)
{
    Scratchpad sp(1);
    std::uint8_t data[kCacheLineSize] = {};
    std::uint8_t drained[kCacheLineSize];
    for (int round = 0; round < 5; ++round) {
        const auto page = sp.allocate();
        ASSERT_TRUE(page.has_value()) << "round " << round;
        for (unsigned l = 0; l < kLinesPerPage; ++l) {
            sp.writeLine(*page, l, data);
            sp.drainLine(*page, l, drained);
        }
    }
    EXPECT_EQ(sp.stats().allocs, 5u);
    EXPECT_EQ(sp.freePages(), 1u);
}

TEST(Scratchpad, OccupancyBytes)
{
    Scratchpad sp(2048); // paper: 8 MB
    EXPECT_EQ(sp.occupancyBytes(), 0u);
    for (int i = 0; i < 512; ++i)
        sp.allocate();
    EXPECT_EQ(sp.occupancyBytes(), 512u * kPageSize); // 2 MB
    EXPECT_EQ(sp.stats().peak_pages, 512u);
}

TEST(Scratchpad, FreshAllocationIsZeroed)
{
    Scratchpad sp(1);
    const auto p1 = sp.allocate();
    std::uint8_t data[kCacheLineSize];
    std::memset(data, 0xff, sizeof(data));
    sp.writeLine(*p1, 0, data);
    std::uint8_t drained[kCacheLineSize];
    std::uint8_t page_data[kPageSize];
    sp.forceDrainPage(*p1, page_data);
    (void)drained;

    const auto p2 = sp.allocate();
    std::uint8_t back[kCacheLineSize];
    sp.readLine(*p2, 0, back);
    for (auto b : back)
        EXPECT_EQ(b, 0);
}

} // namespace
