/**
 * @file
 * Buffer-device arbiter (Fig. 6): MMIO config space, plain-DIMM
 * passthrough, S7 write-ignore, S10 scratchpad reads, S13 ALERT_N and
 * the address-remap check, exercised with hand-built DDR commands.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "common/random.h"
#include "crypto/aes_gcm.h"
#include "mem/backing_store.h"
#include "sim/event_queue.h"
#include "smartdimm/buffer_device.h"
#include "smartdimm/mmio_layout.h"

namespace {

using namespace sd;
using mem::DdrCommand;
using mem::DdrCommandType;
using mem::ReadResponse;
using smartdimm::BufferDevice;
using smartdimm::MmioReg;
using smartdimm::TlsPageRegistration;

struct Rig
{
    EventQueue events;
    mem::BackingStore store;
    mem::DramGeometry geometry;
    mem::AddressMap map;
    BufferDevice dev;

    Rig()
        : geometry(makeGeometry()),
          map(geometry, mem::ChannelInterleave::kNone),
          dev(events, map, store)
    {
    }

    static mem::DramGeometry
    makeGeometry()
    {
        mem::DramGeometry g;
        g.channels = 1;
        return g;
    }

    /** Issue ACT + CAS to the device for @p addr. */
    DdrCommand
    cas(Addr addr, DdrCommandType type)
    {
        DdrCommand act;
        act.type = DdrCommandType::kActivate;
        act.coord = map.decompose(addr);
        act.addr = addr;
        dev.onCommand(act);

        DdrCommand cmd;
        cmd.type = type;
        cmd.coord = act.coord;
        cmd.addr = addr;
        return cmd;
    }

    ReadResponse
    read(Addr addr, std::uint8_t *data)
    {
        return dev.onRead(cas(addr, DdrCommandType::kReadCas), data);
    }

    void
    write(Addr addr, const std::uint8_t *data)
    {
        dev.onWrite(cas(addr, DdrCommandType::kWriteCas), data);
    }

    /** Register one 4 KB TLS page pair. */
    void
    registerTls(Addr sbuf, Addr dbuf, std::size_t len,
                const std::uint8_t key[16], const crypto::GcmIv &iv,
                std::uint64_t message_id = 1, std::uint16_t page_index = 0)
    {
        TlsPageRegistration reg;
        reg.page_index = page_index;
        reg.message_len = static_cast<std::uint32_t>(len);
        reg.sbuf_page = sbuf / kPageSize;
        reg.dbuf_page = dbuf / kPageSize;
        reg.message_id = message_id;
        std::memcpy(reg.key, key, 16);
        std::memcpy(reg.iv, iv.data(), 12);
        std::uint8_t burst[kCacheLineSize];
        reg.pack(burst);
        write(dev.config().mmio_base +
                  static_cast<Addr>(MmioReg::kRegister),
              burst);
    }
};

TEST(BufferDevice, PlainPassthrough)
{
    Rig rig;
    std::uint8_t line[64];
    Rng rng(1);
    rng.fill(line, 64);
    rig.write(0x10000, line);
    std::uint8_t back[64] = {};
    EXPECT_EQ(rig.read(0x10000, back), ReadResponse::kOk);
    EXPECT_EQ(0, std::memcmp(line, back, 64));
    EXPECT_EQ(rig.dev.stats().plain_reads, 1u);
    EXPECT_EQ(rig.dev.stats().plain_writes, 1u);
}

TEST(BufferDevice, FreePagesRegisterReflectsScratchpad)
{
    Rig rig;
    std::uint8_t back[64];
    EXPECT_EQ(rig.read(rig.dev.config().mmio_base, back),
              ReadResponse::kOk);
    std::uint64_t free = 0;
    std::memcpy(&free, back, sizeof(free));
    EXPECT_EQ(free, rig.dev.config().scratchpadPages());
    EXPECT_EQ(rig.dev.stats().mmio_reads, 1u);
}

TEST(BufferDevice, RegistrationAllocatesResources)
{
    Rig rig;
    std::uint8_t key[16] = {};
    crypto::GcmIv iv{};
    rig.registerTls(0x100000, 0x200000, 4000, key, iv);

    EXPECT_EQ(rig.dev.stats().registrations, 1u);
    EXPECT_EQ(rig.dev.scratchpad().livePages(), 1u);
    EXPECT_TRUE(rig.dev.translationTable().lookup(0x100000 / kPageSize)
                    .has_value());
    EXPECT_TRUE(rig.dev.translationTable().lookup(0x200000 / kPageSize)
                    .has_value());
}

TEST(BufferDevice, SbufReadFeedsDsaAndReturnsPlaintext)
{
    Rig rig;
    Rng rng(2);
    std::uint8_t key[16];
    rng.fill(key, 16);
    crypto::GcmIv iv{};

    // Plaintext already in DRAM (flushed by CompCpy).
    std::vector<std::uint8_t> plain(4096);
    rng.fill(plain.data(), plain.size());
    rig.store.write(0x100000, plain.data(), plain.size());

    rig.registerTls(0x100000, 0x200000, 4000, key, iv);

    std::uint8_t back[64];
    EXPECT_EQ(rig.read(0x100000, back), ReadResponse::kOk);
    // The host must see the *original* data (the DSA taps the path).
    EXPECT_EQ(0, std::memcmp(back, plain.data(), 64));
    EXPECT_EQ(rig.dev.stats().sbuf_reads, 1u);
}

TEST(BufferDevice, DbufReadBeforeComputeAssertsAlertN)
{
    Rig rig;
    std::uint8_t key[16] = {};
    crypto::GcmIv iv{};
    rig.registerTls(0x100000, 0x200000, 4000, key, iv);

    std::uint8_t back[64];
    EXPECT_EQ(rig.read(0x200000, back), ReadResponse::kAlertN);
    EXPECT_EQ(rig.dev.stats().alert_n, 1u);
}

TEST(BufferDevice, S7WriteIgnoredBeforeCompute)
{
    Rig rig;
    std::uint8_t key[16] = {};
    crypto::GcmIv iv{};
    rig.registerTls(0x100000, 0x200000, 4000, key, iv);

    std::uint8_t junk[64];
    std::memset(junk, 0xee, 64);
    rig.write(0x200000, junk);
    EXPECT_EQ(rig.dev.stats().dbuf_write_ignored, 1u);
    // DRAM unchanged.
    std::uint8_t dram[64];
    rig.store.read(0x200000, dram, 64);
    for (auto b : dram)
        EXPECT_EQ(b, 0);
}

TEST(BufferDevice, FullOffloadSelfRecyclesAndMatchesGcm)
{
    Rig rig;
    Rng rng(3);
    std::uint8_t key[16];
    rng.fill(key, 16);
    crypto::GcmIv iv{};
    rng.fill(iv.data(), iv.size());

    const std::size_t len = 4000;
    std::vector<std::uint8_t> plain(4096, 0);
    rng.fill(plain.data(), len);
    rig.store.write(0x100000, plain.data(), plain.size());
    rig.registerTls(0x100000, 0x200000, len, key, iv);

    // Read every sbuf line (the memcpy's loads).
    std::uint8_t line[64];
    for (unsigned l = 0; l < kLinesPerPage; ++l)
        EXPECT_EQ(rig.read(0x100000 + l * 64ull, line),
                  ReadResponse::kOk);

    // Let the DSA-latency events fire.
    rig.events.run();

    // Writebacks of the dbuf (self-recycle): host data replaced.
    std::uint8_t host_junk[64];
    std::memset(host_junk, 0xaa, 64);
    for (unsigned l = 0; l < kLinesPerPage; ++l)
        rig.write(0x200000 + l * 64ull, host_junk);

    EXPECT_EQ(rig.dev.scratchpad().livePages(), 0u)
        << "page must self-recycle after all 64 drains";
    EXPECT_EQ(rig.dev.stats().dbuf_recycles, kLinesPerPage);

    // DRAM now holds ciphertext || tag.
    crypto::GcmContext ctx(key, crypto::Aes::KeySize::k128);
    std::vector<std::uint8_t> expect(len);
    const crypto::GcmTag tag =
        ctx.encrypt(iv, plain.data(), len, expect.data());
    std::vector<std::uint8_t> dram(4096);
    rig.store.read(0x200000, dram.data(), dram.size());
    EXPECT_EQ(0, std::memcmp(dram.data(), expect.data(), len));
    EXPECT_EQ(0, std::memcmp(dram.data() + len, tag.data(), 16));
}

TEST(BufferDevice, S10ScratchpadReadAfterCompute)
{
    Rig rig;
    Rng rng(4);
    std::uint8_t key[16];
    rng.fill(key, 16);
    crypto::GcmIv iv{};

    std::vector<std::uint8_t> plain(4096);
    rng.fill(plain.data(), plain.size());
    rig.store.write(0x100000, plain.data(), plain.size());
    rig.registerTls(0x100000, 0x200000, 4000, key, iv);

    std::uint8_t line[64];
    for (unsigned l = 0; l < kLinesPerPage; ++l)
        rig.read(0x100000 + l * 64ull, line);
    rig.events.run();

    // Read dbuf without any writeback: S10 serves from scratchpad.
    std::uint8_t back[64];
    EXPECT_EQ(rig.read(0x200000, back), ReadResponse::kOk);
    EXPECT_GT(rig.dev.stats().dbuf_scratch_reads, 0u);

    crypto::GcmContext ctx(key, crypto::Aes::KeySize::k128);
    std::vector<std::uint8_t> expect(4000);
    ctx.encrypt(iv, plain.data(), 4000, expect.data());
    EXPECT_EQ(0, std::memcmp(back, expect.data(), 64));
}

TEST(BufferDevice, PendingListExposesUnrecycledPages)
{
    Rig rig;
    std::uint8_t key[16] = {};
    crypto::GcmIv iv{};
    rig.registerTls(0x100000, 0x200000, 4000, key, iv);
    rig.registerTls(0x300000, 0x400000, 4000, key, iv, /*msg=*/2);

    std::uint8_t back[64];
    rig.read(rig.dev.config().mmio_base +
                 static_cast<Addr>(MmioReg::kPendingList),
             back);
    std::uint64_t words[8];
    std::memcpy(words, back, sizeof(words));
    EXPECT_EQ(words[0], 2u);
}

} // namespace
