/**
 * @file
 * DSA jobs in isolation: the TLS job must reproduce software AES-GCM
 * over any line arrival order; the Deflate job must enforce ordering
 * and produce a decodable framed stream.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <numeric>

#include "common/random.h"
#include "compress/deflate.h"
#include "smartdimm/deflate_dsa.h"
#include "smartdimm/tls_dsa.h"

namespace {

using namespace sd;
using smartdimm::DeflateDsaJob;
using smartdimm::TlsDsaJob;
using smartdimm::TlsMessageState;

struct TlsFixture
{
    std::uint8_t key[16];
    crypto::GcmIv iv{};
    std::vector<std::uint8_t> plain;
    std::shared_ptr<TlsMessageState> state;

    TlsFixture(std::size_t len, std::uint64_t seed)
    {
        Rng rng(seed);
        rng.fill(key, 16);
        rng.fill(iv.data(), iv.size());
        plain.resize(len);
        rng.fill(plain.data(), len);
        state = std::make_shared<TlsMessageState>(key, iv, len, 24);
    }

    std::vector<std::uint8_t>
    reference(crypto::GcmTag &tag) const
    {
        crypto::GcmContext ctx(key, crypto::Aes::KeySize::k128);
        std::vector<std::uint8_t> cipher(plain.size());
        tag = ctx.encrypt(iv, plain.data(), plain.size(), cipher.data());
        return cipher;
    }
};

TEST(TlsDsa, SinglePageRecordProducesCipherAndTag)
{
    TlsFixture fx(4000, 1);
    TlsDsaJob job(fx.state, 0);
    EXPECT_FALSE(job.ordered());

    const std::size_t lines = divCeil(4000ul, kCacheLineSize);
    for (std::size_t l = 0; l < lines; ++l) {
        std::uint8_t padded[kCacheLineSize] = {};
        const std::size_t take =
            std::min(kCacheLineSize, 4000ul - l * kCacheLineSize);
        std::memcpy(padded, fx.plain.data() + l * kCacheLineSize, take);
        EXPECT_GT(job.processLine(static_cast<unsigned>(l), padded), 0u);
    }
    EXPECT_TRUE(job.complete());

    crypto::GcmTag tag;
    const auto expect = fx.reference(tag);

    std::vector<std::uint8_t> result(kPageSize);
    for (unsigned l = 0; l < kLinesPerPage; ++l)
        ASSERT_TRUE(job.resultLine(l, result.data() + l * kCacheLineSize));
    EXPECT_EQ(0, std::memcmp(result.data(), expect.data(), 4000));
    EXPECT_EQ(0, std::memcmp(result.data() + 4000, tag.data(), 16));
    EXPECT_EQ(job.resultBytes(), 4016u);
}

TEST(TlsDsa, OutOfOrderLinesAcrossPages)
{
    const std::size_t len = 2 * kPageSize + 100;
    TlsFixture fx(len, 2);
    TlsDsaJob page0(fx.state, 0);
    TlsDsaJob page1(fx.state, 1);
    TlsDsaJob page2(fx.state, 2);
    TlsDsaJob *jobs[3] = {&page0, &page1, &page2};

    // Interleave lines of the three pages pseudo-randomly.
    struct Item
    {
        unsigned page;
        unsigned line;
    };
    std::vector<Item> order;
    for (unsigned p = 0; p < 3; ++p) {
        const std::size_t page_payload =
            p < 2 ? kPageSize : 100;
        for (unsigned l = 0; l * kCacheLineSize < page_payload; ++l)
            order.push_back({p, l});
    }
    Rng rng(3);
    for (std::size_t i = order.size(); i > 1; --i)
        std::swap(order[i - 1], order[rng.below(i)]);

    for (const auto &item : order) {
        std::uint8_t padded[kCacheLineSize] = {};
        const std::size_t off =
            item.page * kPageSize + item.line * kCacheLineSize;
        const std::size_t take = std::min(kCacheLineSize, len - off);
        std::memcpy(padded, fx.plain.data() + off, take);
        jobs[item.page]->processLine(item.line, padded);
    }
    EXPECT_TRUE(fx.state->complete());

    crypto::GcmTag tag;
    const auto expect = fx.reference(tag);
    // Page 2 carries the final 100 bytes + tag.
    std::uint8_t line0[kCacheLineSize];
    std::uint8_t line1[kCacheLineSize];
    ASSERT_TRUE(page2.resultLine(0, line0));
    ASSERT_TRUE(page2.resultLine(1, line1));
    EXPECT_EQ(0, std::memcmp(line0, expect.data() + 2 * kPageSize, 64));
    EXPECT_EQ(0, std::memcmp(line1 + (100 - 64), tag.data(), 16));
}

TEST(TlsDsa, ResultUnavailableBeforeProcessing)
{
    TlsFixture fx(4096, 4);
    TlsDsaJob job(fx.state, 0);
    std::uint8_t out[kCacheLineSize];
    EXPECT_FALSE(job.resultLine(0, out));
    std::uint8_t line[kCacheLineSize] = {};
    job.processLine(0, line);
    EXPECT_TRUE(job.resultLine(0, out));
    EXPECT_FALSE(job.resultLine(1, out));
}

TEST(TlsDsa, TagOnlyTrailerPage)
{
    const std::size_t len = kPageSize; // tag spills to page 1
    TlsFixture fx(len, 5);
    TlsDsaJob payload(fx.state, 0);
    TlsDsaJob trailer(fx.state, 1);
    EXPECT_TRUE(trailer.complete()) << "no payload lines to consume";

    std::uint8_t out[kCacheLineSize];
    EXPECT_FALSE(trailer.resultLine(0, out))
        << "tag not available until the record completes";

    for (unsigned l = 0; l < kLinesPerPage; ++l)
        payload.processLine(l, fx.plain.data() + l * kCacheLineSize);

    crypto::GcmTag tag;
    fx.reference(tag);
    ASSERT_TRUE(trailer.resultLine(0, out));
    EXPECT_EQ(0, std::memcmp(out, tag.data(), 16));
    EXPECT_EQ(trailer.resultBytes(), 16u);
}

TEST(DeflateDsa, OrderedStreamingCompression)
{
    std::vector<std::uint8_t> page(4000);
    for (std::size_t i = 0; i < page.size(); ++i)
        page[i] = static_cast<std::uint8_t>("abcdefgh"[i % 8]);

    DeflateDsaJob job(page.size(), {}, 24);
    EXPECT_TRUE(job.ordered());
    EXPECT_FALSE(job.complete());

    const std::size_t lines = divCeil(page.size(), kCacheLineSize);
    for (std::size_t l = 0; l < lines; ++l) {
        std::uint8_t padded[kCacheLineSize] = {};
        const std::size_t take =
            std::min(kCacheLineSize, page.size() - l * kCacheLineSize);
        std::memcpy(padded, page.data() + l * kCacheLineSize, take);
        job.processLine(static_cast<unsigned>(l), padded);
    }
    ASSERT_TRUE(job.complete());

    std::vector<std::uint8_t> framed(kPageSize);
    for (unsigned l = 0; l < kLinesPerPage; ++l)
        ASSERT_TRUE(job.resultLine(l, framed.data() + l * kCacheLineSize));
    const std::size_t stream_len = framed[0] | (framed[1] << 8);
    ASSERT_GT(stream_len, 0u);
    const auto back =
        compress::deflateDecompress(framed.data() + 2, stream_len);
    EXPECT_EQ(back, page);
    EXPECT_LT(job.resultBytes(), page.size());
}

TEST(DeflateDsa, NoResultsUntilComplete)
{
    std::vector<std::uint8_t> page(1000, 'x');
    DeflateDsaJob job(page.size(), {}, 24);
    std::uint8_t line[kCacheLineSize] = {'x'};
    std::uint8_t out[kCacheLineSize];
    job.processLine(0, line);
    EXPECT_FALSE(job.resultLine(0, out))
        << "streaming ULP emits only at completion";
}

TEST(DeflateDsa, IncompressiblePageFallsBackToStored)
{
    Rng rng(6);
    std::vector<std::uint8_t> page(4000);
    rng.fill(page.data(), page.size());

    DeflateDsaJob job(page.size(), {}, 24);
    const std::size_t lines = divCeil(page.size(), kCacheLineSize);
    for (std::size_t l = 0; l < lines; ++l) {
        std::uint8_t padded[kCacheLineSize] = {};
        const std::size_t take =
            std::min(kCacheLineSize, page.size() - l * kCacheLineSize);
        std::memcpy(padded, page.data() + l * kCacheLineSize, take);
        job.processLine(static_cast<unsigned>(l), padded);
    }
    std::vector<std::uint8_t> framed(kPageSize);
    for (unsigned l = 0; l < kLinesPerPage; ++l)
        job.resultLine(l, framed.data() + l * kCacheLineSize);
    const std::size_t stream_len = framed[0] | (framed[1] << 8);
    const auto back =
        compress::deflateDecompress(framed.data() + 2, stream_len);
    EXPECT_EQ(back, page);
}

} // namespace
