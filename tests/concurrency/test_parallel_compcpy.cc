/**
 * @file
 * Multi-threaded CompCpy stress: N driver threads each own an
 * independent simulated system (event queue, LLC, channel, SmartDIMM)
 * and push a stream of TLS CompCpy offloads through it, all while
 * recording into the ONE process-wide tracer and one shared
 * StatsRegistry, exactly the sharing pattern the paper's adaptive
 * stack assumes (many application threads, per-message CPU/DIMM
 * routing, shared DIMM bookkeeping).
 *
 * The suite is the TSan gate for the trace layer: run it under
 * -fsanitize=thread and every mutex/atomic contract in
 * src/trace + src/common/stats.h gets exercised with real contention.
 * It also pins down the accounting: per-thread work summed over the
 * shared counters must balance exactly after the join.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstring>
#include <memory>
#include <sstream>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "cache/memory_system.h"
#include "common/random.h"
#include "common/stats.h"
#include "compcpy/compcpy.h"
#include "compcpy/driver.h"
#include "crypto/tls_record.h"
#include "kernels/dispatch.h"
#include "sim/event_queue.h"
#include "smartdimm/buffer_device.h"
#include "trace/trace.h"

namespace {

using namespace sd;

constexpr unsigned kThreads = 8;
constexpr unsigned kOpsPerThread = 1000;
constexpr std::size_t kPayloadBytes = 192; // 3 lines, sub-page

/** One-channel SmartDIMM system, wholly owned by one driver thread. */
struct System
{
    EventQueue events;
    mem::BackingStore store;
    mem::DramGeometry geometry;
    mem::AddressMap map;
    smartdimm::BufferDevice dimm;
    std::unique_ptr<cache::MemorySystem> memory;
    compcpy::Driver driver;
    compcpy::CompCpyEngine::SharedState shared;
    compcpy::CompCpyEngine engine;

    System()
        : geometry(makeGeometry()),
          map(geometry, mem::ChannelInterleave::kNone),
          dimm(events, map, store),
          driver(/*base=*/1ULL << 20, /*bytes=*/64ULL << 20),
          engine(makeMemory(), driver, shared)
    {
    }

    static mem::DramGeometry
    makeGeometry()
    {
        mem::DramGeometry g;
        g.channels = 1;
        return g;
    }

    cache::MemorySystem &
    makeMemory()
    {
        cache::CacheConfig cc;
        cc.size_bytes = 1ULL << 20;
        memory = std::make_unique<cache::MemorySystem>(
            events, geometry, mem::ChannelInterleave::kNone, cc,
            std::vector<mem::DimmDevice *>{&dimm});
        return *memory;
    }
};

/** Shared accounting every thread hammers concurrently. */
struct SharedStats
{
    Counter ops;
    Counter bytes;
    LogHistogram op_latency;
    trace::StatsRegistry registry;
};

/** One driver thread: kOpsPerThread TLS offloads on a private rig. */
void
driverThread(unsigned tid, SharedStats &shared)
{
    System sys;
    Rng rng(0x1000 + tid);

    // Per-thread op counter surfaced through the shared registry so
    // the main thread can collect() concurrently (Counter reads are
    // atomic; nothing else in the provider touches racing state).
    Counter my_ops;
    const std::string component = "stress.t" + std::to_string(tid);
    shared.registry.add(component, [&my_ops](trace::StatsBlock &b) {
        b.scalar("ops", static_cast<double>(my_ops.value()));
    });

    // The whole batch is one synchronous traced unit of work.
    const std::uint32_t batch_span = SD_SPAN_BEGIN(
        "stress", 0, 0, kOpsPerThread, sys.events.now());

    std::vector<std::uint8_t> plain(kPayloadBytes);
    std::uint8_t key[16];
    crypto::GcmIv iv{};

    for (unsigned op = 0; op < kOpsPerThread; ++op) {
        rng.fill(plain.data(), plain.size());
        rng.fill(key, sizeof(key));
        rng.fill(iv.data(), iv.size());

        const Addr sbuf = sys.driver.alloc(kPayloadBytes);
        const Addr dbuf =
            sys.driver.alloc(kPayloadBytes + crypto::kTlsTagSize);
        sys.memory->writeSync(sbuf, plain.data(), plain.size());

        compcpy::CompCpyParams params;
        params.sbuf = sbuf;
        params.dbuf = dbuf;
        params.size = kPayloadBytes;
        params.ulp = smartdimm::UlpKind::kTlsEncrypt;
        params.message_id = (std::uint64_t{tid} << 32) | op;
        std::memcpy(params.key, key, sizeof(key));
        params.iv = iv;

        const Tick begin = sys.events.now();
        sys.engine.run(params);
        sys.engine.useSync(
            dbuf, divCeil(kPayloadBytes + crypto::kTlsTagSize, kPageSize) *
                      kPageSize);
        shared.op_latency.sample(sys.events.now() - begin);
        shared.ops.inc();
        shared.bytes.inc(kPayloadBytes);
        my_ops.inc();

        // Spot-check correctness against the software GCM on the
        // first op so a synchronisation bug that corrupts payloads
        // (not just metadata) also fails loudly.
        if (op == 0) {
            const auto result = sys.engine.readResult(
                dbuf, kPayloadBytes + crypto::kTlsTagSize);
            crypto::GcmContext ctx(key, crypto::Aes::KeySize::k128);
            std::vector<std::uint8_t> expect(kPayloadBytes);
            const crypto::GcmTag tag =
                ctx.encrypt(iv, plain.data(), plain.size(), expect.data());
            ASSERT_EQ(0, std::memcmp(result.data(), expect.data(),
                                     kPayloadBytes))
                << "thread " << tid << ": ciphertext mismatch";
            ASSERT_EQ(0, std::memcmp(result.data() + kPayloadBytes,
                                     tag.data(), tag.size()))
                << "thread " << tid << ": tag mismatch";
        }

        sys.driver.release(sbuf, kPayloadBytes);
        sys.driver.release(dbuf, kPayloadBytes + crypto::kTlsTagSize);
    }

    SD_SPAN_END(batch_span, sys.events.now());
    shared.registry.remove(component);
}

TEST(ParallelCompCpy, EightDriverThreadsShareTracerAndRegistry)
{
    auto &tr = trace::tracer();
    tr.clear();
    tr.setMaxEvents(std::size_t{1} << 22);
    tr.enable(/*capture_ddr=*/false);

    SharedStats shared;

    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    std::atomic<unsigned> finished{0};
    for (unsigned t = 0; t < kThreads; ++t) {
        threads.emplace_back([t, &shared, &finished] {
            driverThread(t, shared);
            // Incremented even when a fatal gtest assertion bails out
            // of driverThread early, so the main loop below can't spin
            // forever on a failing run.
            finished.fetch_add(1, std::memory_order_release);
        });
    }

    // Main thread hammers the shared registry while workers run:
    // collect() snapshots providers under the lock and reads only
    // atomic per-thread counters.
    std::uint64_t collected_rows = 0;
    while (finished.load(std::memory_order_acquire) < kThreads) {
        for (const auto &[name, block] : shared.registry.collect())
            collected_rows += block.entries().size();
        std::ostringstream sink;
        shared.registry.dumpJson(sink);
    }

    for (auto &t : threads)
        t.join();

    tr.disable();

    const std::uint64_t total = std::uint64_t{kThreads} * kOpsPerThread;

    // Exact accounting across all threads.
    EXPECT_EQ(shared.ops.value(), total);
    EXPECT_EQ(shared.bytes.value(), total * kPayloadBytes);
    EXPECT_EQ(shared.op_latency.count(), total);
    EXPECT_GT(shared.op_latency.min(), 0u);
    EXPECT_GE(shared.op_latency.max(), shared.op_latency.min());

#if !defined(SD_TRACE_DISABLED)
    // Every op opened an engine span; every thread opened one batch
    // span and closed it via SD_SPAN_END.
    const auto spans = tr.spans();
    std::uint64_t tls_spans = 0;
    std::uint64_t batch_spans = 0;
    for (const auto &s : spans) {
        if (std::string_view(s.kind) == "tls")
            ++tls_spans;
        else if (std::string_view(s.kind) == "stress") {
            ++batch_spans;
            EXPECT_GT(s.end, 0u) << "batch span missing SD_SPAN_END";
        }
    }
    EXPECT_EQ(tls_spans, total);
    EXPECT_EQ(batch_spans, kThreads);

    // The registry drained: every thread removed its provider.
    EXPECT_EQ(shared.registry.size(), 0u);
    EXPECT_GT(collected_rows, 0u);

    // Span ids must be dense and unique (mutex-serialised allocation).
    std::vector<bool> seen(spans.size() + 1, false);
    for (const auto &s : spans) {
        ASSERT_GE(s.id, 1u);
        ASSERT_LE(s.id, spans.size());
        EXPECT_FALSE(seen[s.id]) << "duplicate span id " << s.id;
        seen[s.id] = true;
    }
#endif // !SD_TRACE_DISABLED

    tr.clear();
    tr.setMaxEvents(std::size_t{1} << 20); // restore default cap
}

TEST(ParallelDispatch, ActiveTierRacesAreBenign)
{
    kernels::clearForcedTier();
    std::vector<std::thread> threads;
    std::atomic<bool> stop{false};

    // Readers: activeTier() must always return a valid, supported tier.
    for (unsigned t = 0; t < 6; ++t) {
        threads.emplace_back([&stop] {
            while (!stop.load(std::memory_order_relaxed)) {
                const auto tier = kernels::activeTier();
                const auto tiers = kernels::availableTiers();
                ASSERT_NE(std::find(tiers.begin(), tiers.end(), tier),
                          tiers.end())
                    << "activeTier returned an unavailable tier";
            }
        });
    }
    // Writers: toggle the override between always-compiled tiers.
    for (unsigned t = 0; t < 2; ++t) {
        threads.emplace_back([&stop, t] {
            for (unsigned i = 0; i < 20000; ++i) {
                kernels::forceTier(t == 0 ? kernels::KernelTier::kScalar
                                          : kernels::KernelTier::kTable);
                kernels::clearForcedTier();
            }
            stop.store(true, std::memory_order_relaxed);
        });
    }
    for (auto &t : threads)
        t.join();
    kernels::clearForcedTier();
}

} // namespace
