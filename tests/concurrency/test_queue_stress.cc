/**
 * @file
 * Multi-threaded work-queue stress: N driver threads each own an
 * independent simulated system plus a shared-mode WorkQueue and pump a
 * pipelined submit/poll loop through it — several logical submitters
 * per queue, one reaper (the owning thread), descriptors kept in
 * flight up to the ring depth — while recording into the ONE
 * process-wide tracer and one shared StatsRegistry.
 *
 * Together with test_parallel_compcpy this is the TSan gate for the
 * queue front end: the WorkQueue itself is single-owner (per-thread),
 * so what's exercised under -fsanitize=thread is exactly the shared
 * surface — tracer spans opened at submit and closed at record write,
 * plus the shared counters. Accounting must balance exactly after the
 * join: submits == completions == reaps on every queue, and no record
 * may be degraded or recovered on a fault-free run.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "cache/memory_system.h"
#include "common/random.h"
#include "common/stats.h"
#include "compcpy/compcpy.h"
#include "compcpy/driver.h"
#include "compcpy/queue.h"
#include "crypto/tls_record.h"
#include "sim/event_queue.h"
#include "smartdimm/buffer_device.h"
#include "trace/trace.h"

namespace {

using namespace sd;
using compcpy::CompletionStatus;
using compcpy::Descriptor;
using compcpy::QueueMode;
using compcpy::WorkQueue;
using compcpy::WorkQueueConfig;

constexpr unsigned kThreads = 8;
constexpr unsigned kOpsPerThread = 400;
constexpr unsigned kSubmitters = 4; // logical ids sharing one SWQ
constexpr std::size_t kPayloadBytes = 192; // 3 lines, sub-page

/** One-channel SmartDIMM system, wholly owned by one driver thread. */
struct System
{
    EventQueue events;
    mem::BackingStore store;
    mem::DramGeometry geometry;
    mem::AddressMap map;
    smartdimm::BufferDevice dimm;
    std::unique_ptr<cache::MemorySystem> memory;
    compcpy::Driver driver;
    compcpy::CompCpyEngine::SharedState shared;
    compcpy::CompCpyEngine engine;

    System()
        : geometry(makeGeometry()),
          map(geometry, mem::ChannelInterleave::kNone),
          dimm(events, map, store),
          driver(/*base=*/1ULL << 20, /*bytes=*/64ULL << 20),
          engine(makeMemory(), driver, shared)
    {
    }

    static mem::DramGeometry
    makeGeometry()
    {
        mem::DramGeometry g;
        g.channels = 1;
        return g;
    }

    cache::MemorySystem &
    makeMemory()
    {
        cache::CacheConfig cc;
        cc.size_bytes = 1ULL << 20;
        memory = std::make_unique<cache::MemorySystem>(
            events, geometry, mem::ChannelInterleave::kNone, cc,
            std::vector<mem::DimmDevice *>{&dimm});
        return *memory;
    }
};

/** Shared accounting every thread hammers concurrently. */
struct SharedStats
{
    Counter submits;
    Counter reaps;
    Counter recovered;
    LogHistogram record_latency;
    trace::StatsRegistry registry;
};

/** Everything needed to verify one submitted descriptor later. */
struct InflightOp
{
    Addr sbuf = 0;
    Addr dbuf = 0;
    std::vector<std::uint8_t> plain;
    std::uint8_t key[16];
    crypto::GcmIv iv{};
};

/** One driver thread: a pipelined submit/poll loop on a private rig. */
void
driverThread(unsigned tid, SharedStats &shared)
{
    System sys;
    Rng rng(0x2000 + tid);

    WorkQueueConfig cfg;
    cfg.id = static_cast<std::uint16_t>(tid % 4); // any valid queue id
    cfg.mode = QueueMode::kShared;
    cfg.depth = 16;
    cfg.max_inflight = 8;
    WorkQueue queue(sys.engine, cfg);

    const std::string component = "qstress.t" + std::to_string(tid);
    Counter my_reaps;
    shared.registry.add(component, [&my_reaps](trace::StatsBlock &b) {
        b.scalar("reaps", static_cast<double>(my_reaps.value()));
    });

    // Stage every source buffer up front: writeSync drives the
    // private simulation synchronously, so staging inside the
    // pipelined loop would drain in-flight descriptors and defeat the
    // overlap this test exists to exercise.
    // Descriptor ids are dense from 1, so a vector indexes the book.
    std::vector<InflightOp> book(kOpsPerThread + 1);
    std::vector<compcpy::CompCpyParams> params(kOpsPerThread + 1);
    for (unsigned i = 1; i <= kOpsPerThread; ++i) {
        InflightOp &op = book[i];
        op.plain.resize(kPayloadBytes);
        rng.fill(op.plain.data(), op.plain.size());
        rng.fill(op.key, sizeof(op.key));
        rng.fill(op.iv.data(), op.iv.size());
        op.sbuf = sys.driver.alloc(kPayloadBytes);
        op.dbuf = sys.driver.alloc(kPayloadBytes + crypto::kTlsTagSize);
        sys.memory->writeSync(op.sbuf, op.plain.data(),
                              op.plain.size());

        params[i].sbuf = op.sbuf;
        params[i].dbuf = op.dbuf;
        params[i].size = kPayloadBytes;
        params[i].ulp = smartdimm::UlpKind::kTlsEncrypt;
        params[i].message_id = (std::uint64_t{tid} << 32) | i;
        std::memcpy(params[i].key, op.key, sizeof(op.key));
        params[i].iv = op.iv;
    }

    unsigned submitted = 0;
    unsigned reaped = 0;
    bool verified_one = false;

    while (reaped < kOpsPerThread) {
        // Submit side: keep the ring as full as it will go, rotating
        // through the logical submitters that share this SWQ.
        while (submitted < kOpsPerThread) {
            const auto id = queue.submit(
                Descriptor::single(params[submitted + 1]),
                static_cast<std::uint16_t>(submitted % kSubmitters));
            if (!id) // ring full: go reap
                break;
            ASSERT_EQ(*id, submitted + 1u);
            ++submitted;
            shared.submits.inc();
        }

        // Reap side: drive the private simulation to idle, then poll.
        sys.events.run();
        for (const auto &rec : queue.poll()) {
            ASSERT_GE(rec.id, 1u);
            ASSERT_LE(rec.id, submitted);
            ASSERT_EQ(rec.status, CompletionStatus::kSuccess)
                << "thread " << tid << " descriptor " << rec.id;
            if (rec.recovered)
                shared.recovered.inc();
            ASSERT_EQ(rec.submitter, (rec.id - 1) % kSubmitters);
            shared.record_latency.sample(rec.completed - rec.submitted);
            InflightOp &op = book[rec.id];

            // Spot-check payload correctness on the first reap so a
            // race that corrupts data (not just metadata) fails loudly.
            if (!verified_one) {
                verified_one = true;
                sys.engine.useSync(op.dbuf, kPageSize);
                const auto result = sys.engine.readResult(
                    op.dbuf, kPayloadBytes + crypto::kTlsTagSize);
                crypto::GcmContext ctx(op.key,
                                       crypto::Aes::KeySize::k128);
                std::vector<std::uint8_t> expect(kPayloadBytes);
                const crypto::GcmTag tag = ctx.encrypt(
                    op.iv, op.plain.data(), op.plain.size(),
                    expect.data());
                ASSERT_EQ(0, std::memcmp(result.data(), expect.data(),
                                         kPayloadBytes))
                    << "thread " << tid << ": ciphertext mismatch";
                ASSERT_EQ(0,
                          std::memcmp(result.data() + kPayloadBytes,
                                      tag.data(), tag.size()))
                    << "thread " << tid << ": tag mismatch";
            }
            sys.driver.release(op.sbuf, kPayloadBytes);
            sys.driver.release(op.dbuf,
                               kPayloadBytes + crypto::kTlsTagSize);
            ++reaped;
            shared.reaps.inc();
            my_reaps.inc();
        }
    }

    // Per-queue accounting balances exactly on the owning thread.
    EXPECT_EQ(queue.stats().submitted, kOpsPerThread);
    EXPECT_EQ(queue.stats().completions, kOpsPerThread);
    EXPECT_EQ(queue.stats().reaped, kOpsPerThread);
    EXPECT_EQ(queue.stats().rejected_submitter, 0u)
        << "a shared queue accepts every submitter";
    EXPECT_EQ(queue.occupancy(), 0u);
    EXPECT_GT(queue.peakOccupancy(), 1)
        << "the pipelined loop must actually overlap descriptors";
    shared.registry.remove(component);
}

TEST(QueueStress, EightThreadsPipelineSharedQueues)
{
    auto &tr = trace::tracer();
    tr.clear();
    tr.setMaxEvents(std::size_t{1} << 22);
    tr.enable(/*capture_ddr=*/false);

    SharedStats shared;

    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    std::atomic<unsigned> finished{0};
    for (unsigned t = 0; t < kThreads; ++t) {
        threads.emplace_back([t, &shared, &finished] {
            driverThread(t, shared);
            finished.fetch_add(1, std::memory_order_release);
        });
    }

    // Main thread hammers the shared registry while workers run.
    std::uint64_t collected_rows = 0;
    while (finished.load(std::memory_order_acquire) < kThreads) {
        for (const auto &[name, block] : shared.registry.collect())
            collected_rows += block.entries().size();
    }
    for (auto &t : threads)
        t.join();
    tr.disable();

    const std::uint64_t total = std::uint64_t{kThreads} * kOpsPerThread;
    EXPECT_EQ(shared.submits.value(), total);
    EXPECT_EQ(shared.reaps.value(), total);
    EXPECT_EQ(shared.recovered.value(), 0u)
        << "no fault plan: no record may need recovery";
    EXPECT_EQ(shared.record_latency.count(), total);
    EXPECT_GT(shared.record_latency.min(), 0u);
    EXPECT_EQ(shared.registry.size(), 0u);
    EXPECT_GT(collected_rows, 0u);

#if !defined(SD_TRACE_DISABLED)
    // The queue opened one "tls" span per op at submit and closed
    // every one at record write — across all threads, concurrently,
    // through the one process-wide tracer.
    const auto spans = tr.spans();
    std::uint64_t tls_spans = 0;
    for (const auto &s : spans) {
        if (std::string_view(s.kind) != "tls")
            continue;
        ++tls_spans;
        EXPECT_GT(s.end, 0u) << "span " << s.id
                             << " never closed at record write";
    }
    EXPECT_EQ(tls_spans, total);
#endif // !SD_TRACE_DISABLED

    tr.clear();
    tr.setMaxEvents(std::size_t{1} << 20); // restore default cap
}

} // namespace
