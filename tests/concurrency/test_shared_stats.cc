/**
 * @file
 * Contention tests for the shared statistics primitives and the
 * single-owner runtime checker: exact counter accounting under 8
 * threads, LogHistogram accumulator balance, StatsRegistry
 * add/remove/collect races, and the SingleOwnerChecker contract
 * (handoff via reset(), panic on a cross-thread touch).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/stats.h"
#include "sim/event_queue.h"
#include "trace/trace.h"

namespace {

using namespace sd;

constexpr unsigned kThreads = 8;
constexpr std::uint64_t kIncsPerThread = 100'000;

TEST(SharedCounter, EightThreadIncrementsSumExactly)
{
    Counter counter;
    std::vector<std::thread> threads;
    for (unsigned t = 0; t < kThreads; ++t) {
        threads.emplace_back([&counter] {
            for (std::uint64_t i = 0; i < kIncsPerThread; ++i)
                counter.inc();
        });
    }
    for (auto &t : threads)
        t.join();
    EXPECT_EQ(counter.value(), kThreads * kIncsPerThread);
}

TEST(SharedCounter, MixedStepIncrementsBalance)
{
    Counter counter;
    std::vector<std::thread> threads;
    for (unsigned t = 0; t < kThreads; ++t) {
        threads.emplace_back([&counter, t] {
            for (std::uint64_t i = 0; i < kIncsPerThread; ++i)
                counter.inc(t + 1);
        });
    }
    for (auto &t : threads)
        t.join();
    // sum over t of (t+1) * kIncsPerThread
    const std::uint64_t expect =
        kIncsPerThread * (kThreads * (kThreads + 1) / 2);
    EXPECT_EQ(counter.value(), expect);
}

TEST(SharedLogHistogram, ConcurrentSamplesBalanceExactly)
{
    LogHistogram hist;
    std::vector<std::thread> threads;
    for (unsigned t = 0; t < kThreads; ++t) {
        threads.emplace_back([&hist, t] {
            for (std::uint64_t i = 1; i <= kIncsPerThread; ++i)
                hist.sample(i + t); // distinct ranges per thread
        });
    }
    for (auto &t : threads)
        t.join();

    EXPECT_EQ(hist.count(), kThreads * kIncsPerThread);
    // Exact sum: each thread contributes sum(1..N) + N*t.
    std::uint64_t expect_sum = 0;
    for (std::uint64_t t = 0; t < kThreads; ++t)
        expect_sum += kIncsPerThread * (kIncsPerThread + 1) / 2 +
                      kIncsPerThread * t;
    EXPECT_EQ(hist.sum(), expect_sum);
    EXPECT_EQ(hist.min(), 1u);
    EXPECT_EQ(hist.max(), kIncsPerThread + kThreads - 1);

    // Bucket totals must balance the sample count exactly.
    std::uint64_t bucket_total = 0;
    for (const auto c : hist.buckets())
        bucket_total += c;
    EXPECT_EQ(bucket_total, hist.count());
}

TEST(SharedStatsRegistry, CommonScalarRegistryRaces)
{
    StatsRegistry registry;
    std::vector<std::thread> threads;
    for (unsigned t = 0; t < kThreads; ++t) {
        threads.emplace_back([&registry, t] {
            const std::string name = "t" + std::to_string(t);
            for (unsigned i = 0; i < 2000; ++i) {
                registry.set(name, static_cast<double>(i));
                (void)registry.get(name);
                std::ostringstream sink;
                registry.dump(sink);
            }
        });
    }
    for (auto &t : threads)
        t.join();
    for (unsigned t = 0; t < kThreads; ++t)
        EXPECT_EQ(registry.get("t" + std::to_string(t)), 1999.0);
}

TEST(SharedStatsRegistry, TraceRegistryAddRemoveCollectRaces)
{
    trace::StatsRegistry registry;
    std::atomic<bool> stop{false};

    std::vector<std::thread> threads;
    for (unsigned t = 0; t < kThreads; ++t) {
        threads.emplace_back([&registry, t] {
            const std::string name = "component" + std::to_string(t);
            for (unsigned i = 0; i < 2000; ++i) {
                registry.add(name, [](trace::StatsBlock &b) {
                    b.scalar("x", 1.0);
                });
                (void)registry.collect();
                registry.remove(name);
            }
        });
    }
    // A dedicated reader dumps concurrently with the add/remove churn.
    threads.emplace_back([&registry, &stop] {
        while (!stop.load(std::memory_order_relaxed)) {
            std::ostringstream sink;
            registry.dumpJson(sink);
        }
    });

    for (unsigned t = 0; t < kThreads; ++t)
        threads[t].join();
    stop.store(true, std::memory_order_relaxed);
    threads.back().join();

    EXPECT_EQ(registry.size(), 0u);
}

TEST(SingleOwner, ResetHandsTheQueueToAnotherThread)
{
    EventQueue queue;
    int ran = 0;
    queue.scheduleIn(10, [&ran] { ++ran; });
    queue.run();
    EXPECT_EQ(ran, 1);

    // reset() releases ownership: a different thread may now drive it.
    queue.reset();
    std::thread worker([&queue, &ran] {
        queue.scheduleIn(5, [&ran] { ++ran; });
        queue.run();
    });
    worker.join();
    EXPECT_EQ(ran, 2);
}

// TSan intercepts the fork-based death test machinery; the violation
// itself is a deliberate panic, not a data race, so only check it in
// plain builds.
#if !defined(__SANITIZE_THREAD__)
TEST(SingleOwnerDeath, CrossThreadTouchPanics)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    EXPECT_DEATH(
        {
            EventQueue queue;
            queue.scheduleIn(1, [] {});
            std::thread trespasser(
                [&queue] { queue.scheduleIn(2, [] {}); });
            trespasser.join();
        },
        "single-owner contract violated");
}
#endif

} // namespace
