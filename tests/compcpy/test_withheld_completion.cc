/**
 * @file
 * Withheld-response completion contract (the CXL.mem far-tier model):
 * delivery of the held kQueueComplete read IS the completion — no
 * host polling, no lossy record write — and the saved poll traffic is
 * tallied. The failure mode moves to the response itself: an injected
 * kCxlTimeout drops it and poll-timeout recovery synthesises the
 * record, flagged degraded so the dispatcher can fall back.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <vector>

#include "common/random.h"
#include "compcpy/queue.h"
#include "fault/fault.h"
#include "topo/dispatcher.h"
#include "topo/topology.h"

namespace {

using namespace sd;
using compcpy::CompletionRecord;
using compcpy::CompletionSignal;
using compcpy::CompletionStatus;
using compcpy::Descriptor;
using compcpy::WorkQueue;
using compcpy::WorkQueueConfig;

/** A TLS-4K op staged on @p slot. */
compcpy::CompCpyParams
makeTlsOp(topo::Topology &topo, topo::Topology::Slot &slot, Rng &rng,
          std::uint64_t message_id)
{
    std::vector<std::uint8_t> plain(4096);
    rng.fill(plain.data(), plain.size());

    compcpy::CompCpyParams params;
    params.size = plain.size();
    params.ulp = smartdimm::UlpKind::kTlsEncrypt;
    params.message_id = message_id;
    rng.fill(params.key, sizeof(params.key));
    rng.fill(params.iv.data(), params.iv.size());
    params.sbuf = slot.driver.alloc(plain.size());
    params.dbuf = slot.driver.alloc(2 * kPageSize);
    topo.memory().writeSync(params.sbuf, plain.data(), plain.size());
    return params;
}

WorkQueueConfig
withheldConfig()
{
    WorkQueueConfig config;
    config.id = 1;
    config.mode = compcpy::QueueMode::kShared;
    config.signal = CompletionSignal::kWithheldResponse;
    return config;
}

TEST(WithheldCompletion, DeliversExactlyOnceWithoutPolling)
{
    topo::Topology topo{topo::TopologySpec{}};
    WorkQueue queue(topo.slot(0u).engine, withheldConfig());

    Rng rng(41);
    std::map<std::uint64_t, unsigned> delivered;
    for (std::uint64_t i = 0; i < 4; ++i) {
        const auto params = makeTlsOp(topo, topo.slot(0u), rng, 1 + i);
        const auto id = queue.submit(
            Descriptor::single(params), 0,
            [&delivered](const CompletionRecord &record) {
                ++delivered[record.id];
                EXPECT_EQ(record.status, CompletionStatus::kSuccess);
                EXPECT_FALSE(record.recovered);
            });
        ASSERT_TRUE(id.has_value());
    }
    topo.events().run();

    ASSERT_EQ(delivered.size(), 4u);
    for (const auto &[id, count] : delivered)
        EXPECT_EQ(count, 1u) << "descriptor " << id;

    const auto &stats = queue.stats();
    EXPECT_EQ(stats.submitted, 4u);
    EXPECT_EQ(stats.completions, 4u);
    EXPECT_EQ(stats.withheld_reads, 4u);
    EXPECT_EQ(stats.withheld_completions, 4u);
    EXPECT_EQ(stats.withheld_timeouts, 0u);
    EXPECT_EQ(stats.lost_records, 0u)
        << "the withheld mode has no lossy record write";
    EXPECT_EQ(stats.recovered_records, 0u);
}

TEST(WithheldCompletion, TalliesTheSavedPollTraffic)
{
    topo::Topology topo{topo::TopologySpec{}};
    WorkQueueConfig config = withheldConfig();
    config.poll_interval = 1'000'000; // 1 us: several polls per op
    WorkQueue queue(topo.slot(0u).engine, config);

    Rng rng(43);
    const auto params = makeTlsOp(topo, topo.slot(0u), rng, 9);
    Tick waited = 0;
    ASSERT_TRUE(queue
                    .submit(Descriptor::single(params), 0,
                            [&](const CompletionRecord &record) {
                                waited = record.completed -
                                         record.submitted;
                            })
                    .has_value());
    topo.events().run();

    const auto &stats = queue.stats();
    // One poll replaced per interval the descriptor was outstanding,
    // plus the final one that would have found the record.
    EXPECT_EQ(stats.polls_saved,
              1 + waited / config.poll_interval);
    EXPECT_EQ(stats.poll_bytes_saved,
              stats.polls_saved * kCacheLineSize);
    EXPECT_GT(stats.polls_saved, 1u)
        << "a multi-microsecond offload must save more than one poll";
}

TEST(WithheldCompletion, PollRecordModeLeavesWithheldCountersZero)
{
    topo::Topology topo{topo::TopologySpec{}};
    WorkQueue queue(topo.slot(0u).engine,
                    WorkQueueConfig{.id = 1,
                                    .mode = compcpy::QueueMode::kShared});

    Rng rng(47);
    const auto params = makeTlsOp(topo, topo.slot(0u), rng, 5);
    ASSERT_TRUE(
        queue.submit(Descriptor::single(params)).has_value());
    queue.drain();

    const auto &stats = queue.stats();
    EXPECT_EQ(stats.completions, 1u);
    EXPECT_EQ(stats.withheld_reads, 0u);
    EXPECT_EQ(stats.withheld_completions, 0u);
    EXPECT_EQ(stats.polls_saved, 0u);
}

TEST(WithheldCompletion, TimeoutRecoverySynthesisesDegradedRecord)
{
    topo::Topology topo{topo::TopologySpec{}};
    auto plan = fault::FaultPlan::fromSpec("cxl_timeout:count=1", 13);
    ASSERT_TRUE(plan.has_value());
    topo.setFaultPlan(&*plan);

    WorkQueue queue(topo.slot(0u).engine, withheldConfig());
    Rng rng(53);
    const auto params = makeTlsOp(topo, topo.slot(0u), rng, 7);
    const auto id = queue.submit(Descriptor::single(params));
    ASSERT_TRUE(id.has_value());

    // wait() drives the event queue and runs poll-timeout recovery
    // when the response never arrives.
    const CompletionRecord record = queue.wait(*id);
    EXPECT_TRUE(record.recovered);
    EXPECT_EQ(record.status, CompletionStatus::kDegraded)
        << "a completion the host never saw cannot be trusted";

    const auto &stats = queue.stats();
    EXPECT_EQ(stats.withheld_timeouts, 1u);
    EXPECT_EQ(stats.withheld_timeouts,
              plan->injected(fault::Site::kCxlTimeout));
    EXPECT_EQ(stats.withheld_completions, 0u);
    EXPECT_EQ(stats.recovered_records, 1u);
    EXPECT_EQ(stats.completions, 1u);
    EXPECT_EQ(stats.bailouts, 0u);
}

TEST(WithheldCompletion, FarSlotsOfAMixedTopologyUseWithheldQueues)
{
    topo::TopologySpec spec;
    spec.channels = 1;
    spec.cxl_channels = 1;
    topo::Topology topo(spec);
    topo::ShardDispatcher dispatcher(topo);

    ASSERT_EQ(topo.slotCount(), 2u);
    EXPECT_EQ(dispatcher.queue(0).config().signal,
              CompletionSignal::kPollRecord);
    EXPECT_EQ(dispatcher.queue(1).config().signal,
              CompletionSignal::kWithheldResponse)
        << "a far slot's queue must complete via the held read";
}

} // namespace
