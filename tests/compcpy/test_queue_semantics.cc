/**
 * @file
 * Descriptor/work-queue semantics: descriptor lifecycle and record
 * ticks, strict FIFO dispatch per queue, shared-vs-dedicated submitter
 * arbitration, queue-full backpressure, batch-descriptor fan-out /
 * fan-in, and the sync-facade contract (run() is submit-then-poll on
 * the engine's internal queue).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <memory>
#include <vector>

#include "cache/memory_system.h"
#include "common/random.h"
#include "compcpy/compcpy.h"
#include "compcpy/driver.h"
#include "compcpy/queue.h"
#include "crypto/aes_gcm.h"
#include "sim/event_queue.h"
#include "smartdimm/buffer_device.h"

namespace {

using namespace sd;
using compcpy::CompletionRecord;
using compcpy::CompletionStatus;
using compcpy::Descriptor;
using compcpy::QueueMode;
using compcpy::WorkQueue;
using compcpy::WorkQueueConfig;

/** One-channel SmartDIMM rig. */
struct System
{
    EventQueue events;
    mem::BackingStore store;
    mem::DramGeometry geometry;
    mem::AddressMap map;
    smartdimm::BufferDevice dimm;
    std::unique_ptr<cache::MemorySystem> memory;
    compcpy::Driver driver;
    compcpy::CompCpyEngine::SharedState shared;
    compcpy::CompCpyEngine engine;

    System()
        : geometry(makeGeometry()),
          map(geometry, mem::ChannelInterleave::kNone),
          dimm(events, map, store),
          driver(/*base=*/1ULL << 20, /*bytes=*/512ULL << 20),
          engine(makeMemory(), driver, shared)
    {
    }

    static mem::DramGeometry
    makeGeometry()
    {
        mem::DramGeometry g;
        g.channels = 1;
        return g;
    }

    cache::MemorySystem &
    makeMemory()
    {
        cache::CacheConfig cc;
        cc.size_bytes = 4ull << 20;
        memory = std::make_unique<cache::MemorySystem>(
            events, geometry, mem::ChannelInterleave::kNone, cc,
            std::vector<mem::DimmDevice *>{&dimm});
        return *memory;
    }
};

/** A staged TLS op plus everything needed to verify its output. */
struct TlsOp
{
    compcpy::CompCpyParams params;
    std::vector<std::uint8_t> plain;
    std::uint8_t key[16];
    crypto::GcmIv iv{};
    std::size_t dst_bytes = 0;
};

/** Stage @p len plaintext bytes and build the matching CompCpyParams. */
TlsOp
makeTlsOp(System &sys, Rng &rng, std::size_t len, std::uint64_t msg_id)
{
    TlsOp op;
    op.plain.resize(len);
    rng.fill(op.plain.data(), len);
    rng.fill(op.key, sizeof(op.key));
    rng.fill(op.iv.data(), op.iv.size());

    const std::size_t src_bytes = divCeil(len, kPageSize) * kPageSize;
    op.dst_bytes = divCeil(len + 16, kPageSize) * kPageSize;
    const Addr sbuf = sys.driver.alloc(src_bytes);
    const Addr dbuf = sys.driver.alloc(op.dst_bytes);
    std::vector<std::uint8_t> staged(src_bytes, 0);
    std::memcpy(staged.data(), op.plain.data(), len);
    sys.memory->writeSync(sbuf, staged.data(), staged.size());

    op.params.sbuf = sbuf;
    op.params.dbuf = dbuf;
    op.params.size = len;
    op.params.ulp = smartdimm::UlpKind::kTlsEncrypt;
    op.params.message_id = msg_id;
    std::memcpy(op.params.key, op.key, sizeof(op.key));
    op.params.iv = op.iv;
    return op;
}

/** useSync + readResult + compare against the software GCM. */
void
verifyTlsOutput(System &sys, const TlsOp &op)
{
    sys.engine.useSync(op.params.dbuf, op.dst_bytes);
    const auto result =
        sys.engine.readResult(op.params.dbuf, op.plain.size() + 16);
    crypto::GcmContext ctx(op.key, crypto::Aes::KeySize::k128);
    std::vector<std::uint8_t> expect(op.plain.size());
    const crypto::GcmTag tag = ctx.encrypt(op.iv, op.plain.data(),
                                           op.plain.size(), expect.data());
    ASSERT_EQ(result.size(), op.plain.size() + 16);
    EXPECT_EQ(0, std::memcmp(result.data(), expect.data(), op.plain.size()))
        << "ciphertext mismatch (message " << op.params.message_id << ")";
    EXPECT_EQ(0, std::memcmp(result.data() + op.plain.size(), tag.data(),
                             16))
        << "tag mismatch (message " << op.params.message_id << ")";
}

TEST(QueueSemantics, SingleDescriptorLifecycle)
{
    System sys;
    WorkQueueConfig cfg;
    cfg.id = 2;
    cfg.depth = 8;
    WorkQueue queue(sys.engine, cfg);

    Rng rng(21);
    TlsOp op = makeTlsOp(sys, rng, 4096, 1);

    const auto id =
        queue.submit(Descriptor::single(op.params), /*submitter=*/5);
    ASSERT_TRUE(id.has_value());
    EXPECT_EQ(*id, 1u);
    EXPECT_EQ(queue.occupancy(), 1u);

    const CompletionRecord rec = queue.wait(*id);
    EXPECT_EQ(rec.id, 1u);
    EXPECT_EQ(rec.queue, 2u);
    EXPECT_EQ(rec.submitter, 5u);
    EXPECT_EQ(rec.ops, 1u);
    EXPECT_EQ(rec.status, CompletionStatus::kSuccess);
    EXPECT_FALSE(rec.recovered);

    // Lifecycle ticks advance monotonically through the protocol:
    // accepted, then dispatched once the doorbell landed, then
    // completion-recorded after the op and the device ack finished.
    EXPECT_LE(rec.submitted, rec.dispatched);
    EXPECT_LT(rec.dispatched, rec.completed);

    EXPECT_EQ(queue.occupancy(), 0u);
    EXPECT_EQ(queue.stats().submitted, 1u);
    EXPECT_EQ(queue.stats().completions, 1u);
    EXPECT_EQ(queue.stats().reaped, 1u);
    EXPECT_EQ(queue.stats().doorbells, 1u);
    EXPECT_EQ(queue.completionLatency().count(), 1u);
    verifyTlsOutput(sys, op);
}

TEST(QueueSemantics, FifoDispatchOrderPerQueue)
{
    System sys;
    WorkQueueConfig cfg;
    cfg.depth = 16;
    cfg.max_inflight = 4;
    WorkQueue queue(sys.engine, cfg);

    Rng rng(22);
    constexpr int kDescs = 6;
    std::vector<TlsOp> ops;
    std::vector<std::uint64_t> ids;
    for (int i = 0; i < kDescs; ++i)
        ops.push_back(makeTlsOp(sys, rng, 4096, 100 + i));
    for (int i = 0; i < kDescs; ++i) {
        const auto id = queue.submit(Descriptor::single(ops[i].params));
        ASSERT_TRUE(id.has_value());
        ids.push_back(*id);
    }
    queue.drain();

    auto records = queue.poll();
    ASSERT_EQ(records.size(), static_cast<std::size_t>(kDescs));

    // Strict FIFO: ascending descriptor id means ascending dispatch
    // tick — a later submission never starts executing first.
    std::sort(records.begin(), records.end(),
              [](const CompletionRecord &a, const CompletionRecord &b) {
                  return a.id < b.id;
              });
    for (int i = 0; i < kDescs; ++i) {
        EXPECT_EQ(records[i].id, ids[i]);
        EXPECT_EQ(records[i].status, CompletionStatus::kSuccess);
        if (i > 0) {
            EXPECT_GE(records[i].dispatched, records[i - 1].dispatched)
                << "descriptor " << ids[i] << " dispatched before "
                << ids[i - 1];
        }
    }
    for (const auto &op : ops)
        verifyTlsOutput(sys, op);
}

TEST(QueueSemantics, DedicatedQueueRejectsForeignSubmitters)
{
    System sys;
    WorkQueueConfig cfg;
    cfg.mode = QueueMode::kDedicated;
    WorkQueue queue(sys.engine, cfg);

    Rng rng(23);
    TlsOp a = makeTlsOp(sys, rng, 4096, 1);
    TlsOp b = makeTlsOp(sys, rng, 4096, 2);
    TlsOp c = makeTlsOp(sys, rng, 4096, 3);

    // First accepted submitter binds the queue (DWQ semantics).
    const auto ida = queue.submit(Descriptor::single(a.params), 3);
    ASSERT_TRUE(ida.has_value());

    // A foreign submitter is turned away at the door, not queued.
    const auto idb = queue.submit(Descriptor::single(b.params), 5);
    EXPECT_FALSE(idb.has_value());
    EXPECT_EQ(queue.stats().rejected_submitter, 1u);
    EXPECT_EQ(queue.occupancy(), 1u);

    // The owner keeps submitting freely.
    const auto idc = queue.submit(Descriptor::single(c.params), 3);
    ASSERT_TRUE(idc.has_value());

    queue.drain();
    const auto records = queue.poll();
    ASSERT_EQ(records.size(), 2u);
    for (const auto &rec : records)
        EXPECT_EQ(rec.submitter, 3u);
    verifyTlsOutput(sys, a);
    verifyTlsOutput(sys, c);
}

TEST(QueueSemantics, SharedQueueArbitratesBySubmissionOrder)
{
    System sys;
    WorkQueueConfig cfg;
    cfg.mode = QueueMode::kShared;
    cfg.max_inflight = 2;
    WorkQueue queue(sys.engine, cfg);

    Rng rng(24);
    constexpr int kDescs = 6;
    std::vector<TlsOp> ops;
    for (int i = 0; i < kDescs; ++i)
        ops.push_back(makeTlsOp(sys, rng, 4096, 200 + i));

    // Interleaved submitters (an ENQCMD SWQ): all accepted, entries
    // arbitrate purely by submission order.
    for (int i = 0; i < kDescs; ++i) {
        const auto id = queue.submit(Descriptor::single(ops[i].params),
                                     static_cast<std::uint16_t>(i % 3));
        ASSERT_TRUE(id.has_value()) << "submitter " << i % 3;
    }
    EXPECT_EQ(queue.stats().rejected_submitter, 0u);
    queue.drain();

    auto records = queue.poll();
    ASSERT_EQ(records.size(), static_cast<std::size_t>(kDescs));
    std::sort(records.begin(), records.end(),
              [](const CompletionRecord &a, const CompletionRecord &b) {
                  return a.id < b.id;
              });
    for (int i = 0; i < kDescs; ++i) {
        EXPECT_EQ(records[i].submitter, i % 3);
        if (i > 0) {
            EXPECT_GE(records[i].dispatched, records[i - 1].dispatched)
                << "shared-queue arbitration must follow submit order";
        }
    }
    for (const auto &op : ops)
        verifyTlsOutput(sys, op);
}

TEST(QueueSemantics, QueueFullBackpressure)
{
    System sys;
    WorkQueueConfig cfg;
    cfg.depth = 2;
    WorkQueue queue(sys.engine, cfg);

    Rng rng(25);
    TlsOp a = makeTlsOp(sys, rng, 4096, 1);
    TlsOp b = makeTlsOp(sys, rng, 4096, 2);
    TlsOp c = makeTlsOp(sys, rng, 4096, 3);

    ASSERT_TRUE(queue.submit(Descriptor::single(a.params)).has_value());
    ASSERT_TRUE(queue.submit(Descriptor::single(b.params)).has_value());
    EXPECT_EQ(queue.occupancy(), 2u);

    // The ring holds depth unrecorded descriptors; the next submit
    // backpressures without side effects.
    EXPECT_FALSE(queue.submit(Descriptor::single(c.params)).has_value());
    EXPECT_EQ(queue.stats().rejected_full, 1u);
    EXPECT_EQ(queue.stats().submitted, 2u);
    EXPECT_EQ(queue.occupancy(), 2u);

    // Reaping frees slots: the same descriptor is accepted afterwards.
    queue.drain();
    EXPECT_EQ(queue.occupancy(), 0u);
    const auto id = queue.submit(Descriptor::single(c.params));
    ASSERT_TRUE(id.has_value());
    queue.drain();
    EXPECT_EQ(queue.stats().completions, 3u);
    EXPECT_EQ(queue.peakOccupancy(), 2);
    verifyTlsOutput(sys, a);
    verifyTlsOutput(sys, b);
    verifyTlsOutput(sys, c);
}

TEST(QueueSemantics, BatchDescriptorFanOutFanIn)
{
    System sys;
    WorkQueueConfig cfg;
    cfg.max_inflight = 2; // smaller than the batch: fan-out is gated
    WorkQueue queue(sys.engine, cfg);

    Rng rng(26);
    constexpr int kBatch = 4;
    std::vector<TlsOp> ops;
    std::vector<compcpy::CompCpyParams> params;
    for (int i = 0; i < kBatch; ++i) {
        ops.push_back(makeTlsOp(sys, rng, 192, 300 + i));
        params.push_back(ops.back().params);
    }

    // N small messages, one descriptor, one doorbell, one record.
    const auto id = queue.submit(Descriptor::batch(std::move(params)));
    ASSERT_TRUE(id.has_value());
    EXPECT_EQ(queue.occupancy(), 1u);

    const CompletionRecord rec = queue.wait(*id);
    EXPECT_EQ(rec.ops, static_cast<std::uint32_t>(kBatch));
    EXPECT_EQ(rec.status, CompletionStatus::kSuccess);
    EXPECT_EQ(queue.stats().batches, 1u);
    EXPECT_EQ(queue.stats().submitted, 1u);
    EXPECT_EQ(queue.stats().submitted_ops,
              static_cast<std::uint64_t>(kBatch));
    EXPECT_EQ(queue.stats().doorbells, 1u);
    EXPECT_EQ(sys.engine.stats().calls,
              static_cast<std::uint64_t>(kBatch));

    // Fan-in happened only after every op's bytes landed.
    for (const auto &op : ops)
        verifyTlsOutput(sys, op);
}

TEST(QueueSemantics, SyncFacadeIsSubmitThenPoll)
{
    System sys;
    Rng rng(27);

    for (int i = 0; i < 3; ++i) {
        TlsOp op = makeTlsOp(sys, rng, 4096, 400 + i);
        sys.engine.run(op.params);
        verifyTlsOutput(sys, op);
    }

    // run() executed through the internal queue — one descriptor per
    // call, every record reaped, no second execution path.
    const auto &qs = sys.engine.syncQueue().stats();
    EXPECT_EQ(qs.submitted, 3u);
    EXPECT_EQ(qs.submitted_ops, 3u);
    EXPECT_EQ(qs.completions, 3u);
    EXPECT_EQ(qs.reaped, 3u);
    EXPECT_EQ(qs.doorbells, 3u);
    EXPECT_EQ(sys.engine.stats().calls, 3u);
    EXPECT_EQ(sys.engine.syncQueue().occupancy(), 0u);
    EXPECT_EQ(sys.engine.syncQueue().config().id, 0u);
}

} // namespace
