/**
 * @file
 * Full-stack integration: CompCpy drives real DDR commands through the
 * simulated memory controller into the SmartDIMM buffer device; the
 * transformed bytes read back from simulated DRAM must match the
 * software implementations exactly.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <vector>

#include "cache/memory_system.h"
#include "common/random.h"
#include "compcpy/compcpy.h"
#include "compcpy/driver.h"
#include "compcpy/offload_engine.h"
#include "compress/deflate.h"
#include "crypto/tls_record.h"
#include "sim/event_queue.h"
#include "smartdimm/buffer_device.h"

namespace {

using namespace sd;

/** One-channel SmartDIMM test system. */
struct System
{
    EventQueue events;
    mem::BackingStore store;
    mem::DramGeometry geometry;
    mem::AddressMap map;
    smartdimm::BufferDevice dimm;
    std::unique_ptr<cache::MemorySystem> memory;
    compcpy::Driver driver;
    compcpy::CompCpyEngine::SharedState shared;
    compcpy::CompCpyEngine engine;

    explicit System(std::size_t llc_mb = 4)
        : geometry(makeGeometry()),
          map(geometry, mem::ChannelInterleave::kNone),
          dimm(events, map, store),
          driver(/*base=*/1ULL << 20, /*bytes=*/512ULL << 20),
          engine(makeMemory(llc_mb), driver, shared)
    {
    }

    static mem::DramGeometry
    makeGeometry()
    {
        mem::DramGeometry g;
        g.channels = 1;
        return g;
    }

    cache::MemorySystem &
    makeMemory(std::size_t llc_mb)
    {
        cache::CacheConfig cc;
        cc.size_bytes = llc_mb << 20;
        memory = std::make_unique<cache::MemorySystem>(
            events, geometry, mem::ChannelInterleave::kNone, cc,
            std::vector<mem::DimmDevice *>{&dimm});
        return *memory;
    }
};

TEST(EndToEnd, TlsOffloadMatchesSoftwareGcm)
{
    System sys;
    Rng rng(1);

    const std::size_t len = 4096;
    std::vector<std::uint8_t> plain(len);
    rng.fill(plain.data(), len);

    std::uint8_t key[16];
    rng.fill(key, 16);
    crypto::GcmIv iv{};
    rng.fill(iv.data(), iv.size());

    // Stage plaintext in the source buffer (through the cache, like an
    // application would).
    const Addr sbuf = sys.driver.alloc(len);
    const Addr dbuf = sys.driver.alloc(len + kPageSize); // room for tag
    sys.memory->writeSync(sbuf, plain.data(), len);

    compcpy::CompCpyParams params;
    params.sbuf = sbuf;
    params.dbuf = dbuf;
    params.size = len;
    params.ulp = smartdimm::UlpKind::kTlsEncrypt;
    params.message_id = 42;
    std::memcpy(params.key, key, 16);
    params.iv = iv;

    sys.engine.run(params);
    sys.engine.useSync(dbuf, divCeil(len + 16, kPageSize) * kPageSize);
    const auto result = sys.engine.readResult(dbuf, len + 16);

    // Software reference.
    crypto::GcmContext ctx(key, crypto::Aes::KeySize::k128);
    std::vector<std::uint8_t> expect(len);
    const crypto::GcmTag tag =
        ctx.encrypt(iv, plain.data(), len, expect.data());

    ASSERT_EQ(result.size(), len + 16);
    EXPECT_EQ(0, std::memcmp(result.data(), expect.data(), len))
        << "ciphertext mismatch";
    EXPECT_EQ(0, std::memcmp(result.data() + len, tag.data(), 16))
        << "trailer tag mismatch";
}

TEST(EndToEnd, TlsOffloadMultiPageRecord)
{
    System sys;
    Rng rng(2);

    const std::size_t len = 3 * 4096 + 1000; // 4 source pages
    std::vector<std::uint8_t> plain(len);
    rng.fill(plain.data(), len);

    std::uint8_t key[16];
    rng.fill(key, 16);
    crypto::GcmIv iv{};
    rng.fill(iv.data(), iv.size());

    const std::size_t src_bytes = divCeil(len, kPageSize) * kPageSize;
    const Addr sbuf = sys.driver.alloc(src_bytes);
    const Addr dbuf = sys.driver.alloc(src_bytes + kPageSize);
    std::vector<std::uint8_t> staged(src_bytes, 0);
    std::memcpy(staged.data(), plain.data(), len);
    sys.memory->writeSync(sbuf, staged.data(), staged.size());

    compcpy::CompCpyParams params;
    params.sbuf = sbuf;
    params.dbuf = dbuf;
    params.size = len;
    params.ulp = smartdimm::UlpKind::kTlsEncrypt;
    params.message_id = 7;
    std::memcpy(params.key, key, 16);
    params.iv = iv;

    sys.engine.run(params);
    const std::size_t dst_bytes =
        divCeil(len + 16, kPageSize) * kPageSize;
    sys.engine.useSync(dbuf, dst_bytes);
    const auto result = sys.engine.readResult(dbuf, len + 16);

    crypto::GcmContext ctx(key, crypto::Aes::KeySize::k128);
    std::vector<std::uint8_t> expect(len);
    const crypto::GcmTag tag =
        ctx.encrypt(iv, plain.data(), len, expect.data());

    EXPECT_EQ(0, std::memcmp(result.data(), expect.data(), len));
    EXPECT_EQ(0, std::memcmp(result.data() + len, tag.data(), 16));
}

TEST(EndToEnd, TlsOffloadExactPageBoundaryTag)
{
    // message_len % 4096 == 0 forces a tag-only trailer page.
    System sys;
    Rng rng(3);

    const std::size_t len = 8192;
    std::vector<std::uint8_t> plain(len);
    rng.fill(plain.data(), len);
    std::uint8_t key[16];
    rng.fill(key, 16);
    crypto::GcmIv iv{};
    rng.fill(iv.data(), iv.size());

    const Addr sbuf = sys.driver.alloc(len);
    const Addr dbuf = sys.driver.alloc(len + kPageSize);
    sys.memory->writeSync(sbuf, plain.data(), len);

    compcpy::CompCpyParams params;
    params.sbuf = sbuf;
    params.dbuf = dbuf;
    params.size = len;
    params.ulp = smartdimm::UlpKind::kTlsEncrypt;
    params.message_id = 9;
    std::memcpy(params.key, key, 16);
    params.iv = iv;

    sys.engine.run(params);
    sys.engine.useSync(dbuf, divCeil(len + 16, kPageSize) * kPageSize);
    const auto result = sys.engine.readResult(dbuf, len + 16);

    crypto::GcmContext ctx(key, crypto::Aes::KeySize::k128);
    std::vector<std::uint8_t> expect(len);
    const crypto::GcmTag tag =
        ctx.encrypt(iv, plain.data(), len, expect.data());
    EXPECT_EQ(0, std::memcmp(result.data(), expect.data(), len));
    EXPECT_EQ(0, std::memcmp(result.data() + len, tag.data(), 16));
}

TEST(EndToEnd, DeflateOffloadDecodable)
{
    System sys;
    Rng rng(4);

    // Compressible page.
    std::vector<std::uint8_t> page(4000);
    for (std::size_t i = 0; i < page.size(); ++i)
        page[i] = static_cast<std::uint8_t>("compressible!"[i % 13]);

    const Addr sbuf = sys.driver.alloc(kPageSize);
    const Addr dbuf = sys.driver.alloc(kPageSize);
    std::vector<std::uint8_t> staged(kPageSize, 0);
    std::memcpy(staged.data(), page.data(), page.size());
    sys.memory->writeSync(sbuf, staged.data(), staged.size());

    compcpy::CompCpyParams params;
    params.sbuf = sbuf;
    params.dbuf = dbuf;
    params.size = page.size();
    params.ordered = true;
    params.ulp = smartdimm::UlpKind::kDeflate;

    sys.engine.run(params);
    sys.engine.useSync(dbuf, kPageSize);
    const auto framed = sys.engine.readResult(dbuf, kPageSize);

    // Frame: 2-byte length + deflate stream.
    const std::size_t stream_len = framed[0] | (framed[1] << 8);
    ASSERT_GT(stream_len, 0u);
    ASSERT_LE(stream_len + 2, framed.size());
    const auto back =
        compress::deflateDecompress(framed.data() + 2, stream_len);
    EXPECT_EQ(back, page);
    EXPECT_LT(stream_len, page.size()) << "should compress";
}

TEST(EndToEnd, AdaptiveEngineCpuAndOffloadAgree)
{
    System sys;
    Rng rng(5);

    std::uint8_t key[16];
    rng.fill(key, 16);
    crypto::GcmIv static_iv{};
    rng.fill(static_iv.data(), static_iv.size());

    compcpy::AdaptiveTlsEngine engine(*sys.memory, sys.driver,
                                      sys.shared, key, static_iv);

    std::vector<std::uint8_t> msg(4096);
    rng.fill(msg.data(), msg.size());

    const auto cpu = engine.protectRecord(msg.data(), msg.size(),
                                          compcpy::ProcessedOn::kCpu);
    const auto dimm = engine.protectRecord(msg.data(), msg.size(),
                                           compcpy::ProcessedOn::kSmartDimm);

    // Different sequence numbers -> different nonces, so compare each
    // against its own software reference.
    crypto::GcmContext ctx(key, crypto::Aes::KeySize::k128);
    for (std::uint64_t seq = 0; seq < 2; ++seq) {
        crypto::GcmIv nonce = static_iv;
        for (int i = 0; i < 8; ++i)
            nonce[4 + i] ^=
                static_cast<std::uint8_t>(seq >> (56 - 8 * i));
        std::vector<std::uint8_t> expect(msg.size());
        const crypto::GcmTag tag =
            ctx.encrypt(nonce, msg.data(), msg.size(), expect.data());
        const auto &rec = seq == 0 ? cpu : dimm;
        ASSERT_EQ(rec.body.size(), msg.size() + 16);
        EXPECT_EQ(0, std::memcmp(rec.body.data(), expect.data(),
                                 msg.size()))
            << "seq " << seq;
        EXPECT_EQ(0, std::memcmp(rec.body.data() + msg.size(),
                                 tag.data(), 16))
            << "seq " << seq;
    }
    EXPECT_EQ(engine.cpuRecords(), 1u);
    EXPECT_EQ(engine.offloadedRecords(), 1u);
}

TEST(EndToEnd, SelfRecycleFreesScratchpad)
{
    System sys;
    Rng rng(6);

    const std::size_t len = 4096;
    std::vector<std::uint8_t> plain(len);
    rng.fill(plain.data(), len);
    std::uint8_t key[16];
    rng.fill(key, 16);

    for (int round = 0; round < 20; ++round) {
        const Addr sbuf = sys.driver.alloc(len);
        const Addr dbuf = sys.driver.alloc(len + kPageSize);
        sys.memory->writeSync(sbuf, plain.data(), len);

        compcpy::CompCpyParams params;
        params.sbuf = sbuf;
        params.dbuf = dbuf;
        params.size = len;
        params.ulp = smartdimm::UlpKind::kTlsEncrypt;
        params.message_id = 1000 + round;
        std::memcpy(params.key, key, 16);
        params.iv[0] = static_cast<std::uint8_t>(round);

        sys.engine.run(params);
        sys.engine.useSync(dbuf, divCeil(len + 16, kPageSize) * kPageSize);
        sys.driver.release(sbuf, len);
        sys.driver.release(dbuf, len + kPageSize);
    }

    // Every offload's pages must have recycled via the USE-side
    // flush-induced writebacks.
    EXPECT_EQ(sys.dimm.scratchpad().livePages(), 0u);
    EXPECT_GT(sys.dimm.scratchpad().stats().self_recycles, 0u);
    EXPECT_EQ(sys.dimm.scratchpad().stats().force_recycles, 0u);
    EXPECT_EQ(sys.engine.stats().force_recycles, 0u);
}

} // namespace
