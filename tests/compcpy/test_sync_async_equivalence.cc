/**
 * @file
 * Sync/async equivalence: every CompCpy scenario the sync-path suites
 * cover (single-page TLS, multi-page TLS, exact-page-boundary tag,
 * ordered Deflate) is replayed through an explicit async work queue on
 * a fresh rig. The transformed bytes must be bit-identical to the
 * synchronous run, and the accounting must conserve exactly — calls ==
 * completions, identical degraded/rejected counts — including under a
 * recoverable fault plan.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <iterator>
#include <memory>
#include <string>
#include <vector>

#include "cache/memory_system.h"
#include "common/random.h"
#include "compcpy/compcpy.h"
#include "compcpy/driver.h"
#include "compcpy/queue.h"
#include "fault/fault.h"
#include "sim/event_queue.h"
#include "smartdimm/buffer_device.h"

namespace {

using namespace sd;
using compcpy::CompletionStatus;
using compcpy::Descriptor;
using compcpy::QueueMode;
using compcpy::WorkQueue;
using compcpy::WorkQueueConfig;

/** One-channel SmartDIMM rig with an attachable fault plan. */
struct System
{
    EventQueue events;
    mem::BackingStore store;
    mem::DramGeometry geometry;
    mem::AddressMap map;
    smartdimm::BufferDevice dimm;
    std::unique_ptr<cache::MemorySystem> memory;
    compcpy::Driver driver;
    compcpy::CompCpyEngine::SharedState shared;
    compcpy::CompCpyEngine engine;

    System()
        : geometry(makeGeometry()),
          map(geometry, mem::ChannelInterleave::kNone),
          dimm(events, map, store),
          driver(/*base=*/1ULL << 20, /*bytes=*/512ULL << 20),
          engine(makeMemory(), driver, shared)
    {
    }

    static mem::DramGeometry
    makeGeometry()
    {
        mem::DramGeometry g;
        g.channels = 1;
        return g;
    }

    cache::MemorySystem &
    makeMemory()
    {
        cache::CacheConfig cc;
        cc.size_bytes = 4ull << 20;
        memory = std::make_unique<cache::MemorySystem>(
            events, geometry, mem::ChannelInterleave::kNone, cc,
            std::vector<mem::DimmDevice *>{&dimm});
        return *memory;
    }

    void
    attach(fault::FaultPlan *plan)
    {
        dimm.setFaultPlan(plan);
        memory->setFaultPlan(plan);
        engine.setFaultPlan(plan);
    }
};

/** One scenario of the shared workload (fixed data, Rng(31)). */
struct Scenario
{
    std::string name;
    std::size_t len = 0;
    bool ordered = false;
    smartdimm::UlpKind ulp = smartdimm::UlpKind::kTlsEncrypt;
};

const Scenario kScenarios[] = {
    {"tls_4k", 4096, false, smartdimm::UlpKind::kTlsEncrypt},
    {"tls_multipage", 3 * 4096 + 1000, false,
     smartdimm::UlpKind::kTlsEncrypt},
    {"tls_page_boundary_tag", 8192, false,
     smartdimm::UlpKind::kTlsEncrypt},
    {"deflate_ordered", 4000, true, smartdimm::UlpKind::kDeflate},
};

/** Everything one workload run produces. */
struct RunResult
{
    std::vector<std::vector<std::uint8_t>> outputs; ///< per scenario
    compcpy::CompCpyStats engine;
    compcpy::WorkQueueStats queue; ///< of whichever queue executed
};

/** Stage one scenario's source buffer and build its params. */
compcpy::CompCpyParams
stageScenario(System &sys, const Scenario &sc, Rng &rng,
              const std::uint8_t key[16], const crypto::GcmIv &iv,
              std::uint64_t msg_id, Addr *dbuf_out,
              std::size_t *dst_bytes_out)
{
    const std::size_t src_bytes =
        divCeil(sc.len, kPageSize) * kPageSize;
    const std::size_t dst_bytes =
        sc.ulp == smartdimm::UlpKind::kTlsEncrypt
            ? divCeil(sc.len + 16, kPageSize) * kPageSize
            : src_bytes;
    const Addr sbuf = sys.driver.alloc(src_bytes);
    const Addr dbuf = sys.driver.alloc(dst_bytes);

    std::vector<std::uint8_t> staged(src_bytes, 0);
    if (sc.ulp == smartdimm::UlpKind::kTlsEncrypt) {
        rng.fill(staged.data(), sc.len);
    } else {
        for (std::size_t i = 0; i < sc.len; ++i)
            staged[i] = static_cast<std::uint8_t>("equivalence"[i % 11]);
    }
    sys.memory->writeSync(sbuf, staged.data(), staged.size());

    compcpy::CompCpyParams params;
    params.sbuf = sbuf;
    params.dbuf = dbuf;
    params.size = sc.len;
    params.ordered = sc.ordered;
    params.ulp = sc.ulp;
    params.message_id = msg_id;
    std::memcpy(params.key, key, 16);
    params.iv = iv;
    params.iv[0] ^= static_cast<std::uint8_t>(msg_id);
    *dbuf_out = dbuf;
    *dst_bytes_out = dst_bytes;
    return params;
}

/**
 * Run the four-scenario workload. Sync mode calls engine.run() per
 * scenario; async mode stages everything first, submits all four
 * descriptors into one explicit work queue, drains, and only then
 * consumes the outputs — many flows genuinely in flight together.
 */
RunResult
runWorkload(bool async, fault::FaultPlan *plan)
{
    System sys;
    if (plan)
        sys.attach(plan);

    Rng rng(31); // fixed workload data in both modes
    std::uint8_t key[16];
    rng.fill(key, 16);
    crypto::GcmIv iv{};
    rng.fill(iv.data(), iv.size());

    const std::size_t n = std::size(kScenarios);
    std::vector<Addr> dbufs(n);
    std::vector<std::size_t> dst_bytes(n);
    RunResult result;

    if (!async) {
        for (std::size_t i = 0; i < n; ++i) {
            const auto params =
                stageScenario(sys, kScenarios[i], rng, key, iv, i + 1,
                              &dbufs[i], &dst_bytes[i]);
            sys.engine.run(params);
        }
        result.queue = sys.engine.syncQueue().stats();
    } else {
        WorkQueueConfig cfg;
        cfg.id = 3;
        cfg.mode = QueueMode::kShared;
        cfg.depth = 8;
        cfg.max_inflight = 4;
        WorkQueue queue(sys.engine, cfg);
        for (std::size_t i = 0; i < n; ++i) {
            const auto params =
                stageScenario(sys, kScenarios[i], rng, key, iv, i + 1,
                              &dbufs[i], &dst_bytes[i]);
            EXPECT_TRUE(
                queue.submit(Descriptor::single(params)).has_value())
                << kScenarios[i].name;
        }
        queue.drain();
        const auto records = queue.poll();
        EXPECT_EQ(records.size(), n);
        result.queue = queue.stats();
    }

    for (std::size_t i = 0; i < n; ++i) {
        sys.engine.useSync(dbufs[i], dst_bytes[i]);
        const std::size_t out_len =
            kScenarios[i].ulp == smartdimm::UlpKind::kTlsEncrypt
                ? kScenarios[i].len + 16
                : dst_bytes[i];
        result.outputs.push_back(
            sys.engine.readResult(dbufs[i], out_len));
    }
    result.engine = sys.engine.stats();
    return result;
}

/** Equivalence checks shared by the fault-free and faulted variants. */
void
checkEquivalent(const RunResult &sync, const RunResult &async)
{
    ASSERT_EQ(sync.outputs.size(), async.outputs.size());
    for (std::size_t i = 0; i < sync.outputs.size(); ++i)
        EXPECT_EQ(sync.outputs[i], async.outputs[i])
            << kScenarios[i].name
            << ": async bytes must be bit-identical to sync";

    // Conservation: every call completes in both modes, and the
    // fault-outcome accounting is mode-independent.
    EXPECT_EQ(sync.queue.submitted_ops, sync.engine.calls);
    EXPECT_EQ(async.queue.submitted_ops, async.engine.calls);
    EXPECT_EQ(sync.queue.submitted, sync.queue.completions);
    EXPECT_EQ(async.queue.submitted, async.queue.completions);
    EXPECT_EQ(sync.engine.calls, async.engine.calls);
    EXPECT_EQ(sync.engine.degraded_calls, async.engine.degraded_calls);
    EXPECT_EQ(sync.engine.rejected_registrations,
              async.engine.rejected_registrations);
    EXPECT_EQ(sync.queue.degraded, async.queue.degraded);
    EXPECT_EQ(sync.queue.rejected, async.queue.rejected);
    EXPECT_EQ(sync.queue.bailouts, async.queue.bailouts);
}

TEST(SyncAsyncEquivalence, FaultFreeWorkloadsAreBitIdentical)
{
    const RunResult sync = runWorkload(/*async=*/false, nullptr);
    const RunResult async = runWorkload(/*async=*/true, nullptr);
    checkEquivalent(sync, async);
    EXPECT_EQ(sync.engine.degraded_calls, 0u);
    EXPECT_EQ(async.queue.degraded, 0u);
    EXPECT_EQ(async.queue.bailouts, 0u);
}

TEST(SyncAsyncEquivalence, RecoverableFaultPlanStaysEquivalent)
{
    // The golden-trace fault plan: an ALERT_N storm plus one freePages
    // lie — both recoverable, so outputs stay bit-exact and neither
    // mode may degrade.
    auto makePlan = [] {
        fault::FaultPlan plan(41);
        plan.add(fault::Site::kAlertStorm, /*skip=*/4, /*count=*/2);
        plan.add(fault::Site::kFreePagesLie, 0, /*count=*/1);
        return plan;
    };
    fault::FaultPlan sync_plan = makePlan();
    fault::FaultPlan async_plan = makePlan();
    const RunResult sync = runWorkload(/*async=*/false, &sync_plan);
    const RunResult async = runWorkload(/*async=*/true, &async_plan);

    checkEquivalent(sync, async);
    // Both modes consumed the identical injection budget.
    for (std::size_t s = 0; s < static_cast<std::size_t>(
                                    fault::Site::kCount);
         ++s) {
        const auto site = static_cast<fault::Site>(s);
        EXPECT_EQ(sync_plan.injected(site), async_plan.injected(site))
            << fault::siteName(site);
    }
    EXPECT_EQ(sync.engine.degraded_calls, 0u);
    EXPECT_EQ(async.engine.degraded_calls, 0u);
}

TEST(SyncAsyncEquivalence, AsyncReplaysBitIdentically)
{
    // Determinism of the async path itself: same seed, same outputs,
    // same queue accounting.
    const RunResult a = runWorkload(/*async=*/true, nullptr);
    const RunResult b = runWorkload(/*async=*/true, nullptr);
    ASSERT_EQ(a.outputs.size(), b.outputs.size());
    for (std::size_t i = 0; i < a.outputs.size(); ++i)
        EXPECT_EQ(a.outputs[i], b.outputs[i]) << kScenarios[i].name;
    EXPECT_EQ(a.queue.completions, b.queue.completions);
    EXPECT_EQ(a.queue.doorbells, b.queue.doorbells);
    EXPECT_EQ(a.engine.lines_copied, b.engine.lines_copied);
}

} // namespace
