/**
 * @file
 * CompCpy software-stack units: the driver allocator, the adaptive
 * LLC probe's hysteresis, and Algorithm 2's bookkeeping (freePages
 * shadow, registration counts, alignment enforcement).
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "cache/memory_system.h"
#include "common/random.h"
#include "compcpy/adaptive.h"
#include "compcpy/compcpy.h"
#include "compcpy/driver.h"
#include "sim/event_queue.h"
#include "smartdimm/buffer_device.h"

namespace {

using namespace sd;
using compcpy::AdaptiveConfig;
using compcpy::Driver;
using compcpy::LlcContentionProbe;

TEST(Driver, AllocationsArePageAlignedAndDisjoint)
{
    Driver driver(1ULL << 20, 64ULL << 20);
    std::vector<std::pair<Addr, std::size_t>> ranges;
    for (std::size_t bytes : {1ul, 4096ul, 5000ul, 65536ul, 100ul}) {
        const Addr addr = driver.alloc(bytes);
        EXPECT_TRUE(isPageAligned(addr));
        for (const auto &[other, len] : ranges) {
            const bool overlap =
                addr < other + len &&
                other < addr + divCeil(bytes, kPageSize) * kPageSize;
            EXPECT_FALSE(overlap);
        }
        ranges.emplace_back(addr, divCeil(bytes, kPageSize) * kPageSize);
    }
}

TEST(Driver, ReleasedRangesAreReused)
{
    Driver driver(1ULL << 20, (1ULL << 20) + 64 * kPageSize);
    const Addr a = driver.alloc(16 * kPageSize);
    driver.release(a, 16 * kPageSize);
    const Addr b = driver.alloc(8 * kPageSize);
    EXPECT_EQ(b, a) << "first-fit should reuse the freed range";
}

TEST(Driver, MmioAddressesFollowRegisterMap)
{
    Driver driver(1ULL << 20, 1ULL << 24);
    const auto base = driver.config().mmio_base;
    EXPECT_EQ(driver.mmio(smartdimm::MmioReg::kFreePages), base);
    EXPECT_EQ(driver.mmio(smartdimm::MmioReg::kRegister), base + 0x40);
    EXPECT_EQ(driver.mmio(smartdimm::MmioReg::kPendingList),
              base + 0x80);
}

TEST(AdaptiveProbe, HysteresisAroundThreshold)
{
    cache::CacheConfig cfg;
    cfg.size_bytes = 64 * 1024;
    cache::Cache llc(cfg);
    AdaptiveConfig policy;
    policy.threshold = 0.30;
    policy.hysteresis = 0.05;
    policy.ewma_alpha = 1.0; // no smoothing: test the band directly
    LlcContentionProbe probe(llc, policy);

    auto feed = [&](double miss_rate) {
        // Construct a window with the desired miss rate.
        const int total = 1000;
        const int misses = static_cast<int>(miss_rate * total);
        // Misses: always-new addresses; hits: re-touch one line.
        static Addr fresh = 1 << 20;
        llc.access(0, false, cache::AllocClass::kCpu);
        for (int i = 0; i < misses; ++i) {
            llc.access(fresh, false, cache::AllocClass::kCpu);
            fresh += kCacheLineSize;
        }
        for (int i = 0; i < total - misses; ++i)
            llc.access(0, false, cache::AllocClass::kCpu);
        probe.sample();
    };

    EXPECT_FALSE(probe.shouldOffload());
    feed(0.32); // inside the band: no switch
    EXPECT_FALSE(probe.shouldOffload());
    feed(0.50); // above band: offload
    EXPECT_TRUE(probe.shouldOffload());
    feed(0.28); // inside band: stays offloaded
    EXPECT_TRUE(probe.shouldOffload());
    feed(0.10); // below band: back to CPU
    EXPECT_FALSE(probe.shouldOffload());
}

TEST(AdaptiveProbe, EwmaSmoothsSpikes)
{
    cache::CacheConfig cfg;
    cfg.size_bytes = 64 * 1024;
    cache::Cache llc(cfg);
    AdaptiveConfig policy;
    policy.ewma_alpha = 0.2;
    LlcContentionProbe probe(llc, policy);

    // Prime with a quiet window (the first sample seeds the EWMA).
    llc.access(0, false, cache::AllocClass::kCpu);
    for (int i = 0; i < 200; ++i)
        llc.access(0, false, cache::AllocClass::kCpu);
    probe.sample();
    const double primed = probe.missRateEwma();

    // One spiky 100%-miss window must move the EWMA only by alpha.
    static Addr fresh = 1 << 22;
    for (int i = 0; i < 200; ++i) {
        llc.access(fresh, false, cache::AllocClass::kCpu);
        fresh += kCacheLineSize;
    }
    probe.sample();
    EXPECT_LT(probe.missRateEwma(), primed + 0.25);
}

struct EngineRig
{
    EventQueue events;
    mem::BackingStore store;
    mem::DramGeometry geometry;
    mem::AddressMap map;
    smartdimm::BufferDevice dimm;
    std::unique_ptr<cache::MemorySystem> memory;
    Driver driver;
    compcpy::CompCpyEngine::SharedState shared;
    compcpy::CompCpyEngine engine;

    EngineRig()
        : geometry(makeGeometry()),
          map(geometry, mem::ChannelInterleave::kNone),
          dimm(events, map, store), driver(1ULL << 20, 256ULL << 20),
          engine(makeMemory(), driver, shared)
    {
    }

    static mem::DramGeometry
    makeGeometry()
    {
        mem::DramGeometry g;
        g.channels = 1;
        return g;
    }

    cache::MemorySystem &
    makeMemory()
    {
        cache::CacheConfig cc;
        cc.size_bytes = 4ull << 20;
        memory = std::make_unique<cache::MemorySystem>(
            events, geometry, mem::ChannelInterleave::kNone, cc,
            std::vector<mem::DimmDevice *>{&dimm});
        return *memory;
    }
};

TEST(CompCpyUnits, StatsTrackCallsAndPages)
{
    EngineRig rig;
    Rng rng(3);
    std::vector<std::uint8_t> data(4096);
    rng.fill(data.data(), data.size());

    for (int i = 0; i < 3; ++i) {
        const Addr sbuf = rig.driver.alloc(4096);
        const Addr dbuf = rig.driver.alloc(8192);
        rig.memory->writeSync(sbuf, data.data(), data.size());
        compcpy::CompCpyParams params;
        params.sbuf = sbuf;
        params.dbuf = dbuf;
        params.size = 4096;
        params.ulp = smartdimm::UlpKind::kTlsEncrypt;
        params.message_id = 10 + static_cast<std::uint64_t>(i);
        rng.fill(params.key, sizeof(params.key));
        rig.engine.run(params);
        rig.engine.useSync(dbuf, 8192);
    }

    EXPECT_EQ(rig.engine.stats().calls, 3u);
    EXPECT_EQ(rig.engine.stats().pages_offloaded, 6u); // 2 per call
    EXPECT_EQ(rig.engine.stats().lines_copied, 3u * 64u);
    EXPECT_EQ(rig.dimm.stats().registrations, 6u);
}

TEST(CompCpyUnits, FreePagesShadowAvoidsMmioPerCall)
{
    EngineRig rig;
    Rng rng(4);
    std::vector<std::uint8_t> data(4096);
    rng.fill(data.data(), data.size());

    for (int i = 0; i < 8; ++i) {
        const Addr sbuf = rig.driver.alloc(4096);
        const Addr dbuf = rig.driver.alloc(8192);
        rig.memory->writeSync(sbuf, data.data(), data.size());
        compcpy::CompCpyParams params;
        params.sbuf = sbuf;
        params.dbuf = dbuf;
        params.size = 4096;
        params.ulp = smartdimm::UlpKind::kTlsEncrypt;
        params.message_id = 50 + static_cast<std::uint64_t>(i);
        rng.fill(params.key, sizeof(params.key));
        rig.engine.run(params);
        rig.engine.useSync(dbuf, 8192);
    }
    // The lazy refresh (Alg. 2 lines 8-9) touches MMIO only when the
    // shadow runs low — once here, not once per call.
    EXPECT_LE(rig.engine.stats().freepages_refreshes, 2u);
    EXPECT_GT(rig.shared.lock_acquisitions, 0u);
}

TEST(CompCpyUnits, DestPagesAccountsForTagSpill)
{
    compcpy::CompCpyParams tls;
    tls.size = 4096;
    tls.ulp = smartdimm::UlpKind::kTlsEncrypt;
    EXPECT_EQ(compcpy::CompCpyEngine::destPages(tls), 2u);
    tls.size = 4000;
    EXPECT_EQ(compcpy::CompCpyEngine::destPages(tls), 1u);

    compcpy::CompCpyParams deflate;
    deflate.size = 4000;
    deflate.ulp = smartdimm::UlpKind::kDeflate;
    EXPECT_EQ(compcpy::CompCpyEngine::destPages(deflate), 1u);
}

} // namespace
