/**
 * @file
 * Kernel parity suite: every compiled tier must produce bit-identical
 * results. NIST SP 800-38D example vectors run against each available
 * tier, and seeded fuzz runs diff the fast tiers (table, native when
 * the CPU supports it) against the scalar reference — ciphertext, tag,
 * GHASH digests and raw field products alike. This is the guard behind
 * the dispatch invariant that tiers only change wall-clock speed.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "common/random.h"
#include "crypto/aes_gcm.h"
#include "crypto/ghash.h"
#include "kernels/aes_kernel.h"
#include "kernels/dispatch.h"
#include "kernels/ghash_kernel.h"

namespace {

using sd::Rng;
using sd::crypto::Aes;
using sd::crypto::GcmContext;
using sd::crypto::GcmIv;
using sd::crypto::GcmTag;
using sd::crypto::Gf128;
using sd::crypto::Ghash;
using sd::crypto::IncrementalGcm;
using sd::kernels::KernelTier;

std::vector<std::uint8_t>
hexBytes(const char *hex)
{
    std::vector<std::uint8_t> out;
    for (std::size_t i = 0; hex[i] && hex[i + 1]; i += 2) {
        unsigned v;
        std::sscanf(hex + i, "%2x", &v);
        out.push_back(static_cast<std::uint8_t>(v));
    }
    return out;
}

/** RAII tier pin so a failing assertion can't leak the override. */
struct ForcedTier
{
    explicit ForcedTier(KernelTier tier) { sd::kernels::forceTier(tier); }
    ~ForcedTier() { sd::kernels::clearForcedTier(); }
};

struct GcmResult
{
    std::vector<std::uint8_t> cipher;
    GcmTag tag{};
};

GcmResult
gcmEncryptOn(KernelTier tier, const std::vector<std::uint8_t> &key,
             const GcmIv &iv, const std::vector<std::uint8_t> &plain,
             const std::vector<std::uint8_t> &aad)
{
    ForcedTier pin(tier);
    GcmContext ctx(key.data(), Aes::KeySize::k128);
    GcmResult r;
    r.cipher.resize(plain.size());
    r.tag = ctx.encrypt(iv, plain.data(), plain.size(), r.cipher.data(),
                        aad.empty() ? nullptr : aad.data(), aad.size());
    return r;
}

// --- NIST SP 800-38D example vectors, per tier ---------------------

struct NistCase
{
    const char *key;
    const char *iv;
    const char *plain;
    const char *aad;
    const char *cipher;
    const char *tag;
};

const NistCase kNistCases[] = {
    // Case 1: empty message.
    {"00000000000000000000000000000000", "000000000000000000000000", "",
     "", "", "58e2fccefa7e3061367f1d57a4e7455a"},
    // Case 2: one zero block.
    {"00000000000000000000000000000000", "000000000000000000000000",
     "00000000000000000000000000000000", "",
     "0388dace60b6a392f328c2b971b2fe78",
     "ab6e47d42cec13bdf53a67b21257bddf"},
    // Case 3: four blocks.
    {"feffe9928665731c6d6a8f9467308308", "cafebabefacedbaddecaf888",
     "d9313225f88406e5a55909c5aff5269a"
     "86a7a9531534f7da2e4c303d8a318a72"
     "1c3c0c95956809532fcf0e2449a6b525"
     "b16aedf5aa0de657ba637b391aafd255",
     "",
     "42831ec2217774244b7221b784d0d49c"
     "e3aa212f2c02a4e035c17e2329aca12e"
     "21d514b25466931c7d8f6a5aac84aa05"
     "1ba30b396a0aac973d58e091473f5985",
     "4d5c2af327cd64a62cf35abd2ba6fab4"},
    // Case 4: partial final block + AAD.
    {"feffe9928665731c6d6a8f9467308308", "cafebabefacedbaddecaf888",
     "d9313225f88406e5a55909c5aff5269a"
     "86a7a9531534f7da2e4c303d8a318a72"
     "1c3c0c95956809532fcf0e2449a6b525"
     "b16aedf5aa0de657ba637b39",
     "feedfacedeadbeeffeedfacedeadbeefabaddad2",
     "42831ec2217774244b7221b784d0d49c"
     "e3aa212f2c02a4e035c17e2329aca12e"
     "21d514b25466931c7d8f6a5aac84aa05"
     "1ba30b396a0aac973d58e091",
     "5bc94fbc3221a5db94fae95ae7121a47"},
};

TEST(KernelParity, NistVectorsEveryAvailableTier)
{
    for (const KernelTier tier : sd::kernels::availableTiers()) {
        SCOPED_TRACE(sd::kernels::tierName(tier));
        for (const NistCase &c : kNistCases) {
            const auto key = hexBytes(c.key);
            const auto ivb = hexBytes(c.iv);
            GcmIv iv{};
            std::memcpy(iv.data(), ivb.data(), 12);
            const auto plain = hexBytes(c.plain);
            const auto aad = hexBytes(c.aad);
            const auto got =
                gcmEncryptOn(tier, key, iv, plain, aad);
            EXPECT_EQ(hexBytes(c.cipher), got.cipher);
            const auto expect_tag = hexBytes(c.tag);
            EXPECT_EQ(0, std::memcmp(got.tag.data(), expect_tag.data(),
                                     16));
        }
    }
}

// --- Seeded fuzz: fast tiers vs the scalar oracle ------------------

TEST(KernelParity, FuzzGcmAgainstScalar)
{
    Rng rng(0x5eed);
    for (int round = 0; round < 24; ++round) {
        std::vector<std::uint8_t> key(16);
        rng.fill(key.data(), key.size());
        GcmIv iv{};
        rng.fill(iv.data(), iv.size());
        // Lengths straddle block boundaries and the CTR batch size.
        const std::size_t len = 1 + rng.below(4096 + 3);
        std::vector<std::uint8_t> plain(len);
        rng.fill(plain.data(), plain.size());
        std::vector<std::uint8_t> aad(rng.below(48));
        if (!aad.empty())
            rng.fill(aad.data(), aad.size());

        const auto ref =
            gcmEncryptOn(KernelTier::kScalar, key, iv, plain, aad);
        for (const KernelTier tier : sd::kernels::availableTiers()) {
            if (tier == KernelTier::kScalar)
                continue;
            SCOPED_TRACE(sd::kernels::tierName(tier));
            const auto got = gcmEncryptOn(tier, key, iv, plain, aad);
            ASSERT_EQ(ref.cipher, got.cipher) << "round " << round;
            ASSERT_EQ(0,
                      std::memcmp(ref.tag.data(), got.tag.data(), 16))
                << "round " << round;
        }
    }
}

TEST(KernelParity, FuzzGhashStateAgainstScalar)
{
    Rng rng(0xface);
    for (int round = 0; round < 16; ++round) {
        std::uint8_t hbytes[16];
        rng.fill(hbytes, 16);
        const Gf128 h = Gf128::load(hbytes);
        const std::size_t nblocks = 1 + rng.below(64);
        std::vector<std::uint8_t> blocks(nblocks * 16);
        rng.fill(blocks.data(), blocks.size());

        Gf128 ref_stream;
        Gf128 ref_batch;
        {
            ForcedTier pin(KernelTier::kScalar);
            Ghash g(h);
            for (std::size_t b = 0; b < nblocks; ++b)
                g.update(blocks.data() + 16 * b);
            ref_stream = g.digest();
            Ghash gb(h);
            gb.updateBlocks(blocks.data(), nblocks);
            ref_batch = gb.digest();
        }
        ASSERT_EQ(ref_stream, ref_batch);

        for (const KernelTier tier : sd::kernels::availableTiers()) {
            if (tier == KernelTier::kScalar)
                continue;
            SCOPED_TRACE(sd::kernels::tierName(tier));
            ForcedTier pin(tier);
            // Per-block streaming digest.
            Ghash g(h);
            for (std::size_t b = 0; b < nblocks; ++b)
                g.update(blocks.data() + 16 * b);
            ASSERT_EQ(ref_stream, g.digest()) << "round " << round;
            // Batched (aggregated-reduction) digest.
            Ghash gb(h);
            gb.updateBlocks(blocks.data(), nblocks);
            ASSERT_EQ(ref_stream, gb.digest()) << "round " << round;
        }
    }
}

TEST(KernelParity, FuzzFieldMulAgainstScalar)
{
    Rng rng(0xb10c);
    for (int round = 0; round < 64; ++round) {
        std::uint8_t raw[32];
        rng.fill(raw, 32);
        sd::kernels::Block128 a;
        sd::kernels::Block128 b;
        std::memcpy(&a.hi, raw + 0, 8);
        std::memcpy(&a.lo, raw + 8, 8);
        std::memcpy(&b.hi, raw + 16, 8);
        std::memcpy(&b.lo, raw + 24, 8);
        const auto ref = sd::kernels::gfMulScalar(a, b);
        for (const KernelTier tier : sd::kernels::availableTiers()) {
            SCOPED_TRACE(sd::kernels::tierName(tier));
            const auto got = sd::kernels::gfMulVia(tier, a, b);
            ASSERT_EQ(ref.hi, got.hi) << "round " << round;
            ASSERT_EQ(ref.lo, got.lo) << "round " << round;
        }
    }
}

TEST(KernelParity, FuzzAesBlockAgainstScalar)
{
    Rng rng(0xae5);
    for (int round = 0; round < 32; ++round) {
        const std::size_t key_bytes = (round % 2) ? 32 : 16;
        std::vector<std::uint8_t> key(key_bytes);
        rng.fill(key.data(), key.size());
        std::uint8_t in[16];
        rng.fill(in, 16);

        std::uint8_t ref[16];
        {
            ForcedTier pin(KernelTier::kScalar);
            const auto k = sd::kernels::aesKeyInit(key.data(), key_bytes);
            sd::kernels::aesEncryptBlock(k, in, ref);
        }
        for (const KernelTier tier : sd::kernels::availableTiers()) {
            if (tier == KernelTier::kScalar)
                continue;
            SCOPED_TRACE(sd::kernels::tierName(tier));
            ForcedTier pin(tier);
            const auto k = sd::kernels::aesKeyInit(key.data(), key_bytes);
            std::uint8_t got[16];
            sd::kernels::aesEncryptBlock(k, in, got);
            ASSERT_EQ(0, std::memcmp(ref, got, 16)) << "round " << round;
        }
    }
}

TEST(KernelParity, FuzzCtrKeystreamAgainstScalar)
{
    Rng rng(0xc123);
    for (int round = 0; round < 16; ++round) {
        std::vector<std::uint8_t> key(16);
        rng.fill(key.data(), key.size());
        std::uint8_t iv[12];
        rng.fill(iv, 12);
        const std::size_t nblocks = 1 + rng.below(21);
        const std::uint32_t first =
            static_cast<std::uint32_t>(2 + rng.below(1000));

        std::vector<std::uint8_t> ref(nblocks * 16);
        {
            ForcedTier pin(KernelTier::kScalar);
            const auto k = sd::kernels::aesKeyInit(key.data(), 16);
            sd::kernels::aesCtrKeystream(k, iv, first, nblocks,
                                         ref.data());
        }
        for (const KernelTier tier : sd::kernels::availableTiers()) {
            if (tier == KernelTier::kScalar)
                continue;
            SCOPED_TRACE(sd::kernels::tierName(tier));
            ForcedTier pin(tier);
            const auto k = sd::kernels::aesKeyInit(key.data(), 16);
            std::vector<std::uint8_t> got(nblocks * 16);
            sd::kernels::aesCtrKeystream(k, iv, first, nblocks,
                                         got.data());
            ASSERT_EQ(ref, got) << "round " << round;
        }
    }
}

// Out-of-order incremental GCM (the DSA path) must match the one-shot
// result on every tier — exercises positional folds + power tables.
TEST(KernelParity, IncrementalPermutationEveryTier)
{
    Rng rng(0xd15a);
    std::vector<std::uint8_t> key(16);
    rng.fill(key.data(), key.size());
    GcmIv iv{};
    rng.fill(iv.data(), iv.size());
    const std::size_t len = 1024 + 32; // partial final cacheline
    std::vector<std::uint8_t> plain(len);
    rng.fill(plain.data(), plain.size());

    const auto ref = gcmEncryptOn(KernelTier::kScalar, key, iv, plain,
                                  {});
    for (const KernelTier tier : sd::kernels::availableTiers()) {
        SCOPED_TRACE(sd::kernels::tierName(tier));
        ForcedTier pin(tier);
        GcmContext ctx(key.data(), Aes::KeySize::k128);
        IncrementalGcm inc(ctx, iv, len);
        std::vector<std::uint8_t> cipher(len);
        // Process cachelines in a shuffled order.
        std::vector<std::size_t> order(inc.lineCount());
        for (std::size_t i = 0; i < order.size(); ++i)
            order[i] = i;
        for (std::size_t i = order.size(); i > 1; --i)
            std::swap(order[i - 1], order[rng.below(i)]);
        for (const std::size_t line : order) {
            const std::size_t off = line * 64;
            const std::size_t n = std::min<std::size_t>(64, len - off);
            (void)n;
            inc.processLine(line, plain.data() + off,
                            cipher.data() + off);
        }
        EXPECT_EQ(ref.cipher, cipher);
        const GcmTag tag = inc.finalTag();
        EXPECT_EQ(0, std::memcmp(ref.tag.data(), tag.data(), 16));
    }
}

} // namespace
