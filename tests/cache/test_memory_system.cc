/**
 * @file
 * MemorySystem facade: cached load/store data integrity through the
 * full controller path, flush-writeback semantics, DMA/DDIO
 * allocation classes, MMIO routing, and multi-channel interleaving.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <vector>

#include "cache/memory_system.h"
#include "common/random.h"
#include "sim/event_queue.h"

namespace {

using namespace sd;
using cache::CacheConfig;
using cache::MemorySystem;
using cache::PlainDimm;

struct Rig
{
    EventQueue events;
    mem::BackingStore store;
    mem::DramGeometry geometry;
    std::vector<std::unique_ptr<PlainDimm>> dimms;
    std::unique_ptr<MemorySystem> memory;

    explicit Rig(unsigned channels = 1,
                 mem::ChannelInterleave interleave =
                     mem::ChannelInterleave::kNone,
                 std::size_t llc_bytes = 1 << 20)
    {
        geometry.channels = channels;
        std::vector<mem::DimmDevice *> devices;
        for (unsigned c = 0; c < channels; ++c) {
            dimms.push_back(std::make_unique<PlainDimm>(store));
            devices.push_back(dimms.back().get());
        }
        CacheConfig cc;
        cc.size_bytes = llc_bytes;
        memory = std::make_unique<MemorySystem>(events, geometry,
                                                interleave, cc, devices);
    }
};

TEST(MemorySystem, WriteReadRoundTripThroughCache)
{
    Rig rig;
    Rng rng(1);
    std::vector<std::uint8_t> data(4096);
    rng.fill(data.data(), data.size());
    rig.memory->writeSync(0x10000, data.data(), data.size());

    std::vector<std::uint8_t> back(4096);
    rig.memory->readSync(0x10000, back.data(), back.size());
    EXPECT_EQ(back, data);
}

TEST(MemorySystem, DirtyDataReachesDramOnlyAfterFlush)
{
    Rig rig;
    std::uint8_t line[64];
    std::memset(line, 0x5a, sizeof(line));
    rig.memory->writeSync(0x2000, line, sizeof(line));

    // Still only in the cache: DRAM reads as zero.
    std::uint8_t dram[64];
    rig.store.read(0x2000, dram, sizeof(dram));
    EXPECT_EQ(dram[0], 0);

    rig.memory->flushSync(0x2000, 64);
    rig.store.read(0x2000, dram, sizeof(dram));
    EXPECT_EQ(dram[0], 0x5a);
    EXPECT_FALSE(rig.memory->llc().contains(0x2000));
}

TEST(MemorySystem, EvictionWritesBackThroughController)
{
    // Tiny LLC: streaming 4x its capacity forces dirty evictions.
    Rig rig(1, mem::ChannelInterleave::kNone, 64 * 1024);
    Rng rng(2);
    std::vector<std::uint8_t> data(256 * 1024);
    rng.fill(data.data(), data.size());
    rig.memory->writeSync(0x100000, data.data(), data.size());
    rig.events.run();

    EXPECT_GT(rig.memory->llc().stats().writebacks, 0u);
    // Early lines must already be in DRAM (evicted + written back).
    std::uint8_t dram[64];
    rig.store.read(0x100000, dram, sizeof(dram));
    EXPECT_EQ(0, std::memcmp(dram, data.data(), 64));
}

TEST(MemorySystem, ReadBackAfterEvictionIsCoherent)
{
    Rig rig(1, mem::ChannelInterleave::kNone, 64 * 1024);
    Rng rng(3);
    std::vector<std::uint8_t> data(512 * 1024);
    rng.fill(data.data(), data.size());
    rig.memory->writeSync(0x200000, data.data(), data.size());
    std::vector<std::uint8_t> back(data.size());
    rig.memory->readSync(0x200000, back.data(), back.size());
    EXPECT_EQ(back, data);
}

TEST(MemorySystem, MmioBypassesCache)
{
    Rig rig;
    std::uint8_t reg[64] = {0x77};
    bool done = false;
    rig.memory->mmioWrite(0xF0000000ULL, reg, [&](Tick) { done = true; });
    while (!done)
        rig.events.run();
    EXPECT_FALSE(rig.memory->llc().contains(0xF0000000ULL));

    std::uint8_t back[64] = {};
    done = false;
    rig.memory->mmioRead(0xF0000000ULL, back, [&](Tick) { done = true; });
    while (!done)
        rig.events.run();
    EXPECT_EQ(back[0], 0x77);
}

TEST(MemorySystem, DmaWritesAllocateInDdioWays)
{
    Rig rig;
    std::uint8_t line[64] = {1};
    bool done = false;
    rig.memory->dmaWriteLine(0x4000, line, [&](Tick) { done = true; });
    while (!done)
        rig.events.run();
    EXPECT_TRUE(rig.memory->llc().contains(0x4000));
    EXPECT_TRUE(rig.memory->llc().isDirty(0x4000));
}

TEST(MemorySystem, DmaReadSnoopsCache)
{
    Rig rig;
    std::uint8_t line[64];
    std::memset(line, 0xab, sizeof(line));
    rig.memory->writeSync(0x5000, line, sizeof(line)); // dirty in LLC

    std::uint8_t back[64] = {};
    bool done = false;
    rig.memory->dmaReadLine(0x5000, back, [&](Tick) { done = true; });
    while (!done)
        rig.events.run();
    EXPECT_EQ(back[0], 0xab) << "NIC must see the cached dirty data";
}

TEST(MemorySystem, MultiChannelLineInterleaveRoundTrip)
{
    Rig rig(4, mem::ChannelInterleave::kLine);
    Rng rng(4);
    std::vector<std::uint8_t> data(64 * 1024);
    rng.fill(data.data(), data.size());
    rig.memory->writeSync(0x300000, data.data(), data.size());
    rig.memory->flushSync(0x300000, data.size());
    std::vector<std::uint8_t> back(data.size());
    rig.memory->readSync(0x300000, back.data(), back.size());
    EXPECT_EQ(back, data);

    // Traffic spread over all four controllers.
    for (unsigned c = 0; c < 4; ++c)
        EXPECT_GT(rig.memory->controller(c).stats().bytesMoved(), 0u);
}

TEST(MemorySystem, DramBytesAggregatesChannels)
{
    Rig rig(2, mem::ChannelInterleave::kPage);
    std::vector<std::uint8_t> data(8 * kPageSize, 0x11);
    rig.memory->writeSync(0x400000, data.data(), data.size());
    rig.memory->flushSync(0x400000, data.size());
    rig.events.run();
    EXPECT_GE(rig.memory->dramBytes(), data.size());
}

TEST(MemorySystem, FlushCleanLineIsCheap)
{
    Rig rig;
    std::uint8_t line[64];
    rig.memory->readSync(0, line, 64); // clean fill
    const Tick start = rig.events.now();
    rig.memory->flushSync(0, 64);
    const Tick clean = rig.events.now() - start;

    rig.memory->writeSync(0, line, 64); // dirty
    const Tick start2 = rig.events.now();
    rig.memory->flushSync(0, 64);
    const Tick dirty = rig.events.now() - start2;
    EXPECT_LT(clean, dirty);
}

} // namespace
