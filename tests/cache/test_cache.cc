/**
 * @file
 * LLC model: hits/misses, LRU, writebacks, CAT way partitioning, DDIO
 * restricted allocation, flush semantics, and the miss-rate probe.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "cache/cache.h"
#include "common/random.h"

namespace {

using namespace sd;
using cache::AllocClass;
using cache::Cache;
using cache::CacheConfig;

CacheConfig
smallConfig()
{
    CacheConfig cfg;
    cfg.size_bytes = 64 * 1024; // 64 sets x 16 ways
    cfg.ways = 16;
    cfg.ddio_ways = 2;
    cfg.cpu_ways = 16;
    return cfg;
}

TEST(Cache, MissThenHit)
{
    Cache cache(smallConfig());
    const auto first = cache.access(0x1000, false, AllocClass::kCpu);
    EXPECT_FALSE(first.hit);
    EXPECT_TRUE(first.filled);
    const auto second = cache.access(0x1000, false, AllocClass::kCpu);
    EXPECT_TRUE(second.hit);
    EXPECT_EQ(cache.stats().hits, 1u);
    EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(Cache, SubLineAddressesShareALine)
{
    Cache cache(smallConfig());
    cache.access(0x1000, false, AllocClass::kCpu);
    EXPECT_TRUE(cache.access(0x1030, false, AllocClass::kCpu).hit);
}

TEST(Cache, FullLineStoreSkipsFetch)
{
    Cache cache(smallConfig());
    const auto result =
        cache.access(0x2000, true, AllocClass::kCpu, true);
    EXPECT_FALSE(result.hit);
    EXPECT_FALSE(result.filled) << "ItoM store needs no memory read";
    EXPECT_TRUE(cache.isDirty(0x2000));
}

TEST(Cache, LruEvictionOrder)
{
    auto cfg = smallConfig();
    cfg.size_bytes = 2 * 64; // 1 set, 2 ways
    cfg.ways = 2;
    cfg.ddio_ways = 1;
    cfg.cpu_ways = 2;
    Cache cache(cfg);

    cache.access(0x0, false, AllocClass::kCpu);
    cache.access(0x40, false, AllocClass::kCpu);
    cache.access(0x0, false, AllocClass::kCpu); // touch A
    cache.access(0x80, false, AllocClass::kCpu); // evicts B (0x40)
    EXPECT_TRUE(cache.contains(0x0));
    EXPECT_FALSE(cache.contains(0x40));
}

TEST(Cache, DirtyEvictionYieldsWritebackWithData)
{
    auto cfg = smallConfig();
    cfg.size_bytes = 2 * 64;
    cfg.ways = 2;
    cfg.ddio_ways = 1;
    cfg.cpu_ways = 2;
    Cache cache(cfg);

    cache.access(0x0, true, AllocClass::kCpu, true);
    std::memset(cache.dataPtr(0x0), 0xaa, kCacheLineSize);
    cache.access(0x40, false, AllocClass::kCpu);
    const auto result = cache.access(0x80, false, AllocClass::kCpu);
    ASSERT_TRUE(result.writeback.has_value());
    EXPECT_EQ(*result.writeback, 0x0u);
    EXPECT_EQ(result.writeback_data[0], 0xaa);
    EXPECT_EQ(cache.stats().writebacks, 1u);
}

TEST(Cache, CatRestrictsCpuWays)
{
    auto cfg = smallConfig();
    cfg.size_bytes = 4 * 64; // 1 set x 4 ways
    cfg.ways = 4;
    cfg.ddio_ways = 1;
    cfg.cpu_ways = 4;
    Cache cache(cfg);
    cache.setCpuWays(2); // CAT mask: CPU limited to ways 0-1

    cache.access(0x000, false, AllocClass::kCpu);
    cache.access(0x040, false, AllocClass::kCpu);
    cache.access(0x080, false, AllocClass::kCpu); // must evict within 2
    unsigned resident = cache.contains(0x000) + cache.contains(0x040) +
                        cache.contains(0x080);
    EXPECT_EQ(resident, 2u);
}

TEST(Cache, DdioAllocatesInRestrictedWays)
{
    auto cfg = smallConfig();
    cfg.size_bytes = 4 * 64;
    cfg.ways = 4;
    cfg.ddio_ways = 1; // DMA confined to 1 way
    cfg.cpu_ways = 4;
    Cache cache(cfg);

    // Two DMA lines to the same set: second evicts first (1 way).
    cache.access(0x000, true, AllocClass::kDdio, true);
    cache.access(0x040, true, AllocClass::kDdio, true);
    EXPECT_FALSE(cache.contains(0x000));
    EXPECT_TRUE(cache.contains(0x040));
}

TEST(Cache, DdioEvictionLeaksToDram)
{
    // The Obs. 3 mechanism: DMA bursts under DDIO pressure push dirty
    // DMA lines to DRAM before the CPU consumes them.
    auto cfg = smallConfig();
    cfg.size_bytes = 4 * 64;
    cfg.ways = 4;
    cfg.ddio_ways = 1;
    Cache cache(cfg);

    cache.access(0x000, true, AllocClass::kDdio, true);
    const auto result = cache.access(0x040, true, AllocClass::kDdio, true);
    ASSERT_TRUE(result.writeback.has_value());
    EXPECT_EQ(*result.writeback, 0x000u);
}

TEST(Cache, FlushDirtyReturnsData)
{
    Cache cache(smallConfig());
    cache.access(0x3000, true, AllocClass::kCpu, true);
    std::memset(cache.dataPtr(0x3000), 0x77, kCacheLineSize);
    const auto result = cache.flush(0x3000);
    EXPECT_TRUE(result.present);
    EXPECT_TRUE(result.dirty);
    EXPECT_EQ(result.data[10], 0x77);
    EXPECT_FALSE(cache.contains(0x3000));
}

TEST(Cache, FlushCleanAndAbsent)
{
    Cache cache(smallConfig());
    cache.access(0x4000, false, AllocClass::kCpu);
    const auto clean = cache.flush(0x4000);
    EXPECT_TRUE(clean.present);
    EXPECT_FALSE(clean.dirty);

    const auto absent = cache.flush(0x5000);
    EXPECT_FALSE(absent.present);
    EXPECT_EQ(cache.stats().flushes, 2u);
    EXPECT_EQ(cache.stats().flush_dirty, 0u);
}

TEST(Cache, ProbeMissRateWindows)
{
    Cache cache(smallConfig());
    // Window 1: all misses.
    for (Addr a = 0; a < 32 * 64; a += 64)
        cache.access(a, false, AllocClass::kCpu);
    EXPECT_DOUBLE_EQ(cache.probeMissRate(), 1.0);
    // Window 2: all hits.
    for (Addr a = 0; a < 32 * 64; a += 64)
        cache.access(a, false, AllocClass::kCpu);
    EXPECT_DOUBLE_EQ(cache.probeMissRate(), 0.0);
}

TEST(Cache, ShrinkingCpuWaysRaisesMissRate)
{
    auto cfg = smallConfig();
    cfg.size_bytes = 256 * 1024;
    Cache big(cfg);
    Cache small(cfg);
    small.setCpuWays(2);

    Rng rng(9);
    // Working set ~2x the small partition.
    std::vector<Addr> lines;
    for (int i = 0; i < 1500; ++i)
        lines.push_back(lineAlign(rng.below(96 * 1024)));
    for (int pass = 0; pass < 4; ++pass)
        for (Addr a : lines) {
            big.access(a, false, AllocClass::kCpu);
            small.access(a, false, AllocClass::kCpu);
        }
    EXPECT_GT(small.stats().missRate(), big.stats().missRate());
}

TEST(Cache, DataPtrRoundTrip)
{
    Cache cache(smallConfig());
    cache.access(0x6000, true, AllocClass::kCpu, true);
    std::uint8_t *slot = cache.dataPtr(0x6000);
    ASSERT_NE(slot, nullptr);
    std::memset(slot, 0x42, kCacheLineSize);
    EXPECT_EQ(cache.dataPtr(0x6000)[63], 0x42);
    EXPECT_EQ(cache.dataPtr(0x9999), nullptr);
}

} // namespace
