/**
 * @file
 * Server system model: contention probe behaviour (Fig. 3's
 * mechanism), placement orderings at the paper's operating points
 * (Fig. 11/12), and the co-run coupling (Table I).
 */

#include <gtest/gtest.h>

#include "app/antagonist.h"
#include "app/contention_model.h"
#include "app/open_loop.h"
#include "app/server_model.h"

namespace {

using namespace sd;
using app::ContentionWorkload;
using app::evaluateServer;
using app::McfLikeAntagonist;
using app::measureContention;
using app::ServerConfig;

ServerConfig
paperPoint(offload::PlacementKind placement, offload::Ulp ulp,
           std::size_t msg)
{
    ServerConfig cfg;
    cfg.placement = placement;
    cfg.ulp = ulp;
    cfg.message_bytes = msg;
    return cfg;
}

TEST(Contention, LeakGrowsWithConnections)
{
    ContentionWorkload w;
    w.message_bytes = 4096;
    w.connections = 128;
    const double low = measureContention(w).leak_fraction;
    w.connections = 2048;
    const double high = measureContention(w).leak_fraction;
    EXPECT_LT(low, 0.1);
    EXPECT_GT(high, 0.35);
}

TEST(Contention, AntagonistRaisesLeak)
{
    ContentionWorkload w;
    w.connections = 512;
    const double solo = measureContention(w).leak_fraction;
    w.antagonist_mb = 1800;
    w.antagonist_instances = 10;
    const double corun = measureContention(w).leak_fraction;
    EXPECT_GT(corun, solo);
}

TEST(Contention, Deterministic)
{
    ContentionWorkload w;
    w.connections = 1024;
    EXPECT_DOUBLE_EQ(measureContention(w).leak_fraction,
                     measureContention(w).leak_fraction);
}

TEST(ServerModel, Fig11OrderingAt4K)
{
    const auto cpu = evaluateServer(paperPoint(
        offload::PlacementKind::kCpu, offload::Ulp::kTlsEncrypt, 4096));
    const auto nic = evaluateServer(
        paperPoint(offload::PlacementKind::kSmartNic,
                   offload::Ulp::kTlsEncrypt, 4096));
    const auto qat = evaluateServer(
        paperPoint(offload::PlacementKind::kQuickAssist,
                   offload::Ulp::kTlsEncrypt, 4096));
    const auto dimm = evaluateServer(
        paperPoint(offload::PlacementKind::kSmartDimm,
                   offload::Ulp::kTlsEncrypt, 4096));

    // Paper: SmartDIMM +21% over CPU; SmartNIC and QAT no gain.
    EXPECT_GT(dimm.rps, cpu.rps * 1.10);
    EXPECT_LT(dimm.rps, cpu.rps * 1.35);
    EXPECT_LE(nic.rps, cpu.rps * 1.05);
    EXPECT_LT(qat.rps, cpu.rps * 0.7);
    // Per-request memory traffic much lower for SmartDIMM.
    EXPECT_LT(dimm.dram_bytes_per_request,
              cpu.dram_bytes_per_request * 0.8);
}

TEST(ServerModel, Fig11SmartDimmGainGrowsWithMessageSize)
{
    const auto r4 = [&](offload::PlacementKind k) {
        return evaluateServer(
            paperPoint(k, offload::Ulp::kTlsEncrypt, 4096));
    };
    const auto r16 = [&](offload::PlacementKind k) {
        return evaluateServer(
            paperPoint(k, offload::Ulp::kTlsEncrypt, 16384));
    };
    const double gain4 = r4(offload::PlacementKind::kSmartDimm).rps /
                         r4(offload::PlacementKind::kCpu).rps;
    const double gain16 = r16(offload::PlacementKind::kSmartDimm).rps /
                          r16(offload::PlacementKind::kCpu).rps;
    EXPECT_GT(gain16, gain4); // paper: 21.0% -> 35.8%
}

TEST(ServerModel, Fig12CompressionFactors)
{
    const auto cpu = evaluateServer(paperPoint(
        offload::PlacementKind::kCpu, offload::Ulp::kDeflate, 4096));
    const auto dimm = evaluateServer(paperPoint(
        offload::PlacementKind::kSmartDimm, offload::Ulp::kDeflate,
        4096));
    const auto qat = evaluateServer(
        paperPoint(offload::PlacementKind::kQuickAssist,
                   offload::Ulp::kDeflate, 4096));
    // Paper: 5.09x at 4 KB; QAT no improvement.
    EXPECT_GT(dimm.rps, cpu.rps * 3.5);
    EXPECT_LT(dimm.rps, cpu.rps * 7.0);
    EXPECT_LT(qat.rps, cpu.rps * 1.2);

    const auto cpu16 = evaluateServer(paperPoint(
        offload::PlacementKind::kCpu, offload::Ulp::kDeflate, 16384));
    const auto dimm16 = evaluateServer(paperPoint(
        offload::PlacementKind::kSmartDimm, offload::Ulp::kDeflate,
        16384));
    EXPECT_GT(dimm16.rps / cpu16.rps, dimm.rps / cpu.rps)
        << "paper: 5.09x at 4 KB grows to 10.28x at 16 KB";
}

TEST(ServerModel, SmartNicUnsupportedForDeflate)
{
    const auto nic = evaluateServer(paperPoint(
        offload::PlacementKind::kSmartNic, offload::Ulp::kDeflate,
        4096));
    EXPECT_FALSE(nic.supported);
}

TEST(ServerModel, Fig3HttpsBandwidthRatioRises)
{
    ServerConfig http;
    http.ulp = offload::Ulp::kNone;
    ServerConfig https;
    https.ulp = offload::Ulp::kTlsEncrypt;

    http.connections = https.connections = 128;
    const double low = evaluateServer(https).mem_bandwidth_gbps /
                       evaluateServer(http).mem_bandwidth_gbps;
    http.connections = https.connections = 2048;
    const double high = evaluateServer(https).mem_bandwidth_gbps /
                        evaluateServer(http).mem_bandwidth_gbps;
    EXPECT_GT(high, low);
    EXPECT_GT(high, 1.8); // paper: up to ~2.5x
    EXPECT_LT(high, 3.2);
}

TEST(ServerModel, TableIOrderings)
{
    auto corun = [](offload::PlacementKind kind) {
        ServerConfig cfg = paperPoint(kind, offload::Ulp::kTlsEncrypt,
                                      4096);
        cfg.antagonist_mb = 1800;
        cfg.antagonist_instances = 10;
        return evaluateServer(cfg);
    };
    auto solo = [](offload::PlacementKind kind) {
        return evaluateServer(
            paperPoint(kind, offload::Ulp::kTlsEncrypt, 4096));
    };

    const double cpu_slow =
        1.0 - corun(offload::PlacementKind::kCpu).rps /
                  solo(offload::PlacementKind::kCpu).rps;
    const double nic_slow =
        1.0 - corun(offload::PlacementKind::kSmartNic).rps /
                  solo(offload::PlacementKind::kSmartNic).rps;
    const double qat_slow =
        1.0 - corun(offload::PlacementKind::kQuickAssist).rps /
                  solo(offload::PlacementKind::kQuickAssist).rps;
    const double dimm_slow =
        1.0 - corun(offload::PlacementKind::kSmartDimm).rps /
                  solo(offload::PlacementKind::kSmartDimm).rps;

    // Paper ordering: QAT worst, CPU next, SmartDIMM ~ SmartNIC best.
    EXPECT_GT(qat_slow, cpu_slow);
    EXPECT_GT(cpu_slow, dimm_slow);
    EXPECT_GE(dimm_slow, nic_slow * 0.5);

    // mcf-side: QAT worst, SmartNIC best, SmartDIMM close to CPU's
    // range but with much higher absolute RPS.
    const double cpu_mcf =
        corun(offload::PlacementKind::kCpu).antagonist_slowdown;
    const double qat_mcf =
        corun(offload::PlacementKind::kQuickAssist).antagonist_slowdown;
    const double nic_mcf =
        corun(offload::PlacementKind::kSmartNic).antagonist_slowdown;
    const double dimm_mcf =
        corun(offload::PlacementKind::kSmartDimm).antagonist_slowdown;
    EXPECT_GT(qat_mcf, cpu_mcf);
    EXPECT_LT(nic_mcf, cpu_mcf);
    EXPECT_LT(dimm_mcf, cpu_mcf);
    EXPECT_GT(corun(offload::PlacementKind::kSmartDimm).rps,
              corun(offload::PlacementKind::kSmartNic).rps);
}

app::OpenLoopConfig
openLoopPoint(unsigned channels, unsigned dimms, double rate)
{
    app::OpenLoopConfig cfg;
    cfg.topology.channels = channels;
    cfg.topology.dimms_per_channel = dimms;
    cfg.arrival_rate = rate;
    cfg.requests = 256;
    cfg.flows = 24;
    cfg.seed = 42;
    return cfg;
}

TEST(OpenLoop, CompletesEveryArrivalOnOneByOne)
{
    const app::OpenLoopResult r =
        app::runOpenLoopServer(openLoopPoint(1, 1, 200e3));
    EXPECT_EQ(r.completed, 256u);
    EXPECT_EQ(r.dimm_ops + r.cpu_ops, r.completed);
    EXPECT_GT(r.achieved_ops_per_sec, 0.0);
    EXPECT_GT(r.p99_us, 0.0);
    EXPECT_GE(r.p99_us, r.p50_us);
    EXPECT_GE(r.max_us, r.p99_us);
}

TEST(OpenLoop, DeterministicInSeed)
{
    const app::OpenLoopConfig cfg = openLoopPoint(2, 2, 800e3);
    const app::OpenLoopResult a = app::runOpenLoopServer(cfg);
    const app::OpenLoopResult b = app::runOpenLoopServer(cfg);
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.dimm_ops, b.dimm_ops);
    EXPECT_EQ(a.cpu_ops, b.cpu_ops);
    EXPECT_EQ(a.shed_to_sibling, b.shed_to_sibling);
    EXPECT_DOUBLE_EQ(a.achieved_ops_per_sec, b.achieved_ops_per_sec);
    EXPECT_DOUBLE_EQ(a.p99_us, b.p99_us);
}

TEST(OpenLoop, ScaleOutAbsorbsOverload)
{
    // Offer far more load than a single DIMM can absorb: the 4x2
    // topology must complete them faster (open-loop makespan shrinks)
    // and with a lighter tail than 1x1.
    const double rate = 3e6;
    const app::OpenLoopResult one =
        app::runOpenLoopServer(openLoopPoint(1, 1, rate));
    const app::OpenLoopResult eight =
        app::runOpenLoopServer(openLoopPoint(4, 2, rate));
    EXPECT_EQ(one.completed, eight.completed);
    EXPECT_GT(eight.achieved_ops_per_sec, one.achieved_ops_per_sec);
    EXPECT_LE(eight.p99_us, one.p99_us);
}

TEST(Antagonist, PointerChaseVisitsEveryNode)
{
    cache::CacheConfig cfg;
    cfg.size_bytes = 64 * 1024;
    cache::Cache llc(cfg);
    McfLikeAntagonist antagonist(256 * 1024, 5);
    antagonist.walk(llc, 4096); // 4096 = node count of 256 KB set
    EXPECT_EQ(antagonist.visited(), 4096u);
    // A Sattolo cycle over a 4x-LLC working set misses heavily.
    EXPECT_GT(llc.stats().missRate(), 0.5);
}

} // namespace
