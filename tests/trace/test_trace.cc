/**
 * @file
 * Units for the trace layer: LogHistogram bucket math, StatsRegistry
 * provider collection and dump formats, and the Tracer's span/event
 * recording, page attribution, capacity cap and disabled-cost
 * contract.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "common/stats.h"
#include "trace/trace.h"

namespace {

using sd::LogHistogram;
using sd::Tick;
using sd::trace::Stage;
using sd::trace::StatsBlock;
using sd::trace::StatsRegistry;
using sd::trace::Tracer;

// ----- LogHistogram ---------------------------------------------------------

TEST(LogHistogram, EmptyIsInert)
{
    LogHistogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.mean(), 0.0);
    EXPECT_EQ(h.percentile(0.5), 0u);
}

TEST(LogHistogram, SmallValuesAreExact)
{
    LogHistogram h;
    for (std::uint64_t v = 0; v < 8; ++v)
        h.sample(v);
    EXPECT_EQ(h.count(), 8u);
    EXPECT_EQ(h.min(), 0u);
    EXPECT_EQ(h.max(), 7u);
    EXPECT_EQ(h.percentile(0.01), 0u);
    EXPECT_EQ(h.percentile(1.0), 7u);
}

TEST(LogHistogram, PercentileWithinRelativeErrorBound)
{
    // Sub-bucketed octaves guarantee <= 1/8 relative error.
    LogHistogram h;
    for (std::uint64_t v = 1; v <= 100000; ++v)
        h.sample(v);
    for (double q : {0.10, 0.50, 0.90, 0.99}) {
        const auto exact =
            static_cast<double>(1 + (100000 - 1) * q);
        const auto approx = static_cast<double>(h.percentile(q));
        EXPECT_NEAR(approx, exact, exact / 8.0 + 1.0) << "q " << q;
    }
}

TEST(LogHistogram, PercentileNeverExceedsMax)
{
    LogHistogram h;
    h.sample(1000);
    h.sample(1001);
    EXPECT_EQ(h.percentile(1.0), 1001u);
    EXPECT_LE(h.percentile(0.5), 1001u);
}

TEST(LogHistogram, MeanAndSumTrackSamples)
{
    LogHistogram h;
    h.sample(10);
    h.sample(20);
    h.sample(30);
    EXPECT_EQ(h.sum(), 60u);
    EXPECT_DOUBLE_EQ(h.mean(), 20.0);
    h.reset();
    EXPECT_EQ(h.count(), 0u);
}

TEST(LogHistogram, HugeValuesDoNotOverflowBuckets)
{
    LogHistogram h;
    h.sample(~0ULL);
    h.sample(1ULL << 62);
    EXPECT_EQ(h.count(), 2u);
    EXPECT_EQ(h.percentile(1.0), ~0ULL);
}

// ----- StatsRegistry --------------------------------------------------------

TEST(StatsRegistry, CollectsProvidersInInsertionOrder)
{
    StatsRegistry registry;
    registry.add("b", [](StatsBlock &blk) { blk.scalar("x", 1); });
    registry.add("a", [](StatsBlock &blk) { blk.scalar("y", 2); });

    const auto rows = registry.collect();
    ASSERT_EQ(rows.size(), 2u);
    EXPECT_EQ(rows[0].first, "b");
    EXPECT_EQ(rows[1].first, "a");
    ASSERT_EQ(rows[1].second.entries().size(), 1u);
    EXPECT_EQ(rows[1].second.entries()[0].first, "y");
}

TEST(StatsRegistry, ReRegisteringReplaces)
{
    StatsRegistry registry;
    registry.add("c", [](StatsBlock &blk) { blk.scalar("v", 1); });
    registry.add("c", [](StatsBlock &blk) { blk.scalar("v", 2); });
    const auto rows = registry.collect();
    ASSERT_EQ(rows.size(), 1u);
    EXPECT_EQ(rows[0].second.entries()[0].second, 2.0);
}

TEST(StatsRegistry, RemoveDropsProvider)
{
    StatsRegistry registry;
    registry.add("gone", [](StatsBlock &blk) { blk.scalar("v", 1); });
    registry.remove("gone");
    EXPECT_TRUE(registry.collect().empty());
}

TEST(StatsRegistry, JsonAndCsvDumpsCarryEveryRow)
{
    StatsRegistry registry;
    registry.add("mod", [](StatsBlock &blk) {
        blk.scalar("count", 3);
        blk.scalar("ratio", 0.5);
    });

    std::ostringstream json;
    registry.dumpJson(json);
    EXPECT_NE(json.str().find("\"mod\""), std::string::npos);
    EXPECT_NE(json.str().find("\"count\": 3"), std::string::npos);
    EXPECT_NE(json.str().find("\"ratio\": 0.5"), std::string::npos);

    std::ostringstream csv;
    registry.dumpCsv(csv);
    EXPECT_NE(csv.str().find("mod,count,3"), std::string::npos);
    EXPECT_NE(csv.str().find("mod,ratio,0.5"), std::string::npos);
}

TEST(StatsRegistry, HistogramExpandsToSummaryRows)
{
    LogHistogram h;
    for (std::uint64_t v = 1; v <= 100; ++v)
        h.sample(v);
    StatsBlock blk;
    blk.hist("lat", h);

    bool saw_count = false, saw_p99 = false;
    for (const auto &[name, value] : blk.entries()) {
        if (name == "lat.count") {
            saw_count = true;
            EXPECT_EQ(value, 100.0);
        }
        if (name == "lat.p99")
            saw_p99 = true;
    }
    EXPECT_TRUE(saw_count);
    EXPECT_TRUE(saw_p99);
}

// ----- Tracer ---------------------------------------------------------------

/** Local tracer instance so tests do not disturb the global one. */
struct TracerTest : ::testing::Test
{
    Tracer tr;
};

TEST_F(TracerTest, DisabledRecordsNothing)
{
    EXPECT_EQ(tr.beginSpan("tls", 0, 0, 4096, 10), 0u);
    tr.event(1, Stage::kCopy, 10, 0);
    tr.pageEvent(5, Stage::kUse, 10, 0);
    EXPECT_TRUE(tr.spans().empty());
    EXPECT_TRUE(tr.events().empty());
}

TEST_F(TracerTest, SpanLifecycleAndStageQueries)
{
    tr.enable();
    const auto span = tr.beginSpan("tls", 0x1000, 0x2000, 4096, 100);
    ASSERT_NE(span, 0u);
    tr.event(span, Stage::kFlush, 110, 0x1000);
    tr.event(span, Stage::kCopy, 120, 0x2000);
    tr.event(span, Stage::kCopy, 130, 0x2040);

    EXPECT_TRUE(tr.spanHasStage(span, Stage::kFlush));
    EXPECT_TRUE(tr.spanHasStage(span, Stage::kCopy));
    EXPECT_FALSE(tr.spanHasStage(span, Stage::kUse));
    EXPECT_EQ(tr.spanEvents(span).size(), 3u);

    ASSERT_EQ(tr.spans().size(), 1u);
    EXPECT_EQ(tr.spans()[0].bytes, 4096u);
    EXPECT_EQ(tr.spans()[0].begin, Tick{100});
}

TEST_F(TracerTest, PageBindingAttributesDeviceEvents)
{
    tr.enable();
    const auto span = tr.beginSpan("deflate", 0, 0, 4096, 0);
    tr.bindPage(7, span);
    tr.pageEvent(7, Stage::kTransform, 50, 7 * sd::kPageSize);
    tr.pageEvent(8, Stage::kTransform, 60, 8 * sd::kPageSize); // unbound

    EXPECT_EQ(tr.spanEvents(span).size(), 1u);
    EXPECT_EQ(tr.spanOfPage(7), span);
    EXPECT_EQ(tr.spanOfPage(8), 0u);
    // Unattributed non-DDR events are dropped entirely.
    EXPECT_EQ(tr.events().size(), 1u);
}

TEST_F(TracerTest, DdrMirrorIsOptInAndKeepsUnattributed)
{
    tr.enable(/*capture_ddr=*/false);
    tr.ddrEvent(Stage::kDdrRead, 10, 0x40);
    EXPECT_TRUE(tr.events().empty());

    tr.enable(/*capture_ddr=*/true);
    tr.ddrEvent(Stage::kDdrRead, 10, 0x40);
    ASSERT_EQ(tr.events().size(), 1u);
    EXPECT_EQ(tr.events()[0].span, 0u); // recorded though unattributed
}

TEST_F(TracerTest, EventCapCountsDrops)
{
    tr.enable();
    tr.setMaxEvents(2);
    const auto span = tr.beginSpan("tls", 0, 0, 64, 0);
    tr.event(span, Stage::kCopy, 1, 0);
    tr.event(span, Stage::kCopy, 2, 0);
    tr.event(span, Stage::kCopy, 3, 0);
    EXPECT_EQ(tr.events().size(), 2u);
    EXPECT_EQ(tr.droppedEvents(), 1u);
}

TEST_F(TracerTest, ClearResetsCapturedState)
{
    tr.enable();
    const auto span = tr.beginSpan("tls", 0, 0, 64, 0);
    tr.bindPage(3, span);
    tr.event(span, Stage::kCopy, 1, 0);
    tr.clear();
    EXPECT_TRUE(tr.spans().empty());
    EXPECT_TRUE(tr.events().empty());
    EXPECT_EQ(tr.spanOfPage(3), 0u);
    EXPECT_TRUE(tr.enabled()) << "clear keeps the enable state";
}

TEST_F(TracerTest, JsonDumpContainsSpanAndStageSummaries)
{
    tr.enable();
    const auto span = tr.beginSpan("tls", 0x1000, 0x2000, 4096, 100);
    tr.event(span, Stage::kFlush, 150, 0x1000);
    tr.event(span, Stage::kUse, 400, 0x2000);

    StatsRegistry registry;
    registry.add("mod", [](StatsBlock &blk) { blk.scalar("n", 1); });

    std::ostringstream os;
    tr.dumpJson(os, &registry);
    const std::string out = os.str();
    EXPECT_NE(out.find("\"kind\": \"tls\""), std::string::npos);
    EXPECT_NE(out.find("\"flush\""), std::string::npos);
    EXPECT_NE(out.find("\"use\""), std::string::npos);
    EXPECT_NE(out.find("\"stats\""), std::string::npos);
    EXPECT_NE(out.find("\"mod\""), std::string::npos);

    std::ostringstream csv;
    tr.dumpCsv(csv);
    EXPECT_NE(csv.str().find("tick,span,stage,address"),
              std::string::npos);
    EXPECT_NE(csv.str().find("150,1,flush,4096"), std::string::npos);
}

TEST_F(TracerTest, StageNamesAreStable)
{
    // Dump formats and golden traces depend on these strings.
    EXPECT_STREQ(sd::trace::stageName(Stage::kFlush), "flush");
    EXPECT_STREQ(sd::trace::stageName(Stage::kRegister), "register");
    EXPECT_STREQ(sd::trace::stageName(Stage::kCopy), "copy");
    EXPECT_STREQ(sd::trace::stageName(Stage::kTransform), "transform");
    EXPECT_STREQ(sd::trace::stageName(Stage::kStage), "stage");
    EXPECT_STREQ(sd::trace::stageName(Stage::kRecycle), "recycle");
    EXPECT_STREQ(sd::trace::stageName(Stage::kForceRecycle),
                 "force_recycle");
    EXPECT_STREQ(sd::trace::stageName(Stage::kUse), "use");
    EXPECT_STREQ(sd::trace::stageName(Stage::kAlert), "alert");
    EXPECT_STREQ(sd::trace::stageName(Stage::kDdrRead), "ddr_rd");
    EXPECT_STREQ(sd::trace::stageName(Stage::kDdrWrite), "ddr_wr");
}

} // namespace
