/**
 * @file
 * Golden-trace regression for the mixed local+CXL topology: one TLS
 * CompCpy on the *far* slot of a 1-local + 1-CXL machine produces a
 * fully deterministic event sequence — every DRAM-side access defers
 * through the CxlLink's FIFO flit queue, so the link model's timing
 * (round trip, serialization, queueing) is part of the byte-pinned
 * ordering. Any change to link scheduling diffs here while the
 * existing local-only goldens stay byte-identical.
 *
 * Regenerate after an *intentional* change with:
 *   SD_REGEN_GOLDEN=1 ./build/tests/test_trace
 * and commit the updated golden file.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/random.h"
#include "compcpy/compcpy.h"
#include "topo/topology.h"
#include "trace/trace.h"

#ifndef SD_GOLDEN_DIR
#define SD_GOLDEN_DIR "."
#endif

namespace {

using namespace sd;

/** One 4 KB TLS CompCpy + USE on the far slot, DDR mirror on. */
std::string
runCxlGoldenWorkload()
{
    topo::TopologySpec spec;
    spec.channels = 1;
    spec.cxl_channels = 1;
    spec.llc.size_bytes = 4ull << 20;
    topo::Topology topo(spec);
    topo::Topology::Slot &far = topo.slot(1u);

    auto &tr = trace::tracer();
    tr.clear();
    tr.enable(/*capture_ddr=*/true);

    Rng rng(7);
    std::vector<std::uint8_t> plaintext(4096);
    rng.fill(plaintext.data(), plaintext.size());

    const Addr sbuf = far.driver.alloc(4096);
    const Addr dbuf = far.driver.alloc(8192);
    topo.memory().writeSync(sbuf, plaintext.data(), plaintext.size());

    compcpy::CompCpyParams params;
    params.sbuf = sbuf;
    params.dbuf = dbuf;
    params.size = plaintext.size();
    params.ulp = smartdimm::UlpKind::kTlsEncrypt;
    params.message_id = 1;
    rng.fill(params.key, sizeof(params.key));
    rng.fill(params.iv.data(), params.iv.size());
    far.engine.run(params);
    far.engine.useSync(dbuf, 8192);

    std::ostringstream csv;
    tr.dumpCsv(csv);
    tr.disable();
    tr.clear();
    return csv.str();
}

std::string
cxlGoldenPath()
{
    return std::string(SD_GOLDEN_DIR) + "/compcpy_tls_4k_cxl.golden";
}

TEST(CxlGoldenTrace, MixedTopologyMatchesCheckedInTrace)
{
    const std::string got = runCxlGoldenWorkload();

    if (std::getenv("SD_REGEN_GOLDEN")) {
        std::ofstream out(cxlGoldenPath(), std::ios::binary);
        ASSERT_TRUE(out) << "cannot write " << cxlGoldenPath();
        out << got;
        GTEST_SKIP() << "regenerated " << cxlGoldenPath();
    }

    std::ifstream in(cxlGoldenPath(), std::ios::binary);
    ASSERT_TRUE(in) << "missing golden file " << cxlGoldenPath()
                    << " — run with SD_REGEN_GOLDEN=1 to create it";
    std::stringstream want;
    want << in.rdbuf();

    std::istringstream got_s(got), want_s(want.str());
    std::string got_line, want_line;
    std::size_t line = 0;
    while (std::getline(want_s, want_line)) {
        ++line;
        ASSERT_TRUE(std::getline(got_s, got_line))
            << "trace truncated at golden line " << line;
        ASSERT_EQ(got_line, want_line) << "first divergence at line "
                                       << line;
    }
    EXPECT_FALSE(std::getline(got_s, got_line))
        << "trace has extra rows past golden line " << line;
}

TEST(CxlGoldenTrace, RunIsDeterministic)
{
    EXPECT_EQ(runCxlGoldenWorkload(), runCxlGoldenWorkload());
}

TEST(CxlGoldenTrace, FarTraceDiffersFromLocalOnlyByTiming)
{
    // The far run must be a *timing* variation of the same workload on
    // a local slot: the link stretches the schedule (and lets pipeline
    // stages interleave differently) but never changes which stages
    // execute. The trace therefore differs while the stage multiset on
    // the offload span is identical.
    const std::string far = runCxlGoldenWorkload();

    topo::TopologySpec spec;
    spec.llc.size_bytes = 4ull << 20;
    topo::Topology topo(spec);
    auto &tr = trace::tracer();
    tr.clear();
    tr.enable(/*capture_ddr=*/true);
    Rng rng(7);
    std::vector<std::uint8_t> plaintext(4096);
    rng.fill(plaintext.data(), plaintext.size());
    const Addr sbuf = topo.slot(0u).driver.alloc(4096);
    const Addr dbuf = topo.slot(0u).driver.alloc(8192);
    topo.memory().writeSync(sbuf, plaintext.data(), plaintext.size());
    compcpy::CompCpyParams params;
    params.sbuf = sbuf;
    params.dbuf = dbuf;
    params.size = plaintext.size();
    params.ulp = smartdimm::UlpKind::kTlsEncrypt;
    params.message_id = 1;
    rng.fill(params.key, sizeof(params.key));
    rng.fill(params.iv.data(), params.iv.size());
    topo.slot(0u).engine.run(params);
    topo.slot(0u).engine.useSync(dbuf, 8192);
    std::ostringstream csv;
    tr.dumpCsv(csv);
    tr.disable();
    tr.clear();
    const std::string local = csv.str();

    EXPECT_NE(far, local) << "the link must be visible in the timing";

    const auto stagesOf = [](const std::string &trace) {
        std::vector<std::string> stages;
        std::istringstream rows(trace);
        std::string row;
        std::getline(rows, row); // header
        while (std::getline(rows, row)) {
            const auto c1 = row.find(',');
            const auto c2 = row.find(',', c1 + 1);
            const auto c3 = row.find(',', c2 + 1);
            const std::string span = row.substr(c1 + 1, c2 - c1 - 1);
            const std::string stage = row.substr(c2 + 1, c3 - c2 - 1);
            // DDR command rows (ddr_rd/wr/pre/act) are a function of
            // row-buffer state, which the link's timing shifts.
            if (span == "1" && stage.rfind("ddr_", 0) != 0)
                stages.push_back(stage);
        }
        std::sort(stages.begin(), stages.end());
        return stages;
    };
    EXPECT_EQ(stagesOf(far), stagesOf(local))
        << "the far tier changes timing, never the pipeline";
}

} // namespace
