/**
 * @file
 * Golden-trace regression: one TLS CompCpy on a fixed single-channel
 * rig produces a fully deterministic event sequence (the event queue
 * breaks ties by sequence number and all randomness is seeded), so
 * the tracer's `tick,span,stage,address` CSV must match a checked-in
 * golden file byte for byte. Any change to pipeline scheduling, DRAM
 * timing or stage attribution shows up as a diff.
 *
 * Regenerate after an *intentional* change with:
 *   SD_REGEN_GOLDEN=1 ./build/tests/test_trace
 * and commit the updated golden file.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "cache/memory_system.h"
#include "common/random.h"
#include "compcpy/compcpy.h"
#include "compcpy/driver.h"
#include "mem/dram_command.h"
#include "fault/fault.h"
#include "sim/event_queue.h"
#include "smartdimm/buffer_device.h"
#include "trace/trace.h"

#ifndef SD_GOLDEN_DIR
#define SD_GOLDEN_DIR "."
#endif

namespace {

using namespace sd;

/** Counts CAS commands the channel actually issued. */
class CasCounter : public mem::CommandObserver
{
  public:
    void
    observe(const mem::DdrCommand &cmd) override
    {
        if (cmd.type == mem::DdrCommandType::kReadCas)
            reads.push_back({cmd.issue, cmd.addr});
        else if (cmd.type == mem::DdrCommandType::kWriteCas)
            writes.push_back({cmd.issue, cmd.addr});
    }

    std::vector<std::pair<Tick, Addr>> reads;
    std::vector<std::pair<Tick, Addr>> writes;
};

/** The fixed workload: one 4 KB TLS CompCpy + USE, DDR mirror on. */
std::string
runGoldenWorkload(CasCounter *observer,
                  fault::FaultPlan *fault_plan = nullptr)
{
    EventQueue events;
    mem::BackingStore dram;
    mem::DramGeometry geometry;
    geometry.channels = 1;
    mem::AddressMap map(geometry, mem::ChannelInterleave::kNone);
    smartdimm::BufferDevice dimm(events, map, dram);

    cache::CacheConfig llc;
    llc.size_bytes = 4ull << 20;
    cache::MemorySystem memory(events, geometry,
                               mem::ChannelInterleave::kNone, llc,
                               {&dimm});
    if (observer)
        memory.controller(0).setObserver(observer);

    compcpy::Driver driver(/*base=*/1ULL << 20, /*bytes=*/64ULL << 20);
    compcpy::CompCpyEngine::SharedState shared;
    compcpy::CompCpyEngine engine(memory, driver, shared);

    if (fault_plan) {
        dimm.setFaultPlan(fault_plan);
        memory.setFaultPlan(fault_plan);
        engine.setFaultPlan(fault_plan);
    }

    auto &tr = trace::tracer();
    tr.clear();
    tr.enable(/*capture_ddr=*/true);

    Rng rng(7);
    std::vector<std::uint8_t> plaintext(4096);
    rng.fill(plaintext.data(), plaintext.size());

    const Addr sbuf = driver.alloc(4096);
    const Addr dbuf = driver.alloc(8192);
    memory.writeSync(sbuf, plaintext.data(), plaintext.size());

    compcpy::CompCpyParams params;
    params.sbuf = sbuf;
    params.dbuf = dbuf;
    params.size = plaintext.size();
    params.ulp = smartdimm::UlpKind::kTlsEncrypt;
    params.message_id = 1;
    rng.fill(params.key, sizeof(params.key));
    rng.fill(params.iv.data(), params.iv.size());
    engine.run(params);
    engine.useSync(dbuf, 8192);

    std::ostringstream csv;
    tr.dumpCsv(csv);
    tr.disable();
    tr.clear();
    return csv.str();
}

std::string
goldenPath()
{
    return std::string(SD_GOLDEN_DIR) + "/compcpy_tls_4k.golden";
}

std::string
faultGoldenPath()
{
    return std::string(SD_GOLDEN_DIR) + "/compcpy_tls_4k_fault.golden";
}

/**
 * The pinned fault plan: fully scripted (p = 1) rules, so the trace is
 * a pure function of the rig — two spurious ALERT_N retries partway
 * into the copy plus one freePages lie driving a Force-Recycle pass.
 */
fault::FaultPlan
makeGoldenFaultPlan()
{
    fault::FaultPlan plan(/*seed=*/17);
    plan.add(fault::Site::kAlertStorm, /*skip=*/4, /*count=*/2);
    plan.add(fault::Site::kFreePagesLie, /*skip=*/0, /*count=*/1);
    return plan;
}

TEST(GoldenTrace, MatchesCheckedInTrace)
{
    const std::string got = runGoldenWorkload(nullptr);

    if (std::getenv("SD_REGEN_GOLDEN")) {
        std::ofstream out(goldenPath(), std::ios::binary);
        ASSERT_TRUE(out) << "cannot write " << goldenPath();
        out << got;
        GTEST_SKIP() << "regenerated " << goldenPath();
    }

    std::ifstream in(goldenPath(), std::ios::binary);
    ASSERT_TRUE(in) << "missing golden file " << goldenPath()
                    << " — run with SD_REGEN_GOLDEN=1 to create it";
    std::stringstream want;
    want << in.rdbuf();

    // Compare line-by-line so a drift reports its first divergence
    // instead of a megabyte diff.
    std::istringstream got_s(got), want_s(want.str());
    std::string got_line, want_line;
    std::size_t line = 0;
    while (std::getline(want_s, want_line)) {
        ++line;
        ASSERT_TRUE(std::getline(got_s, got_line))
            << "trace truncated at golden line " << line;
        ASSERT_EQ(got_line, want_line) << "first divergence at line "
                                       << line;
    }
    EXPECT_FALSE(std::getline(got_s, got_line))
        << "trace has extra rows past golden line " << line;
}

TEST(GoldenTrace, FaultInjectedTraceMatchesCheckedInTrace)
{
    // Same workload under the pinned fault plan: the recovery path
    // (retries, Force-Recycle re-reads) is part of the byte-pinned
    // event ordering, so a change to retry scheduling or fault
    // attribution diffs here even when the fault-free golden is quiet.
    fault::FaultPlan plan = makeGoldenFaultPlan();
    const std::string got = runGoldenWorkload(nullptr, &plan);

    if (std::getenv("SD_REGEN_GOLDEN")) {
        std::ofstream out(faultGoldenPath(), std::ios::binary);
        ASSERT_TRUE(out) << "cannot write " << faultGoldenPath();
        out << got;
        GTEST_SKIP() << "regenerated " << faultGoldenPath();
    }

    std::ifstream in(faultGoldenPath(), std::ios::binary);
    ASSERT_TRUE(in) << "missing golden file " << faultGoldenPath()
                    << " — run with SD_REGEN_GOLDEN=1 to create it";
    std::stringstream want;
    want << in.rdbuf();

    std::istringstream got_s(got), want_s(want.str());
    std::string got_line, want_line;
    std::size_t line = 0;
    while (std::getline(want_s, want_line)) {
        ++line;
        ASSERT_TRUE(std::getline(got_s, got_line))
            << "trace truncated at golden line " << line;
        ASSERT_EQ(got_line, want_line) << "first divergence at line "
                                       << line;
    }
    EXPECT_FALSE(std::getline(got_s, got_line))
        << "trace has extra rows past golden line " << line;
    // The plan fired in full — otherwise the golden pins nothing.
    EXPECT_EQ(plan.injected(fault::Site::kAlertStorm), 2u);
    EXPECT_EQ(plan.injected(fault::Site::kFreePagesLie), 1u);
}

TEST(GoldenTrace, FaultInjectedRunIsDeterministic)
{
    auto run = [] {
        fault::FaultPlan plan = makeGoldenFaultPlan();
        return runGoldenWorkload(nullptr, &plan);
    };
    const std::string first = run();
    EXPECT_EQ(first, run());

    // Faults leave visible footprints: the trace must contain `fault`
    // rows, and must differ from the fault-free trace.
    EXPECT_NE(first.find(",fault,"), std::string::npos);
    EXPECT_NE(first, runGoldenWorkload(nullptr));
}

TEST(GoldenTrace, RunIsDeterministic)
{
    // The property the golden file relies on: two fresh rigs produce
    // identical traces.
    EXPECT_EQ(runGoldenWorkload(nullptr), runGoldenWorkload(nullptr));
}

TEST(GoldenTrace, DdrMirrorAgreesWithCommandObserver)
{
    // Differential check of the mirror itself (the same stream the
    // fig09 bench writes to fig09_trace.csv): every rd/wrCAS the
    // controller issued must appear as a ddr_rd/ddr_wr event with the
    // same issue tick and address, in the same order.
    CasCounter counter;
    const std::string csv = runGoldenWorkload(&counter);

    std::vector<std::pair<Tick, Addr>> traced_reads, traced_writes;
    std::istringstream rows(csv);
    std::string row;
    std::getline(rows, row); // header
    while (std::getline(rows, row)) {
        // tick,span,stage,address
        const auto c1 = row.find(',');
        const auto c2 = row.find(',', c1 + 1);
        const auto c3 = row.find(',', c2 + 1);
        const std::string stage = row.substr(c2 + 1, c3 - c2 - 1);
        if (stage != "ddr_rd" && stage != "ddr_wr")
            continue;
        const Tick tick = std::stoull(row.substr(0, c1));
        const Addr addr = std::stoull(row.substr(c3 + 1));
        (stage == "ddr_rd" ? traced_reads : traced_writes)
            .emplace_back(tick, addr);
    }

    EXPECT_GT(counter.reads.size(), 0u);
    EXPECT_GT(counter.writes.size(), 0u);
    EXPECT_EQ(traced_reads, counter.reads);
    EXPECT_EQ(traced_writes, counter.writes);
}

TEST(GoldenTrace, EveryPipelineStagePresentWithForwardProgress)
{
    const std::string csv = runGoldenWorkload(nullptr);
    // Structural invariants that hold for *any* correct trace, golden
    // or regenerated: all seven pipeline stages appear on span 1 with
    // strictly positive cycle stamps. (Capture order is *recording*
    // order — DDR commands are stamped with their future issue tick —
    // so global tick monotonicity is not an invariant.)
    bool seen[7] = {};
    static const char *kStages[7] = {"flush",     "register", "copy",
                                     "transform", "stage",    "recycle",
                                     "use"};
    std::istringstream rows(csv);
    std::string row;
    std::getline(rows, row);
    while (std::getline(rows, row)) {
        const auto c1 = row.find(',');
        const auto c2 = row.find(',', c1 + 1);
        const auto c3 = row.find(',', c2 + 1);
        const Tick tick = std::stoull(row.substr(0, c1));
        const std::string span = row.substr(c1 + 1, c2 - c1 - 1);
        const std::string stage = row.substr(c2 + 1, c3 - c2 - 1);
        if (span != "1")
            continue;
        for (int i = 0; i < 7; ++i)
            if (stage == kStages[i]) {
                EXPECT_GT(tick, 0u) << stage << " at tick 0";
                seen[i] = true;
            }
    }
    for (int i = 0; i < 7; ++i)
        EXPECT_TRUE(seen[i]) << "stage " << kStages[i]
                             << " missing from span 1";
}

} // namespace
