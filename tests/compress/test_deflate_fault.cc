/**
 * @file
 * Structure-aware DEFLATE corruption fuzz: seeded bit-flips over
 * streams from every encoder strategy must either be rejected by
 * deflateTryDecompress or decode to *some* bounded output — never an
 * out-of-bounds access (ASan job in CI), an abort, or an unbounded
 * expansion. Zero flips must round-trip bit-exactly.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "common/random.h"
#include "compress/deflate.h"

namespace {

using namespace sd;
using compress::deflateCompress;
using compress::deflateTryDecompress;
using compress::DeflateStrategy;

/** Mixed-texture corpus entry: compressible, random, tiny, empty-ish. */
std::vector<std::uint8_t>
makeSample(int kind, Rng &rng)
{
    switch (kind) {
    case 0: { // highly compressible text
        std::string s;
        for (int i = 0; i < 200; ++i)
            s += "the quick brown fox jumps over the lazy dog ";
        return {s.begin(), s.end()};
    }
    case 1: { // incompressible noise
        std::vector<std::uint8_t> v(2048);
        rng.fill(v.data(), v.size());
        return v;
    }
    case 2: { // runs (RLE-ish matches, long distances)
        std::vector<std::uint8_t> v(4096);
        for (std::size_t i = 0; i < v.size(); ++i)
            v[i] = static_cast<std::uint8_t>((i / 256) * 17);
        return v;
    }
    default: // tiny input
        return {'x'};
    }
}

constexpr DeflateStrategy kStrategies[] = {
    DeflateStrategy::kFixed,
    DeflateStrategy::kDynamic,
    DeflateStrategy::kStored,
};

TEST(DeflateFault, UncorruptedStreamsRoundTrip)
{
    Rng rng(51);
    for (int kind = 0; kind < 4; ++kind) {
        const auto sample = makeSample(kind, rng);
        for (const auto strategy : kStrategies) {
            const auto stream =
                deflateCompress(sample.data(), sample.size(), strategy);
            const auto out = deflateTryDecompress(
                stream.bytes.data(), stream.bytes.size(), 1 << 20);
            ASSERT_TRUE(out.has_value())
                << "kind " << kind << " strategy "
                << static_cast<int>(strategy);
            EXPECT_EQ(*out, sample);
        }
    }
}

TEST(DeflateFault, SingleBitFlipsRejectOrDecodeBounded)
{
    // Every single-bit corruption of a small stream: exhaustive over
    // the header-heavy prefix, sampled over the body.
    Rng rng(52);
    const std::size_t kMaxOut = 1 << 20;
    std::uint64_t rejected = 0;
    std::uint64_t decoded = 0;

    for (int kind = 0; kind < 4; ++kind) {
        const auto sample = makeSample(kind, rng);
        for (const auto strategy : kStrategies) {
            const auto stream =
                deflateCompress(sample.data(), sample.size(), strategy);
            const std::size_t bits = stream.bytes.size() * 8;
            // All bits of the first 16 bytes (block header + code
            // lengths — the structurally interesting region), then 256
            // random body bits.
            std::vector<std::size_t> flips;
            for (std::size_t b = 0; b < std::min<std::size_t>(128, bits);
                 ++b)
                flips.push_back(b);
            for (int i = 0; i < 256; ++i)
                flips.push_back(rng.below(bits));

            for (const std::size_t bit : flips) {
                auto bad = stream.bytes;
                bad[bit / 8] ^= static_cast<std::uint8_t>(1u
                                                          << (bit % 8));
                const auto out = deflateTryDecompress(
                    bad.data(), bad.size(), kMaxOut);
                if (!out.has_value()) {
                    ++rejected;
                    continue;
                }
                ++decoded;
                // Accepted streams must respect the expansion cap.
                EXPECT_LE(out->size(), kMaxOut);
            }
        }
    }
    // Sanity on the harness itself: corruption must actually bite —
    // a fuzzer where nothing is ever rejected tests nothing.
    EXPECT_GT(rejected, 0u);
    EXPECT_GT(decoded, 0u) << "some flips (e.g. in literals) survive";
}

TEST(DeflateFault, TruncationsAlwaysReject)
{
    Rng rng(53);
    const auto sample = makeSample(0, rng);
    for (const auto strategy : kStrategies) {
        const auto stream =
            deflateCompress(sample.data(), sample.size(), strategy);
        // Cutting anywhere strictly inside the stream loses the final
        // block's tail: the decoder must hit end-of-input, not decode
        // a full result (stored blocks excepted only at len == full).
        for (std::size_t len = 0; len < stream.bytes.size(); ++len) {
            const auto out =
                deflateTryDecompress(stream.bytes.data(), len, 1 << 20);
            if (out.has_value())
                EXPECT_LT(out->size(), sample.size())
                    << "truncated to " << len;
        }
    }
}

TEST(DeflateFault, RandomGarbageNeverCrashes)
{
    Rng rng(54);
    for (int trial = 0; trial < 200; ++trial) {
        std::vector<std::uint8_t> garbage(1 + rng.below(512));
        rng.fill(garbage.data(), garbage.size());
        const auto out =
            deflateTryDecompress(garbage.data(), garbage.size(), 1 << 16);
        if (out.has_value())
            EXPECT_LE(out->size(), std::size_t{1} << 16);
    }
}

TEST(DeflateFault, ExpansionBombIsCapped)
{
    // A large run compresses to almost nothing; decompressing it under
    // a small cap must reject rather than allocate the full output.
    std::vector<std::uint8_t> run(1 << 16, 0xAA);
    const auto stream = deflateCompress(run.data(), run.size(),
                                        DeflateStrategy::kDynamic);
    ASSERT_LT(stream.bytes.size(), run.size() / 8);

    EXPECT_FALSE(deflateTryDecompress(stream.bytes.data(),
                                      stream.bytes.size(), 1024)
                     .has_value());
    const auto full = deflateTryDecompress(stream.bytes.data(),
                                           stream.bytes.size(), 1 << 16);
    ASSERT_TRUE(full.has_value());
    EXPECT_EQ(*full, run);
}

TEST(DeflateFault, SeededFuzzIsDeterministic)
{
    auto run = [](std::uint64_t seed) {
        Rng rng(seed);
        const auto sample = makeSample(2, rng);
        const auto stream = deflateCompress(sample.data(), sample.size(),
                                            DeflateStrategy::kDynamic);
        std::vector<bool> verdicts;
        for (int i = 0; i < 128; ++i) {
            auto bad = stream.bytes;
            const std::size_t bit = rng.below(bad.size() * 8);
            bad[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
            verdicts.push_back(
                deflateTryDecompress(bad.data(), bad.size(), 1 << 20)
                    .has_value());
        }
        return verdicts;
    };
    EXPECT_EQ(run(99), run(99));
}

} // namespace
