/**
 * @file
 * DEFLATE codec: round trips across strategies and corpora, block
 * types, and ratio sanity checks.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <tuple>
#include <vector>

#include "common/random.h"
#include "compress/deflate.h"

namespace {

using sd::Rng;
using sd::compress::deflateCompress;
using sd::compress::deflateDecompress;
using sd::compress::DeflateStrategy;

std::vector<std::uint8_t>
htmlCorpus(std::size_t len, std::uint64_t seed)
{
    Rng rng(seed);
    static const char *snippets[] = {
        "<html><head><title>SmartDIMM</title></head>",
        "<p>Upper layer protocols consume datacenter cycles.</p>",
        "<a href=\"/docs/index.html\">documentation</a>",
        "div.container { margin: 0 auto; padding: 16px; }",
        "0123456789abcdef",
    };
    std::vector<std::uint8_t> out;
    while (out.size() < len) {
        const char *p = snippets[rng.below(5)];
        out.insert(out.end(), p, p + std::strlen(p));
        if (rng.chance(0.1))
            out.push_back(static_cast<std::uint8_t>(rng.next()));
    }
    out.resize(len);
    return out;
}

std::vector<std::uint8_t>
randomBytes(std::size_t len, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<std::uint8_t> out(len);
    rng.fill(out.data(), len);
    return out;
}

class DeflateRoundTrip
    : public ::testing::TestWithParam<std::tuple<DeflateStrategy,
                                                 std::size_t>>
{
};

TEST_P(DeflateRoundTrip, CompressibleCorpus)
{
    const auto [strategy, len] = GetParam();
    const auto data = htmlCorpus(len, len);
    const auto result = deflateCompress(data.data(), data.size(), strategy);
    const auto back =
        deflateDecompress(result.bytes.data(), result.bytes.size());
    EXPECT_EQ(back, data);
}

TEST_P(DeflateRoundTrip, IncompressibleCorpus)
{
    const auto [strategy, len] = GetParam();
    const auto data = randomBytes(len, len + 999);
    const auto result = deflateCompress(data.data(), data.size(), strategy);
    const auto back =
        deflateDecompress(result.bytes.data(), result.bytes.size());
    EXPECT_EQ(back, data);
}

INSTANTIATE_TEST_SUITE_P(
    StrategyBySize, DeflateRoundTrip,
    ::testing::Combine(::testing::Values(DeflateStrategy::kFixed,
                                         DeflateStrategy::kDynamic,
                                         DeflateStrategy::kStored),
                       ::testing::Values(1, 63, 64, 4096, 20000, 70000)));

TEST(Deflate, CompressibleDataShrinks)
{
    const auto data = htmlCorpus(1 << 16, 3);
    const auto result = deflateCompress(data.data(), data.size(),
                                        DeflateStrategy::kDynamic);
    EXPECT_LT(result.bytes.size(), data.size() / 2)
        << "expected >2x compression on repetitive HTML";
}

TEST(Deflate, DynamicBeatsFixedOnSkewedData)
{
    // Corpus made almost entirely of one byte value: dynamic tables
    // should easily beat the fixed 8-bit literal codes.
    std::vector<std::uint8_t> data(1 << 14, 'e');
    Rng rng(4);
    for (int i = 0; i < 100; ++i)
        data[rng.below(data.size())] = static_cast<std::uint8_t>(rng.next());

    const auto fixed = deflateCompress(data.data(), data.size(),
                                       DeflateStrategy::kFixed);
    const auto dynamic = deflateCompress(data.data(), data.size(),
                                         DeflateStrategy::kDynamic);
    EXPECT_LT(dynamic.bytes.size(), fixed.bytes.size());
}

TEST(Deflate, StoredBlocksAddBoundedOverhead)
{
    const auto data = randomBytes(100000, 5);
    const auto result = deflateCompress(data.data(), data.size(),
                                        DeflateStrategy::kStored);
    // 5 bytes per 65535-byte block plus one partial block.
    EXPECT_LE(result.bytes.size(), data.size() + 5 * 3);
    EXPECT_EQ(deflateDecompress(result.bytes.data(), result.bytes.size()),
              data);
}

TEST(Deflate, EmptyInputProducesDecodableStream)
{
    const auto result =
        deflateCompress(nullptr, 0, DeflateStrategy::kDynamic);
    EXPECT_FALSE(result.bytes.empty());
    EXPECT_TRUE(
        deflateDecompress(result.bytes.data(), result.bytes.size())
            .empty());
}

TEST(Deflate, LongRunsOfZeros)
{
    std::vector<std::uint8_t> data(1 << 15, 0);
    const auto result = deflateCompress(data.data(), data.size(),
                                        DeflateStrategy::kDynamic);
    EXPECT_LT(result.bytes.size(), 512u);
    EXPECT_EQ(deflateDecompress(result.bytes.data(), result.bytes.size()),
              data);
}

TEST(Deflate, AllByteValuesRoundTrip)
{
    std::vector<std::uint8_t> data;
    for (int rep = 0; rep < 16; ++rep)
        for (int b = 0; b < 256; ++b)
            data.push_back(static_cast<std::uint8_t>(b));
    for (auto strategy : {DeflateStrategy::kFixed,
                          DeflateStrategy::kDynamic}) {
        const auto result =
            deflateCompress(data.data(), data.size(), strategy);
        EXPECT_EQ(
            deflateDecompress(result.bytes.data(), result.bytes.size()),
            data);
    }
}

TEST(Deflate, RatioHelper)
{
    const auto data = htmlCorpus(4096, 6);
    const auto result = deflateCompress(data.data(), data.size(),
                                        DeflateStrategy::kDynamic);
    EXPECT_GT(result.ratio(data.size()), 1.0);
}

} // namespace
