/**
 * @file
 * LZ77 match finder: round trips, window limits, and token validity
 * invariants over synthetic corpora.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "common/random.h"
#include "compress/lz77.h"

namespace {

using sd::Rng;
using sd::compress::kMaxDistance;
using sd::compress::kMaxMatch;
using sd::compress::kMinMatch;
using sd::compress::Lz77Config;
using sd::compress::lz77Compress;
using sd::compress::lz77Decompress;
using sd::compress::Lz77Stats;
using sd::compress::Lz77Token;

std::vector<std::uint8_t>
bytesOf(const std::string &s)
{
    return std::vector<std::uint8_t>(s.begin(), s.end());
}

/** Synthetic corpus mixing repeated phrases and random noise. */
std::vector<std::uint8_t>
mixedCorpus(std::size_t len, std::uint64_t seed)
{
    Rng rng(seed);
    static const char *phrases[] = {
        "GET /index.html HTTP/1.1\r\n", "Content-Type: text/html\r\n",
        "the quick brown fox jumps over the lazy dog ",
        "<div class=\"header\">", "0123456789",
    };
    std::vector<std::uint8_t> out;
    while (out.size() < len) {
        if (rng.chance(0.7)) {
            const char *p = phrases[rng.below(5)];
            out.insert(out.end(), p, p + std::strlen(p));
        } else {
            for (int i = 0; i < 8; ++i)
                out.push_back(static_cast<std::uint8_t>(rng.next()));
        }
    }
    out.resize(len);
    return out;
}

TEST(Lz77, EmptyInput)
{
    const auto tokens = lz77Compress(nullptr, 0);
    EXPECT_TRUE(tokens.empty());
    EXPECT_TRUE(lz77Decompress(tokens).empty());
}

TEST(Lz77, AllLiteralsForIncompressible)
{
    // 2 bytes cannot contain a 3-byte match.
    const auto data = bytesOf("ab");
    const auto tokens = lz77Compress(data.data(), data.size());
    ASSERT_EQ(tokens.size(), 2u);
    EXPECT_FALSE(tokens[0].is_match);
    EXPECT_FALSE(tokens[1].is_match);
}

TEST(Lz77, FindsSimpleRepeat)
{
    const auto data = bytesOf("abcabcabcabc");
    Lz77Stats stats;
    const auto tokens =
        lz77Compress(data.data(), data.size(), {}, &stats);
    EXPECT_GT(stats.matches, 0u);
    EXPECT_EQ(lz77Decompress(tokens), data);
}

TEST(Lz77, OverlappingRleMatch)
{
    // "aaaa..." compresses as one literal + an overlapping match with
    // distance 1.
    std::vector<std::uint8_t> data(300, 'a');
    const auto tokens = lz77Compress(data.data(), data.size());
    EXPECT_EQ(lz77Decompress(tokens), data);
    ASSERT_GE(tokens.size(), 2u);
    EXPECT_FALSE(tokens[0].is_match);
    EXPECT_TRUE(tokens[1].is_match);
    EXPECT_EQ(tokens[1].distance, 1);
}

TEST(Lz77, TokensRespectFormatLimits)
{
    const auto data = mixedCorpus(1 << 16, 5);
    const auto tokens = lz77Compress(data.data(), data.size());
    for (const auto &tok : tokens) {
        if (!tok.is_match)
            continue;
        EXPECT_GE(tok.length, kMinMatch);
        EXPECT_LE(tok.length, kMaxMatch);
        EXPECT_GE(tok.distance, 1);
        EXPECT_LE(tok.distance, kMaxDistance);
    }
    EXPECT_EQ(lz77Decompress(tokens), data);
}

TEST(Lz77, WindowLimitIsHonoured)
{
    Lz77Config cfg;
    cfg.window = 256;
    const auto data = mixedCorpus(1 << 14, 6);
    const auto tokens = lz77Compress(data.data(), data.size(), cfg);
    for (const auto &tok : tokens)
        if (tok.is_match)
            EXPECT_LE(tok.distance, 256);
    EXPECT_EQ(lz77Decompress(tokens), data);
}

TEST(Lz77, LazyMatchingNeverHurtsTokenCount)
{
    const auto data = mixedCorpus(1 << 15, 7);
    Lz77Config lazy;
    lazy.lazy = true;
    Lz77Config greedy;
    greedy.lazy = false;
    const auto t_lazy = lz77Compress(data.data(), data.size(), lazy);
    const auto t_greedy = lz77Compress(data.data(), data.size(), greedy);
    EXPECT_EQ(lz77Decompress(t_lazy), data);
    EXPECT_EQ(lz77Decompress(t_greedy), data);
    // Lazy matching should compress at least comparably well.
    EXPECT_LE(t_lazy.size(), t_greedy.size() + t_greedy.size() / 10);
}

class Lz77RoundTrip : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(Lz77RoundTrip, RandomCorpora)
{
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
        const auto data = mixedCorpus(GetParam(), seed * 31);
        const auto tokens = lz77Compress(data.data(), data.size());
        ASSERT_EQ(lz77Decompress(tokens), data)
            << "len " << GetParam() << " seed " << seed;
    }
}

INSTANTIATE_TEST_SUITE_P(Sizes, Lz77RoundTrip,
                         ::testing::Values(1, 2, 3, 64, 100, 4096, 40000));

TEST(Lz77, StatsAreConsistent)
{
    const auto data = mixedCorpus(1 << 14, 8);
    Lz77Stats stats;
    const auto tokens =
        lz77Compress(data.data(), data.size(), {}, &stats);
    EXPECT_EQ(stats.literals + stats.matches, tokens.size());
    EXPECT_EQ(stats.literals + stats.matched_bytes, data.size());
}

} // namespace
