/**
 * @file
 * LSB-first bit reader/writer round trips.
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/random.h"
#include "compress/bitstream.h"

namespace {

using sd::Rng;
using sd::compress::BitReader;
using sd::compress::BitWriter;

TEST(Bitstream, SingleByteRoundTrip)
{
    BitWriter w;
    w.put(0b101, 3);
    w.put(0b11, 2);
    w.put(0b010, 3);
    auto bytes = w.finish();
    ASSERT_EQ(bytes.size(), 1u);
    // LSB-first packing: 101 then 11 then 010 -> 0b010'11'101.
    EXPECT_EQ(bytes[0], 0b01011101);

    BitReader r(bytes.data(), bytes.size());
    EXPECT_EQ(r.take(3), 0b101u);
    EXPECT_EQ(r.take(2), 0b11u);
    EXPECT_EQ(r.take(3), 0b010u);
}

TEST(Bitstream, RandomRunsRoundTrip)
{
    Rng rng(11);
    std::vector<std::pair<std::uint32_t, unsigned>> runs;
    BitWriter w;
    for (int i = 0; i < 2000; ++i) {
        const unsigned count = 1 + static_cast<unsigned>(rng.below(24));
        const std::uint32_t value =
            static_cast<std::uint32_t>(rng.next()) &
            ((count >= 32 ? 0 : (1u << count)) - 1);
        runs.emplace_back(value, count);
        w.put(value, count);
    }
    auto bytes = w.finish();
    BitReader r(bytes.data(), bytes.size());
    for (const auto &[value, count] : runs)
        ASSERT_EQ(r.take(count), value);
}

TEST(Bitstream, ByteAlignment)
{
    BitWriter w;
    w.put(1, 1);
    w.alignByte();
    w.put(0xab, 8);
    auto bytes = w.finish();
    ASSERT_EQ(bytes.size(), 2u);
    EXPECT_EQ(bytes[0], 0x01);
    EXPECT_EQ(bytes[1], 0xab);

    BitReader r(bytes.data(), bytes.size());
    EXPECT_EQ(r.takeBit(), 1u);
    r.alignByte();
    EXPECT_EQ(r.take(8), 0xabu);
}

TEST(Bitstream, HuffmanBitOrderIsMsbFirst)
{
    // A 3-bit code 0b110 must appear on the wire as bits 1,1,0.
    BitWriter w;
    w.putHuffman(0b110, 3);
    auto bytes = w.finish();
    BitReader r(bytes.data(), bytes.size());
    EXPECT_EQ(r.takeBit(), 1u);
    EXPECT_EQ(r.takeBit(), 1u);
    EXPECT_EQ(r.takeBit(), 0u);
}

TEST(Bitstream, BitCountTracksWrites)
{
    BitWriter w;
    EXPECT_EQ(w.bitCount(), 0u);
    w.put(0, 5);
    EXPECT_EQ(w.bitCount(), 5u);
    w.put(0, 11);
    EXPECT_EQ(w.bitCount(), 16u);
}

TEST(Bitstream, ExhaustionDetection)
{
    BitWriter w;
    w.put(0xff, 8);
    auto bytes = w.finish();
    BitReader r(bytes.data(), bytes.size());
    EXPECT_FALSE(r.exhausted());
    r.take(8);
    EXPECT_TRUE(r.exhausted());
}

} // namespace
