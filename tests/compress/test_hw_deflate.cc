/**
 * @file
 * Hardware-constrained Deflate DSA model (Sec. V-B): output must stay
 * decodable by the software decoder, distances must respect the 4 KB
 * history, bank conflicts must only degrade (never corrupt) the
 * stream, and throughput accounting must match the 8-byte window.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "common/random.h"
#include "compress/deflate.h"
#include "compress/hw_deflate.h"

namespace {

using sd::Rng;
using sd::compress::deflateCompress;
using sd::compress::deflateDecompress;
using sd::compress::DeflateStrategy;
using sd::compress::HwDeflateConfig;
using sd::compress::hwDeflateCompress;
using sd::compress::HwDeflateStats;
using sd::compress::hwDeflateTokens;
using sd::compress::lz77Decompress;

std::vector<std::uint8_t>
webCorpus(std::size_t len, std::uint64_t seed)
{
    Rng rng(seed);
    static const char *snippets[] = {
        "HTTP/1.1 200 OK\r\nContent-Encoding: deflate\r\n",
        "<li><a href=\"/product/4711\">SmartDIMM DDR4 module</a></li>",
        "function render(node) { return node.innerHTML; }",
        "Lorem ipsum dolor sit amet, consectetur adipiscing elit. ",
    };
    std::vector<std::uint8_t> out;
    while (out.size() < len) {
        const char *p = snippets[rng.below(4)];
        out.insert(out.end(), p, p + std::strlen(p));
    }
    out.resize(len);
    return out;
}

/** Decode the page-framed DSA stream. */
std::vector<std::uint8_t>
decodePaged(const std::vector<std::uint8_t> &stream)
{
    std::vector<std::uint8_t> out;
    std::size_t pos = 0;
    while (pos + 2 <= stream.size()) {
        const std::size_t page_len = stream[pos] | (stream[pos + 1] << 8);
        pos += 2;
        const auto page =
            deflateDecompress(stream.data() + pos, page_len);
        out.insert(out.end(), page.begin(), page.end());
        pos += page_len;
    }
    return out;
}

TEST(HwDeflate, TokensRoundTrip)
{
    const auto data = webCorpus(4096, 1);
    const auto tokens = hwDeflateTokens(data.data(), data.size());
    EXPECT_EQ(lz77Decompress(tokens), data);
}

TEST(HwDeflate, DistancesRespectHistoryWindow)
{
    const auto data = webCorpus(4096, 2);
    HwDeflateConfig cfg;
    const auto tokens = hwDeflateTokens(data.data(), data.size(), cfg);
    for (const auto &tok : tokens)
        if (tok.is_match)
            EXPECT_LE(tok.distance, cfg.history);
}

TEST(HwDeflate, PagedStreamDecodable)
{
    for (std::size_t len : {100u, 4096u, 4097u, 16384u, 20000u}) {
        const auto data = webCorpus(len, 10 + len);
        const auto stream = hwDeflateCompress(data.data(), data.size());
        EXPECT_EQ(decodePaged(stream), data) << "len " << len;
    }
}

TEST(HwDeflate, RandomDataSurvives)
{
    Rng rng(3);
    std::vector<std::uint8_t> data(8192);
    rng.fill(data.data(), data.size());
    const auto stream = hwDeflateCompress(data.data(), data.size());
    EXPECT_EQ(decodePaged(stream), data);
}

TEST(HwDeflate, CompressesRepetitiveData)
{
    const auto data = webCorpus(4096, 4);
    HwDeflateStats stats;
    const auto stream =
        hwDeflateCompress(data.data(), data.size(), {}, &stats);
    EXPECT_LT(stream.size(), data.size())
        << "DSA should shrink repetitive web data";
    EXPECT_GT(stats.matches, 0u);
}

TEST(HwDeflate, BankConflictsOnlyDegradeRatio)
{
    const auto data = webCorpus(16384, 5);

    HwDeflateConfig best_effort;
    best_effort.drop_on_conflict = true;
    HwDeflateConfig ideal;
    ideal.drop_on_conflict = false;

    HwDeflateStats be_stats;
    HwDeflateStats id_stats;
    const auto be = hwDeflateCompress(data.data(), data.size(),
                                      best_effort, &be_stats);
    const auto id = hwDeflateCompress(data.data(), data.size(), ideal,
                                      &id_stats);

    // Both must decode correctly.
    EXPECT_EQ(decodePaged(be), data);
    EXPECT_EQ(decodePaged(id), data);
    // The idealised memory sees no conflicts.
    EXPECT_EQ(id_stats.bank_conflicts, 0u);
    EXPECT_GT(be_stats.bank_conflicts, 0u);
    // Best effort can never beat the ideal table by construction
    // (allow a tiny tolerance for heuristic tie-breaks).
    EXPECT_LE(id.size(), be.size() + be.size() / 20);
}

TEST(HwDeflate, StepCountMatchesParallelWindow)
{
    // Incompressible data advances exactly window bytes per step.
    Rng rng(6);
    std::vector<std::uint8_t> data(4096);
    rng.fill(data.data(), data.size());
    HwDeflateConfig cfg;
    cfg.parallel_window = 8;
    HwDeflateStats stats;
    hwDeflateTokens(data.data(), data.size(), cfg, &stats);
    EXPECT_LE(stats.steps, 4096u / 8 + 1);
}

TEST(HwDeflate, WiderWindowImprovesRatioOnRepeats)
{
    const auto data = webCorpus(16384, 7);
    HwDeflateConfig narrow;
    narrow.parallel_window = 1;
    HwDeflateConfig wide;
    wide.parallel_window = 8;
    const auto n = hwDeflateCompress(data.data(), data.size(), narrow);
    const auto w = hwDeflateCompress(data.data(), data.size(), wide);
    // Both decodable; sizes comparable (window affects throughput more
    // than ratio, but must not corrupt).
    EXPECT_EQ(decodePaged(n), data);
    EXPECT_EQ(decodePaged(w), data);
}

TEST(HwDeflate, SoftwareDeflateBeatsDsaOnRatio)
{
    // The DSA trades ratio for determinism (Sec. V-B); the software
    // encoder with a 32 KB window and dynamic tables should win.
    const auto data = webCorpus(32768, 8);
    const auto sw = deflateCompress(data.data(), data.size(),
                                    DeflateStrategy::kDynamic);
    const auto hw = hwDeflateCompress(data.data(), data.size());
    EXPECT_LT(sw.bytes.size(), hw.size());
}

TEST(HwDeflate, StatsAccounting)
{
    const auto data = webCorpus(4096, 9);
    HwDeflateStats stats;
    const auto tokens =
        hwDeflateTokens(data.data(), data.size(), {}, &stats);
    std::uint64_t lits = 0;
    std::uint64_t matches = 0;
    for (const auto &tok : tokens)
        (tok.is_match ? matches : lits)++;
    EXPECT_EQ(stats.literals, lits);
    EXPECT_EQ(stats.matches, matches);
}

} // namespace
