/**
 * @file
 * Differential compression testing: the software DEFLATE encoder and
 * the hardware DSA model are two independent implementations of the
 * same contract, so for any input the decompressed outputs must be
 * byte-identical, and each side's stream must stay decodable by the
 * shared decoder regardless of which matcher produced the tokens.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <iterator>
#include <string>
#include <vector>

#include "common/random.h"
#include "compress/deflate.h"
#include "compress/hw_deflate.h"

namespace {

using sd::Rng;
using sd::compress::deflateCompress;
using sd::compress::deflateDecompress;
using sd::compress::deflateEncodeTokens;
using sd::compress::DeflateStrategy;
using sd::compress::hwDeflateCompress;
using sd::compress::hwDeflateTokens;

/** Decode the DSA's page-framed stream with the software decoder. */
std::vector<std::uint8_t>
decodePaged(const std::vector<std::uint8_t> &stream)
{
    std::vector<std::uint8_t> out;
    std::size_t pos = 0;
    while (pos + 2 <= stream.size()) {
        const std::size_t page_len = stream[pos] | (stream[pos + 1] << 8);
        pos += 2;
        const auto page = deflateDecompress(stream.data() + pos, page_len);
        out.insert(out.end(), page.begin(), page.end());
        pos += page_len;
    }
    return out;
}

/** A corpus generator: name + deterministic byte producer. */
struct Corpus
{
    const char *name;
    std::vector<std::uint8_t> (*make)(std::size_t len, std::uint64_t seed);
};

std::vector<std::uint8_t>
randomBytes(std::size_t len, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<std::uint8_t> out(len);
    rng.fill(out.data(), len);
    return out;
}

/** Low-entropy random: few distinct symbols, Huffman-friendly. */
std::vector<std::uint8_t>
skewedBytes(std::size_t len, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<std::uint8_t> out(len);
    for (auto &b : out)
        b = static_cast<std::uint8_t>("aaaabbcde"[rng.below(9)]);
    return out;
}

/** Random-length runs of random bytes (RLE-style redundancy). */
std::vector<std::uint8_t>
runBytes(std::size_t len, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<std::uint8_t> out;
    while (out.size() < len) {
        const auto byte = static_cast<std::uint8_t>(rng.next());
        const std::size_t run = 1 + rng.below(200);
        out.insert(out.end(), run, byte);
    }
    out.resize(len);
    return out;
}

/** Structured text: repeated templates with random numeric fields. */
std::vector<std::uint8_t>
logCorpus(std::size_t len, std::uint64_t seed)
{
    Rng rng(seed);
    static const char *templates[] = {
        "GET /static/js/app.%llu.js HTTP/1.1 200 %llu\n",
        "POST /api/v2/records?id=%llu HTTP/1.1 201 %llu\n",
        "{\"level\":\"info\",\"req\":%llu,\"latency_us\":%llu}\n",
    };
    std::vector<std::uint8_t> out;
    char line[128];
    while (out.size() < len) {
        const int n = std::snprintf(
            line, sizeof(line), templates[rng.below(3)],
            static_cast<unsigned long long>(rng.below(100000)),
            static_cast<unsigned long long>(rng.below(1000000)));
        out.insert(out.end(), line, line + n);
    }
    out.resize(len);
    return out;
}

std::vector<std::uint8_t>
zeroBytes(std::size_t len, std::uint64_t)
{
    return std::vector<std::uint8_t>(len, 0);
}

constexpr Corpus kCorpora[] = {
    {"random", randomBytes}, {"skewed", skewedBytes},
    {"runs", runBytes},      {"log", logCorpus},
    {"zeros", zeroBytes},
};

/** Sizes straddling the DSA's 4 KB page framing. */
constexpr std::size_t kSizes[] = {1,    63,   64,    65,    4095,
                                  4096, 4097, 12288, 20000};

TEST(DeflateDifferential, SoftwareAndHardwareAgreeOnEveryCorpus)
{
    std::uint64_t seed = 1000;
    for (const auto &corpus : kCorpora) {
        for (std::size_t len : kSizes) {
            const auto data = corpus.make(len, seed++);
            SCOPED_TRACE(std::string(corpus.name) + " len " +
                         std::to_string(len));

            const auto sw =
                deflateCompress(data.data(), data.size(),
                                DeflateStrategy::kDynamic);
            const auto sw_out =
                deflateDecompress(sw.bytes.data(), sw.bytes.size());

            const auto hw = hwDeflateCompress(data.data(), data.size());
            const auto hw_out = decodePaged(hw);

            // Both implementations must reproduce the input exactly —
            // and therefore each other.
            EXPECT_EQ(sw_out, data);
            EXPECT_EQ(hw_out, data);
            EXPECT_EQ(sw_out, hw_out);
        }
    }
}

TEST(DeflateDifferential, EveryStrategyDecodesIdentically)
{
    std::uint64_t seed = 2000;
    for (const auto &corpus : kCorpora) {
        const auto data = corpus.make(6000, seed++);
        SCOPED_TRACE(corpus.name);
        for (auto strategy :
             {DeflateStrategy::kFixed, DeflateStrategy::kDynamic,
              DeflateStrategy::kStored}) {
            const auto enc =
                deflateCompress(data.data(), data.size(), strategy);
            EXPECT_EQ(
                deflateDecompress(enc.bytes.data(), enc.bytes.size()),
                data);
        }
    }
}

TEST(DeflateDifferential, HardwareTokensSurviveSoftwareEntropyCoder)
{
    // Cross path: DSA match finding entropy-coded by the *software*
    // dynamic-Huffman backend. Valid tokens must stay valid under
    // either coder.
    std::uint64_t seed = 3000;
    for (const auto &corpus : kCorpora) {
        const auto data = corpus.make(4096, seed++);
        SCOPED_TRACE(corpus.name);
        const auto tokens = hwDeflateTokens(data.data(), data.size());
        for (auto strategy :
             {DeflateStrategy::kFixed, DeflateStrategy::kDynamic}) {
            const auto stream = deflateEncodeTokens(tokens, strategy);
            EXPECT_EQ(deflateDecompress(stream.data(), stream.size()),
                      data);
        }
    }
}

TEST(DeflateDifferential, RandomSizesFuzz)
{
    // Seeded random sizes + contents: the same differential invariant
    // over inputs no one hand-picked.
    Rng rng(42);
    for (int round = 0; round < 40; ++round) {
        const std::size_t len = 1 + rng.below(16384);
        const auto &corpus = kCorpora[rng.below(std::size(kCorpora))];
        const auto data = corpus.make(len, rng.next());
        SCOPED_TRACE(std::string(corpus.name) + " len " +
                     std::to_string(len) + " round " +
                     std::to_string(round));

        const auto sw = deflateCompress(data.data(), data.size());
        EXPECT_EQ(deflateDecompress(sw.bytes.data(), sw.bytes.size()),
                  data);
        const auto hw = hwDeflateCompress(data.data(), data.size());
        EXPECT_EQ(decodePaged(hw), data);
    }
}

} // namespace
