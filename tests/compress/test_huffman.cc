/**
 * @file
 * Canonical Huffman construction: Kraft validity, length limits,
 * optimality sanity and encode/decode round trips.
 */

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "common/random.h"
#include "compress/bitstream.h"
#include "compress/huffman.h"

namespace {

using sd::Rng;
using sd::compress::BitReader;
using sd::compress::BitWriter;
using sd::compress::canonicalCodes;
using sd::compress::HuffmanDecoder;
using sd::compress::huffmanCodeLengths;

/** Kraft sum scaled by 2^max_bits. */
std::uint64_t
kraftSum(const std::vector<std::uint8_t> &lengths, unsigned max_bits)
{
    std::uint64_t sum = 0;
    for (auto l : lengths)
        if (l)
            sum += 1ULL << (max_bits - l);
    return sum;
}

TEST(Huffman, EmptyFrequencies)
{
    const auto lengths = huffmanCodeLengths({0, 0, 0}, 15);
    for (auto l : lengths)
        EXPECT_EQ(l, 0);
}

TEST(Huffman, SingleSymbolGetsOneBit)
{
    const auto lengths = huffmanCodeLengths({0, 7, 0}, 15);
    EXPECT_EQ(lengths[1], 1);
}

TEST(Huffman, KraftInequalityHolds)
{
    Rng rng(21);
    for (int trial = 0; trial < 20; ++trial) {
        std::vector<std::uint64_t> freqs(64);
        for (auto &f : freqs)
            f = rng.below(1000);
        const auto lengths = huffmanCodeLengths(freqs, 15);
        EXPECT_LE(kraftSum(lengths, 15), 1ULL << 15);
    }
}

TEST(Huffman, LengthLimitRespected)
{
    // Fibonacci-like frequencies force deep trees; the limiter must
    // clamp them to max_bits while keeping the code valid.
    std::vector<std::uint64_t> freqs;
    std::uint64_t a = 1;
    std::uint64_t b = 1;
    for (int i = 0; i < 40; ++i) {
        freqs.push_back(a);
        const std::uint64_t next = a + b;
        a = b;
        b = next;
    }
    for (unsigned max_bits : {7u, 10u, 15u}) {
        const auto lengths = huffmanCodeLengths(freqs, max_bits);
        for (auto l : lengths)
            EXPECT_LE(l, max_bits);
        EXPECT_LE(kraftSum(lengths, max_bits), 1ULL << max_bits);
    }
}

TEST(Huffman, MoreFrequentSymbolsGetShorterCodes)
{
    std::vector<std::uint64_t> freqs{1000, 1, 500, 2};
    const auto lengths = huffmanCodeLengths(freqs, 15);
    EXPECT_LE(lengths[0], lengths[1]);
    EXPECT_LE(lengths[2], lengths[3]);
}

TEST(Huffman, CanonicalCodesArePrefixFree)
{
    Rng rng(23);
    std::vector<std::uint64_t> freqs(32);
    for (auto &f : freqs)
        f = 1 + rng.below(100);
    const auto lengths = huffmanCodeLengths(freqs, 15);
    const auto codes = canonicalCodes(lengths);

    for (std::size_t a = 0; a < codes.size(); ++a) {
        for (std::size_t b = 0; b < codes.size(); ++b) {
            if (a == b || !codes[a].length || !codes[b].length)
                continue;
            if (codes[a].length > codes[b].length)
                continue;
            // codes[a] must not be a prefix of codes[b].
            const unsigned shift = codes[b].length - codes[a].length;
            EXPECT_NE(codes[b].code >> shift, codes[a].code)
                << "symbol " << a << " prefixes " << b;
        }
    }
}

TEST(Huffman, EncodeDecodeRoundTrip)
{
    Rng rng(24);
    for (int trial = 0; trial < 10; ++trial) {
        const std::size_t alphabet = 4 + rng.below(252);
        std::vector<std::uint64_t> freqs(alphabet);
        for (auto &f : freqs)
            f = rng.below(50); // some symbols unused

        // Ensure at least two used symbols.
        freqs[0] += 1;
        freqs[alphabet - 1] += 1;

        const auto lengths = huffmanCodeLengths(freqs, 15);
        const auto codes = canonicalCodes(lengths);
        HuffmanDecoder decoder(lengths);
        ASSERT_TRUE(decoder.valid());

        // Encode a random message drawn from used symbols.
        std::vector<std::uint16_t> message;
        for (int i = 0; i < 500; ++i) {
            std::uint16_t s;
            do {
                s = static_cast<std::uint16_t>(rng.below(alphabet));
            } while (lengths[s] == 0);
            message.push_back(s);
        }

        BitWriter writer;
        for (auto s : message)
            writer.putHuffman(codes[s].code, codes[s].length);
        const auto bytes = writer.finish();

        BitReader reader(bytes.data(), bytes.size());
        for (auto expect : message)
            ASSERT_EQ(decoder.decode(reader), expect);
    }
}

TEST(Huffman, DecoderHandlesUniformAlphabet)
{
    // 256 equally likely symbols -> all codes 8 bits.
    std::vector<std::uint64_t> freqs(256, 10);
    const auto lengths = huffmanCodeLengths(freqs, 15);
    for (auto l : lengths)
        EXPECT_EQ(l, 8);
}

} // namespace
