/**
 * @file
 * Address mapping: decompose/compose inverse property (the on-DIMM
 * Addr Remap correctness), interleaving layouts, and geometry limits.
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/random.h"
#include "mem/address_map.h"

namespace {

using namespace sd;
using mem::AddressMap;
using mem::ChannelInterleave;
using mem::DramCoord;
using mem::DramGeometry;

TEST(AddressMap, ComposeInvertsDecomposeSingleChannel)
{
    DramGeometry g;
    g.channels = 1;
    AddressMap map(g, ChannelInterleave::kNone);
    Rng rng(1);
    for (int i = 0; i < 2000; ++i) {
        const Addr addr = lineAlign(rng.below(g.channel_bytes));
        EXPECT_EQ(map.compose(map.decompose(addr)), addr);
    }
}

TEST(AddressMap, ComposeInvertsDecomposeLineInterleave)
{
    DramGeometry g;
    g.channels = 4;
    AddressMap map(g, ChannelInterleave::kLine);
    Rng rng(2);
    for (int i = 0; i < 2000; ++i) {
        const Addr addr =
            lineAlign(rng.below(g.channel_bytes * g.channels));
        EXPECT_EQ(map.compose(map.decompose(addr)), addr);
    }
}

TEST(AddressMap, ComposeInvertsDecomposePageInterleave)
{
    DramGeometry g;
    g.channels = 2;
    AddressMap map(g, ChannelInterleave::kPage);
    Rng rng(3);
    for (int i = 0; i < 2000; ++i) {
        const Addr addr =
            lineAlign(rng.below(g.channel_bytes * g.channels));
        EXPECT_EQ(map.compose(map.decompose(addr)), addr);
    }
}

TEST(AddressMap, LineInterleaveRotatesChannels)
{
    DramGeometry g;
    g.channels = 4;
    AddressMap map(g, ChannelInterleave::kLine);
    for (Addr line = 0; line < 16; ++line) {
        const auto coord = map.decompose(line * kCacheLineSize);
        EXPECT_EQ(coord.channel, line % 4);
    }
}

TEST(AddressMap, PageInterleaveKeepsPageTogether)
{
    DramGeometry g;
    g.channels = 2;
    AddressMap map(g, ChannelInterleave::kPage);
    // All 64 lines of one page map to one channel.
    for (Addr page = 0; page < 8; ++page) {
        const unsigned ch =
            map.decompose(page * kPageSize).channel;
        for (Addr l = 0; l < kLinesPerPage; ++l)
            EXPECT_EQ(
                map.decompose(page * kPageSize + l * kCacheLineSize)
                    .channel,
                ch);
        EXPECT_EQ(ch, page % 2);
    }
}

TEST(AddressMap, SingleChannelModeUsesChannelZero)
{
    DramGeometry g;
    g.channels = 1;
    AddressMap map(g, ChannelInterleave::kNone);
    Rng rng(4);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(map.decompose(lineAlign(rng.below(1ULL << 34))).channel,
                  0u);
}

TEST(AddressMap, SequentialPagesStripeAcrossBanks)
{
    DramGeometry g;
    g.channels = 1;
    AddressMap map(g, ChannelInterleave::kNone);
    // Consecutive rows-worth of data land in different banks before
    // reusing a bank (col bits below bank bits).
    const auto c0 = map.decompose(0);
    const auto c1 = map.decompose(g.row_bytes);
    EXPECT_NE(c0.flatBank(g), c1.flatBank(g));
}

TEST(AddressMap, ComposeInvertsDecomposeCapacityInterleave)
{
    DramGeometry g;
    g.channels = 4;
    g.channel_bytes = 1ULL << 30; // keep the space walkable
    AddressMap map(g, ChannelInterleave::kCapacity);
    Rng rng(6);
    for (int i = 0; i < 2000; ++i) {
        const Addr addr =
            lineAlign(rng.below(g.channel_bytes * g.channels));
        EXPECT_EQ(map.compose(map.decompose(addr)), addr);
    }
}

TEST(AddressMap, ComposeInvertsDecomposeNonPow2Channels)
{
    // Channel extraction is div/mod, so 3- and 6-channel systems (the
    // paper's testbed has 6 DIMMs) must round-trip exactly too.
    for (const unsigned channels : {3u, 5u, 6u}) {
        DramGeometry g;
        g.channels = channels;
        g.channel_bytes = 1ULL << 30;
        for (const auto mode :
             {ChannelInterleave::kLine, ChannelInterleave::kPage,
              ChannelInterleave::kCapacity}) {
            AddressMap map(g, mode);
            Rng rng(7 + channels);
            for (int i = 0; i < 1000; ++i) {
                const Addr addr = lineAlign(
                    rng.below(g.channel_bytes * g.channels));
                EXPECT_EQ(map.compose(map.decompose(addr)), addr)
                    << channels << " channels, mode "
                    << static_cast<int>(mode);
            }
        }
    }
}

TEST(AddressMap, CapacityInterleaveChannelWindows)
{
    DramGeometry g;
    g.channels = 3;
    g.channel_bytes = 1ULL << 30;
    AddressMap map(g, ChannelInterleave::kCapacity);
    for (unsigned ch = 0; ch < g.channels; ++ch) {
        const Addr base = ch * g.channel_bytes;
        EXPECT_EQ(map.decompose(base).channel, ch);
        EXPECT_EQ(
            map.decompose(base + g.channel_bytes - kCacheLineSize)
                .channel,
            ch);
    }
}

TEST(AddressMap, ComposeInvertsDecomposeMultiDimm)
{
    for (const unsigned dimms : {2u, 3u, 4u}) {
        DramGeometry g;
        g.channels = 2;
        g.dimms_per_channel = dimms;
        // Capacity must split evenly across the DIMM slots.
        g.channel_bytes = dimms * (256ULL << 20);
        AddressMap map(g, ChannelInterleave::kCapacity);
        Rng rng(11 + dimms);
        for (int i = 0; i < 1500; ++i) {
            const Addr addr =
                lineAlign(rng.below(g.channel_bytes * g.channels));
            const auto coord = map.decompose(addr);
            EXPECT_LT(coord.dimm, dimms);
            EXPECT_EQ(map.compose(coord), addr);
        }
    }
}

TEST(AddressMap, DimmIsCapacityPartitionOfChannel)
{
    DramGeometry g;
    g.channels = 2;
    g.dimms_per_channel = 2;
    g.channel_bytes = 1ULL << 30;
    AddressMap map(g, ChannelInterleave::kCapacity);
    for (unsigned ch = 0; ch < g.channels; ++ch)
        for (unsigned d = 0; d < g.dimms_per_channel; ++d) {
            const Addr base =
                ch * g.channel_bytes + d * g.dimmBytes();
            const auto lo = map.decompose(base);
            const auto hi = map.decompose(base + g.dimmBytes() -
                                          kCacheLineSize);
            EXPECT_EQ(lo.channel, ch);
            EXPECT_EQ(lo.dimm, d);
            EXPECT_EQ(hi.channel, ch);
            EXPECT_EQ(hi.dimm, d);
        }
}

TEST(AddressMap, FlatBankUniqueAcrossDimms)
{
    // Each DIMM's chips hold independent row buffers: no two
    // (dimm, rank, bank group, bank) tuples may share a flat bank id,
    // and every id must fit the controller's totalBanks() state.
    DramGeometry g;
    g.dimms_per_channel = 3;
    std::vector<bool> seen(g.totalBanks(), false);
    for (unsigned d = 0; d < g.dimms_per_channel; ++d)
        for (unsigned r = 0; r < g.ranks; ++r)
            for (unsigned bg = 0; bg < g.bank_groups; ++bg)
                for (unsigned b = 0; b < g.banks_per_group; ++b) {
                    DramCoord coord;
                    coord.dimm = d;
                    coord.rank = r;
                    coord.bank_group = bg;
                    coord.bank = b;
                    const unsigned flat = coord.flatBank(g);
                    ASSERT_LT(flat, seen.size());
                    EXPECT_FALSE(seen[flat]);
                    seen[flat] = true;
                }
}

TEST(AddressMap, CapacityPow2MatchesSingleChannelLayoutWithinWindow)
{
    // Within channel 0's window the kCapacity layout must equal the
    // legacy single-channel kNone layout bit-for-bit — this is what
    // keeps a 1x1 topology's traces byte-identical.
    DramGeometry one;
    one.channels = 1;
    one.channel_bytes = 1ULL << 30;
    DramGeometry four = one;
    four.channels = 4;
    AddressMap legacy(one, ChannelInterleave::kNone);
    AddressMap capacity(four, ChannelInterleave::kCapacity);
    Rng rng(13);
    for (int i = 0; i < 1000; ++i) {
        const Addr addr = lineAlign(rng.below(one.channel_bytes));
        auto a = legacy.decompose(addr);
        auto b = capacity.decompose(addr);
        EXPECT_EQ(b.channel, 0u);
        b.channel = a.channel; // the only field allowed to differ
        EXPECT_EQ(a, b);
    }
}

TEST(AddressMap, CoordFieldsWithinGeometry)
{
    DramGeometry g;
    g.channels = 2;
    AddressMap map(g, ChannelInterleave::kLine);
    Rng rng(5);
    for (int i = 0; i < 1000; ++i) {
        const auto coord = map.decompose(
            lineAlign(rng.below(g.channel_bytes * g.channels)));
        EXPECT_LT(coord.channel, g.channels);
        EXPECT_LT(coord.rank, g.ranks);
        EXPECT_LT(coord.bank_group, g.bank_groups);
        EXPECT_LT(coord.bank, g.banks_per_group);
        EXPECT_LT(coord.col, g.linesPerRow());
    }
}

} // namespace
