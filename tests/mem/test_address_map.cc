/**
 * @file
 * Address mapping: decompose/compose inverse property (the on-DIMM
 * Addr Remap correctness), interleaving layouts, and geometry limits.
 */

#include <gtest/gtest.h>

#include "common/random.h"
#include "mem/address_map.h"

namespace {

using namespace sd;
using mem::AddressMap;
using mem::ChannelInterleave;
using mem::DramCoord;
using mem::DramGeometry;

TEST(AddressMap, ComposeInvertsDecomposeSingleChannel)
{
    DramGeometry g;
    g.channels = 1;
    AddressMap map(g, ChannelInterleave::kNone);
    Rng rng(1);
    for (int i = 0; i < 2000; ++i) {
        const Addr addr = lineAlign(rng.below(g.channel_bytes));
        EXPECT_EQ(map.compose(map.decompose(addr)), addr);
    }
}

TEST(AddressMap, ComposeInvertsDecomposeLineInterleave)
{
    DramGeometry g;
    g.channels = 4;
    AddressMap map(g, ChannelInterleave::kLine);
    Rng rng(2);
    for (int i = 0; i < 2000; ++i) {
        const Addr addr =
            lineAlign(rng.below(g.channel_bytes * g.channels));
        EXPECT_EQ(map.compose(map.decompose(addr)), addr);
    }
}

TEST(AddressMap, ComposeInvertsDecomposePageInterleave)
{
    DramGeometry g;
    g.channels = 2;
    AddressMap map(g, ChannelInterleave::kPage);
    Rng rng(3);
    for (int i = 0; i < 2000; ++i) {
        const Addr addr =
            lineAlign(rng.below(g.channel_bytes * g.channels));
        EXPECT_EQ(map.compose(map.decompose(addr)), addr);
    }
}

TEST(AddressMap, LineInterleaveRotatesChannels)
{
    DramGeometry g;
    g.channels = 4;
    AddressMap map(g, ChannelInterleave::kLine);
    for (Addr line = 0; line < 16; ++line) {
        const auto coord = map.decompose(line * kCacheLineSize);
        EXPECT_EQ(coord.channel, line % 4);
    }
}

TEST(AddressMap, PageInterleaveKeepsPageTogether)
{
    DramGeometry g;
    g.channels = 2;
    AddressMap map(g, ChannelInterleave::kPage);
    // All 64 lines of one page map to one channel.
    for (Addr page = 0; page < 8; ++page) {
        const unsigned ch =
            map.decompose(page * kPageSize).channel;
        for (Addr l = 0; l < kLinesPerPage; ++l)
            EXPECT_EQ(
                map.decompose(page * kPageSize + l * kCacheLineSize)
                    .channel,
                ch);
        EXPECT_EQ(ch, page % 2);
    }
}

TEST(AddressMap, SingleChannelModeUsesChannelZero)
{
    DramGeometry g;
    g.channels = 1;
    AddressMap map(g, ChannelInterleave::kNone);
    Rng rng(4);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(map.decompose(lineAlign(rng.below(1ULL << 34))).channel,
                  0u);
}

TEST(AddressMap, SequentialPagesStripeAcrossBanks)
{
    DramGeometry g;
    g.channels = 1;
    AddressMap map(g, ChannelInterleave::kNone);
    // Consecutive rows-worth of data land in different banks before
    // reusing a bank (col bits below bank bits).
    const auto c0 = map.decompose(0);
    const auto c1 = map.decompose(g.row_bytes);
    EXPECT_NE(c0.flatBank(g), c1.flatBank(g));
}

TEST(AddressMap, CoordFieldsWithinGeometry)
{
    DramGeometry g;
    g.channels = 2;
    AddressMap map(g, ChannelInterleave::kLine);
    Rng rng(5);
    for (int i = 0; i < 1000; ++i) {
        const auto coord = map.decompose(
            lineAlign(rng.below(g.channel_bytes * g.channels)));
        EXPECT_LT(coord.channel, g.channels);
        EXPECT_LT(coord.rank, g.ranks);
        EXPECT_LT(coord.bank_group, g.bank_groups);
        EXPECT_LT(coord.bank, g.banks_per_group);
        EXPECT_LT(coord.col, g.linesPerRow());
    }
}

} // namespace
