/**
 * @file
 * CxlLink unit tests: round-trip flight time, serialization at the
 * configured line rate, FIFO queueing on the shared wire, and the
 * kCxlLinkStall injection point with its conservation counters.
 */

#include <gtest/gtest.h>

#include <vector>

#include "fault/fault.h"
#include "mem/cxl_link.h"
#include "sim/event_queue.h"

namespace {

using namespace sd;
using mem::CxlLink;
using mem::CxlLinkConfig;

TEST(CxlLink, ChargesRoundTripPlusSerialization)
{
    EventQueue events;
    CxlLinkConfig config;
    config.round_trip_ns = 600.0;
    config.gbps = 32.0;
    CxlLink link(events, config);

    // 600 ns round trip = 600'000 ticks; 64 B at 32 GB/s = 2'000 ticks.
    EXPECT_EQ(link.roundTripTicks(), 600'000);

    Tick delivered = 0;
    link.transfer(kCacheLineSize, [&](Tick at) { delivered = at; });
    events.run();
    EXPECT_EQ(delivered, 600'000 + 2'000);
    EXPECT_EQ(link.stats().transfers, 1u);
    EXPECT_EQ(link.stats().bytes, kCacheLineSize);
    EXPECT_EQ(link.stats().queued, 0u);
}

TEST(CxlLink, FasterLinkSerializesSooner)
{
    EventQueue events;
    CxlLinkConfig slow;
    slow.gbps = 8.0;
    CxlLinkConfig fast;
    fast.gbps = 64.0;
    CxlLink slow_link(events, slow);
    CxlLink fast_link(events, fast);

    Tick slow_at = 0, fast_at = 0;
    slow_link.transfer(4096, [&](Tick at) { slow_at = at; });
    fast_link.transfer(4096, [&](Tick at) { fast_at = at; });
    events.run();
    EXPECT_GT(slow_at, fast_at);
}

TEST(CxlLink, BackToBackTransfersQueueFifoOnTheWire)
{
    EventQueue events;
    CxlLinkConfig config;
    config.round_trip_ns = 300.0;
    config.gbps = 32.0;
    CxlLink link(events, config);

    std::vector<Tick> deliveries;
    for (int i = 0; i < 3; ++i)
        link.transfer(kCacheLineSize,
                      [&](Tick at) { deliveries.push_back(at); });
    events.run();

    ASSERT_EQ(deliveries.size(), 3u);
    // FIFO: each flit waits for the wire, so deliveries are spaced by
    // exactly one serialization time (2'000 ticks at 64 B / 32 GB/s).
    EXPECT_EQ(deliveries[1] - deliveries[0], 2'000);
    EXPECT_EQ(deliveries[2] - deliveries[1], 2'000);
    EXPECT_EQ(link.stats().queued, 2u);
    EXPECT_EQ(link.stats().queue_ticks, 2'000 + 4'000);
    EXPECT_EQ(link.stats().busy_ticks, 3 * 2'000);
}

TEST(CxlLink, StallFaultAddsPenaltyAndCounts)
{
    EventQueue events;
    CxlLinkConfig config;
    config.round_trip_ns = 600.0;
    config.gbps = 32.0;
    config.stall_ns = 250.0;
    CxlLink link(events, config);

    fault::FaultPlan plan(11);
    plan.add(fault::Site::kCxlLinkStall, /*skip=*/0, /*count=*/1);
    link.setFaultPlan(&plan);

    Tick stalled = 0, clean = 0;
    link.transfer(kCacheLineSize, [&](Tick at) { stalled = at; });
    events.run();
    link.transfer(kCacheLineSize, [&](Tick at) { clean = at; });
    events.run();

    // The stalled transfer pays exactly one 250 ns retry episode on
    // top of serialization + round trip; the rule-exhausted clean one
    // (issued at the first delivery tick, wire already free) does not.
    EXPECT_EQ(stalled, 250'000 + 2'000 + 600'000);
    EXPECT_EQ(clean, stalled + 2'000 + 600'000);
    EXPECT_EQ(link.stats().injected_stalls, 1u);
    EXPECT_EQ(link.stats().injected_stalls,
              plan.injected(fault::Site::kCxlLinkStall));
}

TEST(CxlLink, ScopedRuleRespectsChannelScope)
{
    EventQueue events;
    CxlLink link(events, CxlLinkConfig{});
    link.setFaultScope({/*channel=*/2, /*dimm=*/-1});

    auto plan = fault::FaultPlan::fromSpec("cxl[1]/cxl_link_stall", 3);
    ASSERT_TRUE(plan.has_value());
    link.setFaultPlan(&*plan);
    link.transfer(kCacheLineSize, [](Tick) {});
    events.run();
    EXPECT_EQ(link.stats().injected_stalls, 0u)
        << "a rule scoped to channel 1 must not fire on channel 2";

    auto hit = fault::FaultPlan::fromSpec("cxl[2]/cxl_link_stall", 3);
    ASSERT_TRUE(hit.has_value());
    link.setFaultPlan(&*hit);
    link.transfer(kCacheLineSize, [](Tick) {});
    events.run();
    EXPECT_EQ(link.stats().injected_stalls, 1u);
}

} // namespace
