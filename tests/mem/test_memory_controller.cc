/**
 * @file
 * Memory controller: data round trips, FR-FCFS row hits, write
 * batching (the rd->wr slack SmartDIMM depends on), ALERT_N retry,
 * and command-trace observation.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "cache/memory_system.h"
#include "common/random.h"
#include "mem/backing_store.h"
#include "mem/memory_controller.h"
#include "sim/event_queue.h"

namespace {

using namespace sd;
using mem::AddressMap;
using mem::ChannelInterleave;
using mem::ControllerConfig;
using mem::DdrCommand;
using mem::DdrCommandType;
using mem::DramGeometry;
using mem::DramTiming;
using mem::MemoryController;

/** Device that delays read-readiness to exercise ALERT_N. */
class AlertingDimm : public mem::DimmDevice
{
  public:
    explicit AlertingDimm(mem::BackingStore &store) : store_(store) {}

    void onCommand(const DdrCommand &) override {}

    mem::ReadResponse
    onRead(const DdrCommand &cmd, std::uint8_t *data) override
    {
        if (alerts_remaining_ > 0) {
            --alerts_remaining_;
            return mem::ReadResponse::kAlertN;
        }
        store_.read(cmd.addr, data, kCacheLineSize);
        return mem::ReadResponse::kOk;
    }

    void
    onWrite(const DdrCommand &cmd, const std::uint8_t *data) override
    {
        store_.write(cmd.addr, data, kCacheLineSize);
    }

    int alerts_remaining_ = 0;

  private:
    mem::BackingStore &store_;
};

/** Records every command with its issue tick. */
class Tracer : public mem::CommandObserver
{
  public:
    void observe(const DdrCommand &cmd) override { trace.push_back(cmd); }
    std::vector<DdrCommand> trace;
};

struct Rig
{
    EventQueue events;
    mem::BackingStore store;
    DramGeometry geometry;
    AddressMap map;
    AlertingDimm dimm;
    MemoryController mc;
    Tracer tracer;

    Rig()
        : geometry(makeGeometry()), map(geometry, ChannelInterleave::kNone),
          dimm(store), mc(events, map, DramTiming{}, ControllerConfig{},
                          0, dimm)
    {
        mc.setObserver(&tracer);
    }

    static DramGeometry
    makeGeometry()
    {
        DramGeometry g;
        g.channels = 1;
        return g;
    }

    void
    writeSync(Addr addr, const std::uint8_t *data)
    {
        bool done = false;
        mc.enqueueWrite(addr, data,
                        [&](Tick, mem::MemStatus) { done = true; });
        while (!done)
            events.run();
    }

    void
    readSync(Addr addr, std::uint8_t *data)
    {
        bool done = false;
        mc.enqueueRead(addr, data,
                       [&](Tick, mem::MemStatus) { done = true; });
        while (!done)
            events.run();
    }
};

TEST(MemoryController, WriteThenReadRoundTrip)
{
    Rig rig;
    Rng rng(1);
    std::uint8_t line[64];
    rng.fill(line, 64);
    rig.writeSync(0x10000, line);

    std::uint8_t back[64] = {};
    rig.readSync(0x10000, back);
    EXPECT_EQ(0, std::memcmp(line, back, 64));
}

TEST(MemoryController, ManyLinesRoundTrip)
{
    Rig rig;
    Rng rng(2);
    std::vector<std::uint8_t> data(64 * 256);
    rng.fill(data.data(), data.size());

    for (int i = 0; i < 256; ++i)
        rig.writeSync(0x40000 + i * 64ull, data.data() + i * 64);
    std::vector<std::uint8_t> back(data.size());
    for (int i = 0; i < 256; ++i)
        rig.readSync(0x40000 + i * 64ull, back.data() + i * 64);
    EXPECT_EQ(back, data);
}

TEST(MemoryController, SequentialReadsAreRowHits)
{
    Rig rig;
    std::uint8_t buf[64];
    // 32 sequential lines in one row (8 KB row = 128 lines).
    for (int i = 0; i < 32; ++i)
        rig.readSync(i * 64ull, buf);
    const auto &stats = rig.mc.stats();
    EXPECT_EQ(stats.reads, 32u);
    EXPECT_GE(stats.row_hits, 31u); // first may ACT
}

TEST(MemoryController, RowConflictsGeneratePrecharges)
{
    Rig rig;
    std::uint8_t buf[64];
    const auto &g = rig.geometry;
    // Alternate between two rows of the same bank: row stride =
    // row_bytes * totalBanks in this layout.
    const Addr stride = g.row_bytes * g.totalBanks();
    for (int i = 0; i < 8; ++i)
        rig.readSync((i % 2) * stride, buf);
    EXPECT_GT(rig.mc.stats().row_conflicts, 0u);

    int precharges = 0;
    for (const auto &cmd : rig.tracer.trace)
        precharges += cmd.type == DdrCommandType::kPrecharge;
    EXPECT_GT(precharges, 0);
}

TEST(MemoryController, CommandStreamShape)
{
    Rig rig;
    std::uint8_t buf[64];
    rig.readSync(0x2000, buf);
    // First access: ACT then rdCAS, in that order.
    ASSERT_GE(rig.tracer.trace.size(), 2u);
    EXPECT_EQ(rig.tracer.trace[0].type, DdrCommandType::kActivate);
    EXPECT_EQ(rig.tracer.trace[1].type, DdrCommandType::kReadCas);
    EXPECT_LE(rig.tracer.trace[0].issue, rig.tracer.trace[1].issue);
    // Slot ids stay within the 4-slot encoding.
    for (const auto &cmd : rig.tracer.trace)
        EXPECT_LT(cmd.slot, 4u);
}

TEST(MemoryController, ReadLatencyIsRealistic)
{
    Rig rig;
    std::uint8_t buf[64];
    const Tick start = rig.events.now();
    rig.readSync(0x3000, buf);
    const Tick latency = rig.events.now() - start;
    // ACT + tRCD + tCL + burst at DDR4-3200: ~30-60 ns.
    EXPECT_GT(latency, 20'000u);  // > 20 ns
    EXPECT_LT(latency, 120'000u); // < 120 ns
}

TEST(MemoryController, AlertNRetriesUntilReady)
{
    Rig rig;
    std::uint8_t line[64] = {0x5a};
    rig.writeSync(0x5000, line);

    rig.dimm.alerts_remaining_ = 3;
    std::uint8_t back[64] = {};
    rig.readSync(0x5000, back);
    EXPECT_EQ(back[0], 0x5a);
    EXPECT_EQ(rig.mc.stats().alert_retries, 3u);
}

TEST(MemoryController, WritesBatchBeforeDraining)
{
    Rig rig;
    // Fill the write queue below the high watermark while reads are
    // pending: writes should wait (no interleaved drain), creating the
    // rd->wr slack.
    std::uint8_t line[64] = {1};
    int writes_done = 0;
    for (int i = 0; i < 24; ++i)
        rig.mc.enqueueWrite(0x9000 + i * 64ull, line,
                            [&](Tick, mem::MemStatus) { ++writes_done; });
    std::uint8_t buf[64];
    bool read_done = false;
    rig.mc.enqueueRead(0x100000, buf,
                       [&](Tick, mem::MemStatus) { read_done = true; });
    rig.events.run();
    EXPECT_TRUE(read_done);
    EXPECT_EQ(writes_done, 24);
    EXPECT_GT(rig.mc.stats().turnarounds, 0u);
}

TEST(MemoryController, BandwidthAccounting)
{
    Rig rig;
    std::uint8_t line[64] = {};
    for (int i = 0; i < 10; ++i)
        rig.writeSync(i * 64ull, line);
    std::uint8_t buf[64];
    for (int i = 0; i < 6; ++i)
        rig.readSync(i * 64ull, buf);
    EXPECT_EQ(rig.mc.stats().bytesMoved(), (10u + 6u) * 64u);
    EXPECT_GT(rig.mc.busBusyCycles(), 0u);
}

} // namespace
