/**
 * @file
 * Scheduler-wakeup coalescing regression test. Coalescing is purely a
 * simulator-speed optimisation: a wakeup already covered by a pending
 * pass at an earlier-or-equal tick is dropped instead of scheduling a
 * redundant event. The DDR command stream — every command's type,
 * bank coordinate, address and issue tick — must be bit-identical
 * with coalescing on or off; only the number of *executed events*
 * may differ (fewer when coalesced).
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "mem/backing_store.h"
#include "mem/memory_controller.h"
#include "sim/event_queue.h"

namespace {

using namespace sd;
using mem::AddressMap;
using mem::ChannelInterleave;
using mem::ControllerConfig;
using mem::DdrCommand;
using mem::DramGeometry;
using mem::DramTiming;
using mem::MemoryController;

/** Plain DRAM backed by the store. */
class Dimm : public mem::DimmDevice
{
  public:
    explicit Dimm(mem::BackingStore &store) : store_(store) {}
    void onCommand(const DdrCommand &) override {}
    mem::ReadResponse
    onRead(const DdrCommand &cmd, std::uint8_t *data) override
    {
        store_.read(cmd.addr, data, kCacheLineSize);
        return mem::ReadResponse::kOk;
    }
    void
    onWrite(const DdrCommand &cmd, const std::uint8_t *data) override
    {
        store_.write(cmd.addr, data, kCacheLineSize);
    }

  private:
    mem::BackingStore &store_;
};

class Tracer : public mem::CommandObserver
{
  public:
    void observe(const DdrCommand &cmd) override { trace.push_back(cmd); }
    std::vector<DdrCommand> trace;
};

struct RunResult
{
    std::vector<DdrCommand> trace;
    std::uint64_t executed = 0;
    std::uint64_t sched_passes = 0;
    std::uint64_t wakeups_requested = 0;
    std::uint64_t wakeups_coalesced = 0;
    Tick final_tick = 0;
};

/**
 * A deterministic workload designed to provoke redundant wakeups:
 * bursts of reads and writes across several banks and rows, arriving
 * both back-to-back (many enqueues before the first pass runs) and
 * staggered through time (enqueues landing while a pass is pending).
 */
RunResult
runWorkload(bool coalesce)
{
    EventQueue events;
    mem::BackingStore store;
    DramGeometry geometry;
    geometry.channels = 1;
    AddressMap map(geometry, ChannelInterleave::kNone);
    Dimm dimm(store);
    MemoryController mc(events, map, DramTiming{}, ControllerConfig{}, 0,
                        dimm);
    mc.setCoalesceWakeups(coalesce);
    Tracer tracer;
    mc.setObserver(&tracer);

    const Addr bank_stride = geometry.row_bytes;
    const Addr row_stride = geometry.row_bytes * geometry.totalBanks();
    Rng rng(7);
    std::vector<std::uint8_t> line(kCacheLineSize);
    rng.fill(line.data(), line.size());

    int outstanding = 0;
    std::vector<std::uint8_t> bufs(kCacheLineSize * 64);

    // Burst 1: back-to-back enqueues (row hits, conflicts and bank
    // switches all present).
    for (int i = 0; i < 16; ++i) {
        const Addr addr = (i % 4) * bank_stride + (i % 2) * row_stride +
                          (i / 4) * kCacheLineSize;
        ++outstanding;
        if (i % 3 == 0)
            mc.enqueueWrite(addr, line.data(),
                            [&](Tick, mem::MemStatus) { --outstanding; });
        else
            mc.enqueueRead(addr, bufs.data() + (i % 64) * kCacheLineSize,
                           [&](Tick, mem::MemStatus) { --outstanding; });
    }

    // Burst 2: staggered arrivals landing while passes are pending.
    for (int i = 0; i < 24; ++i) {
        const Tick at = 1'000 + static_cast<Tick>(i) * 700;
        events.schedule(at, [&, i] {
            const Addr addr = (i % 8) * bank_stride +
                              ((i / 8) % 3) * row_stride +
                              (i % 16) * kCacheLineSize;
            ++outstanding;
            if (i % 4 == 1)
                mc.enqueueWrite(addr, line.data(), [&](Tick, mem::MemStatus) {
                    --outstanding;
                });
            else
                mc.enqueueRead(addr,
                               bufs.data() + (i % 64) * kCacheLineSize,
                               [&](Tick, mem::MemStatus) { --outstanding; });
        });
    }

    events.run();
    EXPECT_EQ(outstanding, 0);
    EXPECT_EQ(mc.pending(), 0u);

    RunResult result;
    result.trace = tracer.trace;
    result.executed = events.executed();
    result.sched_passes = mc.stats().sched_passes;
    result.wakeups_requested = mc.stats().wakeups_requested;
    result.wakeups_coalesced = mc.stats().wakeups_coalesced;
    result.final_tick = events.now();
    return result;
}

TEST(WakeupCoalescing, CommandStreamIsIdentical)
{
    const RunResult on = runWorkload(true);
    const RunResult off = runWorkload(false);

    ASSERT_EQ(on.trace.size(), off.trace.size());
    for (std::size_t i = 0; i < on.trace.size(); ++i) {
        const DdrCommand &a = on.trace[i];
        const DdrCommand &b = off.trace[i];
        EXPECT_EQ(a.type, b.type) << "command " << i;
        EXPECT_EQ(a.addr, b.addr) << "command " << i;
        EXPECT_EQ(a.issue, b.issue) << "command " << i;
        EXPECT_EQ(a.slot, b.slot) << "command " << i;
        EXPECT_EQ(a.coord.channel, b.coord.channel) << "command " << i;
        EXPECT_EQ(a.coord.rank, b.coord.rank) << "command " << i;
        EXPECT_EQ(a.coord.bank_group, b.coord.bank_group) << "command " << i;
        EXPECT_EQ(a.coord.bank, b.coord.bank) << "command " << i;
        EXPECT_EQ(a.coord.row, b.coord.row) << "command " << i;
    }
    EXPECT_EQ(on.final_tick, off.final_tick);
}

TEST(WakeupCoalescing, CoalescingExecutesFewerEvents)
{
    const RunResult on = runWorkload(true);
    const RunResult off = runWorkload(false);

    // The workload provokes wakeups already covered by a pending
    // pass; coalesced mode must actually drop some...
    EXPECT_GT(on.wakeups_coalesced, 0u);
    // ...which shows up as strictly fewer scheduler passes and no
    // more executed events than the uncoalesced run.
    EXPECT_LT(on.sched_passes, off.sched_passes);
    EXPECT_LE(on.executed, off.executed);
    // Wakeup accounting is conserved: every request was coalesced,
    // ran a pass, or was superseded by an earlier wakeup (which ran
    // instead) — so passes + coalesced never exceeds requests.
    EXPECT_GE(on.wakeups_requested,
              on.sched_passes + on.wakeups_coalesced);
    // Uncoalesced mode never drops a wakeup: one pass per request.
    EXPECT_EQ(off.wakeups_coalesced, 0u);
    EXPECT_EQ(off.sched_passes, off.wakeups_requested);
}

} // namespace
