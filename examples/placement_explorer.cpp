/**
 * @file
 * Placement explorer: an interactive-style sweep over the server
 * system model — message sizes x placements x connection counts —
 * printing where each accelerator placement wins. This is the tool a
 * capacity planner would use to decide between CPU, SmartNIC, PCIe
 * and SmartDIMM deployment for a given ULP mix (the Fig. 13
 * decision, quantified).
 *
 * Run: ./build/examples/placement_explorer [tls|deflate]
 */

#include <cstdio>
#include <cstring>
#include <string>

#include "app/server_model.h"

using namespace sd;

namespace {

void
sweepUlp(offload::Ulp ulp, const char *label)
{
    std::printf("\n%s — best placement per operating point\n", label);
    std::printf("%-10s", "msg\\conns");
    const unsigned conn_points[] = {128, 512, 1024, 2048};
    for (unsigned conns : conn_points)
        std::printf(" %16u", conns);
    std::printf("\n");

    for (std::size_t msg : {1024ul, 4096ul, 16384ul, 65536ul}) {
        std::printf("%-10zu", msg);
        for (unsigned conns : conn_points) {
            double best_rps = 0;
            std::string best = "-";
            for (auto kind : {offload::PlacementKind::kCpu,
                              offload::PlacementKind::kSmartNic,
                              offload::PlacementKind::kQuickAssist,
                              offload::PlacementKind::kSmartDimm}) {
                app::ServerConfig cfg;
                cfg.ulp = ulp;
                cfg.message_bytes = msg;
                cfg.connections = conns;
                cfg.placement = kind;
                const auto r = app::evaluateServer(cfg);
                if (r.supported && r.rps > best_rps) {
                    best_rps = r.rps;
                    best = r.placement_name;
                }
            }
            char cell[32];
            std::snprintf(cell, sizeof(cell), "%s %.0fk",
                          best.c_str(), best_rps / 1000.0);
            std::printf(" %16s", cell);
        }
        std::printf("\n");
    }
}

} // namespace

int
main(int argc, char **argv)
{
    std::printf("Accelerator placement explorer\n"
                "==============================\n");

    const bool only_tls =
        argc > 1 && std::strcmp(argv[1], "tls") == 0;
    const bool only_deflate =
        argc > 1 && std::strcmp(argv[1], "deflate") == 0;

    if (!only_deflate)
        sweepUlp(offload::Ulp::kTlsEncrypt, "TLS encryption");
    if (!only_tls)
        sweepUlp(offload::Ulp::kDeflate, "Deflate compression");

    std::printf(
        "\nReading: the CPU keeps small/quiet points; SmartDIMM takes\n"
        "over as contention (connections) grows, and owns compression\n"
        "outright; the SmartNIC competes only for large TLS records.\n");
    return 0;
}
