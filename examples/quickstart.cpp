/**
 * @file
 * Quickstart: bring up a simulated system with SmartDIMMs behind the
 * memory controller(s), offload the encryption of one TLS record per
 * device with CompCpy, and verify the bytes that land in simulated
 * DRAM against a software AES-GCM reference.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart              # 1 channel x 1 DIMM
 *   SD_TOPOLOGY=2x2 ./build/examples/quickstart   # 2 channels x 2 DIMMs
 */

#include <cstdio>
#include <cstring>
#include <vector>

#include "common/random.h"
#include "compcpy/compcpy.h"
#include "crypto/aes_gcm.h"
#include "topo/topology.h"
#include "trace/trace.h"

using namespace sd;

int
main()
{
    std::printf("SmartDIMM quickstart\n====================\n\n");

    // 1. The simulated platform: N DDR4 channels x M SmartDIMM buffer
    //    devices each, fronted by a 32 MB LLC. The topology factory
    //    wires the address map, MMIO windows, drivers and engines;
    //    SD_TOPOLOGY=CxD (e.g. 2x2) scales it out.
    topo::Topology topo(topo::TopologySpec::fromEnv());
    std::printf("topology: %u channel(s) x %u DIMM(s)/channel\n\n",
                topo.channels(), topo.dimmsPerChannel());

    // Trace the run: every CompCpy opens a span; each pipeline stage
    // records cycle-stamped events into it.
    trace::tracer().enable();

    // 2. Per device: stage a 4 KB plaintext record and CompCpy it —
    //    the copy *is* the offload; the DSA encrypts inline as the
    //    data crosses that device's DDR channel.
    Rng rng(2024);
    bool all_ok = true;
    for (unsigned s = 0; s < topo.slotCount(); ++s) {
        topo::Topology::Slot &slot = topo.slot(s);
        compcpy::CompCpyEngine &compcpy = slot.engine;

        std::vector<std::uint8_t> plaintext(4096);
        rng.fill(plaintext.data(), plaintext.size());
        std::uint8_t key[16];
        rng.fill(key, sizeof(key));
        crypto::GcmIv iv{};
        rng.fill(iv.data(), iv.size());

        const Addr sbuf = slot.driver.alloc(4096);
        const Addr dbuf = slot.driver.alloc(8192); // room for the tag
        topo.memory().writeSync(sbuf, plaintext.data(),
                                plaintext.size());

        compcpy::CompCpyParams params;
        params.sbuf = sbuf;
        params.dbuf = dbuf;
        params.size = plaintext.size();
        params.ulp = smartdimm::UlpKind::kTlsEncrypt;
        params.message_id = 1;
        std::memcpy(params.key, key, sizeof(key));
        params.iv = iv;
        compcpy.run(params);

        // 3. USE(dbuf): flush so the Scratchpad self-recycles into
        //    DRAM, then read the record (ciphertext || tag) back.
        compcpy.useSync(dbuf, 8192);
        const auto record =
            compcpy.readResult(dbuf, plaintext.size() + 16);

        // 4. Verify against the software reference.
        crypto::GcmContext reference(key, crypto::Aes::KeySize::k128);
        std::vector<std::uint8_t> expected(plaintext.size());
        const crypto::GcmTag tag = reference.encrypt(
            iv, plaintext.data(), plaintext.size(), expected.data());

        const bool cipher_ok = std::memcmp(record.data(),
                                           expected.data(),
                                           expected.size()) == 0;
        const bool tag_ok =
            std::memcmp(record.data() + expected.size(), tag.data(),
                        16) == 0;
        all_ok = all_ok && cipher_ok && tag_ok;

        const auto &arb = slot.device.stats();
        std::printf("ch%u.d%u: ciphertext %s, tag %s "
                    "(sbuf rdCAS %llu, recycles %llu, ALERT_N %llu)\n",
                    slot.channel, slot.dimm, cipher_ok ? "ok" : "BAD",
                    tag_ok ? "ok" : "BAD",
                    static_cast<unsigned long long>(arb.sbuf_reads),
                    static_cast<unsigned long long>(arb.dbuf_recycles),
                    static_cast<unsigned long long>(arb.alert_n));
    }

    // 5. Dump the trace: stats registry (per-device component names)
    //    + the span report. Every span should have seen every stage.
    trace::StatsRegistry registry;
    topo.registerStats(registry);
    trace::tracer().writeJsonFile("quickstart_trace.json", &registry);

    std::printf("\ntrace: %zu span(s), %zu events "
                "-> quickstart_trace.json\n",
                trace::tracer().spans().size(),
                trace::tracer().events().size());
    bool all_stages = true;
#ifdef SD_TRACE_DISABLED
    std::printf("  (stage events compiled out: SD_TRACE_DISABLED)\n");
#else
    for (auto stage :
         {trace::Stage::kFlush, trace::Stage::kRegister,
          trace::Stage::kCopy, trace::Stage::kTransform,
          trace::Stage::kStage, trace::Stage::kRecycle,
          trace::Stage::kUse}) {
        bool seen = true;
        for (std::uint32_t span = 1; span <= topo.slotCount(); ++span)
            seen = seen && trace::tracer().spanHasStage(span, stage);
        std::printf("  stage %-9s : %s\n", trace::stageName(stage),
                    seen ? "seen" : "MISSING");
        all_stages = all_stages && seen;
    }
#endif

    std::printf("\nsimulated time: %.2f us\n",
                static_cast<double>(topo.events().now()) / 1e6);
    return all_ok && all_stages ? 0 : 1;
}
