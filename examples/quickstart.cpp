/**
 * @file
 * Quickstart: bring up a simulated single-channel system with a
 * SmartDIMM behind the memory controller, offload the encryption of
 * one TLS record with CompCpy, and verify the bytes that land in
 * simulated DRAM against a software AES-GCM reference.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <cstdio>
#include <cstring>
#include <vector>

#include "cache/memory_system.h"
#include "common/random.h"
#include "compcpy/compcpy.h"
#include "compcpy/driver.h"
#include "crypto/aes_gcm.h"
#include "sim/event_queue.h"
#include "smartdimm/buffer_device.h"
#include "trace/trace.h"

using namespace sd;

int
main()
{
    std::printf("SmartDIMM quickstart\n====================\n\n");

    // 1. The simulated platform: one DDR4 channel terminated by a
    //    SmartDIMM buffer device, fronted by a 32 MB LLC.
    EventQueue events;
    mem::BackingStore dram;
    mem::DramGeometry geometry;
    geometry.channels = 1;
    mem::AddressMap map(geometry, mem::ChannelInterleave::kNone);
    smartdimm::BufferDevice smartdimm_device(events, map, dram);

    cache::CacheConfig llc;
    llc.size_bytes = 32ull << 20;
    cache::MemorySystem memory(events, geometry,
                               mem::ChannelInterleave::kNone, llc,
                               {&smartdimm_device});

    // 2. The software stack: driver-managed buffers + CompCpy engine.
    compcpy::Driver driver(/*base=*/1ULL << 20, /*bytes=*/256ULL << 20);
    compcpy::CompCpyEngine::SharedState shared;
    compcpy::CompCpyEngine compcpy(memory, driver, shared);

    // Trace the run: every CompCpy opens a span; each pipeline stage
    // records cycle-stamped events into it.
    trace::tracer().enable();

    // 3. A 4 KB plaintext record and its key material.
    Rng rng(2024);
    std::vector<std::uint8_t> plaintext(4096);
    rng.fill(plaintext.data(), plaintext.size());
    std::uint8_t key[16];
    rng.fill(key, sizeof(key));
    crypto::GcmIv iv{};
    rng.fill(iv.data(), iv.size());

    // 4. Stage the plaintext and CompCpy it: the copy *is* the
    //    offload — the DSA encrypts inline as the data crosses the
    //    DDR channel.
    const Addr sbuf = driver.alloc(4096);
    const Addr dbuf = driver.alloc(8192); // room for the tag trailer
    memory.writeSync(sbuf, plaintext.data(), plaintext.size());

    compcpy::CompCpyParams params;
    params.sbuf = sbuf;
    params.dbuf = dbuf;
    params.size = plaintext.size();
    params.ulp = smartdimm::UlpKind::kTlsEncrypt;
    params.message_id = 1;
    std::memcpy(params.key, key, sizeof(key));
    params.iv = iv;
    compcpy.run(params);

    // 5. USE(dbuf): flush so the Scratchpad self-recycles into DRAM,
    //    then read the record body (ciphertext || tag) back.
    compcpy.useSync(dbuf, 8192);
    const auto record = compcpy.readResult(dbuf, plaintext.size() + 16);

    // 6. Verify against the software reference.
    crypto::GcmContext reference(key, crypto::Aes::KeySize::k128);
    std::vector<std::uint8_t> expected(plaintext.size());
    const crypto::GcmTag tag = reference.encrypt(
        iv, plaintext.data(), plaintext.size(), expected.data());

    const bool cipher_ok =
        std::memcmp(record.data(), expected.data(), expected.size()) == 0;
    const bool tag_ok =
        std::memcmp(record.data() + expected.size(), tag.data(), 16) == 0;

    std::printf("ciphertext matches software AES-GCM : %s\n",
                cipher_ok ? "yes" : "NO");
    std::printf("trailer tag matches                  : %s\n",
                tag_ok ? "yes" : "NO");

    const auto &arb = smartdimm_device.stats();
    std::printf("\ndevice activity:\n");
    std::printf("  sbuf rdCAS fed to the DSA : %llu\n",
                static_cast<unsigned long long>(arb.sbuf_reads));
    std::printf("  self-recycle drains       : %llu\n",
                static_cast<unsigned long long>(arb.dbuf_recycles));
    std::printf("  ALERT_N retries           : %llu\n",
                static_cast<unsigned long long>(arb.alert_n));
    std::printf("  scratchpad pages live     : %zu\n",
                smartdimm_device.scratchpad().livePages());
    // 7. Dump the trace: stats registry + the span report. The span
    //    should have seen every pipeline stage.
    trace::StatsRegistry registry;
    memory.registerStats(registry);
    registry.add("compcpy", [&compcpy](trace::StatsBlock &block) {
        compcpy.reportStats(block);
    });
    registry.add("dimm", [&smartdimm_device](trace::StatsBlock &block) {
        smartdimm_device.reportStats(block);
    });
    trace::tracer().writeJsonFile("quickstart_trace.json", &registry);

    std::printf("\ntrace: %zu span(s), %zu events "
                "-> quickstart_trace.json\n",
                trace::tracer().spans().size(),
                trace::tracer().events().size());
    bool all_stages = true;
#ifdef SD_TRACE_DISABLED
    std::printf("  (stage events compiled out: SD_TRACE_DISABLED)\n");
#else
    for (auto stage :
         {trace::Stage::kFlush, trace::Stage::kRegister,
          trace::Stage::kCopy, trace::Stage::kTransform,
          trace::Stage::kStage, trace::Stage::kRecycle,
          trace::Stage::kUse}) {
        const bool seen = trace::tracer().spanHasStage(1, stage);
        std::printf("  stage %-9s : %s\n", trace::stageName(stage),
                    seen ? "seen" : "MISSING");
        all_stages = all_stages && seen;
    }
#endif

    std::printf("\nsimulated time: %.2f us\n",
                static_cast<double>(events.now()) / 1e6);
    return cipher_ok && tag_ok && all_stages ? 0 : 1;
}
