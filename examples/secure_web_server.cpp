/**
 * @file
 * Adaptive HTTPS serving: the scenario of Fig. 1/Fig. 8. An
 * OpenSSL-engine-like adaptive dispatcher protects TLS records on the
 * CPU while the LLC is quiet and switches to SmartDIMM CompCpy when
 * the miss-rate probe crosses the contention threshold. Every record,
 * whichever path produced it, decrypts correctly at the "client".
 *
 * Run: ./build/examples/secure_web_server
 */

#include <cstdio>
#include <cstring>
#include <vector>

#include "app/antagonist.h"
#include "common/random.h"
#include "compcpy/offload_engine.h"
#include "topo/topology.h"

using namespace sd;

int
main()
{
    std::printf("Adaptive secure web server\n"
                "==========================\n\n");

    topo::TopologySpec spec;
    spec.llc.size_bytes = 1ull << 20; // small LLC so contention is
                                      // easy to provoke in a demo
    topo::Topology topo(spec);
    cache::MemorySystem &memory = topo.memory();
    smartdimm::BufferDevice &device = topo.slot(0u).device;
    compcpy::Driver &driver = topo.slot(0u).driver;
    compcpy::CompCpyEngine::SharedState shared;

    Rng rng(7);
    std::uint8_t key[16];
    rng.fill(key, sizeof(key));
    crypto::GcmIv static_iv{};
    rng.fill(static_iv.data(), static_iv.size());

    compcpy::AdaptiveConfig policy;
    policy.threshold = 0.30;
    compcpy::AdaptiveTlsEngine engine(memory, driver, shared, key,
                                      static_iv, policy);

    // A client-side session with the same keys verifies every record.
    crypto::GcmContext client(key, crypto::Aes::KeySize::k128);

    // The co-running antagonist we toggle to create/relieve pressure.
    app::McfLikeAntagonist antagonist(8ull << 20, 99);

    std::vector<std::uint8_t> page(4096);
    std::uint64_t verified = 0;

    std::printf("%-8s %-12s %-10s %-10s %-8s\n", "phase", "pressure",
                "missEWMA", "path", "records");
    for (int phase = 0; phase < 4; ++phase) {
        const bool contended = phase % 2 == 1;
        std::uint64_t phase_cpu = 0;
        std::uint64_t phase_dimm = 0;

        for (int req = 0; req < 24; ++req) {
            // Background pressure between requests.
            if (contended)
                antagonist.walk(memory.llc(), 20000);
            engine.probe().sample();

            rng.fill(page.data(), page.size());
            const auto record =
                engine.protectRecord(page.data(), page.size());
            (record.on == compcpy::ProcessedOn::kCpu ? phase_cpu
                                                     : phase_dimm)++;

            // Client-side verification.
            crypto::GcmIv nonce = static_iv;
            const std::uint64_t seq =
                engine.cpuRecords() + engine.offloadedRecords() - 1;
            for (int i = 0; i < 8; ++i)
                nonce[4 + i] ^=
                    static_cast<std::uint8_t>(seq >> (56 - 8 * i));
            crypto::GcmTag tag;
            std::memcpy(tag.data(),
                        record.body.data() + page.size(), 16);
            std::vector<std::uint8_t> plain(page.size());
            if (client.decrypt(nonce, record.body.data(), page.size(),
                               tag, plain.data()) &&
                plain == page)
                ++verified;
        }

        std::printf("%-8d %-12s %-10.2f CPU=%-6llu SmartDIMM=%llu\n",
                    phase, contended ? "high" : "low",
                    engine.probe().missRateEwma(),
                    static_cast<unsigned long long>(phase_cpu),
                    static_cast<unsigned long long>(phase_dimm));
    }

    std::printf("\nrecords verified end-to-end: %llu / 96\n",
                static_cast<unsigned long long>(verified));
    std::printf("CPU-path records: %llu, SmartDIMM records: %llu\n",
                static_cast<unsigned long long>(engine.cpuRecords()),
                static_cast<unsigned long long>(
                    engine.offloadedRecords()));
    std::printf("\nThe dispatcher onloads at low contention and\n"
                "offloads at high contention — Sec. V-C's policy.\n");
    return verified == 96 ? 0 : 1;
}
