/**
 * @file
 * Compression offload: the Sec. V-B / Fig. 12 scenario. A web
 * response is compressed page-by-page through the SmartDIMM Deflate
 * DSA (ordered CompCpy with fences), the framed output is decoded
 * with the software inflater, and the ratio is compared against the
 * software encoder with a full 32 KB window.
 *
 * Run: ./build/examples/compression_offload
 */

#include <cstdio>
#include <cstring>
#include <vector>

#include "common/random.h"
#include "compcpy/compcpy.h"
#include "compress/deflate.h"
#include "smartdimm/deflate_dsa.h"
#include "topo/topology.h"

using namespace sd;

namespace {

/** Synthesise a repetitive "web page" response body. */
std::vector<std::uint8_t>
makeResponse(std::size_t len)
{
    static const char *rows[] = {
        "<tr><td class=\"sku\">AXD-4711</td><td>SmartDIMM DDR4 "
        "module</td><td>near-memory ULP offload</td></tr>\n",
        "<tr><td class=\"sku\">CCX-0042</td><td>CompCpy runtime</td>"
        "<td>inline acceleration API</td></tr>\n",
    };
    std::vector<std::uint8_t> out;
    Rng rng(11);
    while (out.size() < len) {
        const char *row = rows[rng.below(2)];
        out.insert(out.end(), row, row + std::strlen(row));
    }
    out.resize(len);
    return out;
}

} // namespace

int
main()
{
    std::printf("Deflate offload through SmartDIMM\n"
                "=================================\n\n");

    topo::TopologySpec spec;
    spec.llc.size_bytes = 8ull << 20;
    topo::Topology topo(spec);
    cache::MemorySystem &memory = topo.memory();
    smartdimm::BufferDevice &device = topo.slot(0u).device;
    compcpy::Driver &driver = topo.slot(0u).driver;
    compcpy::CompCpyEngine &compcpy = topo.slot(0u).engine;

    // A 24 KB response compressed at (just under) page granularity,
    // each page an independent CompCpy per Sec. V-C.
    const auto response = makeResponse(24 * 1024);
    const std::size_t chunk = smartdimm::kDeflateMaxPayload;

    std::vector<std::uint8_t> decoded;
    std::size_t compressed_total = 0;
    unsigned offloads = 0;

    for (std::size_t off = 0; off < response.size(); off += chunk) {
        const std::size_t take =
            std::min(chunk, response.size() - off);

        const Addr sbuf = driver.alloc(kPageSize);
        const Addr dbuf = driver.alloc(kPageSize);
        std::vector<std::uint8_t> staged(kPageSize, 0);
        std::memcpy(staged.data(), response.data() + off, take);
        memory.writeSync(sbuf, staged.data(), staged.size());

        compcpy::CompCpyParams params;
        params.sbuf = sbuf;
        params.dbuf = dbuf;
        params.size = take;
        params.ordered = true; // streaming DSA needs in-order lines
        params.ulp = smartdimm::UlpKind::kDeflate;
        compcpy.run(params);
        compcpy.useSync(dbuf, kPageSize);

        const auto framed = compcpy.readResult(dbuf, kPageSize);
        const std::size_t stream_len = framed[0] | (framed[1] << 8);
        compressed_total += 2 + stream_len;
        ++offloads;

        const auto page =
            compress::deflateDecompress(framed.data() + 2, stream_len);
        decoded.insert(decoded.end(), page.begin(), page.end());

        driver.release(sbuf, kPageSize);
        driver.release(dbuf, kPageSize);
    }

    const bool ok = decoded == response;
    std::printf("pages offloaded            : %u\n", offloads);
    std::printf("round-trip matches original: %s\n", ok ? "yes" : "NO");
    std::printf("original size              : %zu bytes\n",
                response.size());
    std::printf("DSA compressed size        : %zu bytes (%.2fx)\n",
                compressed_total,
                static_cast<double>(response.size()) /
                    static_cast<double>(compressed_total));

    const auto sw = compress::deflateCompress(
        response.data(), response.size(),
        compress::DeflateStrategy::kDynamic);
    std::printf("software (32 KB window)    : %zu bytes (%.2fx)\n",
                sw.bytes.size(), sw.ratio(response.size()));
    std::printf("\nThe DSA trades some ratio (4 KB history, 8-byte\n"
                "window, best-effort banking) for deterministic\n"
                "line-rate latency — Sec. V-B's design point.\n");
    return ok ? 0 : 1;
}
