#!/usr/bin/env python3
"""bench_gate — performance-regression gate over BENCH_*.json files.

The micro benchmarks (micro_sim, micro_crypto, micro_deflate,
micro_queue) each emit a BENCH_*.json describing simulator-
implementation throughput. This tool compares a fresh set of those
files against the baselines committed under bench/baselines/ and fails
when a gated metric regresses past the tolerance — so an event-queue,
scheduler or kernel slowdown fails CI instead of silently taxing every
fleet-scale sweep.

Rows are matched by their identity fields (e.g. "name", or
mode/depth/batch for the queue bench); metrics are direction-aware
(higher-is-better throughput vs lower-is-better latency). The default
tolerance is deliberately loose (50%) because shared CI runners are
noisy; the gate exists to catch structural regressions (2x, 10x), not
single-digit jitter.

Usage:
  tools/bench_gate.py --results-dir DIR [--baselines DIR]
                      [--tolerance F] [--allow-missing]
  tools/bench_gate.py --update --results-dir DIR   refresh baselines
  tools/bench_gate.py --self-test                  run the gate's tests
"""

from __future__ import annotations

import argparse
import json
import pathlib
import shutil
import sys
import tempfile

# Per-file gate configuration: which fields identify a row, and which
# metrics are gated with which direction. Files not listed here are
# ignored (artefacts may carry extra JSON).
GATES = {
    "BENCH_sim.json": {
        "keys": ("name",),
        "metrics": {
            "sim_cycles_per_sec": "higher",
            "events_per_sec": "higher",
        },
    },
    "BENCH_crypto.json": {
        "keys": ("name",),
        "metrics": {
            "bytes_per_sec": "higher",
            "ns_per_op": "lower",
        },
    },
    "BENCH_deflate.json": {
        "keys": ("name",),
        "metrics": {
            "bytes_per_sec": "higher",
            "ns_per_op": "lower",
        },
    },
    "BENCH_queue.json": {
        "keys": ("mode", "depth", "batch"),
        "metrics": {
            "offloads_per_sec": "higher",
            "p99_us": "lower",
        },
    },
    "BENCH_topology.json": {
        "keys": ("name",),
        "metrics": {
            "ops_per_sec": "higher",
            "speedup_vs_1x1": "higher",
        },
    },
    "BENCH_cxl.json": {
        "keys": ("name",),
        "metrics": {
            "ops_per_sec": "higher",
            "speedup_vs_cpu": "higher",
        },
    },
}

DEFAULT_TOLERANCE = 0.5


def row_key(row: dict, keys: tuple) -> tuple:
    return tuple(row.get(k) for k in keys)


def index_rows(doc: dict, keys: tuple) -> dict:
    return {row_key(r, keys): r for r in doc.get("results", [])}


def compare_file(name: str, current: dict, baseline: dict,
                 tolerance: float) -> list:
    """@return list of human-readable failure strings."""
    gate = GATES[name]
    failures = []

    # Kernel-tier artefacts are only comparable within a tier.
    cur_tier = current.get("kernel")
    base_tier = baseline.get("kernel")
    if cur_tier != base_tier:
        return [f"{name}: kernel tier mismatch "
                f"(current {cur_tier!r} vs baseline {base_tier!r}); "
                "re-run the bench with the baseline's tier or --update"]

    cur_rows = index_rows(current, gate["keys"])
    base_rows = index_rows(baseline, gate["keys"])
    for key, base_row in base_rows.items():
        cur_row = cur_rows.get(key)
        label = "/".join(str(k) for k in key)
        if cur_row is None:
            failures.append(f"{name}: row '{label}' missing from results")
            continue
        for metric, direction in gate["metrics"].items():
            if metric not in base_row:
                continue
            base_val = float(base_row[metric])
            if metric not in cur_row:
                failures.append(
                    f"{name}: {label}.{metric} missing from results")
                continue
            cur_val = float(cur_row[metric])
            if base_val <= 0:
                continue  # degenerate baseline: nothing to gate
            if direction == "higher":
                floor = base_val * (1.0 - tolerance)
                ok = cur_val >= floor
                bound = f">= {floor:.4g}"
            else:
                ceil = base_val * (1.0 + tolerance)
                ok = cur_val <= ceil
                bound = f"<= {ceil:.4g}"
            if not ok:
                failures.append(
                    f"{name}: {label}.{metric} = {cur_val:.4g} regressed "
                    f"past baseline {base_val:.4g} (required {bound}, "
                    f"tolerance {tolerance:.0%})")
    return failures


def run_gate(results_dir: pathlib.Path, baselines_dir: pathlib.Path,
             tolerance: float, allow_missing: bool) -> int:
    failures = []
    checked = 0
    for name in sorted(GATES):
        base_path = baselines_dir / name
        cur_path = results_dir / name
        if not base_path.is_file():
            print(f"bench_gate: no baseline for {name}, skipping")
            continue
        if not cur_path.is_file():
            msg = f"{name}: baseline exists but no fresh results in " \
                  f"{results_dir}"
            if allow_missing:
                print(f"bench_gate: {msg} (allowed)")
            else:
                failures.append(msg)
            continue
        current = json.loads(cur_path.read_text())
        baseline = json.loads(base_path.read_text())
        file_failures = compare_file(name, current, baseline, tolerance)
        failures.extend(file_failures)
        checked += 1
        if not file_failures:
            print(f"bench_gate: {name} ok")
    for f in failures:
        print(f"FAIL {f}")
    if failures:
        print(f"bench_gate: {len(failures)} regression(s)", file=sys.stderr)
        return 1
    print(f"bench_gate: {checked} file(s) within tolerance")
    return 0


def update_baselines(results_dir: pathlib.Path,
                     baselines_dir: pathlib.Path) -> int:
    baselines_dir.mkdir(parents=True, exist_ok=True)
    updated = 0
    for name in sorted(GATES):
        cur_path = results_dir / name
        if not cur_path.is_file():
            continue
        json.loads(cur_path.read_text())  # refuse to commit junk
        shutil.copyfile(cur_path, baselines_dir / name)
        print(f"bench_gate: baseline {name} <- {cur_path}")
        updated += 1
    if not updated:
        print("bench_gate: no BENCH_*.json found to adopt", file=sys.stderr)
        return 1
    return 0


# --------------------------------------------------------------------------
# Self test
# --------------------------------------------------------------------------

def _doc(rows, **top):
    return {**top, "results": rows}


SELF_TESTS = [
    # (name, file, current, baseline, tolerance, expect_failures)
    ("identical",
     "BENCH_sim.json",
     _doc([{"name": "trace_off", "sim_cycles_per_sec": 20.0,
            "events_per_sec": 4e6}]),
     _doc([{"name": "trace_off", "sim_cycles_per_sec": 20.0,
            "events_per_sec": 4e6}]),
     0.5, 0),
    ("within-tolerance",
     "BENCH_sim.json",
     _doc([{"name": "trace_off", "sim_cycles_per_sec": 11.0,
            "events_per_sec": 2.1e6}]),
     _doc([{"name": "trace_off", "sim_cycles_per_sec": 20.0,
            "events_per_sec": 4e6}]),
     0.5, 0),
    ("throughput-regression",
     "BENCH_sim.json",
     _doc([{"name": "trace_off", "sim_cycles_per_sec": 9.0,
            "events_per_sec": 4e6}]),
     _doc([{"name": "trace_off", "sim_cycles_per_sec": 20.0,
            "events_per_sec": 4e6}]),
     0.5, 1),
    ("improvement-passes",
     "BENCH_sim.json",
     _doc([{"name": "trace_off", "sim_cycles_per_sec": 100.0,
            "events_per_sec": 9e6}]),
     _doc([{"name": "trace_off", "sim_cycles_per_sec": 20.0,
            "events_per_sec": 4e6}]),
     0.5, 0),
    ("latency-regression",
     "BENCH_crypto.json",
     _doc([{"name": "gcm4k", "bytes_per_sec": 1e9, "ns_per_op": 400.0}],
          kernel="native"),
     _doc([{"name": "gcm4k", "bytes_per_sec": 1e9, "ns_per_op": 100.0}],
          kernel="native"),
     0.5, 1),
    ("latency-improvement-passes",
     "BENCH_crypto.json",
     _doc([{"name": "gcm4k", "bytes_per_sec": 1e9, "ns_per_op": 50.0}],
          kernel="native"),
     _doc([{"name": "gcm4k", "bytes_per_sec": 1e9, "ns_per_op": 100.0}],
          kernel="native"),
     0.5, 0),
    ("kernel-tier-mismatch",
     "BENCH_crypto.json",
     _doc([{"name": "gcm4k", "bytes_per_sec": 1e9, "ns_per_op": 100.0}],
          kernel="scalar"),
     _doc([{"name": "gcm4k", "bytes_per_sec": 1e9, "ns_per_op": 100.0}],
          kernel="native"),
     0.5, 1),
    ("missing-row",
     "BENCH_sim.json",
     _doc([{"name": "trace_off", "sim_cycles_per_sec": 20.0,
            "events_per_sec": 4e6}]),
     _doc([{"name": "trace_off", "sim_cycles_per_sec": 20.0,
            "events_per_sec": 4e6},
           {"name": "trace_ddr", "sim_cycles_per_sec": 18.0,
            "events_per_sec": 3e6}]),
     0.5, 1),
    ("extra-current-row-ignored",
     "BENCH_sim.json",
     _doc([{"name": "trace_off", "sim_cycles_per_sec": 20.0,
            "events_per_sec": 4e6},
           {"name": "experimental", "sim_cycles_per_sec": 0.1,
            "events_per_sec": 1.0}]),
     _doc([{"name": "trace_off", "sim_cycles_per_sec": 20.0,
            "events_per_sec": 4e6}]),
     0.5, 0),
    ("composite-key",
     "BENCH_queue.json",
     _doc([{"mode": "async", "depth": 8, "batch": 4,
            "offloads_per_sec": 1000.0, "p99_us": 50.0},
           {"mode": "async", "depth": 16, "batch": 4,
            "offloads_per_sec": 100.0, "p99_us": 50.0}]),
     _doc([{"mode": "async", "depth": 8, "batch": 4,
            "offloads_per_sec": 1000.0, "p99_us": 50.0},
           {"mode": "async", "depth": 16, "batch": 4,
            "offloads_per_sec": 1000.0, "p99_us": 50.0}]),
     0.5, 1),  # only the depth-16 row regressed
    ("zero-baseline-skipped",
     "BENCH_sim.json",
     _doc([{"name": "trace_off", "sim_cycles_per_sec": 1.0,
            "events_per_sec": 1.0}]),
     _doc([{"name": "trace_off", "sim_cycles_per_sec": 0.0,
            "events_per_sec": 0.0}]),
     0.5, 0),
    ("tight-tolerance",
     "BENCH_sim.json",
     _doc([{"name": "trace_off", "sim_cycles_per_sec": 18.0,
            "events_per_sec": 4e6}]),
     _doc([{"name": "trace_off", "sim_cycles_per_sec": 20.0,
            "events_per_sec": 4e6}]),
     0.05, 1),
]


def self_test() -> int:
    failures = 0
    for name, fname, current, baseline, tol, expected in SELF_TESTS:
        got = len(compare_file(fname, current, baseline, tol))
        if got != expected:
            failures += 1
            print(f"FAIL {name}: expected {expected} failure(s), got {got}")
            for f in compare_file(fname, current, baseline, tol):
                print(f"    {f}")
        else:
            print(f"ok   {name}")

    # End-to-end: gate a results dir against a baselines dir on disk,
    # including the missing-results policy.
    with tempfile.TemporaryDirectory() as tmp:
        root = pathlib.Path(tmp)
        (root / "base").mkdir()
        (root / "res").mkdir()
        doc = _doc([{"name": "trace_off", "sim_cycles_per_sec": 20.0,
                     "events_per_sec": 4e6}])
        (root / "base" / "BENCH_sim.json").write_text(json.dumps(doc))
        (root / "res" / "BENCH_sim.json").write_text(json.dumps(doc))
        if run_gate(root / "res", root / "base", 0.5, False) != 0:
            failures += 1
            print("FAIL end-to-end-pass: expected exit 0")
        else:
            print("ok   end-to-end-pass")
        (root / "res" / "BENCH_sim.json").unlink()
        if run_gate(root / "res", root / "base", 0.5, False) != 1:
            failures += 1
            print("FAIL end-to-end-missing: expected exit 1")
        else:
            print("ok   end-to-end-missing")
        if run_gate(root / "res", root / "base", 0.5, True) != 0:
            failures += 1
            print("FAIL end-to-end-allow-missing: expected exit 0")
        else:
            print("ok   end-to-end-allow-missing")

    if failures:
        print(f"bench_gate --self-test: {failures} failure(s)",
              file=sys.stderr)
        return 1
    print(f"bench_gate --self-test: all {len(SELF_TESTS) + 3} cases pass")
    return 0


def main() -> int:
    repo = pathlib.Path(__file__).resolve().parent.parent
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--results-dir", type=pathlib.Path,
                        default=pathlib.Path.cwd(),
                        help="directory holding fresh BENCH_*.json "
                             "(default: cwd)")
    parser.add_argument("--baselines", type=pathlib.Path,
                        default=repo / "bench" / "baselines",
                        help="committed baseline directory")
    parser.add_argument("--tolerance", type=float,
                        default=DEFAULT_TOLERANCE,
                        help="allowed fractional regression "
                             f"(default {DEFAULT_TOLERANCE})")
    parser.add_argument("--allow-missing", action="store_true",
                        help="baselines without fresh results warn "
                             "instead of failing")
    parser.add_argument("--update", action="store_true",
                        help="adopt the fresh results as new baselines")
    parser.add_argument("--self-test", action="store_true",
                        help="run the gate's own test corpus")
    args = parser.parse_args()
    if args.self_test:
        return self_test()
    if args.update:
        return update_baselines(args.results_dir, args.baselines)
    return run_gate(args.results_dir, args.baselines, args.tolerance,
                    args.allow_missing)


if __name__ == "__main__":
    sys.exit(main())
