#!/usr/bin/env python3
"""sdcheck — AST-grade cross-module invariant analyzer for SmartDIMM.

Where tools/sdlint.py holds the cheap per-file text rules, sdcheck does
the analyses a regex cannot: control-flow-aware dataflow inside
function bodies and cross-translation-unit joins over registries that
span src/, tests/ and bench/baselines/. It is driven by libclang over
the CMake-exported compile_commands.json when the bindings are
installed (the CI job installs python3-clang); without them it falls
back to a conservative tokenizer with the same rule semantics, so
developer machines never silently skip a rule.

Rule catalogue:

  span-flow       every SD_SPAN_BEGIN reaches a matching SD_SPAN_END on
                  *all* paths through the function — early returns,
                  error branches, loops. A path-sensitive dataflow over
                  a block tree replaces sdlint's old linear count (which
                  both missed early-return leaks and mis-flagged the
                  branch-balanced if/else form). Async flows that hand a
                  span across functions use the raw Tracer API, which
                  the rule deliberately ignores.
  fault-coverage  every fault::Site enum member must be (a) injected
                  somewhere in src/ outside src/fault/, (b) named in the
                  kSiteNames stats table in positional (snake_case)
                  agreement with the enum, and (c) referenced by at
                  least one test — so a new fault site cannot ship
                  unobservable or untested.
  stat-registry   stat/span names declared in src/ (registry.add
                  components, block.scalar rows, span kinds) vs names
                  asserted in tests/ and rows committed under
                  bench/baselines/: coordinate-grammar violations,
                  orphan references, near-miss typos, and the explicit
                  1x1-legacy vs ".chC.dD" dual-naming contract (every
                  coordinate-tagged registration must degrade to a bare
                  legacy name at 1x1).
  mmio-map        the MmioReg register map: every k* offset defined
                  once, 8-byte aligned, 64-byte non-overlapping, inside
                  the device's MMIO window; and *accesses* flow only
                  through the window helpers (Driver::mmio() on the
                  host side, the device's own decoder) so per-DIMM
                  rebasing can never be bypassed with raw mmio_base
                  arithmetic.
  addr-arith      address arithmetic in mem/address_map, mem/dimm_mux,
                  topo/dispatcher and cache/: narrowing casts of
                  div/mod results must go through the checked
                  narrowIdx()/bits() helpers, byte<->line<->page unit
                  conversions must use the named constants
                  (kCacheLineSize/kLineBits/kLinesPerPage/...), and
                  line-unit and byte-unit quantities must not be mixed
                  additively in one expression.

Findings are emitted as JSON ({"rule","file","line","context","msg"})
and compared against the committed baseline tools/sdcheck_baseline.json
with the same contract as tools/bench_gate.py: unbaselined findings
fail, stale baseline entries warn, --update-baseline adopts the
current set. The clean-tree contract is an *empty* baseline — fix
findings instead of baselining them.

Usage:
  tools/sdcheck.py [--root DIR] [--build DIR] [--json OUT]
                   [--regex-only] [--update-baseline]
  tools/sdcheck.py --self-test [--root DIR]
"""

from __future__ import annotations

import argparse
import json
import pathlib
import re
import sys

SRC_EXTS = {".h", ".cc"}

# The self-test fixture corpus lives inside tests/ but is analyzer
# input, not repo code — the real-tree walk must skip it or the bad
# fixtures would (correctly) fail the clean-tree contract.
FIXTURE_DIR = "tests/tools/fixtures/"


def is_fixture(rel: str) -> bool:
    return rel.startswith(FIXTURE_DIR)

# --------------------------------------------------------------------------
# Shared text utilities
# --------------------------------------------------------------------------


def strip_comments_and_strings(text: str) -> str:
    """Blank out comments and string/char literals, preserving offsets
    and newlines so line numbers and brace positions stay valid."""
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line | block | str | chr
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "str"
                out.append(" ")
                i += 1
                continue
            if c == "'":
                state = "chr"
                out.append(" ")
                i += 1
                continue
            out.append(c)
        elif state == "line":
            if c == "\n":
                state = "code"
                out.append("\n")
            elif c == "\\" and nxt == "\n":
                out.append(" \n")
                i += 2
                continue
            else:
                out.append(" ")
        elif state == "block":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append("\n" if c == "\n" else " ")
        else:  # str / chr
            quote = '"' if state == "str" else "'"
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == quote:
                state = "code"
            out.append(" ")
        i += 1
    return "".join(out)


def line_of(text: str, pos: int) -> int:
    return text.count("\n", 0, pos) + 1


def blank_preprocessor(clean: str) -> str:
    """Blank preprocessor lines (macro definitions must not count as
    uses) while keeping newlines."""
    lines = clean.split("\n")
    for idx, ln in enumerate(lines):
        if ln.lstrip().startswith("#"):
            lines[idx] = ""
    return "\n".join(lines)


def string_literals(text: str) -> list:
    """All double-quoted literals with their offsets (comment-stripped
    first so commented-out names don't count)."""
    # Strip comments but keep strings: run the stripper but remember
    # literal spans separately.
    out = []
    i, n = 0, len(text)
    state = "code"
    start = 0
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line"
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block"
                i += 2
                continue
            if c == '"':
                state = "str"
                start = i + 1
                i += 1
                continue
            if c == "'":
                state = "chr"
                i += 1
                continue
        elif state == "line":
            if c == "\n":
                state = "code"
        elif state == "block":
            if c == "*" and nxt == "/":
                state = "code"
                i += 2
                continue
        elif state == "str":
            if c == "\\":
                i += 2
                continue
            if c == '"':
                out.append((text[start:i], start))
                state = "code"
        else:  # chr
            if c == "\\":
                i += 2
                continue
            if c == "'":
                state = "code"
        i += 1
    return out


def camel_to_snake(name: str) -> str:
    """kAlertStorm -> alert_storm."""
    if name.startswith("k"):
        name = name[1:]
    return re.sub(r"(?<!^)(?=[A-Z])", "_", name).lower()


def edit_distance(a: str, b: str, cap: int = 3) -> int:
    """Levenshtein with an early-out cap."""
    if abs(len(a) - len(b)) > cap:
        return cap + 1
    prev = list(range(len(b) + 1))
    for i, ca in enumerate(a, 1):
        cur = [i]
        best = i
        for j, cb in enumerate(b, 1):
            cur.append(min(prev[j] + 1, cur[-1] + 1,
                           prev[j - 1] + (ca != cb)))
            best = min(best, cur[-1])
        if best > cap:
            return cap + 1
        prev = cur
    return prev[-1]


class Finding:
    """One analyzer finding. Baseline identity deliberately excludes
    the line number so unrelated edits above a baselined finding do not
    churn the baseline (same philosophy as bench_gate row keys)."""

    def __init__(self, rule: str, file: str, line: int, context: str,
                 msg: str):
        self.rule = rule
        self.file = file
        self.line = line
        self.context = context
        self.msg = msg

    def key(self) -> tuple:
        return (self.rule, self.file, self.context)

    def as_json(self) -> dict:
        return {"rule": self.rule, "file": self.file, "line": self.line,
                "context": self.context, "msg": self.msg}

    def __repr__(self):
        return f"{self.file}:{self.line}: [{self.rule}] {self.msg}"


# --------------------------------------------------------------------------
# Function extraction — libclang backend with tokenizer fallback
# --------------------------------------------------------------------------


class FunctionBody:
    def __init__(self, name: str, body: str, body_offset: int):
        self.name = name
        self.body = body  # text inside the braces, comment-stripped
        self.body_offset = body_offset  # offset of '{' in the file


FUNC_OPEN_RE = re.compile(
    r"\)\s*(?:const|noexcept|override|final|mutable|->\s*[\w:<>&*\s]+)*\s*$")
CONTROL_RE = re.compile(r"\b(?:if|for|while|switch|catch)\s*\($")
FUNC_NAME_RE = re.compile(r"([~\w:]+)\s*\([^()]*$")


def _matching_brace(clean: str, open_pos: int):
    depth = 0
    for i in range(open_pos, len(clean)):
        if clean[i] == "{":
            depth += 1
        elif clean[i] == "}":
            depth -= 1
            if depth == 0:
                return i
    return None


def extract_functions_regex(clean: str) -> list:
    """Heuristic function-definition finder: a '{' whose preceding text
    ends in a parameter list plus optional qualifiers opens a function
    body; control-statement parens do not match."""
    funcs = []
    i = 0
    n = len(clean)
    while i < n:
        if clean[i] != "{":
            i += 1
            continue
        before = clean[max(0, i - 240):i]
        if FUNC_OPEN_RE.search(before) and not CONTROL_RE.search(
                before.rstrip()[:-1].rstrip() + "("):
            close = _matching_brace(clean, i)
            if close is None:
                break
            # Function name: identifier before the last '(' run.
            header = before
            paren = header.rfind("(")
            name = "?"
            if paren > 0:
                m = FUNC_NAME_RE.search(header[:paren + 1])
                if m:
                    name = m.group(1)
            funcs.append(FunctionBody(name, clean[i + 1:close], i))
            i = close + 1
        else:
            i += 1
    return funcs


class ClangBackend:
    """Thin libclang wrapper: precise function extents per file. The
    analyses themselves run on the extracted body text, so the regex
    and clang backends report identical rule semantics — clang only
    removes the function-boundary heuristic."""

    def __init__(self, root: pathlib.Path, build: pathlib.Path):
        import clang.cindex as ci  # noqa: raises ImportError when absent
        self.ci = ci
        self.index = ci.Index.create()
        self.root = root
        self.comp_db = None
        db_dir = build if (build / "compile_commands.json").is_file() else None
        if db_dir is not None:
            self.comp_db = ci.CompilationDatabase.fromDirectory(str(db_dir))

    def args_for(self, path: pathlib.Path) -> list:
        if self.comp_db is not None:
            cmds = self.comp_db.getCompileCommands(str(path))
            if cmds:
                args = list(cmds[0].arguments)[1:-1]
                # Drop output/input artefacts; keep -I/-D/-std.
                keep, skip_next = [], False
                for a in args:
                    if skip_next:
                        skip_next = False
                        continue
                    if a in ("-o", "-c"):
                        skip_next = a == "-o"
                        continue
                    keep.append(a)
                return keep
        return [f"-I{self.root}/src", "-std=c++20"]

    def functions(self, path: pathlib.Path, clean: str) -> list:
        ci = self.ci
        tu = self.index.parse(
            str(path), args=self.args_for(path),
            options=ci.TranslationUnit.PARSE_SKIP_FUNCTION_BODIES * 0)
        funcs = []
        kinds = (ci.CursorKind.FUNCTION_DECL, ci.CursorKind.CXX_METHOD,
                 ci.CursorKind.CONSTRUCTOR, ci.CursorKind.DESTRUCTOR,
                 ci.CursorKind.FUNCTION_TEMPLATE)

        def walk(cur):
            for child in cur.get_children():
                if (child.kind in kinds and child.is_definition() and
                        child.location.file and
                        pathlib.Path(str(child.location.file.name)) == path):
                    ext = child.extent
                    start = ext.start.offset
                    end = min(ext.end.offset, len(clean))
                    open_pos = clean.find("{", start, end)
                    if open_pos >= 0:
                        close = _matching_brace(clean, open_pos)
                        if close is not None and close <= end:
                            funcs.append(FunctionBody(
                                child.spelling or "?",
                                clean[open_pos + 1:close], open_pos))
                walk(child)

        walk(tu.cursor)
        return funcs


def make_backend(root: pathlib.Path, build: pathlib.Path,
                 regex_only: bool):
    """@return (functions_fn, backend_name)."""
    if not regex_only:
        try:
            clang = ClangBackend(root, build)

            def clang_functions(path, clean):
                try:
                    funcs = clang.functions(path, clean)
                    if funcs:
                        return funcs
                except Exception:
                    pass
                return extract_functions_regex(clean)

            return clang_functions, "libclang"
        except Exception:
            pass
    return (lambda path, clean: extract_functions_regex(clean)), "regex"


# --------------------------------------------------------------------------
# Rule: span-flow — path-sensitive SD_SPAN_BEGIN/END balance
# --------------------------------------------------------------------------

# The block tree is built from a statement-level tokenizer; the
# dataflow tracks the *set of possible open-span counts* at each
# program point. Sets stay tiny (functions open at most a couple of
# spans), so exactness is cheap.

SPAN_TOKEN_RE = re.compile(
    r"\bSD_SPAN_(BEGIN|END)\b|\breturn\b|\bthrow\b|\bif\b|\belse\b"
    r"|\bfor\b|\bwhile\b|\bdo\b|\bswitch\b|\bcase\b|\bdefault\b"
    r"|\bbreak\b|\bcontinue\b|[{}();]")


class _Tok:
    def __init__(self, kind, pos):
        self.kind = kind
        self.pos = pos

    def __repr__(self):
        return f"<{self.kind}@{self.pos}>"


def _span_tokens(body: str) -> list:
    toks = []
    for m in SPAN_TOKEN_RE.finditer(body):
        t = m.group(0)
        if t.startswith("SD_SPAN_"):
            toks.append(_Tok("begin" if m.group(1) == "BEGIN" else "end",
                             m.start()))
        else:
            toks.append(_Tok(t, m.start()))
    return toks


class _SpanParser:
    """Recursive-descent parser producing a nested block structure:
    ('seq', [nodes]) | ('if', then, else|None) | ('loop', body) |
    ('switch', [segments]) | ('begin'|'end'|'return'|'throw'|
    'break'|'continue', pos)."""

    def __init__(self, toks):
        self.toks = toks
        self.i = 0

    def peek(self):
        return self.toks[self.i] if self.i < len(self.toks) else None

    def next(self):
        t = self.toks[self.i]
        self.i += 1
        return t

    def skip_parens(self):
        """Consume a balanced (...) group if one is next."""
        if self.peek() and self.peek().kind == "(":
            depth = 0
            while self.peek():
                t = self.next()
                if t.kind == "(":
                    depth += 1
                elif t.kind == ")":
                    depth -= 1
                    if depth == 0:
                        return

    def parse_seq(self, stop_on_close: bool) -> list:
        nodes = []
        while self.peek():
            t = self.peek()
            if t.kind == "}":
                if stop_on_close:
                    self.next()
                return nodes
            nodes.append(self.parse_stmt())
        return nodes

    def parse_block_or_stmt(self):
        """A brace block, or a single statement (unbraced if-body)."""
        if self.peek() and self.peek().kind == "{":
            self.next()
            return ("seq", self.parse_seq(stop_on_close=True))
        return ("seq", [self.parse_stmt()] if self.peek() else [])

    def parse_stmt(self):
        t = self.next()
        k = t.kind
        if k == "{":
            return ("seq", self.parse_seq(stop_on_close=True))
        if k == "if":
            self.skip_parens()
            then = self.parse_block_or_stmt()
            els = None
            if self.peek() and self.peek().kind == "else":
                self.next()
                els = self.parse_block_or_stmt()
            return ("if", then, els)
        if k in ("for", "while"):
            self.skip_parens()
            return ("loop", self.parse_block_or_stmt())
        if k == "do":
            body = self.parse_block_or_stmt()
            # trailing while(...) ;
            if self.peek() and self.peek().kind == "while":
                self.next()
                self.skip_parens()
            return ("loop", body)
        if k == "switch":
            self.skip_parens()
            if self.peek() and self.peek().kind == "{":
                self.next()
                return self.parse_switch()
            return ("seq", [])
        if k in ("begin", "end", "return", "throw", "break", "continue"):
            # Consume the rest of the statement so e.g. a call in a
            # return expression is not re-parsed; nested begins inside
            # the expression still surface as their own tokens first
            # because the regex tokenizer runs positionally — so scan
            # forward to the ';' collecting span tokens.
            extra = []
            depth = 0
            while self.peek():
                nt = self.peek()
                if nt.kind == "(":
                    depth += 1
                elif nt.kind == ")":
                    depth -= 1
                elif nt.kind == ";" and depth <= 0:
                    self.next()
                    break
                elif nt.kind in ("begin", "end"):
                    extra.append((nt.kind, nt.pos))
                elif nt.kind in ("{", "}"):
                    break
                self.next()
            node = (k, t.pos)
            if extra:
                return ("seq", [(kind, pos) for kind, pos in extra] +
                        [node])
            return node
        # case/default labels, parens, semicolons: structural noise.
        return ("nop", t.pos)

    def parse_switch(self):
        """Split the switch body into case segments; each segment is an
        alternative (fallthrough is modelled by also offering the
        concatenation-free union, which is conservative for span
        counting in practice)."""
        segments = []
        current = []
        depth = 0
        while self.peek():
            t = self.peek()
            if t.kind == "}" and depth == 0:
                self.next()
                break
            if t.kind in ("case", "default") and depth == 0:
                self.next()
                if current:
                    segments.append(("seq", current))
                    current = []
                continue
            if t.kind == "{":
                depth += 1
            elif t.kind == "}":
                depth -= 1
            current.append(self.parse_stmt())
        if current:
            segments.append(("seq", current))
        return ("switch", segments)


class _SpanFlow:
    """Dataflow over the block tree. States are frozensets of possible
    open-span counts; an empty set means every path already left the
    function."""

    MAX_OPEN = 8

    def __init__(self, fn: FunctionBody, clean: str, path: str,
                 findings: list, rule: str = "span-flow"):
        self.fn = fn
        self.clean = clean
        self.path = path
        self.findings = findings
        self.rule = rule
        self.loop_exits = []  # stack of sets collected from break/continue
        self.reported = set()

    def report(self, pos: int, msg: str):
        line = line_of(self.clean, self.fn.body_offset + 1 + pos)
        key = (msg,)
        if key in self.reported:
            return
        self.reported.add(key)
        self.findings.append(Finding(
            self.rule, self.path, line, self.fn.name, msg))

    def run(self):
        toks = _span_tokens(self.fn.body)
        if not any(t.kind in ("begin", "end") for t in toks):
            return
        tree = ("seq", _SpanParser(toks).parse_seq(stop_on_close=False))
        exit_set = self.eval(tree, frozenset([0]))
        for open_count in exit_set:
            if open_count > 0:
                self.report(
                    len(self.fn.body) - 1,
                    f"function '{self.fn.name}' can fall off the end "
                    f"with {open_count} SD_SPAN_BEGIN span(s) still "
                    "open; close them with SD_SPAN_END on every path")
                break

    def eval(self, node, state: frozenset) -> frozenset:
        kind = node[0]
        if not state and kind not in ("seq",):
            return state
        if kind == "seq":
            for child in node[1]:
                state = self.eval(child, state)
                if not state:
                    break
            return state
        if kind == "begin":
            return frozenset(min(s + 1, self.MAX_OPEN) for s in state)
        if kind == "end":
            if state and min(state) == 0:
                self.report(node[1],
                            "SD_SPAN_END with no SD_SPAN_BEGIN open on "
                            "some path")
            return frozenset(max(s - 1, 0) for s in state)
        if kind in ("return", "throw"):
            leaked = [s for s in state if s > 0]
            if leaked:
                what = "return" if kind == "return" else "throw"
                self.report(node[1],
                            f"early {what} leaks {max(leaked)} open "
                            "SD_SPAN_BEGIN span(s); SD_SPAN_END before "
                            "leaving the function")
            return frozenset()
        if kind in ("break", "continue"):
            if self.loop_exits:
                self.loop_exits[-1] |= state
            return frozenset()
        if kind == "if":
            then_out = self.eval(node[1], state)
            if node[2] is not None:
                else_out = self.eval(node[2], state)
            else:
                else_out = state
            return then_out | else_out
        if kind == "loop":
            self.loop_exits.append(set())
            body_out = self.eval(node[1], state)
            breaks = frozenset(self.loop_exits.pop())
            grew = {s for s in body_out if s not in state}
            if grew:
                self.report(
                    0, "span opened inside a loop body is not closed "
                       "within the same iteration")
            return state | body_out | breaks
        if kind == "switch":
            out = state  # no case taken
            for seg in node[1]:
                out = out | self.eval(seg, state)
            return out
        return state  # nop


def check_span_flow(path_label: str, clean: str, functions,
                    findings: list):
    body_clean = blank_preprocessor(clean)
    for fn in functions(None, body_clean):
        _SpanFlow(fn, body_clean, path_label, findings).run()


# --------------------------------------------------------------------------
# Rule: fault-coverage — Site enum cross-referenced repo-wide
# --------------------------------------------------------------------------

SITE_ENUM_RE = re.compile(
    r"enum\s+class\s+Site[^{]*\{(.*?)\}", re.DOTALL)
SITE_MEMBER_RE = re.compile(r"\b(k[A-Z]\w*)\b")
SITE_NAMES_ARRAY_RE = re.compile(
    r"kSiteNames\s*(?:\[\s*\])?\s*=\s*\{(.*?)\}", re.DOTALL)


def check_fault_coverage(root: pathlib.Path, findings: list,
                         read=None) -> dict:
    """@return summary dict (used by --json and the acceptance test)."""
    read = read or (lambda p: p.read_text())
    fault_h = root / "src" / "fault" / "fault.h"
    fault_cc = root / "src" / "fault" / "fault.cc"
    summary = {"sites": [], "covered": 0}
    if not fault_h.is_file():
        return summary
    clean_h = strip_comments_and_strings(read(fault_h))
    m = SITE_ENUM_RE.search(clean_h)
    if not m:
        findings.append(Finding(
            "fault-coverage", "src/fault/fault.h", 1, "Site",
            "cannot locate `enum class Site`"))
        return summary
    members = [x for x in SITE_MEMBER_RE.findall(m.group(1))
               if x != "kCount"]
    enum_line = line_of(clean_h, m.start())

    names = []
    if fault_cc.is_file():
        clean_cc = strip_comments_and_strings(read(fault_cc))
        # String literals are blanked by the stripper, so re-read them
        # from the raw text inside the array extent.
        raw_cc = read(fault_cc)
        am = SITE_NAMES_ARRAY_RE.search(raw_cc)
        if am:
            names = [lit for lit, _ in string_literals(am.group(1))]
        del clean_cc

    # Positional snake_case agreement between enum and names table.
    if len(names) != len(members):
        findings.append(Finding(
            "fault-coverage", "src/fault/fault.cc", 1, "kSiteNames",
            f"kSiteNames has {len(names)} entries but enum Site has "
            f"{len(members)} members (excluding kCount); stats and "
            "spec parsing would misattribute sites"))
    else:
        for i, (member, name) in enumerate(zip(members, names)):
            expect = camel_to_snake(member)
            if name != expect:
                findings.append(Finding(
                    "fault-coverage", "src/fault/fault.cc", 1,
                    member,
                    f"kSiteNames[{i}] is '{name}' but Site::{member} "
                    f"expects '{expect}' — positional mismatch breaks "
                    "siteName()/fromSpec round-trips"))

    # Gather usage: injection sites in src (outside src/fault), test
    # references in tests/ (by enum name or snake name).
    src_uses = {mname: [] for mname in members}
    test_uses = {mname: [] for mname in members}
    for base, bucket in (("src", src_uses), ("tests", test_uses)):
        for path in sorted((root / base).rglob("*")):
            if path.suffix not in SRC_EXTS or not path.is_file():
                continue
            rel = path.relative_to(root).as_posix()
            if base == "src" and rel.startswith("src/fault/"):
                continue
            if is_fixture(rel):
                continue
            text = read(path)
            clean = strip_comments_and_strings(text)
            for mname in members:
                if re.search(rf"\bSite\s*::\s*{mname}\b", clean):
                    bucket[mname].append(rel)
                elif base == "tests" and camel_to_snake(mname) in text:
                    bucket[mname].append(rel)

    for mname in members:
        site = {"site": mname, "name": camel_to_snake(mname),
                "injection_sites": src_uses[mname],
                "tests": test_uses[mname],
                "stats_counter": camel_to_snake(mname) in names}
        summary["sites"].append(site)
        missing = []
        if not src_uses[mname]:
            missing.append("an injection call site in src/")
        if camel_to_snake(mname) not in names:
            missing.append("a kSiteNames stats entry")
        if not test_uses[mname]:
            missing.append("a test reference")
        if missing:
            findings.append(Finding(
                "fault-coverage", "src/fault/fault.h", enum_line, mname,
                f"Site::{mname} lacks " + " and ".join(missing) +
                "; fault sites must ship observable and tested"))
        else:
            summary["covered"] += 1
    return summary


# --------------------------------------------------------------------------
# Rule: stat-registry — declared vs referenced stat/span names
# --------------------------------------------------------------------------

HIST_SUFFIXES = (".count", ".mean", ".p50", ".p90", ".p99", ".max")
COORD_RE = re.compile(r"^([a-z_]+(?:\.[a-z_]+)*)\.ch(\d+)(?:\.d(\d+))?$")
STAT_LIKE_RE = re.compile(r"^[a-z][a-z0-9_]*(\.[a-z0-9_]+)*$")

REGISTRY_ADD_RE = re.compile(r'registry\.add\(\s*"([^"]+)"')
REGISTRY_ADD_PREFIX_RE = re.compile(
    r'registry\.add\(\s*(?:prefix\s*\+\s*)?"([^"]+)"\s*\+?')
SCALAR_RE = re.compile(r'(?:scalar|hist)\(\s*"([^"]+)"')
SCALAR_PREFIX_RE = re.compile(r'(?:scalar|hist)\(\s*\w+\s*\+\s*"(\.[^"]+)"')
SPAN_KIND_RE = re.compile(
    r'(?:beginSpan|internString)\(\s*"([a-z][a-z0-9_.]*)"')
CH_CONCAT_RE = re.compile(r'"\.?ch"\s*\+|"([a-z_.]+\.ch)"\s*\+')


def collect_declared_names(root: pathlib.Path, read=None) -> dict:
    read = read or (lambda p: p.read_text())
    decl = {"components": set(), "scalars": set(), "spans": set(),
            "coord_bases": set(), "files": {}}
    for path in sorted((root / "src").rglob("*")):
        if path.suffix not in SRC_EXTS or not path.is_file():
            continue
        text = read(path)
        rel = path.relative_to(root).as_posix()
        for m in REGISTRY_ADD_PREFIX_RE.finditer(text):
            decl["components"].add(m.group(1))
            decl["files"].setdefault(m.group(1), rel)
        for m in SCALAR_RE.finditer(text):
            decl["scalars"].add(m.group(1))
        for m in SCALAR_PREFIX_RE.finditer(text):
            decl["scalars"].add("*" + m.group(1))  # suffix pattern
        for m in SPAN_KIND_RE.finditer(text):
            decl["spans"].add(m.group(1))
        for m in CH_CONCAT_RE.finditer(text):
            # A ".ch" concatenation marks coordinate tagging; the base
            # is whatever literal component(s) this file registers.
            for c in REGISTRY_ADD_PREFIX_RE.findall(text):
                decl["coord_bases"].add(c.rstrip("."))
    # Fault-site stat rows are derived, not literal.
    fault_cc = root / "src" / "fault" / "fault.cc"
    if fault_cc.is_file():
        am = SITE_NAMES_ARRAY_RE.search(read(fault_cc))
        if am:
            for lit, _ in string_literals(am.group(1)):
                decl["scalars"].add(lit + ".triggers")
                decl["scalars"].add(lit + ".injected")
    # Queue/dispatcher tags compose "queue.chC.dD" from a full literal.
    return decl


def _declared_component(name: str, decl: dict) -> bool:
    if name in decl["components"]:
        return True
    m = COORD_RE.match(name)
    if m:
        base = m.group(1)
        # "queue.ch0.d0" is declared via the literal "queue.ch" concat
        # or a bare base that topology tags with a suffix.
        if base in decl["components"] or base + ".ch" in \
                {c.rstrip(".") + ".ch" for c in decl["components"]}:
            return True
        if base in decl["coord_bases"]:
            return True
        # "mc.ch0": declared as "mc.ch" + to_string(ch).
        if any(c.endswith(".ch") and base == c[:-3].rstrip(".")
               for c in decl["components"]):
            return True
    return False


def _scalar_declared(name: str, decl: dict) -> bool:
    if name in decl["scalars"] or name in decl["spans"]:
        return True
    for suffix in HIST_SUFFIXES:
        if name.endswith(suffix) and (
                name[:-len(suffix)] in decl["scalars"]):
            return True
    for pattern in decl["scalars"]:
        if pattern.startswith("*") and name.endswith(pattern[1:]):
            return True
    return False


def check_stat_registry(root: pathlib.Path, findings: list,
                        read=None) -> None:
    read = read or (lambda p: p.read_text())
    decl = collect_declared_names(root, read)

    # (a) Dual-naming contract: a name composing BOTH ".ch" and ".d"
    # coordinates (the chC.dD two-coordinate grammar) must provide the
    # 1x1 legacy alternative — an empty suffix, a bare-literal
    # fallback, or a `tagged`-style guard — in the same statement.
    # Channel-only names ("mc.chN") are canonical at every topology
    # and carry no dual-naming obligation.
    for path in sorted((root / "src").rglob("*.cc")):
        if not path.is_file():
            continue
        text = read(path)
        rel = path.relative_to(root).as_posix()
        for m in re.finditer(r'"(\.?[a-z_.]*ch)"\s*\+', text):
            window = text[max(0, m.start() - 400):m.start() + 400]
            if '".d"' not in window and '".d" +' not in window:
                continue
            if ("std::string()" not in window and
                    not re.search(r':\s*std::string\("[a-z_]+"\)', window)
                    and "suffix" not in window
                    and "tagged" not in window):
                findings.append(Finding(
                    "stat-registry", rel, line_of(text, m.start()),
                    m.group(1),
                    "coordinate-tagged stat name has no 1x1 legacy "
                    "fallback in the same registration; at 1x1 the "
                    "legacy (untagged) name must be emitted so "
                    "existing dashboards and goldens keep resolving"))

    # (b) References in tests/: exact component/scalar names pass;
    # near-misses are typos; coordinate grammar must parse.
    known = decl["components"] | decl["scalars"] | decl["spans"]
    for path in sorted((root / "tests").rglob("*.cc")):
        if not path.is_file():
            continue
        rel = path.relative_to(root).as_posix()
        if is_fixture(rel):
            continue
        text = read(path)
        for lit, pos in string_literals(text):
            if not STAT_LIKE_RE.match(lit) or len(lit) < 4:
                continue
            if "." not in lit:
                continue  # bare words are too ambiguous to audit
            if _declared_component(lit, decl) or _scalar_declared(
                    lit, decl):
                continue
            m = COORD_RE.match(lit)
            if m and not _declared_component(lit, decl):
                findings.append(Finding(
                    "stat-registry", rel, line_of(text, pos), lit,
                    f"test references coordinate stat '{lit}' whose "
                    f"base '{m.group(1)}' no src/ registration "
                    "declares — orphan or typo"))
                continue
            best, dist = None, 3
            for cand in known:
                d = edit_distance(lit, cand, cap=2)
                if d < dist:
                    best, dist = cand, d
            if best is not None and dist <= 2:
                findings.append(Finding(
                    "stat-registry", rel, line_of(text, pos), lit,
                    f"test references stat name '{lit}' which no src/ "
                    f"code declares; did you mean '{best}'?"))

    # (c) bench/baselines rows: every gated metric key must be emitted
    # by some bench source, else the baseline gates a phantom metric.
    bench_srcs = ""
    bench_dir = root / "bench"
    if bench_dir.is_dir():
        for path in sorted(bench_dir.glob("*")):
            if path.suffix in SRC_EXTS and path.is_file():
                bench_srcs += read(path)
    baselines = root / "bench" / "baselines"
    if baselines.is_dir() and bench_srcs:
        for bpath in sorted(baselines.glob("*.json")):
            try:
                doc = json.loads(read(bpath))
            except (ValueError, OSError):
                findings.append(Finding(
                    "stat-registry",
                    bpath.relative_to(root).as_posix(), 1,
                    bpath.name, "baseline file is not valid JSON"))
                continue
            rel = bpath.relative_to(root).as_posix()
            keys = set()
            for row in doc.get("results", []):
                keys.update(k for k, v in row.items()
                            if isinstance(v, (int, float)))
            for key in sorted(keys):
                # JSON keys appear in bench sources as escaped
                # literals: << "\"key\": " — match both forms.
                if not re.search(r'\\?"' + re.escape(key) + r'\\?"',
                                 bench_srcs):
                    findings.append(Finding(
                        "stat-registry", rel, 1, key,
                        f"baseline metric '{key}' is emitted by no "
                        "bench/*.cc — stale row or emitter typo; the "
                        "bench gate would fail on a missing metric"))


# --------------------------------------------------------------------------
# Rule: mmio-map — register map shape + window-helper-only access
# --------------------------------------------------------------------------

MMIO_ENUM_RE = re.compile(r"enum\s+class\s+MmioReg[^{]*\{(.*?)\}",
                          re.DOTALL)
MMIO_ENTRY_RE = re.compile(r"(\w+)\s*=\s*(0[xX][0-9a-fA-F]+|\d+)")
MMIO_BYTES_RE = re.compile(
    r"mmio_bytes\s*=\s*(\d+)\s*ULL\s*<<\s*(\d+)|mmio_bytes\s*=\s*(\d+)")
MMIO_REG_BYTES = 64

# Files allowed to touch mmio_base / decode MmioReg numerically: the
# config that defines the window, the driver (host-side window
# helper), the device decoder, and the topology factory that rebases
# per-slot windows.
MMIO_RAW_ALLOWED = {
    "src/smartdimm/config.h",
    "src/compcpy/driver.h",
    "src/smartdimm/buffer_device.h",
    "src/smartdimm/buffer_device.cc",
    "src/topo/topology.h",
    "src/topo/topology.cc",
}


def check_mmio_map(root: pathlib.Path, findings: list, read=None):
    read = read or (lambda p: p.read_text())
    config_h = root / "src" / "smartdimm" / "config.h"
    window_bytes = 1 << 20
    entries = []
    if config_h.is_file():
        clean = strip_comments_and_strings(read(config_h))
        wm = MMIO_BYTES_RE.search(clean)
        if wm:
            if wm.group(1):
                window_bytes = int(wm.group(1)) << int(wm.group(2))
            else:
                window_bytes = int(wm.group(3))
        em = MMIO_ENUM_RE.search(clean)
        if em:
            base_line = line_of(clean, em.start(1))
            for entry in MMIO_ENTRY_RE.finditer(em.group(1)):
                name, value = entry.group(1), int(entry.group(2), 0)
                lineno = base_line + em.group(1).count(
                    "\n", 0, entry.start())
                entries.append((name, value, lineno))

    rel_cfg = "src/smartdimm/config.h"
    seen = {}
    for name, value, lineno in entries:
        if value % 8 != 0:
            findings.append(Finding(
                "mmio-map", rel_cfg, lineno, name,
                f"MmioReg::{name} = {value:#x} is not 8-byte aligned; "
                "the DSA decoder does 64-bit MMIO loads"))
        if value in seen:
            findings.append(Finding(
                "mmio-map", rel_cfg, lineno, name,
                f"MmioReg::{name} = {value:#x} collides with "
                f"MmioReg::{seen[value]}"))
        else:
            seen[value] = name
        if value + MMIO_REG_BYTES > window_bytes:
            findings.append(Finding(
                "mmio-map", rel_cfg, lineno, name,
                f"MmioReg::{name} = {value:#x} does not fit the "
                f"{window_bytes:#x}-byte per-DIMM MMIO window; the "
                "topology's rebased windows would overlap the next "
                "slot"))
    # 64-byte register granularity: registers are full MMIO bursts,
    # so any two offsets closer than 64 bytes overlap.
    ordered = sorted((v, n, ln) for n, v, ln in entries)
    for (v1, n1, _), (v2, n2, ln2) in zip(ordered, ordered[1:]):
        if v2 - v1 < MMIO_REG_BYTES and v1 != v2:  # dup reported above
            findings.append(Finding(
                "mmio-map", rel_cfg, ln2, n2,
                f"MmioReg::{n2} = {v2:#x} overlaps the 64-byte "
                f"register MmioReg::{n1} = {v1:#x}"))

    # Access discipline: outside the allowlist, mmio_base arithmetic
    # and numeric MmioReg casts are banned; MmioReg uses must flow
    # through a .mmio(...) window-helper call.
    for path in sorted((root / "src").rglob("*")):
        if path.suffix not in SRC_EXTS or not path.is_file():
            continue
        rel = path.relative_to(root).as_posix()
        if rel in MMIO_RAW_ALLOWED:
            continue
        clean = strip_comments_and_strings(read(path))
        for m in re.finditer(r"\bmmio_base\b", clean):
            findings.append(Finding(
                "mmio-map", rel, line_of(clean, m.start()), "mmio_base",
                "raw mmio_base arithmetic outside the window helpers; "
                "use Driver::mmio(MmioReg::...) so per-DIMM rebasing "
                "cannot be bypassed"))
        for m in re.finditer(
                r"static_cast\s*<\s*(?:sd::)?Addr\s*>\s*\(\s*"
                r"(?:[\w:]+::)?MmioReg", clean):
            findings.append(Finding(
                "mmio-map", rel, line_of(clean, m.start()), "MmioReg-cast",
                "numeric MmioReg cast outside the window helpers; go "
                "through Driver::mmio()"))
        for m in re.finditer(r"\bMmioReg\s*::\s*k\w+", clean):
            before = clean[max(0, m.start() - 80):m.start()]
            if re.search(r"\bmmio\s*\(\s*(?:[\w:]+::)?$", before):
                continue  # driver.mmio(MmioReg::kX) — the blessed helper
            if re.search(r"\bcase\s*$", before.rstrip()[-8:] + ""):
                continue  # decoder switch (allowlisted files anyway)
            findings.append(Finding(
                "mmio-map", rel, line_of(clean, m.start()), m.group(0),
                f"{m.group(0)} used outside a .mmio(...) window-helper "
                "call; register addresses must come from Driver::mmio()"))


# --------------------------------------------------------------------------
# Rule: addr-arith — narrowing + unit-mixing in address arithmetic
# --------------------------------------------------------------------------

ADDR_AUDITED = (
    "src/mem/address_map.h", "src/mem/address_map.cc",
    "src/mem/dimm_mux.h",
    "src/topo/dispatcher.h", "src/topo/dispatcher.cc",
    "src/cache/cache.h", "src/cache/cache.cc",
    "src/cache/memory_system.h", "src/cache/memory_system.cc",
)

NARROW_CAST_RE = re.compile(
    r"static_cast\s*<\s*(unsigned(?:\s+int)?|int|std::uint(?:8|16|32)_t)"
    r"\s*>\s*\(")
MAGIC_UNIT_RES = [
    (re.compile(r"(?:>>|<<)\s*6\b"),
     "magic shift by 6; use kLineBits (line<->byte) or kPageLineBits "
     "(line<->page) so the unit conversion is named"),
    (re.compile(r"(?:>>|<<)\s*12\b"),
     "magic shift by 12; use kPageBits for byte<->page conversions"),
    (re.compile(r"[*/%]\s*64\b(?!\s*['\w])"),
     "magic 64 in address arithmetic; use kCacheLineSize or "
     "kLinesPerPage"),
    (re.compile(r"&\s*63\b"),
     "magic mask 63; use (kCacheLineSize - 1) or (kLinesPerPage - 1)"),
    (re.compile(r"\b4096\b"),
     "magic 4096 in address arithmetic; use kPageSize"),
]
LINEISH_RE = re.compile(r"\b\w*lines?\w*\b", re.IGNORECASE)
BYTEISH_RE = re.compile(r"\b\w*bytes?\w*\b", re.IGNORECASE)
UNIT_OK_RE = re.compile(r"kCacheLineSize|kLineBits|kPageSize|kPageBits"
                        r"|kLinesPerPage|kPageLineBits")


def _balanced_extent(text: str, open_pos: int) -> str:
    depth = 0
    for i in range(open_pos, len(text)):
        if text[i] == "(":
            depth += 1
        elif text[i] == ")":
            depth -= 1
            if depth == 0:
                return text[open_pos + 1:i]
    return text[open_pos + 1:]


def check_addr_arith(root: pathlib.Path, findings: list, read=None,
                     audited=ADDR_AUDITED):
    read = read or (lambda p: p.read_text())
    for rel in audited:
        path = root / rel
        if not path.is_file():
            continue
        clean = blank_preprocessor(
            strip_comments_and_strings(read(path)))

        # (a) narrowing casts of div/mod results must be checked.
        for m in NARROW_CAST_RE.finditer(clean):
            arg = _balanced_extent(clean, m.end() - 1)
            if not re.search(r"[/%]", arg):
                continue
            if re.search(r"\b(?:bits|narrowIdx)\s*\(", arg):
                continue
            findings.append(Finding(
                "addr-arith", rel, line_of(clean, m.start()),
                m.group(0).replace(" ", ""),
                f"unchecked narrowing cast of a div/mod result "
                f"('{arg.strip()[:40]}'); route through narrowIdx() "
                "(bound-asserting) or bits() so a geometry bug cannot "
                "silently truncate an index"))

        # (b) magic unit constants.
        for unit_re, msg in MAGIC_UNIT_RES:
            for m in unit_re.finditer(clean):
                findings.append(Finding(
                    "addr-arith", rel, line_of(clean, m.start()),
                    m.group(0).replace(" ", ""), msg))

        # (c) additive mixing of line-unit and byte-unit quantities.
        for stmt_m in re.finditer(r"[^;{}]+", clean):
            stmt = stmt_m.group(0)
            if "+" not in stmt and "-" not in stmt:
                continue
            if UNIT_OK_RE.search(stmt):
                continue
            # Only additive contexts: split on = to get the expression.
            expr = stmt.split("=", 1)[-1]
            lin = LINEISH_RE.search(expr)
            byt = BYTEISH_RE.search(expr)
            if not lin or not byt:
                continue
            between = expr[min(lin.start(), byt.start()):
                           max(lin.end(), byt.end())]
            if re.search(r"[+\-]", between) and "/" not in between \
                    and "*" not in between:
                findings.append(Finding(
                    "addr-arith", rel,
                    line_of(clean, stmt_m.start() +
                            stmt.find(expr.strip()[:1]) if True else 0),
                    f"{lin.group(0)}+{byt.group(0)}",
                    f"additive mix of line-unit '{lin.group(0)}' and "
                    f"byte-unit '{byt.group(0)}' without a "
                    "kCacheLineSize conversion — unit confusion"))


# --------------------------------------------------------------------------
# Driver: run all rules over the tree
# --------------------------------------------------------------------------


def run_analysis(root: pathlib.Path, build: pathlib.Path,
                 regex_only: bool):
    """@return (findings, backend_name, fault_summary)."""
    functions, backend = make_backend(root, build, regex_only)
    findings = []

    # Per-file rule: span-flow over every src/ translation unit.
    for path in sorted((root / "src").rglob("*")):
        if path.suffix not in SRC_EXTS or not path.is_file():
            continue
        rel = path.relative_to(root).as_posix()
        clean = strip_comments_and_strings(path.read_text())
        if backend == "libclang":
            fns = functions(path, blank_preprocessor(clean))
            for fn in fns:
                _SpanFlow(fn, blank_preprocessor(clean), rel,
                          findings).run()
        else:
            check_span_flow(rel, clean,
                            lambda _p, c: extract_functions_regex(c),
                            findings)

    # Cross-module rules.
    fault_summary = check_fault_coverage(root, findings)
    check_stat_registry(root, findings)
    check_mmio_map(root, findings)
    check_addr_arith(root, findings)
    return findings, backend, fault_summary


# --------------------------------------------------------------------------
# Baseline contract (same shape as bench_gate: committed file, fail on
# unbaselined, warn on stale, --update-baseline adopts)
# --------------------------------------------------------------------------


def load_baseline(path: pathlib.Path) -> list:
    if not path.is_file():
        return []
    doc = json.loads(path.read_text())
    return [(e["rule"], e["file"], e["context"]) for e in
            doc.get("findings", [])]


def apply_baseline(findings: list, baseline: list):
    """@return (unbaselined, stale)."""
    budget = {}
    for key in baseline:
        budget[key] = budget.get(key, 0) + 1
    unbaselined = []
    for f in findings:
        if budget.get(f.key(), 0) > 0:
            budget[f.key()] -= 1
        else:
            unbaselined.append(f)
    stale = [k for k, n in budget.items() for _ in range(n) if n > 0]
    return unbaselined, stale


def write_baseline(findings: list, path: pathlib.Path):
    doc = {"findings": [
        {"rule": f.rule, "file": f.file, "context": f.context}
        for f in sorted(findings, key=lambda f: f.key())]}
    path.write_text(json.dumps(doc, indent=2) + "\n")


# --------------------------------------------------------------------------
# Self test — embedded corpus + on-disk fixtures (tests/tools/fixtures)
# --------------------------------------------------------------------------

SPAN_SELF_TESTS = [
    # (name, body source, expected finding count)
    ("balanced",
     "void f() { auto s = SD_SPAN_BEGIN(\"x\",0,0,0,0);"
     " SD_SPAN_END(s,1); }", 0),
    ("leaked-at-end",
     "void f() { auto s = SD_SPAN_BEGIN(\"x\",0,0,0,0); }", 1),
    ("early-return-leak",
     "int f(bool b) {\n"
     "  auto s = SD_SPAN_BEGIN(\"x\",0,0,0,0);\n"
     "  if (b) return -1;\n"
     "  SD_SPAN_END(s,1);\n"
     "  return 0;\n"
     "}", 1),
    ("early-return-clean",
     "int f(bool b) {\n"
     "  auto s = SD_SPAN_BEGIN(\"x\",0,0,0,0);\n"
     "  if (b) { SD_SPAN_END(s,1); return -1; }\n"
     "  SD_SPAN_END(s,1);\n"
     "  return 0;\n"
     "}", 0),
    ("branch-balanced-both-arms",
     "void f(bool b) {\n"
     "  auto s = SD_SPAN_BEGIN(\"x\",0,0,0,0);\n"
     "  if (b) { SD_SPAN_END(s,1); } else { SD_SPAN_END(s,2); }\n"
     "}", 0),  # the form the old linear rule mis-flagged
    ("if-no-else-leak",
     "void f(bool b) {\n"
     "  auto s = SD_SPAN_BEGIN(\"x\",0,0,0,0);\n"
     "  if (b) { SD_SPAN_END(s,1); }\n"
     "}", 1),
    ("end-without-begin",
     "void f() { SD_SPAN_END(0,1); }", 1),
    ("loop-balanced",
     "void f(int n) {\n"
     "  for (int i = 0; i < n; ++i) {\n"
     "    auto s = SD_SPAN_BEGIN(\"x\",0,0,0,0);\n"
     "    SD_SPAN_END(s,1);\n"
     "  }\n"
     "}", 0),
    ("loop-leak",
     "void f(int n) {\n"
     "  for (int i = 0; i < n; ++i) {\n"
     "    auto s = SD_SPAN_BEGIN(\"x\",0,0,0,0);\n"
     "    if (i == 3) continue;\n"
     "    SD_SPAN_END(s,1);\n"
     "  }\n"
     "}", 1),
    ("throw-leak",
     "void f(bool b) {\n"
     "  auto s = SD_SPAN_BEGIN(\"x\",0,0,0,0);\n"
     "  if (b) throw 1;\n"
     "  SD_SPAN_END(s,1);\n"
     "}", 1),
    ("switch-per-case-balanced",
     "void f(int k) {\n"
     "  auto s = SD_SPAN_BEGIN(\"x\",0,0,0,0);\n"
     "  switch (k) {\n"
     "    case 0: SD_SPAN_END(s,1); break;\n"
     "    default: SD_SPAN_END(s,2); break;\n"
     "  }\n"
     "}", 1),  # no-case-taken path leaks (no default coverage proof)
    ("two-functions-independent",
     "void f() { auto s = SD_SPAN_BEGIN(\"x\",0,0,0,0);"
     " SD_SPAN_END(s,1); }\n"
     "void g() { SD_SPAN_END(0,1); }", 1),
    ("raw-api-ignored",
     "void f() { span_ = tracer().beginSpan(\"x\",0,0,0,0); }", 0),
    ("macro-def-ignored",
     "#define SD_SPAN_BEGIN(k,s,d,b,n) x\nint f() { return 0; }", 0),
    ("nested-scope-balanced",
     "void f(bool b) {\n"
     "  auto s = SD_SPAN_BEGIN(\"x\",0,0,0,0);\n"
     "  { int y = 0; (void)y; }\n"
     "  SD_SPAN_END(s,1);\n"
     "}", 0),
    ("multiple-spans-one-leak",
     "void f() {\n"
     "  auto a = SD_SPAN_BEGIN(\"x\",0,0,0,0);\n"
     "  auto b = SD_SPAN_BEGIN(\"y\",0,0,0,0);\n"
     "  SD_SPAN_END(a,1);\n"
     "}", 1),
]


def _fixture_tree_reader(base: pathlib.Path):
    return lambda p: pathlib.Path(p).read_text()


def run_fixture(root: pathlib.Path, rule: str) -> list:
    """Run exactly one rule family over a fixture tree."""
    findings = []
    if rule == "span-flow":
        for path in sorted((root / "src").rglob("*")):
            if path.suffix in SRC_EXTS and path.is_file():
                clean = strip_comments_and_strings(path.read_text())
                check_span_flow(path.relative_to(root).as_posix(),
                                clean,
                                lambda _p, c: extract_functions_regex(c),
                                findings)
    elif rule == "fault-coverage":
        check_fault_coverage(root, findings)
    elif rule == "stat-registry":
        check_stat_registry(root, findings)
    elif rule == "mmio-map":
        check_mmio_map(root, findings)
    elif rule == "addr-arith":
        audited = tuple(
            p.relative_to(root).as_posix()
            for p in sorted((root / "src").rglob("*"))
            if p.suffix in SRC_EXTS and p.is_file())
        check_addr_arith(root, findings, audited=audited)
    else:
        raise ValueError(f"unknown fixture rule {rule}")
    return findings


def self_test(repo_root: pathlib.Path) -> int:
    failures = 0

    # 1. Embedded span-flow corpus.
    for name, source, expected in SPAN_SELF_TESTS:
        findings = []
        clean = strip_comments_and_strings(source)
        check_span_flow(f"<self-test:{name}>", clean,
                        lambda _p, c: extract_functions_regex(c),
                        findings)
        got = len(findings)
        if got != expected:
            failures += 1
            print(f"FAIL span-flow/{name}: expected {expected} "
                  f"finding(s), got {got}")
            for f in findings:
                print(f"    {f}")
        else:
            print(f"ok   span-flow/{name}")

    # 2. On-disk fixtures: tests/tools/fixtures/<rule>/{good,bad}/ —
    # good trees must be clean, bad trees must raise >= 1 finding of
    # their rule.
    fixtures = repo_root / "tests" / "tools" / "fixtures"
    if fixtures.is_dir():
        for rule_dir in sorted(fixtures.iterdir()):
            if not rule_dir.is_dir():
                continue
            rule = rule_dir.name.replace("_", "-")
            for kind in ("good", "bad"):
                tree = rule_dir / kind
                if not tree.is_dir():
                    failures += 1
                    print(f"FAIL fixture {rule}/{kind}: missing tree")
                    continue
                findings = run_fixture(tree, rule)
                rule_findings = [f for f in findings if f.rule == rule]
                ok = (not rule_findings) if kind == "good" else \
                    bool(rule_findings)
                if ok:
                    print(f"ok   fixture {rule}/{kind} "
                          f"({len(rule_findings)} finding(s))")
                else:
                    failures += 1
                    print(f"FAIL fixture {rule}/{kind}: "
                          f"{len(rule_findings)} {rule} finding(s)")
                    for f in findings:
                        print(f"    {f}")
    else:
        failures += 1
        print(f"FAIL fixtures directory missing: {fixtures}")

    # 3. Baseline mechanics.
    fs = [Finding("r", "f.cc", 1, "ctx", "m"),
          Finding("r", "f.cc", 2, "ctx", "m"),
          Finding("r2", "g.cc", 3, "other", "m")]
    unb, stale = apply_baseline(fs, [("r", "f.cc", "ctx")])
    if len(unb) == 2 and not stale:
        print("ok   baseline/count-budget")
    else:
        failures += 1
        print(f"FAIL baseline/count-budget: {len(unb)} unbaselined, "
              f"{len(stale)} stale")
    unb, stale = apply_baseline([], [("r", "f.cc", "ctx")])
    if not unb and len(stale) == 1:
        print("ok   baseline/stale-entry")
    else:
        failures += 1
        print("FAIL baseline/stale-entry")

    if failures:
        print(f"sdcheck --self-test: {failures} failure(s)",
              file=sys.stderr)
        return 1
    print("sdcheck --self-test: all cases pass")
    return 0


# --------------------------------------------------------------------------
# main
# --------------------------------------------------------------------------


def main() -> int:
    repo = pathlib.Path(__file__).resolve().parent.parent
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--root", type=pathlib.Path, default=repo,
                        help="repository root")
    parser.add_argument("--build", type=pathlib.Path, default=None,
                        help="build dir holding compile_commands.json "
                             "(default: ROOT/build)")
    parser.add_argument("--baseline", type=pathlib.Path, default=None,
                        help="baseline JSON (default: "
                             "tools/sdcheck_baseline.json)")
    parser.add_argument("--json", type=pathlib.Path, default=None,
                        help="write findings JSON to this path")
    parser.add_argument("--regex-only", action="store_true",
                        help="skip libclang even when installed")
    parser.add_argument("--update-baseline", action="store_true",
                        help="adopt current findings as the baseline")
    parser.add_argument("--self-test", action="store_true",
                        help="run the analyzer's own corpus + fixtures")
    args = parser.parse_args()

    if args.self_test:
        return self_test(args.root)

    root = args.root.resolve()
    build = (args.build or root / "build").resolve()
    baseline_path = args.baseline or root / "tools" / \
        "sdcheck_baseline.json"

    findings, backend, fault_summary = run_analysis(
        root, build, args.regex_only)
    print(f"sdcheck: backend={backend}, {len(findings)} raw finding(s)")

    covered = fault_summary.get("covered", 0)
    total = len(fault_summary.get("sites", []))
    print(f"sdcheck: fault-site coverage {covered}/{total} sites have "
          "injection + stats + test")

    if args.json:
        args.json.write_text(json.dumps({
            "backend": backend,
            "fault_coverage": fault_summary,
            "findings": [f.as_json() for f in findings],
        }, indent=2) + "\n")

    if args.update_baseline:
        write_baseline(findings, baseline_path)
        print(f"sdcheck: baseline written to {baseline_path} "
              f"({len(findings)} entries)")
        return 0

    baseline = load_baseline(baseline_path)
    unbaselined, stale = apply_baseline(findings, baseline)
    for key in stale:
        print(f"sdcheck: stale baseline entry {key} (fixed? run "
              "--update-baseline)")
    for f in unbaselined:
        print(f"{f.file}:{f.line}: [{f.rule}] {f.msg}")
    if unbaselined:
        print(f"sdcheck: {len(unbaselined)} unbaselined finding(s)",
              file=sys.stderr)
        return 1
    print("sdcheck: clean (no unbaselined findings)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
