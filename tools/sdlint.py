#!/usr/bin/env python3
"""sdlint — project-specific invariant linter for the SmartDIMM repo.

Checks invariants that generic tools (clang-tidy, compiler warnings)
cannot express because they encode *project* contracts:

  determinism   no rand()/srand()/std::random_device in src/ — all
                randomness must flow through sd::Rng so runs replay
                bit-identically from a seed.
  iostream      no `#include <iostream>` in src/ headers — pulling the
                static ios_base initialiser into every TU bloats the
                data plane; sinks take std::ostream& instead.
  guards        every src/ header has an #ifndef SD_* include guard.
  queue-bypass  CompCpyEngine::startOp() is the engine's private
                execution hook for WorkQueue; everything else must go
                through a queue (or the sync facade run()/start()) so
                there is exactly one execution path.
  wakeup-bypass scheduler wakeups must flow through requestPass(),
                which coalesces redundant passes behind the pending-
                pass flag; scheduling a schedulePass() lambda directly
                silently defeats the coalescing (and its accounting).
  topology-construction
                MemorySystem/BufferDevice are constructed only inside
                the topo::Topology factory: it owns the address
                windows, rebased MMIO bases, fault scopes and stat
                names. This rule also covers bench/ and examples/
                (production-shaped rigs); tests/ may wire bespoke rigs.

Span balance and the MMIO register map moved to tools/sdcheck.py,
which checks them with control-flow-aware dataflow and a cross-TU
window-helper audit respectively — sdlint keeps only the cheap
per-file text rules so the two tools never double-report.

Usage:
  tools/sdlint.py [--root DIR]     lint the tree (exit 1 on findings)
  tools/sdlint.py --self-test      run the linter's own test corpus
"""

from __future__ import annotations

import argparse
import pathlib
import re
import sys

SRC_EXTS = {".h", ".cc"}


def strip_comments_and_strings(text: str) -> str:
    """Blank out comments and string/char literals, preserving offsets
    and newlines so line numbers and brace positions stay valid."""
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line | block | str | chr
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "str"
                out.append(" ")
                i += 1
                continue
            if c == "'":
                state = "chr"
                out.append(" ")
                i += 1
                continue
            out.append(c)
        elif state == "line":
            if c == "\n":
                state = "code"
                out.append("\n")
            elif c == "\\" and nxt == "\n":
                out.append(" \n")
                i += 2
                continue
            else:
                out.append(" ")
        elif state == "block":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append("\n" if c == "\n" else " ")
        else:  # str / chr
            quote = '"' if state == "str" else "'"
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == quote:
                state = "code"
            out.append(" ")
        i += 1
    return "".join(out)


def line_of(text: str, pos: int) -> int:
    return text.count("\n", 0, pos) + 1


# --------------------------------------------------------------------------
# Rule: determinism
# --------------------------------------------------------------------------

RANDOM_RE = re.compile(r"\b(?:srand|rand)\s*\(|std\s*::\s*random_device")


def check_determinism(path: pathlib.Path, text: str, clean: str) -> list:
    findings = []
    for m in RANDOM_RE.finditer(clean):
        findings.append(
            (path, line_of(clean, m.start()), "determinism",
             f"'{m.group(0).strip()}' breaks replayability; "
             "use sd::Rng seeded from the config"))
    return findings


# --------------------------------------------------------------------------
# Rule: iostream
# --------------------------------------------------------------------------

IOSTREAM_RE = re.compile(r"^\s*#\s*include\s*<iostream>", re.MULTILINE)


def check_iostream(path: pathlib.Path, text: str, clean: str) -> list:
    if path.suffix != ".h":
        return []
    findings = []
    for m in IOSTREAM_RE.finditer(clean):
        findings.append(
            (path, line_of(clean, m.start()), "iostream",
             "<iostream> in a header drags the ios_base initialiser "
             "into every TU; take std::ostream& instead"))
    return findings


# --------------------------------------------------------------------------
# Rule: guards
# --------------------------------------------------------------------------

GUARD_RE = re.compile(r"^\s*#\s*ifndef\s+(SD_\w+)\s*$\s*^\s*#\s*define\s+\1\s*$",
                      re.MULTILINE)


def check_guards(path: pathlib.Path, text: str, clean: str) -> list:
    if path.suffix != ".h":
        return []
    if GUARD_RE.search(text):
        return []
    return [(path, 1, "guards",
             "header lacks an #ifndef SD_* include guard")]


# --------------------------------------------------------------------------
# Rule: recoverable-assert
# --------------------------------------------------------------------------

ASSERT_RE = re.compile(r"\bSD_ASSERT\s*\(")

# Modules threaded with fault-injection sites (src/fault): code here
# runs under the chaos soak, so a *new* SD_ASSERT is usually a panic on
# a recoverable path — prefer a degraded-mode completion (kDegraded,
# rejected registration, bounded retry) and a stat. The per-file counts
# below baseline the asserts that guard genuine programming errors;
# raise a file's count only when the new assert is one of those.
RECOVERABLE_ASSERT_BASELINE = {
    "mem/address_map.cc": 3,  # construction-time geometry invariants
    "mem/cxl_link.cc": 2,  # construction-time link-config invariants
    "mem/bank_state.h": 1,
    "mem/dimm_mux.h": 2,  # chip-select decode of a malformed coord
    "mem/memory_controller.cc": 2,
    "smartdimm/buffer_device.cc": 3,
    "smartdimm/config_memory.cc": 4,
    "smartdimm/cuckoo_table.cc": 1,
    "smartdimm/deflate_dsa.cc": 4,
    "smartdimm/scratchpad.cc": 9,
    "smartdimm/tls_dsa.cc": 4,
    "smartdimm/bank_table.h": 1,
    "compcpy/compcpy.cc": 3,
    "compcpy/offload_engine.cc": 2,
    "compcpy/queue.cc": 5,
    "compcpy/driver.h": 2,
    "net/tcp_stream.cc": 1,
}
INJECTED_MODULES = ("mem", "smartdimm", "compcpy", "net")


def check_recoverable_assert(path: pathlib.Path, text: str,
                             clean: str) -> list:
    parts = path.parts
    if len(parts) < 2 or parts[-2] not in INJECTED_MODULES:
        return []
    rel = f"{parts[-2]}/{parts[-1]}"
    count = len(ASSERT_RE.findall(clean))
    allowed = RECOVERABLE_ASSERT_BASELINE.get(rel, 0)
    if count <= allowed:
        return []
    last = 0
    for m in ASSERT_RE.finditer(clean):
        last = line_of(clean, m.start())
    return [(path, last, "recoverable-assert",
             f"{rel} has {count} SD_ASSERT(s), baseline {allowed}: this "
             "module runs under fault injection — handle the failure as "
             "a degraded mode (retry/reject/kDegraded + stat) or, for a "
             "genuine invariant, raise the baseline in sdlint.py")]


# --------------------------------------------------------------------------
# Rule: queue-bypass
# --------------------------------------------------------------------------

QUEUE_BYPASS_RE = re.compile(r"\bstartOp\s*\(")

# startOp() is CompCpyEngine's private execution hook; only the queue
# (which owns dispatch ordering) and the engine itself (declaration +
# sync facade) may name it. Any other call site is skipping descriptor
# accounting, completion records and the per-queue fallback decision.
QUEUE_BYPASS_ALLOWED = {
    "compcpy/compcpy.h",
    "compcpy/compcpy.cc",
    "compcpy/queue.cc",
}


def check_queue_bypass(path: pathlib.Path, text: str, clean: str) -> list:
    parts = path.parts
    rel = "/".join(parts[-2:]) if len(parts) >= 2 else parts[-1]
    if rel in QUEUE_BYPASS_ALLOWED:
        return []
    findings = []
    for m in QUEUE_BYPASS_RE.finditer(clean):
        findings.append(
            (path, line_of(clean, m.start()), "queue-bypass",
             "startOp() bypasses the work-queue front end; submit a "
             "Descriptor through a WorkQueue (or the sync facade "
             "run()/start()) so the call is accounted and reaped"))
    return findings


# --------------------------------------------------------------------------
# Rule: wakeup-bypass
# --------------------------------------------------------------------------

WAKEUP_BYPASS_RE = re.compile(r"\bschedule(?:In)?\s*\([^;]*schedulePass",
                              re.DOTALL)

# requestPass() is the only place allowed to put a schedulePass() event
# on the queue: it owns the pending-pass flag, the pass epoch and the
# wakeups_requested/coalesced accounting. The baseline covers its two
# legitimate schedule sites (uncoalesced reference mode + the epoch-
# guarded coalesced path).
WAKEUP_BYPASS_BASELINE = {
    "mem/memory_controller.cc": 2,
}


def check_wakeup_bypass(path: pathlib.Path, text: str, clean: str) -> list:
    parts = path.parts
    rel = "/".join(parts[-2:]) if len(parts) >= 2 else parts[-1]
    matches = list(WAKEUP_BYPASS_RE.finditer(clean))
    allowed = WAKEUP_BYPASS_BASELINE.get(rel, 0)
    if len(matches) <= allowed:
        return []
    findings = []
    for m in matches[allowed:]:
        findings.append(
            (path, line_of(clean, m.start()), "wakeup-bypass",
             "scheduling schedulePass() directly bypasses requestPass() "
             "wakeup coalescing; call requestPass(when) instead (or, for "
             "a new legitimate site inside it, raise the baseline in "
             "sdlint.py)"))
    return findings


# --------------------------------------------------------------------------
# Rule: topology-construction
# --------------------------------------------------------------------------

TOPOLOGY_CTOR_RE = re.compile(
    r"\bnew\s+(?:[\w:]+\s*::\s*)?(?:MemorySystem|BufferDevice)\b"
    r"|\bmake_unique\s*<\s*[\w:]*(?:MemorySystem|BufferDevice)\s*>"
    r"|\b(?:MemorySystem|BufferDevice)\s+\w+\s*[({]")

# The factory is the only place allowed to construct the platform
# devices: it computes the per-slot capacity windows, rebases each
# device's MMIO base into its slot, threads fault scopes and keeps the
# per-device stat names consistent. A hand-wired rig silently gets one
# global MMIO window and unscoped faults. (References, pointers and
# template parameters don't match — only construction does.)
TOPOLOGY_CTOR_ALLOWED = {
    "topo/topology.h",
    "topo/topology.cc",
}


def check_topology_construction(path: pathlib.Path, text: str,
                                clean: str) -> list:
    parts = path.parts
    rel = "/".join(parts[-2:]) if len(parts) >= 2 else parts[-1]
    if rel in TOPOLOGY_CTOR_ALLOWED:
        return []
    findings = []
    for m in TOPOLOGY_CTOR_RE.finditer(clean):
        findings.append(
            (path, line_of(clean, m.start()), "topology-construction",
             "construct MemorySystem/BufferDevice through the "
             "topo::Topology factory (topo/topology.h): it owns the "
             "address windows, rebased MMIO bases, fault scopes and "
             "stat names; only tests may wire bespoke rigs"))
    return findings


CHECKS = [check_determinism, check_iostream, check_guards,
          check_recoverable_assert, check_queue_bypass,
          check_wakeup_bypass, check_topology_construction]


def lint_text(path: pathlib.Path, text: str) -> list:
    clean = strip_comments_and_strings(text)
    findings = []
    for check in CHECKS:
        findings.extend(check(path, text, clean))
    return findings


def lint_tree(root: pathlib.Path) -> int:
    findings = []
    src = root / "src"
    for path in sorted(src.rglob("*")):
        if path.suffix in SRC_EXTS and path.is_file():
            findings.extend(lint_text(path, path.read_text()))
    # bench/ and examples/ build production-shaped rigs, so the
    # topology-construction rule (and only it) extends there; tests/
    # stay free to wire bespoke rigs.
    for sub in ("bench", "examples"):
        for path in sorted((root / sub).rglob("*")):
            if path.suffix in SRC_EXTS | {".cpp"} and path.is_file():
                text = path.read_text()
                findings.extend(check_topology_construction(
                    path, text, strip_comments_and_strings(text)))
    for path, lineno, rule, msg in findings:
        print(f"{path}:{lineno}: [{rule}] {msg}")
    if findings:
        print(f"sdlint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    return 0


# --------------------------------------------------------------------------
# Self test
# --------------------------------------------------------------------------

SELF_TESTS = [
    # (name, source, suffix, expected rule names)
    ("rand-call", "int f() { return rand(); }", ".cc", ["determinism"]),
    ("srand-call", "void f() { srand(42); }", ".cc", ["determinism"]),
    ("random-device", "#include <random>\nstd::random_device rd;", ".cc",
     ["determinism"]),
    ("rand-in-comment", "// rand() is banned\nint f() { return 0; }", ".cc",
     []),
    ("rand-in-string",
     '#ifndef SD_X_H\n#define SD_X_H\nconst char *k = "rand()";\n#endif',
     ".h", []),
    ("rand-substring", "int grand() { return strand(); }", ".cc", []),
    # span balance moved to sdcheck (control-flow-aware); sdlint must
    # stay silent on span macros so the tools never double-report.
    ("span-now-sdcheck",
     "void f() { auto s = SD_SPAN_BEGIN(\"x\",0,0,0,0); }", ".cc", []),
    ("iostream-header",
     "#ifndef SD_A_H\n#define SD_A_H\n#include <iostream>\n#endif", ".h",
     ["iostream"]),
    ("iostream-impl", "#include <iostream>\nint x;", ".cc", []),
    # MMIO register-map checks moved to sdcheck (adds overlap, window
    # fit and the window-helper access audit); a misaligned enum must
    # no longer be sdlint's problem.
    ("mmio-now-sdcheck",
     "#ifndef SD_C_H\n#define SD_C_H\n"
     "enum class MmioReg : unsigned { kA = 0x00, kB = 0x44, kC = 0x3 };\n"
     "#endif", ".h", []),
    ("guard-missing", "int x;", ".h", ["guards"]),
    # recoverable-assert cases: a "/" in the name makes it the lint
    # path, so the rule sees a module-relative location.
    ("mem/new_unit", "void f() { SD_ASSERT(x, \"boom\"); }", ".cc",
     ["recoverable-assert"]),
    ("mem/memory_controller",
     "void f() { SD_ASSERT(a, \"x\"); SD_ASSERT(b, \"y\"); }", ".cc",
     []),  # within baseline
    ("mem/memory_controller",
     "void f() { SD_ASSERT(a, \"x\"); SD_ASSERT(b, \"y\"); "
     "SD_ASSERT(c, \"z\"); }", ".cc",
     ["recoverable-assert"]),  # above baseline
    ("trace/trace", "void f() { SD_ASSERT(x, \"fine\"); }", ".cc",
     []),  # not an injected module
    ("mem/new_unit2", "// SD_ASSERT(x) would be wrong here\nint x;",
     ".cc", []),  # comments don't count
    # queue-bypass cases
    ("compcpy/rogue_caller", "void f() { engine.startOp(p, s, cb); }",
     ".cc", ["queue-bypass"]),
    ("compcpy/queue", "void f() { engine_.startOp(p, s, cb); }", ".cc",
     []),  # the queue is the blessed dispatcher
    ("compcpy/compcpy", "void f() { startOp(p, s, cb); }", ".cc",
     []),  # the engine's own sync facade
    ("smartdimm/rogue2", "// startOp() is off limits\nint x;", ".cc",
     []),  # comments don't count
    # wakeup-bypass cases
    ("mem/rogue_scheduler",
     "void f() { events_.schedule(t, [this] { schedulePass(); }); }",
     ".cc", ["wakeup-bypass"]),
    ("mem/rogue_scheduler2",
     "void f() { events_.scheduleIn(5, [this] { schedulePass(); }); }",
     ".cc", ["wakeup-bypass"]),
    ("mem/memory_controller",
     "void a() { events_.schedule(t, [this] { schedulePass(); }); }\n"
     "void b() { events_.schedule(t, [this, e] { schedulePass(); }); }",
     ".cc", []),  # requestPass()'s two blessed sites
    ("mem/memory_controller",
     "void a() { events_.schedule(t, [this] { schedulePass(); }); }\n"
     "void b() { events_.schedule(t, [this, e] { schedulePass(); }); }\n"
     "void c() { events_.schedule(t, [this] { schedulePass(); }); }",
     ".cc", ["wakeup-bypass"]),  # a third site is flagged
    ("mem/ok_request", "void f() { requestPass(clock_.nextEdge(now)); }",
     ".cc", []),  # the blessed entry point
    ("mem/comment_only", "// events_.schedule(t, schedulePass) is banned\n",
     ".cc", []),  # comments don't count
    # topology-construction cases
    ("cache/rogue_rig",
     "void f() { cache::MemorySystem memory(e, g, i, c, d); }", ".cc",
     ["topology-construction"]),
    ("smartdimm/rogue_dimm",
     "void f() { smartdimm::BufferDevice dimm(e, m, s); }", ".cc",
     ["topology-construction"]),
    ("app/rogue_ptr",
     "auto m = std::make_unique<cache::MemorySystem>(a, b);", ".cc",
     ["topology-construction"]),
    ("app/rogue_new",
     "auto *d = new smartdimm::BufferDevice(a, b, c);", ".cc",
     ["topology-construction"]),
    ("topo/topology",
     "void f() { cache::MemorySystem memory(a, b); }", ".cc",
     []),  # the factory itself is the blessed construction site
    ("cache/ref_ok",
     "void f(cache::MemorySystem &m, smartdimm::BufferDevice *d) "
     "{ m.writeSync(0, p, n); }", ".cc",
     []),  # references and pointers are uses, not construction
    ("cache/member_ok",
     "void f() { std::deque<smartdimm::BufferDevice> pool; }", ".cc",
     []),  # container element types are not construction sites
]


def self_test() -> int:
    failures = 0
    for name, source, suffix, expected in SELF_TESTS:
        if "/" in name:
            test_path = pathlib.Path(name + suffix)
        else:
            test_path = pathlib.Path(f"<self-test:{name}>{suffix}")
        findings = lint_text(test_path, source)
        got = sorted(rule for _, _, rule, _ in findings)
        if got != sorted(expected):
            failures += 1
            print(f"FAIL {name}: expected {sorted(expected)}, got {got}")
            for f in findings:
                print(f"    {f}")
        else:
            print(f"ok   {name}")
    if failures:
        print(f"sdlint --self-test: {failures} failure(s)", file=sys.stderr)
        return 1
    print(f"sdlint --self-test: all {len(SELF_TESTS)} cases pass")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", type=pathlib.Path,
                        default=pathlib.Path(__file__).resolve().parent.parent,
                        help="repository root (default: repo containing this script)")
    parser.add_argument("--self-test", action="store_true",
                        help="run the linter's own test corpus")
    args = parser.parse_args()
    if args.self_test:
        return self_test()
    return lint_tree(args.root)


if __name__ == "__main__":
    sys.exit(main())
