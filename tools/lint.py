#!/usr/bin/env python3
"""lint — single entry point for all three SmartDIMM analysis tiers.

Runs, in order:

  1. sdlint    cheap per-file text rules (determinism, iostream,
               guards, recoverable-assert, queue/wakeup bypass,
               topology construction)
  2. sdcheck   control-flow and cross-TU audits (span dataflow,
               fault-site coverage, stat registry, MMIO map, address
               arithmetic) against the committed baseline
  3. clang-tidy (via tools/run_tidy.sh) over compile_commands.json,
               enforcing — skipped when clang-tidy is not installed
               or with --fast

and exits non-zero when any tier fails, so one command covers local
pre-commit, the ctest registrations and the CI lint jobs alike.

Usage:
  tools/lint.py [--root DIR] [--build DIR] [--fast]

--fast is the pre-commit profile: sdlint + sdcheck in --regex-only
mode (no libclang parse, no compile_commands.json needed) and no
clang-tidy. Full runs want a configured build directory.
"""

from __future__ import annotations

import argparse
import pathlib
import subprocess
import sys


def run_step(name: str, cmd: list) -> bool:
    print(f"=== lint: {name}: {' '.join(str(c) for c in cmd)}")
    proc = subprocess.run(cmd)
    ok = proc.returncode == 0
    print(f"=== lint: {name}: {'ok' if ok else 'FAILED'}")
    return ok


def main() -> int:
    repo = pathlib.Path(__file__).resolve().parent.parent
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--root", type=pathlib.Path, default=repo,
                        help="repository root")
    parser.add_argument("--build", type=pathlib.Path, default=None,
                        help="build dir with compile_commands.json "
                             "(default: ROOT/build)")
    parser.add_argument("--fast", action="store_true",
                        help="pre-commit profile: regex-only sdcheck, "
                             "skip clang-tidy")
    args = parser.parse_args()

    root = args.root.resolve()
    build = (args.build or root / "build").resolve()
    tools = root / "tools"
    py = sys.executable or "python3"

    failures = []

    if not run_step("sdlint", [py, tools / "sdlint.py", "--root", root]):
        failures.append("sdlint")

    sdcheck_cmd = [py, tools / "sdcheck.py", "--root", root,
                   "--build", build]
    if args.fast:
        sdcheck_cmd.append("--regex-only")
    if not run_step("sdcheck", sdcheck_cmd):
        failures.append("sdcheck")

    if args.fast:
        print("=== lint: clang-tidy: skipped (--fast)")
    elif not run_step("clang-tidy",
                      ["bash", tools / "run_tidy.sh", build]):
        failures.append("clang-tidy")

    if failures:
        print(f"lint: FAILED tiers: {', '.join(failures)}",
              file=sys.stderr)
        return 1
    print("lint: all tiers clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
