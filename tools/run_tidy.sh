#!/usr/bin/env bash
# Run clang-tidy over every translation unit in src/ using the
# compile_commands.json exported by CMake (CMAKE_EXPORT_COMPILE_COMMANDS
# is on unconditionally). Usage:
#
#   tools/run_tidy.sh [build-dir]     # default build dir: ./build
#
# Exits 0 when clang-tidy is clean (or not installed — the lint CI job
# installs it; developer machines without it just skip), 1 on findings.
set -u

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${1:-$ROOT/build}"

TIDY="$(command -v clang-tidy || true)"
if [ -z "$TIDY" ]; then
    echo "run_tidy.sh: clang-tidy not installed; skipping (CI runs it)" >&2
    exit 0
fi

if [ ! -f "$BUILD/compile_commands.json" ]; then
    echo "run_tidy.sh: $BUILD/compile_commands.json missing; configure first:" >&2
    echo "  cmake -B $BUILD -S $ROOT" >&2
    exit 1
fi

# Lint only first-party sources; tests and third-party code are out of
# scope for the tidy profile.
mapfile -t FILES < <(cd "$ROOT" && find src -name '*.cc' | sort)

# Enforcing run: every check on the curated .clang-tidy list is an
# error, explicitly — not just via the config's WarningsAsErrors — so
# a stray user-level .clang-tidy override cannot demote findings.
STATUS=0
for f in "${FILES[@]}"; do
    echo "== clang-tidy $f"
    "$TIDY" -p "$BUILD" --quiet --warnings-as-errors='*' "$ROOT/$f" \
        || STATUS=1
done

if [ "$STATUS" -ne 0 ]; then
    echo "run_tidy.sh: findings above (WarningsAsErrors='*')" >&2
fi
exit "$STATUS"
