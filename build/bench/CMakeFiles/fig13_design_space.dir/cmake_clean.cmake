file(REMOVE_RECURSE
  "CMakeFiles/fig13_design_space.dir/fig13_design_space.cc.o"
  "CMakeFiles/fig13_design_space.dir/fig13_design_space.cc.o.d"
  "fig13_design_space"
  "fig13_design_space.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_design_space.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
