# Empty dependencies file for fig09_memory_trace.
# This may be replaced when dependencies are built.
