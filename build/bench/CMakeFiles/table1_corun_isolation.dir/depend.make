# Empty dependencies file for table1_corun_isolation.
# This may be replaced when dependencies are built.
