file(REMOVE_RECURSE
  "CMakeFiles/table1_corun_isolation.dir/table1_corun_isolation.cc.o"
  "CMakeFiles/table1_corun_isolation.dir/table1_corun_isolation.cc.o.d"
  "table1_corun_isolation"
  "table1_corun_isolation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_corun_isolation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
