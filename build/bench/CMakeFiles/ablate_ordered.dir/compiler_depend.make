# Empty compiler generated dependencies file for ablate_ordered.
# This may be replaced when dependencies are built.
