file(REMOVE_RECURSE
  "CMakeFiles/ablate_ordered.dir/ablate_ordered.cc.o"
  "CMakeFiles/ablate_ordered.dir/ablate_ordered.cc.o.d"
  "ablate_ordered"
  "ablate_ordered.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_ordered.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
