file(REMOVE_RECURSE
  "CMakeFiles/ablate_scratchpad.dir/ablate_scratchpad.cc.o"
  "CMakeFiles/ablate_scratchpad.dir/ablate_scratchpad.cc.o.d"
  "ablate_scratchpad"
  "ablate_scratchpad.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_scratchpad.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
