# Empty dependencies file for ablate_scratchpad.
# This may be replaced when dependencies are built.
