# Empty compiler generated dependencies file for fig10_scratchpad_occupancy.
# This may be replaced when dependencies are built.
