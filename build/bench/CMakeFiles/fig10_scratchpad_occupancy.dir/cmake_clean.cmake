file(REMOVE_RECURSE
  "CMakeFiles/fig10_scratchpad_occupancy.dir/fig10_scratchpad_occupancy.cc.o"
  "CMakeFiles/fig10_scratchpad_occupancy.dir/fig10_scratchpad_occupancy.cc.o.d"
  "fig10_scratchpad_occupancy"
  "fig10_scratchpad_occupancy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_scratchpad_occupancy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
