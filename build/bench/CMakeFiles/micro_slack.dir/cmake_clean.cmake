file(REMOVE_RECURSE
  "CMakeFiles/micro_slack.dir/micro_slack.cc.o"
  "CMakeFiles/micro_slack.dir/micro_slack.cc.o.d"
  "micro_slack"
  "micro_slack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_slack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
