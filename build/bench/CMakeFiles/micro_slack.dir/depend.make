# Empty dependencies file for micro_slack.
# This may be replaced when dependencies are built.
