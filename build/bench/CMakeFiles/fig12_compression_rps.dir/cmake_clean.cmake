file(REMOVE_RECURSE
  "CMakeFiles/fig12_compression_rps.dir/fig12_compression_rps.cc.o"
  "CMakeFiles/fig12_compression_rps.dir/fig12_compression_rps.cc.o.d"
  "fig12_compression_rps"
  "fig12_compression_rps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_compression_rps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
