# Empty compiler generated dependencies file for fig12_compression_rps.
# This may be replaced when dependencies are built.
