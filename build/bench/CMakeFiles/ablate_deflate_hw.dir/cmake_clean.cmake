file(REMOVE_RECURSE
  "CMakeFiles/ablate_deflate_hw.dir/ablate_deflate_hw.cc.o"
  "CMakeFiles/ablate_deflate_hw.dir/ablate_deflate_hw.cc.o.d"
  "ablate_deflate_hw"
  "ablate_deflate_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_deflate_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
