# Empty dependencies file for ablate_deflate_hw.
# This may be replaced when dependencies are built.
