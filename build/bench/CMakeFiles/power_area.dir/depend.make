# Empty dependencies file for power_area.
# This may be replaced when dependencies are built.
