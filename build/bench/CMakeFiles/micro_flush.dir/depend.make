# Empty dependencies file for micro_flush.
# This may be replaced when dependencies are built.
