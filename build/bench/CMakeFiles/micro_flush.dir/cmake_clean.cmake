file(REMOVE_RECURSE
  "CMakeFiles/micro_flush.dir/micro_flush.cc.o"
  "CMakeFiles/micro_flush.dir/micro_flush.cc.o.d"
  "micro_flush"
  "micro_flush.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_flush.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
