file(REMOVE_RECURSE
  "CMakeFiles/fig03_https_membw.dir/fig03_https_membw.cc.o"
  "CMakeFiles/fig03_https_membw.dir/fig03_https_membw.cc.o.d"
  "fig03_https_membw"
  "fig03_https_membw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_https_membw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
