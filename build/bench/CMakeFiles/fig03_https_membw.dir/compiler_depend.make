# Empty compiler generated dependencies file for fig03_https_membw.
# This may be replaced when dependencies are built.
