file(REMOVE_RECURSE
  "CMakeFiles/fig02_smartnic_drops.dir/fig02_smartnic_drops.cc.o"
  "CMakeFiles/fig02_smartnic_drops.dir/fig02_smartnic_drops.cc.o.d"
  "fig02_smartnic_drops"
  "fig02_smartnic_drops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_smartnic_drops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
