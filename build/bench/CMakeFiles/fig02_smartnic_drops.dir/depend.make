# Empty dependencies file for fig02_smartnic_drops.
# This may be replaced when dependencies are built.
