file(REMOVE_RECURSE
  "CMakeFiles/fig11_tls_rps.dir/fig11_tls_rps.cc.o"
  "CMakeFiles/fig11_tls_rps.dir/fig11_tls_rps.cc.o.d"
  "fig11_tls_rps"
  "fig11_tls_rps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_tls_rps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
