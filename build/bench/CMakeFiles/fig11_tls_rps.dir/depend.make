# Empty dependencies file for fig11_tls_rps.
# This may be replaced when dependencies are built.
