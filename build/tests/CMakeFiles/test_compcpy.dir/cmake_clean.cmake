file(REMOVE_RECURSE
  "CMakeFiles/test_compcpy.dir/compcpy/test_end_to_end.cc.o"
  "CMakeFiles/test_compcpy.dir/compcpy/test_end_to_end.cc.o.d"
  "test_compcpy"
  "test_compcpy.pdb"
  "test_compcpy[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_compcpy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
