# Empty compiler generated dependencies file for test_compcpy.
# This may be replaced when dependencies are built.
