file(REMOVE_RECURSE
  "CMakeFiles/test_crypto.dir/crypto/test_aes.cc.o"
  "CMakeFiles/test_crypto.dir/crypto/test_aes.cc.o.d"
  "CMakeFiles/test_crypto.dir/crypto/test_aes_gcm.cc.o"
  "CMakeFiles/test_crypto.dir/crypto/test_aes_gcm.cc.o.d"
  "CMakeFiles/test_crypto.dir/crypto/test_ghash.cc.o"
  "CMakeFiles/test_crypto.dir/crypto/test_ghash.cc.o.d"
  "CMakeFiles/test_crypto.dir/crypto/test_incremental_gcm.cc.o"
  "CMakeFiles/test_crypto.dir/crypto/test_incremental_gcm.cc.o.d"
  "CMakeFiles/test_crypto.dir/crypto/test_tls_record.cc.o"
  "CMakeFiles/test_crypto.dir/crypto/test_tls_record.cc.o.d"
  "test_crypto"
  "test_crypto.pdb"
  "test_crypto[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
