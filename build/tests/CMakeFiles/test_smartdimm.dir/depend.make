# Empty dependencies file for test_smartdimm.
# This may be replaced when dependencies are built.
