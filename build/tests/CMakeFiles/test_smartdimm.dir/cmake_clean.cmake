file(REMOVE_RECURSE
  "CMakeFiles/test_smartdimm.dir/smartdimm/test_buffer_device.cc.o"
  "CMakeFiles/test_smartdimm.dir/smartdimm/test_buffer_device.cc.o.d"
  "CMakeFiles/test_smartdimm.dir/smartdimm/test_cuckoo_table.cc.o"
  "CMakeFiles/test_smartdimm.dir/smartdimm/test_cuckoo_table.cc.o.d"
  "CMakeFiles/test_smartdimm.dir/smartdimm/test_dsa.cc.o"
  "CMakeFiles/test_smartdimm.dir/smartdimm/test_dsa.cc.o.d"
  "CMakeFiles/test_smartdimm.dir/smartdimm/test_scratchpad.cc.o"
  "CMakeFiles/test_smartdimm.dir/smartdimm/test_scratchpad.cc.o.d"
  "test_smartdimm"
  "test_smartdimm.pdb"
  "test_smartdimm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_smartdimm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
