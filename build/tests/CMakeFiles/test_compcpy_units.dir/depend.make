# Empty dependencies file for test_compcpy_units.
# This may be replaced when dependencies are built.
