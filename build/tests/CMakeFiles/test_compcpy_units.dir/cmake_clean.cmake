file(REMOVE_RECURSE
  "CMakeFiles/test_compcpy_units.dir/compcpy/test_compcpy_units.cc.o"
  "CMakeFiles/test_compcpy_units.dir/compcpy/test_compcpy_units.cc.o.d"
  "test_compcpy_units"
  "test_compcpy_units.pdb"
  "test_compcpy_units[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_compcpy_units.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
