file(REMOVE_RECURSE
  "CMakeFiles/test_compress.dir/compress/test_bitstream.cc.o"
  "CMakeFiles/test_compress.dir/compress/test_bitstream.cc.o.d"
  "CMakeFiles/test_compress.dir/compress/test_deflate.cc.o"
  "CMakeFiles/test_compress.dir/compress/test_deflate.cc.o.d"
  "CMakeFiles/test_compress.dir/compress/test_huffman.cc.o"
  "CMakeFiles/test_compress.dir/compress/test_huffman.cc.o.d"
  "CMakeFiles/test_compress.dir/compress/test_hw_deflate.cc.o"
  "CMakeFiles/test_compress.dir/compress/test_hw_deflate.cc.o.d"
  "CMakeFiles/test_compress.dir/compress/test_lz77.cc.o"
  "CMakeFiles/test_compress.dir/compress/test_lz77.cc.o.d"
  "test_compress"
  "test_compress.pdb"
  "test_compress[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_compress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
