# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_crypto[1]_include.cmake")
include("/root/repo/build/tests/test_compress[1]_include.cmake")
include("/root/repo/build/tests/test_compcpy[1]_include.cmake")
include("/root/repo/build/tests/test_mem[1]_include.cmake")
include("/root/repo/build/tests/test_cache[1]_include.cmake")
include("/root/repo/build/tests/test_smartdimm[1]_include.cmake")
include("/root/repo/build/tests/test_net[1]_include.cmake")
include("/root/repo/build/tests/test_offload[1]_include.cmake")
include("/root/repo/build/tests/test_app[1]_include.cmake")
include("/root/repo/build/tests/test_compcpy_units[1]_include.cmake")
