# Empty dependencies file for compression_offload.
# This may be replaced when dependencies are built.
