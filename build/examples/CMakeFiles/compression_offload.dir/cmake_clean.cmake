file(REMOVE_RECURSE
  "CMakeFiles/compression_offload.dir/compression_offload.cpp.o"
  "CMakeFiles/compression_offload.dir/compression_offload.cpp.o.d"
  "compression_offload"
  "compression_offload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compression_offload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
