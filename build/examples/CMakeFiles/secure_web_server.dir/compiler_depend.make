# Empty compiler generated dependencies file for secure_web_server.
# This may be replaced when dependencies are built.
