file(REMOVE_RECURSE
  "CMakeFiles/secure_web_server.dir/secure_web_server.cpp.o"
  "CMakeFiles/secure_web_server.dir/secure_web_server.cpp.o.d"
  "secure_web_server"
  "secure_web_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/secure_web_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
