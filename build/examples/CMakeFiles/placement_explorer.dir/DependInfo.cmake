
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/placement_explorer.cpp" "examples/CMakeFiles/placement_explorer.dir/placement_explorer.cpp.o" "gcc" "examples/CMakeFiles/placement_explorer.dir/placement_explorer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/compcpy/CMakeFiles/sd_compcpy.dir/DependInfo.cmake"
  "/root/repo/build/src/smartdimm/CMakeFiles/sd_smartdimm.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/sd_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/compress/CMakeFiles/sd_compress.dir/DependInfo.cmake"
  "/root/repo/build/src/app/CMakeFiles/sd_app.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/sd_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/sd_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sd_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/sd_net.dir/DependInfo.cmake"
  "/root/repo/build/src/offload/CMakeFiles/sd_offload.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/sd_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
