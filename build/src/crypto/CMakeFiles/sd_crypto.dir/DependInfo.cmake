
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/crypto/aes.cc" "src/crypto/CMakeFiles/sd_crypto.dir/aes.cc.o" "gcc" "src/crypto/CMakeFiles/sd_crypto.dir/aes.cc.o.d"
  "/root/repo/src/crypto/aes_gcm.cc" "src/crypto/CMakeFiles/sd_crypto.dir/aes_gcm.cc.o" "gcc" "src/crypto/CMakeFiles/sd_crypto.dir/aes_gcm.cc.o.d"
  "/root/repo/src/crypto/ghash.cc" "src/crypto/CMakeFiles/sd_crypto.dir/ghash.cc.o" "gcc" "src/crypto/CMakeFiles/sd_crypto.dir/ghash.cc.o.d"
  "/root/repo/src/crypto/tls_record.cc" "src/crypto/CMakeFiles/sd_crypto.dir/tls_record.cc.o" "gcc" "src/crypto/CMakeFiles/sd_crypto.dir/tls_record.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sd_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
