file(REMOVE_RECURSE
  "CMakeFiles/sd_crypto.dir/aes.cc.o"
  "CMakeFiles/sd_crypto.dir/aes.cc.o.d"
  "CMakeFiles/sd_crypto.dir/aes_gcm.cc.o"
  "CMakeFiles/sd_crypto.dir/aes_gcm.cc.o.d"
  "CMakeFiles/sd_crypto.dir/ghash.cc.o"
  "CMakeFiles/sd_crypto.dir/ghash.cc.o.d"
  "CMakeFiles/sd_crypto.dir/tls_record.cc.o"
  "CMakeFiles/sd_crypto.dir/tls_record.cc.o.d"
  "libsd_crypto.a"
  "libsd_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sd_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
