# Empty dependencies file for sd_crypto.
# This may be replaced when dependencies are built.
