file(REMOVE_RECURSE
  "libsd_crypto.a"
)
