# Empty dependencies file for sd_compress.
# This may be replaced when dependencies are built.
