file(REMOVE_RECURSE
  "libsd_compress.a"
)
