file(REMOVE_RECURSE
  "CMakeFiles/sd_compress.dir/deflate.cc.o"
  "CMakeFiles/sd_compress.dir/deflate.cc.o.d"
  "CMakeFiles/sd_compress.dir/huffman.cc.o"
  "CMakeFiles/sd_compress.dir/huffman.cc.o.d"
  "CMakeFiles/sd_compress.dir/hw_deflate.cc.o"
  "CMakeFiles/sd_compress.dir/hw_deflate.cc.o.d"
  "CMakeFiles/sd_compress.dir/lz77.cc.o"
  "CMakeFiles/sd_compress.dir/lz77.cc.o.d"
  "libsd_compress.a"
  "libsd_compress.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sd_compress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
