file(REMOVE_RECURSE
  "CMakeFiles/sd_compcpy.dir/compcpy.cc.o"
  "CMakeFiles/sd_compcpy.dir/compcpy.cc.o.d"
  "CMakeFiles/sd_compcpy.dir/offload_engine.cc.o"
  "CMakeFiles/sd_compcpy.dir/offload_engine.cc.o.d"
  "libsd_compcpy.a"
  "libsd_compcpy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sd_compcpy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
