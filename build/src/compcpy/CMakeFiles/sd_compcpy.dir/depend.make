# Empty dependencies file for sd_compcpy.
# This may be replaced when dependencies are built.
