file(REMOVE_RECURSE
  "libsd_compcpy.a"
)
