file(REMOVE_RECURSE
  "CMakeFiles/sd_mem.dir/address_map.cc.o"
  "CMakeFiles/sd_mem.dir/address_map.cc.o.d"
  "CMakeFiles/sd_mem.dir/memory_controller.cc.o"
  "CMakeFiles/sd_mem.dir/memory_controller.cc.o.d"
  "libsd_mem.a"
  "libsd_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sd_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
