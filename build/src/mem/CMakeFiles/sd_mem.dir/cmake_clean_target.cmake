file(REMOVE_RECURSE
  "libsd_mem.a"
)
