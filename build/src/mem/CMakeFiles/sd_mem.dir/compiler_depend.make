# Empty compiler generated dependencies file for sd_mem.
# This may be replaced when dependencies are built.
