file(REMOVE_RECURSE
  "CMakeFiles/sd_cache.dir/cache.cc.o"
  "CMakeFiles/sd_cache.dir/cache.cc.o.d"
  "CMakeFiles/sd_cache.dir/memory_system.cc.o"
  "CMakeFiles/sd_cache.dir/memory_system.cc.o.d"
  "libsd_cache.a"
  "libsd_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sd_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
