file(REMOVE_RECURSE
  "libsd_cache.a"
)
