# Empty dependencies file for sd_cache.
# This may be replaced when dependencies are built.
