file(REMOVE_RECURSE
  "CMakeFiles/sd_sim.dir/event_queue.cc.o"
  "CMakeFiles/sd_sim.dir/event_queue.cc.o.d"
  "libsd_sim.a"
  "libsd_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sd_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
