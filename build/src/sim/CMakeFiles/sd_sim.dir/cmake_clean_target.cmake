file(REMOVE_RECURSE
  "libsd_sim.a"
)
