# Empty dependencies file for sd_sim.
# This may be replaced when dependencies are built.
