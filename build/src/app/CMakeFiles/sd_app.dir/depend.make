# Empty dependencies file for sd_app.
# This may be replaced when dependencies are built.
