file(REMOVE_RECURSE
  "libsd_app.a"
)
