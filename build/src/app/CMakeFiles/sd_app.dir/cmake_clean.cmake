file(REMOVE_RECURSE
  "CMakeFiles/sd_app.dir/antagonist.cc.o"
  "CMakeFiles/sd_app.dir/antagonist.cc.o.d"
  "CMakeFiles/sd_app.dir/contention_model.cc.o"
  "CMakeFiles/sd_app.dir/contention_model.cc.o.d"
  "CMakeFiles/sd_app.dir/server_model.cc.o"
  "CMakeFiles/sd_app.dir/server_model.cc.o.d"
  "libsd_app.a"
  "libsd_app.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sd_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
