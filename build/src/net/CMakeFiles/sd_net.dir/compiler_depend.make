# Empty compiler generated dependencies file for sd_net.
# This may be replaced when dependencies are built.
