file(REMOVE_RECURSE
  "CMakeFiles/sd_net.dir/tcp_stream.cc.o"
  "CMakeFiles/sd_net.dir/tcp_stream.cc.o.d"
  "libsd_net.a"
  "libsd_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sd_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
