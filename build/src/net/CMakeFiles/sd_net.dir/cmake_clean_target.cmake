file(REMOVE_RECURSE
  "libsd_net.a"
)
