file(REMOVE_RECURSE
  "CMakeFiles/sd_smartdimm.dir/buffer_device.cc.o"
  "CMakeFiles/sd_smartdimm.dir/buffer_device.cc.o.d"
  "CMakeFiles/sd_smartdimm.dir/config_memory.cc.o"
  "CMakeFiles/sd_smartdimm.dir/config_memory.cc.o.d"
  "CMakeFiles/sd_smartdimm.dir/cuckoo_table.cc.o"
  "CMakeFiles/sd_smartdimm.dir/cuckoo_table.cc.o.d"
  "CMakeFiles/sd_smartdimm.dir/deflate_dsa.cc.o"
  "CMakeFiles/sd_smartdimm.dir/deflate_dsa.cc.o.d"
  "CMakeFiles/sd_smartdimm.dir/power_model.cc.o"
  "CMakeFiles/sd_smartdimm.dir/power_model.cc.o.d"
  "CMakeFiles/sd_smartdimm.dir/scratchpad.cc.o"
  "CMakeFiles/sd_smartdimm.dir/scratchpad.cc.o.d"
  "CMakeFiles/sd_smartdimm.dir/tls_dsa.cc.o"
  "CMakeFiles/sd_smartdimm.dir/tls_dsa.cc.o.d"
  "libsd_smartdimm.a"
  "libsd_smartdimm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sd_smartdimm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
