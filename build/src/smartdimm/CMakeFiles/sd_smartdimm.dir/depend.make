# Empty dependencies file for sd_smartdimm.
# This may be replaced when dependencies are built.
