file(REMOVE_RECURSE
  "libsd_smartdimm.a"
)
