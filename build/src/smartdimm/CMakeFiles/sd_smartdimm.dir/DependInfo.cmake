
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/smartdimm/buffer_device.cc" "src/smartdimm/CMakeFiles/sd_smartdimm.dir/buffer_device.cc.o" "gcc" "src/smartdimm/CMakeFiles/sd_smartdimm.dir/buffer_device.cc.o.d"
  "/root/repo/src/smartdimm/config_memory.cc" "src/smartdimm/CMakeFiles/sd_smartdimm.dir/config_memory.cc.o" "gcc" "src/smartdimm/CMakeFiles/sd_smartdimm.dir/config_memory.cc.o.d"
  "/root/repo/src/smartdimm/cuckoo_table.cc" "src/smartdimm/CMakeFiles/sd_smartdimm.dir/cuckoo_table.cc.o" "gcc" "src/smartdimm/CMakeFiles/sd_smartdimm.dir/cuckoo_table.cc.o.d"
  "/root/repo/src/smartdimm/deflate_dsa.cc" "src/smartdimm/CMakeFiles/sd_smartdimm.dir/deflate_dsa.cc.o" "gcc" "src/smartdimm/CMakeFiles/sd_smartdimm.dir/deflate_dsa.cc.o.d"
  "/root/repo/src/smartdimm/power_model.cc" "src/smartdimm/CMakeFiles/sd_smartdimm.dir/power_model.cc.o" "gcc" "src/smartdimm/CMakeFiles/sd_smartdimm.dir/power_model.cc.o.d"
  "/root/repo/src/smartdimm/scratchpad.cc" "src/smartdimm/CMakeFiles/sd_smartdimm.dir/scratchpad.cc.o" "gcc" "src/smartdimm/CMakeFiles/sd_smartdimm.dir/scratchpad.cc.o.d"
  "/root/repo/src/smartdimm/tls_dsa.cc" "src/smartdimm/CMakeFiles/sd_smartdimm.dir/tls_dsa.cc.o" "gcc" "src/smartdimm/CMakeFiles/sd_smartdimm.dir/tls_dsa.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sd_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sd_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/sd_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/sd_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/compress/CMakeFiles/sd_compress.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
