file(REMOVE_RECURSE
  "CMakeFiles/sd_common.dir/log.cc.o"
  "CMakeFiles/sd_common.dir/log.cc.o.d"
  "CMakeFiles/sd_common.dir/random.cc.o"
  "CMakeFiles/sd_common.dir/random.cc.o.d"
  "CMakeFiles/sd_common.dir/stats.cc.o"
  "CMakeFiles/sd_common.dir/stats.cc.o.d"
  "libsd_common.a"
  "libsd_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sd_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
