file(REMOVE_RECURSE
  "libsd_common.a"
)
