# Empty dependencies file for sd_common.
# This may be replaced when dependencies are built.
