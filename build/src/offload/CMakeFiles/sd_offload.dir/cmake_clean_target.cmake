file(REMOVE_RECURSE
  "libsd_offload.a"
)
