# Empty dependencies file for sd_offload.
# This may be replaced when dependencies are built.
