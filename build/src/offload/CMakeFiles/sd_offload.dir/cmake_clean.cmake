file(REMOVE_RECURSE
  "CMakeFiles/sd_offload.dir/design_space.cc.o"
  "CMakeFiles/sd_offload.dir/design_space.cc.o.d"
  "CMakeFiles/sd_offload.dir/placement.cc.o"
  "CMakeFiles/sd_offload.dir/placement.cc.o.d"
  "libsd_offload.a"
  "libsd_offload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sd_offload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
