/**
 * @file
 * LLC-contention model: drives the *real* cache substrate with a
 * synthetic access stream shaped like a web server's working set
 * (per-connection socket/TLS buffers + streamed message bodies) and
 * measures the leak fraction — how much of a streamed message
 * round-trips DRAM before the NIC consumes it (Obs. 3 / Fig. 3).
 */

#ifndef SD_APP_CONTENTION_MODEL_H
#define SD_APP_CONTENTION_MODEL_H

#include <cstdint>

#include "cache/cache.h"
#include "common/random.h"

namespace sd::app {

/** Workload description for the probe. */
struct ContentionWorkload
{
    unsigned connections = 1024;
    std::size_t message_bytes = 4096;
    double per_connection_kb = 64.0;
    std::size_t llc_mb = 28;
    unsigned llc_ways = 16;
    /** Extra cache-hostile co-runner footprint (mcf-like), bytes. */
    std::size_t antagonist_mb = 0;

    /** Co-runner instances: scales the antagonist access rate that
     *  interleaves with the server's event loop. */
    unsigned antagonist_instances = 0;
};

/** Probe result. */
struct ContentionResult
{
    double leak_fraction = 0.0; ///< streamed lines that spill to DRAM
    double miss_rate = 0.0;     ///< overall LLC miss rate of the probe
};

/**
 * Measure the leak fraction by simulating interleaved connection
 * activity on a scaled cache. Deterministic given the seed.
 */
ContentionResult measureContention(const ContentionWorkload &workload,
                                   std::uint64_t seed = 7);

} // namespace sd::app

#endif // SD_APP_CONTENTION_MODEL_H
