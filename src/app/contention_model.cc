#include "app/contention_model.h"

#include <algorithm>
#include <vector>

#include "common/types.h"

namespace sd::app {

ContentionResult
measureContention(const ContentionWorkload &workload, std::uint64_t seed)
{
    // Scale the experiment down 4x so the probe stays cheap: the
    // leak fraction depends on the working-set : LLC ratio, which the
    // scaling preserves.
    constexpr unsigned kScale = 4;

    cache::CacheConfig cfg;
    cfg.size_bytes =
        std::max<std::size_t>((workload.llc_mb << 20) / kScale,
                              64 * 1024);
    cfg.ways = workload.llc_ways;
    cfg.ddio_ways = 2;
    cfg.cpu_ways = workload.llc_ways;
    cache::Cache llc(cfg);

    const unsigned connections =
        std::max(1u, workload.connections / kScale);
    const std::size_t conn_bytes = static_cast<std::size_t>(
        workload.per_connection_kb * 1024.0);
    const std::size_t antagonist_bytes =
        (workload.antagonist_mb << 20) / kScale;

    // Address-space layout: per-connection state, inbound message
    // staging, outbound response buffers, antagonist working set.
    const Addr conn_base = 0;
    const Addr msg_base = conn_base + static_cast<Addr>(connections) *
                                          conn_bytes;
    const Addr out_base =
        msg_base +
        static_cast<Addr>(connections) * workload.message_bytes;
    const Addr ant_base =
        out_base +
        static_cast<Addr>(connections) * workload.message_bytes;

    Rng rng(seed);

    // The storage/NIC DMAs and the CPU stages run asynchronously, so
    // a buffer sits in the LLC for a long usage distance while other
    // connections' work evicts it (Obs. 3). Model with batched
    // phases per epoch of in-flight connections; the NIC's fetch of
    // an epoch's responses is deferred into the next epoch, like a
    // real TX ring draining behind the event loop.
    std::uint64_t in_lines = 0;
    std::uint64_t in_leaked = 0;
    std::uint64_t out_lines = 0;
    std::uint64_t out_leaked = 0;

    // In a closed loop every connection has a request in flight, so
    // one event-loop lap spans them all: the usage distance grows
    // with the connection count, which is exactly Fig. 3's x-axis.
    const unsigned epoch = connections;
    std::vector<unsigned> pending_tx; // connections awaiting NIC fetch

    for (int round = 0; round < 3; ++round) {
        const bool measure = round == 2;
        for (unsigned base = 0; base < connections; base += epoch) {
            const unsigned count = std::min(epoch, connections - base);

            // Phase A: storage DMAs land for the whole epoch (DDIO).
            for (unsigned i = 0; i < count; ++i) {
                const Addr msg =
                    msg_base + static_cast<Addr>(base + i) *
                                   workload.message_bytes;
                for (std::size_t off = 0; off < workload.message_bytes;
                     off += kCacheLineSize)
                    llc.access(msg + off, true, cache::AllocClass::kDdio,
                               true);
            }

            // Phase B: the event loop touches every in-flight
            // connection's state (sockets, TLS contexts, timers).
            for (unsigned i = 0; i < count; ++i) {
                // Touch a randomised share of the state contiguously
                // so the walk covers every cache set. Heterogeneous
                // footprints (some connections cold, some hot) soften
                // the LRU capacity cliff into the gradual growth real
                // servers exhibit.
                const Addr state =
                    conn_base + static_cast<Addr>(base + i) * conn_bytes;
                const std::size_t touched = static_cast<std::size_t>(
                    static_cast<double>(conn_bytes) *
                    (0.15 + 0.7 * rng.uniform()));
                for (std::size_t off = 0; off < touched;
                     off += kCacheLineSize)
                    llc.access(state + off, (off & 256) != 0,
                               cache::AllocClass::kCpu);
                if (antagonist_bytes > 0) {
                    const unsigned rate =
                        64 * std::max(1u, workload.antagonist_instances);
                    for (unsigned k = 0; k < rate; ++k) {
                        const Addr a =
                            ant_base +
                            lineAlign(rng.below(antagonist_bytes));
                        llc.access(a, rng.chance(0.3),
                                   cache::AllocClass::kCpu);
                    }
                }
            }

            // Phase C: ULP stage reads each inbound message (count
            // spills) and writes the outbound response.
            for (unsigned i = 0; i < count; ++i) {
                const unsigned c = base + i;
                const Addr msg = msg_base + static_cast<Addr>(c) *
                                                workload.message_bytes;
                const Addr out = out_base + static_cast<Addr>(c) *
                                                workload.message_bytes;
                for (std::size_t off = 0; off < workload.message_bytes;
                     off += kCacheLineSize) {
                    if (measure) {
                        ++in_lines;
                        in_leaked += llc.contains(msg + off) ? 0 : 1;
                    }
                    llc.access(msg + off, false,
                               cache::AllocClass::kCpu);
                    llc.access(out + off, true, cache::AllocClass::kCpu,
                               true);
                }
                pending_tx.push_back(c);
            }

            // Phase D: NIC TX fetch of the *previous* epoch's
            // responses — one event-loop lap behind.
            const std::size_t drain =
                pending_tx.size() > count ? pending_tx.size() - count
                                          : 0;
            for (std::size_t d = 0; d < drain; ++d) {
                const unsigned c = pending_tx[d];
                const Addr out = out_base + static_cast<Addr>(c) *
                                                workload.message_bytes;
                for (std::size_t off = 0; off < workload.message_bytes;
                     off += kCacheLineSize) {
                    if (measure) {
                        ++out_lines;
                        out_leaked += llc.contains(out + off) ? 0 : 1;
                    }
                    // NIC read snoops without re-allocating.
                }
            }
            pending_tx.erase(pending_tx.begin(),
                             pending_tx.begin() +
                                 static_cast<long>(drain));
        }
    }

    ContentionResult result;
    const std::uint64_t lines = in_lines + out_lines;
    result.leak_fraction =
        lines ? static_cast<double>(in_leaked + out_leaked) /
                    static_cast<double>(lines)
              : 0.0;
    result.miss_rate = llc.stats().missRate();
    return result;
}

} // namespace sd::app
