/**
 * @file
 * Request-level web-server system model (the Fig. 3/11/12/Table-I
 * engine): an nginx-like server with T worker threads serving a
 * closed-loop wrk-like generator over C persistent connections.
 * Each request flows storage-DMA -> ULP (via a Placement) -> TCP
 * send -> NIC DMA; the model resolves the achieved requests/second
 * against three coupled capacities — CPU cycles, DRAM bandwidth and
 * NIC line rate — with LLC contention measured by the real cache
 * substrate.
 */

#ifndef SD_APP_SERVER_MODEL_H
#define SD_APP_SERVER_MODEL_H

#include <cstdint>
#include <string>

#include "app/contention_model.h"
#include "offload/placement.h"

namespace sd::app {

/** One evaluation point. */
struct ServerConfig
{
    unsigned worker_threads = 10;  ///< paper: 10 nginx threads
    unsigned connections = 1024;   ///< paper: 1024 wrk connections
    std::size_t message_bytes = 4096;
    offload::Ulp ulp = offload::Ulp::kTlsEncrypt;
    offload::PlacementKind placement = offload::PlacementKind::kCpu;
    double link_gbps = 100.0;
    double loss_events_per_message = 0.0; ///< for Fig. 2 style runs
    std::size_t antagonist_mb = 0;        ///< mcf-like co-runner
    unsigned antagonist_instances = 0;
    offload::CostModel model;
};

/** Model outputs (one Fig. 11/12 bar group). */
struct ServerResult
{
    double rps = 0;              ///< requests per second
    double cpu_utilization = 0;  ///< of the worker threads, 0..1
    double mem_bandwidth_gbps = 0;
    double mem_bw_utilization = 0; ///< of peak DRAM bandwidth
    double dram_bytes_per_request = 0; ///< per-request memory traffic
    double leak_fraction = 0;
    double latency_us = 0;        ///< per-request service latency
    bool supported = true;        ///< placement supports the ULP
    std::string placement_name;

    /** Antagonist slowdown relative to its solo run (Table I). */
    double antagonist_slowdown = 0;
};

/** Evaluate the closed-loop fixed point for one configuration. */
ServerResult evaluateServer(const ServerConfig &config);

} // namespace sd::app

#endif // SD_APP_SERVER_MODEL_H
