#include "app/antagonist.h"

#include <numeric>

#include "common/log.h"
#include "common/types.h"

namespace sd::app {

McfLikeAntagonist::McfLikeAntagonist(std::size_t working_set_bytes,
                                     std::uint64_t seed)
{
    const std::size_t nodes =
        std::max<std::size_t>(working_set_bytes / kCacheLineSize, 2);
    next_.resize(nodes);
    std::iota(next_.begin(), next_.end(), 0);
    // Sattolo's algorithm: a single cycle through all nodes, so the
    // chase never short-circuits into a small loop.
    Rng rng(seed);
    for (std::size_t i = nodes - 1; i > 0; --i) {
        const std::size_t j = rng.below(i);
        std::swap(next_[i], next_[j]);
    }
}

void
McfLikeAntagonist::walk(cache::Cache &llc, std::size_t steps)
{
    for (std::size_t s = 0; s < steps; ++s) {
        const Addr addr = static_cast<Addr>(cursor_) * kCacheLineSize;
        llc.access(addr, /*is_write=*/(s & 7) == 0,
                   cache::AllocClass::kCpu);
        cursor_ = next_[cursor_];
        ++visited_;
    }
}

} // namespace sd::app
