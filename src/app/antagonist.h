/**
 * @file
 * mcf-like cache antagonist: a pointer-chasing walker over a large
 * working set, the stand-in for SPEC CPU2017 505.mcf in the Table I
 * isolation study. Exposes both a functional walker (for cache-model
 * experiments) and its bandwidth/footprint profile (for the server
 * fixed point).
 */

#ifndef SD_APP_ANTAGONIST_H
#define SD_APP_ANTAGONIST_H

#include <cstdint>
#include <vector>

#include "cache/cache.h"
#include "common/random.h"

namespace sd::app {

/**
 * Pointer-chasing antagonist. The chase order is a random permutation
 * so hardware-prefetch-like locality cannot hide the misses — the
 * same reason mcf is memory-bound.
 */
class McfLikeAntagonist
{
  public:
    /**
     * @param working_set_bytes footprint (mcf: ~0.5-2 GB; scaled
     *        versions used for cache-model probes)
     */
    McfLikeAntagonist(std::size_t working_set_bytes, std::uint64_t seed);

    /** Walk @p steps nodes through the given cache model. */
    void walk(cache::Cache &llc, std::size_t steps);

    /** Nodes visited so far (progress metric for slowdown studies). */
    std::uint64_t visited() const { return visited_; }

    /** Demand bandwidth of one real mcf instance (GB/s), for the
     *  analytic fixed point: mcf sustains ~2-4 GB/s of misses. */
    static constexpr double kDemandBandwidthGbps = 2.8;

  private:
    std::vector<std::uint32_t> next_; ///< permutation chase
    std::size_t cursor_ = 0;
    std::uint64_t visited_ = 0;
};

} // namespace sd::app

#endif // SD_APP_ANTAGONIST_H
