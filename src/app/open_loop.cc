#include "app/open_loop.h"

#include <algorithm>
#include <cstring>
#include <unordered_map>
#include <vector>

#include "common/random.h"
#include "smartdimm/deflate_dsa.h"

namespace sd::app {

namespace {

/** Software service time of one op on a CPU worker, in ticks (ps). */
Tick
cpuServiceTicks(const OpenLoopConfig &config, std::size_t bytes)
{
    const offload::CpuParams &cpu = config.cost.cpu;
    double cycles;
    if (config.ulp == smartdimm::UlpKind::kTlsEncrypt)
        cycles = cpu.aesni_cycles_per_byte * static_cast<double>(bytes) +
                 cpu.tls_record_cycles;
    else
        cycles =
            cpu.deflate_cycles_per_byte * static_cast<double>(bytes) +
            cpu.deflate_setup_cycles;
    const double ns = cycles / cpu.freq_ghz;
    return static_cast<Tick>(ns * 1000.0);
}

Tick
percentile(std::vector<Tick> &sorted, double p)
{
    if (sorted.empty())
        return 0;
    const auto idx = static_cast<std::size_t>(
        p * static_cast<double>(sorted.size() - 1) + 0.5);
    return sorted[std::min(idx, sorted.size() - 1)];
}

} // namespace

OpenLoopResult
runOpenLoopServer(const OpenLoopConfig &config)
{
    OpenLoopResult result;
    result.offered_ops_per_sec = config.arrival_rate;
    if (config.requests == 0)
        return result;

    topo::Topology topo(config.topology);
    topo::ShardDispatcher dispatcher(topo, config.dispatcher);
    EventQueue &events = topo.events();

    // Deflate offloads are page-granular on the device; larger server
    // messages would be striped — the open-loop generator keeps one
    // op per request, so clamp instead.
    const std::size_t bytes =
        config.ulp == smartdimm::UlpKind::kDeflate
            ? std::min(config.message_bytes,
                       smartdimm::kDeflateMaxPayload)
            : config.message_bytes;
    const Tick cpu_ticks = cpuServiceTicks(config, bytes);

    // Everything random is drawn up front so event execution order
    // can never change the stream: the run is a pure function of the
    // seed. Open loop: arrival times are fixed before the run starts.
    Rng rng(config.seed);
    struct Request
    {
        Tick arrival = 0;
        std::uint64_t flow = 0;
    };
    const double mean_gap = 1e12 / config.arrival_rate; // ps
    std::vector<Request> requests(config.requests);
    Tick t = 0;
    for (Request &r : requests) {
        t += std::max<Tick>(
            1, static_cast<Tick>(rng.exponential(mean_gap)));
        r.arrival = t;
        r.flow = rng.below(config.flows == 0 ? 1 : config.flows);
    }
    std::vector<std::uint8_t> payload(bytes);
    rng.fill(payload.data(), payload.size());
    std::uint8_t key[16];
    rng.fill(key, sizeof(key));

    struct State
    {
        std::vector<Tick> latencies;
        std::uint64_t dimm_ops = 0;
        std::uint64_t cpu_ops = 0;
        Tick last_completion = 0;
        std::vector<Tick> worker_free;
        /** In-flight ops per flow: a flow unpins when it idles. */
        std::unordered_map<std::uint64_t, unsigned> outstanding;
    };
    State st;
    st.latencies.reserve(config.requests);
    st.worker_free.assign(std::max(1u, config.cpu_workers), 0);

    auto record = [&st, &events](Tick arrival, bool on_dimm) {
        st.latencies.push_back(events.now() - arrival);
        st.last_completion = std::max(st.last_completion, events.now());
        ++(on_dimm ? st.dimm_ops : st.cpu_ops);
    };

    auto runOnCpu = [&st, &events, &record, cpu_ticks](Tick arrival) {
        auto worker = std::min_element(st.worker_free.begin(),
                                       st.worker_free.end());
        const Tick done =
            std::max(events.now(), *worker) + cpu_ticks;
        *worker = done;
        events.schedule(done,
                        [arrival, &record] { record(arrival, false); });
    };

    for (std::size_t i = 0; i < requests.size(); ++i) {
        const Request &r = requests[i];
        events.schedule(r.arrival, [&, i, r] {
            const unsigned slot = dispatcher.place(r.flow);
            if (slot == topo::ShardDispatcher::kCpuPath) {
                runOnCpu(r.arrival);
                return;
            }
            topo::Topology::Slot &dev = topo.slot(slot);

            compcpy::CompCpyParams params;
            params.size = bytes;
            params.ulp = config.ulp;
            params.ordered =
                config.ulp == smartdimm::UlpKind::kDeflate;
            params.message_id = 1 + i;
            std::memcpy(params.key, key, sizeof(key));
            params.iv[4] = static_cast<std::uint8_t>(i >> 24);
            params.iv[5] = static_cast<std::uint8_t>(i >> 16);
            params.iv[6] = static_cast<std::uint8_t>(i >> 8);
            params.iv[7] = static_cast<std::uint8_t>(i);
            params.sbuf = dev.driver.alloc(bytes);
            const std::size_t dbytes =
                compcpy::CompCpyEngine::destPages(params) * kPageSize;
            params.dbuf = dev.driver.alloc(dbytes);
            // Payload arrives DMA-resident in DRAM (the NIC staged
            // it); the engine's own sbuf flush provides the ordering.
            topo.store().write(params.sbuf, payload.data(),
                               payload.size());
            ++st.outstanding[r.flow];

            auto done = [&, r, params, dbytes](
                            const compcpy::CompletionRecord &) {
                record(r.arrival, true);
                topo::Topology::Slot &owner =
                    topo.slot(*dispatcher.pinnedSlot(r.flow));
                owner.driver.release(params.sbuf, params.size);
                owner.driver.release(params.dbuf, dbytes);
                if (--st.outstanding[r.flow] == 0)
                    dispatcher.releaseFlow(r.flow);
            };
            if (!dispatcher.submit(
                    slot, compcpy::Descriptor::single(params), 0,
                    std::move(done))) {
                // The queue filled between placement and submit:
                // fall back to the CPU path for this op.
                dev.driver.release(params.sbuf, params.size);
                dev.driver.release(params.dbuf, dbytes);
                if (--st.outstanding[r.flow] == 0)
                    dispatcher.releaseFlow(r.flow);
                runOnCpu(r.arrival);
            }
        });
    }

    events.run();

    result.completed = st.latencies.size();
    result.dimm_ops = st.dimm_ops;
    result.cpu_ops = st.cpu_ops;
    result.shed_to_sibling = dispatcher.stats().shed_to_sibling;
    result.shed_to_cpu = dispatcher.stats().shed_to_cpu;
    const Tick span = st.last_completion > requests.front().arrival
                          ? st.last_completion - requests.front().arrival
                          : 1;
    result.achieved_ops_per_sec =
        static_cast<double>(result.completed) * 1e12 /
        static_cast<double>(span);
    std::sort(st.latencies.begin(), st.latencies.end());
    result.p50_us =
        static_cast<double>(percentile(st.latencies, 0.50)) / 1e6;
    result.p99_us =
        static_cast<double>(percentile(st.latencies, 0.99)) / 1e6;
    result.max_us = st.latencies.empty()
                        ? 0
                        : static_cast<double>(st.latencies.back()) / 1e6;
    return result;
}

} // namespace sd::app
