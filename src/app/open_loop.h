/**
 * @file
 * Open-loop (wrk2-style) request generator over the multi-DIMM
 * topology. Unlike the closed-loop analytic server model
 * (server_model.h), arrivals here are a Poisson process whose rate is
 * fixed in advance — a request arrives whether or not earlier ones
 * completed — so queueing delay shows up in the latency distribution
 * instead of silently throttling the offered load (the coordinated-
 * omission trap wrk2 exists to avoid).
 *
 * Each arrival belongs to a persistent flow; the ShardDispatcher
 * places the flow on its hash-home DIMM, sheds to siblings under
 * saturation or degradation, and falls back to the CPU path (a small
 * pool of workers costed by offload::CostModel) when every queue is
 * full. Latency is measured arrival-to-completion in simulated time.
 */

#ifndef SD_APP_OPEN_LOOP_H
#define SD_APP_OPEN_LOOP_H

#include <cstdint>

#include "offload/cost_model.h"
#include "topo/dispatcher.h"
#include "topo/topology.h"

namespace sd::app {

/** One open-loop evaluation point. */
struct OpenLoopConfig
{
    topo::TopologySpec topology{};
    topo::DispatcherConfig dispatcher{};

    double arrival_rate = 500e3;   ///< offered load, ops/sec
    std::size_t requests = 512;    ///< arrivals to simulate
    unsigned flows = 32;           ///< persistent connections
    std::size_t message_bytes = 4096;
    smartdimm::UlpKind ulp = smartdimm::UlpKind::kTlsEncrypt;
    std::uint64_t seed = 1;

    /** CPU fallback path: worker pool + calibrated software costs. */
    unsigned cpu_workers = 2;
    offload::CostModel cost{};
};

/** Aggregate outcome of one open-loop run. */
struct OpenLoopResult
{
    double offered_ops_per_sec = 0;
    double achieved_ops_per_sec = 0; ///< completions over the makespan
    double p50_us = 0;
    double p99_us = 0;
    double max_us = 0;
    std::uint64_t completed = 0;
    std::uint64_t dimm_ops = 0;       ///< served by a buffer device
    std::uint64_t cpu_ops = 0;        ///< CPU-path fallbacks
    std::uint64_t shed_to_sibling = 0; ///< dispatcher shed decisions
    std::uint64_t shed_to_cpu = 0;
};

/** Run the open-loop workload to completion (deterministic in seed). */
OpenLoopResult runOpenLoopServer(const OpenLoopConfig &config);

} // namespace sd::app

#endif // SD_APP_OPEN_LOOP_H
