#include "app/server_model.h"

#include <algorithm>
#include <cmath>

#include "app/antagonist.h"
#include "common/log.h"
#include "common/types.h"

namespace sd::app {

namespace {

/** Compression ratio the Deflate DSA achieves on web responses. */
constexpr double kWebCompressRatio = 0.38; // output/input

/** Per-request DRAM traffic independent of the ULP placement:
 *  storage DMA in + NIC fetch of the (leaked part of the) response. */
double
baselineTraffic(std::size_t bytes, double leak)
{
    return static_cast<double>(bytes) * (1.0 + leak);
}

} // namespace

ServerResult
evaluateServer(const ServerConfig &config)
{
    ServerResult result;
    const offload::CostModel &m = config.model;

    // ---- 1. LLC contention from the live connection fan-in --------------
    ContentionWorkload workload;
    workload.connections = config.connections;
    workload.message_bytes = config.message_bytes;
    workload.per_connection_kb = m.memory.per_connection_kb;
    workload.llc_mb = static_cast<std::size_t>(m.memory.llc_mb);
    workload.antagonist_mb = config.antagonist_mb;
    workload.antagonist_instances = config.antagonist_instances;
    const ContentionResult contention = measureContention(workload);
    result.leak_fraction = contention.leak_fraction;

    // Co-runners consume DRAM bandwidth and inflate every miss's
    // effective latency (queueing at the controller); blocking PCIe
    // offloads see their completion latency stretched the same way.
    double antagonist_bw_gbps = 0.0;
    offload::CostModel model_adj = m;
    if (config.antagonist_instances > 0) {
        antagonist_bw_gbps =
            McfLikeAntagonist::kDemandBandwidthGbps *
            config.antagonist_instances;
        const double inflation =
            1.0 + 2.2 * antagonist_bw_gbps / m.memory.peak_bw_gbps;
        model_adj.cpu.dram_miss_cycles *= inflation;
        model_adj.qat.crypto_block_us *= inflation;
        model_adj.qat.compress_block_us *= inflation;
    }

    // ---- 2. Per-request resource vector ----------------------------------
    offload::LoadContext ctx;
    ctx.leak_fraction = contention.leak_fraction;
    ctx.loss_events_per_message = config.loss_events_per_message;
    ctx.output_ratio = config.ulp == offload::Ulp::kDeflate
                           ? kWebCompressRatio
                           : 1.0;

    const auto placement =
        offload::makePlacement(config.placement, model_adj);
    const offload::UlpCost ulp_cost =
        placement->messageCost(config.ulp, config.message_bytes, ctx);
    result.placement_name = placement->name();
    if (!ulp_cost.supported) {
        result.supported = false;
        return result;
    }

    // SmartDIMM's ULP buffers bypass the LLC (sbuf is flushed, dbuf is
    // consumed once and flushed), so the connection-state working set
    // keeps its capacity and the *baseline* streams leak less — the
    // cache-thrashing-prevention effect of Sec. VII-B.
    double baseline_leak = contention.leak_fraction;
    if (config.placement == offload::PlacementKind::kSmartDimm &&
        config.ulp != offload::Ulp::kNone)
        baseline_leak *= 0.25;

    // Base request handling + TCP segmentation of the response. The
    // event loop's own state misses scale with contention, so every
    // placement slows somewhat when the LLC is stolen.
    const double wire_bytes =
        static_cast<double>(config.message_bytes) * ctx.output_ratio;
    const double segments = std::max(1.0, wire_bytes / 1448.0);
    const double base_cycles =
        m.cpu.base_request_cycles +
        segments * m.cpu.per_segment_cycles +
        contention.leak_fraction * 80.0 *
            model_adj.cpu.dram_miss_cycles * 0.22;

    const double cycles_per_req = base_cycles + ulp_cost.cpu_cycles;
    const double dram_per_req =
        baselineTraffic(config.message_bytes, baseline_leak) +
        ulp_cost.dram_bytes;

    // ---- 3. Capacity fixed point ------------------------------------------
    const double cpu_capacity =
        m.cpu.freq_ghz * 1e9 * config.worker_threads;
    const double mem_capacity =
        std::max(1.0, (m.memory.peak_bw_gbps - antagonist_bw_gbps)) *
        1e9;
    const double net_capacity = config.link_gbps * 1e9 / 8.0;

    const double rps_cpu = cpu_capacity / cycles_per_req;
    const double rps_mem = mem_capacity / std::max(1.0, dram_per_req);
    const double rps_net =
        net_capacity / std::max(1.0, wire_bytes + 66.0 * segments);

    double rps = std::min({rps_cpu, rps_mem, rps_net});

    // Memory-bandwidth congestion: as the memory system approaches
    // saturation, effective per-miss latency climbs and shaves the
    // achievable rate (a smooth M/D/1-flavoured degradation).
    const double mem_load = rps * dram_per_req / mem_capacity;
    if (mem_load > 0.6)
        rps *= 1.0 - 0.35 * (mem_load - 0.6);

    result.rps = rps;
    result.cpu_utilization =
        std::min(1.0, rps * cycles_per_req / cpu_capacity);
    result.mem_bandwidth_gbps =
        (rps * dram_per_req + antagonist_bw_gbps * 1e9) / 1e9;
    result.mem_bw_utilization =
        result.mem_bandwidth_gbps / m.memory.peak_bw_gbps;
    result.dram_bytes_per_request = dram_per_req;
    result.latency_us =
        cycles_per_req / (m.cpu.freq_ghz * 1e3) + ulp_cost.latency_us;

    // ---- 4. Antagonist slowdown (Table I) ---------------------------------
    if (config.antagonist_instances > 0) {
        // mcf's progress degrades with the *interference-weighted*
        // memory traffic the server generates: its pointer chase is
        // latency-bound, so random/bursty traffic (PCIe bounce-buffer
        // DMA) hurts far more per byte than the streaming traffic of
        // the other placements, and DIMM-local SmartDIMM traffic
        // occupies the channel without polluting the LLC.
        double interference_factor = 1.0;
        switch (config.placement) {
          case offload::PlacementKind::kQuickAssist:
            interference_factor = 7.0;
            break;
          case offload::PlacementKind::kSmartDimm:
            interference_factor = 0.85;
            break;
          default:
            break;
        }
        const double server_gbps = rps * dram_per_req / 1e9;
        result.antagonist_slowdown =
            std::min(0.8, 0.0128 * server_gbps * interference_factor);
    }
    return result;
}

} // namespace sd::app
