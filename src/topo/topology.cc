#include "topo/topology.h"

#include <cctype>
#include <cstdlib>

#include "common/log.h"

namespace sd::topo {

std::optional<TopologySpec>
TopologySpec::parse(const std::string &text)
{
    // strtoul silently accepts signs and whitespace; the knob grammar
    // is strictly digits, so require a leading digit on each count.
    if (text.empty() || std::isdigit(static_cast<unsigned char>(text[0])) == 0)
        return std::nullopt;
    unsigned long channels = 0;
    unsigned long dimms = 1;
    char *end = nullptr;
    channels = std::strtoul(text.c_str(), &end, 10);
    if (end == text.c_str())
        return std::nullopt;
    if (*end == 'x' || *end == 'X') {
        const char *dimm_text = end + 1;
        if (std::isdigit(static_cast<unsigned char>(*dimm_text)) == 0)
            return std::nullopt;
        dimms = std::strtoul(dimm_text, &end, 10);
    }
    if (*end != '\0' || channels == 0 || dimms == 0)
        return std::nullopt;
    TopologySpec spec;
    spec.channels = static_cast<unsigned>(channels);
    spec.dimms_per_channel = static_cast<unsigned>(dimms);
    return spec;
}

std::optional<TopologySpec>
TopologySpec::parseCxl(const std::string &text, const TopologySpec &base)
{
    // Grammar: "N[@ns[@gbps]]" — strictly digit-led fields like the
    // topology grammar; latency/rate parse as doubles.
    if (text.empty() || std::isdigit(static_cast<unsigned char>(text[0])) == 0)
        return std::nullopt;
    char *end = nullptr;
    const unsigned long count = std::strtoul(text.c_str(), &end, 10);
    TopologySpec spec = base;
    spec.cxl_channels = static_cast<unsigned>(count);
    if (*end == '@') {
        const char *lat_text = end + 1;
        if (std::isdigit(static_cast<unsigned char>(*lat_text)) == 0)
            return std::nullopt;
        spec.cxl_link.round_trip_ns = std::strtod(lat_text, &end);
        if (spec.cxl_link.round_trip_ns <= 0.0)
            return std::nullopt;
    }
    if (*end == '@') {
        const char *rate_text = end + 1;
        if (std::isdigit(static_cast<unsigned char>(*rate_text)) == 0)
            return std::nullopt;
        spec.cxl_link.gbps = std::strtod(rate_text, &end);
        if (spec.cxl_link.gbps <= 0.0)
            return std::nullopt;
    }
    if (*end != '\0')
        return std::nullopt;
    return spec;
}

TopologySpec
TopologySpec::fromEnv(const TopologySpec &fallback)
{
    TopologySpec spec = fallback;
    const char *text = std::getenv("SD_TOPOLOGY");
    if (text != nullptr && *text != '\0') {
        std::optional<TopologySpec> parsed = parse(text);
        if (!parsed.has_value())
            SD_FATAL("bad SD_TOPOLOGY \"%s\" (want e.g. \"2x2\")", text);
        spec.channels = parsed->channels;
        spec.dimms_per_channel = parsed->dimms_per_channel;
    }
    const char *cxl = std::getenv("SD_CXL");
    if (cxl != nullptr && *cxl != '\0') {
        std::optional<TopologySpec> parsed = parseCxl(cxl, spec);
        if (!parsed.has_value())
            SD_FATAL("bad SD_CXL \"%s\" (want e.g. \"1@600@32\")", cxl);
        spec = *parsed;
    }
    return spec;
}

namespace {

mem::DramGeometry
finalizeGeometry(const TopologySpec &spec)
{
    mem::DramGeometry g = spec.geometry;
    // Far (CXL) channels sit after the local ones in the flat channel
    // index space; the AddressMap needs no far-awareness because the
    // capacity interleave already gives every channel a contiguous
    // window — the CxlLink delays completions, not addressing.
    g.channels = spec.totalChannels();
    g.dimms_per_channel = spec.dimms_per_channel;
    return g;
}

} // namespace

Topology::Topology(const TopologySpec &spec)
    : spec_(spec), geometry_(finalizeGeometry(spec)),
      map_(geometry_, geometry_.channels > 1 ?
                          mem::ChannelInterleave::kCapacity :
                          mem::ChannelInterleave::kNone)
{
    SD_ASSERT(geometry_.channels >= 1, "need at least one channel");
    SD_ASSERT(geometry_.dimms_per_channel >= 1, "need at least one DIMM");
    // Every per-device structure (MMIO window, driver heap) must fit
    // inside the device's contiguous address window.
    SD_ASSERT(spec_.device.mmio_base + spec_.device.mmio_bytes <=
                  geometry_.dimmBytes(),
              "MMIO window exceeds the per-DIMM capacity slice");
    SD_ASSERT(spec_.driver_base + spec_.driver_bytes <=
                  spec_.device.mmio_base,
              "driver heap would overlap the MMIO window");

    const unsigned channels = geometry_.channels;
    const unsigned dimms = geometry_.dimms_per_channel;
    const bool tagged = channels * dimms > 1;

    // Devices first: the mux and the memory system hold pointers into
    // devices_ (a deque, so references stay stable as slots append).
    std::vector<mem::DimmDevice *> channel_devices;
    channel_devices.reserve(channels);
    for (unsigned ch = 0; ch < channels; ++ch) {
        std::vector<mem::DimmDevice *> dimm_slots;
        for (unsigned d = 0; d < dimms; ++d) {
            smartdimm::SmartDimmConfig config = spec_.device;
            config.mmio_base = slotBase(ch, d) + spec_.device.mmio_base;
            smartdimm::BufferDevice &device =
                devices_.emplace_back(events_, map_, store_, config);
            device.setFaultScope(
                {static_cast<int>(ch), static_cast<int>(d)});
            dimm_slots.push_back(&device);
        }
        if (dimms > 1)
            channel_devices.push_back(&muxes_.emplace_back(dimm_slots));
        else
            channel_devices.push_back(dimm_slots.front());
    }

    memory_ = std::make_unique<cache::MemorySystem>(
        events_, geometry_,
        channels > 1 ? mem::ChannelInterleave::kCapacity
                     : mem::ChannelInterleave::kNone,
        spec_.llc, channel_devices, spec_.timing, spec_.controller,
        spec_.latencies);

    // One CXL link per far channel: every DRAM-side access on that
    // channel defers its completion through the link's flit queue.
    for (unsigned ch = spec_.channels; ch < channels; ++ch) {
        mem::CxlLink &link =
            links_.emplace_back(events_, spec_.cxl_link);
        link.setFaultScope({static_cast<int>(ch), -1});
        memory_->attachCxlLink(ch, &link);
    }

    for (unsigned ch = 0; ch < channels; ++ch) {
        for (unsigned d = 0; d < dimms; ++d) {
            const Addr base = slotBase(ch, d);
            Slot &slot = slots_.emplace_back(
                ch, d, base, devices_[slotIndex(ch, d)], *memory_,
                base + spec_.driver_base, spec_.driver_bytes);
            slot.engine.setFaultScope(
                {static_cast<int>(ch), static_cast<int>(d)});
            if (tagged)
                slot.engine.setSpanTag("ch" + std::to_string(ch) + ".d" +
                                       std::to_string(d));
        }
    }
}

void
Topology::setFaultPlan(fault::FaultPlan *plan)
{
    memory_->setFaultPlan(plan);
    for (smartdimm::BufferDevice &device : devices_)
        device.setFaultPlan(plan);
    for (Slot &slot : slots_)
        slot.engine.setFaultPlan(plan);
    for (mem::CxlLink &link : links_)
        link.setFaultPlan(plan);
}

void
Topology::registerStats(trace::StatsRegistry &registry) const
{
    memory_->registerStats(registry);
    const bool tagged = slotCount() > 1;
    for (const Slot &slot : slots_) {
        const std::string suffix =
            tagged ? ".ch" + std::to_string(slot.channel) + ".d" +
                         std::to_string(slot.dimm)
                   : std::string();
        const smartdimm::BufferDevice &device = slot.device;
        registry.add("smartdimm" + suffix,
                     [&device](trace::StatsBlock &block) {
                         device.reportStats(block);
                     });
        const compcpy::CompCpyEngine &engine = slot.engine;
        registry.add("compcpy" + suffix,
                     [&engine](trace::StatsBlock &block) {
                         engine.reportStats(block);
                     });
    }
    for (unsigned i = 0; i < links_.size(); ++i) {
        const mem::CxlLink &link = links_[i];
        registry.add("cxl.ch" + std::to_string(spec_.channels + i),
                     [&link](trace::StatsBlock &block) {
                         link.reportStats(block);
                     });
    }
}

} // namespace sd::topo
