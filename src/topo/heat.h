/**
 * @file
 * Hot/cold access classifier for the two-tier (local DDR4 vs
 * CXL.mem) placement policy. Keys are opaque 64-bit ids — the
 * dispatcher classifies flows, a page-granular policy would pass page
 * numbers — and heat is a touch count with deterministic epoch decay:
 * every `epoch_touches` total touches, all counts halve. No wall
 * clock is involved, so a run replays bit-identically (the same
 * determinism contract as the fault layer).
 */

#ifndef SD_TOPO_HEAT_H
#define SD_TOPO_HEAT_H

#include <cstdint>
#include <iterator>
#include <unordered_map>

namespace sd::topo {

/** Classifier knobs. */
struct HeatConfig
{
    /** Decayed touch count at which a key counts as hot. */
    std::uint64_t hot_threshold = 4;

    /** Total touches between decay epochs (all counts halve). */
    std::uint64_t epoch_touches = 256;
};

/** Touch-count classifier with epoch decay (single-owner). */
class HeatClassifier
{
  public:
    explicit HeatClassifier(const HeatConfig &config = {})
        : config_(config)
    {
    }

    /** Record one touch of @p key. @return true when it is now hot. */
    bool
    touch(std::uint64_t key)
    {
        if (++since_epoch_ >= config_.epoch_touches) {
            since_epoch_ = 0;
            for (auto it = counts_.begin(); it != counts_.end();) {
                it->second /= 2;
                it = it->second == 0 ? counts_.erase(it)
                                     : std::next(it);
            }
        }
        return ++counts_[key] >= config_.hot_threshold;
    }

    /** @return true when @p key is hot, without recording a touch. */
    bool
    hot(std::uint64_t key) const
    {
        const auto it = counts_.find(key);
        return it != counts_.end() &&
               it->second >= config_.hot_threshold;
    }

    /** Keys with a nonzero decayed count. */
    std::size_t tracked() const { return counts_.size(); }

    const HeatConfig &config() const { return config_; }

  private:
    HeatConfig config_;
    std::uint64_t since_epoch_ = 0;
    std::unordered_map<std::uint64_t, std::uint64_t> counts_;
};

} // namespace sd::topo

#endif // SD_TOPO_HEAT_H
