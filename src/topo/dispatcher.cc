#include "topo/dispatcher.h"

#include <algorithm>
#include <limits>
#include <memory>

#include "common/bitops.h"
#include "common/log.h"
#include "smartdimm/deflate_dsa.h"

namespace sd::topo {

namespace {

/** splitmix64 finalizer: full-avalanche mix of a flow id. */
std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9E3779B97F4A7C15ULL;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
    return x ^ (x >> 31);
}

} // namespace

ShardDispatcher::ShardDispatcher(Topology &topo,
                                 const DispatcherConfig &config)
    : topo_(topo), config_(config),
      degraded_(topo.slotCount(), false),
      failure_streak_(topo.slotCount(), 0)
{
    SD_ASSERT(config_.queue.id != 0,
              "queue id 0 is the engines' internal sync queue");
    for (unsigned s = 0; s < topo_.slotCount(); ++s) {
        compcpy::WorkQueueConfig qc = config_.queue;
        if (topo_.isFarSlot(s)) {
            // Far-tier queues complete via the withheld-response
            // protocol: the CXL controller holds the completion read
            // open instead of the host polling a record array.
            qc.signal = compcpy::CompletionSignal::kWithheldResponse;
            far_slots_.push_back(s);
        } else {
            local_slots_.push_back(s);
        }
        queues_.emplace_back(topo_.slot(s).engine, qc);
    }
    heat_ = HeatClassifier(config_.heat);
}

unsigned
ShardDispatcher::homeSlot(std::uint64_t flow) const
{
    return narrowIdx(mix64(flow) % topo_.slotCount(),
                     topo_.slotCount());
}

unsigned
ShardDispatcher::leastLoadedHealthy() const
{
    unsigned best = kCpuPath;
    std::size_t best_occupancy = std::numeric_limits<std::size_t>::max();
    for (unsigned s = 0; s < topo_.slotCount(); ++s) {
        if (degraded_[s])
            continue;
        const std::size_t occupancy = queues_[s].occupancy();
        if (occupancy >= config_.queue.depth)
            continue; // genuinely full — a submit would be rejected
        if (occupancy < best_occupancy) {
            best_occupancy = occupancy;
            best = s;
        }
    }
    return best;
}

unsigned
ShardDispatcher::leastLoadedHealthyIn(
    const std::vector<unsigned> &slots) const
{
    unsigned best = kCpuPath;
    std::size_t best_occupancy = std::numeric_limits<std::size_t>::max();
    for (unsigned s : slots) {
        if (degraded_[s])
            continue;
        const std::size_t occupancy = queues_[s].occupancy();
        if (occupancy >= config_.queue.depth)
            continue;
        if (occupancy < best_occupancy) {
            best_occupancy = occupancy;
            best = s;
        }
    }
    return best;
}

unsigned
ShardDispatcher::placeIn(std::uint64_t flow,
                         const std::vector<unsigned> &tier)
{
    const unsigned home = tier[narrowIdx(
        mix64(flow) % tier.size(), tier.size())];
    const std::size_t shed_at = std::max<std::size_t>(
        1, static_cast<std::size_t>(config_.shed_occupancy *
                                    static_cast<double>(
                                        config_.queue.depth)));
    if (!degraded_[home] && queues_[home].occupancy() < shed_at) {
        ++stats_.home_hits;
        return home;
    }
    const unsigned chosen = leastLoadedHealthyIn(tier);
    if (chosen == kCpuPath)
        return kCpuPath;
    if (chosen == home)
        ++stats_.home_hits; // saturated home still least-loaded
    else
        ++stats_.shed_to_sibling;
    return chosen;
}

unsigned
ShardDispatcher::placeTiered(std::uint64_t flow, bool hot)
{
    // Hot flows home on the local tier, cold flows on the far tier; a
    // saturated tier sheds into the other one before the CPU path.
    const auto &preferred = hot ? local_slots_ : far_slots_;
    const auto &fallback = hot ? far_slots_ : local_slots_;
    unsigned chosen = placeIn(flow, preferred);
    if (chosen == kCpuPath && !fallback.empty())
        chosen = placeIn(flow, fallback);
    if (chosen == kCpuPath) {
        ++stats_.shed_to_cpu;
        return kCpuPath; // not pinned: retry the tiers next op
    }
    if (topo_.isFarSlot(chosen))
        ++stats_.tier_cxl_placements;
    else
        ++stats_.tier_local_placements;
    pins_.emplace(flow, chosen);
    return chosen;
}

unsigned
ShardDispatcher::place(std::uint64_t flow)
{
    if (!far_slots_.empty() && !local_slots_.empty()) {
        const bool hot = heat_.touch(flow);
        auto pinned = pins_.find(flow);
        if (pinned != pins_.end()) {
            const bool far = topo_.isFarSlot(pinned->second);
            const bool tier_matches = far != hot; // hot<->local
            if (tier_matches)
                return pinned->second;
            // The flow's heat changed since it was pinned: unpin and
            // re-place it on the matching tier (a migration).
            pins_.erase(pinned);
            if (hot)
                ++stats_.migrations_to_local;
            else
                ++stats_.migrations_to_cxl;
        }
        ++stats_.placements;
        return placeTiered(flow, hot);
    }

    auto pinned = pins_.find(flow);
    if (pinned != pins_.end())
        return pinned->second;

    ++stats_.placements;
    const unsigned home = homeSlot(flow);
    const std::size_t shed_at = std::max<std::size_t>(
        1, static_cast<std::size_t>(config_.shed_occupancy *
                                    static_cast<double>(
                                        config_.queue.depth)));
    unsigned chosen;
    if (!degraded_[home] && queues_[home].occupancy() < shed_at) {
        chosen = home;
        ++stats_.home_hits;
    } else {
        chosen = leastLoadedHealthy();
        if (chosen == kCpuPath) {
            ++stats_.shed_to_cpu;
            return kCpuPath; // not pinned: retry the DIMMs next op
        }
        if (chosen == home)
            ++stats_.home_hits; // saturated home still least-loaded
        else
            ++stats_.shed_to_sibling;
    }
    pins_.emplace(flow, chosen);
    return chosen;
}

void
ShardDispatcher::releaseFlow(std::uint64_t flow)
{
    pins_.erase(flow);
}

std::optional<unsigned>
ShardDispatcher::pinnedSlot(std::uint64_t flow) const
{
    auto pinned = pins_.find(flow);
    if (pinned == pins_.end())
        return std::nullopt;
    return pinned->second;
}

std::optional<std::uint64_t>
ShardDispatcher::submit(unsigned slot, const compcpy::Descriptor &desc,
                        std::uint16_t submitter,
                        compcpy::WorkQueue::CompletionCallback on_done)
{
    SD_ASSERT(slot < topo_.slotCount(), "submit to a nonexistent slot");
    return queues_[slot].submit(
        desc, submitter,
        [this, slot, on_done = std::move(on_done)](
            const compcpy::CompletionRecord &record) {
            noteCompletion(slot, record.status);
            if (on_done)
                on_done(record);
        });
}

void
ShardDispatcher::noteCompletion(unsigned slot,
                                compcpy::CompletionStatus status)
{
    if (status == compcpy::CompletionStatus::kSuccess) {
        failure_streak_[slot] = 0;
        degraded_[slot] = false; // device recovered — take load again
        return;
    }
    if (++failure_streak_[slot] >= config_.degrade_after &&
        !degraded_[slot]) {
        degraded_[slot] = true;
        ++stats_.auto_degraded;
    }
}

void
ShardDispatcher::setDegraded(unsigned slot, bool degraded)
{
    degraded_[slot] = degraded;
    if (!degraded)
        failure_streak_[slot] = 0;
}

ShardDispatcher::StripePlan
ShardDispatcher::planStripe(const compcpy::CompCpyParams &base,
                            std::uint64_t flow, int force_slot)
{
    std::size_t chunk_bytes = config_.stripe_chunk_bytes;
    SD_ASSERT(chunk_bytes > 0 && chunk_bytes % kPageSize == 0,
              "stripe chunks must be whole pages");
    if (base.ulp == smartdimm::UlpKind::kDeflate)
        chunk_bytes =
            std::min(chunk_bytes, smartdimm::kDeflateMaxPayload);

    StripePlan plan;
    plan.total_bytes = base.size;
    plan.chunk_bytes = chunk_bytes;
    const unsigned start =
        force_slot >= 0 ? static_cast<unsigned>(force_slot)
                        : homeSlot(flow);
    std::size_t offset = 0;
    for (unsigned i = 0; offset < base.size; ++i) {
        const std::size_t size =
            std::min(chunk_bytes, base.size - offset);
        StripeChunk chunk;
        chunk.slot = force_slot >= 0
                         ? static_cast<unsigned>(force_slot)
                         : (start + i) % topo_.slotCount();
        chunk.params = base;
        chunk.params.size = size;
        // Chunk identity is slot-independent: message_id base+i and
        // an IV uniquified by the chunk index, so striped output is
        // bit-exact with the same chunks run on one DIMM.
        chunk.params.message_id = base.message_id + i;
        chunk.params.iv[8] ^= static_cast<std::uint8_t>(i >> 24);
        chunk.params.iv[9] ^= static_cast<std::uint8_t>(i >> 16);
        chunk.params.iv[10] ^= static_cast<std::uint8_t>(i >> 8);
        chunk.params.iv[11] ^= static_cast<std::uint8_t>(i);
        compcpy::Driver &driver = topo_.slot(chunk.slot).driver;
        chunk.params.sbuf = driver.alloc(size);
        chunk.params.dbuf = driver.alloc(
            compcpy::CompCpyEngine::destPages(chunk.params) * kPageSize);
        plan.chunks.push_back(chunk);
        offset += size;
    }
    ++stats_.stripes;
    stats_.stripe_chunks += plan.chunks.size();
    return plan;
}

void
ShardDispatcher::submitStripe(
    const StripePlan &plan,
    std::function<void(compcpy::CompletionStatus)> done,
    std::uint16_t submitter)
{
    // Group the chunks by slot, preserving chunk order within a slot.
    std::vector<std::vector<compcpy::CompCpyParams>> per_slot(
        topo_.slotCount());
    for (const StripeChunk &chunk : plan.chunks)
        per_slot[chunk.slot].push_back(chunk.params);

    struct FanIn
    {
        unsigned outstanding = 0;
        compcpy::CompletionStatus worst =
            compcpy::CompletionStatus::kSuccess;
        std::function<void(compcpy::CompletionStatus)> done;
    };
    auto fan_in = std::make_shared<FanIn>();
    fan_in->done = std::move(done);
    for (const auto &ops : per_slot)
        if (!ops.empty())
            ++fan_in->outstanding;
    SD_ASSERT(fan_in->outstanding > 0, "empty stripe plan submitted");

    for (unsigned s = 0; s < per_slot.size(); ++s) {
        if (per_slot[s].empty())
            continue;
        queues_[s].submitForce(
            compcpy::Descriptor::batch(std::move(per_slot[s])),
            submitter,
            [this, s, fan_in](const compcpy::CompletionRecord &record) {
                noteCompletion(s, record.status);
                // CompletionStatus orders by severity, so the worst
                // per-slot status is the stripe's status.
                fan_in->worst = std::max(fan_in->worst, record.status);
                if (--fan_in->outstanding == 0 && fan_in->done)
                    fan_in->done(fan_in->worst);
            });
    }
}

std::vector<std::uint8_t>
ShardDispatcher::readStripeResult(const StripePlan &plan)
{
    std::vector<std::uint8_t> out;
    for (const StripeChunk &chunk : plan.chunks) {
        compcpy::CompCpyEngine &engine = topo_.slot(chunk.slot).engine;
        const std::size_t bytes =
            compcpy::CompCpyEngine::destPages(chunk.params) * kPageSize;
        engine.useSync(chunk.params.dbuf, bytes);
        std::vector<std::uint8_t> part =
            engine.readResult(chunk.params.dbuf, bytes);
        out.insert(out.end(), part.begin(), part.end());
    }
    return out;
}

void
ShardDispatcher::releaseStripe(const StripePlan &plan)
{
    for (const StripeChunk &chunk : plan.chunks) {
        compcpy::Driver &driver = topo_.slot(chunk.slot).driver;
        driver.release(chunk.params.sbuf, chunk.params.size);
        driver.release(
            chunk.params.dbuf,
            compcpy::CompCpyEngine::destPages(chunk.params) * kPageSize);
    }
}

void
ShardDispatcher::registerStats(trace::StatsRegistry &registry) const
{
    registry.add("dispatch", [this](trace::StatsBlock &block) {
        block.scalar("placements", static_cast<double>(stats_.placements));
        block.scalar("home_hits", static_cast<double>(stats_.home_hits));
        block.scalar("shed_to_sibling",
                     static_cast<double>(stats_.shed_to_sibling));
        block.scalar("shed_to_cpu",
                     static_cast<double>(stats_.shed_to_cpu));
        block.scalar("stripes", static_cast<double>(stats_.stripes));
        block.scalar("stripe_chunks",
                     static_cast<double>(stats_.stripe_chunks));
        block.scalar("auto_degraded",
                     static_cast<double>(stats_.auto_degraded));
        block.scalar("tier_local_placements",
                     static_cast<double>(stats_.tier_local_placements));
        block.scalar("tier_cxl_placements",
                     static_cast<double>(stats_.tier_cxl_placements));
        block.scalar("migrations_to_local",
                     static_cast<double>(stats_.migrations_to_local));
        block.scalar("migrations_to_cxl",
                     static_cast<double>(stats_.migrations_to_cxl));
    });
    const bool tagged = topo_.slotCount() > 1;
    for (unsigned s = 0; s < topo_.slotCount(); ++s) {
        const Topology::Slot &slot = topo_.slot(s);
        const std::string name =
            tagged ? "queue.ch" + std::to_string(slot.channel) + ".d" +
                         std::to_string(slot.dimm)
                   : std::string("queue");
        const compcpy::WorkQueue &queue = queues_[s];
        registry.add(name, [&queue](trace::StatsBlock &block) {
            queue.reportStats(block);
        });
    }
}

} // namespace sd::topo
