/**
 * @file
 * The sharding CompCpy dispatcher: the host-side policy layer that
 * spreads offload work across every slot of a Topology.
 *
 *  - Flows hash-affinitize to a home DIMM (splitmix-style mix of the
 *    flow id), and a placed flow stays pinned to its slot until
 *    released, so the per-flow ordered-fence contract survives: all
 *    of a flow's ops enter one WorkQueue in submission order and that
 *    queue dispatches strictly FIFO.
 *  - A saturated home queue (occupancy at the shed threshold) or a
 *    degraded device sheds new flows to the least-loaded healthy
 *    sibling; when every queue is full the dispatcher returns
 *    kCpuPath and the caller runs the op on the CPU, mirroring the
 *    adaptive engine's fallback.
 *  - Large messages stripe across DIMMs: planStripe() splits one
 *    logical message into independent chunk records (chunk i gets
 *    message_id base+i and an IV uniquified by XOR of i, both
 *    slot-independent, so a striped run is bit-exact with the same
 *    chunks on a single DIMM), submitStripe() packs each slot's
 *    chunks into one batch descriptor and fans the per-slot
 *    completions back into a single callback.
 */

#ifndef SD_TOPO_DISPATCHER_H
#define SD_TOPO_DISPATCHER_H

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "compcpy/queue.h"
#include "topo/heat.h"
#include "topo/topology.h"

namespace sd::topo {

/** Dispatcher policy knobs. */
struct DispatcherConfig
{
    /** Per-slot queue template (the id must differ from the engines'
     *  internal sync queue, id 0). */
    compcpy::WorkQueueConfig queue{
        .id = 1, .mode = compcpy::QueueMode::kShared};

    /** Home-queue occupancy fraction beyond which new flows shed. */
    double shed_occupancy = 0.75;

    /** Stripe chunk size (page multiple; deflate chunks additionally
     *  clamp to the device's single-page payload limit). */
    std::size_t stripe_chunk_bytes = 4 * kPageSize;

    /** Consecutive failed completions that mark a slot degraded. */
    unsigned degrade_after = 4;

    /** Hot/cold classifier for the two-tier policy (only consulted
     *  when the topology has far slots). */
    HeatConfig heat{};
};

/** Placement and shedding counters. */
struct DispatchStats
{
    std::uint64_t placements = 0;      ///< fresh flow placements
    std::uint64_t home_hits = 0;       ///< placed on the hash-home slot
    std::uint64_t shed_to_sibling = 0; ///< home saturated/degraded
    std::uint64_t shed_to_cpu = 0;     ///< every queue saturated
    std::uint64_t stripes = 0;         ///< striped messages planned
    std::uint64_t stripe_chunks = 0;   ///< chunk records across stripes
    std::uint64_t auto_degraded = 0;   ///< slots auto-marked degraded
    std::uint64_t tier_local_placements = 0; ///< placed on local tier
    std::uint64_t tier_cxl_placements = 0;   ///< placed on far tier
    std::uint64_t migrations_to_local = 0; ///< cold->hot repins
    std::uint64_t migrations_to_cxl = 0;   ///< hot->cold repins
};

/** Policy layer spreading CompCpy offloads across a Topology. */
class ShardDispatcher
{
  public:
    /** place() result meaning "run this op on the CPU path". */
    static constexpr unsigned kCpuPath = ~0u;

    explicit ShardDispatcher(Topology &topo,
                             const DispatcherConfig &config = {});

    ShardDispatcher(const ShardDispatcher &) = delete;
    ShardDispatcher &operator=(const ShardDispatcher &) = delete;

    Topology &topology() { return topo_; }
    unsigned slotCount() const { return topo_.slotCount(); }

    /** Hash-affinity home slot of @p flow (ignores load/health). */
    unsigned homeSlot(std::uint64_t flow) const;

    /**
     * Slot for @p flow's next op. A pinned flow keeps its slot (the
     * ordered-fence guarantee); a fresh flow lands on its home slot
     * unless that is saturated or degraded, in which case it sheds to
     * the least-loaded healthy sibling. @return kCpuPath — never
     * pinned, so the flow retries the DIMMs next op — when every
     * queue is saturated or every device degraded.
     *
     * With far (CXL) slots in the topology the placement is tiered:
     * every call records a touch with the heat classifier, hot flows
     * home on the local tier and cold flows on the far tier, and a
     * pinned flow whose tier no longer matches its heat migrates —
     * repinned on the other tier with a migration counted. A
     * saturated tier sheds to the other tier before falling back to
     * kCpuPath. Without far slots the behaviour is exactly the
     * untiered policy above.
     */
    unsigned place(std::uint64_t flow);

    /** Forget @p flow's pin (idle flows should release so a shed flow
     *  can migrate home once pressure clears). */
    void releaseFlow(std::uint64_t flow);

    /** The pinned slot of @p flow, or nullopt when unpinned. */
    std::optional<unsigned> pinnedSlot(std::uint64_t flow) const;

    compcpy::WorkQueue &queue(unsigned slot) { return queues_[slot]; }
    Topology::Slot &slot(unsigned s) { return topo_.slot(s); }

    /**
     * Submit @p desc to @p slot's queue, observing the completion for
     * the degraded-slot tracker before forwarding it to @p on_done.
     */
    std::optional<std::uint64_t>
    submit(unsigned slot, const compcpy::Descriptor &desc,
           std::uint16_t submitter = 0,
           compcpy::WorkQueue::CompletionCallback on_done = nullptr);

    /** Feed the degraded-slot tracker (for callers that submit to the
     *  queues directly): failures accumulate, success clears. */
    void noteCompletion(unsigned slot, compcpy::CompletionStatus status);

    void setDegraded(unsigned slot, bool degraded);
    bool degraded(unsigned slot) const { return degraded_[slot]; }

    // ----- striping ---------------------------------------------------------

    /** One chunk record of a striped message. */
    struct StripeChunk
    {
        unsigned slot = 0;
        compcpy::CompCpyParams params;
    };

    /** A striped message: independent chunk records + buffer geometry. */
    struct StripePlan
    {
        std::vector<StripeChunk> chunks;
        std::size_t total_bytes = 0;
        std::size_t chunk_bytes = 0; ///< all but the last chunk
    };

    /**
     * Split one logical message (@p base carries size, key, iv, base
     * message_id, ulp, ordered; its sbuf/dbuf are ignored) into chunk
     * records round-robined across the slots starting at @p flow's
     * home — or all onto @p force_slot when >= 0, which is how the
     * bit-exactness tests build the single-DIMM reference with
     * identical chunking. Chunk sbuf/dbuf are allocated on the owning
     * slot's driver; the caller stages payload bytes into the chunk
     * sbufs (writeSync + flushSync) before submitStripe().
     */
    StripePlan planStripe(const compcpy::CompCpyParams &base,
                          std::uint64_t flow, int force_slot = -1);

    /**
     * Pack each slot's chunks into one batch descriptor, submit them
     * all (submitForce: a striped message is already admitted — the
     * fan-in must not be half-dropped), and invoke @p done once with
     * the worst per-slot status when the last slot's batch completes.
     */
    void submitStripe(const StripePlan &plan,
                      std::function<void(compcpy::CompletionStatus)> done,
                      std::uint16_t submitter = 0);

    /** useSync + readResult of every chunk destination, concatenated
     *  in chunk order (full destination pages per chunk). */
    std::vector<std::uint8_t> readStripeResult(const StripePlan &plan);

    /** Return every chunk buffer to its slot's driver. */
    void releaseStripe(const StripePlan &plan);

    const DispatchStats &stats() const { return stats_; }
    const DispatcherConfig &config() const { return config_; }

    /** Register "dispatch" plus one "queue.chN.dM" provider per slot
     *  ("queue" at 1x1). The registry must not outlive this object. */
    void registerStats(trace::StatsRegistry &registry) const;

    /** Heat-classifier view (two-tier policy introspection). */
    const HeatClassifier &heat() const { return heat_; }

  private:
    unsigned leastLoadedHealthy() const;
    /** leastLoadedHealthy() restricted to @p slots. */
    unsigned
    leastLoadedHealthyIn(const std::vector<unsigned> &slots) const;
    /** Tier-aware fresh placement of @p flow (pins on success). */
    unsigned placeTiered(std::uint64_t flow, bool hot);
    /** Home-or-shed within one tier; kCpuPath when saturated. */
    unsigned placeIn(std::uint64_t flow,
                     const std::vector<unsigned> &tier);

    Topology &topo_;
    DispatcherConfig config_;
    std::deque<compcpy::WorkQueue> queues_; ///< one per slot, stable refs
    std::vector<bool> degraded_;
    std::vector<unsigned> failure_streak_; ///< consecutive bad records
    std::vector<unsigned> local_slots_; ///< slots on local channels
    std::vector<unsigned> far_slots_;   ///< slots behind CXL links
    std::unordered_map<std::uint64_t, unsigned> pins_;
    HeatClassifier heat_;
    DispatchStats stats_;
};

} // namespace sd::topo

#endif // SD_TOPO_DISPATCHER_H
