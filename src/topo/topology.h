/**
 * @file
 * The explicit machine topology: N DDR4 channels x M SmartDIMM buffer
 * devices per channel behind one LLC, with per-device scratchpads,
 * cuckoo translation tables, config memories, MMIO windows, driver
 * address ranges and CompCpy engines. This factory replaces the
 * implicit single-instance MemorySystem/BufferDevice wiring: every
 * rig — benches, examples, the open-loop server model — builds its
 * system through a Topology, and tools/sdlint.py bans direct
 * construction elsewhere in src/.
 *
 * Address scheme (ChannelInterleave::kCapacity): channel c owns the
 * contiguous window [c * channel_bytes, +channel_bytes), and DIMM d
 * within it owns [base + d * dimmBytes(), +dimmBytes()). Contiguous
 * per-device windows are what makes near-memory ULP offload work at
 * all: a CompCpy's source and destination pages must live wholly on
 * one buffer device, since that device's DSA sees only its own
 * channel traffic. Line/page interleave would shred a record across
 * devices. At 1x1 the scheme degenerates to the legacy kNone layout
 * bit-for-bit, so existing golden traces are unaffected.
 */

#ifndef SD_TOPO_TOPOLOGY_H
#define SD_TOPO_TOPOLOGY_H

#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cache/memory_system.h"
#include "compcpy/compcpy.h"
#include "compcpy/driver.h"
#include "mem/cxl_link.h"
#include "mem/dimm_mux.h"
#include "smartdimm/buffer_device.h"

namespace sd::topo {

/** Everything needed to instantiate a Topology. */
struct TopologySpec
{
    unsigned channels = 1;
    unsigned dimms_per_channel = 1;

    /**
     * CXL.mem far-memory channels appended *after* the local channels
     * (so channel indices >= channels are far). Each far channel gets
     * the same DIMM population as a local one plus a CxlLink every
     * DRAM-side access defers through; its work queues complete via
     * the withheld-response protocol instead of host polling.
     */
    unsigned cxl_channels = 0;
    mem::CxlLinkConfig cxl_link{};

    /** Per-channel DRAM shape; channels/dimms above override its
     *  channel/dimm fields at construction. */
    mem::DramGeometry geometry{};
    mem::DramTiming timing{};
    mem::ControllerConfig controller{};
    cache::CacheConfig llc{};
    cache::HostLatencies latencies{};

    /** Per-device config. mmio_base/driver window are *slot-local*
     *  offsets; the factory rebases them into each device's window. */
    smartdimm::SmartDimmConfig device{};
    Addr driver_base = 1ULL << 20;
    std::size_t driver_bytes = 2048ULL << 20;

    /**
     * Parse a "CxD" topology string ("1x1", "4x2"). Also accepts a
     * bare channel count ("4" == "4x1"). @return nullopt on
     * malformed input or zero counts.
     */
    static std::optional<TopologySpec> parse(const std::string &text);

    /**
     * Parse the SD_CXL far-tier grammar "N[@ns[@gbps]]" — far channel
     * count, optional link round-trip latency in ns and link rate in
     * GB/s ("1@600@32"). Applied onto @p base. @return nullopt on
     * malformed input.
     */
    static std::optional<TopologySpec>
    parseCxl(const std::string &text, const TopologySpec &base);

    /**
     * The SD_TOPOLOGY / SD_CXL env knobs: parse($SD_TOPOLOGY) and
     * parseCxl($SD_CXL) when set (an invalid value aborts loudly
     * rather than silently running the wrong machine), @p fallback
     * otherwise.
     */
    static TopologySpec fromEnv(const TopologySpec &fallback);
    static TopologySpec fromEnv() { return fromEnv(TopologySpec{}); }

    /** Local + far channels. */
    unsigned totalChannels() const { return channels + cxl_channels; }
};

/** The instantiated machine. Owns every component; non-movable. */
class Topology
{
  public:
    /** One buffer device plus its host-side driver/engine stack. */
    struct Slot
    {
        unsigned channel = 0;
        unsigned dimm = 0;
        Addr base = 0; ///< first byte of this device's address window
        smartdimm::BufferDevice &device;
        compcpy::Driver driver;
        compcpy::CompCpyEngine::SharedState shared;
        compcpy::CompCpyEngine engine;

        Slot(unsigned ch, unsigned d, Addr base_addr,
             smartdimm::BufferDevice &dev, cache::MemorySystem &memory,
             Addr drv_base, std::size_t drv_bytes)
            : channel(ch), dimm(d), base(base_addr), device(dev),
              // dev.config() carries the rebased (global) mmio_base,
              // so driver.mmio() addresses land in this slot's window.
              driver(drv_base, drv_bytes, dev.config()),
              engine(memory, driver, shared)
        {
        }
    };

    explicit Topology(const TopologySpec &spec = {});

    Topology(const Topology &) = delete;
    Topology &operator=(const Topology &) = delete;

    unsigned channels() const { return geometry_.channels; }
    unsigned dimmsPerChannel() const { return geometry_.dimms_per_channel; }
    unsigned slotCount() const { return static_cast<unsigned>(slots_.size()); }

    /** Channels without a CXL link in front (indices 0..N-1). */
    unsigned localChannels() const { return spec_.channels; }

    /** @return true when @p channel sits behind a CXL.mem link. */
    bool
    isFarChannel(unsigned channel) const
    {
        return channel >= spec_.channels;
    }

    /** @return true when slot @p flat lives on a far channel. */
    bool
    isFarSlot(unsigned flat) const
    {
        return isFarChannel(slots_[flat].channel);
    }

    /** The link serving @p channel, or null for a local channel. */
    mem::CxlLink *
    cxlLink(unsigned channel)
    {
        return memory_->cxlLink(channel);
    }

    EventQueue &events() { return events_; }
    cache::MemorySystem &memory() { return *memory_; }
    mem::BackingStore &store() { return store_; }
    const mem::AddressMap &addressMap() const { return map_; }
    const mem::DramGeometry &geometry() const { return geometry_; }
    const TopologySpec &spec() const { return spec_; }

    /** Flat slot index (channel-major). */
    unsigned
    slotIndex(unsigned channel, unsigned dimm) const
    {
        return channel * geometry_.dimms_per_channel + dimm;
    }

    Slot &slot(unsigned flat) { return slots_[flat]; }
    const Slot &slot(unsigned flat) const { return slots_[flat]; }
    Slot &slot(unsigned ch, unsigned d) { return slots_[slotIndex(ch, d)]; }

    smartdimm::BufferDevice &
    device(unsigned ch, unsigned d)
    {
        return slots_[slotIndex(ch, d)].device;
    }

    /** First byte of slot (ch, d)'s contiguous address window. */
    Addr
    slotBase(unsigned ch, unsigned d) const
    {
        return static_cast<Addr>(ch) * geometry_.channel_bytes +
               static_cast<Addr>(d) * geometry_.dimmBytes();
    }

    /**
     * Attach a fault plan to every component: channel controllers
     * (self-scoped as mem[ch]), buffer devices and engines (scoped as
     * smartdimm[ch][dimm]).
     */
    void setFaultPlan(fault::FaultPlan *plan);

    /**
     * Register every component under per-device names: "llc",
     * "mc.chN" (via MemorySystem), "smartdimm.chN.dM" and
     * "compcpy.chN.dM" per slot, plus "cxl.chN" per far-channel link
     * — no key ever aggregates two devices. The registry must not
     * outlive the topology.
     */
    void registerStats(trace::StatsRegistry &registry) const;

  private:
    TopologySpec spec_;
    EventQueue events_;
    mem::DramGeometry geometry_;
    mem::AddressMap map_;
    mem::BackingStore store_;
    /** deque: BufferDevice references must stay stable. */
    std::deque<smartdimm::BufferDevice> devices_;
    std::deque<mem::DimmMux> muxes_; ///< one per channel when M > 1
    std::deque<mem::CxlLink> links_; ///< one per far channel
    std::unique_ptr<cache::MemorySystem> memory_;
    std::deque<Slot> slots_;
};

} // namespace sd::topo

#endif // SD_TOPO_TOPOLOGY_H
