/**
 * @file
 * Fast common-prefix (match-length) primitive shared by the LZ77
 * hash-chain matcher and the hardware deflate model's lane extension.
 * Word-at-a-time compare with a byte tail — bit-identical to the
 * byte loop it replaces, so token streams (and therefore compressed
 * bytes, simulated cycles and golden traces) are unchanged.
 */

#ifndef SD_KERNELS_MATCH_H
#define SD_KERNELS_MATCH_H

#include <cstddef>
#include <cstdint>
#include <cstring>

namespace sd::kernels {

/**
 * Length of the common prefix of @p a and @p b, capped at @p limit.
 * Both pointers must have @p limit readable bytes.
 */
inline std::size_t
matchLen(const std::uint8_t *a, const std::uint8_t *b, std::size_t limit)
{
    std::size_t n = 0;
    while (n + 8 <= limit) {
        std::uint64_t wa;
        std::uint64_t wb;
        std::memcpy(&wa, a + n, 8);
        std::memcpy(&wb, b + n, 8);
        const std::uint64_t diff = wa ^ wb;
        if (diff != 0) {
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_BIG_ENDIAN__
            return n + static_cast<std::size_t>(
                           __builtin_clzll(diff) >> 3);
#else
            return n + static_cast<std::size_t>(
                           __builtin_ctzll(diff) >> 3);
#endif
        }
        n += 8;
    }
    while (n < limit && a[n] == b[n])
        ++n;
    return n;
}

} // namespace sd::kernels

#endif // SD_KERNELS_MATCH_H
