/**
 * @file
 * GF(2^128) multiplication kernels for GHASH (NIST SP 800-38D bit
 * order). Three tiers behind one interface:
 *
 *  - scalar: the original 128-iteration bit-serial shift/xor loop
 *    (moved here verbatim from crypto/ghash.cc; the reference).
 *  - table:  Shoup table-driven multiplication — a per-key 8-bit
 *    table (256 x 16 B) for the hot multiply-by-H, and a per-call
 *    4-bit table for general a*b (powers of H, positional folds).
 *  - native: PCLMULQDQ carry-less multiply (see native_x86.cc).
 *
 * The kernel layer works on raw 64-bit halves so it has no dependency
 * on the crypto layer; crypto::Gf128 converts trivially.
 */

#ifndef SD_KERNELS_GHASH_KERNEL_H
#define SD_KERNELS_GHASH_KERNEL_H

#include <cstddef>
#include <cstdint>
#include <vector>

#include "kernels/dispatch.h"

namespace sd::kernels {

/** A 128-bit GCM field element: hi = big-endian bytes 0..7. */
struct Block128
{
    std::uint64_t hi = 0;
    std::uint64_t lo = 0;

    bool operator==(const Block128 &) const = default;

    Block128
    operator^(const Block128 &o) const
    {
        return Block128{hi ^ o.hi, lo ^ o.lo};
    }
};

/**
 * Per-key GHASH state: the hash subkey H plus whatever precomputation
 * the bound tier wants (the Shoup 8-bit table for kTable; the native
 * and scalar tiers need only H). The tier is captured at init time so
 * an object stays self-consistent even if the dispatch override moves
 * underneath it.
 */
struct GhashKey
{
    KernelTier tier = KernelTier::kScalar;
    Block128 h;
    /**
     * Shoup 8-bit tables for the table tier: 4 x 256 entries, where
     * mul8[256*p + b] = b * H^(p+1). The first 256 entries (H^1) serve
     * the streaming multiply; the higher powers feed the 4-block
     * aggregated fold in ghashFold().
     */
    std::vector<Block128> mul8;
};

/** Bind @p h under the currently active (or forced) tier. */
GhashKey ghashKeyInit(const Block128 &h);

/** Reference bit-serial multiply — the always-available oracle. */
Block128 gfMulScalar(const Block128 &a, const Block128 &b);

/**
 * Multiply @p x by the key's hash subkey H using the key's tier.
 * This is the streaming-GHASH hot path (one call per 16-byte block).
 */
Block128 gfMulByH(const GhashKey &key, const Block128 &x);

/**
 * General multiply a*b on @p tier. Used for the powers-of-H chain and
 * the positional (out-of-order) folds where the multiplicand varies.
 */
Block128 gfMulVia(KernelTier tier, const Block128 &a, const Block128 &b);

/**
 * Streaming fold of @p nblocks contiguous full 16-byte blocks into
 * digest @p y; returns the new digest. Bit-identical to nblocks calls
 * of gfMulByH(key, y ^ load(block)), but the table tier uses 4-block
 * aggregated reduction — Y_{i+4} = (Y_i ^ X_0)*H^4 ^ X_1*H^3 ^
 * X_2*H^2 ^ X_3*H — so the four Shoup Horner chains run in parallel
 * instead of serialising on one dependency chain.
 */
Block128 ghashFold(const GhashKey &key, Block128 y,
                   const std::uint8_t *blocks, std::size_t nblocks);

namespace detail {

/** Table-tier general multiply (per-call Shoup 4-bit table). */
Block128 gfMulTable4(const Block128 &a, const Block128 &b);

/** Native (PCLMULQDQ) general multiply; only call when
 *  nativeSupported(). Defined in native_x86.cc. */
Block128 gfMulClmul(const Block128 &a, const Block128 &b);

} // namespace detail

} // namespace sd::kernels

#endif // SD_KERNELS_GHASH_KERNEL_H
