/**
 * @file
 * Native x86 kernels: AES-NI block encryption with 8-block CTR
 * pipelining and PCLMULQDQ carry-less GF(2^128) multiplication.
 *
 * Compiled into every build via per-function target attributes (no
 * -march flags needed); the dispatcher only routes here when
 * __builtin_cpu_supports() reports AES/PCLMUL/SSSE3 at runtime. On
 * non-x86 targets the functions compile to panic stubs — the
 * dispatcher never selects the native tier there.
 *
 * The PCLMUL path works in the *standard* polynomial domain: GCM's
 * reflected bit order is undone by reversing the bits within each
 * byte (two PSHUFB nibble lookups), after which the product reduces
 * modulo x^128 + x^7 + x^2 + x + 1 with the usual two-step fold.
 * This costs a few shuffles per operand but keeps the reduction
 * straightforward; parity with the bit-serial reference is enforced
 * by the kernel parity suite.
 */

#include <cstring>

#include "common/log.h"
#include "kernels/aes_kernel.h"
#include "kernels/ghash_kernel.h"

#if defined(__x86_64__) || defined(__i386__)
#define SD_KERNELS_X86 1
#include <immintrin.h>
#endif

namespace sd::kernels {

#if SD_KERNELS_X86

bool
nativeSupported()
{
    static const bool ok = __builtin_cpu_supports("aes") &&
                           __builtin_cpu_supports("pclmul") &&
                           __builtin_cpu_supports("ssse3") &&
                           __builtin_cpu_supports("sse2");
    return ok;
}

namespace {

#define SD_TARGET_AES __attribute__((target("aes,sse2")))
#define SD_TARGET_CLMUL __attribute__((target("pclmul,ssse3,sse2")))

/** Encrypt one loaded state with the whole round-key schedule. */
SD_TARGET_AES inline __m128i
aesniEncrypt1(__m128i state, const __m128i *rk, int rounds)
{
    state = _mm_xor_si128(state, rk[0]);
    for (int r = 1; r < rounds; ++r)
        state = _mm_aesenc_si128(state, rk[r]);
    return _mm_aesenclast_si128(state, rk[rounds]);
}

/** Build the GCM counter block iv || be32(ctr). */
inline void
buildCtrBlock(const std::uint8_t iv12[12], std::uint32_t ctr,
              std::uint8_t out[16])
{
    std::memcpy(out, iv12, 12);
    out[12] = static_cast<std::uint8_t>(ctr >> 24);
    out[13] = static_cast<std::uint8_t>(ctr >> 16);
    out[14] = static_cast<std::uint8_t>(ctr >> 8);
    out[15] = static_cast<std::uint8_t>(ctr);
}

/** Reverse the bit order within each byte of @p v. */
SD_TARGET_CLMUL inline __m128i
revBitsInBytes(__m128i v)
{
    const __m128i low_mask = _mm_set1_epi8(0x0f);
    const __m128i nib_rev =
        _mm_setr_epi8(0x0, 0x8, 0x4, 0xc, 0x2, 0xa, 0x6, 0xe,
                      0x1, 0x9, 0x5, 0xd, 0x3, 0xb, 0x7, 0xf);
    const __m128i lo = _mm_and_si128(v, low_mask);
    const __m128i hi =
        _mm_and_si128(_mm_srli_epi16(v, 4), low_mask);
    // LUT values are <= 0x0f, so the 16-bit-lane shift cannot bleed
    // set bits across byte boundaries.
    return _mm_or_si128(
        _mm_slli_epi16(_mm_shuffle_epi8(nib_rev, lo), 4),
        _mm_shuffle_epi8(nib_rev, hi));
}

/** GCM field element -> standard-domain polynomial register. */
SD_TARGET_CLMUL inline __m128i
toPoly(const Block128 &v)
{
    // Byte 0 of the GCM encoding is the most significant byte of hi;
    // loading it as the least significant register byte plus an
    // in-byte bit reversal puts coefficient x^i at register bit i.
    const __m128i raw = _mm_set_epi64x(
        static_cast<long long>(__builtin_bswap64(v.lo)),
        static_cast<long long>(__builtin_bswap64(v.hi)));
    return revBitsInBytes(raw);
}

SD_TARGET_CLMUL inline Block128
fromPoly(__m128i p)
{
    const __m128i raw = revBitsInBytes(p);
    alignas(16) std::uint64_t w[2];
    _mm_store_si128(reinterpret_cast<__m128i *>(w), raw);
    return Block128{__builtin_bswap64(w[0]), __builtin_bswap64(w[1])};
}

} // namespace

SD_TARGET_AES void
detail::aesEncryptNi(const AesKey &key, const std::uint8_t in[16],
                     std::uint8_t out[16])
{
    __m128i rk[15] = {};
    for (int r = 0; r <= key.rounds; ++r)
        rk[r] = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(key.rk.data() + 16 * r));
    const __m128i state = _mm_loadu_si128(
        reinterpret_cast<const __m128i *>(in));
    _mm_storeu_si128(reinterpret_cast<__m128i *>(out),
                     aesniEncrypt1(state, rk, key.rounds));
}

SD_TARGET_AES void
detail::aesCtrKeystreamNi(const AesKey &key, const std::uint8_t iv12[12],
                          std::uint32_t first_ctr, std::size_t nblocks,
                          std::uint8_t *out)
{
    __m128i rk[15] = {};
    for (int r = 0; r <= key.rounds; ++r)
        rk[r] = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(key.rk.data() + 16 * r));

    // 8 independent counter blocks per step keep the aesenc pipeline
    // full (latency ~4 cycles, throughput 1-2/cycle on current cores).
    std::size_t i = 0;
    while (i + 8 <= nblocks) {
        __m128i s[8];
        for (int j = 0; j < 8; ++j) {
            std::uint8_t block[16];
            buildCtrBlock(
                iv12,
                first_ctr + static_cast<std::uint32_t>(i + static_cast<std::size_t>(j)),
                block);
            s[j] = _mm_xor_si128(
                _mm_loadu_si128(reinterpret_cast<const __m128i *>(block)),
                rk[0]);
        }
        for (int r = 1; r < key.rounds; ++r)
            for (int j = 0; j < 8; ++j)
                s[j] = _mm_aesenc_si128(s[j], rk[r]);
        for (int j = 0; j < 8; ++j) {
            s[j] = _mm_aesenclast_si128(s[j], rk[key.rounds]);
            _mm_storeu_si128(
                reinterpret_cast<__m128i *>(out + (i + static_cast<std::size_t>(j)) * 16),
                s[j]);
        }
        i += 8;
    }
    for (; i < nblocks; ++i) {
        std::uint8_t block[16];
        buildCtrBlock(iv12, first_ctr + static_cast<std::uint32_t>(i),
                      block);
        const __m128i state = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(block));
        _mm_storeu_si128(reinterpret_cast<__m128i *>(out + i * 16),
                         aesniEncrypt1(state, rk, key.rounds));
    }
}

SD_TARGET_CLMUL Block128
detail::gfMulClmul(const Block128 &a, const Block128 &b)
{
    const __m128i pa = toPoly(a);
    const __m128i pb = toPoly(b);

    // Schoolbook 128x128 -> 255-bit carry-less product.
    const __m128i lo = _mm_clmulepi64_si128(pa, pb, 0x00);
    const __m128i hi = _mm_clmulepi64_si128(pa, pb, 0x11);
    const __m128i mid = _mm_xor_si128(
        _mm_clmulepi64_si128(pa, pb, 0x10),
        _mm_clmulepi64_si128(pa, pb, 0x01));
    const __m128i plo =
        _mm_xor_si128(lo, _mm_slli_si128(mid, 8));
    const __m128i phi =
        _mm_xor_si128(hi, _mm_srli_si128(mid, 8));

    // Reduce modulo x^128 + x^7 + x^2 + x + 1: fold phi down with
    // ghat = x^7 + x^2 + x + 1 (0x87), twice for the <=7-bit spill.
    const __m128i ghat = _mm_set_epi64x(0, 0x87);
    const __m128i f0 = _mm_clmulepi64_si128(phi, ghat, 0x00);
    const __m128i f1 = _mm_clmulepi64_si128(phi, ghat, 0x01);
    __m128i res = _mm_xor_si128(plo, f0);
    res = _mm_xor_si128(res, _mm_slli_si128(f1, 8));
    const __m128i spill = _mm_srli_si128(f1, 8);
    res = _mm_xor_si128(res,
                        _mm_clmulepi64_si128(spill, ghat, 0x00));
    return fromPoly(res);
}

#else // !SD_KERNELS_X86

bool
nativeSupported()
{
    return false;
}

void
detail::aesEncryptNi(const AesKey &, const std::uint8_t *, std::uint8_t *)
{
    SD_PANIC("native AES kernel selected on a non-x86 build");
}

void
detail::aesCtrKeystreamNi(const AesKey &, const std::uint8_t *,
                          std::uint32_t, std::size_t, std::uint8_t *)
{
    SD_PANIC("native AES kernel selected on a non-x86 build");
}

Block128
detail::gfMulClmul(const Block128 &, const Block128 &)
{
    SD_PANIC("native GHASH kernel selected on a non-x86 build");
}

#endif // SD_KERNELS_X86

} // namespace sd::kernels
