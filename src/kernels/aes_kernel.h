/**
 * @file
 * AES block-encryption kernels (FIPS-197 forward cipher only — GCM
 * never decrypts blocks). Tiers:
 *
 *  - scalar: the original byte-wise S-box implementation (moved here
 *    verbatim from crypto/aes.cc; the reference).
 *  - table:  T-table AES — four 256-entry u32 tables combining
 *    SubBytes/ShiftRows/MixColumns, generated once at startup from
 *    the S-box.
 *  - native: AES-NI with 8-block pipelining (see native_x86.cc).
 *
 * Key expansion is byte-wise scalar code shared by every tier (it
 * runs once per key). The expanded key captures its tier at init so
 * keys created under a forced tier stay self-consistent.
 */

#ifndef SD_KERNELS_AES_KERNEL_H
#define SD_KERNELS_AES_KERNEL_H

#include <array>
#include <cstddef>
#include <cstdint>

#include "kernels/dispatch.h"

namespace sd::kernels {

/** AES block size in bytes. */
inline constexpr std::size_t kAesBlockBytes = 16;

/** Expanded AES key bound to a kernel tier. */
struct AesKey
{
    KernelTier tier = KernelTier::kScalar;
    int rounds = 0; ///< 10 for AES-128, 14 for AES-256
    /** Round keys, (rounds + 1) * 16 bytes, FIPS-197 layout. */
    alignas(16) std::array<std::uint8_t, 240> rk{};
};

/**
 * Expand @p key (@p key_bytes = 16 or 32) under the currently active
 * (or forced) tier.
 */
AesKey aesKeyInit(const std::uint8_t *key, std::size_t key_bytes);

/** Encrypt one 16-byte block (in == out allowed). */
void aesEncryptBlock(const AesKey &key, const std::uint8_t in[16],
                     std::uint8_t out[16]);

/**
 * Batched CTR keystream: fill @p out with @p nblocks 16-byte
 * keystream blocks for counter blocks iv || be32(first_ctr + i),
 * i = 0..nblocks-1 (the GCM J0 layout with a 96-bit IV). Kernels
 * pipeline 4–8 blocks per inner step, so callers should hand over as
 * many blocks as they have (a 64-byte cacheline = 4, a full software
 * record = hundreds) instead of looping one block at a time.
 */
void aesCtrKeystream(const AesKey &key, const std::uint8_t iv12[12],
                     std::uint32_t first_ctr, std::size_t nblocks,
                     std::uint8_t *out);

/** The FIPS-197 S-box (shared with table generation and tests). */
const std::uint8_t *aesSbox();

namespace detail {

/** Reference byte-wise single-block encrypt (always compiled). */
void aesEncryptScalar(const AesKey &key, const std::uint8_t in[16],
                      std::uint8_t out[16]);

/** T-table single-block encrypt. */
void aesEncryptTable(const AesKey &key, const std::uint8_t in[16],
                     std::uint8_t out[16]);

/** AES-NI block encrypt; only call when nativeSupported(). */
void aesEncryptNi(const AesKey &key, const std::uint8_t in[16],
                  std::uint8_t out[16]);

/** AES-NI batched CTR; only call when nativeSupported(). */
void aesCtrKeystreamNi(const AesKey &key, const std::uint8_t iv12[12],
                       std::uint32_t first_ctr, std::size_t nblocks,
                       std::uint8_t *out);

} // namespace detail

} // namespace sd::kernels

#endif // SD_KERNELS_AES_KERNEL_H
