#include "kernels/aes_kernel.h"

#include <cstring>

#include "common/log.h"

namespace sd::kernels {

namespace {

/** FIPS-197 S-box. */
constexpr std::uint8_t kSbox[256] = {
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5,
    0x30, 0x01, 0x67, 0x2b, 0xfe, 0xd7, 0xab, 0x76,
    0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0,
    0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0,
    0xb7, 0xfd, 0x93, 0x26, 0x36, 0x3f, 0xf7, 0xcc,
    0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
    0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a,
    0x07, 0x12, 0x80, 0xe2, 0xeb, 0x27, 0xb2, 0x75,
    0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0,
    0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84,
    0x53, 0xd1, 0x00, 0xed, 0x20, 0xfc, 0xb1, 0x5b,
    0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
    0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85,
    0x45, 0xf9, 0x02, 0x7f, 0x50, 0x3c, 0x9f, 0xa8,
    0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5,
    0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2,
    0xcd, 0x0c, 0x13, 0xec, 0x5f, 0x97, 0x44, 0x17,
    0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
    0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88,
    0x46, 0xee, 0xb8, 0x14, 0xde, 0x5e, 0x0b, 0xdb,
    0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c,
    0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79,
    0xe7, 0xc8, 0x37, 0x6d, 0x8d, 0xd5, 0x4e, 0xa9,
    0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
    0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6,
    0xe8, 0xdd, 0x74, 0x1f, 0x4b, 0xbd, 0x8b, 0x8a,
    0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e,
    0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e,
    0xe1, 0xf8, 0x98, 0x11, 0x69, 0xd9, 0x8e, 0x94,
    0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68,
    0x41, 0x99, 0x2d, 0x0f, 0xb0, 0x54, 0xbb, 0x16,
};

/** Round constants for key expansion. */
constexpr std::uint8_t kRcon[15] = {
    0x00, 0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40,
    0x80, 0x1b, 0x36, 0x6c, 0xd8, 0xab, 0x4d,
};

/** Multiply by x in GF(2^8) mod x^8+x^4+x^3+x+1. */
inline std::uint8_t
xtime(std::uint8_t a)
{
    return static_cast<std::uint8_t>((a << 1) ^ ((a >> 7) * 0x1b));
}

inline void
subBytes(std::uint8_t s[16])
{
    for (int i = 0; i < 16; ++i)
        s[i] = kSbox[s[i]];
}

inline void
shiftRows(std::uint8_t s[16])
{
    // State is column-major: s[4*c + r].
    std::uint8_t t[16];
    for (int c = 0; c < 4; ++c)
        for (int r = 0; r < 4; ++r)
            t[4 * c + r] = s[4 * ((c + r) & 3) + r];
    std::memcpy(s, t, 16);
}

inline void
mixColumns(std::uint8_t s[16])
{
    for (int c = 0; c < 4; ++c) {
        std::uint8_t *col = s + 4 * c;
        const std::uint8_t a0 = col[0], a1 = col[1];
        const std::uint8_t a2 = col[2], a3 = col[3];
        const std::uint8_t x = a0 ^ a1 ^ a2 ^ a3;
        col[0] = static_cast<std::uint8_t>(a0 ^ x ^ xtime(a0 ^ a1));
        col[1] = static_cast<std::uint8_t>(a1 ^ x ^ xtime(a1 ^ a2));
        col[2] = static_cast<std::uint8_t>(a2 ^ x ^ xtime(a2 ^ a3));
        col[3] = static_cast<std::uint8_t>(a3 ^ x ^ xtime(a3 ^ a0));
    }
}

inline void
addRoundKey(std::uint8_t s[16], const std::uint8_t rk[16])
{
    for (int i = 0; i < 16; ++i)
        s[i] ^= rk[i];
}

/**
 * T-tables for the merged SubBytes+ShiftRows+MixColumns round, in
 * little-endian column words (byte 0 of the word = state row 0).
 * T[r][x] is the contribution of row-r input byte x to its output
 * column; T[r] is T[0] rotated left by 8*r bits.
 */
struct AesTables
{
    std::uint32_t t[4][256];
};

const AesTables &
aesTablesOnce()
{
    static const AesTables tables = [] {
        AesTables tb;
        for (unsigned x = 0; x < 256; ++x) {
            const std::uint32_t s = kSbox[x];
            const std::uint32_t s2 = xtime(static_cast<std::uint8_t>(s));
            const std::uint32_t s3 = s2 ^ s;
            const std::uint32_t w =
                s2 | (s << 8) | (s << 16) | (s3 << 24);
            tb.t[0][x] = w;
            tb.t[1][x] = (w << 8) | (w >> 24);
            tb.t[2][x] = (w << 16) | (w >> 16);
            tb.t[3][x] = (w << 24) | (w >> 8);
        }
        return tb;
    }();
    return tables;
}

/** Little-endian 32-bit load (column word / round-key word). */
inline std::uint32_t
le32(const std::uint8_t *p)
{
    return static_cast<std::uint32_t>(p[0]) |
           (static_cast<std::uint32_t>(p[1]) << 8) |
           (static_cast<std::uint32_t>(p[2]) << 16) |
           (static_cast<std::uint32_t>(p[3]) << 24);
}

inline void
store32le(std::uint8_t *p, std::uint32_t v)
{
    p[0] = static_cast<std::uint8_t>(v);
    p[1] = static_cast<std::uint8_t>(v >> 8);
    p[2] = static_cast<std::uint8_t>(v >> 16);
    p[3] = static_cast<std::uint8_t>(v >> 24);
}

/** Build the GCM counter block iv || be32(ctr). */
inline void
buildCtrBlock(const std::uint8_t iv12[12], std::uint32_t ctr,
              std::uint8_t out[16])
{
    std::memcpy(out, iv12, 12);
    out[12] = static_cast<std::uint8_t>(ctr >> 24);
    out[13] = static_cast<std::uint8_t>(ctr >> 16);
    out[14] = static_cast<std::uint8_t>(ctr >> 8);
    out[15] = static_cast<std::uint8_t>(ctr);
}

/**
 * T-table CTR: encrypt @p N interleaved counter blocks sharing the IV
 * words @p w0..w2; @p ctr_le[j] is the little-endian column word of
 * counter j (bswap of the 32-bit big-endian counter). Interleaving two
 * blocks doubles the independent load chains per round, hiding L1
 * latency the single-block path serialises on.
 */
template <int N>
inline void
aesCtrTableN(const AesTables &tb, const AesKey &key, std::uint32_t w0,
             std::uint32_t w1, std::uint32_t w2,
             const std::uint32_t ctr_le[N], std::uint8_t *out)
{
    const std::uint8_t *rk = key.rk.data();
    std::uint32_t s0[N];
    std::uint32_t s1[N];
    std::uint32_t s2[N];
    std::uint32_t s3[N];
    for (int j = 0; j < N; ++j) {
        s0[j] = w0 ^ le32(rk + 0);
        s1[j] = w1 ^ le32(rk + 4);
        s2[j] = w2 ^ le32(rk + 8);
        s3[j] = ctr_le[j] ^ le32(rk + 12);
    }
    for (int round = 1; round < key.rounds; ++round) {
        rk += 16;
        for (int j = 0; j < N; ++j) {
            const std::uint32_t t0 = tb.t[0][s0[j] & 0xff] ^
                                     tb.t[1][(s1[j] >> 8) & 0xff] ^
                                     tb.t[2][(s2[j] >> 16) & 0xff] ^
                                     tb.t[3][s3[j] >> 24] ^ le32(rk + 0);
            const std::uint32_t t1 = tb.t[0][s1[j] & 0xff] ^
                                     tb.t[1][(s2[j] >> 8) & 0xff] ^
                                     tb.t[2][(s3[j] >> 16) & 0xff] ^
                                     tb.t[3][s0[j] >> 24] ^ le32(rk + 4);
            const std::uint32_t t2 = tb.t[0][s2[j] & 0xff] ^
                                     tb.t[1][(s3[j] >> 8) & 0xff] ^
                                     tb.t[2][(s0[j] >> 16) & 0xff] ^
                                     tb.t[3][s1[j] >> 24] ^ le32(rk + 8);
            const std::uint32_t t3 = tb.t[0][s3[j] & 0xff] ^
                                     tb.t[1][(s0[j] >> 8) & 0xff] ^
                                     tb.t[2][(s1[j] >> 16) & 0xff] ^
                                     tb.t[3][s2[j] >> 24] ^ le32(rk + 12);
            s0[j] = t0;
            s1[j] = t1;
            s2[j] = t2;
            s3[j] = t3;
        }
    }
    rk += 16;
    for (int j = 0; j < N; ++j) {
        const std::uint32_t o0 =
            (static_cast<std::uint32_t>(kSbox[s0[j] & 0xff])) |
            (static_cast<std::uint32_t>(kSbox[(s1[j] >> 8) & 0xff]) << 8) |
            (static_cast<std::uint32_t>(kSbox[(s2[j] >> 16) & 0xff]) << 16) |
            (static_cast<std::uint32_t>(kSbox[s3[j] >> 24]) << 24);
        const std::uint32_t o1 =
            (static_cast<std::uint32_t>(kSbox[s1[j] & 0xff])) |
            (static_cast<std::uint32_t>(kSbox[(s2[j] >> 8) & 0xff]) << 8) |
            (static_cast<std::uint32_t>(kSbox[(s3[j] >> 16) & 0xff]) << 16) |
            (static_cast<std::uint32_t>(kSbox[s0[j] >> 24]) << 24);
        const std::uint32_t o2 =
            (static_cast<std::uint32_t>(kSbox[s2[j] & 0xff])) |
            (static_cast<std::uint32_t>(kSbox[(s3[j] >> 8) & 0xff]) << 8) |
            (static_cast<std::uint32_t>(kSbox[(s0[j] >> 16) & 0xff]) << 16) |
            (static_cast<std::uint32_t>(kSbox[s1[j] >> 24]) << 24);
        const std::uint32_t o3 =
            (static_cast<std::uint32_t>(kSbox[s3[j] & 0xff])) |
            (static_cast<std::uint32_t>(kSbox[(s0[j] >> 8) & 0xff]) << 8) |
            (static_cast<std::uint32_t>(kSbox[(s1[j] >> 16) & 0xff]) << 16) |
            (static_cast<std::uint32_t>(kSbox[s2[j] >> 24]) << 24);
        store32le(out + 16 * j + 0, o0 ^ le32(rk + 0));
        store32le(out + 16 * j + 4, o1 ^ le32(rk + 4));
        store32le(out + 16 * j + 8, o2 ^ le32(rk + 8));
        store32le(out + 16 * j + 12, o3 ^ le32(rk + 12));
    }
}

} // namespace

const std::uint8_t *
aesSbox()
{
    return kSbox;
}

AesKey
aesKeyInit(const std::uint8_t *key, std::size_t key_bytes)
{
    SD_ASSERT(key_bytes == 16 || key_bytes == 32,
              "unsupported AES key size %zu", key_bytes);
    AesKey out;
    out.tier = activeTier();
    const int nk = static_cast<int>(key_bytes / 4);
    out.rounds = nk == 4 ? 10 : 14;
    const int total_words = 4 * (out.rounds + 1);

    std::uint8_t *w = out.rk.data();
    std::memcpy(w, key, key_bytes);

    for (int i = nk; i < total_words; ++i) {
        std::uint8_t temp[4];
        std::memcpy(temp, w + 4 * (i - 1), 4);
        if (i % nk == 0) {
            // RotWord + SubWord + Rcon.
            const std::uint8_t t0 = temp[0];
            temp[0] = static_cast<std::uint8_t>(kSbox[temp[1]] ^
                                                kRcon[i / nk]);
            temp[1] = kSbox[temp[2]];
            temp[2] = kSbox[temp[3]];
            temp[3] = kSbox[t0];
        } else if (nk > 6 && i % nk == 4) {
            for (auto &b : temp)
                b = kSbox[b];
        }
        for (int b = 0; b < 4; ++b)
            w[4 * i + b] =
                static_cast<std::uint8_t>(w[4 * (i - nk) + b] ^ temp[b]);
    }
    return out;
}

void
detail::aesEncryptScalar(const AesKey &key, const std::uint8_t in[16],
                         std::uint8_t out[16])
{
    std::uint8_t s[16];
    std::memcpy(s, in, 16);

    addRoundKey(s, key.rk.data());
    for (int round = 1; round < key.rounds; ++round) {
        subBytes(s);
        shiftRows(s);
        mixColumns(s);
        addRoundKey(s, key.rk.data() + 16 * round);
    }
    subBytes(s);
    shiftRows(s);
    addRoundKey(s, key.rk.data() + 16 * key.rounds);

    std::memcpy(out, s, 16);
}

void
detail::aesEncryptTable(const AesKey &key, const std::uint8_t in[16],
                        std::uint8_t out[16])
{
    const AesTables &tb = aesTablesOnce();
    const std::uint8_t *rk = key.rk.data();

    std::uint32_t s0 = le32(in + 0) ^ le32(rk + 0);
    std::uint32_t s1 = le32(in + 4) ^ le32(rk + 4);
    std::uint32_t s2 = le32(in + 8) ^ le32(rk + 8);
    std::uint32_t s3 = le32(in + 12) ^ le32(rk + 12);

    for (int round = 1; round < key.rounds; ++round) {
        rk += 16;
        const std::uint32_t t0 = tb.t[0][s0 & 0xff] ^
                                 tb.t[1][(s1 >> 8) & 0xff] ^
                                 tb.t[2][(s2 >> 16) & 0xff] ^
                                 tb.t[3][s3 >> 24] ^ le32(rk + 0);
        const std::uint32_t t1 = tb.t[0][s1 & 0xff] ^
                                 tb.t[1][(s2 >> 8) & 0xff] ^
                                 tb.t[2][(s3 >> 16) & 0xff] ^
                                 tb.t[3][s0 >> 24] ^ le32(rk + 4);
        const std::uint32_t t2 = tb.t[0][s2 & 0xff] ^
                                 tb.t[1][(s3 >> 8) & 0xff] ^
                                 tb.t[2][(s0 >> 16) & 0xff] ^
                                 tb.t[3][s1 >> 24] ^ le32(rk + 8);
        const std::uint32_t t3 = tb.t[0][s3 & 0xff] ^
                                 tb.t[1][(s0 >> 8) & 0xff] ^
                                 tb.t[2][(s1 >> 16) & 0xff] ^
                                 tb.t[3][s2 >> 24] ^ le32(rk + 12);
        s0 = t0;
        s1 = t1;
        s2 = t2;
        s3 = t3;
    }

    // Final round: SubBytes + ShiftRows, no MixColumns.
    rk += 16;
    const std::uint32_t o0 =
        (static_cast<std::uint32_t>(kSbox[s0 & 0xff])) |
        (static_cast<std::uint32_t>(kSbox[(s1 >> 8) & 0xff]) << 8) |
        (static_cast<std::uint32_t>(kSbox[(s2 >> 16) & 0xff]) << 16) |
        (static_cast<std::uint32_t>(kSbox[s3 >> 24]) << 24);
    const std::uint32_t o1 =
        (static_cast<std::uint32_t>(kSbox[s1 & 0xff])) |
        (static_cast<std::uint32_t>(kSbox[(s2 >> 8) & 0xff]) << 8) |
        (static_cast<std::uint32_t>(kSbox[(s3 >> 16) & 0xff]) << 16) |
        (static_cast<std::uint32_t>(kSbox[s0 >> 24]) << 24);
    const std::uint32_t o2 =
        (static_cast<std::uint32_t>(kSbox[s2 & 0xff])) |
        (static_cast<std::uint32_t>(kSbox[(s3 >> 8) & 0xff]) << 8) |
        (static_cast<std::uint32_t>(kSbox[(s0 >> 16) & 0xff]) << 16) |
        (static_cast<std::uint32_t>(kSbox[s1 >> 24]) << 24);
    const std::uint32_t o3 =
        (static_cast<std::uint32_t>(kSbox[s3 & 0xff])) |
        (static_cast<std::uint32_t>(kSbox[(s0 >> 8) & 0xff]) << 8) |
        (static_cast<std::uint32_t>(kSbox[(s1 >> 16) & 0xff]) << 16) |
        (static_cast<std::uint32_t>(kSbox[s2 >> 24]) << 24);

    store32le(out + 0, o0 ^ le32(rk + 0));
    store32le(out + 4, o1 ^ le32(rk + 4));
    store32le(out + 8, o2 ^ le32(rk + 8));
    store32le(out + 12, o3 ^ le32(rk + 12));
}

void
aesEncryptBlock(const AesKey &key, const std::uint8_t in[16],
                std::uint8_t out[16])
{
    switch (key.tier) {
    case KernelTier::kTable:
        detail::aesEncryptTable(key, in, out);
        return;
    case KernelTier::kNative:
        detail::aesEncryptNi(key, in, out);
        return;
    case KernelTier::kScalar:
    default:
        detail::aesEncryptScalar(key, in, out);
        return;
    }
}

void
aesCtrKeystream(const AesKey &key, const std::uint8_t iv12[12],
                std::uint32_t first_ctr, std::size_t nblocks,
                std::uint8_t *out)
{
    if (key.tier == KernelTier::kNative) {
        detail::aesCtrKeystreamNi(key, iv12, first_ctr, nblocks, out);
        return;
    }
    if (key.tier == KernelTier::kTable) {
        // Two interleaved T-table blocks per step. The counter's
        // little-endian column word is a byte swap of the 32-bit
        // big-endian counter, independent of host endianness (le32 /
        // store32le are byte-wise).
        const AesTables &tb = aesTablesOnce();
        const std::uint32_t w0 = le32(iv12 + 0);
        const std::uint32_t w1 = le32(iv12 + 4);
        const std::uint32_t w2 = le32(iv12 + 8);
        std::size_t i = 0;
        for (; i + 2 <= nblocks; i += 2) {
            const std::uint32_t ctr_le[2] = {
                __builtin_bswap32(
                    first_ctr + static_cast<std::uint32_t>(i)),
                __builtin_bswap32(
                    first_ctr + static_cast<std::uint32_t>(i + 1))};
            aesCtrTableN<2>(tb, key, w0, w1, w2, ctr_le,
                            out + i * kAesBlockBytes);
        }
        if (i < nblocks) {
            const std::uint32_t ctr_le[1] = {__builtin_bswap32(
                first_ctr + static_cast<std::uint32_t>(i))};
            aesCtrTableN<1>(tb, key, w0, w1, w2, ctr_le,
                            out + i * kAesBlockBytes);
        }
        return;
    }
    std::uint8_t block[16];
    for (std::size_t i = 0; i < nblocks; ++i) {
        buildCtrBlock(iv12,
                      first_ctr + static_cast<std::uint32_t>(i), block);
        detail::aesEncryptScalar(key, block, out + i * kAesBlockBytes);
    }
}

} // namespace sd::kernels
