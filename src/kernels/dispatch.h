/**
 * @file
 * Runtime dispatch for the data-plane kernel layer. Three tiers of
 * functional kernels exist behind one interface:
 *
 *  - kScalar: the original bit-serial / byte-wise reference code.
 *    Always compiled, used as the differential oracle by the parity
 *    test suite.
 *  - kTable:  table-driven kernels (T-table AES-128/256, Shoup
 *    4-bit/8-bit GHASH). Portable C++, no ISA requirements.
 *  - kNative: ISA-accelerated kernels (AES-NI, PCLMULQDQ) compiled
 *    with per-function target attributes and selected only when the
 *    CPU reports support at runtime.
 *
 * The tier is chosen once at startup (first use) and logged to stderr.
 * `SD_FORCE_KERNEL=scalar|table|native` pins the choice so CI and
 * debugging can exercise every path deterministically.
 *
 * Invariant: kernels only change *wall-clock* speed. Every tier
 * produces bit-identical ciphertext, tags and token streams, so
 * simulated cycle counts, traces and bench CSV/JSON outputs are
 * unaffected by the dispatch decision (the golden-trace test guards
 * this).
 */

#ifndef SD_KERNELS_DISPATCH_H
#define SD_KERNELS_DISPATCH_H

#include <vector>

namespace sd::kernels {

/** Implementation tier of the data-plane kernels. */
enum class KernelTier : int {
    kScalar = 0, ///< reference bit-serial / byte-wise code
    kTable = 1,  ///< T-table AES + Shoup table GHASH
    kNative = 2, ///< AES-NI + PCLMULQDQ (x86 only, runtime-detected)
};

/** Human-readable tier name ("scalar" / "table" / "native"). */
const char *tierName(KernelTier tier);

/** @return true when the CPU + toolchain can run the native tier. */
bool nativeSupported();

/** Tiers that can run on this machine, in ascending speed order. */
std::vector<KernelTier> availableTiers();

/**
 * The tier new kernel keys bind to. Resolution order: forceTier()
 * override, then `SD_FORCE_KERNEL`, then the fastest available tier.
 * The first call logs the selection to stderr (once per process).
 */
KernelTier activeTier();

/**
 * Pin the tier for subsequently created kernel keys (parity tests
 * iterate tiers with this). Existing keys keep the tier they were
 * created with, so objects stay internally consistent.
 */
void forceTier(KernelTier tier);

/** Drop a forceTier() override, returning to the startup selection. */
void clearForcedTier();

} // namespace sd::kernels

#endif // SD_KERNELS_DISPATCH_H
