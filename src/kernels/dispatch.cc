#include "kernels/dispatch.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/log.h"

namespace sd::kernels {

namespace {

/** -1 = no override; otherwise a KernelTier value. */
std::atomic<int> g_forced{-1};

/** Parse a SD_FORCE_KERNEL value; SD_FATAL on nonsense. */
KernelTier
parseTier(const char *value)
{
    if (std::strcmp(value, "scalar") == 0)
        return KernelTier::kScalar;
    if (std::strcmp(value, "table") == 0)
        return KernelTier::kTable;
    if (std::strcmp(value, "native") == 0)
        return KernelTier::kNative;
    SD_FATAL("SD_FORCE_KERNEL='%s' is not one of scalar|table|native",
             value);
}

/**
 * Startup selection: env override first, else the fastest tier this
 * machine can run. Logged to stderr exactly once (stdout stays
 * machine-parsable for the bench harnesses). Runs under
 * startupTier()'s once-init guard — do not call directly.
 */
KernelTier
selectStartupTier()
{
    const char *env = std::getenv("SD_FORCE_KERNEL");
    KernelTier tier;
    bool forced = false;
    if (env && *env) {
        tier = parseTier(env);
        forced = true;
        if (tier == KernelTier::kNative && !nativeSupported())
            SD_FATAL("SD_FORCE_KERNEL=native but this CPU/build has no "
                     "AES-NI/PCLMULQDQ support");
    } else {
        tier = nativeSupported() ? KernelTier::kNative
                                 : KernelTier::kTable;
    }
    std::fprintf(stderr,
                 "sd.kernels: data-plane kernel tier '%s'%s\n",
                 tierName(tier),
                 forced ? " (pinned by SD_FORCE_KERNEL)" : "");
    return tier;
}

} // namespace

const char *
tierName(KernelTier tier)
{
    switch (tier) {
    case KernelTier::kScalar:
        return "scalar";
    case KernelTier::kTable:
        return "table";
    case KernelTier::kNative:
        return "native";
    }
    return "unknown";
}

std::vector<KernelTier>
availableTiers()
{
    std::vector<KernelTier> tiers{KernelTier::kScalar,
                                  KernelTier::kTable};
    if (nativeSupported())
        tiers.push_back(KernelTier::kNative);
    return tiers;
}

namespace {

/**
 * Once-initialised startup tier. A function-local static is the
 * properly synchronised once-init: the C++ runtime guarantees
 * selectStartupTier() runs exactly once even when the first
 * activeTier() calls race from several threads, and every caller
 * observes the fully constructed value. (The previous pattern
 * evaluated the magic static *after* the override check inside
 * activeTier(), which worked but interleaved the two concerns; with
 * the init isolated here, concurrent first use, the startup log line
 * and SD_FORCE_KERNEL parsing are all covered by one guard.)
 */
KernelTier
startupTier()
{
    static const KernelTier tier = selectStartupTier();
    return tier;
}

} // namespace

KernelTier
activeTier()
{
    // Acquire pairs with the release in forceTier() so a thread that
    // observes an override also observes everything done before it.
    const int forced = g_forced.load(std::memory_order_acquire);
    if (forced >= 0)
        return static_cast<KernelTier>(forced);
    return startupTier();
}

void
forceTier(KernelTier tier)
{
    SD_ASSERT(tier != KernelTier::kNative || nativeSupported(),
              "forcing the native kernel tier on unsupported hardware");
    g_forced.store(static_cast<int>(tier), std::memory_order_release);
}

void
clearForcedTier()
{
    g_forced.store(-1, std::memory_order_release);
}

} // namespace sd::kernels
