#include "kernels/ghash_kernel.h"

#include <array>
#include <cstring>

#include "common/log.h"

namespace sd::kernels {

namespace {

/** Multiply by x (one right shift in GCM bit order) with reduction. */
inline Block128
mulX(const Block128 &v)
{
    Block128 out;
    const bool lsb = v.lo & 1;
    out.lo = (v.lo >> 1) | (v.hi << 63);
    out.hi = v.hi >> 1;
    if (lsb)
        out.hi ^= 0xe100000000000000ULL; // R = 11100001 || 0^120
    return out;
}

/** Byte @p k (0 = most significant) of a field element. */
inline std::uint32_t
byteAt(const Block128 &v, int k)
{
    return k < 8 ? (v.hi >> (56 - 8 * k)) & 0xff
                 : (v.lo >> (56 - 8 * (k - 8))) & 0xff;
}

/**
 * Key-independent reduction table for the 8-bit Shoup step:
 * kRed8[r] = (element with byte r in the last position, i.e.
 * coefficients x^120..x^127) * x^8, which is exactly the term a
 * byte-wise right shift pushes out of the element.
 */
const std::array<Block128, 256> &
red8Table()
{
    static const std::array<Block128, 256> table = [] {
        std::array<Block128, 256> t{};
        for (unsigned r = 0; r < 256; ++r) {
            Block128 v{0, r};
            for (int i = 0; i < 8; ++i)
                v = mulX(v);
            t[r] = v;
        }
        return t;
    }();
    return table;
}

/** Same for the 4-bit step: kRed4[r] = {0, r(4-bit)} * x^4. */
const std::array<Block128, 16> &
red4Table()
{
    static const std::array<Block128, 16> table = [] {
        std::array<Block128, 16> t{};
        for (unsigned r = 0; r < 16; ++r) {
            Block128 v{0, r};
            for (int i = 0; i < 4; ++i)
                v = mulX(v);
            t[r] = v;
        }
        return t;
    }();
    return table;
}

/** z * x^8 using the precomputed reduction table. */
inline Block128
mulX8(const Block128 &z, const std::array<Block128, 256> &red)
{
    const std::uint32_t r = z.lo & 0xff;
    Block128 out{z.hi >> 8, (z.lo >> 8) | (z.hi << 56)};
    return out ^ red[r];
}

/** z * x^4 using the precomputed reduction table. */
inline Block128
mulX4(const Block128 &z, const std::array<Block128, 16> &red)
{
    const std::uint32_t r = z.lo & 0xf;
    Block128 out{z.hi >> 4, (z.lo >> 4) | (z.hi << 60)};
    return out ^ red[r];
}

/**
 * Shoup 8-bit table for a fixed multiplicand: m[b] = b * H where the
 * byte b carries coefficients x^0..x^7 (bit 7 of b = x^0, GCM order).
 */
void
buildMul8(const Block128 &h, Block128 *m)
{
    m[0x80] = h;
    for (unsigned i = 0x40; i; i >>= 1)
        m[i] = mulX(m[i << 1]);
    for (unsigned i = 2; i < 256; i <<= 1)
        for (unsigned j = 1; j < i; ++j)
            m[i | j] = m[i] ^ m[j];
}

/** Load 16 big-endian bytes into a field element. */
inline Block128
loadBlock(const std::uint8_t bytes[16])
{
    std::uint64_t hi;
    std::uint64_t lo;
    std::memcpy(&hi, bytes, 8);
    std::memcpy(&lo, bytes + 8, 8);
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_BIG_ENDIAN__
    return Block128{hi, lo};
#else
    return Block128{__builtin_bswap64(hi), __builtin_bswap64(lo)};
#endif
}

} // namespace

Block128
gfMulScalar(const Block128 &a, const Block128 &b)
{
    // Right-shift multiplication per SP 800-38D: bit 0 of the GCM
    // representation is the most significant byte's MSB.
    Block128 z{};
    Block128 v = b;
    for (int i = 0; i < 128; ++i) {
        const std::uint64_t word = i < 64 ? a.hi : a.lo;
        const int bit = 63 - (i & 63);
        if ((word >> bit) & 1) {
            z.hi ^= v.hi;
            z.lo ^= v.lo;
        }
        const bool lsb = v.lo & 1;
        v.lo = (v.lo >> 1) | (v.hi << 63);
        v.hi >>= 1;
        if (lsb)
            v.hi ^= 0xe100000000000000ULL;
    }
    return z;
}

Block128
detail::gfMulTable4(const Block128 &a, const Block128 &b)
{
    // Per-call Shoup 4-bit table of b: n[r] = r * b with the nibble r
    // carrying coefficients x^0..x^3 (bit 3 of r = x^0).
    std::array<Block128, 16> n{};
    n[0x8] = b;
    n[0x4] = mulX(b);
    n[0x2] = mulX(n[0x4]);
    n[0x1] = mulX(n[0x2]);
    for (unsigned i = 2; i < 16; i <<= 1)
        for (unsigned j = 1; j < i; ++j)
            n[i | j] = n[i] ^ n[j];

    const auto &red = red4Table();
    // Horner over a's 32 nibbles, most significant (x^0..x^3) first.
    auto nibbleAt = [&a](int k) -> std::uint32_t {
        const std::uint64_t word = k < 16 ? a.hi : a.lo;
        return (word >> (60 - 4 * (k & 15))) & 0xf;
    };
    Block128 z = n[nibbleAt(31)];
    for (int k = 30; k >= 0; --k)
        z = mulX4(z, red) ^ n[nibbleAt(k)];
    return z;
}

GhashKey
ghashKeyInit(const Block128 &h)
{
    GhashKey key;
    key.tier = activeTier();
    key.h = h;
    if (key.tier == KernelTier::kTable) {
        // Tables for H^1..H^4; the powers themselves come from the
        // bit-serial reference (init-time cost, guaranteed correct).
        key.mul8.resize(4 * 256);
        Block128 hp = h;
        buildMul8(hp, key.mul8.data());
        for (int p = 1; p < 4; ++p) {
            hp = gfMulScalar(hp, h);
            buildMul8(hp, key.mul8.data() + 256 * p);
        }
    }
    return key;
}

Block128
gfMulByH(const GhashKey &key, const Block128 &x)
{
    switch (key.tier) {
    case KernelTier::kTable: {
        const auto &red = red8Table();
        const Block128 *m = key.mul8.data();
        // Horner over x's 16 bytes, most significant first — i.e.
        // ascending shifts of lo then hi in the packed representation.
        Block128 z = m[x.lo & 0xff];
        for (int s = 8; s < 64; s += 8)
            z = mulX8(z, red) ^ m[(x.lo >> s) & 0xff];
        for (int s = 0; s < 64; s += 8)
            z = mulX8(z, red) ^ m[(x.hi >> s) & 0xff];
        return z;
    }
    case KernelTier::kNative:
        return detail::gfMulClmul(x, key.h);
    case KernelTier::kScalar:
    default:
        return gfMulScalar(x, key.h);
    }
}

Block128
ghashFold(const GhashKey &key, Block128 y, const std::uint8_t *blocks,
          std::size_t nblocks)
{
    if (key.tier == KernelTier::kTable) {
        const auto &red = red8Table();
        // t[j] multiplies by H^(4-j): the oldest block of a 4-group
        // still has 3 more folds ahead of it, so it takes the highest
        // power (aggregated reduction).
        const Block128 *t[4] = {
            key.mul8.data() + 256 * 3, key.mul8.data() + 256 * 2,
            key.mul8.data() + 256 * 1, key.mul8.data() + 256 * 0};
        while (nblocks >= 4) {
            Block128 x[4];
            for (int j = 0; j < 4; ++j)
                x[j] = loadBlock(blocks + 16 * j);
            x[0] = x[0] ^ y;
            // Four independent Shoup Horner chains, stepped in
            // lockstep so the table loads pipeline.
            Block128 z[4];
            for (int j = 0; j < 4; ++j)
                z[j] = t[j][x[j].lo & 0xff];
            for (int s = 8; s < 64; s += 8)
                for (int j = 0; j < 4; ++j)
                    z[j] = mulX8(z[j], red) ^ t[j][(x[j].lo >> s) & 0xff];
            for (int s = 0; s < 64; s += 8)
                for (int j = 0; j < 4; ++j)
                    z[j] = mulX8(z[j], red) ^ t[j][(x[j].hi >> s) & 0xff];
            y = z[0] ^ z[1] ^ z[2] ^ z[3];
            blocks += 64;
            nblocks -= 4;
        }
    }
    for (std::size_t i = 0; i < nblocks; ++i)
        y = gfMulByH(key, y ^ loadBlock(blocks + 16 * i));
    return y;
}

Block128
gfMulVia(KernelTier tier, const Block128 &a, const Block128 &b)
{
    switch (tier) {
    case KernelTier::kTable:
        return detail::gfMulTable4(a, b);
    case KernelTier::kNative:
        return detail::gfMulClmul(a, b);
    case KernelTier::kScalar:
    default:
        return gfMulScalar(a, b);
    }
}

} // namespace sd::kernels
