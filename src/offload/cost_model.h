/**
 * @file
 * Calibrated cost parameters for each accelerator placement. Every
 * constant is documented with its provenance: published datasheet
 * numbers, the paper's own measurements, or derived calibration
 * against the paper's Fig. 11/12 baselines. All placements share this
 * one header so the benches and tests can sweep or ablate them.
 *
 * Concurrency contract: plain value types with no hidden state. A
 * CostModel is configured once (single-owner while being mutated by a
 * sweep or ablation) and may then be shared read-only across any
 * number of threads, or simply copied per thread — copies are cheap
 * and independent. Nothing here requires synchronisation as long as
 * writes do not overlap reads, which the placement/design-space code
 * honours by treating models as immutable after construction.
 */

#ifndef SD_OFFLOAD_COST_MODEL_H
#define SD_OFFLOAD_COST_MODEL_H

#include <cstddef>

namespace sd::offload {

/** Host CPU parameters (Xeon Gold 6242 class, Sec. VI). */
struct CpuParams
{
    double freq_ghz = 2.8;

    /**
     * Per-request web-server base cost: accept/parse/respond through
     * the kernel socket + TCP stack. Nginx measurements commonly land
     * in the 20-40k cycle range per keep-alive request; calibrated so
     * the HTTP-only server saturates ~10 threads at 100 GbE with 4 KB
     * objects, as the paper's methodology requires.
     */
    double base_request_cycles = 30000;

    /** Per-TCP-segment transmit cost (skb + qdisc + doorbell). */
    double per_segment_cycles = 450;

    /** memcpy throughput, bytes per cycle (AVX-512 streaming). */
    double memcpy_bytes_per_cycle = 16.0;

    /** AES-GCM with AES-NI+PCLMUL, cycles per byte (Intel white
     *  papers report 0.64-1.3 cpb on Skylake-era cores). */
    double aesni_cycles_per_byte = 0.85;

    /** Per-record TLS overhead (nonce, tag, record framing). */
    double tls_record_cycles = 1400;

    /** Software deflate (zlib level-1 class), cycles per byte. */
    double deflate_cycles_per_byte = 30.0;

    /** Per-message deflate setup (window/tables). */
    double deflate_setup_cycles = 2500;

    /** Average DRAM access penalty under load, cycles per miss. */
    double dram_miss_cycles = 260;
};

/** LLC / memory-system coupling. */
struct MemoryParams
{
    double llc_mb = 27.5;          ///< Xeon 6242: 27.5 MB L3
    double peak_bw_gbps = 6 * 25.6; ///< 6 channels DDR4-3200 (GB/s)
    /** Per-connection buffering (socket + TLS + app) that competes
     *  for LLC; kernel totals land in the 32-128 KB range. */
    double per_connection_kb = 64.0;
};

/** NVIDIA ConnectX-6 class autonomous TLS offload (Obs. 1). */
struct SmartNicParams
{
    /** CPU-side record bookkeeping when crypto is skipped: the
     *  driver tracks TLS record boundaries per skb and programs the
     *  NIC's per-connection crypto state — a fixed per-record tax
     *  that erases the benefit for small records (Fig. 11). */
    double record_skip_cycles = 9000;

    /** Extra per-segment driver work: marking each skb for the
     *  inline engine and maintaining resync metadata. */
    double per_segment_cycles = 1500;

    /**
     * Driver resynchronisation after loss/reordering: the NIC state
     * must be rebuilt from the socket; Pismenny et al. report tens of
     * microseconds per resync plus software fallback crypto for the
     * affected records.
     */
    double resync_us = 30.0;

    /** Records re-encrypted in software per resync episode. */
    double fallback_records = 8.0;

    /** NIC crypto engine rate (GB/s) — far above 100 GbE line rate. */
    double nic_crypto_gbps = 50.0;
};

/** Intel QuickAssist 8970 class PCIe accelerator (Obs. 2). */
struct QatParams
{
    /**
     * Worker-blocking time per synchronous crypto offload: descriptor
     * setup + doorbell + completion wake-up. Published QAT studies
     * report 10-25 us round trips for small jobs; the blocking
     * configuration (nginx without an async engine) charges the full
     * wait to the worker.
     */
    double crypto_block_us = 25.0;

    /** Worker-blocking time per synchronous compression offload —
     *  the compression rings add scheduling + interrupt latency. */
    double compress_block_us = 55.0;

    /** CPU cycles for descriptor management per offload. */
    double mgmt_cycles = 9000;

    /** Effective PCIe Gen3 x16 data rate per direction (GB/s). */
    double pcie_gbps = 12.0;

    /** Accelerator crypto throughput (GB/s). */
    double crypto_gbps = 40.0;

    /** Accelerator compression throughput (GB/s). */
    double compress_gbps = 24.0;

    /** Extra DRAM traffic factor: descriptor rings + bounce buffers
     *  double-move the payload. */
    double dram_traffic_factor = 2.0;
};

/** SmartDIMM CompCpy software costs (Sec. IV-D / V). */
struct SmartDimmParams
{
    /** MMIO registration write per page pair. */
    double register_cycles = 300;

    /** clflush cost per line (sbuf flush + USE flush). */
    double flush_line_cycles = 28;

    /** freePages check + lock (amortised; lazy refresh). */
    double bookkeeping_cycles = 250;

    /** Ordered-mode fence penalty per 64 B (Deflate offloads). */
    double fence_cycles = 30;

    /** DSA line rate never throttles the channel (validated on the
     *  AxDIMM prototype, Sec. VI): no throughput term needed. */
};

/** CXL.mem-attached SmartDIMM (far-memory tier, ISSUE 10). */
struct CxlParams
{
    /** Link round trip, request to response (CXL 2.0 switch-hop class
     *  latencies span roughly 300-1500 ns; 600 is a mid-range hop). */
    double round_trip_ns = 600.0;

    /** Flex-bus payload rate per direction (GB/s, x8 CXL 2.0). */
    double link_gbps = 32.0;

    /** Control-path round trips per offload: the doorbell write plus
     *  the withheld completion read the controller holds open. */
    double doorbell_round_trips = 2.0;

    /** Share of the round trip a streamed line's miss exposes — far
     *  stores/loads pipeline deeply, hiding most of the flight time. */
    double mlp_exposure = 0.04;
};

/** The full calibrated model. */
struct CostModel
{
    CpuParams cpu;
    MemoryParams memory;
    SmartNicParams smartnic;
    QatParams qat;
    SmartDimmParams smartdimm;
    CxlParams cxl;
};

} // namespace sd::offload

#endif // SD_OFFLOAD_COST_MODEL_H
