/**
 * @file
 * Accelerator-placement interface. Each placement converts "process
 * one ULP message of S bytes" into the three resources the server
 * simulation arbitrates: CPU cycles, DRAM bytes, and added latency.
 * The LLC leak fraction (how much of the streamed message spills to
 * DRAM, Obs. 3) couples the placements to cache contention.
 */

#ifndef SD_OFFLOAD_PLACEMENT_H
#define SD_OFFLOAD_PLACEMENT_H

#include <cstdint>
#include <memory>
#include <string>

#include "offload/cost_model.h"
#include "trace/trace.h"

namespace sd::offload {

/** ULP processed by the server. */
enum class Ulp : std::uint8_t
{
    kNone,       ///< plain HTTP (baseline for Fig. 3)
    kTlsEncrypt, ///< HTTPS record protection
    kDeflate,    ///< HTTP response compression
};

/** The placements of Fig. 11/12, plus the CXL far-memory tier. */
enum class PlacementKind : std::uint8_t
{
    kCpu,
    kSmartNic,
    kQuickAssist,
    kSmartDimm,
    kCxlMem, ///< SmartDIMM behind a CXL.mem link (withheld completion)
};

/** Every placement, for tests/sweeps that must cover new tiers. */
inline constexpr PlacementKind kAllPlacementKinds[] = {
    PlacementKind::kCpu,        PlacementKind::kSmartNic,
    PlacementKind::kQuickAssist, PlacementKind::kSmartDimm,
    PlacementKind::kCxlMem,
};

/** Per-message resource consumption. */
struct UlpCost
{
    double cpu_cycles = 0;   ///< on-core work + stalls
    double dram_bytes = 0;   ///< memory traffic attributable to the ULP
    double latency_us = 0;   ///< added per-message latency
    bool supported = true;   ///< e.g. SmartNIC cannot do Deflate
};

/** Environment of one evaluation point. */
struct LoadContext
{
    double leak_fraction = 1.0;  ///< of streamed lines spilling to DRAM
    double loss_events_per_message = 0.0; ///< TCP recoveries (Fig. 2)
    double output_ratio = 1.0;   ///< compressed-output / input size
    /**
     * Extra per-miss latency when the message's pages live in far
     * (CXL-attached) memory, ns. Zero for a hot/local working set.
     * Host-side placements pay it on every demand miss; the CXL tier
     * transforms near-data and only pays it on its control path.
     */
    double far_mem_extra_ns = 0.0;
};

/** Evaluation counters accumulated across messageCost() calls. */
struct PlacementEvalStats
{
    std::uint64_t evaluations = 0;  ///< cost-model queries
    std::uint64_t unsupported = 0;  ///< queries the placement rejected
    double bytes = 0;               ///< message bytes evaluated
    double cpu_cycles = 0;          ///< summed predicted on-core work
    double dram_bytes = 0;          ///< summed predicted DRAM traffic
};

/** One accelerator placement. */
class Placement
{
  public:
    virtual ~Placement() = default;

    /** Short name for report rows. */
    virtual std::string name() const = 0;
    virtual PlacementKind kind() const = 0;

    /** Resource cost of processing one @p bytes message of @p ulp. */
    UlpCost messageCost(Ulp ulp, std::size_t bytes,
                        const LoadContext &ctx) const;

    /** Counters over every messageCost() call so far. */
    const PlacementEvalStats &evalStats() const { return eval_; }

    /** Contribute the evaluation counters to a stats dump. */
    void reportStats(trace::StatsBlock &block) const;

  protected:
    /** Per-placement cost model, wrapped by messageCost(). */
    virtual UlpCost computeCost(Ulp ulp, std::size_t bytes,
                                const LoadContext &ctx) const = 0;

  private:
    mutable PlacementEvalStats eval_;
};

/** Factory over the placements of the evaluation. */
std::unique_ptr<Placement> makePlacement(PlacementKind kind,
                                         const CostModel &model = {});

} // namespace sd::offload

#endif // SD_OFFLOAD_PLACEMENT_H
