#include "offload/placement.h"

#include <algorithm>
#include <cmath>

#include "common/log.h"
#include "common/types.h"

namespace sd::offload {

namespace {

/** TLS 1.3 maximum plaintext fragment -> records per message. */
constexpr std::size_t kTlsRecordMax = 16384;

double
records(std::size_t bytes)
{
    return static_cast<double>(divCeil(bytes, kTlsRecordMax));
}

double
pages(std::size_t bytes)
{
    return static_cast<double>(divCeil(bytes, kPageSize));
}

double
lines(std::size_t bytes)
{
    return static_cast<double>(divCeil(bytes, kCacheLineSize));
}

/** Stall cycles for @p traffic bytes of demand misses. The exposure
 *  factor reflects memory-level parallelism: longer streams give the
 *  prefetchers more run-up, hiding a larger share of each miss. */
double
missStalls(double traffic_bytes, double miss_cycles,
           std::size_t message_bytes)
{
    const double exposure = std::clamp(
        0.16 * std::pow(4096.0 / static_cast<double>(message_bytes),
                        0.3),
        0.08, 0.20);
    return traffic_bytes / kCacheLineSize * miss_cycles * exposure;
}

/** Demand-miss penalty including the far-memory tax: a page homed in
 *  CXL memory adds the link round trip to every host-side miss. */
double
missCycles(const CostModel &m, const LoadContext &ctx)
{
    return m.cpu.dram_miss_cycles +
           ctx.far_mem_extra_ns * m.cpu.freq_ghz;
}

/** CPU placement: everything on-core (AES-NI / software deflate). */
class CpuPlacement final : public Placement
{
  public:
    explicit CpuPlacement(const CostModel &m) : m_(m) {}

    std::string name() const override { return "CPU"; }
    PlacementKind kind() const override { return PlacementKind::kCpu; }

    UlpCost
    computeCost(Ulp ulp, std::size_t bytes, const LoadContext &ctx)
        const override
    {
        UlpCost cost;
        const double b = static_cast<double>(bytes);
        if (ulp == Ulp::kNone)
            return cost;

        double compute = 0;
        double traffic = 0;
        if (ulp == Ulp::kTlsEncrypt) {
            compute = b * m_.cpu.aesni_cycles_per_byte +
                      records(bytes) * m_.cpu.tls_record_cycles;
            // Obs. 3: at contention the transform's streams round-trip
            // DRAM — plaintext re-read, destination RFO + writeback,
            // NIC fetch of the ciphertext, and evicted re-reads:
            // ~5 line passes scaled by the leak fraction.
            traffic = b * 7.0 * ctx.leak_fraction;
        } else {
            compute = b * m_.cpu.deflate_cycles_per_byte +
                      pages(bytes) * m_.cpu.deflate_setup_cycles;
            // Deflate additionally churns its window + hash tables:
            // a few random accesses per input byte, all missing under
            // contention (the dominant term of Fig. 12's bandwidth).
            traffic = b * 25.0 * ctx.leak_fraction;
        }

        const double stalls =
            missStalls(traffic, missCycles(m_, ctx), bytes);

        cost.cpu_cycles = compute + stalls;
        cost.dram_bytes = traffic;
        cost.latency_us = cost.cpu_cycles / (m_.cpu.freq_ghz * 1e3);
        return cost;
    }

  private:
    CostModel m_;
};

/** SmartNIC autonomous offload (TLS only, size-preserving). */
class SmartNicPlacement final : public Placement
{
  public:
    explicit SmartNicPlacement(const CostModel &m) : m_(m) {}

    std::string name() const override { return "SmartNIC"; }
    PlacementKind kind() const override
    {
        return PlacementKind::kSmartNic;
    }

    UlpCost
    computeCost(Ulp ulp, std::size_t bytes, const LoadContext &ctx)
        const override
    {
        UlpCost cost;
        if (ulp == Ulp::kNone)
            return cost;
        if (ulp == Ulp::kDeflate) {
            // Non-size-preserving ULPs break the TCP state machine
            // when transformed below the stack (Obs. 1).
            cost.supported = false;
            return cost;
        }

        const double b = static_cast<double>(bytes);
        const double segments = std::max(1.0, b / 1448.0);

        // Crypto moves to the NIC, but the driver tracks every record
        // and marks every segment for the inline engine — fixed taxes
        // that erase the benefit for small records (Fig. 11 @ 4 KB).
        double cycles = records(bytes) * m_.smartnic.record_skip_cycles +
                        segments * m_.smartnic.per_segment_cycles;

        // The plaintext still streams through host memory to the NIC
        // (fewer passes than on-CPU crypto: no ciphertext copy).
        double traffic = b * 1.2 * ctx.leak_fraction;
        cycles += missStalls(traffic, missCycles(m_, ctx), bytes);

        // Loss/reorder resynchronisation: driver sync + software
        // fallback crypto for in-flight records (Fig. 2's collapse).
        if (ctx.loss_events_per_message > 0) {
            const double fallback_bytes =
                m_.smartnic.fallback_records *
                std::min<double>(b, kTlsRecordMax);
            cycles += ctx.loss_events_per_message *
                      (m_.smartnic.resync_us * m_.cpu.freq_ghz * 1e3 +
                       fallback_bytes * m_.cpu.aesni_cycles_per_byte);
            traffic += ctx.loss_events_per_message * fallback_bytes *
                       ctx.leak_fraction * 2.0;
        }

        cost.cpu_cycles = cycles;
        cost.dram_bytes = traffic;
        cost.latency_us =
            b / (m_.smartnic.nic_crypto_gbps * 1e3) +
            cycles / (m_.cpu.freq_ghz * 1e3);
        return cost;
    }

  private:
    CostModel m_;
};

/** PCIe QuickAssist placement, synchronous-offload configuration. */
class QatPlacement final : public Placement
{
  public:
    explicit QatPlacement(const CostModel &m) : m_(m) {}

    std::string name() const override { return "QuickAssist"; }
    PlacementKind kind() const override
    {
        return PlacementKind::kQuickAssist;
    }

    UlpCost
    computeCost(Ulp ulp, std::size_t bytes, const LoadContext &ctx)
        const override
    {
        UlpCost cost;
        if (ulp == Ulp::kNone)
            return cost;
        const double b = static_cast<double>(bytes);

        // The worker blocks on each offload (descriptor setup, PCIe
        // transfer, accelerator time, completion wake-up) — the
        // fine-grain-offload tax of Obs. 2. TLS offloads per record;
        // compression offloads per 4 KB page.
        const double jobs = ulp == Ulp::kTlsEncrypt ? records(bytes)
                                                    : pages(bytes);
        const double rate = ulp == Ulp::kTlsEncrypt
                                ? m_.qat.crypto_gbps
                                : m_.qat.compress_gbps;
        const double block_us =
            jobs * (ulp == Ulp::kTlsEncrypt
                        ? m_.qat.crypto_block_us
                        : m_.qat.compress_block_us) +
            2.0 * b / (m_.qat.pcie_gbps * 1e3) + b / (rate * 1e3);

        double cycles = jobs * m_.qat.mgmt_cycles +
                        block_us * m_.cpu.freq_ghz * 1e3;

        // Bounce buffers + descriptor rings double-move the payload
        // through DRAM regardless of cache state.
        const double traffic = b * m_.qat.dram_traffic_factor +
                               b * 2.0 * ctx.leak_fraction;
        cycles += missStalls(traffic, missCycles(m_, ctx), bytes);

        cost.cpu_cycles = cycles;
        cost.dram_bytes = traffic;
        cost.latency_us = block_us + jobs * m_.qat.mgmt_cycles /
                                         (m_.cpu.freq_ghz * 1e3);
        return cost;
    }

  private:
    CostModel m_;
};

/** SmartDIMM CompCpy placement (Sec. IV/V). */
class SmartDimmPlacement final : public Placement
{
  public:
    explicit SmartDimmPlacement(const CostModel &m) : m_(m) {}

    std::string name() const override { return "SmartDIMM"; }
    PlacementKind kind() const override
    {
        return PlacementKind::kSmartDimm;
    }

    UlpCost
    computeCost(Ulp ulp, std::size_t bytes, const LoadContext &ctx)
        const override
    {
        UlpCost cost;
        if (ulp == Ulp::kNone)
            return cost;
        const double b = static_cast<double>(bytes);

        // CompCpy software: freePages bookkeeping + registration MMIO
        // writes per page, clflush of sbuf, the 64 B-stride copy, and
        // the USE-side flush of the (ratio-scaled) output.
        double cycles =
            records(bytes) * m_.smartdimm.bookkeeping_cycles +
            pages(bytes) * m_.smartdimm.register_cycles +
            lines(bytes) * m_.smartdimm.flush_line_cycles +
            b / m_.cpu.memcpy_bytes_per_cycle +
            lines(static_cast<std::size_t>(b * ctx.output_ratio)) *
                m_.smartdimm.flush_line_cycles;
        if (ulp == Ulp::kDeflate)
            cycles += lines(bytes) * m_.smartdimm.fence_cycles;

        // The copy's reads come from DRAM (sbuf was flushed) but
        // stream with deep MLP. Far-homed sources pay the link here.
        cycles += lines(bytes) * missCycles(m_, ctx) * 0.12;

        // Inline transform: exactly one channel pass in (the rdCAS
        // the DSA taps) and one out (the self-recycled wrCAS) — no
        // contention-dependent re-reads.
        const double traffic = b + b * ctx.output_ratio;

        cost.cpu_cycles = cycles;
        cost.dram_bytes = traffic;
        cost.latency_us = cycles / (m_.cpu.freq_ghz * 1e3);
        return cost;
    }

  private:
    CostModel m_;
};

/**
 * SmartDIMM behind a CXL.mem link (the far-memory tier of ISSUE 10).
 * The transform runs near the data on the far device, so the
 * contention-dependent re-read traffic of the host placements never
 * crosses the link — only the control path (per-page registration
 * MMIO, the doorbell, and the withheld completion read) pays round
 * trips, and the streamed copy exposes a small pipelined share of the
 * flight time per line.
 */
class CxlMemPlacement final : public Placement
{
  public:
    explicit CxlMemPlacement(const CostModel &m) : m_(m) {}

    std::string name() const override { return "CXL.mem"; }
    PlacementKind kind() const override
    {
        return PlacementKind::kCxlMem;
    }

    UlpCost
    computeCost(Ulp ulp, std::size_t bytes, const LoadContext &ctx)
        const override
    {
        UlpCost cost;
        if (ulp == Ulp::kNone)
            return cost;
        const double b = static_cast<double>(bytes);
        const double rt_cycles =
            m_.cxl.round_trip_ns * m_.cpu.freq_ghz;

        // CompCpy software as on the local SmartDIMM, with the MMIO
        // registration writes now crossing the link (one round trip
        // per page pair) plus the doorbell + withheld completion read.
        double cycles =
            records(bytes) * m_.smartdimm.bookkeeping_cycles +
            pages(bytes) * (m_.smartdimm.register_cycles + rt_cycles) +
            lines(bytes) * m_.smartdimm.flush_line_cycles +
            b / m_.cpu.memcpy_bytes_per_cycle +
            lines(static_cast<std::size_t>(b * ctx.output_ratio)) *
                m_.smartdimm.flush_line_cycles +
            m_.cxl.doorbell_round_trips * rt_cycles;
        if (ulp == Ulp::kDeflate)
            cycles += lines(bytes) * m_.smartdimm.fence_cycles;

        // The copy streams over the flex-bus: deep MLP hides most of
        // each line's flight time; serialization bounds the rest.
        cycles += lines(bytes) * rt_cycles * m_.cxl.mlp_exposure;

        // Near-data transform: the in/out passes stay on the far
        // device's channel. Host DRAM sees only the source read.
        const double traffic = b;

        cost.cpu_cycles = cycles;
        cost.dram_bytes = traffic;
        cost.latency_us = cycles / (m_.cpu.freq_ghz * 1e3) +
                          b / (m_.cxl.link_gbps * 1e3);
        return cost;
    }

  private:
    CostModel m_;
};

} // namespace

UlpCost
Placement::messageCost(Ulp ulp, std::size_t bytes,
                       const LoadContext &ctx) const
{
    const UlpCost cost = computeCost(ulp, bytes, ctx);
    ++eval_.evaluations;
    if (!cost.supported) {
        ++eval_.unsupported;
        return cost;
    }
    eval_.bytes += static_cast<double>(bytes);
    eval_.cpu_cycles += cost.cpu_cycles;
    eval_.dram_bytes += cost.dram_bytes;
    return cost;
}

void
Placement::reportStats(trace::StatsBlock &block) const
{
    block.scalar("evaluations", static_cast<double>(eval_.evaluations));
    block.scalar("unsupported", static_cast<double>(eval_.unsupported));
    block.scalar("bytes", eval_.bytes);
    block.scalar("cpu_cycles", eval_.cpu_cycles);
    block.scalar("dram_bytes", eval_.dram_bytes);
}

std::unique_ptr<Placement>
makePlacement(PlacementKind kind, const CostModel &model)
{
    switch (kind) {
      case PlacementKind::kCpu:
        return std::make_unique<CpuPlacement>(model);
      case PlacementKind::kSmartNic:
        return std::make_unique<SmartNicPlacement>(model);
      case PlacementKind::kQuickAssist:
        return std::make_unique<QatPlacement>(model);
      case PlacementKind::kSmartDimm:
        return std::make_unique<SmartDimmPlacement>(model);
      case PlacementKind::kCxlMem:
        return std::make_unique<CxlMemPlacement>(model);
    }
    SD_PANIC("unknown placement kind");
}

} // namespace sd::offload
