#include "offload/design_space.h"

#include <algorithm>
#include <iterator>
#include <cmath>

namespace sd::offload {

const std::array<std::string, kCriterionCount> &
criterionNames()
{
    static const std::array<std::string, kCriterionCount> names = {
        "low_contention_perf", "high_contention_perf",
        "transport_compat",    "ulp_diversity",
        "loss_resilience",     "transport_flexibility",
    };
    return names;
}

namespace {

/** Map relative throughput (vs. best option) to a 0..5 score. */
double
throughputScore(double cycles, double best_cycles)
{
    // best -> 5, 4x worse -> ~1.25.
    return std::clamp(5.0 * best_cycles / cycles, 0.0, 5.0);
}

} // namespace

std::vector<DesignPoint>
designSpace(const CostModel &model)
{
    constexpr std::size_t kMsg = 16384;

    struct Eval
    {
        PlacementKind kind;
        const char *name;
    };
    const Eval evals[] = {
        {PlacementKind::kCpu, "CPU"},
        {PlacementKind::kSmartNic, "SmartNIC (autonomous)"},
        {PlacementKind::kQuickAssist, "PCIe accelerator"},
        {PlacementKind::kSmartDimm, "SmartDIMM"},
        {PlacementKind::kCxlMem, "CXL.mem SmartDIMM"},
    };
    constexpr std::size_t kOptions = std::size(evals);

    LoadContext quiet;
    quiet.leak_fraction = 0.05;
    LoadContext contended;
    contended.leak_fraction = 0.9;
    LoadContext lossy;
    lossy.leak_fraction = 0.5;
    lossy.loss_events_per_message = 0.05;
    LoadContext lossless;
    lossless.leak_fraction = 0.5;

    // Collect TLS cycle costs at each operating point.
    std::array<double, kOptions> quiet_cycles{};
    std::array<double, kOptions> contended_cycles{};
    std::array<double, kOptions> lossy_cycles{};
    std::array<double, kOptions> lossless_cycles{};
    for (std::size_t i = 0; i < kOptions; ++i) {
        const auto p = makePlacement(evals[i].kind, model);
        quiet_cycles[i] =
            p->messageCost(Ulp::kTlsEncrypt, kMsg, quiet).cpu_cycles +
            model.cpu.base_request_cycles;
        contended_cycles[i] =
            p->messageCost(Ulp::kTlsEncrypt, kMsg, contended)
                .cpu_cycles +
            model.cpu.base_request_cycles;
        lossy_cycles[i] =
            p->messageCost(Ulp::kTlsEncrypt, kMsg, lossy).cpu_cycles +
            model.cpu.base_request_cycles;
        lossless_cycles[i] =
            p->messageCost(Ulp::kTlsEncrypt, kMsg, lossless)
                .cpu_cycles +
            model.cpu.base_request_cycles;
    }
    const double best_quiet =
        *std::min_element(quiet_cycles.begin(), quiet_cycles.end());
    const double best_contended = *std::min_element(
        contended_cycles.begin(), contended_cycles.end());

    std::vector<DesignPoint> points;
    for (std::size_t i = 0; i < kOptions; ++i) {
        DesignPoint point;
        point.option = evals[i].name;
        point.scores[static_cast<std::size_t>(
            Criterion::kLowContentionPerf)] =
            throughputScore(quiet_cycles[i], best_quiet);
        point.scores[static_cast<std::size_t>(
            Criterion::kHighContentionPerf)] =
            throughputScore(contended_cycles[i], best_contended);
        // Loss resilience: how much of the lossless throughput
        // survives a 5% loss-event rate.
        point.scores[static_cast<std::size_t>(
            Criterion::kLossResilience)] =
            std::clamp(5.0 * lossless_cycles[i] / lossy_cycles[i], 0.0,
                       5.0);

        // Structural criteria.
        switch (evals[i].kind) {
          case PlacementKind::kCpu:
            point.scores[static_cast<std::size_t>(
                Criterion::kTransportCompat)] = 5;
            point.scores[static_cast<std::size_t>(
                Criterion::kUlpDiversity)] = 5;
            point.scores[static_cast<std::size_t>(
                Criterion::kTransportFlexibility)] = 5;
            break;
          case PlacementKind::kSmartNic:
            // Below-the-stack placement: size-preserving ULPs only,
            // speculative state tied to TCP behaviour.
            point.scores[static_cast<std::size_t>(
                Criterion::kTransportCompat)] = 3;
            point.scores[static_cast<std::size_t>(
                Criterion::kUlpDiversity)] = 2;
            point.scores[static_cast<std::size_t>(
                Criterion::kTransportFlexibility)] = 4;
            break;
          case PlacementKind::kQuickAssist:
            point.scores[static_cast<std::size_t>(
                Criterion::kTransportCompat)] = 5;
            point.scores[static_cast<std::size_t>(
                Criterion::kUlpDiversity)] = 4;
            point.scores[static_cast<std::size_t>(
                Criterion::kTransportFlexibility)] = 5;
            break;
          case PlacementKind::kSmartDimm:
            point.scores[static_cast<std::size_t>(
                Criterion::kTransportCompat)] = 5;
            point.scores[static_cast<std::size_t>(
                Criterion::kUlpDiversity)] = 4;
            point.scores[static_cast<std::size_t>(
                Criterion::kTransportFlexibility)] = 5;
            break;
          case PlacementKind::kCxlMem:
            // Same above-the-stack CompCpy interface as the local
            // SmartDIMM; the far tier changes timing, not protocol.
            point.scores[static_cast<std::size_t>(
                Criterion::kTransportCompat)] = 5;
            point.scores[static_cast<std::size_t>(
                Criterion::kUlpDiversity)] = 4;
            point.scores[static_cast<std::size_t>(
                Criterion::kTransportFlexibility)] = 5;
            break;
        }
        points.push_back(point);
    }
    return points;
}

} // namespace sd::offload
