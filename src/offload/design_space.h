/**
 * @file
 * The Fig. 13 design-space comparison: each ULP processing option
 * scored against the paper's five criteria. Scores are derived from
 * the placement models where quantitative (contention behaviour,
 * loss resilience) and from protocol-compatibility facts where
 * structural (size-preservation, transport coupling).
 */

#ifndef SD_OFFLOAD_DESIGN_SPACE_H
#define SD_OFFLOAD_DESIGN_SPACE_H

#include <array>
#include <string>
#include <vector>

#include "offload/placement.h"

namespace sd::offload {

/** The evaluation criteria of Fig. 13. */
enum class Criterion : std::size_t
{
    kLowContentionPerf = 0,  ///< performance with a quiet LLC
    kHighContentionPerf,     ///< performance with a thrashed LLC
    kTransportCompat,        ///< works atop TCP and UDP unchanged
    kUlpDiversity,           ///< non-size-preserving / stateful ULPs
    kLossResilience,         ///< performance under drops/reordering
    kTransportFlexibility,   ///< L4 stack remains software-evolvable
    kCount,
};

inline constexpr std::size_t kCriterionCount =
    static_cast<std::size_t>(Criterion::kCount);

/** Human-readable criterion names, indexable by Criterion. */
const std::array<std::string, kCriterionCount> &criterionNames();

/** Scores (0..5) for one option across all criteria. */
struct DesignPoint
{
    std::string option;
    std::array<double, kCriterionCount> scores{};
};

/**
 * Build the comparison. The contention and loss scores are computed
 * by evaluating the placements at quiet/contended and lossless/lossy
 * operating points with the given cost model; structural criteria are
 * fixed by the architecture (e.g. a TOE pins the transport in
 * hardware).
 */
std::vector<DesignPoint> designSpace(const CostModel &model = {});

} // namespace sd::offload

#endif // SD_OFFLOAD_DESIGN_SPACE_H
