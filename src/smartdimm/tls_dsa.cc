#include "smartdimm/tls_dsa.h"

#include <cstring>

#include "common/log.h"
#include "crypto/tls_record.h"

namespace sd::smartdimm {

TlsMessageState::TlsMessageState(const std::uint8_t key[16],
                                 const crypto::GcmIv &iv,
                                 std::size_t message_len,
                                 Cycles line_latency, DsaStats *stats)
    : ctx_(key, crypto::Aes::KeySize::k128),
      gcm_(ctx_, iv, message_len), message_len_(message_len),
      line_latency_(line_latency), stats_(stats)
{
}

Cycles
TlsMessageState::processLine(std::size_t index, const std::uint8_t *in,
                             std::uint8_t *out)
{
    gcm_.processLine(index, in, out);
    if (stats_) {
        ++stats_->tls_lines;
        stats_->tls_busy_cycles += line_latency_;
        if (gcm_.complete())
            ++stats_->tls_messages;
    }
    return line_latency_;
}

TlsDsaJob::TlsDsaJob(std::shared_ptr<TlsMessageState> state,
                     std::size_t page_index)
    : state_(std::move(state)), page_index_(page_index)
{
    const std::size_t msg_len = state_->messageLen();
    const std::size_t page_start = page_index_ * kPageSize;
    SD_ASSERT(page_start < msg_len + crypto::kTlsTagSize,
              "TLS page beyond record");
    page_payload_ = page_start < msg_len
                        ? std::min(kPageSize, msg_len - page_start)
                        : 0;
    payload_lines_ = divCeil(page_payload_, kCacheLineSize);

    // The trailer tag belongs to the page containing byte message_len.
    const std::size_t tag_page = msg_len / kPageSize;
    holds_tag_ = page_index_ == tag_page;

    result_.assign(kPageSize, 0);

    // A tag-only page (message_len on a page boundary) has no payload
    // lines; its single tag line becomes ready when the message
    // completes, checked lazily in resultLine().
}

Cycles
TlsDsaJob::processLine(unsigned line, const std::uint8_t *data)
{
    SD_ASSERT(line < kLinesPerPage, "line index out of page");
    if (line >= payload_lines_)
        return 0; // padding line of the trailer region: nothing to do

    const std::size_t global_line =
        page_index_ * kLinesPerPage + line;
    const Cycles busy = state_->processLine(
        global_line, data, result_.data() + line * kCacheLineSize);
    ready_ |= std::uint64_t{1} << line;
    ++lines_done_;
    if (state_->complete() && holds_tag_)
        placeTag();
    return busy;
}

bool
TlsDsaJob::complete() const
{
    return lines_done_ >= payload_lines_;
}

void
TlsDsaJob::placeTag() const
{
    const crypto::GcmTag tag = state_->finalTag();
    const std::size_t msg_len = state_->messageLen();
    const std::size_t tag_off = msg_len - page_index_ * kPageSize;
    SD_ASSERT(tag_off + crypto::kTlsTagSize <= kPageSize,
              "trailer tag crosses the destination page");
    std::memcpy(result_.data() + tag_off, tag.data(), tag.size());
    // Mark the tag's line(s) ready.
    for (std::size_t b = tag_off / kCacheLineSize;
         b <= (tag_off + crypto::kTlsTagSize - 1) / kCacheLineSize; ++b)
        ready_ |= std::uint64_t{1} << b;
}

std::uint64_t
TlsDsaJob::trailerMask() const
{
    return payload_lines_ >= kLinesPerPage
               ? 0
               : ~std::uint64_t{0} << payload_lines_;
}

std::uint64_t
TlsDsaJob::readyMask() const
{
    // Mirrors resultLine()'s lazy trailer logic: padding lines of a
    // non-tag page are available immediately; the tag page's trailer
    // (tag line + padding) waits for the whole message.
    if (!holds_tag_)
        return ready_ | trailerMask();
    if (state_->complete()) {
        placeTag();
        return ready_ | trailerMask();
    }
    return ready_;
}

bool
TlsDsaJob::resultLine(unsigned line, std::uint8_t *out) const
{
    SD_ASSERT(line < kLinesPerPage, "line index out of page");
    if (!(ready_ & (std::uint64_t{1} << line))) {
        if (line < payload_lines_)
            return false; // payload not yet processed (S13 territory)
        // Trailer-region line: zero padding is available immediately,
        // but the tag line must wait for the whole message.
        if (holds_tag_) {
            if (!state_->complete())
                return false;
            placeTag();
        }
        ready_ |= std::uint64_t{1} << line;
    }
    std::memcpy(out, result_.data() + line * kCacheLineSize,
                kCacheLineSize);
    return true;
}

std::size_t
TlsDsaJob::resultBytes() const
{
    std::size_t bytes = page_payload_;
    if (holds_tag_)
        bytes = state_->messageLen() - page_index_ * kPageSize +
                crypto::kTlsTagSize;
    return std::min(bytes, kPageSize);
}

} // namespace sd::smartdimm
