/**
 * @file
 * Deflate DSA job (Sec. V-B): page-granular streaming compression.
 * Source lines must arrive in order (the CompCpy ordered mode inserts
 * fences); the compressed page — a 2-byte length header plus the
 * fixed-Huffman stream — becomes available once the final line has
 * been consumed.
 */

#ifndef SD_SMARTDIMM_DEFLATE_DSA_H
#define SD_SMARTDIMM_DEFLATE_DSA_H

#include <vector>

#include "common/types.h"
#include "compress/hw_deflate.h"
#include "smartdimm/dsa.h"

namespace sd::smartdimm {

/**
 * Maximum payload per deflate offload page: the 2-byte frame header
 * plus worst-case stored-block expansion (5 bytes) must still fit the
 * single destination page the software registers (Sec. V-C).
 */
inline constexpr std::size_t kDeflateMaxPayload =
    kPageSize - 2 - 5;

/** One page-granular compression offload. */
class DeflateDsaJob : public DsaJob
{
  public:
    /**
     * @param payload_bytes valid bytes within the source page
     * @param hw_config pipeline geometry (8-byte window, 8 banks...)
     * @param line_latency busy cycles per consumed source line
     * @param stats optional aggregate counters (buffer-device owned)
     */
    DeflateDsaJob(std::size_t payload_bytes,
                  const compress::HwDeflateConfig &hw_config,
                  Cycles line_latency, DsaStats *stats = nullptr);

    UlpKind kind() const override { return UlpKind::kDeflate; }
    bool ordered() const override { return true; }

    Cycles processLine(unsigned line, const std::uint8_t *data) override;
    bool complete() const override { return done_; }
    bool resultLine(unsigned line, std::uint8_t *out) const override;
    /** Streaming ULP: the whole page appears at completion. */
    std::uint64_t
    readyMask() const override
    {
        return done_ ? ~std::uint64_t{0} : 0;
    }
    std::size_t resultBytes() const override;

    /** Pipeline statistics of the finished page. */
    const compress::HwDeflateStats &hwStats() const { return hw_stats_; }

    /** True after an out-of-order line poisoned the stream. */
    bool poisoned() const { return poisoned_; }

  private:
    std::size_t payload_bytes_;
    std::size_t payload_lines_;
    compress::HwDeflateConfig hw_config_;
    Cycles line_latency_;
    std::vector<std::uint8_t> input_;
    std::vector<std::uint8_t> result_;
    compress::HwDeflateStats hw_stats_{};
    DsaStats *stats_ = nullptr;
    unsigned next_line_ = 0;
    bool done_ = false;
    bool poisoned_ = false;
};

} // namespace sd::smartdimm

#endif // SD_SMARTDIMM_DEFLATE_DSA_H
