/**
 * @file
 * Config Memory (Sec. IV-C / V): a 64-byte-addressable block memory
 * holding a fixed context slot per registered source page (1 KB for
 * TLS: key schedule H powers, EIV, offsets). For the Deflate DSA the
 * same array doubles as the 8-bank candidate store, so a bank-port
 * model is exposed for the conflict accounting.
 */

#ifndef SD_SMARTDIMM_CONFIG_MEMORY_H
#define SD_SMARTDIMM_CONFIG_MEMORY_H

#include <cstdint>
#include <optional>
#include <vector>

#include "common/types.h"

namespace sd::smartdimm {

/** Config Memory counters. */
struct ConfigMemoryStats
{
    std::uint64_t context_writes = 0;
    std::uint64_t context_reads = 0;
    std::uint64_t slot_allocs = 0;
};

/** Page-slot allocator + context storage. */
class ConfigMemory
{
  public:
    /**
     * @param total_bytes capacity (paper: 8 MB)
     * @param context_bytes per-page context size (paper: 1 KB)
     */
    ConfigMemory(std::size_t total_bytes, std::size_t context_bytes);

    /** Allocate a context slot. @return slot id or nullopt when full. */
    std::optional<std::uint32_t> allocate();

    /** Release a slot after its offload completes. */
    void release(std::uint32_t slot);

    /** Write @p len bytes of context at @p offset within @p slot. */
    void write(std::uint32_t slot, std::size_t offset,
               const std::uint8_t *data, std::size_t len);

    /** Read context bytes back (DSA-side). */
    void read(std::uint32_t slot, std::size_t offset, std::uint8_t *dst,
              std::size_t len) const;

    std::size_t freeSlots() const { return free_.size(); }
    std::size_t capacitySlots() const { return slots_; }
    std::size_t contextBytes() const { return context_bytes_; }

    const ConfigMemoryStats &stats() const { return stats_; }
    void resetStats() { stats_ = ConfigMemoryStats{}; }

  private:
    std::size_t slots_;
    std::size_t context_bytes_;
    std::vector<std::uint8_t> data_;
    std::vector<std::uint32_t> free_;
    ConfigMemoryStats stats_;
};

} // namespace sd::smartdimm

#endif // SD_SMARTDIMM_CONFIG_MEMORY_H
