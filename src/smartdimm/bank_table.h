/**
 * @file
 * Bank Table (Fig. 5): one entry per bank in the rank recording the
 * currently active row, updated by RAS (activate) and Precharge
 * commands. Together with the Addr Remap block it lets the buffer
 * device regenerate the physical address of every CAS — essential
 * because BG/BA/Row/Col alone cannot identify the OS page.
 *
 * Concurrency contract: single-owner. The table mirrors one channel's
 * command bus, and a channel is driven by exactly one thread's
 * EventQueue; onCommand() spot-checks the contract.
 */

#ifndef SD_SMARTDIMM_BANK_TABLE_H
#define SD_SMARTDIMM_BANK_TABLE_H

#include <cstdint>
#include <optional>
#include <vector>

#include "common/log.h"
#include "common/thread_annotations.h"
#include "mem/address_map.h"
#include "mem/dram_command.h"

namespace sd::smartdimm {

/** Active-row tracking for every bank behind this buffer device. */
class BankTable
{
  public:
    explicit BankTable(const mem::DramGeometry &geometry)
        : geometry_(geometry), rows_(geometry.totalBanks())
    {
    }

    /** Apply a RAS/PRE command. */
    void
    onCommand(const mem::DdrCommand &cmd)
    {
        owner_.check();
        const unsigned bank = cmd.coord.flatBank(geometry_);
        switch (cmd.type) {
          case mem::DdrCommandType::kActivate:
            rows_[bank] = cmd.coord.row;
            break;
          case mem::DdrCommandType::kPrecharge:
            rows_[bank].reset();
            break;
          default:
            break;
        }
    }

    /** @return the open row for the CAS's bank (must be open). */
    std::uint64_t
    activeRow(const mem::DramCoord &coord) const
    {
        const unsigned bank = coord.flatBank(geometry_);
        SD_ASSERT(rows_[bank].has_value(),
                  "CAS to a closed bank %u — controller bug", bank);
        return *rows_[bank];
    }

  private:
    mem::DramGeometry geometry_;
    /** Runtime spot-check of the single-owner contract. */
    SingleOwnerChecker owner_;
    std::vector<std::optional<std::uint64_t>> rows_;
};

} // namespace sd::smartdimm

#endif // SD_SMARTDIMM_BANK_TABLE_H
