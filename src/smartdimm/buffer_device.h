/**
 * @file
 * The SmartDIMM buffer device: the Arbiter of Fig. 5/6 wired between
 * the DDR PHY (the memory controller's command stream) and the DRAM
 * chips (the backing store). It decodes every CAS, regenerates the
 * physical address through the Bank Table + Addr Remap, consults the
 * cuckoo Translation Table, and either behaves as a plain DIMM or
 * performs near-memory computation:
 *
 *  - rdCAS in an sbuf range: DRAM data goes to the host unchanged
 *    while a tap feeds the DSA; results stage in the Scratchpad.
 *  - wrCAS in a dbuf range: the burst's data is *replaced* by the
 *    staged result on its way to DRAM and the Scratchpad line is
 *    invalidated (Self-Recycle). If the DSA has not finished the
 *    line, the write is ignored (S7).
 *  - rdCAS in a dbuf range: served from the Scratchpad when staged
 *    (S10); ALERT_N retry when computation is pending (S13).
 *  - CAS in the MMIO window: config-space access (registration,
 *    freePages, pending list).
 */

#ifndef SD_SMARTDIMM_BUFFER_DEVICE_H
#define SD_SMARTDIMM_BUFFER_DEVICE_H

#include <array>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "compress/hw_deflate.h"
#include "fault/fault.h"
#include "mem/backing_store.h"
#include "mem/dram_command.h"
#include "sim/clock.h"
#include "sim/event_queue.h"
#include "smartdimm/bank_table.h"
#include "smartdimm/config.h"
#include "smartdimm/config_memory.h"
#include "smartdimm/cuckoo_table.h"
#include "smartdimm/dsa.h"
#include "smartdimm/scratchpad.h"
#include "smartdimm/tls_dsa.h"
#include "trace/trace.h"

namespace sd::smartdimm {

/** Arbiter decision counters, one per Fig. 6 state of interest. */
struct ArbiterStats
{
    std::uint64_t plain_reads = 0;       ///< non-acceleration rdCAS
    std::uint64_t plain_writes = 0;      ///< non-acceleration wrCAS
    std::uint64_t mmio_reads = 0;
    std::uint64_t mmio_writes = 0;
    std::uint64_t sbuf_reads = 0;        ///< S6: DSA fed
    std::uint64_t dbuf_recycles = 0;     ///< S8/S9: self-recycle drains
    std::uint64_t dbuf_write_ignored = 0; ///< S7: compute pending
    std::uint64_t dbuf_scratch_reads = 0; ///< S10
    std::uint64_t alert_n = 0;            ///< S13
    std::uint64_t registrations = 0;      ///< S17
    std::uint64_t rejected_registrations = 0; ///< resources exhausted
    std::uint64_t freepages_lies = 0;     ///< injected kFreePages lies
    std::uint64_t addr_remap_checks = 0;
    std::uint64_t doorbell_rings = 0;     ///< kQueueDoorbell writes
    std::uint64_t completion_acks = 0;    ///< kQueueComplete writes
};

/** Device-side view of one host work queue (kQueueStatus contents). */
struct DeviceQueueState
{
    std::uint32_t submitted = 0; ///< doorbells rung
    std::uint32_t completed = 0; ///< completion acks
};

/** The buffer device, slotted behind a channel's memory controller. */
class BufferDevice : public mem::DimmDevice
{
  public:
    /**
     * @param events simulation clock for DSA-latency modelling
     * @param map the channel's address map (the Addr Remap contents)
     * @param store DRAM chips behind the MIG PHY
     */
    BufferDevice(EventQueue &events, const mem::AddressMap &map,
                 mem::BackingStore &store,
                 const SmartDimmConfig &config = {});

    // ----- DimmDevice --------------------------------------------------------

    void onCommand(const mem::DdrCommand &cmd) override;
    mem::ReadResponse onRead(const mem::DdrCommand &cmd,
                             std::uint8_t *data) override;
    void onWrite(const mem::DdrCommand &cmd,
                 const std::uint8_t *data) override;

    // ----- observability -----------------------------------------------------

    const ArbiterStats &stats() const { return stats_; }
    const DsaStats &dsaStats() const { return dsa_stats_; }
    const Scratchpad &scratchpad() const { return scratchpad_; }

    /** kQueueStatus contents for queue @p id (zeroes when untracked). */
    DeviceQueueState
    queueState(std::size_t id) const
    {
        return id < kMaxDeviceQueues ? queues_[id] : DeviceQueueState{};
    }

    /** Contribute arbiter + DSA + scratchpad counters to a dump. */
    void reportStats(trace::StatsBlock &block) const;
    const ConfigMemory &configMemory() const { return config_memory_; }
    const CuckooTable &translationTable() const { return translation_; }
    CuckooTable &translationTable() { return translation_; }
    const SmartDimmConfig &config() const { return config_; }

    /** Hardware deflate pipeline geometry used for new jobs. */
    compress::HwDeflateConfig &deflateConfig() { return deflate_config_; }

    /**
     * Attach a fault plan (not owned; may be null). Device-side sites:
     * kFreePagesLie (the freePages register reports zero, pushing the
     * software into Alg. 1's Force-Recycle), kScratchpadExhaust and
     * kConfigMemExhaust (a registration's allocation fails and the
     * registration is rejected), plus the cuckoo-table sites, which
     * are forwarded to the Translation Table.
     */
    void
    setFaultPlan(fault::FaultPlan *plan)
    {
        fault_plan_ = plan;
        translation_.setFaultPlan(plan);
    }

    /**
     * Name this device's position in the topology so scoped fault
     * rules (`smartdimm[ch][dimm]/...`) can target it. The scope is
     * forwarded to the Translation Table for the cuckoo sites.
     */
    void
    setFaultScope(const fault::FaultScope &scope)
    {
        fault_scope_ = scope;
        translation_.setFaultScope(scope);
    }

    /** @return true when @p addr falls in the MMIO window. */
    bool
    isMmio(Addr addr) const
    {
        return addr >= config_.mmio_base &&
               addr < config_.mmio_base + config_.mmio_bytes;
    }

  private:
    struct SourceEntry
    {
        std::shared_ptr<DsaJob> job;
        std::uint64_t dbuf_page = 0;   ///< physical page number
        std::uint32_t config_slot = 0;
        std::uint64_t fed_lines = 0;   ///< bitmap: lines already tapped
    };

    struct DestEntry
    {
        std::shared_ptr<DsaJob> job;
        std::uint64_t sbuf_page = 0;
        std::uint32_t scratch_page = 0;
        /** Lines already copied into the Scratchpad (mirrors the
         *  scratch page's computed bits while the mapping lives). */
        std::uint64_t staged = 0;
    };

    void handleMmioWrite(Addr addr, const std::uint8_t *data);
    void handleMmioRead(Addr addr, std::uint8_t *data);
    void registerTls(const std::uint8_t *data);
    void registerDeflate(const std::uint8_t *data);
    /** Consult the fault plan for @p site (false with no plan). */
    bool injectFault(fault::Site site);
    /** Count + trace a rejected registration of @p dbuf_page. */
    void rejectRegistration(std::uint64_t dbuf_page);
    void feedDsa(std::uint64_t sbuf_page, unsigned line,
                 const std::uint8_t *data);
    /** Stage every currently-available result line of @p dbuf_page. */
    void materializeResults(std::uint64_t dbuf_page);
    /** Tear down the mappings once @p dbuf_page fully drained. */
    void retirePage(std::uint64_t dbuf_page);

    EventQueue &events_;
    const mem::AddressMap &map_;
    mem::BackingStore &store_;
    SmartDimmConfig config_;
    compress::HwDeflateConfig deflate_config_;

    BankTable bank_table_;
    CuckooTable translation_;
    Scratchpad scratchpad_;
    ConfigMemory config_memory_;
    ClockDomain buffer_clock_{2500}; // 400 MHz

    std::unordered_map<std::uint64_t, SourceEntry> sources_;
    std::unordered_map<std::uint64_t, DestEntry> dests_;
    /** Per-TLS-record shared DSA state, keyed by software message id. */
    std::unordered_map<std::uint64_t, std::shared_ptr<TlsMessageState>>
        message_states_;
    /** Destination pages registered for each TLS record, so trailer
     *  (tag-only) pages materialise when the record completes. */
    std::unordered_map<std::uint64_t, std::vector<std::uint64_t>>
        message_pages_;
    /** Reverse index: sbuf page -> TLS message id. */
    std::unordered_map<std::uint64_t, std::uint64_t> sbuf_message_;

    fault::FaultPlan *fault_plan_ = nullptr;
    fault::FaultScope fault_scope_;
    ArbiterStats stats_;
    DsaStats dsa_stats_;
    /** Per-queue doorbell/ack counters surfaced via kQueueStatus. */
    std::array<DeviceQueueState, kMaxDeviceQueues> queues_{};
};

} // namespace sd::smartdimm

#endif // SD_SMARTDIMM_BUFFER_DEVICE_H
