/**
 * @file
 * SmartDIMM buffer-device configuration (paper defaults, Sec. VI):
 * 8 MB Scratchpad, 8 MB Config Memory, 4 KB pages, 12288 translation
 * entries (3-ary cuckoo sized 3x the 4096 required entries), 8-entry
 * insertion CAM, buffer device at 1/4 the DRAM clock.
 */

#ifndef SD_SMARTDIMM_CONFIG_H
#define SD_SMARTDIMM_CONFIG_H

#include <cstdint>

#include "common/types.h"

namespace sd::smartdimm {

/** Geometry and policy of one SmartDIMM buffer device. */
struct SmartDimmConfig
{
    /** Scratchpad capacity (paper: 8 MB = 2048 pages). */
    std::size_t scratchpad_bytes = 8ULL << 20;

    /** Config Memory capacity (paper: 8 MB). */
    std::size_t config_memory_bytes = 8ULL << 20;

    /** Per-source-page context slot (paper: 1 KB for TLS). */
    std::size_t context_bytes = 1024;

    /** Translation Table entries (3x the 4096 required -> <33% load). */
    std::size_t translation_entries = 12288;

    /** Fast-insert CAM entries in front of the cuckoo table. */
    std::size_t cam_entries = 8;

    /**
     * DSA latency per 64-byte cacheline in buffer-device cycles.
     * Measured slack on AxDIMM exceeds 1 us (Sec. IV-D), so anything
     * well under 400 cycles (1 us at 400 MHz) never stalls the host.
     */
    Cycles dsa_line_latency = 24;

    /** Base of the MMIO config window within the DIMM address range. */
    Addr mmio_base = 0xF000'0000ULL;

    /** Size of the MMIO config window. */
    std::size_t mmio_bytes = 1ULL << 20;

    std::size_t
    scratchpadPages() const
    {
        return scratchpad_bytes / kPageSize;
    }

    std::size_t
    configPages() const
    {
        return config_memory_bytes / kPageSize;
    }
};

/** MMIO register offsets (64-byte-register granularity). */
enum class MmioReg : Addr
{
    kFreePages = 0x000,     ///< RO: current free scratchpad pages
    kRegister = 0x040,      ///< WO: (sbuf, dbuf, context ref) registration
    kPendingList = 0x080,   ///< RO: pending (un-recycled) page addresses
    kContextWrite = 0x0C0,  ///< WO: streaming context payload writes
    kFaultStatus = 0x100,   ///< RO: rejected registrations, lie count
    kQueueDoorbell = 0x140, ///< WO: work-queue descriptor submission ring
    kQueueComplete = 0x180, ///< WO: work-queue descriptor completion ack
    kQueueStatus = 0x1C0,   ///< RO: per-queue submitted/completed counts
};

/** Work queues the device tracks in its kQueueStatus register (one
 *  count word + 7 per-queue words fit the 64-byte read). */
inline constexpr std::size_t kMaxDeviceQueues = 7;

} // namespace sd::smartdimm

#endif // SD_SMARTDIMM_CONFIG_H
