/**
 * @file
 * Domain-Specific Accelerator interface (Sec. V). A DSA is configured
 * per offload with the context the CPU wrote through MMIO, then
 * consumes 64-byte cachelines as rdCAS commands deliver them —
 * possibly out of order for size-preserving ULPs, strictly in order
 * for streaming ones — and produces result lines for the Scratchpad.
 */

#ifndef SD_SMARTDIMM_DSA_H
#define SD_SMARTDIMM_DSA_H

#include <cstdint>
#include <memory>
#include <vector>

#include "common/types.h"

namespace sd::smartdimm {

static_assert(kLinesPerPage <= 64,
              "DsaJob::readyMask() packs line state into a uint64_t");

/** Kinds of offloads the prototype supports. */
enum class UlpKind : std::uint8_t
{
    kTlsEncrypt, ///< AES-GCM record protection (size-preserving)
    kDeflate,    ///< page-granular compression (non-size-preserving)
};

/**
 * Aggregate DSA activity counters, owned by the buffer device and
 * updated by the jobs it spawns (the jobs themselves are transient,
 * per-page objects).
 */
struct DsaStats
{
    std::uint64_t tls_lines = 0;          ///< cachelines encrypted
    std::uint64_t tls_messages = 0;       ///< records completed
    std::uint64_t tls_busy_cycles = 0;    ///< AES/GHASH pipe busy
    std::uint64_t deflate_lines = 0;      ///< cachelines consumed
    std::uint64_t deflate_pages = 0;      ///< pages compressed
    std::uint64_t deflate_busy_cycles = 0;
    std::uint64_t deflate_output_bytes = 0;
    std::uint64_t deflate_order_faults = 0; ///< fence violations (poisoned)
};

/**
 * Per-offload DSA state machine. One instance exists per registered
 * source page; the arbiter feeds it lines and collects results.
 */
class DsaJob
{
  public:
    virtual ~DsaJob() = default;

    /** ULP this job implements. */
    virtual UlpKind kind() const = 0;

    /**
     * Process the source page's cacheline @p line (0..63) carrying
     * @p data. Appends zero or more result lines via resultLine().
     * @return DSA busy time in buffer-device cycles for this line.
     */
    virtual Cycles processLine(unsigned line,
                               const std::uint8_t *data) = 0;

    /** @return true once every source line has been consumed. */
    virtual bool complete() const = 0;

    /**
     * Whether the job requires in-order line delivery (Deflate). The
     * CompCpy software inserts fences when true (Alg. 2 line 24).
     */
    virtual bool ordered() const = 0;

    /**
     * Result for destination line @p line. Size-preserving ULPs have
     * a result per source line as soon as that source line processed;
     * streaming ULPs produce results only at completion.
     * @return true when the result line is available in @p out.
     */
    virtual bool resultLine(unsigned line, std::uint8_t *out) const = 0;

    /**
     * Bitmask of destination lines whose result is currently
     * available: bit @c i is set exactly when resultLine(i) would
     * return true. Lets the arbiter stage only newly-available lines
     * instead of probing all 64 per wakeup.
     */
    virtual std::uint64_t readyMask() const = 0;

    /** Valid destination bytes (== 4 KB for size-preserving ULPs). */
    virtual std::size_t resultBytes() const = 0;
};

} // namespace sd::smartdimm

#endif // SD_SMARTDIMM_DSA_H
