#include "smartdimm/config_memory.h"

#include <cstring>

#include "common/log.h"

namespace sd::smartdimm {

ConfigMemory::ConfigMemory(std::size_t total_bytes,
                           std::size_t context_bytes)
    : slots_(total_bytes / context_bytes), context_bytes_(context_bytes),
      data_(total_bytes, 0)
{
    SD_ASSERT(slots_ > 0, "config memory smaller than one context");
    free_.reserve(slots_);
    for (std::size_t i = slots_; i > 0; --i)
        free_.push_back(static_cast<std::uint32_t>(i - 1));
}

std::optional<std::uint32_t>
ConfigMemory::allocate()
{
    if (free_.empty())
        return std::nullopt;
    const std::uint32_t slot = free_.back();
    free_.pop_back();
    std::memset(data_.data() + slot * context_bytes_, 0, context_bytes_);
    ++stats_.slot_allocs;
    return slot;
}

void
ConfigMemory::release(std::uint32_t slot)
{
    SD_ASSERT(slot < slots_, "config slot out of range");
    free_.push_back(slot);
}

void
ConfigMemory::write(std::uint32_t slot, std::size_t offset,
                    const std::uint8_t *data, std::size_t len)
{
    SD_ASSERT(slot < slots_ && offset + len <= context_bytes_,
              "context write out of range");
    std::memcpy(data_.data() + slot * context_bytes_ + offset, data, len);
    ++stats_.context_writes;
}

void
ConfigMemory::read(std::uint32_t slot, std::size_t offset,
                   std::uint8_t *dst, std::size_t len) const
{
    SD_ASSERT(slot < slots_ && offset + len <= context_bytes_,
              "context read out of range");
    std::memcpy(dst, data_.data() + slot * context_bytes_ + offset, len);
    const_cast<ConfigMemoryStats &>(stats_).context_reads++;
}

} // namespace sd::smartdimm
