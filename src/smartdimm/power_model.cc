#include "smartdimm/power_model.h"

#include <algorithm>

namespace sd::smartdimm {

namespace {

/** DDR4-3200 single-channel peak: 25.6 GB/s. */
constexpr double kChannelPeakBytesPerSec = 25.6e9;

/** FPGA fabric shares per block (TLS offload build, Sec. VII-D). */
struct FabricShare
{
    const char *component;
    double pct;
};

constexpr FabricShare kFabric[] = {
    {"ddr_mig_phy", 6.5},
    {"slot_decoder_bank_table", 1.2},
    {"translation_table", 2.6},
    {"scratchpad_ctrl", 3.1},
    {"config_memory", 1.9},
    {"tls_dsa", 6.5},
};

} // namespace

double
peakDynamicWatts(const EnergyModel &energy)
{
    // At full channel rate every 64-byte slot carries a CAS: one
    // translation lookup + PHY passthrough, and (worst case for the
    // accelerated path) a DSA line op plus scratchpad write on reads
    // and a scratchpad drain on writes.
    const double lines_per_sec = kChannelPeakBytesPerSec / kCacheLineSize;
    const double per_line_pj =
        energy.translation_lookup_pj + energy.phy_passthrough_pj +
        energy.dsa_tls_line_pj / 2.0 + // half the slots are reads
        energy.scratchpad_access_pj;
    return lines_per_sec * per_line_pj * 1e-12;
}

PowerReport
estimatePower(const BufferDevice &device, Tick window_ticks,
              std::uint64_t channel_bytes, const EnergyModel &energy)
{
    PowerReport report;
    if (window_ticks == 0)
        return report;
    const double seconds =
        static_cast<double>(window_ticks) / kTicksPerSecond;

    const ArbiterStats &arb = device.stats();
    const ScratchpadStats &sp = device.scratchpad().stats();
    const CuckooStats &tt = device.translationTable().stats();
    const ConfigMemoryStats &cm = device.configMemory().stats();

    const double tt_j = static_cast<double>(tt.lookups) *
                        energy.translation_lookup_pj * 1e-12;
    const double sp_j =
        static_cast<double>(sp.reads + sp.writes + sp.self_recycles) *
        energy.scratchpad_access_pj * 1e-12;
    const double cm_j =
        static_cast<double>(cm.context_reads + cm.context_writes) *
        energy.config_access_pj * 1e-12;
    const double dsa_j = static_cast<double>(arb.sbuf_reads) *
                         energy.dsa_tls_line_pj * 1e-12;
    const double phy_events = static_cast<double>(
        arb.plain_reads + arb.plain_writes + arb.sbuf_reads +
        arb.dbuf_recycles + arb.dbuf_scratch_reads + arb.mmio_reads +
        arb.mmio_writes);
    const double phy_j = phy_events * energy.phy_passthrough_pj * 1e-12;

    const double total_w =
        (tt_j + sp_j + cm_j + dsa_j + phy_j) / seconds;

    report.rows = {
        {"ddr_mig_phy", phy_j / seconds, kFabric[0].pct},
        {"slot_decoder_bank_table", 0.08 * total_w, kFabric[1].pct},
        {"translation_table", tt_j / seconds, kFabric[2].pct},
        {"scratchpad_ctrl", sp_j / seconds, kFabric[3].pct},
        {"config_memory", cm_j / seconds, kFabric[4].pct},
        {"tls_dsa", dsa_j / seconds, kFabric[5].pct},
    };
    report.dynamic_watts = total_w;
    report.channel_utilization =
        static_cast<double>(channel_bytes) /
        (kChannelPeakBytesPerSec * seconds);
    for (const auto &row : kFabric)
        report.fpga_resources_pct += row.pct;
    return report;
}

} // namespace sd::smartdimm
