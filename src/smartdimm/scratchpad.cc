#include "smartdimm/scratchpad.h"

#include <algorithm>
#include <cstring>

#include "common/log.h"

namespace sd::smartdimm {

Scratchpad::Scratchpad(std::size_t pages) : pages_(pages)
{
    SD_ASSERT(pages > 0, "empty scratchpad");
    free_.reserve(pages);
    for (std::size_t i = pages; i > 0; --i)
        free_.push_back(static_cast<std::uint32_t>(i - 1));
}

std::optional<std::uint32_t>
Scratchpad::allocate()
{
    owner_.check();
    if (free_.empty())
        return std::nullopt;
    const std::uint32_t slot = free_.back();
    free_.pop_back();
    Page &page = pages_[slot];
    page.allocated = true;
    page.pending.set(); // every line awaits drain
    page.computed.reset();
    page.data.assign(kPageSize, 0);
    ++stats_.allocs;
    stats_.peak_pages = std::max<std::uint64_t>(stats_.peak_pages,
                                                livePages());
    return slot;
}

std::size_t
Scratchpad::livePages() const
{
    return pages_.size() - free_.size();
}

void
Scratchpad::writeLine(std::uint32_t page, unsigned line,
                      const std::uint8_t *data, bool computed)
{
    owner_.check();
    SD_ASSERT(page < pages_.size() && line < kLinesPerPage,
              "scratchpad write out of range");
    Page &p = pages_[page];
    SD_ASSERT(p.allocated, "write to unallocated scratchpad page");
    std::memcpy(p.data.data() + line * kCacheLineSize, data,
                kCacheLineSize);
    if (computed)
        p.computed.set(line);
    ++stats_.writes;
}

void
Scratchpad::readLine(std::uint32_t page, unsigned line, std::uint8_t *dst)
{
    SD_ASSERT(page < pages_.size() && line < kLinesPerPage,
              "scratchpad read out of range");
    const Page &p = pages_[page];
    SD_ASSERT(p.allocated, "read from unallocated scratchpad page");
    std::memcpy(dst, p.data.data() + line * kCacheLineSize,
                kCacheLineSize);
    ++stats_.reads;
}

bool
Scratchpad::lineComputed(std::uint32_t page, unsigned line) const
{
    const Page &p = pages_[page];
    return p.allocated && p.computed.test(line);
}

bool
Scratchpad::linePending(std::uint32_t page, unsigned line) const
{
    const Page &p = pages_[page];
    return p.allocated && p.pending.test(line);
}

void
Scratchpad::markComputed(std::uint32_t page, unsigned line)
{
    owner_.check();
    SD_ASSERT(pages_[page].allocated, "mark on unallocated page");
    pages_[page].computed.set(line);
}

bool
Scratchpad::drainLine(std::uint32_t page, unsigned line,
                      std::uint8_t *drained)
{
    owner_.check();
    Page &p = pages_[page];
    SD_ASSERT(p.allocated && p.pending.test(line),
              "drain of a non-pending scratchpad line");
    std::memcpy(drained, p.data.data() + line * kCacheLineSize,
                kCacheLineSize);
    p.pending.reset(line);
    ++stats_.self_recycles;
    if (p.pending.none()) {
        freePage(page);
        return true;
    }
    return false;
}

void
Scratchpad::forceDrainPage(std::uint32_t page, std::uint8_t *page_data)
{
    owner_.check();
    Page &p = pages_[page];
    SD_ASSERT(p.allocated, "force-drain of unallocated page");
    std::memcpy(page_data, p.data.data(), kPageSize);
    p.pending.reset();
    ++stats_.force_recycles;
    freePage(page);
}

void
Scratchpad::release(std::uint32_t page)
{
    owner_.check();
    Page &p = pages_[page];
    SD_ASSERT(p.allocated, "release of unallocated scratchpad page");
    p.pending.reset();
    freePage(page);
}

std::vector<std::uint32_t>
Scratchpad::pendingPages() const
{
    std::vector<std::uint32_t> out;
    for (std::size_t i = 0; i < pages_.size(); ++i)
        if (pages_[i].allocated)
            out.push_back(static_cast<std::uint32_t>(i));
    return out;
}

void
Scratchpad::freePage(std::uint32_t page)
{
    Page &p = pages_[page];
    p.allocated = false;
    p.computed.reset();
    free_.push_back(page);
}

} // namespace sd::smartdimm
