/**
 * @file
 * Wire format of SmartDIMM's 64-byte MMIO registers (Sec. IV-C): one
 * write registers a source/destination page pair plus the context the
 * DSA needs. The layouts are packed to fit a single 64-byte MMIO
 * burst, exactly as the paper requires.
 */

#ifndef SD_SMARTDIMM_MMIO_LAYOUT_H
#define SD_SMARTDIMM_MMIO_LAYOUT_H

#include <cstdint>
#include <cstring>

#include "common/types.h"

namespace sd::smartdimm {

/** Registration opcodes. */
enum class MmioOpcode : std::uint16_t
{
    kRegisterTlsPage = 1,
    kRegisterDeflatePage = 2,
    kUnregisterPage = 3,
};

/** TLS page registration: 60 of 64 bytes used. */
struct TlsPageRegistration
{
    std::uint16_t opcode = static_cast<std::uint16_t>(
        MmioOpcode::kRegisterTlsPage);
    std::uint16_t page_index = 0;  ///< page position within the record
    std::uint32_t message_len = 0; ///< total plaintext bytes
    std::uint64_t sbuf_page = 0;   ///< physical page number (addr>>12)
    std::uint64_t dbuf_page = 0;
    std::uint64_t message_id = 0;  ///< groups pages of one record
    std::uint8_t key[16] = {};
    std::uint8_t iv[12] = {};

    /** Serialise into a 64-byte MMIO burst. */
    void
    pack(std::uint8_t out[kCacheLineSize]) const
    {
        std::memset(out, 0, kCacheLineSize);
        std::memcpy(out, this, sizeof(*this));
    }

    static TlsPageRegistration
    unpack(const std::uint8_t in[kCacheLineSize])
    {
        TlsPageRegistration reg;
        std::memcpy(&reg, in, sizeof(reg));
        return reg;
    }
};
static_assert(sizeof(TlsPageRegistration) <= kCacheLineSize,
              "registration must fit one MMIO burst");

/** Deflate page registration. */
struct DeflatePageRegistration
{
    std::uint16_t opcode = static_cast<std::uint16_t>(
        MmioOpcode::kRegisterDeflatePage);
    std::uint16_t payload_bytes = 0; ///< valid bytes in the source page
    std::uint32_t reserved = 0;
    std::uint64_t sbuf_page = 0;
    std::uint64_t dbuf_page = 0;

    void
    pack(std::uint8_t out[kCacheLineSize]) const
    {
        std::memset(out, 0, kCacheLineSize);
        std::memcpy(out, this, sizeof(*this));
    }

    static DeflatePageRegistration
    unpack(const std::uint8_t in[kCacheLineSize])
    {
        DeflatePageRegistration reg;
        std::memcpy(&reg, in, sizeof(reg));
        return reg;
    }
};
static_assert(sizeof(DeflatePageRegistration) <= kCacheLineSize,
              "registration must fit one MMIO burst");

/**
 * Work-queue doorbell ring: one write to MmioReg::kQueueDoorbell tells
 * the device a descriptor (possibly a batch of ops) entered queue
 * `queue`. The device only counts — dispatch stays host-side — but the
 * count is what poll-timeout recovery diffs against after a dropped
 * completion record.
 */
struct QueueDoorbell
{
    std::uint16_t queue = 0;     ///< work-queue id (< kMaxDeviceQueues)
    std::uint16_t submitter = 0; ///< logical submitter (shared queues)
    std::uint32_t ops = 0;       ///< ops packed in the descriptor
    std::uint64_t seq = 0;       ///< descriptor id within the queue

    void
    pack(std::uint8_t out[kCacheLineSize]) const
    {
        std::memset(out, 0, kCacheLineSize);
        std::memcpy(out, this, sizeof(*this));
    }

    static QueueDoorbell
    unpack(const std::uint8_t in[kCacheLineSize])
    {
        QueueDoorbell db;
        std::memcpy(&db, in, sizeof(db));
        return db;
    }
};
static_assert(sizeof(QueueDoorbell) <= kCacheLineSize,
              "doorbell must fit one MMIO burst");

/** Completion acknowledgement written to MmioReg::kQueueComplete when
 *  every op of a descriptor finished; mirrors QueueDoorbell. */
struct QueueCompletion
{
    std::uint16_t queue = 0;
    std::uint16_t status = 0; ///< compcpy::CompletionStatus value
    std::uint32_t ops = 0;
    std::uint64_t seq = 0;

    void
    pack(std::uint8_t out[kCacheLineSize]) const
    {
        std::memset(out, 0, kCacheLineSize);
        std::memcpy(out, this, sizeof(*this));
    }

    static QueueCompletion
    unpack(const std::uint8_t in[kCacheLineSize])
    {
        QueueCompletion qc;
        std::memcpy(&qc, in, sizeof(qc));
        return qc;
    }
};
static_assert(sizeof(QueueCompletion) <= kCacheLineSize,
              "completion ack must fit one MMIO burst");

} // namespace sd::smartdimm

#endif // SD_SMARTDIMM_MMIO_LAYOUT_H
