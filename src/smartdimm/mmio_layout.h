/**
 * @file
 * Wire format of SmartDIMM's 64-byte MMIO registers (Sec. IV-C): one
 * write registers a source/destination page pair plus the context the
 * DSA needs. The layouts are packed to fit a single 64-byte MMIO
 * burst, exactly as the paper requires.
 */

#ifndef SD_SMARTDIMM_MMIO_LAYOUT_H
#define SD_SMARTDIMM_MMIO_LAYOUT_H

#include <cstdint>
#include <cstring>

#include "common/types.h"

namespace sd::smartdimm {

/** Registration opcodes. */
enum class MmioOpcode : std::uint16_t
{
    kRegisterTlsPage = 1,
    kRegisterDeflatePage = 2,
    kUnregisterPage = 3,
};

/** TLS page registration: 60 of 64 bytes used. */
struct TlsPageRegistration
{
    std::uint16_t opcode = static_cast<std::uint16_t>(
        MmioOpcode::kRegisterTlsPage);
    std::uint16_t page_index = 0;  ///< page position within the record
    std::uint32_t message_len = 0; ///< total plaintext bytes
    std::uint64_t sbuf_page = 0;   ///< physical page number (addr>>12)
    std::uint64_t dbuf_page = 0;
    std::uint64_t message_id = 0;  ///< groups pages of one record
    std::uint8_t key[16] = {};
    std::uint8_t iv[12] = {};

    /** Serialise into a 64-byte MMIO burst. */
    void
    pack(std::uint8_t out[kCacheLineSize]) const
    {
        std::memset(out, 0, kCacheLineSize);
        std::memcpy(out, this, sizeof(*this));
    }

    static TlsPageRegistration
    unpack(const std::uint8_t in[kCacheLineSize])
    {
        TlsPageRegistration reg;
        std::memcpy(&reg, in, sizeof(reg));
        return reg;
    }
};
static_assert(sizeof(TlsPageRegistration) <= kCacheLineSize,
              "registration must fit one MMIO burst");

/** Deflate page registration. */
struct DeflatePageRegistration
{
    std::uint16_t opcode = static_cast<std::uint16_t>(
        MmioOpcode::kRegisterDeflatePage);
    std::uint16_t payload_bytes = 0; ///< valid bytes in the source page
    std::uint32_t reserved = 0;
    std::uint64_t sbuf_page = 0;
    std::uint64_t dbuf_page = 0;

    void
    pack(std::uint8_t out[kCacheLineSize]) const
    {
        std::memset(out, 0, kCacheLineSize);
        std::memcpy(out, this, sizeof(*this));
    }

    static DeflatePageRegistration
    unpack(const std::uint8_t in[kCacheLineSize])
    {
        DeflatePageRegistration reg;
        std::memcpy(&reg, in, sizeof(reg));
        return reg;
    }
};
static_assert(sizeof(DeflatePageRegistration) <= kCacheLineSize,
              "registration must fit one MMIO burst");

} // namespace sd::smartdimm

#endif // SD_SMARTDIMM_MMIO_LAYOUT_H
