/**
 * @file
 * TLS (AES-GCM) DSA per Fig. 7. The CPU ships the key material, hash
 * subkey H and encrypted IV through the Config Memory; the GF
 * multiplier precomputes powers of H in strides of 4 so GHASH folds of
 * different cachelines are independent, letting rdCAS commands arrive
 * out of order. Each processed line XORs its GHASH contribution into
 * the message's partial tag; the final tag lands in the record
 * trailer once every line is in.
 */

#ifndef SD_SMARTDIMM_TLS_DSA_H
#define SD_SMARTDIMM_TLS_DSA_H

#include <memory>
#include <vector>

#include "common/types.h"
#include "crypto/aes_gcm.h"
#include "smartdimm/dsa.h"

namespace sd::smartdimm {

/**
 * Shared state of one TLS message offload: the incremental GCM engine
 * (modelling the AES-CTR pipeline + GHASH + partial-tag accumulator of
 * Fig. 7). A message spans one or more source pages; page jobs share
 * this object.
 */
class TlsMessageState
{
  public:
    /**
     * @param key 16-byte AES-128 key (context write)
     * @param iv per-record nonce (context write)
     * @param message_len plaintext bytes
     * @param line_latency DSA busy cycles per line
     * @param stats optional aggregate counters (buffer-device owned)
     */
    TlsMessageState(const std::uint8_t key[16], const crypto::GcmIv &iv,
                    std::size_t message_len, Cycles line_latency,
                    DsaStats *stats = nullptr);

    /** Encrypt global cacheline @p index of the message. */
    Cycles processLine(std::size_t index, const std::uint8_t *in,
                       std::uint8_t *out);

    bool complete() const { return gcm_.complete(); }
    std::size_t messageLen() const { return message_len_; }
    std::size_t lineCount() const { return gcm_.lineCount(); }

    /** Final 16-byte authentication tag (trailer contents). */
    crypto::GcmTag finalTag() const { return gcm_.finalTag(); }

  private:
    crypto::GcmContext ctx_;
    crypto::IncrementalGcm gcm_;
    std::size_t message_len_;
    Cycles line_latency_;
    DsaStats *stats_;
};

/**
 * The per-source-page DSA job: encrypts the page's slice of the
 * message and exposes result lines for the Scratchpad. The trailer
 * tag is appended to the result bytes of the page that contains
 * offset message_len.
 */
class TlsDsaJob : public DsaJob
{
  public:
    /**
     * @param state shared message state
     * @param page_index which 4 KB page of the message this job covers
     */
    TlsDsaJob(std::shared_ptr<TlsMessageState> state,
              std::size_t page_index);

    UlpKind kind() const override { return UlpKind::kTlsEncrypt; }
    bool ordered() const override { return false; }

    Cycles processLine(unsigned line, const std::uint8_t *data) override;
    bool complete() const override;
    bool resultLine(unsigned line, std::uint8_t *out) const override;
    std::uint64_t readyMask() const override;
    std::size_t resultBytes() const override;

    /** Lines of this page that carry message payload. */
    std::size_t payloadLines() const { return payload_lines_; }

  private:
    /** Patch the trailer tag into this page's result bytes. */
    void placeTag() const;

    /** Bitmask of this page's trailer-region lines (>= payload). */
    std::uint64_t trailerMask() const;

    std::shared_ptr<TlsMessageState> state_;
    std::size_t page_index_;
    std::size_t page_payload_;  ///< payload bytes within this page
    std::size_t payload_lines_; ///< lines carrying payload
    bool holds_tag_;            ///< trailer lives in this page
    mutable std::vector<std::uint8_t> result_;
    mutable std::uint64_t ready_ = 0; ///< bit per available result line
    std::size_t lines_done_ = 0;
};

} // namespace sd::smartdimm

#endif // SD_SMARTDIMM_TLS_DSA_H
