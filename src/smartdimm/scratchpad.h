/**
 * @file
 * On-DIMM Scratchpad (Sec. IV-B/IV-C): a 64-byte-addressable SRAM
 * allocated at 4 KB page granularity. DSA results stage here until the
 * LLC's writeback of the destination buffer drains them to DRAM
 * (Self-Recycle); a page frees once every cacheline is drained.
 *
 * Concurrency contract: single-owner. A scratchpad belongs to one
 * buffer device, which belongs to one simulated channel, which is
 * driven by exactly one thread's EventQueue. Mutating entry points
 * spot-check the contract with a SingleOwnerChecker.
 */

#ifndef SD_SMARTDIMM_SCRATCHPAD_H
#define SD_SMARTDIMM_SCRATCHPAD_H

#include <bitset>
#include <cstdint>
#include <optional>
#include <vector>

#include "common/thread_annotations.h"
#include "common/types.h"

namespace sd::smartdimm {

/** Scratchpad activity counters. */
struct ScratchpadStats
{
    std::uint64_t allocs = 0;
    std::uint64_t self_recycles = 0;  ///< lines drained by wrCAS
    std::uint64_t force_recycles = 0; ///< pages freed by Force-Recycle
    std::uint64_t reads = 0;          ///< S10 service from scratchpad
    std::uint64_t writes = 0;         ///< DSA result stores
    std::uint64_t peak_pages = 0;
};

/**
 * Page-granular scratchpad. Each page tracks per-line state:
 *  - `computed`: the DSA has produced this line's result
 *  - `pending`:  the line has not yet been drained to DRAM
 * A page recycles when no pending lines remain.
 */
class Scratchpad
{
  public:
    /** @param pages capacity in 4 KB pages (paper: 2048). */
    explicit Scratchpad(std::size_t pages);

    /** Allocate one page. @return page slot, or nullopt when full. */
    std::optional<std::uint32_t> allocate();

    /** @return free page count (the MMIO freePages register). */
    std::size_t freePages() const { return free_.size(); }

    /** @return number of allocated (pending) pages. */
    std::size_t livePages() const;

    /** Bytes currently held (occupancy metric for Fig. 10). */
    std::size_t occupancyBytes() const
    {
        return livePages() * kPageSize;
    }

    /** Store a DSA result line into page slot @p page, line @p line. */
    void writeLine(std::uint32_t page, unsigned line,
                   const std::uint8_t *data, bool computed = true);

    /** Read a line (S10: serving a rdCAS from the scratchpad). */
    void readLine(std::uint32_t page, unsigned line, std::uint8_t *dst);

    /** @return true when the line's DSA computation has finished. */
    bool lineComputed(std::uint32_t page, unsigned line) const;

    /** @return true when the line has not yet drained to DRAM. */
    bool linePending(std::uint32_t page, unsigned line) const;

    /** Mark a line computed without rewriting data (tag updates). */
    void markComputed(std::uint32_t page, unsigned line);

    /**
     * Self-Recycle step: a wrCAS to a line staged here drains it.
     * Copies the staged data to @p drained (the bytes that must land
     * in DRAM instead of the host's write burst) and clears the
     * pending bit. @return true when the whole page just freed.
     */
    bool drainLine(std::uint32_t page, unsigned line,
                   std::uint8_t *drained);

    /** Force-Recycle: drain every pending line of @p page into
     *  @p page_data (4 KB) and free it. */
    void forceDrainPage(std::uint32_t page, std::uint8_t *page_data);

    /** Return a just-allocated page unused (registration rollback). */
    void release(std::uint32_t page);

    /** Pending (allocated) page slots — the MMIO pending list. */
    std::vector<std::uint32_t> pendingPages() const;

    const ScratchpadStats &stats() const { return stats_; }
    void resetStats() { stats_ = ScratchpadStats{}; }

    std::size_t capacityPages() const { return pages_.size(); }

  private:
    struct Page
    {
        std::vector<std::uint8_t> data;
        std::bitset<kLinesPerPage> pending;  ///< not yet drained
        std::bitset<kLinesPerPage> computed; ///< DSA result ready
        bool allocated = false;
    };

    void freePage(std::uint32_t page);

    /** Runtime spot-check of the single-owner contract. */
    SingleOwnerChecker owner_;

    std::vector<Page> pages_;
    std::vector<std::uint32_t> free_; ///< LIFO free list
    ScratchpadStats stats_;
};

} // namespace sd::smartdimm

#endif // SD_SMARTDIMM_SCRATCHPAD_H
