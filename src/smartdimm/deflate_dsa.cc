#include "smartdimm/deflate_dsa.h"

#include <cstring>

#include "common/log.h"

namespace sd::smartdimm {

DeflateDsaJob::DeflateDsaJob(std::size_t payload_bytes,
                             const compress::HwDeflateConfig &hw_config,
                             Cycles line_latency, DsaStats *stats)
    : payload_bytes_(payload_bytes),
      payload_lines_(divCeil(payload_bytes, kCacheLineSize)),
      hw_config_(hw_config), line_latency_(line_latency), stats_(stats)
{
    SD_ASSERT(payload_bytes_ >= 1 &&
                  payload_bytes_ <= kDeflateMaxPayload,
              "deflate DSA payload capped at %zu bytes (got %zu)",
              kDeflateMaxPayload, payload_bytes_);
    input_.reserve(kPageSize);
}

Cycles
DeflateDsaJob::processLine(unsigned line, const std::uint8_t *data)
{
    if (poisoned_)
        return line_latency_;
    if (line != next_line_) {
        // Fence violation: the streaming pipeline cannot reorder, so
        // the hardware poisons the job instead of emitting a corrupt
        // stream. The page never completes; its dbuf reads keep
        // asserting ALERT_N until the controller degrades them and the
        // host falls back (graceful, not SD_ASSERT-fatal).
        poisoned_ = true;
        if (stats_)
            ++stats_->deflate_order_faults;
        return line_latency_;
    }
    ++next_line_;

    const std::size_t already = input_.size();
    const std::size_t take =
        std::min(kCacheLineSize, payload_bytes_ - already);
    input_.insert(input_.end(), data, data + take);

    if (next_line_ >= payload_lines_) {
        // Final line: run the pipeline over the full page. Hardware
        // overlaps this with the line arrivals; the extra latency here
        // models only the pipeline flush.
        result_ = compress::hwDeflateCompress(input_.data(),
                                              input_.size(), hw_config_,
                                              &hw_stats_);
        SD_ASSERT(result_.size() <= kPageSize,
                  "compressed page exceeded a page (incompressible "
                  "input should use stored blocks)");
        result_.resize(kPageSize, 0);
        done_ = true;
        if (stats_) {
            ++stats_->deflate_pages;
            stats_->deflate_output_bytes += resultBytes();
        }
    }
    if (stats_) {
        ++stats_->deflate_lines;
        stats_->deflate_busy_cycles += line_latency_;
    }
    return line_latency_;
}

bool
DeflateDsaJob::resultLine(unsigned line, std::uint8_t *out) const
{
    SD_ASSERT(line < kLinesPerPage, "line index out of page");
    if (!done_)
        return false;
    std::memcpy(out, result_.data() + line * kCacheLineSize,
                kCacheLineSize);
    return true;
}

std::size_t
DeflateDsaJob::resultBytes() const
{
    if (!done_)
        return 0;
    // 2-byte framing header + stream length, rounded to lines.
    const std::size_t framed =
        2 + (static_cast<std::size_t>(result_[0]) |
             (static_cast<std::size_t>(result_[1]) << 8));
    return std::min(framed, kPageSize);
}

} // namespace sd::smartdimm
