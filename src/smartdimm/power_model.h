/**
 * @file
 * Analytic power/area model for the buffer device (Sec. VII-D).
 * Dynamic power is computed from activity counters (translation
 * lookups, scratchpad accesses, DSA line operations) with per-event
 * energies calibrated so a fully-utilised DDR channel draws ~4.78 W —
 * the paper's Vivado estimate — and typical TLS offloading (<30%
 * channel utilisation) adds ~0.9 W to the AxDIMM.
 */

#ifndef SD_SMARTDIMM_POWER_MODEL_H
#define SD_SMARTDIMM_POWER_MODEL_H

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"
#include "smartdimm/buffer_device.h"

namespace sd::smartdimm {

/** Per-event dynamic energies (picojoules). */
struct EnergyModel
{
    double translation_lookup_pj = 180.0;  ///< 3 hash probes + CAM (FPGA)
    double scratchpad_access_pj = 840.0;  ///< 64 B SRAM r/w
    double config_access_pj = 640.0;      ///< context slot access
    double dsa_tls_line_pj = 21000.0;      ///< 4 AES rounds pipe + GHASH
    double dsa_deflate_line_pj = 16500.0;  ///< 8-lane match + encode
    double phy_passthrough_pj = 360.0;     ///< DDR PHY + slot decode
};

/** One row of the power/area report. */
struct PowerBreakdownRow
{
    std::string component;
    double watts = 0.0;
    double fpga_luts_pct = 0.0; ///< share of the AxDIMM FPGA fabric
};

/** Computed report. */
struct PowerReport
{
    std::vector<PowerBreakdownRow> rows;
    double dynamic_watts = 0.0;
    double channel_utilization = 0.0; ///< fraction of DDR peak
    double fpga_resources_pct = 0.0;  ///< total fabric share
};

/**
 * Evaluate the model over a window.
 * @param device the buffer device whose counters to read
 * @param window_ticks elapsed simulated time
 * @param channel_bytes DRAM bytes moved in the window (utilisation)
 */
PowerReport estimatePower(const BufferDevice &device, Tick window_ticks,
                          std::uint64_t channel_bytes,
                          const EnergyModel &energy = {});

/** Peak dynamic power at 100% DDR4-3200 channel utilisation. */
double peakDynamicWatts(const EnergyModel &energy = {});

} // namespace sd::smartdimm

#endif // SD_SMARTDIMM_POWER_MODEL_H
