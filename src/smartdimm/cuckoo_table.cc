#include "smartdimm/cuckoo_table.h"

#include <algorithm>

#include "common/log.h"

namespace sd::smartdimm {

CuckooTable::CuckooTable(std::size_t buckets, std::size_t cam_entries,
                         unsigned max_displacements)
    : buckets_(buckets), cam_(cam_entries),
      max_displacements_(max_displacements)
{
    SD_ASSERT(buckets >= 3, "cuckoo table needs at least 3 buckets");
}

std::size_t
CuckooTable::hash(std::uint64_t page, unsigned fn) const
{
    // Three independent mixers (distinct odd multipliers + rotations),
    // mirroring three hardware hash units evaluated in parallel.
    static constexpr std::uint64_t kMul[3] = {
        0x9e3779b97f4a7c15ULL,
        0xc2b2ae3d27d4eb4fULL,
        0x165667b19e3779f9ULL,
    };
    std::uint64_t x = page * kMul[fn];
    x ^= x >> 29;
    x *= kMul[(fn + 1) % 3];
    x ^= x >> 32;
    return static_cast<std::size_t>(x % buckets_.size());
}

std::optional<Translation>
CuckooTable::lookup(std::uint64_t page)
{
    ++stats_.lookups;
    for (unsigned fn = 0; fn < 3; ++fn) {
        const Bucket &bucket = buckets_[hash(page, fn)];
        if (bucket.valid && bucket.page == page) {
            ++stats_.hits;
            return bucket.translation;
        }
    }
    for (const Bucket &bucket : cam_) {
        if (bucket.valid && bucket.page == page) {
            ++stats_.hits;
            return bucket.translation;
        }
    }
    return std::nullopt;
}

bool
CuckooTable::tryDirectInsert(std::uint64_t page, const Translation &t)
{
    for (unsigned fn = 0; fn < 3; ++fn) {
        Bucket &bucket = buckets_[hash(page, fn)];
        if (!bucket.valid) {
            bucket.page = page;
            bucket.translation = t;
            bucket.valid = true;
            return true;
        }
    }
    return false;
}

bool
CuckooTable::insert(std::uint64_t page, const Translation &t)
{
    ++stats_.inserts;

    // Update in place when already mapped (cuckoo array or CAM).
    for (unsigned fn = 0; fn < 3; ++fn) {
        Bucket &bucket = buckets_[hash(page, fn)];
        if (bucket.valid && bucket.page == page) {
            bucket.translation = t;
            ++stats_.first_try_inserts;
            return true;
        }
    }
    for (Bucket &bucket : cam_) {
        if (bucket.valid && bucket.page == page) {
            bucket.translation = t;
            ++stats_.first_try_inserts;
            return true;
        }
    }

    if (fault_plan_ &&
        fault_plan_->armed(fault::Site::kCuckooInsertFail) &&
        fault_plan_->shouldInject(fault::Site::kCuckooInsertFail,
                                  fault_scope_)) {
        ++stats_.failures;
        return false;
    }
    const bool forced_conflict =
        fault_plan_ && fault_plan_->armed(fault::Site::kCuckooConflict) &&
        fault_plan_->shouldInject(fault::Site::kCuckooConflict,
                                  fault_scope_);

    if (!forced_conflict && tryDirectInsert(page, t)) {
        ++stats_.first_try_inserts;
        ++live_;
        return true;
    }

    // Displacement path: stage the new mapping in the CAM so the
    // critical path never blocks, then run the kick chain.
    auto cam_slot = std::find_if(cam_.begin(), cam_.end(),
                                 [](const Bucket &b) { return !b.valid; });
    if (cam_slot != cam_.end()) {
        cam_slot->page = page;
        cam_slot->translation = t;
        cam_slot->valid = true;
        ++stats_.cam_inserts;
    }

    std::uint64_t cur_page = page;
    Translation cur_t = t;
    unsigned kick_fn = 0;
    for (unsigned kick = 0; kick < max_displacements_; ++kick) {
        // Kick the resident of one of the current key's buckets, then
        // try every alternative bucket of the evicted key before
        // kicking again (standard d-ary cuckoo walk).
        Bucket &bucket = buckets_[hash(cur_page, kick_fn)];
        if (!bucket.valid) {
            // Only reachable via a forced conflict (the genuine path
            // enters the chain with all three buckets occupied): the
            // "displaced" key lands straight in the free bucket.
            bucket.page = cur_page;
            bucket.translation = cur_t;
            bucket.valid = true;
            ++live_;
            ++stats_.displaced_inserts;
            if (cam_slot != cam_.end() && cam_slot->valid &&
                cam_slot->page == page)
                cam_slot->valid = false;
            return true;
        }
        std::swap(bucket.page, cur_page);
        std::swap(bucket.translation, cur_t);
        ++stats_.displacements;

        if (tryDirectInsert(cur_page, cur_t)) {
            ++live_;
            ++stats_.displaced_inserts;
            // Drain the staged CAM copy of the original key.
            if (cam_slot != cam_.end() && cam_slot->valid &&
                cam_slot->page == page)
                cam_slot->valid = false;
            return true;
        }
        kick_fn = (kick_fn + 1) % 3;
    }

    ++stats_.failures;
    // Leave the mapping in the CAM if it landed there; otherwise the
    // insert truly failed (essentially unreachable below 50% load).
    if (cam_slot != cam_.end()) {
        ++live_;
        return true;
    }
    return false;
}

bool
CuckooTable::erase(std::uint64_t page)
{
    for (unsigned fn = 0; fn < 3; ++fn) {
        Bucket &bucket = buckets_[hash(page, fn)];
        if (bucket.valid && bucket.page == page) {
            bucket.valid = false;
            --live_;
            return true;
        }
    }
    for (Bucket &bucket : cam_) {
        if (bucket.valid && bucket.page == page) {
            bucket.valid = false;
            --live_;
            return true;
        }
    }
    return false;
}

double
CuckooTable::occupancy() const
{
    std::size_t used = 0;
    for (const Bucket &bucket : buckets_)
        used += bucket.valid;
    return static_cast<double>(used) /
           static_cast<double>(buckets_.size());
}

} // namespace sd::smartdimm
