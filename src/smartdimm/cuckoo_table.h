/**
 * @file
 * 3-ary cuckoo hash Translation Table (Sec. IV-C). Maps physical page
 * numbers to Scratchpad or Config Memory offsets. Sized 3x the
 * required entries so occupancy stays below ~33%, where inserts
 * almost always succeed on the first probe or with one displacement.
 * An 8-entry CAM absorbs inserts whose cuckoo placement needs
 * displacement work, keeping insertion off the critical path.
 */

#ifndef SD_SMARTDIMM_CUCKOO_TABLE_H
#define SD_SMARTDIMM_CUCKOO_TABLE_H

#include <cstdint>
#include <optional>
#include <vector>

#include "common/types.h"
#include "fault/fault.h"

namespace sd::smartdimm {

/** What a translation entry points at. */
enum class MappingKind : std::uint8_t
{
    kScratchpad,   ///< destination page: DSA results staged here
    kConfigMemory, ///< source page: context for the DSA
};

/** One page translation. */
struct Translation
{
    MappingKind kind = MappingKind::kScratchpad;
    std::uint32_t offset = 0; ///< page slot within the target memory
    /** For source pages: the matching destination page number(s)
     *  (non-size-preserving ULPs may fan out, Sec. IV-C). */
    std::uint64_t dest_page = 0;

    bool operator==(const Translation &) const = default;
};

/** Lookup/insert activity for power and behaviour studies. */
struct CuckooStats
{
    std::uint64_t lookups = 0;
    std::uint64_t hits = 0;
    std::uint64_t inserts = 0;
    std::uint64_t first_try_inserts = 0;
    std::uint64_t displaced_inserts = 0; ///< needed >= 1 displacement
    std::uint64_t displacements = 0;     ///< total relocations
    std::uint64_t cam_inserts = 0;       ///< absorbed by the CAM
    std::uint64_t failures = 0;          ///< displacement budget blown
};

/**
 * The Translation Table. Keys are physical page numbers; the table is
 * checked on every CAS, so lookups probe at most 3 buckets plus the
 * CAM, all of which read in parallel in hardware.
 */
class CuckooTable
{
  public:
    /**
     * @param buckets total bucket count (paper: 12288)
     * @param cam_entries overflow CAM size (paper: 8)
     * @param max_displacements kick budget before declaring failure
     */
    CuckooTable(std::size_t buckets, std::size_t cam_entries,
                unsigned max_displacements = 32);

    /** Insert or update a mapping. @return false on table failure. */
    bool insert(std::uint64_t page, const Translation &translation);

    /**
     * Attach a fault plan (not owned; may be null). Sites consulted in
     * insert(): kCuckooConflict (direct placement is treated as
     * conflicted, forcing the CAM-staged displacement path) and
     * kCuckooInsertFail (the insert fails outright, which the caller
     * surfaces as a registration rejection).
     */
    void setFaultPlan(fault::FaultPlan *plan) { fault_plan_ = plan; }

    /** Scope for matching device-targeted (`smartdimm[ch][dimm]`) rules. */
    void setFaultScope(const fault::FaultScope &scope) { fault_scope_ = scope; }

    /** @return the mapping for @p page when present. */
    std::optional<Translation> lookup(std::uint64_t page);

    /** Remove a mapping. @return true when it existed. */
    bool erase(std::uint64_t page);

    /** Occupied fraction of the cuckoo array (excludes CAM). */
    double occupancy() const;

    /** Number of live mappings (cuckoo + CAM). */
    std::size_t size() const { return live_; }

    const CuckooStats &stats() const { return stats_; }
    void resetStats() { stats_ = CuckooStats{}; }

  private:
    struct Bucket
    {
        std::uint64_t page = 0;
        Translation translation;
        bool valid = false;
    };

    std::size_t hash(std::uint64_t page, unsigned fn) const;
    bool tryDirectInsert(std::uint64_t page, const Translation &t);

    std::vector<Bucket> buckets_;
    std::vector<Bucket> cam_;
    fault::FaultPlan *fault_plan_ = nullptr;
    fault::FaultScope fault_scope_;
    unsigned max_displacements_;
    std::size_t live_ = 0;
    CuckooStats stats_;
};

} // namespace sd::smartdimm

#endif // SD_SMARTDIMM_CUCKOO_TABLE_H
