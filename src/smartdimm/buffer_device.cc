#include "smartdimm/buffer_device.h"

#include <bit>
#include <cstring>

#include "common/log.h"
#include "smartdimm/deflate_dsa.h"
#include "smartdimm/mmio_layout.h"

namespace sd::smartdimm {

BufferDevice::BufferDevice(EventQueue &events, const mem::AddressMap &map,
                           mem::BackingStore &store,
                           const SmartDimmConfig &config)
    : events_(events), map_(map), store_(store), config_(config),
      bank_table_(map.geometry()),
      translation_(config.translation_entries, config.cam_entries),
      scratchpad_(config.scratchpadPages()),
      config_memory_(config.config_memory_bytes, config.context_bytes)
{
}

void
BufferDevice::onCommand(const mem::DdrCommand &cmd)
{
    // RAS/PRE maintain the Bank Table. CAS commands are decoded *now*
    // (S1 of Fig. 6): the Addr Remap regenerates the physical address
    // from the Bank Table's active row and the CAS's BG/BA/Col, and
    // the result is latched for the data phase — the bank may be
    // re-activated to another row before the burst completes.
    if (cmd.type == mem::DdrCommandType::kReadCas ||
        cmd.type == mem::DdrCommandType::kWriteCas) {
        mem::DramCoord coord = cmd.coord;
        coord.row = bank_table_.activeRow(cmd.coord);
        const Addr remapped = map_.compose(coord);
        SD_ASSERT(remapped == cmd.addr,
                  "Addr Remap mismatch: 0x%llx != 0x%llx",
                  static_cast<unsigned long long>(remapped),
                  static_cast<unsigned long long>(cmd.addr));
        ++stats_.addr_remap_checks;
        return;
    }
    bank_table_.onCommand(cmd);
}

bool
BufferDevice::injectFault(fault::Site site)
{
    return fault_plan_ && fault_plan_->armed(site) &&
           fault_plan_->shouldInject(site, fault_scope_);
}

void
BufferDevice::rejectRegistration(std::uint64_t dbuf_page)
{
    // Graceful rejection: no mapping installs, so the registered pages
    // behave as plain DRAM. The host polls kFaultStatus and treats the
    // affected CompCpy as degraded instead of trusting a raw copy.
    ++stats_.rejected_registrations;
    SD_TRACE_FAULT_EVENT(dbuf_page, events_.now(), dbuf_page * kPageSize);
}

void
BufferDevice::handleMmioRead(Addr addr, std::uint8_t *data)
{
    ++stats_.mmio_reads;
    std::memset(data, 0, kCacheLineSize);
    const Addr off = addr - config_.mmio_base;
    switch (static_cast<MmioReg>(off)) {
      case MmioReg::kFreePages: {
        std::uint64_t free = scratchpad_.freePages();
        if (injectFault(fault::Site::kFreePagesLie)) {
            // Lie low: claiming exhaustion drives the software down
            // Alg. 1's Force-Recycle path, which a fault-free run of a
            // small workload would rarely exercise.
            free = 0;
            ++stats_.freepages_lies;
            SD_TRACE_FAULT_EVENT(addr / kPageSize, events_.now(), addr);
        }
        std::memcpy(data, &free, sizeof(free));
        break;
      }
      case MmioReg::kFaultStatus: {
        std::uint64_t words[8] = {};
        words[0] = stats_.rejected_registrations;
        words[1] = stats_.freepages_lies;
        std::memcpy(data, words, sizeof(words));
        break;
      }
      case MmioReg::kQueueStatus: {
        // One 64-byte read snapshots every tracked queue: word 0 is
        // the queue count, then one word per queue packing
        // submitted (high 32) | completed (low 32). Poll-timeout
        // recovery diffs `completed` against host-side records to
        // detect dropped completions.
        std::uint64_t words[8] = {};
        words[0] = kMaxDeviceQueues;
        for (std::size_t q = 0; q < kMaxDeviceQueues; ++q)
            words[1 + q] = (std::uint64_t{queues_[q].submitted} << 32) |
                           queues_[q].completed;
        std::memcpy(data, words, sizeof(words));
        break;
      }
      case MmioReg::kPendingList: {
        // Up to 7 pending destination-page physical addresses after a
        // count word — one 64-byte register read per batch.
        std::uint64_t words[8] = {};
        std::size_t n = 0;
        for (const auto &[dbuf_page, entry] : dests_) {
            if (n >= 7)
                break;
            words[1 + n++] = dbuf_page * kPageSize;
        }
        words[0] = n;
        std::memcpy(data, words, sizeof(words));
        break;
      }
      default:
        break; // reserved registers read as zero
    }
}

void
BufferDevice::registerTls(const std::uint8_t *data)
{
    const auto reg = TlsPageRegistration::unpack(data);
    SD_ASSERT(reg.message_len > 0, "TLS registration with empty record");

    // sbuf_page == dbuf_page marks a tag-only trailer page: the
    // record filled its last payload page exactly, so the tag spills
    // into a destination page with no matching source page.
    const bool tag_only = reg.sbuf_page == reg.dbuf_page;

    // Acquire every resource before mutating any map, so a rejection
    // (genuine exhaustion after a stale freePages read, or an injected
    // fault) unwinds to the pre-registration state.
    std::optional<std::uint32_t> scratch;
    if (!injectFault(fault::Site::kScratchpadExhaust))
        scratch = scratchpad_.allocate();
    if (!scratch) {
        rejectRegistration(reg.dbuf_page);
        return;
    }

    std::uint32_t slot_id = 0;
    if (!tag_only) {
        // Config Memory slot holds the shipped context (key material,
        // IV; H powers are derived inside the DSA model).
        std::optional<std::uint32_t> slot;
        if (!injectFault(fault::Site::kConfigMemExhaust))
            slot = config_memory_.allocate();
        if (!slot) {
            scratchpad_.release(*scratch);
            rejectRegistration(reg.dbuf_page);
            return;
        }
        slot_id = *slot;
        config_memory_.write(slot_id, 0, reg.key, sizeof(reg.key));
        config_memory_.write(slot_id, sizeof(reg.key), reg.iv,
                             sizeof(reg.iv));
    }

    // Shared per-message state (partial tag + H-power table).
    auto &state = message_states_[reg.message_id];
    const bool fresh_state = !state;
    if (!state)
        state = std::make_shared<TlsMessageState>(
            reg.key, [&] {
                crypto::GcmIv iv{};
                std::memcpy(iv.data(), reg.iv, iv.size());
                return iv;
            }(), reg.message_len, config_.dsa_line_latency,
            &dsa_stats_);

    auto job = std::make_shared<TlsDsaJob>(state, reg.page_index);

    Translation src_t;
    src_t.kind = MappingKind::kConfigMemory;
    src_t.offset = slot_id;
    src_t.dest_page = reg.dbuf_page;
    if (!tag_only && !translation_.insert(reg.sbuf_page, src_t)) {
        if (fresh_state)
            message_states_.erase(reg.message_id);
        config_memory_.release(slot_id);
        scratchpad_.release(*scratch);
        rejectRegistration(reg.dbuf_page);
        return;
    }

    Translation dst_t;
    dst_t.kind = MappingKind::kScratchpad;
    dst_t.offset = *scratch;
    if (!translation_.insert(reg.dbuf_page, dst_t)) {
        if (!tag_only) {
            translation_.erase(reg.sbuf_page);
            config_memory_.release(slot_id);
        }
        if (fresh_state)
            message_states_.erase(reg.message_id);
        scratchpad_.release(*scratch);
        rejectRegistration(reg.dbuf_page);
        return;
    }

    if (!tag_only) {
        sources_[reg.sbuf_page] =
            SourceEntry{job, reg.dbuf_page, slot_id};
        sbuf_message_[reg.sbuf_page] = reg.message_id;
    }
    dests_[reg.dbuf_page] =
        DestEntry{job, tag_only ? 0 : reg.sbuf_page, *scratch};
    message_pages_[reg.message_id].push_back(reg.dbuf_page);

    ++stats_.registrations;
}

void
BufferDevice::registerDeflate(const std::uint8_t *data)
{
    const auto reg = DeflatePageRegistration::unpack(data);

    std::optional<std::uint32_t> slot;
    if (!injectFault(fault::Site::kConfigMemExhaust))
        slot = config_memory_.allocate();
    if (!slot) {
        rejectRegistration(reg.dbuf_page);
        return;
    }
    std::optional<std::uint32_t> scratch;
    if (!injectFault(fault::Site::kScratchpadExhaust))
        scratch = scratchpad_.allocate();
    if (!scratch) {
        config_memory_.release(*slot);
        rejectRegistration(reg.dbuf_page);
        return;
    }

    Translation src_t;
    src_t.kind = MappingKind::kConfigMemory;
    src_t.offset = *slot;
    src_t.dest_page = reg.dbuf_page;
    if (!translation_.insert(reg.sbuf_page, src_t)) {
        scratchpad_.release(*scratch);
        config_memory_.release(*slot);
        rejectRegistration(reg.dbuf_page);
        return;
    }

    Translation dst_t;
    dst_t.kind = MappingKind::kScratchpad;
    dst_t.offset = *scratch;
    if (!translation_.insert(reg.dbuf_page, dst_t)) {
        translation_.erase(reg.sbuf_page);
        scratchpad_.release(*scratch);
        config_memory_.release(*slot);
        rejectRegistration(reg.dbuf_page);
        return;
    }

    auto job = std::make_shared<DeflateDsaJob>(
        reg.payload_bytes, deflate_config_, config_.dsa_line_latency,
        &dsa_stats_);
    sources_[reg.sbuf_page] = SourceEntry{job, reg.dbuf_page, *slot};
    dests_[reg.dbuf_page] = DestEntry{job, reg.sbuf_page, *scratch};

    ++stats_.registrations;
}

void
BufferDevice::handleMmioWrite(Addr addr, const std::uint8_t *data)
{
    ++stats_.mmio_writes;
    const Addr off = addr - config_.mmio_base;
    switch (static_cast<MmioReg>(off)) {
      case MmioReg::kRegister: {
        std::uint16_t opcode;
        std::memcpy(&opcode, data, sizeof(opcode));
        switch (static_cast<MmioOpcode>(opcode)) {
          case MmioOpcode::kRegisterTlsPage:
            registerTls(data);
            break;
          case MmioOpcode::kRegisterDeflatePage:
            registerDeflate(data);
            break;
          default:
            SD_WARN("unknown registration opcode %u", opcode);
        }
        break;
      }
      case MmioReg::kQueueDoorbell: {
        const auto db = QueueDoorbell::unpack(data);
        ++stats_.doorbell_rings;
        if (db.queue < kMaxDeviceQueues)
            ++queues_[db.queue].submitted;
        break;
      }
      case MmioReg::kQueueComplete: {
        const auto qc = QueueCompletion::unpack(data);
        ++stats_.completion_acks;
        if (qc.queue < kMaxDeviceQueues)
            ++queues_[qc.queue].completed;
        break;
      }
      default:
        break; // reserved registers ignore writes
    }
}

void
BufferDevice::materializeResults(std::uint64_t dbuf_page)
{
    auto it = dests_.find(dbuf_page);
    if (it == dests_.end())
        return;
    DestEntry &entry = it->second;
    std::uint8_t line_data[kCacheLineSize];
    // Visit only lines that became available since the last wakeup
    // (ascending order, matching the historical full scan). Most
    // wakeups stage exactly one line.
    std::uint64_t todo = entry.job->readyMask() & ~entry.staged;
    while (todo) {
        const unsigned line =
            static_cast<unsigned>(std::countr_zero(todo));
        todo &= todo - 1;
        if (!entry.job->resultLine(line, line_data))
            continue;
        entry.staged |= std::uint64_t{1} << line;
        scratchpad_.writeLine(entry.scratch_page, line, line_data);
        SD_TRACE_PAGE_EVENT(dbuf_page, trace::Stage::kStage,
                            events_.now(),
                            dbuf_page * kPageSize +
                                line * kCacheLineSize);
    }
}

void
BufferDevice::feedDsa(std::uint64_t sbuf_page, unsigned line,
                      const std::uint8_t *data)
{
    auto it = sources_.find(sbuf_page);
    SD_ASSERT(it != sources_.end(), "sbuf mapping without a job");
    SourceEntry &entry = it->second;

    // An ALERT_N retry re-issues the rdCAS, so the tap must be
    // idempotent: a line already handed to the DSA is served from DRAM
    // without feeding it again (the streaming ULPs consume each line
    // exactly once).
    const std::uint64_t line_bit = 1ULL << line;
    if (entry.fed_lines & line_bit)
        return;
    entry.fed_lines |= line_bit;

    // The DSA transform is functionally immediate; its latency is
    // modelled by deferring the Scratchpad materialisation, so a too-
    // early rdCAS/wrCAS of the destination line sees S13/S7.
    std::vector<std::uint8_t> copy(data, data + kCacheLineSize);
    auto job = entry.job;
    const std::uint64_t dbuf_page = entry.dbuf_page;
    SD_TRACE_PAGE_EVENT(sbuf_page, trace::Stage::kTransform,
                        events_.now(),
                        sbuf_page * kPageSize + line * kCacheLineSize);

    const Cycles busy = job->processLine(line, copy.data());
    const Tick ready_at =
        events_.now() + buffer_clock_.toTicks(
                            busy ? busy : config_.dsa_line_latency);
    events_.schedule(ready_at,
                     [this, dbuf_page] { materializeResults(dbuf_page); });

    // When a TLS record just completed, trailer/tag lines on *other*
    // destination pages of the same message become available too.
    auto msg_it = sbuf_message_.find(sbuf_page);
    if (msg_it != sbuf_message_.end()) {
        const std::uint64_t message_id = msg_it->second;
        auto pages_it = message_pages_.find(message_id);
        if (pages_it != message_pages_.end()) {
            for (std::uint64_t page : pages_it->second) {
                if (page == dbuf_page)
                    continue;
                events_.schedule(ready_at, [this, page] {
                    materializeResults(page);
                });
            }
        }
    }
    ++stats_.sbuf_reads;
}

void
BufferDevice::retirePage(std::uint64_t dbuf_page)
{
    auto it = dests_.find(dbuf_page);
    if (it == dests_.end())
        return;
    const std::uint64_t sbuf_page = it->second.sbuf_page;
    auto src = sources_.find(sbuf_page);
    if (src != sources_.end() && src->second.dbuf_page == dbuf_page) {
        config_memory_.release(src->second.config_slot);
        translation_.erase(sbuf_page);
        sources_.erase(src);
        sbuf_message_.erase(sbuf_page);
    }
    translation_.erase(dbuf_page);
    dests_.erase(it);

    // Lazily sweep finished TLS message state.
    for (auto ms = message_states_.begin(); ms != message_states_.end();) {
        if (ms->second->complete()) {
            message_pages_.erase(ms->first);
            ms = message_states_.erase(ms);
        } else {
            ++ms;
        }
    }
}

mem::ReadResponse
BufferDevice::onRead(const mem::DdrCommand &cmd, std::uint8_t *data)
{
    // The physical address was regenerated and verified at CAS-decode
    // time (onCommand); the data phase uses the latched value.
    const Addr addr = cmd.addr;

    // S2/S3: config-space CAS?
    if (isMmio(addr)) {
        handleMmioRead(addr, data);
        return mem::ReadResponse::kOk;
    }

    const std::uint64_t page = addr / kPageSize;
    const unsigned line =
        static_cast<unsigned>((addr % kPageSize) / kCacheLineSize);
    const auto translation = translation_.lookup(page);

    if (!translation) {
        // S4/S5: non-acceleration range — plain DIMM behaviour.
        store_.read(addr, data, kCacheLineSize);
        ++stats_.plain_reads;
        return mem::ReadResponse::kOk;
    }

    if (translation->kind == MappingKind::kConfigMemory) {
        // S6: sbuf read. Host receives DRAM data unchanged; the tap
        // feeds the DSA.
        store_.read(addr, data, kCacheLineSize);
        feedDsa(page, line, data);
        return mem::ReadResponse::kOk;
    }

    // Destination page.
    auto dest = dests_.find(page);
    if (dest == dests_.end()) {
        // Mapping raced with retirement; treat as plain DRAM.
        store_.read(addr, data, kCacheLineSize);
        ++stats_.plain_reads;
        return mem::ReadResponse::kOk;
    }
    if (scratchpad_.lineComputed(dest->second.scratch_page, line)) {
        // S10: serve the staged result from the Scratchpad.
        scratchpad_.readLine(dest->second.scratch_page, line, data);
        ++stats_.dbuf_scratch_reads;
        return mem::ReadResponse::kOk;
    }
    // S13: computation pending — ALERT_N retry.
    ++stats_.alert_n;
    SD_TRACE_PAGE_EVENT(page, trace::Stage::kAlert, events_.now(), addr);
    return mem::ReadResponse::kAlertN;
}

void
BufferDevice::onWrite(const mem::DdrCommand &cmd, const std::uint8_t *data)
{
    const Addr addr = cmd.addr;

    if (isMmio(addr)) {
        handleMmioWrite(addr, data);
        return;
    }

    const std::uint64_t page = addr / kPageSize;
    const unsigned line =
        static_cast<unsigned>((addr % kPageSize) / kCacheLineSize);
    const auto translation = translation_.lookup(page);

    if (!translation || translation->kind == MappingKind::kConfigMemory) {
        // Plain write — includes writes to registered *source* pages
        // (the application refilling a buffer).
        store_.write(addr, data, kCacheLineSize);
        ++stats_.plain_writes;
        return;
    }

    auto dest = dests_.find(page);
    if (dest == dests_.end()) {
        store_.write(addr, data, kCacheLineSize);
        ++stats_.plain_writes;
        return;
    }

    if (!scratchpad_.linePending(dest->second.scratch_page, line)) {
        // The line drained earlier (e.g. a Force-Recycle raced with a
        // Self-Recycle): the destination behaves as regular memory.
        store_.write(addr, data, kCacheLineSize);
        ++stats_.plain_writes;
        return;
    }

    if (!scratchpad_.lineComputed(dest->second.scratch_page, line)) {
        // S7: DSA still computing — the write is ignored; the line
        // stays pending in the Scratchpad.
        ++stats_.dbuf_write_ignored;
        return;
    }

    // S8/S9: Self-Recycle — replace the burst with the staged result
    // on its way to DRAM and invalidate the Scratchpad line.
    std::uint8_t staged[kCacheLineSize];
    const bool page_freed =
        scratchpad_.drainLine(dest->second.scratch_page, line, staged);
    store_.write(addr, staged, kCacheLineSize);
    ++stats_.dbuf_recycles;
    SD_TRACE_PAGE_EVENT(page, trace::Stage::kRecycle, events_.now(),
                        addr);
    if (page_freed)
        retirePage(page);
}

void
BufferDevice::reportStats(trace::StatsBlock &block) const
{
    block.scalar("plain_reads", static_cast<double>(stats_.plain_reads));
    block.scalar("plain_writes",
                 static_cast<double>(stats_.plain_writes));
    block.scalar("mmio_reads", static_cast<double>(stats_.mmio_reads));
    block.scalar("mmio_writes", static_cast<double>(stats_.mmio_writes));
    block.scalar("sbuf_reads", static_cast<double>(stats_.sbuf_reads));
    block.scalar("dbuf_recycles",
                 static_cast<double>(stats_.dbuf_recycles));
    block.scalar("dbuf_write_ignored",
                 static_cast<double>(stats_.dbuf_write_ignored));
    block.scalar("dbuf_scratch_reads",
                 static_cast<double>(stats_.dbuf_scratch_reads));
    block.scalar("alert_n", static_cast<double>(stats_.alert_n));
    block.scalar("registrations",
                 static_cast<double>(stats_.registrations));
    block.scalar("rejected_registrations",
                 static_cast<double>(stats_.rejected_registrations));
    block.scalar("freepages_lies",
                 static_cast<double>(stats_.freepages_lies));
    block.scalar("doorbell_rings",
                 static_cast<double>(stats_.doorbell_rings));
    block.scalar("completion_acks",
                 static_cast<double>(stats_.completion_acks));

    const ScratchpadStats &sp = scratchpad_.stats();
    block.scalar("scratchpad.allocs", static_cast<double>(sp.allocs));
    block.scalar("scratchpad.self_recycles",
                 static_cast<double>(sp.self_recycles));
    block.scalar("scratchpad.force_recycles",
                 static_cast<double>(sp.force_recycles));
    block.scalar("scratchpad.peak_pages",
                 static_cast<double>(sp.peak_pages));
    block.scalar("scratchpad.live_pages",
                 static_cast<double>(scratchpad_.livePages()));

    block.scalar("dsa.tls_lines",
                 static_cast<double>(dsa_stats_.tls_lines));
    block.scalar("dsa.tls_messages",
                 static_cast<double>(dsa_stats_.tls_messages));
    block.scalar("dsa.tls_busy_cycles",
                 static_cast<double>(dsa_stats_.tls_busy_cycles));
    block.scalar("dsa.deflate_lines",
                 static_cast<double>(dsa_stats_.deflate_lines));
    block.scalar("dsa.deflate_pages",
                 static_cast<double>(dsa_stats_.deflate_pages));
    block.scalar("dsa.deflate_busy_cycles",
                 static_cast<double>(dsa_stats_.deflate_busy_cycles));
    block.scalar("dsa.deflate_output_bytes",
                 static_cast<double>(dsa_stats_.deflate_output_bytes));
    block.scalar("dsa.deflate_order_faults",
                 static_cast<double>(dsa_stats_.deflate_order_faults));
}

} // namespace sd::smartdimm
