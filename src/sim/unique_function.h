/**
 * @file
 * Move-only callable wrapper for simulator callbacks. std::function's
 * copyability requirement forced two costs onto the hot path: capture
 * lists had to smuggle move-only state (e.g. a write burst's byte
 * vector) behind a shared_ptr, and its 16-byte small-object buffer
 * spilled every CAS-completion lambda (a DdrCommand plus completion
 * callback, ~128 bytes) onto the heap. A completion callback also
 * rides through several layers (CompCpy -> MemorySystem -> controller
 * -> event queue), and with std::function each hop *copied* it —
 * manager calls, refcount bumps, allocations. UniqueFunctionT fixes
 * all of it: callables up to kInlineBytes live inside the object, and
 * only moves are required, so captures own their state directly and
 * hops are pointer-steals or inline move-constructions.
 *
 * Semantics: nullable, move-only. Invoking an empty function is
 * undefined (hot paths guard with operator bool where a null callback
 * is legal). Inline storage requires the callable to be nothrow move
 * constructible; anything else — or anything larger than kInlineBytes
 * — transparently falls back to the heap.
 */

#ifndef SD_SIM_UNIQUE_FUNCTION_H
#define SD_SIM_UNIQUE_FUNCTION_H

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace sd {

template <typename Sig> class UniqueFunctionT;

/** Move-only callable with a large inline buffer. */
template <typename R, typename... Args>
class UniqueFunctionT<R(Args...)>
{
  public:
    /** Inline capacity, sized for the fattest hot-path lambda (a
     *  CAS completion: DdrCommand + data + nested callback). */
    static constexpr std::size_t kInlineBytes = 128;

    UniqueFunctionT() = default;
    UniqueFunctionT(std::nullptr_t) {}

    template <typename F,
              typename Fn = std::decay_t<F>,
              typename = std::enable_if_t<
                  !std::is_same_v<Fn, UniqueFunctionT> &&
                  std::is_invocable_r_v<R, Fn &, Args...>>>
    UniqueFunctionT(F &&f)
    {
        if constexpr (sizeof(Fn) <= kInlineBytes &&
                      alignof(Fn) <= alignof(std::max_align_t) &&
                      std::is_nothrow_move_constructible_v<Fn>) {
            ::new (static_cast<void *>(buf_)) Fn(std::forward<F>(f));
            ops_ = &InlineOps<Fn>::kOps;
        } else {
            heap_ = new Fn(std::forward<F>(f));
            ops_ = &HeapOps<Fn>::kOps;
        }
    }

    UniqueFunctionT(UniqueFunctionT &&other) noexcept
    {
        moveFrom(other);
    }

    UniqueFunctionT &
    operator=(UniqueFunctionT &&other) noexcept
    {
        if (this != &other) {
            destroy();
            moveFrom(other);
        }
        return *this;
    }

    UniqueFunctionT &
    operator=(std::nullptr_t)
    {
        destroy();
        return *this;
    }

    UniqueFunctionT(const UniqueFunctionT &) = delete;
    UniqueFunctionT &operator=(const UniqueFunctionT &) = delete;

    ~UniqueFunctionT() { destroy(); }

    /** Invoke. Precondition: non-empty. */
    R
    operator()(Args... args)
    {
        return ops_->invoke(*this, std::forward<Args>(args)...);
    }

    explicit operator bool() const { return ops_ != nullptr; }

  private:
    /** Per-callable-type operations (a hand-rolled vtable). */
    struct Ops
    {
        R (*invoke)(UniqueFunctionT &, Args...);
        /** Move-construct @p src's callable into raw @p dst storage
         *  and destroy the source callable. */
        void (*relocate)(UniqueFunctionT &dst,
                         UniqueFunctionT &src) noexcept;
        void (*destroy)(UniqueFunctionT &) noexcept;
    };

    template <typename Fn> struct InlineOps
    {
        static Fn &
        obj(UniqueFunctionT &u)
        {
            return *std::launder(reinterpret_cast<Fn *>(u.buf_));
        }
        static R
        invoke(UniqueFunctionT &u, Args... args)
        {
            return obj(u)(std::forward<Args>(args)...);
        }
        static void
        relocate(UniqueFunctionT &dst, UniqueFunctionT &src) noexcept
        {
            ::new (static_cast<void *>(dst.buf_)) Fn(
                std::move(obj(src)));
            obj(src).~Fn();
        }
        static void
        destroy(UniqueFunctionT &u) noexcept
        {
            obj(u).~Fn();
        }
        static constexpr Ops kOps{&invoke, &relocate, &destroy};
    };

    template <typename Fn> struct HeapOps
    {
        static Fn &
        obj(UniqueFunctionT &u)
        {
            return *static_cast<Fn *>(u.heap_);
        }
        static R
        invoke(UniqueFunctionT &u, Args... args)
        {
            return obj(u)(std::forward<Args>(args)...);
        }
        static void
        relocate(UniqueFunctionT &dst, UniqueFunctionT &src) noexcept
        {
            dst.heap_ = src.heap_;
        }
        static void
        destroy(UniqueFunctionT &u) noexcept
        {
            delete &obj(u);
        }
        static constexpr Ops kOps{&invoke, &relocate, &destroy};
    };

    void
    moveFrom(UniqueFunctionT &other) noexcept
    {
        ops_ = other.ops_;
        if (ops_) {
            ops_->relocate(*this, other);
            other.ops_ = nullptr;
        }
    }

    void
    destroy() noexcept
    {
        if (ops_) {
            ops_->destroy(*this);
            ops_ = nullptr;
        }
    }

    union
    {
        alignas(std::max_align_t) unsigned char buf_[kInlineBytes];
        void *heap_;
    };
    const Ops *ops_ = nullptr;
};

/** The event queue's callback type. */
using UniqueFunction = UniqueFunctionT<void()>;

} // namespace sd

#endif // SD_SIM_UNIQUE_FUNCTION_H
