/**
 * @file
 * Clock domains. The DRAM command clock and SmartDIMM buffer-device
 * clock (1/4 the DRAM rate, Sec. IV-C) are both expressed as tick
 * periods so cross-domain conversions stay exact.
 */

#ifndef SD_SIM_CLOCK_H
#define SD_SIM_CLOCK_H

#include "common/log.h"
#include "common/types.h"

namespace sd {

/** A fixed-frequency clock domain expressed as a tick period. */
class ClockDomain
{
  public:
    /** @param period_ticks ticks (ps) per cycle; must be non-zero. */
    explicit ClockDomain(Tick period_ticks) : period_(period_ticks)
    {
        SD_ASSERT(period_ticks > 0, "zero clock period");
    }

    /** Construct from a frequency in MHz. */
    static ClockDomain
    fromMHz(double mhz)
    {
        return ClockDomain(static_cast<Tick>(1e6 / mhz + 0.5));
    }

    Tick period() const { return period_; }

    /** Cycles elapsed at tick @p t (truncating). */
    Cycles cyclesAt(Tick t) const { return t / period_; }

    /** Tick of the start of cycle @p c. */
    Tick tickOf(Cycles c) const { return c * period_; }

    /** Next cycle boundary at or after @p t. */
    Tick
    nextEdge(Tick t) const
    {
        return divCeil(t, period_) * period_;
    }

    /** Convert a cycle count to ticks. */
    Tick toTicks(Cycles c) const { return c * period_; }

  private:
    Tick period_;
};

/**
 * Standard clocks for a DDR4-3200 system: the command/address bus runs
 * at 1600 MHz (data at 3200 MT/s) and the AxDIMM-style buffer device
 * at one quarter of that.
 */
struct SystemClocks
{
    /** DDR4-3200 command clock: 1600 MHz -> 625 ps. */
    ClockDomain dramClock = ClockDomain(625);

    /** Buffer device at 1/4 the DRAM clock: 400 MHz -> 2500 ps. */
    ClockDomain bufferClock = ClockDomain(2500);

    /** Host CPU at 2.8 GHz (Xeon Gold 6242 base clock). */
    ClockDomain cpuClock = ClockDomain(357);
};

} // namespace sd

#endif // SD_SIM_CLOCK_H
