#include "sim/event_queue.h"

#include <utility>

#include "common/log.h"

namespace sd {

void
EventQueue::siftUp(std::size_t i)
{
    Entry e = heap_[i];
    while (i > 0) {
        const std::size_t parent = (i - 1) / 2;
        if (!before(e, heap_[parent]))
            break;
        heap_[i] = heap_[parent];
        i = parent;
    }
    heap_[i] = e;
}

void
EventQueue::siftDown(std::size_t i)
{
    const std::size_t n = heap_.size();
    Entry e = heap_[i];
    for (;;) {
        std::size_t child = 2 * i + 1;
        if (child >= n)
            break;
        if (child + 1 < n && before(heap_[child + 1], heap_[child]))
            ++child;
        if (!before(heap_[child], e))
            break;
        heap_[i] = heap_[child];
        i = child;
    }
    heap_[i] = e;
}

EventQueue::Callback
EventQueue::popTop(Entry &top)
{
    top = heap_.front();
    heap_.front() = heap_.back();
    heap_.pop_back();
    if (!heap_.empty())
        siftDown(0);
    // Move the callback out and recycle the slot *before* running it:
    // a callback that schedules (the common case — self-rescheduling
    // clocks, pipelined completions) reuses the hot slot immediately.
    Callback cb = std::move(pool_[top.slot]);
    pool_[top.slot] = nullptr;
    free_slots_.push_back(top.slot);
    return cb;
}

void
EventQueue::schedule(Tick when, Callback cb, int priority)
{
    owner_.check();
    SD_ASSERT(when >= now_, "scheduling into the past (%llu < %llu)",
              static_cast<unsigned long long>(when),
              static_cast<unsigned long long>(now_));
    std::uint32_t slot;
    if (!free_slots_.empty()) {
        slot = free_slots_.back();
        free_slots_.pop_back();
        pool_[slot] = std::move(cb);
    } else {
        slot = static_cast<std::uint32_t>(pool_.size());
        pool_.push_back(std::move(cb));
    }
    heap_.push_back(Entry{when, seq_++, slot, priority});
    siftUp(heap_.size() - 1);
}

Tick
EventQueue::run()
{
    owner_.check();
    while (!heap_.empty()) {
        Entry top;
        Callback cb = popTop(top);
        now_ = top.when;
        ++executed_;
        cb();
    }
    return now_;
}

Tick
EventQueue::runUntil(Tick limit)
{
    owner_.check();
    while (!heap_.empty() && heap_.front().when <= limit) {
        Entry top;
        Callback cb = popTop(top);
        now_ = top.when;
        ++executed_;
        cb();
    }
    // Land exactly on the boundary even when idle or when the next
    // event sits past it, so follow-up schedule(limit, ...) calls are
    // legal and time never moves backwards (see header contract).
    if (now_ < limit)
        now_ = limit;
    return now_;
}

void
EventQueue::reset()
{
    owner_.check();
    heap_.clear();
    pool_.clear();
    free_slots_.clear();
    now_ = 0;
    seq_ = 0;
    executed_ = 0;
    // A drained, zeroed queue is the natural handoff point.
    owner_.release();
}

} // namespace sd
