#include "sim/event_queue.h"

#include "common/log.h"

namespace sd {

void
EventQueue::schedule(Tick when, Callback cb, int priority)
{
    owner_.check();
    SD_ASSERT(when >= now_, "scheduling into the past (%llu < %llu)",
              static_cast<unsigned long long>(when),
              static_cast<unsigned long long>(now_));
    heap_.push(Entry{when, priority, seq_++, std::move(cb)});
}

Tick
EventQueue::run()
{
    owner_.check();
    while (!heap_.empty()) {
        Entry e = heap_.top();
        heap_.pop();
        now_ = e.when;
        ++executed_;
        e.cb();
    }
    return now_;
}

Tick
EventQueue::runUntil(Tick limit)
{
    owner_.check();
    while (!heap_.empty() && heap_.top().when <= limit) {
        Entry e = heap_.top();
        heap_.pop();
        now_ = e.when;
        ++executed_;
        e.cb();
    }
    if (now_ < limit)
        now_ = limit;
    return now_;
}

void
EventQueue::reset()
{
    owner_.check();
    while (!heap_.empty())
        heap_.pop();
    now_ = 0;
    seq_ = 0;
    executed_ = 0;
    // A drained, zeroed queue is the natural handoff point.
    owner_.release();
}

} // namespace sd
