/**
 * @file
 * Discrete-event simulation kernel. Components schedule callbacks at
 * absolute ticks; the queue executes them in (tick, priority,
 * insertion-order) order. Single-threaded by design — the simulated
 * system may have many cores, the simulator has one.
 *
 * Concurrency contract: single-owner. One thread constructs and
 * drives a queue (and the whole simulated system hanging off it);
 * scaling across cores means one independent EventQueue per thread,
 * never sharing one. The contract is spot-checked at runtime by a
 * SingleOwnerChecker on every mutating entry point; reset() releases
 * ownership so a finished system can be handed to another thread.
 */

#ifndef SD_SIM_EVENT_QUEUE_H
#define SD_SIM_EVENT_QUEUE_H

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/thread_annotations.h"
#include "common/types.h"

namespace sd {

/**
 * Time-ordered event queue. Events are arbitrary callables; ties at
 * the same tick break on priority (lower first), then FIFO.
 */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    /** Default event priority. */
    static constexpr int kDefaultPriority = 100;

    /** @return the current simulation time. */
    Tick now() const { return now_; }

    /** Schedule @p cb at absolute tick @p when (>= now()). */
    void schedule(Tick when, Callback cb, int priority = kDefaultPriority);

    /** Schedule @p cb @p delta ticks in the future. */
    void scheduleIn(Tick delta, Callback cb,
                    int priority = kDefaultPriority)
    {
        schedule(now_ + delta, std::move(cb), priority);
    }

    /** Run until the queue drains. @return final tick. */
    Tick run();

    /** Run events up to and including tick @p limit. @return now(). */
    Tick runUntil(Tick limit);

    /** @return true when no events are pending. */
    bool empty() const { return heap_.empty(); }

    /** Number of events executed so far. */
    std::uint64_t executed() const { return executed_; }

    /** Drop all pending events and reset time to zero. */
    void reset();

  private:
    struct Entry
    {
        Tick when;
        int priority;
        std::uint64_t seq;
        Callback cb;
    };

    struct Later
    {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            if (a.priority != b.priority)
                return a.priority > b.priority;
            return a.seq > b.seq;
        }
    };

    /** Runtime spot-check of the single-owner contract. */
    SingleOwnerChecker owner_;

    std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
    Tick now_ = 0;
    std::uint64_t seq_ = 0;
    std::uint64_t executed_ = 0;
};

} // namespace sd

#endif // SD_SIM_EVENT_QUEUE_H
