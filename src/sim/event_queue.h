/**
 * @file
 * Discrete-event simulation kernel. Components schedule callbacks at
 * absolute ticks; the queue executes them in (tick, priority,
 * insertion-order) order. Single-threaded by design — the simulated
 * system may have many cores, the simulator has one.
 *
 * Hot-path design: the heap orders small POD entries (tick, priority,
 * seq, pool slot) while the callbacks themselves live in a slot pool
 * with a free list. Sift operations therefore move 24-byte PODs, not
 * std::functions, and popping *moves* the callback out of its slot —
 * the seed implementation's std::priority_queue copied the whole
 * Entry (including the heap-allocated std::function state) out of
 * top() on every executed event, which dominated the simulator
 * profile at fleet scale.
 *
 * Time contract:
 *  - schedule(when, ...) requires when >= now(); scheduling into the
 *    past is a programming error (asserts).
 *  - run() drains the queue; now() ends at the last executed tick.
 *  - runUntil(limit) executes every event with tick <= limit —
 *    including events scheduled *during* the call at ticks <= limit —
 *    and then advances now() to exactly `limit`, even when the queue
 *    is empty or the next pending event sits at limit + 1. Callers
 *    can therefore schedule at `limit` immediately after the call
 *    (same-tick scheduling is legal; earlier is not): time never
 *    moves backwards across a runUntil() boundary.
 *  - reset() drops pending events, zeroes now()/seq/executed, and
 *    releases single-owner ownership (see below). After reset() the
 *    queue behaves exactly like a freshly constructed one.
 *
 * Concurrency contract: single-owner. One thread constructs and
 * drives a queue (and the whole simulated system hanging off it);
 * scaling across cores means one independent EventQueue per thread,
 * never sharing one. The contract is spot-checked at runtime by a
 * SingleOwnerChecker on every mutating entry point; reset() releases
 * ownership so a finished system can be handed to another thread,
 * which re-acquires on its first mutating call.
 */

#ifndef SD_SIM_EVENT_QUEUE_H
#define SD_SIM_EVENT_QUEUE_H

#include <cstdint>
#include <vector>

#include "common/thread_annotations.h"
#include "common/types.h"
#include "sim/unique_function.h"

namespace sd {

/**
 * Time-ordered event queue. Events are arbitrary callables; ties at
 * the same tick break on priority (lower first), then FIFO.
 */
class EventQueue
{
  public:
    /**
     * Move-only with a 128-byte inline buffer: scheduling never
     * heap-allocates for hot-path lambdas, and captures may own
     * move-only state (write bursts, completion callbacks) directly
     * instead of via shared_ptr.
     */
    using Callback = UniqueFunction;

    /** Default event priority. */
    static constexpr int kDefaultPriority = 100;

    /** @return the current simulation time. */
    Tick now() const { return now_; }

    /** Schedule @p cb at absolute tick @p when (>= now()). */
    void schedule(Tick when, Callback cb, int priority = kDefaultPriority);

    /** Schedule @p cb @p delta ticks in the future. */
    void scheduleIn(Tick delta, Callback cb,
                    int priority = kDefaultPriority)
    {
        schedule(now_ + delta, std::move(cb), priority);
    }

    /** Run until the queue drains. @return final tick. */
    Tick run();

    /**
     * Run every event with tick <= @p limit (including ones scheduled
     * at <= limit during the call), then set now() to exactly @p
     * limit. @return now() (== limit). See the file comment for the
     * full boundary contract.
     */
    Tick runUntil(Tick limit);

    /** @return true when no events are pending. */
    bool empty() const { return heap_.empty(); }

    /** Number of pending (not yet executed) events. */
    std::size_t pending() const { return heap_.size(); }

    /**
     * Tick of the earliest pending event. Precondition: !empty().
     * Useful for drivers that interleave simulation with external
     * work and want to sleep to the next event.
     */
    Tick
    nextAt() const
    {
        return heap_.front().when;
    }

    /** Number of events executed so far. */
    std::uint64_t executed() const { return executed_; }

    /**
     * Drop all pending events, reset time/sequence/executed to zero
     * and release single-owner ownership (handoff point).
     */
    void reset();

  private:
    /**
     * Heap node: ordering key plus the index of the callback's pool
     * slot. Deliberately POD-small so sift operations stay cheap.
     */
    struct Entry
    {
        Tick when;
        std::uint64_t seq;
        std::uint32_t slot;
        std::int32_t priority;
    };

    /** @return true when @p a executes before @p b. */
    static bool
    before(const Entry &a, const Entry &b)
    {
        if (a.when != b.when)
            return a.when < b.when;
        if (a.priority != b.priority)
            return a.priority < b.priority;
        return a.seq < b.seq;
    }

    void siftUp(std::size_t i);
    void siftDown(std::size_t i);

    /** Pop the top entry and move its callback out of the pool. */
    Callback popTop(Entry &top);

    /** Runtime spot-check of the single-owner contract. */
    SingleOwnerChecker owner_;

    /** Binary min-heap of POD entries (root at index 0). */
    std::vector<Entry> heap_;
    /** Callback storage; entries index into this via Entry::slot. */
    std::vector<Callback> pool_;
    /** Recycled pool slots. */
    std::vector<std::uint32_t> free_slots_;

    Tick now_ = 0;
    std::uint64_t seq_ = 0;
    std::uint64_t executed_ = 0;
};

} // namespace sd

#endif // SD_SIM_EVENT_QUEUE_H
