/**
 * @file
 * End-to-end observability for the CompCpy pipeline.
 *
 * Two cooperating pieces:
 *
 *  - Tracer: a span-based event recorder. Each CompCpy invocation
 *    opens a span; every pipeline stage — source cache flush, MMIO
 *    registration, 64 B copy loop, DSA transform, scratchpad staging,
 *    self-/force-recycle drain, USE-side flush — appends a
 *    cycle-stamped event to the span. Device-side components that do
 *    not know about spans attribute events through a page→span
 *    binding the engine establishes at span start. The memory
 *    controllers can additionally mirror their full DDR command
 *    stream into the tracer (golden-trace regression tests diff this
 *    sequence against a checked-in file).
 *
 *  - StatsRegistry: components register named provider blocks that
 *    emit Counter/Average/Histogram/LogHistogram summaries on demand;
 *    the harness dumps everything as JSON or CSV after a run.
 *
 * Cost model: every recording entry point begins with a single
 * predictable branch on `enabled_`, so a disabled tracer adds
 * near-zero overhead to the simulation hot paths. Defining
 * SD_TRACE_DISABLED at build time additionally compiles the recording
 * macros out entirely.
 *
 * Concurrency contract: the Tracer and StatsRegistry are the two
 * pieces of genuinely process-shared state in the stack (many driver
 * threads, each owning an independent simulated system, record into
 * the one tracer()). Every recording and registration entry point is
 * therefore thread-safe behind an annotated mutex; the enabled check
 * stays a lock-free atomic load so the disabled fast path is
 * unchanged. Event order under concurrency follows lock-acquisition
 * order; single-threaded runs are bit-identical to the unsynchronised
 * implementation (the golden-trace suite is the guard).
 */

#ifndef SD_TRACE_TRACE_H
#define SD_TRACE_TRACE_H

#include <atomic>
#include <cstdint>
#include <functional>
#include <ostream>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/stats.h"
#include "common/thread_annotations.h"
#include "common/types.h"

namespace sd::trace {

/** Pipeline stages and DDR command mirror events a span can carry. */
enum class Stage : std::uint8_t
{
    kFlush = 0,     ///< sbuf clflush completed (Alg. 2 line 19)
    kRegister,      ///< MMIO page-pair registration write (S17)
    kCopy,          ///< one 64 B line of the copy loop landed
    kTransform,     ///< DSA consumed an sbuf line (S6)
    kStage,         ///< DSA result line staged in the Scratchpad
    kRecycle,       ///< Self-Recycle drain of a staged line (S8/S9)
    kForceRecycle,  ///< Force-Recycle invoked (Alg. 1)
    kUse,           ///< USE-side flush of a dbuf line (Alg. 2 l. 32)
    kAlert,         ///< ALERT_N retry of a premature dbuf read (S13)
    kFault,         ///< injected fault or degraded-mode transition
    kDdrRead,       ///< mirrored rdCAS
    kDdrWrite,      ///< mirrored wrCAS
    kDdrActivate,   ///< mirrored ACT
    kDdrPrecharge,  ///< mirrored PRE
    kSubmit,        ///< work-queue descriptor accepted (doorbell rung)
    kComplete,      ///< completion record written for a descriptor op
    kCount,
};

/** Stable short name used in every dump format. */
const char *stageName(Stage s);

/**
 * Intern @p name into a process-lifetime pool and return a pointer
 * valid for the rest of the process. Span kinds are borrowed
 * `const char *`: a dynamically composed name (e.g. a per-device span
 * tag like "tls.ch1.d0") must outlive every consumer of the trace —
 * including dumps taken after the component that composed it is gone —
 * so it goes through this pool rather than a member string.
 * Thread-safe; the pool only ever grows (a few names per device).
 */
const char *internString(const std::string &name);

/** One cycle-stamped trace record. */
struct TraceEvent
{
    Tick tick = 0;
    std::uint32_t span = 0; ///< owning span id, 0 = unattributed
    Stage stage = Stage::kCount;
    Addr addr = 0;
};

/** One CompCpy invocation (or other traced unit of work). */
struct Span
{
    std::uint32_t id = 0;
    const char *kind = ""; ///< "tls" | "deflate" | caller-defined
    Addr sbuf = 0;
    Addr dbuf = 0;
    std::size_t bytes = 0;
    Tick begin = 0;
    /** Explicit end mark from endSpan(); 0 = derived from last event. */
    Tick end = 0;
};

/**
 * A flat, ordered set of (name, value) rows one component contributes
 * to a stats dump. Histogram helpers expand into the conventional
 * summary rows (count/mean/p50/p90/p99/max).
 */
class StatsBlock
{
  public:
    void scalar(const std::string &name, double value);

    /** Summarise a linear histogram. */
    void hist(const std::string &name, const Histogram &h);

    /** Summarise a log histogram (latency-style percentiles). */
    void hist(const std::string &name, const LogHistogram &h);

    const std::vector<std::pair<std::string, double>> &
    entries() const
    {
        return entries_;
    }

  private:
    std::vector<std::pair<std::string, double>> entries_;
};

/**
 * Named stats providers, collected lazily at dump time so components
 * do not pay any bookkeeping cost during the run. Register with a
 * stable component name; re-registering replaces. Providers capture
 * raw pointers into their components — remove (or discard the
 * registry) before the component is destroyed.
 *
 * Thread-safe: add/remove/collect serialise on an internal mutex, so
 * driver threads may register their components against one shared
 * registry. collect() snapshots the provider list under the lock but
 * invokes the providers outside it — providers read component state,
 * which must be quiescent (or itself thread-safe) at dump time.
 */
class StatsRegistry
{
  public:
    using Provider = std::function<void(StatsBlock &)>;

    void add(const std::string &component, Provider provider);
    void remove(const std::string &component);

    void
    clear()
    {
        MutexLock lock(mu_);
        providers_.clear();
    }

    /** Number of registered providers. */
    std::size_t
    size() const
    {
        MutexLock lock(mu_);
        return providers_.size();
    }

    /** Collect every provider into (component, block) rows. */
    std::vector<std::pair<std::string, StatsBlock>> collect() const;

    /** `{"component": {"name": value, ...}, ...}` */
    void dumpJson(std::ostream &os) const;

    /** `component,name,value` rows. */
    void dumpCsv(std::ostream &os) const;

  private:
    mutable Mutex mu_;
    /** Insertion-ordered so dumps are reproducible. */
    std::vector<std::pair<std::string, Provider>> providers_
        SD_GUARDED_BY(mu_);
};

/**
 * Span/event recorder. Use the process-wide instance via tracer().
 * All recording entry points are thread-safe (see the file comment).
 */
class Tracer
{
  public:
    bool
    enabled() const
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    /** @return true when DDR commands should be mirrored too. */
    bool
    ddrCapture() const
    {
        return enabled() && capture_ddr_.load(std::memory_order_relaxed);
    }

    /**
     * Start recording. @p capture_ddr additionally mirrors every DDR
     * command the memory controllers emit (verbose; used by the
     * golden-trace tests and fig09-style analyses).
     */
    void enable(bool capture_ddr = false);

    /** Stop recording; captured data stays until clear(). */
    void disable() { enabled_.store(false, std::memory_order_relaxed); }

    /** Drop spans, events and page bindings (keeps enable state). */
    void clear();

    /** Cap the event buffer; excess events count as dropped. */
    void setMaxEvents(std::size_t n);

    // ----- recording --------------------------------------------------------

    /** Open a span. @return its id (0 when disabled). */
    std::uint32_t beginSpan(const char *kind, Addr sbuf, Addr dbuf,
                            std::size_t bytes, Tick now);

    /**
     * Mark a span finished at @p tick. Page bindings stay intact
     * (device-side drains trail a CompCpy, so late events still
     * attribute correctly until clear()). The mark is advisory
     * metadata surfaced through spans(); derived span end times in
     * the dumps are unchanged.
     */
    void endSpan(std::uint32_t span, Tick tick);

    /** Attribute device-side events on @p page to @p span. */
    void bindPage(std::uint64_t page, std::uint32_t span);

    /** @return span bound to @p page, or 0. */
    std::uint32_t spanOfPage(std::uint64_t page) const;

    /** Record an event on an explicit span (0 is dropped). */
    void event(std::uint32_t span, Stage stage, Tick tick, Addr addr = 0);

    /** Record an event attributed through the page binding. */
    void pageEvent(std::uint64_t page, Stage stage, Tick tick,
                   Addr addr = 0);

    /** Mirror one DDR command (recorded even when unattributed). */
    void ddrEvent(Stage stage, Tick tick, Addr addr);

    /** One buffered DDR-mirror record (see DdrBatch). */
    struct DdrRecord
    {
        Stage stage;
        Tick tick;
        Addr addr;
    };

    /**
     * Mirror @p n DDR commands in one lock acquisition, in array
     * order. Equivalent to n ddrEvent() calls with no interleaved
     * recording from other entry points.
     */
    void ddrEvents(const DdrRecord *recs, std::size_t n);

    /**
     * Record a kFault event attributed through the page binding of
     * @p page, but — unlike pageEvent() — recorded even when no span
     * is bound (fault sites may fire outside any CompCpy, e.g. an MMIO
     * register lie). The fault-injected golden trace pins these.
     */
    void faultEvent(std::uint64_t page, Tick tick, Addr addr);

    // ----- inspection -------------------------------------------------------

    /** Snapshot of all spans opened so far. */
    std::vector<Span> spans() const;

    /** Snapshot of the event log in capture order. */
    std::vector<TraceEvent> events() const;

    std::uint64_t droppedEvents() const;

    /** Events of @p span grouped in capture order. */
    std::vector<TraceEvent> spanEvents(std::uint32_t span) const;

    /** @return true when @p span recorded at least one @p stage. */
    bool spanHasStage(std::uint32_t span, Stage stage) const;

    // ----- dumping ----------------------------------------------------------

    /**
     * Full JSON report: spans with per-stage {count, first, last}
     * summaries, cross-span per-stage completion-latency percentiles,
     * and (when given) an embedded stats registry dump.
     */
    void dumpJson(std::ostream &os,
                  const StatsRegistry *stats = nullptr) const;

    /** `tick,span,stage,addr` rows in capture order. */
    void dumpCsv(std::ostream &os) const;

    /** dumpJson into @p path. @return false on I/O failure. */
    bool writeJsonFile(const std::string &path,
                       const StatsRegistry *stats = nullptr) const;

    /** dumpCsv into @p path. @return false on I/O failure. */
    bool writeCsvFile(const std::string &path) const;

  private:
    std::uint32_t spanOfPageLocked(std::uint64_t page) const
        SD_REQUIRES(mu_);
    void recordLocked(std::uint32_t span, Stage stage, Tick tick,
                      Addr addr) SD_REQUIRES(mu_);
    void dumpJsonLocked(std::ostream &os, const StatsRegistry *stats)
        const SD_REQUIRES(mu_);
    void dumpCsvLocked(std::ostream &os) const SD_REQUIRES(mu_);

    /** Lock-free so the disabled fast path stays a single branch. */
    std::atomic<bool> enabled_{false};
    std::atomic<bool> capture_ddr_{false};

    mutable Mutex mu_;
    std::size_t max_events_ SD_GUARDED_BY(mu_) = 1u << 20;
    std::uint64_t dropped_ SD_GUARDED_BY(mu_) = 0;
    std::vector<Span> spans_ SD_GUARDED_BY(mu_);
    std::vector<TraceEvent> events_ SD_GUARDED_BY(mu_);
    std::unordered_map<std::uint64_t, std::uint32_t> page_span_
        SD_GUARDED_BY(mu_);
};

/** The process-wide tracer every simulator component records into. */
Tracer &tracer();

/**
 * Batched DDR-mirror emission for the memory controller's
 * per-command path. The seed took the tracer mutex and did a
 * page→span hash lookup per DDR command; one FR-FCFS scheduler pass
 * can emit a burst of PRE/ACT/CAS commands, so the controller
 * buffers them here and flushes once per pass (or when the buffer
 * fills).
 *
 * Ordering caveat: batching is only capture-order-preserving because
 * nothing else records into the tracer between add() and flush() —
 * a scheduler pass is one event callback, and the attached DIMM
 * device records nothing synchronously from onCommand(). The
 * golden-trace suite pins byte-identity with unbatched recording.
 * Owners must flush() before returning to the event loop.
 */
class DdrBatch
{
  public:
    static constexpr std::size_t kCapacity = 64;

    void
    add(Stage stage, Tick tick, Addr addr)
    {
        if (n_ == kCapacity)
            flush();
        buf_[n_++] = Tracer::DdrRecord{stage, tick, addr};
    }

    void
    flush()
    {
        if (n_ == 0)
            return;
        tracer().ddrEvents(buf_, n_);
        n_ = 0;
    }

  private:
    Tracer::DdrRecord buf_[kCapacity];
    std::size_t n_ = 0;
};

} // namespace sd::trace

// Recording macros: compiled out entirely under SD_TRACE_DISABLED,
// otherwise a single branch on the enabled flag.
//
// SD_SPAN_BEGIN/SD_SPAN_END delimit a synchronous traced unit of
// work; tools/sdlint.py enforces that each function balances them.
// Asynchronous flows whose span outlives the opening function (the
// CompCpy engine) use the raw beginSpan()/endSpan() API instead.
#ifdef SD_TRACE_DISABLED
#define SD_TRACE_EVENT(span, stage, tick, addr) ((void)0)
#define SD_TRACE_PAGE_EVENT(page, stage, tick, addr) ((void)0)
#define SD_TRACE_FAULT_EVENT(page, tick, addr) ((void)0)
#define SD_SPAN_BEGIN(kind, sbuf, dbuf, bytes, now) (std::uint32_t{0})
#define SD_SPAN_END(span, tick) ((void)(span))
#else
#define SD_TRACE_EVENT(span, stage, tick, addr)                             \
    ::sd::trace::tracer().event((span), (stage), (tick), (addr))
#define SD_TRACE_PAGE_EVENT(page, stage, tick, addr)                        \
    ::sd::trace::tracer().pageEvent((page), (stage), (tick), (addr))
#define SD_TRACE_FAULT_EVENT(page, tick, addr)                              \
    ::sd::trace::tracer().faultEvent((page), (tick), (addr))
#define SD_SPAN_BEGIN(kind, sbuf, dbuf, bytes, now)                         \
    ::sd::trace::tracer().beginSpan((kind), (sbuf), (dbuf), (bytes), (now))
#define SD_SPAN_END(span, tick)                                             \
    ::sd::trace::tracer().endSpan((span), (tick))
#endif

#endif // SD_TRACE_TRACE_H
