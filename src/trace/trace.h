/**
 * @file
 * End-to-end observability for the CompCpy pipeline.
 *
 * Two cooperating pieces:
 *
 *  - Tracer: a span-based event recorder. Each CompCpy invocation
 *    opens a span; every pipeline stage — source cache flush, MMIO
 *    registration, 64 B copy loop, DSA transform, scratchpad staging,
 *    self-/force-recycle drain, USE-side flush — appends a
 *    cycle-stamped event to the span. Device-side components that do
 *    not know about spans attribute events through a page→span
 *    binding the engine establishes at span start. The memory
 *    controllers can additionally mirror their full DDR command
 *    stream into the tracer (golden-trace regression tests diff this
 *    sequence against a checked-in file).
 *
 *  - StatsRegistry: components register named provider blocks that
 *    emit Counter/Average/Histogram/LogHistogram summaries on demand;
 *    the harness dumps everything as JSON or CSV after a run.
 *
 * Cost model: every recording entry point begins with a single
 * predictable branch on `enabled_`, so a disabled tracer adds
 * near-zero overhead to the simulation hot paths. Defining
 * SD_TRACE_DISABLED at build time additionally compiles the recording
 * macros out entirely.
 */

#ifndef SD_TRACE_TRACE_H
#define SD_TRACE_TRACE_H

#include <cstdint>
#include <functional>
#include <ostream>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/stats.h"
#include "common/types.h"

namespace sd::trace {

/** Pipeline stages and DDR command mirror events a span can carry. */
enum class Stage : std::uint8_t
{
    kFlush = 0,     ///< sbuf clflush completed (Alg. 2 line 19)
    kRegister,      ///< MMIO page-pair registration write (S17)
    kCopy,          ///< one 64 B line of the copy loop landed
    kTransform,     ///< DSA consumed an sbuf line (S6)
    kStage,         ///< DSA result line staged in the Scratchpad
    kRecycle,       ///< Self-Recycle drain of a staged line (S8/S9)
    kForceRecycle,  ///< Force-Recycle invoked (Alg. 1)
    kUse,           ///< USE-side flush of a dbuf line (Alg. 2 l. 32)
    kAlert,         ///< ALERT_N retry of a premature dbuf read (S13)
    kDdrRead,       ///< mirrored rdCAS
    kDdrWrite,      ///< mirrored wrCAS
    kDdrActivate,   ///< mirrored ACT
    kDdrPrecharge,  ///< mirrored PRE
    kCount,
};

/** Stable short name used in every dump format. */
const char *stageName(Stage s);

/** One cycle-stamped trace record. */
struct TraceEvent
{
    Tick tick = 0;
    std::uint32_t span = 0; ///< owning span id, 0 = unattributed
    Stage stage = Stage::kCount;
    Addr addr = 0;
};

/** One CompCpy invocation (or other traced unit of work). */
struct Span
{
    std::uint32_t id = 0;
    const char *kind = ""; ///< "tls" | "deflate" | caller-defined
    Addr sbuf = 0;
    Addr dbuf = 0;
    std::size_t bytes = 0;
    Tick begin = 0;
};

/**
 * A flat, ordered set of (name, value) rows one component contributes
 * to a stats dump. Histogram helpers expand into the conventional
 * summary rows (count/mean/p50/p90/p99/max).
 */
class StatsBlock
{
  public:
    void scalar(const std::string &name, double value);

    /** Summarise a linear histogram. */
    void hist(const std::string &name, const Histogram &h);

    /** Summarise a log histogram (latency-style percentiles). */
    void hist(const std::string &name, const LogHistogram &h);

    const std::vector<std::pair<std::string, double>> &
    entries() const
    {
        return entries_;
    }

  private:
    std::vector<std::pair<std::string, double>> entries_;
};

/**
 * Named stats providers, collected lazily at dump time so components
 * do not pay any bookkeeping cost during the run. Register with a
 * stable component name; re-registering replaces. Providers capture
 * raw pointers into their components — remove (or discard the
 * registry) before the component is destroyed.
 */
class StatsRegistry
{
  public:
    using Provider = std::function<void(StatsBlock &)>;

    void add(const std::string &component, Provider provider);
    void remove(const std::string &component);
    void clear() { providers_.clear(); }

    /** Collect every provider into (component, block) rows. */
    std::vector<std::pair<std::string, StatsBlock>> collect() const;

    /** `{"component": {"name": value, ...}, ...}` */
    void dumpJson(std::ostream &os) const;

    /** `component,name,value` rows. */
    void dumpCsv(std::ostream &os) const;

  private:
    /** Insertion-ordered so dumps are reproducible. */
    std::vector<std::pair<std::string, Provider>> providers_;
};

/** Span/event recorder. Use the process-wide instance via tracer(). */
class Tracer
{
  public:
    bool enabled() const { return enabled_; }

    /** @return true when DDR commands should be mirrored too. */
    bool ddrCapture() const { return enabled_ && capture_ddr_; }

    /**
     * Start recording. @p capture_ddr additionally mirrors every DDR
     * command the memory controllers emit (verbose; used by the
     * golden-trace tests and fig09-style analyses).
     */
    void enable(bool capture_ddr = false);

    /** Stop recording; captured data stays until clear(). */
    void disable() { enabled_ = false; }

    /** Drop spans, events and page bindings (keeps enable state). */
    void clear();

    /** Cap the event buffer; excess events count as dropped. */
    void setMaxEvents(std::size_t n) { max_events_ = n; }

    // ----- recording --------------------------------------------------------

    /** Open a span. @return its id (0 when disabled). */
    std::uint32_t beginSpan(const char *kind, Addr sbuf, Addr dbuf,
                            std::size_t bytes, Tick now);

    /** Attribute device-side events on @p page to @p span. */
    void bindPage(std::uint64_t page, std::uint32_t span);

    /** @return span bound to @p page, or 0. */
    std::uint32_t spanOfPage(std::uint64_t page) const;

    /** Record an event on an explicit span (0 is dropped). */
    void event(std::uint32_t span, Stage stage, Tick tick, Addr addr = 0);

    /** Record an event attributed through the page binding. */
    void
    pageEvent(std::uint64_t page, Stage stage, Tick tick, Addr addr = 0)
    {
        if (!enabled_)
            return;
        event(spanOfPage(page), stage, tick, addr);
    }

    /** Mirror one DDR command (recorded even when unattributed). */
    void ddrEvent(Stage stage, Tick tick, Addr addr);

    // ----- inspection -------------------------------------------------------

    const std::vector<Span> &spans() const { return spans_; }
    const std::vector<TraceEvent> &events() const { return events_; }
    std::uint64_t droppedEvents() const { return dropped_; }

    /** Events of @p span grouped in capture order. */
    std::vector<TraceEvent> spanEvents(std::uint32_t span) const;

    /** @return true when @p span recorded at least one @p stage. */
    bool spanHasStage(std::uint32_t span, Stage stage) const;

    // ----- dumping ----------------------------------------------------------

    /**
     * Full JSON report: spans with per-stage {count, first, last}
     * summaries, cross-span per-stage completion-latency percentiles,
     * and (when given) an embedded stats registry dump.
     */
    void dumpJson(std::ostream &os,
                  const StatsRegistry *stats = nullptr) const;

    /** `tick,span,stage,addr` rows in capture order. */
    void dumpCsv(std::ostream &os) const;

    /** dumpJson into @p path. @return false on I/O failure. */
    bool writeJsonFile(const std::string &path,
                       const StatsRegistry *stats = nullptr) const;

    /** dumpCsv into @p path. @return false on I/O failure. */
    bool writeCsvFile(const std::string &path) const;

  private:
    bool enabled_ = false;
    bool capture_ddr_ = false;
    std::size_t max_events_ = 1u << 20;
    std::uint64_t dropped_ = 0;
    std::vector<Span> spans_;
    std::vector<TraceEvent> events_;
    std::unordered_map<std::uint64_t, std::uint32_t> page_span_;
};

/** The process-wide tracer every simulator component records into. */
Tracer &tracer();

} // namespace sd::trace

// Recording macros: compiled out entirely under SD_TRACE_DISABLED,
// otherwise a single branch on the enabled flag.
#ifdef SD_TRACE_DISABLED
#define SD_TRACE_EVENT(span, stage, tick, addr) ((void)0)
#define SD_TRACE_PAGE_EVENT(page, stage, tick, addr) ((void)0)
#else
#define SD_TRACE_EVENT(span, stage, tick, addr)                             \
    ::sd::trace::tracer().event((span), (stage), (tick), (addr))
#define SD_TRACE_PAGE_EVENT(page, stage, tick, addr)                        \
    ::sd::trace::tracer().pageEvent((page), (stage), (tick), (addr))
#endif

#endif // SD_TRACE_TRACE_H
