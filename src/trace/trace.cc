#include "trace/trace.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <unordered_set>

#include "common/log.h"

namespace sd::trace {

const char *
stageName(Stage s)
{
    static constexpr std::array<const char *,
                                static_cast<std::size_t>(Stage::kCount)>
        kNames = {
            "flush",   "register", "copy",          "transform",
            "stage",   "recycle",  "force_recycle", "use",
            "alert",   "fault",    "ddr_rd",        "ddr_wr",
            "ddr_act", "ddr_pre",  "submit",        "complete",
        };
    const auto i = static_cast<std::size_t>(s);
    return i < kNames.size() ? kNames[i] : "?";
}

const char *
internString(const std::string &name)
{
    static Mutex mu;
    // Leaked on purpose: interned names must stay valid through
    // static-destruction-order teardown. unordered_set is node-based,
    // so growth never moves the stored strings.
    static auto *pool = new std::unordered_set<std::string>();
    MutexLock lock(mu);
    return pool->insert(name).first->c_str();
}

namespace {

/** JSON-friendly number: integral values print without a fraction. */
void
printNumber(std::ostream &os, double v)
{
    if (std::isfinite(v) && v == std::floor(v) && std::abs(v) < 1e15) {
        os << static_cast<long long>(v);
        return;
    }
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    os << buf;
}

} // namespace

// ----- StatsBlock -----------------------------------------------------------

void
StatsBlock::scalar(const std::string &name, double value)
{
    entries_.emplace_back(name, value);
}

void
StatsBlock::hist(const std::string &name, const Histogram &h)
{
    scalar(name + ".count", static_cast<double>(h.count()));
    scalar(name + ".mean", h.mean());
    scalar(name + ".p50", h.percentile(0.50));
    scalar(name + ".p90", h.percentile(0.90));
    scalar(name + ".p99", h.percentile(0.99));
}

void
StatsBlock::hist(const std::string &name, const LogHistogram &h)
{
    scalar(name + ".count", static_cast<double>(h.count()));
    scalar(name + ".mean", h.mean());
    scalar(name + ".p50", static_cast<double>(h.percentile(0.50)));
    scalar(name + ".p90", static_cast<double>(h.percentile(0.90)));
    scalar(name + ".p99", static_cast<double>(h.percentile(0.99)));
    scalar(name + ".max", static_cast<double>(h.max()));
}

// ----- StatsRegistry --------------------------------------------------------

void
StatsRegistry::add(const std::string &component, Provider provider)
{
    MutexLock lock(mu_);
    for (auto &[name, p] : providers_) {
        if (name == component) {
            p = std::move(provider);
            return;
        }
    }
    providers_.emplace_back(component, std::move(provider));
}

void
StatsRegistry::remove(const std::string &component)
{
    MutexLock lock(mu_);
    std::erase_if(providers_,
                  [&](const auto &p) { return p.first == component; });
}

std::vector<std::pair<std::string, StatsBlock>>
StatsRegistry::collect() const
{
    // Snapshot under the lock, run the providers outside it: a
    // provider may legitimately call back into this registry, and
    // component state is required to be quiescent at dump time anyway.
    std::vector<std::pair<std::string, Provider>> snapshot;
    {
        MutexLock lock(mu_);
        snapshot = providers_;
    }
    std::vector<std::pair<std::string, StatsBlock>> out;
    out.reserve(snapshot.size());
    for (const auto &[name, provider] : snapshot) {
        StatsBlock block;
        provider(block);
        out.emplace_back(name, std::move(block));
    }
    return out;
}

void
StatsRegistry::dumpJson(std::ostream &os) const
{
    os << "{";
    bool first_component = true;
    for (const auto &[name, block] : collect()) {
        os << (first_component ? "\n" : ",\n");
        first_component = false;
        os << "  \"" << name << "\": {";
        bool first_row = true;
        for (const auto &[key, value] : block.entries()) {
            os << (first_row ? "\n" : ",\n");
            first_row = false;
            os << "    \"" << key << "\": ";
            printNumber(os, value);
        }
        os << "\n  }";
    }
    os << "\n}\n";
}

void
StatsRegistry::dumpCsv(std::ostream &os) const
{
    os << "component,name,value\n";
    for (const auto &[name, block] : collect()) {
        for (const auto &[key, value] : block.entries()) {
            os << name << "," << key << ",";
            printNumber(os, value);
            os << "\n";
        }
    }
}

// ----- Tracer ---------------------------------------------------------------

Tracer &
tracer()
{
    static Tracer instance;
    return instance;
}

void
Tracer::enable(bool capture_ddr)
{
    capture_ddr_.store(capture_ddr, std::memory_order_relaxed);
    enabled_.store(true, std::memory_order_relaxed);
}

void
Tracer::clear()
{
    MutexLock lock(mu_);
    spans_.clear();
    events_.clear();
    page_span_.clear();
    dropped_ = 0;
}

void
Tracer::setMaxEvents(std::size_t n)
{
    MutexLock lock(mu_);
    max_events_ = n;
}

std::uint32_t
Tracer::beginSpan(const char *kind, Addr sbuf, Addr dbuf,
                  std::size_t bytes, Tick now)
{
    if (!enabled())
        return 0;
    MutexLock lock(mu_);
    Span span;
    span.id = static_cast<std::uint32_t>(spans_.size()) + 1;
    span.kind = kind;
    span.sbuf = sbuf;
    span.dbuf = dbuf;
    span.bytes = bytes;
    span.begin = now;
    spans_.push_back(span);
    return span.id;
}

void
Tracer::endSpan(std::uint32_t span, Tick tick)
{
    if (!enabled() || span == 0)
        return;
    MutexLock lock(mu_);
    if (span <= spans_.size())
        spans_[span - 1].end = tick;
}

void
Tracer::bindPage(std::uint64_t page, std::uint32_t span)
{
    if (!enabled() || span == 0)
        return;
    MutexLock lock(mu_);
    page_span_[page] = span;
}

std::uint32_t
Tracer::spanOfPage(std::uint64_t page) const
{
    MutexLock lock(mu_);
    return spanOfPageLocked(page);
}

std::uint32_t
Tracer::spanOfPageLocked(std::uint64_t page) const
{
    const auto it = page_span_.find(page);
    return it == page_span_.end() ? 0 : it->second;
}

void
Tracer::recordLocked(std::uint32_t span, Stage stage, Tick tick,
                     Addr addr)
{
    if (events_.size() >= max_events_) {
        ++dropped_;
        return;
    }
    events_.push_back(TraceEvent{tick, span, stage, addr});
}

void
Tracer::event(std::uint32_t span, Stage stage, Tick tick, Addr addr)
{
    if (!enabled() || span == 0)
        return;
    MutexLock lock(mu_);
    recordLocked(span, stage, tick, addr);
}

void
Tracer::pageEvent(std::uint64_t page, Stage stage, Tick tick, Addr addr)
{
    if (!enabled())
        return;
    MutexLock lock(mu_);
    const std::uint32_t span = spanOfPageLocked(page);
    if (span == 0)
        return;
    recordLocked(span, stage, tick, addr);
}

void
Tracer::ddrEvent(Stage stage, Tick tick, Addr addr)
{
    if (!ddrCapture())
        return;
    MutexLock lock(mu_);
    recordLocked(spanOfPageLocked(addr / kPageSize), stage, tick, addr);
}

void
Tracer::ddrEvents(const DdrRecord *recs, std::size_t n)
{
    if (n == 0 || !ddrCapture())
        return;
    MutexLock lock(mu_);
    for (std::size_t i = 0; i < n; ++i)
        recordLocked(spanOfPageLocked(recs[i].addr / kPageSize),
                     recs[i].stage, recs[i].tick, recs[i].addr);
}

void
Tracer::faultEvent(std::uint64_t page, Tick tick, Addr addr)
{
    if (!enabled())
        return;
    MutexLock lock(mu_);
    recordLocked(spanOfPageLocked(page), Stage::kFault, tick, addr);
}

std::vector<Span>
Tracer::spans() const
{
    MutexLock lock(mu_);
    return spans_;
}

std::vector<TraceEvent>
Tracer::events() const
{
    MutexLock lock(mu_);
    return events_;
}

std::uint64_t
Tracer::droppedEvents() const
{
    MutexLock lock(mu_);
    return dropped_;
}

std::vector<TraceEvent>
Tracer::spanEvents(std::uint32_t span) const
{
    MutexLock lock(mu_);
    std::vector<TraceEvent> out;
    for (const auto &e : events_)
        if (e.span == span)
            out.push_back(e);
    return out;
}

bool
Tracer::spanHasStage(std::uint32_t span, Stage stage) const
{
    MutexLock lock(mu_);
    return std::any_of(events_.begin(), events_.end(),
                       [&](const TraceEvent &e) {
                           return e.span == span && e.stage == stage;
                       });
}

void
Tracer::dumpJson(std::ostream &os, const StatsRegistry *stats) const
{
    MutexLock lock(mu_);
    dumpJsonLocked(os, stats);
}

void
Tracer::dumpJsonLocked(std::ostream &os, const StatsRegistry *stats) const
{
    constexpr auto kStages = static_cast<std::size_t>(Stage::kCount);

    struct StageSummary
    {
        std::uint64_t count = 0;
        Tick first = 0;
        Tick last = 0;
    };
    // Per-span per-stage aggregation in one pass over the event log.
    std::vector<std::array<StageSummary, kStages>> per_span(spans_.size());
    std::vector<Tick> span_end(spans_.size(), 0);
    for (const auto &e : events_) {
        if (e.span == 0 || e.span > spans_.size())
            continue;
        auto &s = per_span[e.span - 1][static_cast<std::size_t>(e.stage)];
        if (s.count == 0)
            s.first = e.tick;
        s.last = std::max(s.last, e.tick);
        ++s.count;
        span_end[e.span - 1] = std::max(span_end[e.span - 1], e.tick);
    }

    // Cross-span stage-completion latency (last event of the stage
    // relative to span begin) percentiles.
    std::array<LogHistogram, kStages> stage_latency;
    for (std::size_t i = 0; i < spans_.size(); ++i)
        for (std::size_t st = 0; st < kStages; ++st)
            if (per_span[i][st].count &&
                per_span[i][st].last >= spans_[i].begin)
                stage_latency[st].sample(per_span[i][st].last -
                                         spans_[i].begin);

    os << "{\n  \"version\": 1,\n";
    os << "  \"events\": " << events_.size() << ",\n";
    os << "  \"dropped_events\": " << dropped_ << ",\n";
    os << "  \"spans\": [";
    for (std::size_t i = 0; i < spans_.size(); ++i) {
        const Span &span = spans_[i];
        os << (i ? ",\n" : "\n");
        os << "    {\"id\": " << span.id << ", \"kind\": \"" << span.kind
           << "\", \"sbuf\": " << span.sbuf << ", \"dbuf\": " << span.dbuf
           << ", \"bytes\": " << span.bytes
           << ", \"begin\": " << span.begin
           << ", \"end\": " << span_end[i] << ",\n     \"stages\": {";
        bool first = true;
        for (std::size_t st = 0; st < kStages; ++st) {
            const StageSummary &s = per_span[i][st];
            if (!s.count)
                continue;
            os << (first ? "" : ", ");
            first = false;
            os << "\"" << stageName(static_cast<Stage>(st))
               << "\": {\"count\": " << s.count
               << ", \"first\": " << s.first << ", \"last\": " << s.last
               << "}";
        }
        os << "}}";
    }
    os << "\n  ],\n";

    os << "  \"stage_latency\": {";
    bool first = true;
    for (std::size_t st = 0; st < kStages; ++st) {
        const LogHistogram &h = stage_latency[st];
        if (!h.count())
            continue;
        os << (first ? "\n" : ",\n");
        first = false;
        os << "    \"" << stageName(static_cast<Stage>(st))
           << "\": {\"count\": " << h.count() << ", \"mean\": ";
        printNumber(os, h.mean());
        os << ", \"p50\": " << h.percentile(0.50)
           << ", \"p90\": " << h.percentile(0.90)
           << ", \"p99\": " << h.percentile(0.99)
           << ", \"max\": " << h.max() << "}";
    }
    os << "\n  }";

    if (stats) {
        os << ",\n  \"stats\": {";
        bool first_component = true;
        for (const auto &[name, block] : stats->collect()) {
            os << (first_component ? "\n" : ",\n");
            first_component = false;
            os << "    \"" << name << "\": {";
            bool first_row = true;
            for (const auto &[key, value] : block.entries()) {
                os << (first_row ? "" : ", ");
                first_row = false;
                os << "\"" << key << "\": ";
                printNumber(os, value);
            }
            os << "}";
        }
        os << "\n  }";
    }
    os << "\n}\n";
}

void
Tracer::dumpCsv(std::ostream &os) const
{
    MutexLock lock(mu_);
    dumpCsvLocked(os);
}

void
Tracer::dumpCsvLocked(std::ostream &os) const
{
    os << "tick,span,stage,address\n";
    for (const auto &e : events_)
        os << e.tick << "," << e.span << "," << stageName(e.stage) << ","
           << e.addr << "\n";
}

bool
Tracer::writeJsonFile(const std::string &path,
                      const StatsRegistry *stats) const
{
    std::ofstream out(path);
    if (!out)
        return false;
    dumpJson(out, stats);
    return out.good();
}

bool
Tracer::writeCsvFile(const std::string &path) const
{
    std::ofstream out(path);
    if (!out)
        return false;
    dumpCsv(out);
    return out.good();
}

} // namespace sd::trace
