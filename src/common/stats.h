/**
 * @file
 * Lightweight statistics primitives: scalar counters, averages and
 * fixed-bucket histograms, plus a registry so simulator components can
 * dump a named stats block after a run.
 */

#ifndef SD_COMMON_STATS_H
#define SD_COMMON_STATS_H

#include <atomic>
#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "common/thread_annotations.h"

namespace sd {

/**
 * Monotonic event counter.
 *
 * Concurrency contract: inc() may be called from any number of
 * threads concurrently (relaxed atomic add through std::atomic_ref,
 * so the class stays trivially copyable for single-threaded use).
 * reset() requires quiescence — no concurrent inc().
 */
class Counter
{
  public:
    Counter() = default;

    /** Increment by @p n (default 1). Safe to call concurrently. */
    void
    inc(std::uint64_t n = 1)
    {
        std::atomic_ref<std::uint64_t>(value_).fetch_add(
            n, std::memory_order_relaxed);
    }

    /** Reset to zero (between experiment phases; requires quiescence). */
    void reset() { value_ = 0; }

    /** @return the current count. */
    std::uint64_t
    value() const
    {
        // const_cast only to form the atomic_ref; the load mutates
        // nothing.
        return std::atomic_ref<std::uint64_t>(
                   const_cast<std::uint64_t &>(value_))
            .load(std::memory_order_relaxed);
    }

  private:
    std::uint64_t value_ = 0;
};

/** Running mean / min / max over a stream of samples. */
class Average
{
  public:
    /** Record one sample. */
    void sample(double v);

    /** Discard all samples. */
    void reset();

    /** @return number of recorded samples. */
    std::uint64_t count() const { return count_; }

    /** @return arithmetic mean, or 0 when empty. */
    double
    mean() const
    {
        return count_ ? sum_ / static_cast<double>(count_) : 0.0;
    }

    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }
    double sum() const { return sum_; }

  private:
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
    std::uint64_t count_ = 0;
};

/**
 * Linear-bucket histogram over [lo, hi); samples outside the range are
 * clamped into the first/last bucket and counted as underflow/overflow.
 */
class Histogram
{
  public:
    /** @param buckets number of equal-width buckets (>= 1). */
    Histogram(double lo, double hi, std::size_t buckets);

    /** Record one sample. */
    void sample(double v);

    /** Discard all samples. */
    void reset();

    std::uint64_t count() const { return count_; }
    double
    mean() const
    {
        return count_ ? sum_ / static_cast<double>(count_) : 0.0;
    }

    /** @return value below which @p q of the samples fall (0 < q <= 1). */
    double percentile(double q) const;

    /** @return counts per bucket (for plotting). */
    const std::vector<std::uint64_t> &buckets() const { return counts_; }

    double
    bucketLow(std::size_t i) const
    {
        return lo_ + static_cast<double>(i) * width_;
    }

  private:
    double lo_;
    double hi_;
    double width_;
    double sum_ = 0.0;
    std::uint64_t count_ = 0;
    std::vector<std::uint64_t> counts_;
};

/**
 * Log-scale histogram over unsigned samples (latencies in ticks or
 * cycles): each power-of-two octave is split into a fixed number of
 * linear sub-buckets, HDR-histogram style, so percentiles stay within
 * ~12.5% relative error across the full 64-bit range with a few
 * hundred buckets. No range must be chosen up front, which makes it
 * the right shape for the trace layer's per-stage latency summaries.
 *
 * Concurrency contract: sample() may be called from many threads
 * concurrently (every accumulator mutation is a relaxed atomic RMW
 * through std::atomic_ref, so the class stays copyable and the
 * single-threaded observable behaviour is bit-identical). Readers
 * (count/mean/min/max/percentile) and reset() require quiescence —
 * they see a torn snapshot if samples race with them.
 */
class LogHistogram
{
  public:
    /** Linear sub-buckets per power-of-two octave. */
    static constexpr unsigned kSubBuckets = 8;

    LogHistogram();

    /** Record one sample. Safe to call concurrently. */
    void sample(std::uint64_t v);

    /** Discard all samples. */
    void reset();

    std::uint64_t count() const { return count_; }
    double mean() const
    {
        return count_ ? static_cast<double>(sum_) /
                            static_cast<double>(count_)
                      : 0.0;
    }
    std::uint64_t min() const { return count_ ? min_ : 0; }
    std::uint64_t max() const { return count_ ? max_ : 0; }
    std::uint64_t sum() const { return sum_; }

    /**
     * Value below which @p q of the samples fall (0 < q <= 1),
     * reported as the containing bucket's upper bound.
     */
    std::uint64_t percentile(double q) const;

    /** Raw bucket counts (sparse tail is all zeros). */
    const std::vector<std::uint64_t> &buckets() const { return counts_; }

    /** Inclusive upper bound of bucket @p i. */
    static std::uint64_t bucketHigh(std::size_t i);

  private:
    static std::size_t bucketIndex(std::uint64_t v);

    std::vector<std::uint64_t> counts_;
    std::uint64_t sum_ = 0;
    /** UINT64_MAX sentinel while empty so concurrent CAS-min works. */
    std::uint64_t min_ = ~std::uint64_t{0};
    std::uint64_t max_ = 0;
    std::uint64_t count_ = 0;
};

/**
 * Instantaneous-level tracker (queue depth, occupancy, outstanding
 * ops): add()/sub() move the level, peak() remembers the high-water
 * mark. Single-owner — gauges live inside per-simulation components
 * (work queues), so no atomics; snapshot after the run.
 */
class Gauge
{
  public:
    void
    add(std::int64_t delta = 1)
    {
        value_ += delta;
        if (value_ > peak_)
            peak_ = value_;
    }

    void sub(std::int64_t delta = 1) { value_ -= delta; }

    void
    reset()
    {
        value_ = 0;
        peak_ = 0;
    }

    std::int64_t value() const { return value_; }
    std::int64_t peak() const { return peak_; }

  private:
    std::int64_t value_ = 0;
    std::int64_t peak_ = 0;
};

/**
 * Named stats block: components register scalar getters and the
 * harness dumps them at end of run, gem5-stats style. Thread-safe:
 * every member serialises on an internal mutex.
 */
class StatsRegistry
{
  public:
    /** Register a named scalar (latest value wins on duplicate name). */
    void set(const std::string &name, double value);

    /** @return a registered scalar, or @p fallback when absent. */
    double get(const std::string &name, double fallback = 0.0) const;

    /** Write `name value` rows sorted by name. */
    void dump(std::ostream &os) const;

    /** Drop everything. */
    void
    clear()
    {
        MutexLock lock(mu_);
        scalars_.clear();
    }

  private:
    mutable Mutex mu_;
    std::map<std::string, double> scalars_ SD_GUARDED_BY(mu_);
};

} // namespace sd

#endif // SD_COMMON_STATS_H
