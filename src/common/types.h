/**
 * @file
 * Fundamental scalar types and memory-geometry constants shared across
 * every SmartDIMM subsystem.
 */

#ifndef SD_COMMON_TYPES_H
#define SD_COMMON_TYPES_H

#include <cstddef>
#include <cstdint>

namespace sd {

/** Physical or device address in bytes. */
using Addr = std::uint64_t;

/** Simulation time in picoseconds. */
using Tick = std::uint64_t;

/** Clock-domain-relative cycle count. */
using Cycles = std::uint64_t;

/** Size of one cache line / DDR burst in bytes. */
inline constexpr std::size_t kCacheLineSize = 64;

/** Size of one OS page in bytes (SmartDIMM registration granularity). */
inline constexpr std::size_t kPageSize = 4096;

/** Cache lines per OS page. */
inline constexpr std::size_t kLinesPerPage = kPageSize / kCacheLineSize;

/** log2(kCacheLineSize): shift between byte and line addresses. */
inline constexpr unsigned kLineBits = 6;
static_assert((std::size_t{1} << kLineBits) == kCacheLineSize,
              "kLineBits must stay log2(kCacheLineSize)");

/** log2(kPageSize): shift between byte and page addresses. */
inline constexpr unsigned kPageBits = 12;
static_assert((std::size_t{1} << kPageBits) == kPageSize,
              "kPageBits must stay log2(kPageSize)");

/** log2(kLinesPerPage): shift between line and page indices. */
inline constexpr unsigned kPageLineBits = kPageBits - kLineBits;
static_assert((std::size_t{1} << kPageLineBits) == kLinesPerPage,
              "kPageLineBits must stay log2(kLinesPerPage)");

/** One tick per picosecond. */
inline constexpr Tick kTicksPerSecond = 1'000'000'000'000ULL;

/** Align @p addr down to the containing cache line. */
constexpr Addr
lineAlign(Addr addr)
{
    return addr & ~static_cast<Addr>(kCacheLineSize - 1);
}

/** Align @p addr down to the containing OS page. */
constexpr Addr
pageAlign(Addr addr)
{
    return addr & ~static_cast<Addr>(kPageSize - 1);
}

/** @return true when @p addr sits on a 4 KB page boundary. */
constexpr bool
isPageAligned(Addr addr)
{
    return (addr & (kPageSize - 1)) == 0;
}

/** @return true when @p addr sits on a 64 B line boundary. */
constexpr bool
isLineAligned(Addr addr)
{
    return (addr & (kCacheLineSize - 1)) == 0;
}

/** Integer ceiling division. */
constexpr std::uint64_t
divCeil(std::uint64_t a, std::uint64_t b)
{
    return (a + b - 1) / b;
}

} // namespace sd

#endif // SD_COMMON_TYPES_H
