#include "common/log.h"

#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace sd {

LogLevel &
logLevel()
{
    static LogLevel level = LogLevel::kQuiet;
    return level;
}

namespace detail {

std::string
formatMessage(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    va_list copy;
    va_copy(copy, args);
    const int needed = std::vsnprintf(nullptr, 0, fmt, copy);
    va_end(copy);
    std::string out;
    if (needed > 0) {
        out.resize(static_cast<std::size_t>(needed) + 1);
        std::vsnprintf(out.data(), out.size(), fmt, args);
        out.resize(static_cast<std::size_t>(needed));
    }
    va_end(args);
    return out;
}

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg.c_str(), file, line);
    std::exit(1);
}

void
warnImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "warn: %s (%s:%d)\n", msg.c_str(), file, line);
}

void
informImpl(const std::string &msg)
{
    std::fprintf(stderr, "info: %s\n", msg.c_str());
}

} // namespace detail
} // namespace sd
