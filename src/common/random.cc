#include "common/random.h"

#include <cmath>

#include "common/log.h"

namespace sd {

namespace {

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

std::uint64_t
Rng::splitMix(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto &word : state_)
        word = splitMix(sm);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
}

std::uint64_t
Rng::below(std::uint64_t bound)
{
    SD_ASSERT(bound > 0, "Rng::below requires a positive bound");
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t threshold = -bound % bound;
    for (;;) {
        const std::uint64_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

std::uint64_t
Rng::range(std::uint64_t lo, std::uint64_t hi)
{
    SD_ASSERT(lo <= hi, "Rng::range requires lo <= hi");
    return lo + below(hi - lo + 1);
}

double
Rng::uniform()
{
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool
Rng::chance(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return uniform() < p;
}

double
Rng::exponential(double mean)
{
    double u = uniform();
    if (u <= 0.0)
        u = 0x1.0p-53;
    return -mean * std::log(u);
}

std::uint64_t
Rng::zipf(std::uint64_t n, double s)
{
    SD_ASSERT(n > 0, "zipf requires a non-empty domain");
    // Inverse-CDF over a truncated harmonic series; adequate for
    // workload skew where n is modest (object catalogues).
    double h = 0.0;
    for (std::uint64_t i = 1; i <= n; ++i)
        h += 1.0 / std::pow(static_cast<double>(i), s);
    double target = uniform() * h;
    double acc = 0.0;
    for (std::uint64_t i = 1; i <= n; ++i) {
        acc += 1.0 / std::pow(static_cast<double>(i), s);
        if (acc >= target)
            return i - 1;
    }
    return n - 1;
}

void
Rng::fill(std::uint8_t *dst, std::size_t len)
{
    std::size_t i = 0;
    while (i + 8 <= len) {
        const std::uint64_t word = next();
        for (int b = 0; b < 8; ++b)
            dst[i++] = static_cast<std::uint8_t>(word >> (8 * b));
    }
    if (i < len) {
        const std::uint64_t word = next();
        for (int b = 0; i < len; ++b)
            dst[i++] = static_cast<std::uint8_t>(word >> (8 * b));
    }
}

} // namespace sd
