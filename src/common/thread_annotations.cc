#include "common/thread_annotations.h"

#include "common/log.h"

namespace sd {

void
SingleOwnerChecker::violation(std::uint64_t owner, std::uint64_t self)
{
    SD_PANIC("single-owner contract violated: component owned by "
             "thread %016llx touched from thread %016llx (construct "
             "and drive each simulated system on one thread, or call "
             "release() to hand it over)",
             static_cast<unsigned long long>(owner),
             static_cast<unsigned long long>(self));
}

} // namespace sd
