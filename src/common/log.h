/**
 * @file
 * Minimal gem5-flavoured diagnostics: panic() for internal invariant
 * violations, fatal() for user/configuration errors, warn()/inform()
 * for status messages. All writers go to stderr so bench harnesses can
 * keep stdout machine-parsable.
 */

#ifndef SD_COMMON_LOG_H
#define SD_COMMON_LOG_H

#include <cstdio>
#include <cstdlib>
#include <string>

namespace sd {

/** Verbosity levels for the optional inform() channel. */
enum class LogLevel { kQuiet = 0, kInfo = 1, kDebug = 2 };

/** Process-wide verbosity; benches default to quiet. */
LogLevel &logLevel();

namespace detail {

[[noreturn]] void panicImpl(const char *file, int line, const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line, const std::string &msg);
void warnImpl(const char *file, int line, const std::string &msg);
void informImpl(const std::string &msg);

std::string formatMessage(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace detail

/** Abort on a simulator bug: a condition that must never happen. */
#define SD_PANIC(...) \
    ::sd::detail::panicImpl(__FILE__, __LINE__, \
                            ::sd::detail::formatMessage(__VA_ARGS__))

/** Exit on a user-caused error (bad configuration, invalid argument). */
#define SD_FATAL(...) \
    ::sd::detail::fatalImpl(__FILE__, __LINE__, \
                            ::sd::detail::formatMessage(__VA_ARGS__))

/** Non-fatal warning about questionable behaviour. */
#define SD_WARN(...) \
    ::sd::detail::warnImpl(__FILE__, __LINE__, \
                           ::sd::detail::formatMessage(__VA_ARGS__))

/** Informational status message (suppressed at LogLevel::kQuiet). */
#define SD_INFORM(...) \
    do { \
        if (::sd::logLevel() >= ::sd::LogLevel::kInfo) \
            ::sd::detail::informImpl( \
                ::sd::detail::formatMessage(__VA_ARGS__)); \
    } while (0)

/** Assert an invariant; compiled in all build types. */
#define SD_ASSERT(cond, ...) \
    do { \
        if (!(cond)) { \
            ::sd::detail::warnImpl(__FILE__, __LINE__, \
                ::sd::detail::formatMessage(__VA_ARGS__)); \
            ::sd::detail::panicImpl(__FILE__, __LINE__, \
                std::string("assertion failed: ") + #cond); \
        } \
    } while (0)

} // namespace sd

#endif // SD_COMMON_LOG_H
