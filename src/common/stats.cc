#include "common/stats.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "common/log.h"

namespace sd {

void
Average::sample(double v)
{
    if (count_ == 0) {
        min_ = v;
        max_ = v;
    } else {
        min_ = std::min(min_, v);
        max_ = std::max(max_, v);
    }
    sum_ += v;
    ++count_;
}

void
Average::reset()
{
    sum_ = 0.0;
    min_ = 0.0;
    max_ = 0.0;
    count_ = 0;
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(buckets)),
      counts_(buckets, 0)
{
    SD_ASSERT(hi > lo && buckets >= 1, "degenerate histogram bounds");
}

void
Histogram::sample(double v)
{
    std::size_t idx;
    if (v < lo_) {
        idx = 0;
    } else if (v >= hi_) {
        idx = counts_.size() - 1;
    } else {
        idx = static_cast<std::size_t>((v - lo_) / width_);
        idx = std::min(idx, counts_.size() - 1);
    }
    ++counts_[idx];
    sum_ += v;
    ++count_;
}

void
Histogram::reset()
{
    std::fill(counts_.begin(), counts_.end(), 0);
    sum_ = 0.0;
    count_ = 0;
}

double
Histogram::percentile(double q) const
{
    SD_ASSERT(q > 0.0 && q <= 1.0, "percentile out of range");
    if (count_ == 0)
        return 0.0;
    const auto target = static_cast<std::uint64_t>(
        std::ceil(q * static_cast<double>(count_)));
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        seen += counts_[i];
        if (seen >= target)
            return bucketLow(i) + width_;
    }
    return hi_;
}

namespace {

/** Octave of @p v: 0 for values < kSubBuckets, else floor(log2). */
unsigned
octaveOf(std::uint64_t v)
{
    return v ? 63u - static_cast<unsigned>(std::countl_zero(v)) : 0u;
}

} // namespace

LogHistogram::LogHistogram()
    // Values below kSubBuckets get exact buckets; each octave >= 3
    // contributes kSubBuckets more, up to octave 63.
    : counts_(62 * kSubBuckets, 0)
{
}

std::size_t
LogHistogram::bucketIndex(std::uint64_t v)
{
    const unsigned octave = octaveOf(v);
    if (octave < 3)
        return static_cast<std::size_t>(v); // exact buckets 0..7
    const unsigned sub = static_cast<unsigned>(
        (v >> (octave - 3)) & (kSubBuckets - 1));
    return static_cast<std::size_t>(octave - 2) * kSubBuckets + sub;
}

std::uint64_t
LogHistogram::bucketHigh(std::size_t i)
{
    if (i < kSubBuckets)
        return i;
    const std::uint64_t octave = i / kSubBuckets + 2;
    const std::uint64_t sub = i % kSubBuckets;
    // Unsigned wrap yields UINT64_MAX for the topmost bucket.
    return (1ULL << octave) + ((sub + 1) << (octave - 3)) - 1;
}

namespace {

/** Relaxed CAS-min over a plain uint64_t cell. */
void
atomicMin(std::uint64_t &cell, std::uint64_t v)
{
    std::atomic_ref<std::uint64_t> ref(cell);
    std::uint64_t cur = ref.load(std::memory_order_relaxed);
    while (v < cur &&
           !ref.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
}

/** Relaxed CAS-max over a plain uint64_t cell. */
void
atomicMax(std::uint64_t &cell, std::uint64_t v)
{
    std::atomic_ref<std::uint64_t> ref(cell);
    std::uint64_t cur = ref.load(std::memory_order_relaxed);
    while (v > cur &&
           !ref.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
}

} // namespace

void
LogHistogram::sample(std::uint64_t v)
{
    atomicMin(min_, v);
    atomicMax(max_, v);
    std::atomic_ref<std::uint64_t>(sum_).fetch_add(
        v, std::memory_order_relaxed);
    std::atomic_ref<std::uint64_t>(counts_[bucketIndex(v)])
        .fetch_add(1, std::memory_order_relaxed);
    std::atomic_ref<std::uint64_t>(count_).fetch_add(
        1, std::memory_order_relaxed);
}

void
LogHistogram::reset()
{
    std::fill(counts_.begin(), counts_.end(), 0);
    sum_ = 0;
    min_ = ~std::uint64_t{0};
    max_ = 0;
    count_ = 0;
}

std::uint64_t
LogHistogram::percentile(double q) const
{
    SD_ASSERT(q > 0.0 && q <= 1.0, "percentile out of range");
    if (count_ == 0)
        return 0;
    const auto target = static_cast<std::uint64_t>(
        std::ceil(q * static_cast<double>(count_)));
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        seen += counts_[i];
        if (seen >= target)
            return std::min(bucketHigh(i), max_);
    }
    return max_;
}

void
StatsRegistry::set(const std::string &name, double value)
{
    MutexLock lock(mu_);
    scalars_[name] = value;
}

double
StatsRegistry::get(const std::string &name, double fallback) const
{
    MutexLock lock(mu_);
    auto it = scalars_.find(name);
    return it == scalars_.end() ? fallback : it->second;
}

void
StatsRegistry::dump(std::ostream &os) const
{
    MutexLock lock(mu_);
    for (const auto &[name, value] : scalars_)
        os << name << " " << value << "\n";
}

} // namespace sd
