#include "common/stats.h"

#include <algorithm>
#include <cmath>

#include "common/log.h"

namespace sd {

void
Average::sample(double v)
{
    if (count_ == 0) {
        min_ = v;
        max_ = v;
    } else {
        min_ = std::min(min_, v);
        max_ = std::max(max_, v);
    }
    sum_ += v;
    ++count_;
}

void
Average::reset()
{
    sum_ = 0.0;
    min_ = 0.0;
    max_ = 0.0;
    count_ = 0;
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(buckets)),
      counts_(buckets, 0)
{
    SD_ASSERT(hi > lo && buckets >= 1, "degenerate histogram bounds");
}

void
Histogram::sample(double v)
{
    std::size_t idx;
    if (v < lo_) {
        idx = 0;
    } else if (v >= hi_) {
        idx = counts_.size() - 1;
    } else {
        idx = static_cast<std::size_t>((v - lo_) / width_);
        idx = std::min(idx, counts_.size() - 1);
    }
    ++counts_[idx];
    sum_ += v;
    ++count_;
}

void
Histogram::reset()
{
    std::fill(counts_.begin(), counts_.end(), 0);
    sum_ = 0.0;
    count_ = 0;
}

double
Histogram::percentile(double q) const
{
    SD_ASSERT(q > 0.0 && q <= 1.0, "percentile out of range");
    if (count_ == 0)
        return 0.0;
    const auto target = static_cast<std::uint64_t>(
        std::ceil(q * static_cast<double>(count_)));
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        seen += counts_[i];
        if (seen >= target)
            return bucketLow(i) + width_;
    }
    return hi_;
}

void
StatsRegistry::set(const std::string &name, double value)
{
    scalars_[name] = value;
}

double
StatsRegistry::get(const std::string &name, double fallback) const
{
    auto it = scalars_.find(name);
    return it == scalars_.end() ? fallback : it->second;
}

void
StatsRegistry::dump(std::ostream &os) const
{
    for (const auto &[name, value] : scalars_)
        os << name << " " << value << "\n";
}

} // namespace sd
