/**
 * @file
 * Clang thread-safety-analysis annotations (and the annotated mutex
 * primitives that carry them) for SmartDIMM's concurrency contracts.
 *
 * The macros expand to Clang's `capability` attributes when compiling
 * with a Clang that understands them (the CI `thread-safety` job
 * builds all of src/ with `-Wthread-safety -Werror`), and to nothing
 * under GCC or other compilers, so the annotations are pure
 * documentation locally and machine-checked in CI.
 *
 * Two kinds of contract appear in this codebase:
 *
 *  - Genuinely shared state (the process-wide Tracer, the trace-layer
 *    StatsRegistry, the kernel dispatch override) is protected by an
 *    annotated sd::Mutex with SD_GUARDED_BY members, or by atomics.
 *
 *  - Per-simulation state (EventQueue, Scratchpad, BankTable, the
 *    cache/memory models) is **single-owner**: one thread constructs
 *    and drives a whole simulated system; nothing in it may be touched
 *    from another thread. That contract is spot-checked at runtime by
 *    SingleOwnerChecker (cheap relaxed-atomic thread-id compare) and
 *    caught wholesale by the TSan stress job when violated.
 */

#ifndef SD_COMMON_THREAD_ANNOTATIONS_H
#define SD_COMMON_THREAD_ANNOTATIONS_H

#include <atomic>
#include <cstdint>
#include <mutex>
#include <thread>

#if defined(__clang__) && defined(__has_attribute)
#define SD_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define SD_THREAD_ANNOTATION(x)
#endif

/** Marks a type as a lockable capability ("mutex", "role", ...). */
#define SD_CAPABILITY(name) SD_THREAD_ANNOTATION(capability(name))

/** Marks an RAII type that acquires a capability for its lifetime. */
#define SD_SCOPED_CAPABILITY SD_THREAD_ANNOTATION(scoped_lockable)

/** Data member readable/writable only while holding @p x. */
#define SD_GUARDED_BY(x) SD_THREAD_ANNOTATION(guarded_by(x))

/** Pointer member whose *pointee* is protected by @p x. */
#define SD_PT_GUARDED_BY(x) SD_THREAD_ANNOTATION(pt_guarded_by(x))

/** Function that must be called with the capability held. */
#define SD_REQUIRES(...) \
    SD_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/** Function that must be called with the capability NOT held. */
#define SD_EXCLUDES(...) SD_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/** Function that acquires the capability and returns holding it. */
#define SD_ACQUIRE(...) \
    SD_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/** Function that releases a held capability. */
#define SD_RELEASE(...) \
    SD_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/** Function that acquires the capability when it returns true. */
#define SD_TRY_ACQUIRE(...) \
    SD_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/** Function deliberately exempt from analysis (init-order, tests). */
#define SD_NO_THREAD_SAFETY_ANALYSIS \
    SD_THREAD_ANNOTATION(no_thread_safety_analysis)

/** @return value usable as the capability itself (lock accessors). */
#define SD_RETURN_CAPABILITY(x) SD_THREAD_ANNOTATION(lock_returned(x))

namespace sd {

/**
 * std::mutex carrying the `capability` attribute so SD_GUARDED_BY
 * members can name it. libstdc++'s std::lock_guard is not annotated;
 * use MutexLock below (or lock()/unlock() pairs) so Clang can track
 * the acquire/release.
 */
class SD_CAPABILITY("mutex") Mutex
{
  public:
    Mutex() = default;
    Mutex(const Mutex &) = delete;
    Mutex &operator=(const Mutex &) = delete;

    void lock() SD_ACQUIRE() { mu_.lock(); }
    void unlock() SD_RELEASE() { mu_.unlock(); }
    bool try_lock() SD_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  private:
    std::mutex mu_;
};

/** Annotated scope guard: holds the Mutex for the enclosing scope. */
class SD_SCOPED_CAPABILITY MutexLock
{
  public:
    explicit MutexLock(Mutex &mu) SD_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
    ~MutexLock() SD_RELEASE() { mu_.unlock(); }

    MutexLock(const MutexLock &) = delete;
    MutexLock &operator=(const MutexLock &) = delete;

  private:
    Mutex &mu_;
};

/**
 * Runtime spot-check of the single-owner contract: the first thread
 * that touches the component claims it; any later access from a
 * different thread is a contract violation and panics immediately
 * (instead of corrupting state silently or relying on TSan to be
 * watching). release() hands the component to the next toucher, for
 * the legitimate construct-on-main / drive-on-worker pattern.
 *
 * Cost per check is one relaxed atomic load and compare, so it is
 * cheap enough for simulator hot paths (EventQueue::schedule).
 */
class SingleOwnerChecker
{
  public:
    /** Assert the calling thread owns (or now claims) the component. */
    void
    check() const
    {
        const std::uint64_t self = selfId();
        std::uint64_t owner = owner_.load(std::memory_order_relaxed);
        if (owner == self)
            return;
        if (owner == 0 &&
            owner_.compare_exchange_strong(owner, self,
                                           std::memory_order_relaxed))
            return;
        violation(owner, self);
    }

    /** Release ownership so another thread may claim the component. */
    void
    release()
    {
        owner_.store(0, std::memory_order_relaxed);
    }

  private:
    static std::uint64_t
    selfId()
    {
        // Hash the opaque id into a nonzero token (0 means unowned).
        const std::uint64_t h = static_cast<std::uint64_t>(
            std::hash<std::thread::id>{}(std::this_thread::get_id()));
        return h | 1;
    }

    [[noreturn]] static void violation(std::uint64_t owner,
                                       std::uint64_t self);

    mutable std::atomic<std::uint64_t> owner_{0};
};

} // namespace sd

#endif // SD_COMMON_THREAD_ANNOTATIONS_H
