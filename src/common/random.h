/**
 * @file
 * Deterministic pseudo-random number generation (xoshiro256**) so every
 * experiment is reproducible from a seed. Not cryptographic.
 */

#ifndef SD_COMMON_RANDOM_H
#define SD_COMMON_RANDOM_H

#include <cstdint>

namespace sd {

/**
 * Deterministic PRNG with a small state, suitable for workload
 * generation and loss injection. Implements xoshiro256**.
 */
class Rng
{
  public:
    /** Seed the generator; identical seeds give identical streams. */
    explicit Rng(std::uint64_t seed = 0x5d15'7ead'cafe'f00dULL);

    /** @return the next 64 random bits. */
    std::uint64_t next();

    /** @return a uniform integer in [0, bound). @p bound must be > 0. */
    std::uint64_t below(std::uint64_t bound);

    /** @return a uniform integer in [lo, hi]. */
    std::uint64_t range(std::uint64_t lo, std::uint64_t hi);

    /** @return a uniform double in [0, 1). */
    double uniform();

    /** @return true with probability @p p. */
    bool chance(double p);

    /** Sample an exponential distribution with the given mean. */
    double exponential(double mean);

    /**
     * Sample a bounded Zipf-like distribution over [0, n) with skew
     * @p s, used for popularity-skewed object selection.
     */
    std::uint64_t zipf(std::uint64_t n, double s);

    /** Fill @p dst with @p len pseudo-random bytes. */
    void fill(std::uint8_t *dst, std::size_t len);

  private:
    std::uint64_t state_[4];

    static std::uint64_t splitMix(std::uint64_t &x);
};

} // namespace sd

#endif // SD_COMMON_RANDOM_H
