/**
 * @file
 * Bit-field extraction helpers used by the DDR address mapper and the
 * SmartDIMM slot decoder.
 */

#ifndef SD_COMMON_BITOPS_H
#define SD_COMMON_BITOPS_H

#include <cstdint>

#include "common/log.h"

namespace sd {

/** Extract bits [lo, lo+width) of @p value. */
constexpr std::uint64_t
bits(std::uint64_t value, unsigned lo, unsigned width)
{
    if (width == 0)
        return 0;
    if (width >= 64)
        return value >> lo;
    return (value >> lo) & ((1ULL << width) - 1);
}

/** Insert @p field into bits [lo, lo+width) of @p value. */
constexpr std::uint64_t
insertBits(std::uint64_t value, unsigned lo, unsigned width,
           std::uint64_t field)
{
    const std::uint64_t mask =
        width >= 64 ? ~0ULL : ((1ULL << width) - 1);
    return (value & ~(mask << lo)) | ((field & mask) << lo);
}

/**
 * Checked narrowing of a 64-bit index into unsigned. Address-map and
 * dispatcher geometry math divides/mods 64-bit line counts down to
 * channel/DIMM/slot indices; the result must fit the declared bound or
 * the geometry itself is broken, so the narrowing asserts instead of
 * truncating silently.
 */
inline unsigned
narrowIdx(std::uint64_t value, std::uint64_t bound)
{
    SD_ASSERT(value < bound,
              "index %llu out of range (bound %llu)",
              static_cast<unsigned long long>(value),
              static_cast<unsigned long long>(bound));
    return static_cast<unsigned>(value);
}

/** @return floor(log2(x)); x must be non-zero. */
constexpr unsigned
floorLog2(std::uint64_t x)
{
    unsigned r = 0;
    while (x >>= 1)
        ++r;
    return r;
}

/** @return true when x is a power of two (and non-zero). */
constexpr bool
isPowerOf2(std::uint64_t x)
{
    return x != 0 && (x & (x - 1)) == 0;
}

} // namespace sd

#endif // SD_COMMON_BITOPS_H
