#include "crypto/aes_gcm.h"

#include <cstring>

#include "common/log.h"
#include "common/types.h"
#include "kernels/aes_kernel.h"

namespace sd::crypto {

namespace {

/**
 * CTR keystream blocks generated per kernel call. Eight blocks keep
 * the AES-NI pipeline full and amortise counter/table setup on the
 * table tier; the tail call just shrinks.
 */
constexpr std::size_t kCtrBatchBlocks = 8;

/** Build J0 = IV || 0^31 || 1 for a 96-bit IV. */
void
buildJ0(const GcmIv &iv, std::uint8_t j0[16])
{
    std::memcpy(j0, iv.data(), 12);
    j0[12] = 0;
    j0[13] = 0;
    j0[14] = 0;
    j0[15] = 1;
}

/** GHASH length block: 64-bit AAD bits || 64-bit ciphertext bits. */
void
buildLengthBlock(std::size_t aad_len, std::size_t cipher_len,
                 std::uint8_t out[16])
{
    const std::uint64_t aad_bits = static_cast<std::uint64_t>(aad_len) * 8;
    const std::uint64_t c_bits = static_cast<std::uint64_t>(cipher_len) * 8;
    for (int i = 0; i < 8; ++i)
        out[i] = static_cast<std::uint8_t>(aad_bits >> (56 - 8 * i));
    for (int i = 0; i < 8; ++i)
        out[8 + i] = static_cast<std::uint8_t>(c_bits >> (56 - 8 * i));
}

/**
 * CTR-transform @p len bytes (XOR with the keystream starting at
 * block counter 2, the GCM convention for a 96-bit IV), batching
 * keystream generation through the dispatched kernel.
 */
void
ctrTransform(const kernels::AesKey &key, const GcmIv &iv,
             const std::uint8_t *in, std::size_t len, std::uint8_t *out)
{
    std::uint8_t ks[kCtrBatchBlocks * kAesBlockSize];
    std::size_t off = 0;
    while (off < len) {
        const std::size_t blocks_left =
            divCeil(len - off, kAesBlockSize);
        const std::size_t nblk =
            std::min(kCtrBatchBlocks, blocks_left);
        const std::uint32_t first_ctr =
            2 + static_cast<std::uint32_t>(off / kAesBlockSize);
        kernels::aesCtrKeystream(key, iv.data(), first_ctr, nblk, ks);
        const std::size_t chunk =
            std::min(len - off, nblk * kAesBlockSize);
        for (std::size_t i = 0; i < chunk; ++i)
            out[off + i] = in[off + i] ^ ks[i];
        off += chunk;
    }
}

} // namespace

GcmContext::GcmContext(const std::uint8_t *key, Aes::KeySize size)
    : aes_(key, size), h_{}
{
    std::uint8_t zero[16] = {};
    std::uint8_t hbytes[16];
    aes_.encryptBlock(zero, hbytes);
    h_ = Gf128::load(hbytes);
}

std::array<std::uint8_t, 16>
GcmContext::encryptedIv(const GcmIv &iv) const
{
    std::uint8_t j0[16];
    buildJ0(iv, j0);
    std::array<std::uint8_t, 16> eiv;
    aes_.encryptBlock(j0, eiv.data());
    return eiv;
}

void
GcmContext::keystreamBlock(const GcmIv &iv, std::uint32_t ctr,
                           std::uint8_t out[16]) const
{
    kernels::aesCtrKeystream(aes_.kernelKey(), iv.data(), ctr, 1, out);
}

GcmTag
GcmContext::encrypt(const GcmIv &iv, const std::uint8_t *plain,
                    std::size_t len, std::uint8_t *cipher,
                    const std::uint8_t *aad, std::size_t aad_len) const
{
    Ghash ghash(h_);

    // Fold AAD (zero-padded to block boundary).
    for (std::size_t off = 0; off < aad_len; off += kAesBlockSize) {
        std::uint8_t block[16] = {};
        const std::size_t n = std::min(kAesBlockSize, aad_len - off);
        std::memcpy(block, aad + off, n);
        ghash.update(block);
    }

    // CTR encryption (batched keystream), then the ciphertext fold.
    // Full blocks fold in place; only the final partial block needs
    // the zero-padded copy.
    ctrTransform(aes_.kernelKey(), iv, plain, len, cipher);
    const std::size_t full = len / kAesBlockSize;
    ghash.updateBlocks(cipher, full);
    const std::size_t off = full * kAesBlockSize;
    if (off < len) {
        std::uint8_t cblock[16] = {};
        std::memcpy(cblock, cipher + off, len - off);
        ghash.update(cblock);
    }

    std::uint8_t lenblock[16];
    buildLengthBlock(aad_len, len, lenblock);
    ghash.update(lenblock);

    const auto eiv = encryptedIv(iv);
    GcmTag tag;
    Gf128 digest = ghash.digest() ^ Gf128::load(eiv.data());
    digest.store(tag.data());
    return tag;
}

bool
GcmContext::decrypt(const GcmIv &iv, const std::uint8_t *cipher,
                    std::size_t len, const GcmTag &tag, std::uint8_t *plain,
                    const std::uint8_t *aad, std::size_t aad_len) const
{
    Ghash ghash(h_);
    for (std::size_t off = 0; off < aad_len; off += kAesBlockSize) {
        std::uint8_t block[16] = {};
        const std::size_t n = std::min(kAesBlockSize, aad_len - off);
        std::memcpy(block, aad + off, n);
        ghash.update(block);
    }
    const std::size_t full = len / kAesBlockSize;
    ghash.updateBlocks(cipher, full);
    const std::size_t off = full * kAesBlockSize;
    if (off < len) {
        std::uint8_t cblock[16] = {};
        std::memcpy(cblock, cipher + off, len - off);
        ghash.update(cblock);
    }
    std::uint8_t lenblock[16];
    buildLengthBlock(aad_len, len, lenblock);
    ghash.update(lenblock);

    const auto eiv = encryptedIv(iv);
    Gf128 digest = ghash.digest() ^ Gf128::load(eiv.data());
    GcmTag expect;
    digest.store(expect.data());

    // Constant-time-ish comparison (not a security claim in a sim).
    std::uint8_t diff = 0;
    for (std::size_t i = 0; i < expect.size(); ++i)
        diff |= static_cast<std::uint8_t>(expect[i] ^ tag[i]);
    if (diff != 0)
        return false;

    ctrTransform(aes_.kernelKey(), iv, cipher, len, plain);
    return true;
}

IncrementalGcm::IncrementalGcm(const GcmContext &ctx, const GcmIv &iv,
                               std::size_t message_len)
    : ctx_(ctx), iv_(iv), message_len_(message_len),
      line_count_(divCeil(message_len, kCacheLineSize)),
      seen_(line_count_, false), ghash_(ctx.hashSubkey()),
      eiv_(ctx.encryptedIv(iv))
{
    SD_ASSERT(message_len > 0, "empty GCM message");
    // Pre-size the power table as the GF multiplier of Fig. 7 would:
    // total GHASH blocks = ceil(len/16) + 1 (length block).
    ghash_.power(divCeil(message_len, kAesBlockSize) + 1);
}

void
IncrementalGcm::processLine(std::size_t line_index, const std::uint8_t *in,
                            std::uint8_t *out)
{
    SD_ASSERT(line_index < line_count_, "line index outside message");
    SD_ASSERT(!seen_[line_index], "cacheline processed twice");
    seen_[line_index] = true;
    ++lines_done_;

    const std::size_t line_off = line_index * kCacheLineSize;
    const std::size_t line_len =
        std::min(kCacheLineSize, message_len_ - line_off);

    const std::size_t total_blocks =
        divCeil(message_len_, kAesBlockSize) + 1; // + length block

    // Each 64 B line spans up to 4 AES blocks at known positions —
    // this is the stride-4 independence the paper exploits. The
    // line's keystream is generated in one batched kernel call.
    const std::size_t first_block = line_off / kAesBlockSize;
    const std::size_t line_blocks = divCeil(line_len, kAesBlockSize);
    std::uint8_t ks[kCacheLineSize];
    kernels::aesCtrKeystream(
        ctx_.cipher().kernelKey(), iv_.data(),
        2 + static_cast<std::uint32_t>(first_block), line_blocks, ks);

    for (std::size_t b = 0; b < line_blocks; ++b) {
        const std::size_t block_index = first_block + b;
        const std::size_t block_off = b * kAesBlockSize;
        const std::size_t n =
            std::min(kAesBlockSize, line_len - block_off);

        for (std::size_t i = 0; i < n; ++i)
            out[block_off + i] = in[block_off + i] ^ ks[block_off + i];

        std::uint8_t cblock[16] = {};
        std::memcpy(cblock, out + block_off, n);
        partial_tag_ = partial_tag_ ^
            ghash_.positional(cblock, block_index, total_blocks);
    }
}

GcmTag
IncrementalGcm::finalTag() const
{
    SD_ASSERT(complete(), "finalTag before all cachelines processed");
    std::uint8_t lenblock[16];
    buildLengthBlock(0, message_len_, lenblock);

    // Length block is the last GHASH block: contributes * H^1.
    Ghash scratch(ctx_.hashSubkey());
    const std::size_t total_blocks =
        divCeil(message_len_, kAesBlockSize) + 1;
    const Gf128 len_contrib =
        scratch.positional(lenblock, total_blocks - 1, total_blocks);

    Gf128 digest = partial_tag_ ^ len_contrib ^ Gf128::load(eiv_.data());
    GcmTag tag;
    digest.store(tag.data());
    return tag;
}

} // namespace sd::crypto
