#include "crypto/aes.h"

namespace sd::crypto {

Aes::Aes(const std::uint8_t *key, KeySize size)
    : key_(kernels::aesKeyInit(key, size == KeySize::k128 ? 16 : 32))
{
}

void
Aes::encryptBlock(const std::uint8_t in[16], std::uint8_t out[16]) const
{
    kernels::aesEncryptBlock(key_, in, out);
}

} // namespace sd::crypto
