#include "crypto/ghash.h"

#include "common/log.h"

namespace sd::crypto {

namespace {

inline kernels::Block128
toBlock(const Gf128 &v)
{
    return kernels::Block128{v.hi, v.lo};
}

inline Gf128
fromBlock(const kernels::Block128 &v)
{
    return Gf128{v.hi, v.lo};
}

} // namespace

Gf128
gfMul(const Gf128 &a, const Gf128 &b)
{
    return fromBlock(kernels::gfMulScalar(toBlock(a), toBlock(b)));
}

Ghash::Ghash(const Gf128 &h) : key_(kernels::ghashKeyInit(toBlock(h)))
{
    // One reservation up front (sized for the largest TLS record)
    // instead of growing the vector lazily mid-record.
    powers_.reserve(kGhashMaxRecordPowers);
    powers_.push_back(h);
}

void
Ghash::update(const std::uint8_t block[16])
{
    y_ = fromBlock(
        kernels::gfMulByH(key_, toBlock(y_ ^ Gf128::load(block))));
}

void
Ghash::updateBlocks(const std::uint8_t *blocks, std::size_t nblocks)
{
    y_ = fromBlock(
        kernels::ghashFold(key_, toBlock(y_), blocks, nblocks));
}

const Gf128 &
Ghash::extendPowers(std::size_t k)
{
    SD_ASSERT(k >= 1, "H^0 is never used by GHASH");
    while (powers_.size() < k)
        powers_.push_back(fromBlock(kernels::gfMulByH(
            key_, toBlock(powers_.back()))));
    return powers_[k - 1];
}

Gf128
Ghash::positional(const std::uint8_t block[16], std::size_t index,
                  std::size_t total_blocks)
{
    SD_ASSERT(index < total_blocks, "block index outside message");
    return fromBlock(kernels::gfMulVia(
        key_.tier, toBlock(Gf128::load(block)),
        toBlock(power(total_blocks - index))));
}

} // namespace sd::crypto
