#include "crypto/ghash.h"

#include "common/log.h"

namespace sd::crypto {

Gf128
Gf128::load(const std::uint8_t bytes[16])
{
    Gf128 out;
    for (int i = 0; i < 8; ++i)
        out.hi = (out.hi << 8) | bytes[i];
    for (int i = 8; i < 16; ++i)
        out.lo = (out.lo << 8) | bytes[i];
    return out;
}

void
Gf128::store(std::uint8_t bytes[16]) const
{
    for (int i = 0; i < 8; ++i)
        bytes[i] = static_cast<std::uint8_t>(hi >> (56 - 8 * i));
    for (int i = 0; i < 8; ++i)
        bytes[8 + i] = static_cast<std::uint8_t>(lo >> (56 - 8 * i));
}

Gf128
gfMul(const Gf128 &a, const Gf128 &b)
{
    // Right-shift multiplication per SP 800-38D: bit 0 of the GCM
    // representation is the most significant byte's MSB.
    Gf128 z{};
    Gf128 v = b;
    for (int i = 0; i < 128; ++i) {
        const std::uint64_t word = i < 64 ? a.hi : a.lo;
        const int bit = 63 - (i & 63);
        if ((word >> bit) & 1) {
            z.hi ^= v.hi;
            z.lo ^= v.lo;
        }
        const bool lsb = v.lo & 1;
        v.lo = (v.lo >> 1) | (v.hi << 63);
        v.hi >>= 1;
        if (lsb)
            v.hi ^= 0xe100000000000000ULL; // R = 11100001 || 0^120
    }
    return z;
}

Ghash::Ghash(const Gf128 &h) : h_(h)
{
    powers_.push_back(h);
}

void
Ghash::update(const std::uint8_t block[16])
{
    y_ = gfMul(y_ ^ Gf128::load(block), h_);
}

const Gf128 &
Ghash::power(std::size_t k)
{
    SD_ASSERT(k >= 1, "H^0 is never used by GHASH");
    while (powers_.size() < k)
        powers_.push_back(gfMul(powers_.back(), h_));
    return powers_[k - 1];
}

Gf128
Ghash::positional(const std::uint8_t block[16], std::size_t index,
                  std::size_t total_blocks)
{
    SD_ASSERT(index < total_blocks, "block index outside message");
    return gfMul(Gf128::load(block), power(total_blocks - index));
}

} // namespace sd::crypto
