#include "crypto/tls_record.h"

#include <cstring>

#include "common/log.h"

namespace sd::crypto {

namespace {

/** Application-data content type used on the wire. */
constexpr std::uint8_t kContentTypeAppData = 23;

void
writeHeader(std::uint8_t *hdr, std::size_t body_len)
{
    hdr[0] = kContentTypeAppData;
    hdr[1] = 0x03; // legacy TLS 1.2 version on the wire
    hdr[2] = 0x03;
    hdr[3] = static_cast<std::uint8_t>(body_len >> 8);
    hdr[4] = static_cast<std::uint8_t>(body_len);
}

} // namespace

TlsSession::TlsSession(const std::uint8_t key[16], const GcmIv &static_iv)
    : ctx_(key, Aes::KeySize::k128), static_iv_(static_iv)
{
}

GcmIv
TlsSession::nonceFor(std::uint64_t seq) const
{
    GcmIv nonce = static_iv_;
    // XOR the big-endian sequence number into the low 8 bytes.
    for (int i = 0; i < 8; ++i)
        nonce[4 + i] ^= static_cast<std::uint8_t>(seq >> (56 - 8 * i));
    return nonce;
}

TlsRecord
TlsSession::protect(const std::uint8_t *plain, std::size_t len)
{
    SD_ASSERT(len > 0 && len <= kTlsMaxFragment,
              "TLS fragment size %zu out of range", len);

    TlsRecord record;
    record.wire.resize(kTlsHeaderSize + len + kTlsTagSize);
    writeHeader(record.wire.data(), len + kTlsTagSize);

    const GcmIv nonce = nonceFor(tx_seq_++);
    const GcmTag tag = ctx_.encrypt(
        nonce, plain, len, record.wire.data() + kTlsHeaderSize,
        record.wire.data(), kTlsHeaderSize);
    std::memcpy(record.wire.data() + kTlsHeaderSize + len, tag.data(),
                kTlsTagSize);
    return record;
}

std::vector<std::uint8_t>
TlsSession::unprotect(const TlsRecord &record)
{
    if (record.wire.size() < kTlsHeaderSize + kTlsTagSize)
        return {};
    const std::size_t len = record.payloadLen();

    GcmTag tag;
    std::memcpy(tag.data(), record.wire.data() + kTlsHeaderSize + len,
                kTlsTagSize);

    std::vector<std::uint8_t> plain(len);
    const GcmIv nonce = nonceFor(rx_seq_);
    const bool ok = ctx_.decrypt(nonce,
                                 record.wire.data() + kTlsHeaderSize, len,
                                 tag, plain.data(), record.wire.data(),
                                 kTlsHeaderSize);
    if (!ok)
        return {};
    ++rx_seq_;
    return plain;
}

} // namespace sd::crypto
