/**
 * @file
 * AES-GCM authenticated encryption (NIST SP 800-38D), in two forms:
 *
 *  - GcmContext: one-shot encrypt/decrypt for the software (CPU) path.
 *  - IncrementalGcm: per-64-byte-cacheline processing in *arbitrary
 *    order*, mirroring the SmartDIMM TLS DSA of Sec. V-A where rdCAS
 *    commands may arrive out of order. Correctness: the test suite
 *    asserts out-of-order == one-shot on random permutations.
 */

#ifndef SD_CRYPTO_AES_GCM_H
#define SD_CRYPTO_AES_GCM_H

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "crypto/aes.h"
#include "crypto/ghash.h"

namespace sd::crypto {

/** GCM standard 96-bit IV. */
using GcmIv = std::array<std::uint8_t, 12>;

/** 128-bit authentication tag. */
using GcmTag = std::array<std::uint8_t, 16>;

/** One-shot AES-GCM context bound to a key. */
class GcmContext
{
  public:
    /** Bind to an AES-128 key. */
    GcmContext(const std::uint8_t *key, Aes::KeySize size);

    /**
     * Encrypt @p len bytes of @p plain into @p cipher (may alias) and
     * produce the authentication tag over optional @p aad.
     */
    GcmTag encrypt(const GcmIv &iv, const std::uint8_t *plain,
                   std::size_t len, std::uint8_t *cipher,
                   const std::uint8_t *aad = nullptr,
                   std::size_t aad_len = 0) const;

    /**
     * Decrypt and authenticate. @return true when the tag verifies;
     * on failure @p plain contents are unspecified.
     */
    bool decrypt(const GcmIv &iv, const std::uint8_t *cipher,
                 std::size_t len, const GcmTag &tag, std::uint8_t *plain,
                 const std::uint8_t *aad = nullptr,
                 std::size_t aad_len = 0) const;

    /** Hash subkey H = AES_K(0^128) — sent to the DSA config space. */
    Gf128 hashSubkey() const { return h_; }

    /**
     * Encrypted IV block: AES_K(J0) where J0 = IV || 0^31 || 1. The
     * paper computes this on the CPU with a single AES-NI invocation
     * and ships it to the DSA (Fig. 7); XORing it with the final GHASH
     * gives the tag.
     */
    std::array<std::uint8_t, 16> encryptedIv(const GcmIv &iv) const;

    /** Raw counter-mode keystream block for counter value @p ctr. */
    void keystreamBlock(const GcmIv &iv, std::uint32_t ctr,
                        std::uint8_t out[16]) const;

    const Aes &cipher() const { return aes_; }

  private:
    Aes aes_;
    Gf128 h_;
};

/**
 * Out-of-order incremental GCM over 64-byte cachelines.
 *
 * A message of `n` cachelines may have each line submitted exactly
 * once, in any order. The engine tracks the XOR-accumulated partial
 * tag (the Scratchpad-resident "partial tag" of Fig. 7) and produces
 * the final tag after all lines are in. Lines are full 64 bytes except
 * possibly the last.
 */
class IncrementalGcm
{
  public:
    /**
     * @param ctx key context (H and EIV are derived from it, standing
     *        in for the CPU-computed MMIO config write)
     * @param iv per-message IV
     * @param message_len total plaintext bytes
     */
    IncrementalGcm(const GcmContext &ctx, const GcmIv &iv,
                   std::size_t message_len);

    /** Number of 64-byte cachelines in the message. */
    std::size_t lineCount() const { return line_count_; }

    /**
     * Encrypt cacheline @p line_index (64 bytes, or the final partial
     * line). @p in/@p out may alias. Each line must be submitted
     * exactly once.
     */
    void processLine(std::size_t line_index, const std::uint8_t *in,
                     std::uint8_t *out);

    /** @return true once every line has been processed. */
    bool complete() const { return lines_done_ == line_count_; }

    /** Final tag; only valid when complete(). */
    GcmTag finalTag() const;

  private:
    const GcmContext &ctx_;
    GcmIv iv_;
    std::size_t message_len_;
    std::size_t line_count_;
    std::size_t lines_done_ = 0;
    std::vector<bool> seen_;
    Ghash ghash_;
    Gf128 partial_tag_{}; ///< XOR of positional GHASH contributions
    std::array<std::uint8_t, 16> eiv_;
};

} // namespace sd::crypto

#endif // SD_CRYPTO_AES_GCM_H
