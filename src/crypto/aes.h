/**
 * @file
 * AES block cipher (FIPS-197), 128- and 256-bit keys. This is the
 * functional reference both for the on-CPU (AES-NI stand-in) path and
 * for the SmartDIMM TLS DSA; correctness is checked against FIPS-197
 * and NIST SP 800-38D test vectors in the test suite.
 *
 * The data transformation is delegated to the dispatched kernel layer
 * (src/kernels): a byte-wise scalar reference, a T-table tier and an
 * AES-NI tier all produce identical bytes — speed of each *placement*
 * still comes from calibrated cost models, the kernels only cut the
 * repo's own wall-clock time.
 */

#ifndef SD_CRYPTO_AES_H
#define SD_CRYPTO_AES_H

#include <array>
#include <cstddef>
#include <cstdint>

#include "kernels/aes_kernel.h"

namespace sd::crypto {

/** AES block size in bytes. */
inline constexpr std::size_t kAesBlockSize = 16;

/**
 * Expanded-key AES encryptor. Decryption is not needed anywhere in the
 * stack (GCM uses the forward cipher in both directions).
 */
class Aes
{
  public:
    /** Key sizes supported. */
    enum class KeySize { k128, k256 };

    /**
     * Expand @p key.
     * @param key raw key bytes (16 or 32 depending on @p size).
     */
    Aes(const std::uint8_t *key, KeySize size);

    /** Convenience: AES-128 from a 16-byte array. */
    static Aes
    aes128(const std::array<std::uint8_t, 16> &key)
    {
        return Aes(key.data(), KeySize::k128);
    }

    /** Encrypt one 16-byte block (in-place allowed). */
    void encryptBlock(const std::uint8_t in[16], std::uint8_t out[16]) const;

    /** Number of rounds (10 for AES-128, 14 for AES-256). */
    int rounds() const { return key_.rounds; }

    /** Dispatched kernel key, for batched entry points (CTR). */
    const kernels::AesKey &kernelKey() const { return key_; }

  private:
    kernels::AesKey key_;
};

} // namespace sd::crypto

#endif // SD_CRYPTO_AES_H
