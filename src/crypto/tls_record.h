/**
 * @file
 * TLS 1.3-style record protection: a 5-byte record header, AES-GCM
 * body encryption with a per-record nonce derived from a static IV and
 * the record sequence number, and a 16-byte trailing tag. This is the
 * ULP layer the paper offloads (Sec. II / V-A).
 */

#ifndef SD_CRYPTO_TLS_RECORD_H
#define SD_CRYPTO_TLS_RECORD_H

#include <cstddef>
#include <cstdint>
#include <vector>

#include "crypto/aes_gcm.h"

namespace sd::crypto {

/** Record header size (type + legacy version + length). */
inline constexpr std::size_t kTlsHeaderSize = 5;

/** Tag trailer size. */
inline constexpr std::size_t kTlsTagSize = 16;

/** Maximum plaintext fragment per record (TLS 1.3 limit). */
inline constexpr std::size_t kTlsMaxFragment = 16384;

/** A protected record: header || ciphertext || tag. */
struct TlsRecord
{
    std::vector<std::uint8_t> wire;

    std::size_t payloadLen() const
    {
        return wire.size() - kTlsHeaderSize - kTlsTagSize;
    }
};

/**
 * One direction of a TLS connection: key, static IV and a running
 * sequence number.
 */
class TlsSession
{
  public:
    /** Derive a session from key material (AES-128-GCM suite). */
    TlsSession(const std::uint8_t key[16], const GcmIv &static_iv);

    /** Per-record nonce: static IV XOR big-endian sequence number. */
    GcmIv nonceFor(std::uint64_t seq) const;

    /** Protect @p len bytes of plaintext into a full record. */
    TlsRecord protect(const std::uint8_t *plain, std::size_t len);

    /**
     * Unprotect a record produced by a peer with the same keys.
     * @return plaintext, or empty vector on authentication failure.
     */
    std::vector<std::uint8_t> unprotect(const TlsRecord &record);

    /** Sequence number of the next record to be protected. */
    std::uint64_t txSeq() const { return tx_seq_; }

    /** Key context — what the CPU hands to SmartDIMM's config space. */
    const GcmContext &context() const { return ctx_; }

  private:
    GcmContext ctx_;
    GcmIv static_iv_;
    std::uint64_t tx_seq_ = 0;
    std::uint64_t rx_seq_ = 0;
};

} // namespace sd::crypto

#endif // SD_CRYPTO_TLS_RECORD_H
