/**
 * @file
 * GHASH over GF(2^128) as specified in NIST SP 800-38D. Supports the
 * stride-4 precomputed powers of H the SmartDIMM TLS DSA uses to break
 * the serial dependency chain between 64-byte cachelines (Sec. V-A).
 */

#ifndef SD_CRYPTO_GHASH_H
#define SD_CRYPTO_GHASH_H

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace sd::crypto {

/** A 128-bit GF(2^128) element in GCM bit order (big-endian bytes). */
struct Gf128
{
    std::uint64_t hi = 0; ///< bytes 0..7 (big-endian most significant)
    std::uint64_t lo = 0; ///< bytes 8..15

    bool operator==(const Gf128 &) const = default;

    /** Load from 16 big-endian bytes. */
    static Gf128 load(const std::uint8_t bytes[16]);

    /** Store to 16 big-endian bytes. */
    void store(std::uint8_t bytes[16]) const;

    /** XOR (addition in GF(2^128)). */
    Gf128
    operator^(const Gf128 &o) const
    {
        return Gf128{hi ^ o.hi, lo ^ o.lo};
    }
};

/** Carry-less multiply in GF(2^128) with the GCM polynomial. */
Gf128 gfMul(const Gf128 &a, const Gf128 &b);

/**
 * Incremental GHASH accumulator.
 *
 * The streaming form computes Y_i = (Y_{i-1} ^ X_i) * H. The DSA form
 * instead exploits linearity: the digest of n blocks equals
 * XOR_i X_i * H^(n-i), so blocks can be folded in *any order* once
 * their position (and hence the needed power of H) is known. That is
 * exactly why the paper precomputes powers of H in strides of 4 — each
 * 64-byte cacheline covers 4 AES blocks at a known block offset.
 */
class Ghash
{
  public:
    /** @param h hash subkey (AES_K(0^128)). */
    explicit Ghash(const Gf128 &h);

    /** Streaming: fold one 16-byte block in sequence order. */
    void update(const std::uint8_t block[16]);

    /** Streaming digest so far. */
    Gf128 digest() const { return y_; }

    /** Reset to the empty digest. */
    void reset() { y_ = Gf128{}; }

    /** @return H^k (k >= 1), extending the cached table on demand. */
    const Gf128 &power(std::size_t k);

    /**
     * Positional fold: contribution of @p block at position @p index
     * (0-based) within a message of @p total_blocks blocks, i.e.
     * block * H^(total_blocks - index). XOR of all contributions gives
     * the same digest as streaming over the whole message.
     */
    Gf128 positional(const std::uint8_t block[16], std::size_t index,
                     std::size_t total_blocks);

  private:
    Gf128 h_;
    Gf128 y_{};
    std::vector<Gf128> powers_; ///< powers_[k-1] = H^k
};

} // namespace sd::crypto

#endif // SD_CRYPTO_GHASH_H
