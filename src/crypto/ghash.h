/**
 * @file
 * GHASH over GF(2^128) as specified in NIST SP 800-38D. Supports the
 * stride-4 precomputed powers of H the SmartDIMM TLS DSA uses to break
 * the serial dependency chain between 64-byte cachelines (Sec. V-A).
 *
 * Field multiplications route through the dispatched kernel layer
 * (src/kernels): the streaming multiply-by-H uses the per-key Shoup
 * 8-bit table (or PCLMULQDQ), general products (powers of H,
 * positional folds) use the 4-bit table or PCLMULQDQ tier. The free
 * function gfMul() remains the always-compiled bit-serial reference.
 */

#ifndef SD_CRYPTO_GHASH_H
#define SD_CRYPTO_GHASH_H

#include <array>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <vector>

#include "kernels/ghash_kernel.h"

namespace sd::crypto {

/** A 128-bit GF(2^128) element in GCM bit order (big-endian bytes). */
struct Gf128
{
    std::uint64_t hi = 0; ///< bytes 0..7 (big-endian most significant)
    std::uint64_t lo = 0; ///< bytes 8..15
    bool operator==(const Gf128 &) const = default;

    /** Load from 16 big-endian bytes. */
    static Gf128
    load(const std::uint8_t bytes[16])
    {
        std::uint64_t hi;
        std::uint64_t lo;
        std::memcpy(&hi, bytes, 8);
        std::memcpy(&lo, bytes + 8, 8);
        return Gf128{beToHost(hi), beToHost(lo)};
    }

    /** Store to 16 big-endian bytes. */
    void
    store(std::uint8_t bytes[16]) const
    {
        const std::uint64_t be_hi = beToHost(hi);
        const std::uint64_t be_lo = beToHost(lo);
        std::memcpy(bytes, &be_hi, 8);
        std::memcpy(bytes + 8, &be_lo, 8);
    }

    /** Big-endian <-> host conversion (an involution). */
    static std::uint64_t
    beToHost(std::uint64_t v)
    {
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_BIG_ENDIAN__
        return v;
#else
        return __builtin_bswap64(v);
#endif
    }

    /** XOR (addition in GF(2^128)). */
    Gf128
    operator^(const Gf128 &o) const
    {
        return Gf128{hi ^ o.hi, lo ^ o.lo};
    }
};

/**
 * Carry-less multiply in GF(2^128) with the GCM polynomial — the
 * bit-serial scalar reference (the kernel tiers are tested against
 * it; use Ghash for the fast paths).
 */
Gf128 gfMul(const Gf128 &a, const Gf128 &b);

/**
 * Upper bound on the powers of H one TLS record can need: a 16 KB
 * maximum fragment is 1024 AES blocks plus the GHASH length block.
 * Ghash reserves this many entries up front so the powers table never
 * reallocates mid-record.
 */
inline constexpr std::size_t kGhashMaxRecordPowers = 16384 / 16 + 1;

/**
 * Incremental GHASH accumulator.
 *
 * The streaming form computes Y_i = (Y_{i-1} ^ X_i) * H. The DSA form
 * instead exploits linearity: the digest of n blocks equals
 * XOR_i X_i * H^(n-i), so blocks can be folded in *any order* once
 * their position (and hence the needed power of H) is known. That is
 * exactly why the paper precomputes powers of H in strides of 4 — each
 * 64-byte cacheline covers 4 AES blocks at a known block offset.
 */
class Ghash
{
  public:
    /** @param h hash subkey (AES_K(0^128)). */
    explicit Ghash(const Gf128 &h);

    /** Streaming: fold one 16-byte block in sequence order. */
    void update(const std::uint8_t block[16]);

    /**
     * Streaming: fold @p nblocks contiguous full 16-byte blocks, same
     * digest as nblocks update() calls but routed through the batched
     * kernel (4-block aggregated reduction on the table tier).
     */
    void updateBlocks(const std::uint8_t *blocks, std::size_t nblocks);

    /** Streaming digest so far. */
    Gf128 digest() const { return y_; }

    /** Reset to the empty digest. */
    void reset() { y_ = Gf128{}; }

    /**
     * @return H^k (k >= 1), extending the cached table on demand.
     * Warm lookups (every call after the table reaches the record's
     * block count) stay inline — this sits on the per-line DSA path.
     */
    const Gf128 &
    power(std::size_t k)
    {
        // k == 0 routes to the slow path, which rejects it.
        return k - 1 < powers_.size() ? powers_[k - 1]
                                      : extendPowers(k);
    }

    /**
     * Positional fold: contribution of @p block at position @p index
     * (0-based) within a message of @p total_blocks blocks, i.e.
     * block * H^(total_blocks - index). XOR of all contributions gives
     * the same digest as streaming over the whole message.
     */
    Gf128 positional(const std::uint8_t block[16], std::size_t index,
                     std::size_t total_blocks);

  private:
    /** Grow the powers table up to H^k and return it. */
    const Gf128 &extendPowers(std::size_t k);

    kernels::GhashKey key_; ///< H + tier-specific precomputation
    Gf128 y_{};
    std::vector<Gf128> powers_; ///< powers_[k-1] = H^k
};

} // namespace sd::crypto

#endif // SD_CRYPTO_GHASH_H
