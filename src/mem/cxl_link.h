/**
 * @file
 * CXL.mem far-memory link model. A CxlLink sits between the LLC and a
 * far channel's memory controller and charges every DRAM-side access
 * the link's round-trip flight time plus payload serialization at the
 * configured line rate. Flits serialize in FIFO order on one shared
 * link, so back-to-back transfers queue behind each other — the model
 * reuses the pool-backed EventQueue rather than keeping its own timer
 * wheel.
 *
 * The link is also a fault-injection point: kCxlLinkStall adds a
 * configurable retry penalty to one transfer (a CRC retry episode on
 * the flex-bus), counted separately from ordinary queueing so the
 * chaos soak can check conservation.
 */

#ifndef SD_MEM_CXL_LINK_H
#define SD_MEM_CXL_LINK_H

#include <cstddef>
#include <cstdint>

#include "common/types.h"
#include "fault/fault.h"
#include "sim/event_queue.h"
#include "trace/trace.h"

namespace sd::mem {

/** Link timing knobs (defaults: mid-range CXL 2.0 switch hop). */
struct CxlLinkConfig
{
    double round_trip_ns = 600.0; ///< request + response flight time
    double gbps = 32.0;           ///< payload serialization rate
    double stall_ns = 250.0;      ///< injected CRC-retry episode penalty
};

/**
 * One CXL.mem link: all traffic to one far channel serializes here.
 * Single-owner like every simulation component — only event-queue
 * callbacks touch it.
 */
class CxlLink
{
  public:
    struct Stats
    {
        std::uint64_t transfers = 0;
        std::uint64_t bytes = 0;
        std::uint64_t queued = 0; ///< transfers that waited for the wire
        std::uint64_t injected_stalls = 0;
        Tick busy_ticks = 0;  ///< wire occupancy (serialization)
        Tick queue_ticks = 0; ///< time spent waiting behind earlier flits
    };

    CxlLink(EventQueue &events, const CxlLinkConfig &config);

    /**
     * Ship @p bytes across the link and run @p fn when the response
     * lands (round trip + serialization + any queueing/stall delay).
     * @p fn receives the delivery tick.
     */
    void transfer(std::size_t bytes, UniqueFunctionT<void(Tick)> fn);

    /** Round-trip flight time in ticks (no payload, no queueing). */
    Tick roundTripTicks() const { return round_trip_ticks_; }

    void setFaultPlan(fault::FaultPlan *plan) { fault_plan_ = plan; }
    void
    setFaultScope(const fault::FaultScope &scope)
    {
        fault_scope_ = scope;
    }

    const Stats &stats() const { return stats_; }
    void reportStats(trace::StatsBlock &block) const;

  private:
    EventQueue &events_;
    CxlLinkConfig config_;
    Tick round_trip_ticks_ = 0;
    Tick stall_ticks_ = 0;
    Tick free_at_ = 0; ///< when the wire finishes the last queued flit
    Stats stats_;
    fault::FaultPlan *fault_plan_ = nullptr;
    fault::FaultScope fault_scope_;
};

} // namespace sd::mem

#endif // SD_MEM_CXL_LINK_H
