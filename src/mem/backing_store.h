/**
 * @file
 * Sparse byte-addressable backing store so the simulated memory holds
 * real data (ciphertexts and compressed streams are verified against
 * the software implementations).
 */

#ifndef SD_MEM_BACKING_STORE_H
#define SD_MEM_BACKING_STORE_H

#include <array>
#include <cstring>
#include <memory>
#include <unordered_map>

#include "common/types.h"

namespace sd::mem {

/** Sparse page-granular memory image. Untouched bytes read as zero. */
class BackingStore
{
  public:
    /** Read @p len bytes at @p addr into @p dst. */
    void
    read(Addr addr, std::uint8_t *dst, std::size_t len) const
    {
        while (len > 0) {
            const Addr page = pageAlign(addr);
            const std::size_t off = addr - page;
            const std::size_t take = std::min(len, kPageSize - off);
            auto it = pages_.find(page);
            if (it == pages_.end())
                std::memset(dst, 0, take);
            else
                std::memcpy(dst, it->second->data() + off, take);
            addr += take;
            dst += take;
            len -= take;
        }
    }

    /** Write @p len bytes from @p src at @p addr. */
    void
    write(Addr addr, const std::uint8_t *src, std::size_t len)
    {
        while (len > 0) {
            const Addr page = pageAlign(addr);
            const std::size_t off = addr - page;
            const std::size_t take = std::min(len, kPageSize - off);
            auto &slot = pages_[page];
            if (!slot)
                slot = std::make_unique<Page>();
            std::memcpy(slot->data() + off, src, take);
            addr += take;
            src += take;
            len -= take;
        }
    }

    /** Number of materialised pages (footprint diagnostics). */
    std::size_t pageCount() const { return pages_.size(); }

  private:
    using Page = std::array<std::uint8_t, kPageSize>;
    std::unordered_map<Addr, std::unique_ptr<Page>> pages_;
};

} // namespace sd::mem

#endif // SD_MEM_BACKING_STORE_H
