#include "mem/memory_controller.h"

#include <algorithm>
#include <memory>

#include "common/log.h"

namespace sd::mem {

MemoryController::MemoryController(EventQueue &events, const AddressMap &map,
                                   const DramTiming &timing,
                                   const ControllerConfig &config,
                                   unsigned channel, DimmDevice &dimm)
    : events_(events), map_(map), timing_(timing), config_(config),
      channel_(channel), dimm_(dimm),
      banks_(map.geometry().totalBanks())
{
}

void
MemoryController::enqueueRead(Addr line_addr, std::uint8_t *data,
                              MemCallback cb)
{
    SD_ASSERT(isLineAligned(line_addr), "unaligned read 0x%llx",
              static_cast<unsigned long long>(line_addr));
    Request req;
    req.addr = line_addr;
    req.coord = map_.decompose(line_addr);
    req.flat_bank = req.coord.flatBank(map_.geometry());
    req.read_data = data;
    req.cb = std::move(cb);
    req.enqueued = events_.now();
    read_q_.push_back(std::move(req));
    kick();
}

void
MemoryController::enqueueWrite(Addr line_addr, const std::uint8_t *data,
                               MemCallback cb)
{
    SD_ASSERT(isLineAligned(line_addr), "unaligned write 0x%llx",
              static_cast<unsigned long long>(line_addr));
    Request req;
    req.addr = line_addr;
    req.coord = map_.decompose(line_addr);
    req.flat_bank = req.coord.flatBank(map_.geometry());
    req.write_data.assign(data, data + kCacheLineSize);
    req.cb = std::move(cb);
    req.enqueued = events_.now();
    write_q_.push_back(std::move(req));
    kick();
}

void
MemoryController::kick()
{
    // Scheduler decisions land on command-clock edges.
    requestPass(clock_.nextEdge(events_.now()));
}

void
MemoryController::requestPass(Tick when)
{
    ++stats_.wakeups_requested;
    if (!coalesce_wakeups_) {
        // Reference mode for the coalescing regression test: one full
        // scheduler pass per requested wakeup, as the seed behaved.
        events_.schedule(when, [this] { schedulePass(); });
        return;
    }
    if (pass_scheduled_ && pass_at_ <= when) {
        ++stats_.wakeups_coalesced;
        return;
    }
    pass_scheduled_ = true;
    pass_at_ = when;
    const std::uint64_t epoch = ++pass_epoch_;
    events_.schedule(when, [this, epoch] {
        if (epoch != pass_epoch_)
            return; // superseded by an earlier wakeup
        pass_scheduled_ = false;
        schedulePass();
    });
}

std::size_t
MemoryController::pickFrFcfs(const std::deque<Request> &queue) const
{
    // First ready (row hit), then oldest. The probe is one 8-byte
    // load against the SoA open-row column, keyed by the flat bank
    // id precomputed at enqueue.
    for (std::size_t i = 0; i < queue.size(); ++i) {
        if (banks_.rowHit(queue[i].flat_bank, queue[i].coord.row))
            return i;
    }
    return 0;
}

void
MemoryController::emit(DdrCommandType type, const Request &req, Tick at)
{
    DdrCommand cmd;
    cmd.type = type;
    cmd.coord = req.coord;
    cmd.addr = req.addr;
    cmd.issue = at;
    // Four command slots per buffer-device cycle (Sec. IV-C).
    cmd.slot = static_cast<unsigned>(clock_.cyclesAt(at) % 4);
    dimm_.onCommand(cmd);
    if (observer_)
        observer_->observe(cmd);

    auto &tr = trace::tracer();
    if (tr.ddrCapture()) {
        trace::Stage stage;
        switch (type) {
          case DdrCommandType::kReadCas:
            stage = trace::Stage::kDdrRead;
            break;
          case DdrCommandType::kWriteCas:
            stage = trace::Stage::kDdrWrite;
            break;
          case DdrCommandType::kActivate:
            stage = trace::Stage::kDdrActivate;
            break;
          default:
            stage = trace::Stage::kDdrPrecharge;
            break;
        }
        // Buffered; schedulePass() flushes before returning to the
        // event loop, preserving capture order (see trace::DdrBatch).
        ddr_batch_.add(stage, at, cmd.addr);
    }
}

void
MemoryController::reportStats(trace::StatsBlock &block) const
{
    block.scalar("reads", static_cast<double>(stats_.reads));
    block.scalar("writes", static_cast<double>(stats_.writes));
    block.scalar("row_hits", static_cast<double>(stats_.row_hits));
    block.scalar("row_misses", static_cast<double>(stats_.row_misses));
    block.scalar("row_conflicts",
                 static_cast<double>(stats_.row_conflicts));
    block.scalar("alert_retries",
                 static_cast<double>(stats_.alert_retries));
    block.scalar("spurious_alerts",
                 static_cast<double>(stats_.spurious_alerts));
    block.scalar("alert_backoffs",
                 static_cast<double>(stats_.alert_backoffs));
    block.scalar("degraded_reads",
                 static_cast<double>(stats_.degraded_reads));
    block.scalar("turnarounds", static_cast<double>(stats_.turnarounds));
    block.scalar("sched_passes",
                 static_cast<double>(stats_.sched_passes));
    block.scalar("wakeups_requested",
                 static_cast<double>(stats_.wakeups_requested));
    block.scalar("wakeups_coalesced",
                 static_cast<double>(stats_.wakeups_coalesced));
    block.scalar("bytes_moved", static_cast<double>(stats_.bytesMoved()));
    block.scalar("bus_busy_cycles",
                 static_cast<double>(bus_busy_cycles_));
    block.hist("read_latency_ticks", read_latency_);
}

bool
MemoryController::issueRequest(std::deque<Request> &queue,
                               std::size_t index, bool is_write)
{
    Request &req = queue[index];
    const std::uint32_t bank = req.flat_bank;
    const Tick now = events_.now();
    const Tick period = clock_.period();

    // Open the right row first if needed.
    if (!banks_.rowHit(bank, req.coord.row)) {
        Tick when = std::max(now, banks_.readyAt(bank));
        if (banks_.open(bank)) {
            // PRE then ACT. Respect tRAS since the last ACT.
            when = std::max(when,
                            banks_.actAt(bank) + timing_.tRAS * period);
            Request pre_req; // coordinates only
            pre_req.addr = req.addr;
            pre_req.coord = req.coord;
            emit(DdrCommandType::kPrecharge, pre_req, when);
            when += timing_.tRP * period;
            ++stats_.row_conflicts;
        } else {
            ++stats_.row_misses;
        }
        emit(DdrCommandType::kActivate, req, when);
        req.needed_act = true;
        banks_.activate(bank, req.coord.row, /*act_at=*/when,
                        /*ready_at=*/when + timing_.tRCD * period);
        // Re-run the scheduler when the bank becomes ready.
        requestPass(banks_.readyAt(bank));
        return false; // CAS not issued this pass
    }

    // Earliest issue: bank readiness, data-bus availability, and the
    // read/write turnaround relative to the *previous* burst. All
    // inputs are stable until another CAS issues, so the computed
    // tick does not recede across scheduler passes.
    Tick earliest = std::max(banks_.readyAt(bank), bus_free_at_);
    const bool turnaround =
        cas_issued_ && last_was_write_ != is_write;
    if (turnaround)
        earliest = std::max(
            earliest,
            bus_free_at_ +
                (is_write ? timing_.tRTW : timing_.tWTR) * period);
    const Tick cas_at = clock_.nextEdge(std::max(earliest, now));

    if (cas_at > now) {
        // Not issuable yet; try again when the bus frees up.
        requestPass(cas_at);
        return false;
    }
    if (turnaround)
        ++stats_.turnarounds;

    // Issue the CAS now. Row hits are CASes that never needed an ACT.
    if (!req.needed_act)
        ++stats_.row_hits;
    Request done = std::move(req);
    queue.erase(queue.begin() + static_cast<long>(index));

    const Cycles cas_latency = is_write ? timing_.tCWL : timing_.tCL;
    const Tick data_start = cas_at + cas_latency * period;
    const Tick data_end = data_start + timing_.tBL * period;

    banks_.setReadyAt(bank, cas_at + timing_.tCCD_L * period);
    bus_free_at_ = data_end;
    last_was_write_ = is_write;
    cas_issued_ = true;
    bus_busy_cycles_ += timing_.tBL;

    if (is_write) {
        emit(DdrCommandType::kWriteCas, done, cas_at);
        ++stats_.writes;
        // The burst reaches the device at the end of the data
        // transfer. The capture *owns* the burst bytes and the
        // completion callback (move-only Callback — no shared_ptr
        // indirection, no nested std::function copy).
        DdrCommand cmd;
        cmd.type = DdrCommandType::kWriteCas;
        cmd.coord = done.coord;
        cmd.addr = done.addr;
        cmd.issue = cas_at;
        cmd.slot = static_cast<unsigned>(clock_.cyclesAt(cas_at) % 4);
        events_.schedule(data_end,
                         [this, cmd, data = std::move(done.write_data),
                          cb = std::move(done.cb)]() mutable {
            dimm_.onWrite(cmd, data.data());
            if (cb)
                cb(events_.now(), MemStatus::kOk);
        });
    } else {
        emit(DdrCommandType::kReadCas, done, cas_at);
        DdrCommand cmd;
        cmd.type = DdrCommandType::kReadCas;
        cmd.coord = done.coord;
        cmd.addr = done.addr;
        cmd.issue = cas_at;
        cmd.slot = static_cast<unsigned>(clock_.cyclesAt(cas_at) % 4);
        auto *read_data = done.read_data;
        auto retries = done.retries;
        const Tick enq = done.enqueued;
        events_.schedule(data_end,
                         [this, cmd, read_data,
                          cb = std::move(done.cb), retries,
                          enq]() mutable {
            const ReadResponse resp = dimm_.onRead(cmd, read_data);
            if (resp == ReadResponse::kAlertN) {
                // S13: device asserted ALERT_N — requeue the rdCAS.
                retryAlert(cmd, read_data, std::move(cb), retries, enq,
                           /*spurious=*/false);
                return;
            }
            if (fault_plan_ && fault_plan_->armed(fault::Site::kAlertStorm)
                && fault_plan_->shouldInject(
                       fault::Site::kAlertStorm,
                       {static_cast<int>(channel_), -1})) {
                // Injected storm: treat the good read as if the device
                // had asserted ALERT_N (data is discarded and re-read).
                retryAlert(cmd, read_data, std::move(cb), retries, enq,
                           /*spurious=*/true);
                return;
            }
            ++stats_.reads;
            read_latency_.sample(events_.now() - enq);
            if (cb)
                cb(events_.now(), MemStatus::kOk);
        });
        // Count the read at issue for scheduling purposes: stats_.reads
        // is incremented at completion above; nothing else here.
    }
    return true;
}

void
MemoryController::retryAlert(const DdrCommand &cmd, std::uint8_t *read_data,
                             MemCallback cb, unsigned retries,
                             Tick enq, bool spurious)
{
    ++stats_.alert_retries;
    if (spurious) {
        ++stats_.spurious_alerts;
        SD_TRACE_FAULT_EVENT(cmd.addr / kPageSize, events_.now(), cmd.addr);
    }

    const unsigned attempt = retries + 1;
    if (attempt >= config_.alert_max_retries) {
        // Retry budget exhausted: hand the (possibly stale) line back
        // as degraded instead of wedging the channel. The host stack
        // decides how to recover (Sec. IV-D's fallback path).
        ++stats_.degraded_reads;
        SD_TRACE_FAULT_EVENT(cmd.addr / kPageSize, events_.now(), cmd.addr);
        ++stats_.reads;
        read_latency_.sample(events_.now() - enq);
        if (cb)
            cb(events_.now(), MemStatus::kDegraded);
        return;
    }

    Request retry;
    retry.addr = cmd.addr;
    retry.coord = cmd.coord;
    retry.flat_bank = cmd.coord.flatBank(map_.geometry());
    retry.read_data = read_data;
    retry.cb = std::move(cb);
    retry.enqueued = enq; // latency spans all retries
    retry.retries = attempt;

    if (attempt <= config_.alert_fast_retries) {
        read_q_.push_back(std::move(retry));
        kick();
        return;
    }

    // Exponential backoff past the fast window, capped so a long storm
    // stays polling rather than effectively parked.
    ++stats_.alert_backoffs;
    const unsigned excess = attempt - config_.alert_fast_retries - 1;
    const unsigned shift = std::min(excess, 20u);
    const Cycles backoff = std::min(config_.alert_backoff_base << shift,
                                    config_.alert_backoff_cap);
    events_.schedule(events_.now() + backoff * clock_.period(),
                     [this, retry = std::move(retry)]() mutable {
        read_q_.push_back(std::move(retry));
        kick();
    });
}

void
MemoryController::updateWriteDrain()
{
    if (write_q_.size() >= config_.write_high_watermark) {
        // kWriteDrainDelay: suppress the drain transition this pass so
        // the write queue keeps backing up (exercises queue-pressure
        // paths above the high watermark).
        const bool delayed =
            !write_drain_ && fault_plan_ &&
            fault_plan_->armed(fault::Site::kWriteDrainDelay) &&
            fault_plan_->shouldInject(fault::Site::kWriteDrainDelay,
                                      {static_cast<int>(channel_), -1});
        if (!delayed)
            write_drain_ = true;
    }
    if (write_q_.size() <= config_.write_low_watermark)
        write_drain_ = false;
}

void
MemoryController::schedulePass()
{
    ++stats_.sched_passes;
    // Drain-mode hysteresis (write batching).
    updateWriteDrain();

    for (;;) {
        const bool service_writes =
            write_drain_ || (read_q_.empty() && !write_q_.empty());
        std::deque<Request> &queue = service_writes ? write_q_ : read_q_;
        if (queue.empty())
            break;
        const std::size_t index = pickFrFcfs(queue);
        if (!issueRequest(queue, index, service_writes))
            break; // waiting on a bank/bus event already requested
        // Keep issuing while commands fit at the current tick.
        updateWriteDrain();
    }
    // One tracer-lock acquisition for the whole pass's DDR mirror.
    ddr_batch_.flush();
}

} // namespace sd::mem
