/**
 * @file
 * Multi-DIMM channel fan-out. A DDR4 channel is one command/data bus
 * shared by every DIMM in its slots; the chip-select decoded from the
 * address picks which module latches a given command. DimmMux models
 * that decode: the controller keeps talking to a single DimmDevice,
 * and the mux forwards each command to the slot named by the
 * already-decomposed coordinate. Timing is unaffected — the bus is
 * still serialised by the controller — only device state (bank
 * tables, scratchpads, DSAs) is per-slot.
 */

#ifndef SD_MEM_DIMM_MUX_H
#define SD_MEM_DIMM_MUX_H

#include <vector>

#include "common/log.h"
#include "mem/dram_command.h"

namespace sd::mem {

/** Chip-select fan-out to the DIMMs sharing one channel. */
class DimmMux final : public DimmDevice
{
  public:
    explicit DimmMux(std::vector<DimmDevice *> slots)
        : slots_(std::move(slots))
    {
        SD_ASSERT(!slots_.empty(), "a channel needs at least one DIMM");
    }

    void
    onCommand(const DdrCommand &cmd) override
    {
        select(cmd).onCommand(cmd);
    }

    ReadResponse
    onRead(const DdrCommand &cmd, std::uint8_t *data) override
    {
        return select(cmd).onRead(cmd, data);
    }

    void
    onWrite(const DdrCommand &cmd, const std::uint8_t *data) override
    {
        select(cmd).onWrite(cmd, data);
    }

  private:
    DimmDevice &
    select(const DdrCommand &cmd)
    {
        SD_ASSERT(cmd.coord.dimm < slots_.size(),
                  "command addressed past the channel's DIMM slots");
        return *slots_[cmd.coord.dimm];
    }

    std::vector<DimmDevice *> slots_;
};

} // namespace sd::mem

#endif // SD_MEM_DIMM_MUX_H
