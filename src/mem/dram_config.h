/**
 * @file
 * DDR4 geometry and timing parameters. Defaults approximate a DDR4-3200
 * RDIMM (the paper's testbed runs 6x 16 GB DIMMs at 3200 MT/s).
 */

#ifndef SD_MEM_DRAM_CONFIG_H
#define SD_MEM_DRAM_CONFIG_H

#include <cstdint>

#include "common/types.h"

namespace sd::mem {

/**
 * Geometry of one memory channel. A rank is composed of bank groups x
 * banks; each row holds `row_bytes` and columns are addressed at
 * 64-byte burst granularity.
 */
struct DramGeometry
{
    unsigned channels = 1;
    unsigned dimms_per_channel = 1; ///< buffer devices sharing one bus
    unsigned ranks = 1;
    unsigned bank_groups = 4;
    unsigned banks_per_group = 4;
    std::uint64_t row_bytes = 8192;           ///< per-bank row buffer
    std::uint64_t channel_bytes = 16ULL << 30; ///< capacity per channel

    unsigned banksPerRank() const { return bank_groups * banks_per_group; }

    /**
     * Flat bank-state size per channel controller. Each DIMM on the
     * channel owns an independent set of banks (its own chips), so the
     * controller tracks dimms x ranks x banks row states.
     */
    unsigned
    totalBanks() const
    {
        return dimms_per_channel * ranks * banksPerRank();
    }

    std::uint64_t linesPerRow() const { return row_bytes / kCacheLineSize; }

    /** Capacity slice owned by one DIMM within its channel window. */
    std::uint64_t
    dimmBytes() const
    {
        return channel_bytes / dimms_per_channel;
    }
};

/**
 * Timing in DRAM command-clock cycles (DDR4-3200: tCK = 0.625 ns).
 * Values follow common 22-22-22 speed-bin datasheets.
 */
struct DramTiming
{
    Cycles tRCD = 22;  ///< ACT to internal read/write
    Cycles tRP = 22;   ///< PRE to ACT
    Cycles tRAS = 52;  ///< ACT to PRE
    Cycles tCL = 22;   ///< read CAS latency
    Cycles tCWL = 16;  ///< write CAS latency
    Cycles tBL = 4;    ///< burst occupancy on the data bus (BL8/2)
    Cycles tCCD_S = 4; ///< CAS-to-CAS, different bank group
    Cycles tCCD_L = 8; ///< CAS-to-CAS, same bank group
    Cycles tWR = 24;   ///< write recovery before PRE
    Cycles tRTW = 12;  ///< read-to-write bus turnaround
    Cycles tWTR = 18;  ///< write-to-read bus turnaround
};

/** Memory-controller queueing policy. */
struct ControllerConfig
{
    unsigned read_queue_depth = 64;
    unsigned write_queue_depth = 64;
    unsigned write_high_watermark = 48; ///< enter write-drain mode
    unsigned write_low_watermark = 16;  ///< leave write-drain mode

    // ALERT_N retry policy. Retries up to `alert_fast_retries` requeue
    // immediately (the common S13 case resolves within a few rdCAS
    // round trips); past that each requeue backs off exponentially so a
    // wedged DSA cannot monopolise the channel; at `alert_max_retries`
    // the read completes with MemStatus::kDegraded instead of aborting
    // the simulation.
    unsigned alert_fast_retries = 8;
    unsigned alert_max_retries = 64;
    Cycles alert_backoff_base = 64;   ///< first backoff (command clocks)
    Cycles alert_backoff_cap = 8192;  ///< backoff ceiling
};

/** How physical addresses spread across channels. */
enum class ChannelInterleave
{
    kNone,     ///< one channel owns the whole space (AxDIMM mode)
    kLine,     ///< consecutive 64 B lines round-robin channels
    kPage,     ///< consecutive 4 KB pages round-robin channels
    kCapacity, ///< each channel owns a contiguous channel_bytes window
};

} // namespace sd::mem

#endif // SD_MEM_DRAM_CONFIG_H
