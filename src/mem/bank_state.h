/**
 * @file
 * SoA bank-state table for the memory controller's FR-FCFS scan.
 *
 * The scheduler's hottest loop asks one question per queued request:
 * "is this request a row hit?" — i.e. does the request's bank have
 * its row open. The seed kept per-bank state as an array of structs
 * (open flag, row, ready/act ticks), so every probe dragged a full
 * 32-byte Bank record through the cache to read 9 bytes of it. This
 * table stores each field in its own contiguous vector; the scan
 * touches only the open-row column (8 bytes per bank, with the
 * closed state folded into a sentinel row value), and the timing
 * columns are read only for the single request the pass actually
 * issues.
 *
 * Like the struct it replaces, this is plain controller-private
 * state: no concurrency contract beyond the controller's own
 * (single-owner via its EventQueue).
 */

#ifndef SD_MEM_BANK_STATE_H
#define SD_MEM_BANK_STATE_H

#include <cstdint>
#include <vector>

#include "common/log.h"
#include "common/types.h"

namespace sd::mem {

/** Per-bank open-row and timing state, struct-of-arrays layout. */
class BankStateSoA
{
  public:
    /** Sentinel open-row value meaning "bank precharged / closed". */
    static constexpr std::uint64_t kClosed = ~std::uint64_t{0};

    explicit BankStateSoA(std::size_t banks)
        : open_row_(banks, kClosed), ready_at_(banks, 0),
          act_at_(banks, 0)
    {
    }

    std::size_t size() const { return open_row_.size(); }

    /** @return true when the bank has any row open. */
    bool open(std::size_t bank) const { return open_row_[bank] != kClosed; }

    /**
     * The FR-FCFS probe: one 8-byte load, true iff the bank is open
     * *and* holds @p row (kClosed never equals a real row number).
     */
    bool
    rowHit(std::size_t bank, std::uint64_t row) const
    {
        return open_row_[bank] == row;
    }

    /** Open row of @p bank. Precondition: open(bank). */
    std::uint64_t row(std::size_t bank) const { return open_row_[bank]; }

    /** Earliest tick the bank accepts its next column command. */
    Tick readyAt(std::size_t bank) const { return ready_at_[bank]; }
    void setReadyAt(std::size_t bank, Tick t) { ready_at_[bank] = t; }

    /** Tick of the bank's last ACT (for tRAS accounting). */
    Tick actAt(std::size_t bank) const { return act_at_[bank]; }

    /** Apply an ACT: open @p row, stamp timing columns. */
    void
    activate(std::size_t bank, std::uint64_t row, Tick act_at,
             Tick ready_at)
    {
        SD_ASSERT(row != kClosed, "row id collides with closed sentinel");
        open_row_[bank] = row;
        act_at_[bank] = act_at;
        ready_at_[bank] = ready_at;
    }

    /** Apply a PRE: close the bank. */
    void precharge(std::size_t bank) { open_row_[bank] = kClosed; }

  private:
    std::vector<std::uint64_t> open_row_; ///< kClosed when precharged
    std::vector<Tick> ready_at_;
    std::vector<Tick> act_at_;
};

} // namespace sd::mem

#endif // SD_MEM_BANK_STATE_H
