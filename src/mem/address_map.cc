#include "mem/address_map.h"

#include "common/bitops.h"
#include "common/log.h"

namespace sd::mem {

AddressMap::AddressMap(const DramGeometry &geometry,
                       ChannelInterleave interleave)
    : geometry_(geometry), interleave_(interleave)
{
    SD_ASSERT(isPowerOf2(geometry.channels) &&
                  isPowerOf2(geometry.ranks) &&
                  isPowerOf2(geometry.bank_groups) &&
                  isPowerOf2(geometry.banks_per_group) &&
                  isPowerOf2(geometry.row_bytes),
              "DRAM geometry fields must be powers of two");
    channel_bits_ =
        geometry.channels > 1 ? floorLog2(geometry.channels) : 0;
    col_bits_ = floorLog2(geometry.linesPerRow());
    bank_bits_ = floorLog2(geometry.banks_per_group);
    bg_bits_ = floorLog2(geometry.bank_groups);
    rank_bits_ = geometry.ranks > 1 ? floorLog2(geometry.ranks) : 0;
}

DramCoord
AddressMap::decompose(Addr addr) const
{
    std::uint64_t v = addr >> 6; // line index
    DramCoord coord;

    if (interleave_ == ChannelInterleave::kLine && channel_bits_ > 0) {
        coord.channel = static_cast<unsigned>(bits(v, 0, channel_bits_));
        v >>= channel_bits_;
    } else if (interleave_ == ChannelInterleave::kPage &&
               channel_bits_ > 0) {
        // 4 KB page = 64 lines: channel bits sit above bit 5 of the
        // line index.
        const std::uint64_t in_page = bits(v, 0, 6);
        coord.channel =
            static_cast<unsigned>(bits(v, 6, channel_bits_));
        v = ((v >> (6 + channel_bits_)) << 6) | in_page;
    }

    coord.col = bits(v, 0, col_bits_);
    v >>= col_bits_;
    coord.bank = static_cast<unsigned>(bits(v, 0, bank_bits_));
    v >>= bank_bits_;
    coord.bank_group = static_cast<unsigned>(bits(v, 0, bg_bits_));
    v >>= bg_bits_;
    coord.rank = static_cast<unsigned>(bits(v, 0, rank_bits_));
    v >>= rank_bits_;
    coord.row = v;
    return coord;
}

Addr
AddressMap::compose(const DramCoord &coord) const
{
    std::uint64_t v = coord.row;
    v = (v << rank_bits_) | coord.rank;
    v = (v << bg_bits_) | coord.bank_group;
    v = (v << bank_bits_) | coord.bank;
    v = (v << col_bits_) | coord.col;

    if (interleave_ == ChannelInterleave::kLine && channel_bits_ > 0) {
        v = (v << channel_bits_) | coord.channel;
    } else if (interleave_ == ChannelInterleave::kPage &&
               channel_bits_ > 0) {
        const std::uint64_t in_page = bits(v, 0, 6);
        v = ((((v >> 6) << channel_bits_) | coord.channel) << 6) | in_page;
    }
    return v << 6;
}

} // namespace sd::mem
