#include "mem/address_map.h"

#include "common/bitops.h"
#include "common/log.h"

namespace sd::mem {

AddressMap::AddressMap(const DramGeometry &geometry,
                       ChannelInterleave interleave)
    : geometry_(geometry), interleave_(interleave)
{
    // Channel and DIMM counts are extracted by div/mod, so they may be
    // arbitrary; the intra-DIMM fields stay bit-sliced and must be
    // powers of two.
    SD_ASSERT(isPowerOf2(geometry.ranks) &&
                  isPowerOf2(geometry.bank_groups) &&
                  isPowerOf2(geometry.banks_per_group) &&
                  isPowerOf2(geometry.row_bytes),
              "DRAM geometry fields must be powers of two");
    SD_ASSERT(geometry.channels >= 1 && geometry.dimms_per_channel >= 1,
              "geometry needs at least one channel and one DIMM");
    SD_ASSERT(geometry.channel_bytes % geometry.dimms_per_channel == 0,
              "channel capacity must split evenly across DIMM slots");
    channel_lines_ = geometry.channel_bytes / kCacheLineSize;
    dimm_lines_ = geometry.dimmBytes() / kCacheLineSize;
    col_bits_ = floorLog2(geometry.linesPerRow());
    bank_bits_ = floorLog2(geometry.banks_per_group);
    bg_bits_ = floorLog2(geometry.bank_groups);
    rank_bits_ = geometry.ranks > 1 ? floorLog2(geometry.ranks) : 0;
}

DramCoord
AddressMap::decompose(Addr addr) const
{
    std::uint64_t v = addr >> kLineBits; // line index
    const std::uint64_t channels = geometry_.channels;
    DramCoord coord;

    switch (interleave_) {
      case ChannelInterleave::kNone:
        break;
      case ChannelInterleave::kCapacity:
        if (channels > 1) {
            coord.channel = narrowIdx(v / channel_lines_, channels);
            v %= channel_lines_;
        }
        break;
      case ChannelInterleave::kLine:
        if (channels > 1) {
            coord.channel = narrowIdx(v % channels, channels);
            v /= channels;
        }
        break;
      case ChannelInterleave::kPage:
        if (channels > 1) {
            // Rotate whole kLinesPerPage-line pages across channels.
            const std::uint64_t in_page = bits(v, 0, kPageLineBits);
            const std::uint64_t page = v >> kPageLineBits;
            coord.channel = narrowIdx(page % channels, channels);
            v = ((page / channels) << kPageLineBits) | in_page;
        }
        break;
    }

    if (geometry_.dimms_per_channel > 1) {
        coord.dimm =
            narrowIdx(v / dimm_lines_, geometry_.dimms_per_channel);
        v %= dimm_lines_;
    }

    coord.col = bits(v, 0, col_bits_);
    v >>= col_bits_;
    coord.bank = static_cast<unsigned>(bits(v, 0, bank_bits_));
    v >>= bank_bits_;
    coord.bank_group = static_cast<unsigned>(bits(v, 0, bg_bits_));
    v >>= bg_bits_;
    coord.rank = static_cast<unsigned>(bits(v, 0, rank_bits_));
    v >>= rank_bits_;
    coord.row = v;
    return coord;
}

Addr
AddressMap::compose(const DramCoord &coord) const
{
    const std::uint64_t channels = geometry_.channels;
    std::uint64_t v = coord.row;
    v = (v << rank_bits_) | coord.rank;
    v = (v << bg_bits_) | coord.bank_group;
    v = (v << bank_bits_) | coord.bank;
    v = (v << col_bits_) | coord.col;

    if (geometry_.dimms_per_channel > 1)
        v += static_cast<std::uint64_t>(coord.dimm) * dimm_lines_;

    switch (interleave_) {
      case ChannelInterleave::kNone:
        break;
      case ChannelInterleave::kCapacity:
        if (channels > 1)
            v += static_cast<std::uint64_t>(coord.channel) *
                 channel_lines_;
        break;
      case ChannelInterleave::kLine:
        if (channels > 1)
            v = v * channels + coord.channel;
        break;
      case ChannelInterleave::kPage:
        if (channels > 1) {
            const std::uint64_t in_page = bits(v, 0, kPageLineBits);
            v = (((v >> kPageLineBits) * channels + coord.channel)
                 << kPageLineBits) |
                in_page;
        }
        break;
    }
    return v << kLineBits;
}

} // namespace sd::mem
