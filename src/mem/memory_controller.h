/**
 * @file
 * Per-channel DDR4 memory controller: FR-FCFS scheduling over split
 * read/write queues with watermark-based write draining. The write
 * batching plus bus-turnaround costs produce the >1 us gap between a
 * CompCpy's sbuf rdCAS and the matching dbuf wrCAS that SmartDIMM's
 * inline offload depends on (Sec. IV-D).
 */

#ifndef SD_MEM_MEMORY_CONTROLLER_H
#define SD_MEM_MEMORY_CONTROLLER_H

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "common/stats.h"
#include "common/types.h"
#include "fault/fault.h"
#include "mem/address_map.h"
#include "mem/bank_state.h"
#include "mem/dram_command.h"
#include "sim/clock.h"
#include "sim/event_queue.h"
#include "sim/unique_function.h"
#include "trace/trace.h"

namespace sd::mem {

/**
 * How a request completed. kDegraded marks a read that exhausted its
 * ALERT_N retry budget: the data buffer may hold stale bytes, and the
 * host stack is expected to fall back (e.g. CPU placement) rather than
 * trust the line.
 */
enum class MemStatus : std::uint8_t
{
    kOk,
    kDegraded,
};

/**
 * Completion callback: tick the data burst finished, plus status.
 * Move-only (see sim/unique_function.h): completion state rides the
 * request through enqueue -> issue -> data burst without a single
 * copy or forced heap allocation.
 */
using MemCallback = UniqueFunctionT<void(Tick, MemStatus)>;

/** Controller statistics. */
struct ControllerStats
{
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t row_hits = 0;
    std::uint64_t row_misses = 0;   ///< row closed: ACT needed
    std::uint64_t row_conflicts = 0; ///< other row open: PRE + ACT
    std::uint64_t alert_retries = 0;
    std::uint64_t spurious_alerts = 0; ///< fault-injected ALERT_N storms
    std::uint64_t alert_backoffs = 0;  ///< retries past the fast window
    std::uint64_t degraded_reads = 0;  ///< retry budget exhausted
    std::uint64_t turnarounds = 0;
    std::uint64_t sched_passes = 0;      ///< full FR-FCFS passes run
    std::uint64_t wakeups_requested = 0; ///< requestPass() calls
    std::uint64_t wakeups_coalesced = 0; ///< covered by a pending pass

    std::uint64_t
    bytesMoved() const
    {
        return (reads + writes) * kCacheLineSize;
    }
};

/**
 * One channel's controller. Requests enter at line granularity; data
 * moves to/from the attached DimmDevice; every command is also offered
 * to an optional CommandObserver.
 */
class MemoryController
{
  public:
    MemoryController(EventQueue &events, const AddressMap &map,
                     const DramTiming &timing,
                     const ControllerConfig &config, unsigned channel,
                     DimmDevice &dimm);

    /**
     * Enqueue a 64-byte read. @p data must stay valid until the
     * callback fires; the device fills it at completion time.
     */
    void enqueueRead(Addr line_addr, std::uint8_t *data, MemCallback cb);

    /**
     * Enqueue a 64-byte write. Data is captured by value (the burst
     * travels with the command, as on the wire). Optional callback
     * fires when the burst has been issued to the device.
     */
    void enqueueWrite(Addr line_addr, const std::uint8_t *data,
                      MemCallback cb = nullptr);

    /** Attach a command-trace observer (may be null). */
    void setObserver(CommandObserver *observer) { observer_ = observer; }

    /**
     * Attach a fault plan (may be null; not owned). Sites consulted:
     * kAlertStorm (a completing read is turned into a spurious ALERT_N
     * requeue) and kWriteDrainDelay (entering write-drain mode is
     * suppressed for one scheduler pass).
     */
    void setFaultPlan(fault::FaultPlan *plan) { fault_plan_ = plan; }

    /** @return pending request count (both queues + in flight). */
    std::size_t pending() const { return read_q_.size() + write_q_.size(); }

    const ControllerStats &stats() const { return stats_; }
    void resetStats() { stats_ = ControllerStats{}; }

    /** Channel data-bus busy cycles (bandwidth-utilisation metric). */
    std::uint64_t busBusyCycles() const { return bus_busy_cycles_; }

    /** Enqueue-to-data read latency distribution (ticks). */
    const LogHistogram &readLatency() const { return read_latency_; }

    /** Contribute this channel's counters to a stats dump. */
    void reportStats(trace::StatsBlock &block) const;

    /**
     * Testing knob: disable scheduler-wakeup coalescing, reverting to
     * one full FR-FCFS pass per requested wakeup. The command stream
     * must be identical either way (the coalescing regression test
     * proves it); coalesced mode just executes fewer events. Not for
     * production use.
     */
    void setCoalesceWakeups(bool on) { coalesce_wakeups_ = on; }

  private:
    struct Request
    {
        Addr addr;
        DramCoord coord;
        std::uint32_t flat_bank = 0; ///< precomputed FR-FCFS scan key
        std::uint8_t *read_data = nullptr;
        std::vector<std::uint8_t> write_data;
        MemCallback cb;
        Tick enqueued = 0;
        unsigned retries = 0;
        bool needed_act = false; ///< ACT was issued for this request
    };

    void kick();           ///< request a pass at the next clock edge
    /**
     * The coalesced wakeup helper: every scheduler wakeup flows
     * through here (sdlint's wakeup-bypass rule enforces it). A
     * request already covered by a pending pass at an earlier-or-
     * equal tick is dropped — the pass re-derives any later wakeup
     * it still needs, because the FR-FCFS pick is stable between
     * passes and computed issue ticks never recede.
     */
    void requestPass(Tick when);
    void retryAlert(const DdrCommand &cmd, std::uint8_t *read_data,
                    MemCallback cb, unsigned retries, Tick enq,
                    bool spurious);
    void updateWriteDrain(); ///< watermark hysteresis + injected delay
    void schedulePass();   ///< pick and issue the next command
    bool issueRequest(std::deque<Request> &queue, std::size_t index,
                      bool is_write);
    std::size_t pickFrFcfs(const std::deque<Request> &queue) const;
    void emit(DdrCommandType type, const Request &req, Tick at);

    EventQueue &events_;
    const AddressMap &map_;
    DramTiming timing_;
    ControllerConfig config_;
    unsigned channel_;
    DimmDevice &dimm_;
    CommandObserver *observer_ = nullptr;
    fault::FaultPlan *fault_plan_ = nullptr;
    ClockDomain clock_{625}; // DDR4-3200 command clock

    std::deque<Request> read_q_;
    std::deque<Request> write_q_;
    BankStateSoA banks_;
    bool write_drain_ = false;
    bool coalesce_wakeups_ = true;
    bool pass_scheduled_ = false; ///< a pass event is pending at pass_at_
    Tick pass_at_ = 0;
    /** Generation stamp invalidating superseded pass events. */
    std::uint64_t pass_epoch_ = 0;
    /** Pass-scoped buffer for the mirrored DDR command stream. */
    trace::DdrBatch ddr_batch_;
    Tick bus_free_at_ = 0;
    bool last_was_write_ = false;
    bool cas_issued_ = false; ///< any CAS issued yet (turnaround gate)
    std::uint64_t bus_busy_cycles_ = 0;
    ControllerStats stats_;
    LogHistogram read_latency_;
};

} // namespace sd::mem

#endif // SD_MEM_MEMORY_CONTROLLER_H
