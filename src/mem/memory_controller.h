/**
 * @file
 * Per-channel DDR4 memory controller: FR-FCFS scheduling over split
 * read/write queues with watermark-based write draining. The write
 * batching plus bus-turnaround costs produce the >1 us gap between a
 * CompCpy's sbuf rdCAS and the matching dbuf wrCAS that SmartDIMM's
 * inline offload depends on (Sec. IV-D).
 */

#ifndef SD_MEM_MEMORY_CONTROLLER_H
#define SD_MEM_MEMORY_CONTROLLER_H

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "common/stats.h"
#include "common/types.h"
#include "fault/fault.h"
#include "mem/address_map.h"
#include "mem/dram_command.h"
#include "sim/clock.h"
#include "sim/event_queue.h"
#include "trace/trace.h"

namespace sd::mem {

/**
 * How a request completed. kDegraded marks a read that exhausted its
 * ALERT_N retry budget: the data buffer may hold stale bytes, and the
 * host stack is expected to fall back (e.g. CPU placement) rather than
 * trust the line.
 */
enum class MemStatus : std::uint8_t
{
    kOk,
    kDegraded,
};

/** Completion callback: tick the data burst finished, plus status. */
using MemCallback = std::function<void(Tick, MemStatus)>;

/** Controller statistics. */
struct ControllerStats
{
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t row_hits = 0;
    std::uint64_t row_misses = 0;   ///< row closed: ACT needed
    std::uint64_t row_conflicts = 0; ///< other row open: PRE + ACT
    std::uint64_t alert_retries = 0;
    std::uint64_t spurious_alerts = 0; ///< fault-injected ALERT_N storms
    std::uint64_t alert_backoffs = 0;  ///< retries past the fast window
    std::uint64_t degraded_reads = 0;  ///< retry budget exhausted
    std::uint64_t turnarounds = 0;

    std::uint64_t
    bytesMoved() const
    {
        return (reads + writes) * kCacheLineSize;
    }
};

/**
 * One channel's controller. Requests enter at line granularity; data
 * moves to/from the attached DimmDevice; every command is also offered
 * to an optional CommandObserver.
 */
class MemoryController
{
  public:
    MemoryController(EventQueue &events, const AddressMap &map,
                     const DramTiming &timing,
                     const ControllerConfig &config, unsigned channel,
                     DimmDevice &dimm);

    /**
     * Enqueue a 64-byte read. @p data must stay valid until the
     * callback fires; the device fills it at completion time.
     */
    void enqueueRead(Addr line_addr, std::uint8_t *data, MemCallback cb);

    /**
     * Enqueue a 64-byte write. Data is captured by value (the burst
     * travels with the command, as on the wire). Optional callback
     * fires when the burst has been issued to the device.
     */
    void enqueueWrite(Addr line_addr, const std::uint8_t *data,
                      MemCallback cb = nullptr);

    /** Attach a command-trace observer (may be null). */
    void setObserver(CommandObserver *observer) { observer_ = observer; }

    /**
     * Attach a fault plan (may be null; not owned). Sites consulted:
     * kAlertStorm (a completing read is turned into a spurious ALERT_N
     * requeue) and kWriteDrainDelay (entering write-drain mode is
     * suppressed for one scheduler pass).
     */
    void setFaultPlan(fault::FaultPlan *plan) { fault_plan_ = plan; }

    /** @return pending request count (both queues + in flight). */
    std::size_t pending() const { return read_q_.size() + write_q_.size(); }

    const ControllerStats &stats() const { return stats_; }
    void resetStats() { stats_ = ControllerStats{}; }

    /** Channel data-bus busy cycles (bandwidth-utilisation metric). */
    std::uint64_t busBusyCycles() const { return bus_busy_cycles_; }

    /** Enqueue-to-data read latency distribution (ticks). */
    const LogHistogram &readLatency() const { return read_latency_; }

    /** Contribute this channel's counters to a stats dump. */
    void reportStats(trace::StatsBlock &block) const;

  private:
    struct Request
    {
        Addr addr;
        DramCoord coord;
        std::uint8_t *read_data = nullptr;
        std::vector<std::uint8_t> write_data;
        MemCallback cb;
        Tick enqueued = 0;
        unsigned retries = 0;
        bool needed_act = false; ///< ACT was issued for this request
    };

    /** Per-bank open-row and timing state. */
    struct Bank
    {
        bool open = false;
        std::uint64_t row = 0;
        Tick ready_at = 0; ///< earliest next column command
        Tick act_at = 0;   ///< last ACT (for tRAS)
    };

    void kick();           ///< schedule a scheduler pass if needed
    void retryAlert(const DdrCommand &cmd, std::uint8_t *read_data,
                    const MemCallback &cb, unsigned retries, Tick enq,
                    bool spurious);
    void updateWriteDrain(); ///< watermark hysteresis + injected delay
    void schedulePass();   ///< pick and issue the next command
    bool issueRequest(std::deque<Request> &queue, std::size_t index,
                      bool is_write);
    std::size_t pickFrFcfs(const std::deque<Request> &queue) const;
    void emit(DdrCommandType type, const Request &req, Tick at);

    EventQueue &events_;
    const AddressMap &map_;
    DramTiming timing_;
    ControllerConfig config_;
    unsigned channel_;
    DimmDevice &dimm_;
    CommandObserver *observer_ = nullptr;
    fault::FaultPlan *fault_plan_ = nullptr;
    ClockDomain clock_{625}; // DDR4-3200 command clock

    std::deque<Request> read_q_;
    std::deque<Request> write_q_;
    std::vector<Bank> banks_;
    bool write_drain_ = false;
    bool pass_scheduled_ = false;
    Tick bus_free_at_ = 0;
    bool last_was_write_ = false;
    bool cas_issued_ = false; ///< any CAS issued yet (turnaround gate)
    std::uint64_t bus_busy_cycles_ = 0;
    ControllerStats stats_;
    LogHistogram read_latency_;
};

} // namespace sd::mem

#endif // SD_MEM_MEMORY_CONTROLLER_H
