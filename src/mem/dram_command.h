/**
 * @file
 * DDR command stream types. The memory controller emits these to the
 * attached DIMM device; SmartDIMM's slot decoder consumes them four to
 * a buffer-device cycle (Sec. IV-C).
 */

#ifndef SD_MEM_DRAM_COMMAND_H
#define SD_MEM_DRAM_COMMAND_H

#include <cstdint>

#include "common/types.h"
#include "mem/address_map.h"

namespace sd::mem {

/** DDR4 command types the model issues. */
enum class DdrCommandType : std::uint8_t
{
    kActivate,   ///< RAS: open a row
    kPrecharge,  ///< PRE: close a row
    kReadCas,    ///< rdCAS: 64 B burst read
    kWriteCas,   ///< wrCAS: 64 B burst write
    kRefresh,    ///< REF (modeled for bandwidth accounting only)
};

/** One command as seen on the channel's CA bus. */
struct DdrCommand
{
    DdrCommandType type = DdrCommandType::kActivate;
    DramCoord coord;
    Addr addr = 0;   ///< physical line address (CAS commands)
    Tick issue = 0;  ///< tick the command appears on the bus
    unsigned slot = 0; ///< 0..3 position within the buffer-device cycle
};

/** Result of presenting a rdCAS to a DIMM device. */
enum class ReadResponse : std::uint8_t
{
    kOk,     ///< data valid on the bus after tCL
    kAlertN, ///< device asserted ALERT_N; controller must retry (S13)
};

/**
 * Anything that sits on a channel behind the controller: a plain DIMM
 * or a SmartDIMM buffer device.
 */
class DimmDevice
{
  public:
    virtual ~DimmDevice() = default;

    /** Non-CAS commands (ACT/PRE/REF) for bank-table bookkeeping. */
    virtual void onCommand(const DdrCommand &cmd) = 0;

    /**
     * rdCAS: fill @p data with the 64-byte burst, or assert ALERT_N.
     */
    virtual ReadResponse onRead(const DdrCommand &cmd,
                                std::uint8_t *data) = 0;

    /**
     * wrCAS: consume the 64-byte burst. A device may ignore the write
     * (SmartDIMM S7) — that is invisible to the controller, as on real
     * hardware.
     */
    virtual void onWrite(const DdrCommand &cmd,
                         const std::uint8_t *data) = 0;
};

/** Observer tap for command traces (Fig. 9). */
class CommandObserver
{
  public:
    virtual ~CommandObserver() = default;
    virtual void observe(const DdrCommand &cmd) = 0;
};

} // namespace sd::mem

#endif // SD_MEM_DRAM_COMMAND_H
