/**
 * @file
 * Physical-address <-> DRAM-coordinate mapping. SmartDIMM's Addr Remap
 * block (Fig. 5) performs the inverse mapping on-DIMM: given
 * (BG, BA, Row, Col) from the command bus and the Bank Table, it
 * regenerates the physical address so the Translation Table can be
 * indexed at OS-page granularity.
 */

#ifndef SD_MEM_ADDRESS_MAP_H
#define SD_MEM_ADDRESS_MAP_H

#include <cstdint>

#include "common/types.h"
#include "mem/dram_config.h"

namespace sd::mem {

/** Decomposed DRAM coordinates of one 64-byte burst. */
struct DramCoord
{
    unsigned channel = 0;
    unsigned dimm = 0; ///< DIMM slot within the channel
    unsigned rank = 0;
    unsigned bank_group = 0;
    unsigned bank = 0;
    std::uint64_t row = 0;
    std::uint64_t col = 0; ///< 64 B column index within the row

    bool operator==(const DramCoord &) const = default;

    /**
     * Flat bank id within a channel (dimm-major, then rank-major).
     * Each DIMM's chips hold independent row buffers, so the
     * controller's bank state must not alias banks across DIMM slots.
     */
    unsigned
    flatBank(const DramGeometry &g) const
    {
        return ((dimm * g.ranks + rank) * g.bank_groups + bank_group) *
                   g.banks_per_group +
               bank;
    }
};

/**
 * Bidirectional address mapper. The layout (from LSB) is:
 *   [6b line offset][channel*][col][bank][bank group][rank][row][dimm]
 * with the channel extracted per the interleave mode (after the line
 * offset for kLine, after the page offset for kPage, as the top-level
 * capacity window for kCapacity, absent for kNone). Channel counts
 * need not be powers of two: channel extraction is div/mod on the
 * line (or page) index, which degenerates to the pow2 bit-slice
 * layout bit-for-bit when the count is a power of two. The DIMM slot
 * is a capacity partition of the channel-local space (each device
 * owns a contiguous dimmBytes() window), sitting above the row bits.
 * Bank bits sit below the row so that sequential 4 KB pages stripe
 * across banks — the open-page-friendly layout servers use.
 */
class AddressMap
{
  public:
    AddressMap(const DramGeometry &geometry, ChannelInterleave interleave);

    /** Decompose a physical address (line-aligned internally). */
    DramCoord decompose(Addr addr) const;

    /**
     * Recompose a physical address from coordinates — the on-DIMM
     * Addr Remap operation. Inverse of decompose for every line.
     */
    Addr compose(const DramCoord &coord) const;

    const DramGeometry &geometry() const { return geometry_; }
    ChannelInterleave interleave() const { return interleave_; }

  private:
    DramGeometry geometry_;
    ChannelInterleave interleave_;
    std::uint64_t channel_lines_; ///< kCapacity window, in lines
    std::uint64_t dimm_lines_;    ///< per-DIMM capacity slice, in lines
    unsigned col_bits_;
    unsigned bank_bits_;
    unsigned bg_bits_;
    unsigned rank_bits_;
};

} // namespace sd::mem

#endif // SD_MEM_ADDRESS_MAP_H
