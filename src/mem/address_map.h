/**
 * @file
 * Physical-address <-> DRAM-coordinate mapping. SmartDIMM's Addr Remap
 * block (Fig. 5) performs the inverse mapping on-DIMM: given
 * (BG, BA, Row, Col) from the command bus and the Bank Table, it
 * regenerates the physical address so the Translation Table can be
 * indexed at OS-page granularity.
 */

#ifndef SD_MEM_ADDRESS_MAP_H
#define SD_MEM_ADDRESS_MAP_H

#include <cstdint>

#include "common/types.h"
#include "mem/dram_config.h"

namespace sd::mem {

/** Decomposed DRAM coordinates of one 64-byte burst. */
struct DramCoord
{
    unsigned channel = 0;
    unsigned rank = 0;
    unsigned bank_group = 0;
    unsigned bank = 0;
    std::uint64_t row = 0;
    std::uint64_t col = 0; ///< 64 B column index within the row

    bool operator==(const DramCoord &) const = default;

    /** Flat bank id within a channel (rank-major). */
    unsigned
    flatBank(const DramGeometry &g) const
    {
        return (rank * g.bank_groups + bank_group) * g.banks_per_group +
               bank;
    }
};

/**
 * Bidirectional address mapper. The layout (from LSB) is:
 *   [6b line offset][channel bits*][col][bank][bank group][rank][row]
 * with channel bits placed per the interleave mode (*after the line
 * offset for kLine, after the page offset for kPage, absent for
 * kNone). Bank bits sit below the row so that sequential 4 KB pages
 * stripe across banks — the open-page-friendly layout servers use.
 */
class AddressMap
{
  public:
    AddressMap(const DramGeometry &geometry, ChannelInterleave interleave);

    /** Decompose a physical address (line-aligned internally). */
    DramCoord decompose(Addr addr) const;

    /**
     * Recompose a physical address from coordinates — the on-DIMM
     * Addr Remap operation. Inverse of decompose for every line.
     */
    Addr compose(const DramCoord &coord) const;

    const DramGeometry &geometry() const { return geometry_; }
    ChannelInterleave interleave() const { return interleave_; }

  private:
    DramGeometry geometry_;
    ChannelInterleave interleave_;
    unsigned channel_bits_;
    unsigned col_bits_;
    unsigned bank_bits_;
    unsigned bg_bits_;
    unsigned rank_bits_;
};

} // namespace sd::mem

#endif // SD_MEM_ADDRESS_MAP_H
