#include "mem/cxl_link.h"

#include <algorithm>
#include <cmath>

#include "common/log.h"

namespace sd::mem {

namespace {

/** ns -> ticks (the event queue runs in picoseconds). */
Tick
nsToTicks(double ns)
{
    return static_cast<Tick>(std::llround(ns * 1000.0));
}

} // namespace

CxlLink::CxlLink(EventQueue &events, const CxlLinkConfig &config)
    : events_(events), config_(config)
{
    SD_ASSERT(config_.round_trip_ns > 0.0,
              "CXL round trip must be positive");
    SD_ASSERT(config_.gbps > 0.0, "CXL link rate must be positive");
    round_trip_ticks_ = nsToTicks(config_.round_trip_ns);
    stall_ticks_ = nsToTicks(config_.stall_ns);
}

void
CxlLink::transfer(std::size_t bytes, UniqueFunctionT<void(Tick)> fn)
{
    const Tick now = events_.now();
    // One byte takes 1000/gbps ps at `gbps` GB/s; a zero-byte control
    // message still occupies one flit slot.
    const Tick ser = std::max<Tick>(
        1, static_cast<Tick>(std::llround(
               static_cast<double>(bytes) * 1000.0 / config_.gbps)));

    Tick start = std::max(now, free_at_);
    if (start > now) {
        ++stats_.queued;
        stats_.queue_ticks += start - now;
    }
    if (fault_plan_ &&
        fault_plan_->armed(fault::Site::kCxlLinkStall) &&
        fault_plan_->shouldInject(fault::Site::kCxlLinkStall,
                                  fault_scope_)) {
        // CRC retry episode: the flit replays after a fixed penalty.
        ++stats_.injected_stalls;
        start += stall_ticks_;
    }
    free_at_ = start + ser;
    ++stats_.transfers;
    stats_.bytes += bytes;
    stats_.busy_ticks += ser;

    const Tick done = free_at_ + round_trip_ticks_;
    events_.schedule(done, [fn = std::move(fn), done]() mutable {
        fn(done);
    });
}

void
CxlLink::reportStats(trace::StatsBlock &block) const
{
    block.scalar("transfers", static_cast<double>(stats_.transfers));
    block.scalar("bytes", static_cast<double>(stats_.bytes));
    block.scalar("queued", static_cast<double>(stats_.queued));
    block.scalar("injected_stalls",
                 static_cast<double>(stats_.injected_stalls));
    block.scalar("busy_ticks", static_cast<double>(stats_.busy_ticks));
    block.scalar("queue_ticks",
                 static_cast<double>(stats_.queue_ticks));
}

} // namespace sd::mem
