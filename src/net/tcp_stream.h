/**
 * @file
 * Segment-level TCP sender model: sliding window, fast retransmit on
 * triple duplicate ACKs, RTO fallback, and a NewReno-flavoured cwnd.
 * Used to measure achievable goodput over lossy links (Fig. 2) and to
 * count the loss-recovery episodes that trigger SmartNIC
 * resynchronisation (Obs. 1 / Pismenny-style autonomous offload).
 */

#ifndef SD_NET_TCP_STREAM_H
#define SD_NET_TCP_STREAM_H

#include <cstdint>

#include "common/types.h"
#include "net/loss_model.h"

namespace sd::net {

/** Link and protocol parameters. */
struct TcpConfig
{
    double link_gbps = 100.0;   ///< bottleneck rate
    double rtt_us = 50.0;       ///< propagation + switching RTT
    std::size_t mss = 1448;     ///< payload bytes per segment
    std::size_t init_cwnd = 10; ///< segments
    std::size_t max_cwnd = 1024; ///< receive-window clamp (segments)
    double rto_ms = 4.0;        ///< retransmission timeout
};

/** Result of one bulk transfer. */
struct TcpTransferResult
{
    double seconds = 0.0;       ///< transfer completion time
    double goodput_gbps = 0.0;  ///< application bytes / time
    std::uint64_t segments_sent = 0;
    std::uint64_t retransmits = 0;
    std::uint64_t fast_recoveries = 0; ///< dup-ACK episodes
    std::uint64_t timeouts = 0;        ///< RTO episodes
    std::uint64_t reorder_events = 0;

    /** Episodes that force SmartNIC driver resync (Obs. 1). */
    std::uint64_t
    resyncEvents() const
    {
        return fast_recoveries + timeouts + reorder_events;
    }
};

/**
 * Simulate a one-directional bulk transfer of @p bytes through a
 * lossy link. Runs a compact round-based simulation: each RTT, the
 * window's segments are subjected to the injector; losses halve the
 * window (fast recovery) or collapse it (timeout when the whole
 * window was lost).
 */
TcpTransferResult tcpTransfer(std::size_t bytes, const TcpConfig &config,
                              const LossConfig &loss,
                              std::uint64_t seed = 1,
                              fault::FaultPlan *fault_plan = nullptr);

} // namespace sd::net

#endif // SD_NET_TCP_STREAM_H
