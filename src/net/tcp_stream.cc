#include "net/tcp_stream.h"

#include <algorithm>

#include "common/log.h"

namespace sd::net {

TcpTransferResult
tcpTransfer(std::size_t bytes, const TcpConfig &config,
            const LossConfig &loss, std::uint64_t seed,
            fault::FaultPlan *fault_plan)
{
    SD_ASSERT(bytes > 0, "empty transfer");
    LossInjector injector(loss, seed);
    injector.setFaultPlan(fault_plan);

    TcpTransferResult result;
    const double rtt_s = config.rtt_us * 1e-6;
    const double link_segs_per_rtt =
        config.link_gbps * 1e9 / 8.0 / static_cast<double>(config.mss) *
        rtt_s;

    std::size_t remaining = divCeil(bytes, config.mss);
    double cwnd = static_cast<double>(config.init_cwnd);
    double ssthresh = static_cast<double>(config.max_cwnd);
    double time_s = 0.0;

    while (remaining > 0) {
        // Segments attempted this round: window, link and data bound.
        const std::size_t window = static_cast<std::size_t>(std::min(
            {cwnd, static_cast<double>(config.max_cwnd),
             link_segs_per_rtt}));
        const std::size_t attempt =
            std::min<std::size_t>(std::max<std::size_t>(window, 1),
                                  remaining);

        std::size_t delivered = 0;
        std::size_t lost = 0;
        bool reordered = false;
        for (std::size_t s = 0; s < attempt; ++s) {
            if (injector.shouldDrop())
                ++lost;
            else
                ++delivered;
            reordered |= injector.shouldReorder();
        }
        result.segments_sent += attempt;
        if (reordered)
            ++result.reorder_events;

        // Serialisation + propagation for the round.
        const double serialize_s =
            static_cast<double>(attempt) *
            static_cast<double>(config.mss) * 8.0 /
            (config.link_gbps * 1e9);
        time_s += std::max(rtt_s, serialize_s);

        remaining -= std::min(delivered, remaining);

        if (lost == 0) {
            // Congestion avoidance / slow start growth.
            if (cwnd < ssthresh)
                cwnd = std::min(cwnd * 2.0, ssthresh);
            else
                cwnd += 1.0;
            cwnd = std::min(cwnd, static_cast<double>(config.max_cwnd));
            continue;
        }

        // Loss recovery: if anything was delivered, dup ACKs trigger
        // fast retransmit; a whole-window loss costs an RTO.
        result.retransmits += lost;
        if (delivered >= 3) {
            ++result.fast_recoveries;
            ssthresh = std::max(cwnd / 2.0, 2.0);
            cwnd = ssthresh;
            time_s += rtt_s; // retransmission round
        } else {
            ++result.timeouts;
            ssthresh = std::max(cwnd / 2.0, 2.0);
            cwnd = static_cast<double>(config.init_cwnd);
            time_s += config.rto_ms * 1e-3;
        }
    }

    result.seconds = time_s;
    result.goodput_gbps =
        static_cast<double>(bytes) * 8.0 / time_s / 1e9;
    return result;
}

} // namespace sd::net
