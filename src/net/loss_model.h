/**
 * @file
 * Segment loss/reordering injection — the programmable-switch stand-in
 * used for the Fig. 2 experiment. Bernoulli drops with optional bursts
 * plus probabilistic reordering.
 */

#ifndef SD_NET_LOSS_MODEL_H
#define SD_NET_LOSS_MODEL_H

#include "common/random.h"
#include "fault/fault.h"

namespace sd::net {

/** Injector policy. */
struct LossConfig
{
    double drop_prob = 0.0;    ///< per-segment drop probability
    double reorder_prob = 0.0; ///< per-segment reorder probability
    unsigned burst_len = 1;    ///< consecutive drops per loss event
};

/** Stateless-ish injector (burst state only). */
class LossInjector
{
  public:
    LossInjector(const LossConfig &config, std::uint64_t seed)
        : config_(config), rng_(seed)
    {
    }

    /**
     * Attach a fault plan (not owned; may be null). kNetLoss scripts a
     * burst-loss episode and kNetReorder a reorder event, each on top
     * of (and independent of) the Bernoulli streams — the plan owns
     * its own RNG, so arming it never perturbs the base loss pattern.
     */
    void setFaultPlan(fault::FaultPlan *plan) { fault_plan_ = plan; }

    /** @return true when this segment should be dropped. */
    bool
    shouldDrop()
    {
        if (burst_remaining_ > 0) {
            --burst_remaining_;
            ++drops_;
            return true;
        }
        if (fault_plan_ && fault_plan_->armed(fault::Site::kNetLoss) &&
            fault_plan_->shouldInject(fault::Site::kNetLoss)) {
            burst_remaining_ = config_.burst_len - 1;
            ++scripted_drops_;
            ++drops_;
            return true;
        }
        if (rng_.chance(config_.drop_prob)) {
            burst_remaining_ = config_.burst_len - 1;
            ++drops_;
            return true;
        }
        return false;
    }

    /** @return true when this segment should be delayed past the next. */
    bool
    shouldReorder()
    {
        if (fault_plan_ && fault_plan_->armed(fault::Site::kNetReorder) &&
            fault_plan_->shouldInject(fault::Site::kNetReorder)) {
            ++scripted_reorders_;
            ++reorders_;
            return true;
        }
        const bool reorder = rng_.chance(config_.reorder_prob);
        reorders_ += reorder;
        return reorder;
    }

    std::uint64_t drops() const { return drops_; }
    std::uint64_t reorders() const { return reorders_; }
    std::uint64_t scriptedDrops() const { return scripted_drops_; }
    std::uint64_t scriptedReorders() const { return scripted_reorders_; }

  private:
    LossConfig config_;
    Rng rng_;
    fault::FaultPlan *fault_plan_ = nullptr;
    unsigned burst_remaining_ = 0;
    std::uint64_t drops_ = 0;
    std::uint64_t reorders_ = 0;
    std::uint64_t scripted_drops_ = 0;
    std::uint64_t scripted_reorders_ = 0;
};

} // namespace sd::net

#endif // SD_NET_LOSS_MODEL_H
