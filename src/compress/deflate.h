/**
 * @file
 * DEFLATE codec (RFC 1951 bitstream layout): LZ77 tokens entropy-coded
 * with either the fixed Huffman tables or per-block dynamic tables.
 * The decoder understands stored, fixed and dynamic blocks, so it can
 * decode both the software encoder's output and the hardware DSA
 * model's output (which uses fixed codes for deterministic latency).
 */

#ifndef SD_COMPRESS_DEFLATE_H
#define SD_COMPRESS_DEFLATE_H

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "compress/lz77.h"

namespace sd::compress {

/** Entropy-coding strategy for an encode call. */
enum class DeflateStrategy
{
    kFixed,   ///< RFC 1951 fixed literal/length + distance codes
    kDynamic, ///< per-block optimal canonical codes
    kStored,  ///< no compression (stored blocks)
};

/** Outcome of an encode call. */
struct DeflateResult
{
    std::vector<std::uint8_t> bytes; ///< compressed bitstream
    Lz77Stats lz_stats;              ///< token statistics

    double
    ratio(std::size_t original) const
    {
        return bytes.empty()
                   ? 0.0
                   : static_cast<double>(original) /
                         static_cast<double>(bytes.size());
    }
};

/**
 * Compress @p len bytes of @p data into a single-block DEFLATE stream.
 */
DeflateResult deflateCompress(const std::uint8_t *data, std::size_t len,
                              DeflateStrategy strategy =
                                  DeflateStrategy::kDynamic,
                              const Lz77Config &lz = {});

/**
 * Entropy-code a pre-computed token stream (used by the hardware DSA
 * model, whose match finding differs from the software matcher).
 * @param final_block sets the BFINAL bit.
 */
std::vector<std::uint8_t> deflateEncodeTokens(
    const std::vector<Lz77Token> &tokens, DeflateStrategy strategy,
    bool final_block = true);

/**
 * Decompress a DEFLATE stream produced by any encoder in this module.
 * Panics on malformed input (simulation data is trusted).
 */
std::vector<std::uint8_t> deflateDecompress(const std::uint8_t *data,
                                            std::size_t len);

/**
 * Non-panicking decompression for untrusted input: every structural
 * violation (truncation, reserved block type, LEN/NLEN mismatch,
 * invalid Huffman codes, out-of-range length/distance symbols,
 * references beyond history) returns nullopt instead of aborting.
 * @param max_out output byte cap; streams expanding past it are
 *        rejected (decompression-bomb guard).
 */
std::optional<std::vector<std::uint8_t>> deflateTryDecompress(
    const std::uint8_t *data, std::size_t len,
    std::size_t max_out = SIZE_MAX);

} // namespace sd::compress

#endif // SD_COMPRESS_DEFLATE_H
