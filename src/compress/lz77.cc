#include "compress/lz77.h"

#include <algorithm>
#include <cstring>

#include "common/log.h"
#include "kernels/match.h"

namespace sd::compress {

namespace {

/** Hash of 3 bytes used for chain heads. */
inline std::uint32_t
hash3(const std::uint8_t *p)
{
    const std::uint32_t v = static_cast<std::uint32_t>(p[0]) |
                            (static_cast<std::uint32_t>(p[1]) << 8) |
                            (static_cast<std::uint32_t>(p[2]) << 16);
    return (v * 2654435761u) >> 17; // 15-bit bucket
}

constexpr std::size_t kHashBuckets = 1u << 15;
constexpr std::int64_t kNoPos = -1;

/** Chained-hash match finder state. */
struct Matcher
{
    std::vector<std::int64_t> head;
    std::vector<std::int64_t> prev;
    const std::uint8_t *data;
    std::size_t len;
    const Lz77Config &cfg;

    Matcher(const std::uint8_t *d, std::size_t l, const Lz77Config &c)
        : head(kHashBuckets, kNoPos), prev(l, kNoPos), data(d), len(l),
          cfg(c)
    {
    }

    void
    insert(std::size_t pos)
    {
        if (pos + kMinMatch > len)
            return;
        const std::uint32_t h = hash3(data + pos);
        prev[pos] = head[h];
        head[h] = static_cast<std::int64_t>(pos);
    }

    /** Longest match at @p pos; returns length (0 if < kMinMatch). */
    std::size_t
    bestMatch(std::size_t pos, std::size_t &distance) const
    {
        if (pos + kMinMatch > len)
            return 0;
        const std::size_t limit = std::min(kMaxMatch, len - pos);
        const std::size_t window =
            std::min(cfg.window, static_cast<std::size_t>(kMaxDistance));

        std::size_t best_len = 0;
        std::size_t best_dist = 0;
        std::int64_t cand = head[hash3(data + pos)];
        std::size_t chain = 0;

        while (cand != kNoPos && chain++ < cfg.max_chain) {
            const auto cpos = static_cast<std::size_t>(cand);
            if (cpos >= pos || pos - cpos > window)
                break;
            // Quick reject on the byte past the current best.
            if (best_len == 0 ||
                data[cpos + best_len] == data[pos + best_len]) {
                const std::size_t match_len =
                    kernels::matchLen(data + cpos, data + pos, limit);
                if (match_len > best_len) {
                    best_len = match_len;
                    best_dist = pos - cpos;
                    if (best_len >= limit)
                        break;
                }
            }
            cand = prev[cpos];
        }

        if (best_len < kMinMatch)
            return 0;
        distance = best_dist;
        return best_len;
    }
};

} // namespace

std::vector<Lz77Token>
lz77Compress(const std::uint8_t *data, std::size_t len,
             const Lz77Config &config, Lz77Stats *stats)
{
    std::vector<Lz77Token> tokens;
    tokens.reserve(len / 2 + 8);
    Lz77Stats local{};

    Matcher matcher(data, len, config);

    std::size_t pos = 0;
    // Lazy-match lookahead cache: when a match is deferred, the search
    // already ran at pos + 1 — and no table insert happens before the
    // next iteration reaches that position — so its result is reused
    // instead of re-walking the chain.
    bool have_cached = false;
    std::size_t cached_len = 0;
    std::size_t cached_dist = 0;
    while (pos < len) {
        std::size_t dist = 0;
        std::size_t match_len = 0;
        if (have_cached) {
            match_len = cached_len;
            dist = cached_dist;
            have_cached = false;
        } else {
            match_len = matcher.bestMatch(pos, dist);
        }

        // Lazy matching: if the next position has a strictly longer
        // match, emit a literal and defer.
        if (config.lazy && match_len >= kMinMatch && pos + 1 < len) {
            matcher.insert(pos);
            std::size_t next_dist = 0;
            const std::size_t next_len =
                matcher.bestMatch(pos + 1, next_dist);
            if (next_len > match_len) {
                tokens.push_back(Lz77Token::lit(data[pos]));
                ++local.literals;
                ++pos;
                have_cached = true;
                cached_len = next_len;
                cached_dist = next_dist;
                continue;
            }
            // Fall through: take the current match; pos already
            // inserted, start chaining from pos + 1.
            if (match_len > 0) {
                tokens.push_back(Lz77Token::match(
                    static_cast<std::uint16_t>(match_len),
                    static_cast<std::uint16_t>(dist)));
                ++local.matches;
                local.matched_bytes += match_len;
                for (std::size_t i = 1; i < match_len; ++i)
                    matcher.insert(pos + i);
                pos += match_len;
                continue;
            }
        }

        if (match_len >= kMinMatch) {
            tokens.push_back(Lz77Token::match(
                static_cast<std::uint16_t>(match_len),
                static_cast<std::uint16_t>(dist)));
            ++local.matches;
            local.matched_bytes += match_len;
            for (std::size_t i = 0; i < match_len; ++i)
                matcher.insert(pos + i);
            pos += match_len;
        } else {
            tokens.push_back(Lz77Token::lit(data[pos]));
            ++local.literals;
            matcher.insert(pos);
            ++pos;
        }
    }

    if (stats)
        *stats = local;
    return tokens;
}

std::vector<std::uint8_t>
lz77Decompress(const std::vector<Lz77Token> &tokens)
{
    std::vector<std::uint8_t> out;
    for (const auto &tok : tokens) {
        if (!tok.is_match) {
            out.push_back(tok.literal);
            continue;
        }
        SD_ASSERT(tok.distance >= 1 && tok.distance <= out.size(),
                  "LZ77 distance %u beyond history %zu", tok.distance,
                  out.size());
        const std::size_t start = out.size() - tok.distance;
        for (std::size_t i = 0; i < tok.length; ++i)
            out.push_back(out[start + i]); // may self-overlap (RLE)
    }
    return out;
}

} // namespace sd::compress
